(** Expressiveness demo: a path-based sandbox as a lazypoline hook.

    seccomp-bpf cannot do this — deciding on [open] requires
    dereferencing the path pointer, which BPF filters cannot do (the
    paper's Table I "Limited" expressiveness).  A lazypoline hook can
    read the task's memory, so a deny-list over path prefixes is a
    few lines.

      dune exec examples/sandbox.exe
*)

open Sim_kernel
module Hook = Lazypoline.Hook

let program =
  {|
long try_open(path) {
  long fd = syscall(2, path, 0, 0);
  if (fd >= 0) {
    syscall(1, 1, "  open succeeded: ", 18);
    syscall(3, fd);
  } else {
    syscall(1, 1, "  open DENIED:    ", 18);
  }
  long i = 0;
  while (path[i] != 0) { i = i + 1; }
  syscall(1, 1, path, i);
  syscall(1, 1, "
", 1);
  return fd;
}

long main() {
  try_open("/home/user/notes.txt");
  try_open("/etc/shadow");
  try_open("/etc/hosts");
  return 0;
}
|}

let protected_prefixes = [ "/etc/shadow"; "/root" ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let () =
  let k = Kernel.create () in
  ignore (Vfs.add_file k.Types.vfs "/home/user/notes.txt" "notes");
  ignore (Vfs.add_file k.Types.vfs "/etc/shadow" "root:secret");
  ignore (Vfs.add_file k.Types.vfs "/etc/hosts" "127.0.0.1 localhost");
  let task = Kernel.spawn k (Minicc.Codegen.compile_to_image program) in

  let denied = ref 0 in
  let hook = Hook.dummy () in
  hook.Hook.on_syscall <-
    (fun c ->
      if c.Hook.nr = Defs.sys_open || c.Hook.nr = Defs.sys_openat then begin
        let path_ptr =
          Int64.to_int
            (if c.Hook.nr = Defs.sys_open then c.Hook.args.(0)
             else c.Hook.args.(1))
        in
        let path = Hook.read_string c path_ptr in
        if List.exists (fun p -> starts_with ~prefix:p path) protected_prefixes
        then begin
          incr denied;
          Hook.Return (Int64.of_int (-Defs.eacces))
        end
        else Hook.Emulate
      end
      else Hook.Emulate);
  ignore (Lazypoline.install k task hook);

  Kernel.console_hook := Some print_string;
  print_endline "sandbox: deep-argument-inspection deny list on open(2):";
  if not (Kernel.run_until_exit k) then failwith "did not terminate";
  Kernel.console_hook := None;
  Printf.printf "\nsandbox denied %d open(s); exit code %d\n" !denied
    task.Types.exit_code;
  print_endline
    "(exhaustiveness matters here: a single missed open() — e.g. from\n\
     JIT-compiled code — would let an attacker bypass the sandbox;\n\
     see the paper's Section VI)"
