examples/sandbox.ml: Array Defs Int64 Kernel Lazypoline List Minicc Printf Sim_kernel String Types Vfs
