examples/quickstart.ml: Kernel Lazypoline List Minicc Printf Sim_kernel Types Vfs
