examples/jit_tracing.ml: Baselines Kernel Lazypoline List Minicc Printf Sim_kernel
