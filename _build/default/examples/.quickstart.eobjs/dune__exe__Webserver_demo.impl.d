examples/webserver_demo.ml: Int64 Kernel Lazypoline Printf Sim_kernel String Types Workloads
