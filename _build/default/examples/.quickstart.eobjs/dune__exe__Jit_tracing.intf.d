examples/jit_tracing.mli:
