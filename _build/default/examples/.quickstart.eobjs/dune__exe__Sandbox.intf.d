examples/sandbox.mli:
