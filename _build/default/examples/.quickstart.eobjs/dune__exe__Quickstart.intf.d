examples/quickstart.mli:
