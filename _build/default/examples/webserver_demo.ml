(** Run the nginx-style simulated web server under lazypoline for a
    short burst and report throughput and interposer statistics — a
    miniature of the paper's Fig. 5 pipeline.

      dune exec examples/webserver_demo.exe
*)

open Sim_kernel
module Hook = Lazypoline.Hook

let () =
  let file = "/www/index.html" in
  let contents = String.make 4096 'x' in
  let handle = ref None in
  let k =
    Workloads.Webserver.boot ~ncpus:1
      ~flavour:Workloads.Webserver.Nginx_like ~workers:1
      ~files:[ (file, contents) ]
      ~interpose:(fun k t ->
        handle := Some (Lazypoline.install k t (Hook.dummy ())))
      ()
  in
  Workloads.Webserver.wait_listening k ~port:80;
  let g = Workloads.Wrk.attach k ~port:80 ~conns:8 ~file ~file_size:4096 in
  (* ~10 simulated milliseconds at 2.1 GHz *)
  Kernel.run_for k 21_000_000L;
  let cycles = Types.global_time k in
  Printf.printf "served %d requests in %.1f simulated ms: %.0f req/s\n"
    g.Workloads.Wrk.completed
    (Int64.to_float cycles /. 2.1e6)
    (Workloads.Wrk.throughput g ~cycles);
  (match !handle with
  | Some lp ->
      let s = lp.Lazypoline.stats in
      Printf.printf
        "lazypoline: %d syscall sites rewritten lazily, %d slow-path hits,\n\
        \            %d fast-path interpositions, %d signals wrapped\n"
        s.Lazypoline.rewrites s.Lazypoline.slow_hits s.Lazypoline.fast_hits
        s.Lazypoline.signals_wrapped
  | None -> ());
  print_endline
    "every syscall of the server (and its forked workers) was interposed;\n\
     after the first execution of each site, all of them took the fast path"
