(** The exhaustiveness demo (the paper's Section V-A): trace a
    JIT-compiling workload under zpoline and under lazypoline and
    compare what each interposer saw.

    The workload is a [tcc -run]-style driver: the payload program —
    containing a non-libc [getpid] — is compiled by minicc and decoded
    into freshly mapped pages at run time, then executed.  The static
    rewriter scanned the driver before any of that code existed.

      dune exec examples/jit_tracing.exe
*)

open Sim_kernel
module Hook = Lazypoline.Hook

let app =
  {|
long main() {
  syscall(1, 1, "running from JIT-compiled code\n", 31);
  long pid = syscall(39);          /* the getpid zpoline cannot see */
  return pid;
}
|}

let trace_under name install =
  let k = Kernel.create () in
  let t = Kernel.spawn k (Minicc.Jit.driver_image app) in
  let hook, trace = Hook.tracing () in
  install k t hook;
  if not (Kernel.run_until_exit k) then failwith "did not terminate";
  Printf.printf "--- %s saw:\n" name;
  List.iter
    (fun e -> print_endline ("  " ^ Hook.entry_to_string e))
    (Hook.recorded trace);
  List.map fst (Hook.recorded trace)

let () =
  let z =
    trace_under "zpoline (static rewriting)" (fun k t h ->
        ignore (Baselines.Zpoline.install k t h))
  in
  let l =
    trace_under "lazypoline (hybrid)" (fun k t h ->
        ignore (Lazypoline.install k t h))
  in
  let s =
    trace_under "SUD (kernel ground truth)" (fun k t h ->
        ignore (Baselines.Sud_interposer.install k t h))
  in
  print_newline ();
  Printf.printf "zpoline missed %d of %d syscalls (everything the JIT emitted)\n"
    (List.length s - List.length z)
    (List.length s);
  Printf.printf "lazypoline trace == SUD trace: %b\n" (l = s)
