(** Quickstart: interpose every syscall of a small program.

    Builds a simulated process from a minicc program, installs
    lazypoline with a tracing hook, runs it, and prints the strace-like
    log together with the interposer's statistics.

      dune exec examples/quickstart.exe
*)

open Sim_kernel
module Hook = Lazypoline.Hook

let program =
  {|
long main() {
  char buf[64];
  long fd = syscall(2, "/etc/greeting", 0, 0);     /* open */
  if (fd < 0) return 1;
  long n = syscall(0, fd, buf, 64);                /* read */
  syscall(3, fd);                                  /* close */
  syscall(1, 1, buf, n);                           /* write to stdout */
  return 0;
}
|}

let () =
  (* A kernel with one CPU, a file to read, and the compiled program. *)
  let k = Kernel.create () in
  ignore (Vfs.add_file k.Types.vfs "/etc/greeting" "hello, interposed world\n");
  let task = Kernel.spawn k (Minicc.Codegen.compile_to_image program) in

  (* Install lazypoline with the library's tracing hook.  The hook is
     fully expressive; here it only records. *)
  let hook, trace = Hook.tracing () in
  let lp = Lazypoline.install k task hook in

  (* Echo the program's console output as it happens. *)
  Kernel.console_hook := Some print_string;

  if not (Kernel.run_until_exit k) then failwith "did not terminate";
  Printf.printf "\nexit code: %d\n\n" task.Types.exit_code;

  print_endline "interposed syscalls:";
  List.iter
    (fun entry -> print_endline ("  " ^ Hook.entry_to_string entry))
    (Hook.recorded trace);

  let s = lp.Lazypoline.stats in
  Printf.printf
    "\nlazypoline stats: %d slow-path hits, %d sites rewritten, %d fast-path entries\n"
    s.Lazypoline.slow_hits s.Lazypoline.rewrites s.Lazypoline.fast_hits;
  print_endline
    "(each distinct syscall site trapped once via SUD, was rewritten to\n\
     call rax, and every execution went through the shared entry point)"
