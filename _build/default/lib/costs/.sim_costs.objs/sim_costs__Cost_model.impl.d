lib/costs/cost_model.ml:
