(** Recursive-descent parser for minicc. *)

open Ast

type t = { mutable toks : Lexer.token list }

let peek p = match p.toks with [] -> Lexer.EOF | tok :: _ -> tok

let advance p = match p.toks with [] -> () | _ :: tl -> p.toks <- tl

let expect_punct p s =
  match peek p with
  | Lexer.PUNCT x when x = s -> advance p
  | _ -> error "expected '%s'" s

let accept_punct p s =
  match peek p with
  | Lexer.PUNCT x when x = s ->
      advance p;
      true
  | _ -> false

let expect_ident p =
  match peek p with
  | Lexer.IDENT s ->
      advance p;
      s
  | _ -> error "expected identifier"

(* Precedence levels, loosest first. *)
let binop_of = function
  | "||" -> Some (LOr, 1)
  | "&&" -> Some (LAnd, 2)
  | "|" -> Some (BOr, 3)
  | "^" -> Some (BXor, 4)
  | "&" -> Some (BAnd, 5)
  | "==" -> Some (Eq, 6)
  | "!=" -> Some (Ne, 6)
  | "<" -> Some (Lt, 7)
  | "<=" -> Some (Le, 7)
  | ">" -> Some (Gt, 7)
  | ">=" -> Some (Ge, 7)
  | "<<" -> Some (Shl, 8)
  | ">>" -> Some (Shr, 8)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Mod, 10)
  | _ -> None

let rec parse_expr p = parse_bin p 1

and parse_bin p min_prec =
  let lhs = ref (parse_unary p) in
  let rec go () =
    match peek p with
    | Lexer.PUNCT op -> (
        match binop_of op with
        | Some (b, prec) when prec >= min_prec ->
            advance p;
            let rhs = parse_bin p (prec + 1) in
            lhs := Bin (b, !lhs, rhs);
            go ()
        | _ -> ())
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary p =
  match peek p with
  | Lexer.PUNCT "-" ->
      advance p;
      Un (Neg, parse_unary p)
  | Lexer.PUNCT "!" ->
      advance p;
      Un (LNot, parse_unary p)
  | Lexer.PUNCT "~" ->
      advance p;
      Un (BNot, parse_unary p)
  | _ -> parse_postfix p

and parse_postfix p =
  let e = ref (parse_primary p) in
  let rec go () =
    if accept_punct p "[" then begin
      let idx = parse_expr p in
      expect_punct p "]";
      e := Index (!e, idx);
      go ()
    end
  in
  go ();
  !e

and parse_primary p =
  match peek p with
  | Lexer.INT v ->
      advance p;
      Num v
  | Lexer.STRING s ->
      advance p;
      Str s
  | Lexer.IDENT name ->
      advance p;
      if accept_punct p "(" then begin
        let args = ref [] in
        if not (accept_punct p ")") then begin
          let rec loop () =
            args := parse_expr p :: !args;
            if accept_punct p "," then loop () else expect_punct p ")"
          in
          loop ()
        end;
        Call (name, List.rev !args)
      end
      else Var name
  | Lexer.PUNCT "(" ->
      advance p;
      let e = parse_expr p in
      expect_punct p ")";
      e
  | _ -> error "expected expression"

let rec parse_stmt p : stmt =
  match peek p with
  | Lexer.KW "long" ->
      advance p;
      let name = expect_ident p in
      let init = if accept_punct p "=" then Some (parse_expr p) else None in
      expect_punct p ";";
      Decl (name, init)
  | Lexer.KW "char" ->
      advance p;
      let name = expect_ident p in
      expect_punct p "[";
      let n =
        match peek p with
        | Lexer.INT v ->
            advance p;
            Int64.to_int v
        | _ -> error "expected buffer size"
      in
      expect_punct p "]";
      expect_punct p ";";
      Decl_buf (name, n)
  | Lexer.KW "if" ->
      advance p;
      expect_punct p "(";
      let cond = parse_expr p in
      expect_punct p ")";
      let then_ = parse_block_or_stmt p in
      let else_ =
        match peek p with
        | Lexer.KW "else" ->
            advance p;
            parse_block_or_stmt p
        | _ -> []
      in
      If (cond, then_, else_)
  | Lexer.KW "while" ->
      advance p;
      expect_punct p "(";
      let cond = parse_expr p in
      expect_punct p ")";
      While (cond, parse_block_or_stmt p)
  | Lexer.KW "for" ->
      advance p;
      expect_punct p "(";
      let init =
        match peek p with
        | Lexer.PUNCT ";" ->
            advance p;
            None
        | Lexer.KW "long" ->
            (* for (long i = 0; ...): parse_stmt consumes the ';' *)
            Some (parse_stmt p)
        | _ ->
            let s = parse_simple_stmt p in
            expect_punct p ";";
            Some s
      in
      let cond = if accept_punct p ";" then None
        else begin
          let e = parse_expr p in
          expect_punct p ";";
          Some e
        end
      in
      let step =
        match peek p with
        | Lexer.PUNCT ")" -> None
        | _ -> Some (parse_simple_stmt p)
      in
      expect_punct p ")";
      For (init, cond, step, parse_block_or_stmt p)
  | Lexer.KW "return" ->
      advance p;
      if accept_punct p ";" then Return None
      else begin
        let e = parse_expr p in
        expect_punct p ";";
        Return (Some e)
      end
  | Lexer.KW "break" ->
      advance p;
      expect_punct p ";";
      Break
  | Lexer.KW "continue" ->
      advance p;
      expect_punct p ";";
      Continue
  | _ ->
      let s = parse_simple_stmt p in
      expect_punct p ";";
      s

(* assignment / byte-store / expression statement, without the
   trailing ';' (shared with for-headers) *)
and parse_simple_stmt p : stmt =
  match p.toks with
  | Lexer.IDENT name :: Lexer.PUNCT "=" :: _ ->
      advance p;
      advance p;
      Assign (name, parse_expr p)
  | _ -> (
      let e = parse_expr p in
      (* e1[e2] = e3 *)
      match (e, peek p) with
      | Index (base, idx), Lexer.PUNCT "=" ->
          advance p;
          Store_byte (base, idx, parse_expr p)
      | _ -> Expr e)

and parse_block_or_stmt p : stmt list =
  if accept_punct p "{" then begin
    let stmts = ref [] in
    while not (accept_punct p "}") do
      stmts := parse_stmt p :: !stmts
    done;
    List.rev !stmts
  end
  else [ parse_stmt p ]

let parse_global p : global =
  match peek p with
  | Lexer.KW "long" ->
      advance p;
      let name = expect_ident p in
      let init =
        if accept_punct p "=" then
          match peek p with
          | Lexer.INT v ->
              advance p;
              v
          | _ -> error "global initialisers must be integer literals"
        else 0L
      in
      expect_punct p ";";
      Gvar (name, init)
  | Lexer.KW "char" ->
      advance p;
      let name = expect_ident p in
      expect_punct p "[";
      let n =
        match peek p with
        | Lexer.INT v ->
            advance p;
            Int64.to_int v
        | _ -> error "expected buffer size"
      in
      expect_punct p "]";
      let init =
        if accept_punct p "=" then
          match peek p with
          | Lexer.STRING s ->
              advance p;
              s
          | _ -> error "char-array initialisers must be string literals"
        else ""
      in
      expect_punct p ";";
      Gbuf (name, n, init)
  | _ -> error "expected global declaration"

(** Parse a complete program: a mix of globals and function
    definitions ([long f(a, b) { ... }]). *)
let parse (src : string) : program =
  let p = { toks = Lexer.tokenize src } in
  let globals = ref [] and funcs = ref [] in
  let rec go () =
    match peek p with
    | Lexer.EOF -> ()
    | Lexer.KW "long" when
        (match p.toks with
        | Lexer.KW "long" :: Lexer.IDENT _ :: Lexer.PUNCT "(" :: _ -> true
        | _ -> false) ->
        advance p;
        let name = expect_ident p in
        expect_punct p "(";
        let params = ref [] in
        if not (accept_punct p ")") then begin
          let rec loop () =
            (* allow optional 'long' before each parameter *)
            (match peek p with
            | Lexer.KW "long" -> advance p
            | _ -> ());
            params := expect_ident p :: !params;
            if accept_punct p "," then loop () else expect_punct p ")"
          in
          loop ()
        end;
        expect_punct p "{";
        let body = ref [] in
        while not (accept_punct p "}") do
          body := parse_stmt p :: !body
        done;
        funcs :=
          { fname = name; params = List.rev !params; body = List.rev !body }
          :: !funcs;
        go ()
    | Lexer.KW ("long" | "char") ->
        globals := parse_global p :: !globals;
        go ()
    | _ -> error "expected global or function definition"
  in
  go ();
  { globals = List.rev !globals; funcs = List.rev !funcs }
