(** Hand-written lexer for minicc. *)

type token =
  | INT of int64
  | IDENT of string
  | STRING of string
  | KW of string  (** long char if else while for return break continue *)
  | PUNCT of string
  | EOF

type t = { src : string; mutable pos : int; mutable line : int }

let make src = { src; pos = 0; line = 1 }

let keywords =
  [ "long"; "char"; "if"; "else"; "while"; "for"; "return"; "break";
    "continue" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let peek_char t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

let advance t = t.pos <- t.pos + 1

let error t msg = Ast.error "line %d: %s" t.line msg

let rec skip_ws t =
  match peek_char t with
  | Some (' ' | '\t' | '\r') ->
      advance t;
      skip_ws t
  | Some '\n' ->
      t.line <- t.line + 1;
      advance t;
      skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      while peek_char t <> None && peek_char t <> Some '\n' do
        advance t
      done;
      skip_ws t
  | Some '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
      advance t;
      advance t;
      let rec go () =
        match peek_char t with
        | None -> error t "unterminated comment"
        | Some '*' when t.pos + 1 < String.length t.src
                        && t.src.[t.pos + 1] = '/' ->
            advance t;
            advance t
        | Some c ->
            if c = '\n' then t.line <- t.line + 1;
            advance t;
            go ()
      in
      go ();
      skip_ws t
  | _ -> ()

let escape t = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | _ -> error t "bad escape"

let next (t : t) : token =
  skip_ws t;
  match peek_char t with
  | None -> EOF
  | Some c when is_digit c ->
      let start = t.pos in
      if c = '0' && t.pos + 1 < String.length t.src
         && (t.src.[t.pos + 1] = 'x' || t.src.[t.pos + 1] = 'X') then begin
        advance t;
        advance t;
        let hstart = t.pos in
        while
          match peek_char t with
          | Some ch ->
              is_digit ch || (ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F')
          | None -> false
        do
          advance t
        done;
        if t.pos = hstart then error t "bad hex literal";
        INT (Int64.of_string ("0x" ^ String.sub t.src hstart (t.pos - hstart)))
      end
      else begin
        while match peek_char t with Some ch -> is_digit ch | None -> false do
          advance t
        done;
        INT (Int64.of_string (String.sub t.src start (t.pos - start)))
      end
  | Some c when is_ident_start c ->
      let start = t.pos in
      while match peek_char t with Some ch -> is_ident ch | None -> false do
        advance t
      done;
      let s = String.sub t.src start (t.pos - start) in
      if List.mem s keywords then KW s else IDENT s
  | Some '"' ->
      advance t;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek_char t with
        | None -> error t "unterminated string"
        | Some '"' -> advance t
        | Some '\\' ->
            advance t;
            (match peek_char t with
            | None -> error t "unterminated string"
            | Some e ->
                Buffer.add_char buf (escape t e);
                advance t);
            go ()
        | Some ch ->
            Buffer.add_char buf ch;
            advance t;
            go ()
      in
      go ();
      STRING (Buffer.contents buf)
  | Some '\'' ->
      advance t;
      let v =
        match peek_char t with
        | Some '\\' ->
            advance t;
            let e = match peek_char t with
              | Some e -> e
              | None -> error t "unterminated char"
            in
            advance t;
            Char.code (escape t e)
        | Some ch ->
            advance t;
            Char.code ch
        | None -> error t "unterminated char"
      in
      (match peek_char t with
      | Some '\'' -> advance t
      | _ -> error t "unterminated char literal");
      INT (Int64.of_int v)
  | Some c ->
      let two =
        if t.pos + 1 < String.length t.src then
          Some (String.sub t.src t.pos 2)
        else None
      in
      (match two with
      | Some (("==" | "!=" | "<=" | ">=" | "&&" | "||" | "<<" | ">>") as op) ->
          advance t;
          advance t;
          PUNCT op
      | _ ->
          advance t;
          PUNCT (String.make 1 c))

(** Tokenise the whole input. *)
let tokenize src : token list =
  let t = make src in
  let rec go acc =
    match next t with EOF -> List.rev (EOF :: acc) | tok -> go (tok :: acc)
  in
  go []
