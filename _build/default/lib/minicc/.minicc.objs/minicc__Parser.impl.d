lib/minicc/parser.ml: Ast Int64 Lexer List
