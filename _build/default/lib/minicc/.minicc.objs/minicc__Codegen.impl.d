lib/minicc/codegen.ml: Array Ast Char Hashtbl Int64 Isa List Parser Printf Sim_asm Sim_isa Sim_kernel String
