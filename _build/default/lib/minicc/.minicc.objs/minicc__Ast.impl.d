lib/minicc/ast.ml: Printf
