lib/minicc/lexer.ml: Ast Buffer Char Int64 List String
