lib/minicc/jit.ml: Char Codegen Int32 Isa Sim_asm Sim_isa Sim_kernel String
