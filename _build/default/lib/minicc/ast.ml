(** Abstract syntax of minicc, the small C dialect the workloads are
    written in (the simulator's stand-in for tcc's "C programming
    environment").

    Everything is a 64-bit [long].  [char buf[N]] declares a byte
    buffer whose name evaluates to its address; [buf[i]] reads/writes
    single bytes.  Word-sized memory access goes through the
    [peek64]/[poke64] builtins; syscalls through the variadic
    [syscall(nr, ...)] builtin, which compiles to a real [syscall]
    instruction at each call site (one interposition site per textual
    occurrence, as with inlined libc stubs). *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | BAnd | BOr | BXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr  (** short-circuit *)

type unop = Neg | LNot | BNot

type expr =
  | Num of int64
  | Str of string  (** address of a NUL-terminated static string *)
  | Var of string
  | Index of expr * expr  (** byte load: [e1[e2]] *)
  | Call of string * expr list  (** user function or builtin *)
  | Bin of binop * expr * expr
  | Un of unop * expr

type stmt =
  | Decl of string * expr option  (** [long x = e;] *)
  | Decl_buf of string * int  (** [char buf[N];] *)
  | Assign of string * expr
  | Store_byte of expr * expr * expr  (** [e1[e2] = e3;] *)
  | Expr of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Break
  | Continue

type global =
  | Gvar of string * int64  (** [long g = k;] *)
  | Gbuf of string * int * string
      (** [char g[N];] with optional initial contents *)

type func = { fname : string; params : string list; body : stmt list }

type program = { globals : global list; funcs : func list }

exception Compile_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt
