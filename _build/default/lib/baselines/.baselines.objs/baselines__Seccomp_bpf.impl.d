lib/baselines/seccomp_bpf.ml: Bpf Defs Sim_kernel Types
