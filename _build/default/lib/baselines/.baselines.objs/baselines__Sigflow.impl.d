lib/baselines/sigflow.ml: Array Cpu Defs Hashtbl Int64 Isa Kernel Ksignal Lazypoline Mem Sim_asm Sim_cpu Sim_isa Sim_kernel Sim_mem String Types
