lib/baselines/seccomp_user.ml: Bpf Defs Lazypoline Sigflow Sim_kernel Types
