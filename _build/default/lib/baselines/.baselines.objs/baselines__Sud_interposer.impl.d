lib/baselines/sud_interposer.ml: Char Defs Lazypoline Mem Sigflow Sim_kernel Sim_mem String Types
