lib/baselines/ptrace_interposer.ml: Array Cpu Hashtbl Int64 Isa Lazypoline Sim_cpu Sim_isa Sim_kernel Types
