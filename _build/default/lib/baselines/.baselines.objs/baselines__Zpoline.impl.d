lib/baselines/zpoline.ml: Array Cpu Disasm Int64 Isa Kernel Lazypoline List Mem Sim_asm Sim_cpu Sim_isa Sim_kernel Sim_mem String Types
