(** The seccomp-bpf baseline: interposition entirely in kernel space.

    The "hook" here is a classic-BPF program, which is the point: it
    is fast (no extra mode switches) but cannot dereference pointers,
    accumulate state across calls, or consult anything beyond the
    syscall number, the instruction pointer and the raw argument
    words — the "Limited" expressiveness of Table I made concrete in
    the types. *)

open Sim_kernel
open Types

type t = { prog : Bpf.prog }

(** Install [prog] as the interposer.  Children inherit it; it cannot
    be removed. *)
let install (_k : kernel) (t : task) (prog : Bpf.prog) : t =
  Bpf.validate prog;
  t.filters <- prog :: t.filters;
  { prog }

(** An "inspection only" filter comparable to the dummy hook of the
    other mechanisms: classifies the syscall number (a handful of BPF
    instructions) and allows it.  This is what the efficiency rows of
    the evaluation run. *)
let inspect_all : Bpf.prog =
  let open Bpf in
  [|
    stmt (bpf_ld lor bpf_w lor bpf_abs) off_nr;
    (* a few comparisons, as a small allow-list policy would do *)
    jump (bpf_jmp lor bpf_jge lor bpf_k) 1024 2 0;
    jump (bpf_jmp lor bpf_jeq lor bpf_k) Defs.sys_ptrace 1 0;
    stmt (bpf_ret lor bpf_k) Defs.seccomp_ret_allow;
    stmt (bpf_ret lor bpf_k) (Defs.seccomp_ret_errno lor Defs.eperm);
  |]

(** A deny-list sandbox policy: ERRNO(EPERM) for the given syscall
    numbers, ALLOW otherwise. *)
let deny_nrs nrs : Bpf.prog =
  Bpf.filter_on_nrs ~nrs
    ~action:(Defs.seccomp_ret_errno lor Defs.eperm)
    ~otherwise:Defs.seccomp_ret_allow
