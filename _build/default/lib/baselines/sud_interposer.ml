(** The SUD baseline: a typical Syscall User Dispatch deployment
    (Section II-A).  Every intercepted syscall costs a full signal
    delivery and sigreturn round trip — exhaustive and expressive,
    but "Moderate" efficiency in the paper's Table I and ~20x on the
    microbenchmark. *)

open Sim_mem
open Sim_kernel
open Types
module Hook = Lazypoline.Hook
module Layout = Lazypoline.Layout

type t = Sigflow.t

(** Install the classic SUD interposer into [t]: SIGSYS handler stub,
    per-task selector in a %gs area, SUD enabled with the stub's code
    range allowlisted (for its sigreturn). *)
let install (k : kernel) (t : task) (hook : Hook.t) : t =
  let st = Sigflow.setup k t hook ~use_selector:true in
  let gs_addr = Lazypoline.setup_gs_area t in
  Mem.poke_bytes t.mem
    (gs_addr + Layout.gs_selector)
    (String.make 1 (Char.chr Defs.syscall_dispatch_filter_block));
  t.sud.sud_on <- true;
  t.sud.sud_lo <- st.Sigflow.stub_lo;
  t.sud.sud_len <- st.Sigflow.stub_hi - st.Sigflow.stub_lo;
  t.sud.sud_selector <- gs_addr + Layout.gs_selector;
  st

let stats (st : t) = st.Sigflow.stats
