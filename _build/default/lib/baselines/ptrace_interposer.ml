(** The ptrace baseline: a tracer observing syscall-stops.

    The tracer itself is modelled as kernel-side callbacks plus the
    costs a real tracer pays per stop: two context switches (tracee to
    tracer and back) at both syscall entry and exit, and the tracer's
    own ptrace syscalls (GETREGS, SETREGS, PTRACE_SYSCALL).  This is
    why ptrace lands at "Low" efficiency in Table I despite being
    fully expressive and exhaustive. *)

open Sim_isa
open Sim_cpu
open Sim_kernel
open Types
module Hook = Lazypoline.Hook

type stats = { mutable stops : int }

type t = {
  hook : Hook.t;
  stats : stats;
  (* entry-stop -> exit-stop communication for suppressed syscalls *)
  skip : (int, int64) Hashtbl.t;
}

let to_i = Int64.to_int

let on_entry (st : t) (k : kernel) (pv : ptrace_view) =
  st.stats.stops <- st.stats.stops + 1;
  let t = pv.pv_task in
  let nr = to_i (pv.pv_get_reg Isa.rax) in
  let args = Array.map (fun r -> pv.pv_get_reg r) Hook.arg_regs in
  let site = t.ctx.Cpu.rip - 2 in
  let ctx = { Hook.kernel = k; task = t; nr; args; site } in
  charge k st.hook.Hook.body_cost;
  match st.hook.Hook.on_syscall ctx with
  | Hook.Return v ->
      (* The classic trick: rewrite the syscall number to an invalid
         one, then patch the return value at the exit stop. *)
      Hashtbl.replace st.skip t.tid v;
      pv.pv_set_reg Isa.rax (Int64.of_int (-1))
  | Hook.Emulate -> Hashtbl.remove st.skip t.tid

let on_exit (st : t) (_k : kernel) (pv : ptrace_view) =
  let t = pv.pv_task in
  match Hashtbl.find_opt st.skip t.tid with
  | Some v ->
      Hashtbl.remove st.skip t.tid;
      pv.pv_set_reg Isa.rax v
  | None -> ()

(** Attach a tracer to [t] (children inherit it, like
    PTRACE_O_TRACEFORK). *)
let install (k : kernel) (t : task) (hook : Hook.t) : t =
  let st = { hook; stats = { stops = 0 }; skip = Hashtbl.create 4 } in
  let monitor =
    {
      on_entry = (fun pv -> on_entry st k pv);
      on_exit = (fun pv -> on_exit st k pv);
      tracer_syscalls_per_stop = 3;
    }
  in
  t.monitor <- Some monitor;
  st
