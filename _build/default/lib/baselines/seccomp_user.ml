(** The seccomp-user baseline: a seccomp filter returning
    SECCOMP_RET_TRAP for everything except syscalls issued from the
    interposer's own code range, with the interposition performed in
    the SIGSYS handler.

    Compared to SUD this pays an extra BPF-program execution on every
    syscall and cannot be turned off per-task with a selector byte —
    the rigidity that made Wine develop SUD in the first place
    (Section IV-A-a). *)

open Sim_kernel
open Types
module Hook = Lazypoline.Hook

type t = Sigflow.t

(** Install into [t]: SIGSYS handler stub plus an instruction-pointer
    range filter (seccomp filters are inherited by children and
    survive execve, so no re-arming machinery is needed — or
    possible). *)
let install (k : kernel) (t : task) (hook : Hook.t) : t =
  let st = Sigflow.setup k t hook ~use_selector:false in
  let filter =
    Bpf.filter_on_ip_range ~lo:st.Sigflow.stub_lo ~hi:st.Sigflow.stub_hi
      ~outside_action:Defs.seccomp_ret_trap
  in
  Bpf.validate filter;
  t.filters <- filter :: t.filters;
  st

let stats (st : t) = st.Sigflow.stats
