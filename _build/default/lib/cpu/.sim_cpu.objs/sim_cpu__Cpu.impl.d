lib/cpu/cpu.ml: Array Bytes Decode Int32 Int64 Isa Mem Sim_isa Sim_mem
