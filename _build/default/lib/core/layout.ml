(** Address-space layout shared by lazypoline and the rewriting
    baselines: the zpoline trampoline page at virtual address 0, the
    interposer's code/data region, and the per-task %gs area. *)

open Sim_isa
open Sim_asm

(** {1 The trampoline at virtual address 0}

    A rewritten syscall instruction becomes [call rax]; since the
    calling convention puts the syscall number in [rax], the call
    lands at VA = nr inside a nop sled that slides into a [jmp] to the
    interposer entry.  By construction, this rewrite cannot fail for
    any real syscall instruction. *)

let trampoline_base = 0
let sled_len = 512 (* > highest syscall number *)

(** Assemble the trampoline page; [entry] is the absolute address of
    the interposer's syscall entry point. *)
let trampoline_blob ~entry : Asm.blob =
  Asm.assemble ~base:trampoline_base
    ~env:[ ("syscall_entry", entry) ]
    (List.init sled_len (fun _ -> Asm.nop) @ [ Asm.Jmp_l "syscall_entry" ])

(** {1 Interposer region} *)

let interp_code_base = 0x1000_0000
let interp_data_base = 0x1001_0000 (* scratch page, RW *)

(* Scratch-page offsets (interposer-private data). *)
let scratch_lock = 0 (* rewrite spinlock word *)
let scratch_sigaction = 64 (* staging area for modified sigactions *)
let scratch_old_sigaction = 128

(** {1 Per-task %gs area}

    One RW page per task, addressed %gs-relative so that threads
    sharing an address space still get private state — the paper's
    Section IV-B-a. *)

let gs_size = 4096

let gs_selector = 0 (* the SUD selector byte *)
let gs_sigstack_depth = 8
let gs_sigstack_base = 16
let gs_sigstack_entry = 16 (* bytes per entry: saved selector, resume rip *)
let gs_sigstack_slots = 30
let gs_xstack_depth = gs_sigstack_base + (gs_sigstack_slots * gs_sigstack_entry)
(* = 496 *)
let gs_xstack_base = gs_xstack_depth + 8
let gs_xstack_frame = Sim_cpu.Cpu.xstate_bytes  (* 328 *)
let gs_xstack_slots = 10  (* 504 + 3280 = 3784 < 4096 *)

(** {1 Selector protection (paper Section VI)}

    The gs area can be tagged with a protection key so that only the
    interposer's stubs — which toggle PKRU around their accesses — can
    write the selector byte.  Application writes then fault instead of
    silently disabling interception. *)

let selector_pkey = 1
let pkru_deny_selector = 1 lsl selector_pkey
let pkru_allow_all = 0

let wrpkru_items v =
  [ Asm.mov_ri Isa.rcx v; Asm.i (Isa.Wrpkru Isa.rcx) ]

(** {1 Modelled stub costs}

    Cycle charges standing in for the register save/restore assembly
    (push/pop of all GPRs around the C hook) that the real tools
    execute; identical for zpoline and lazypoline, which share the
    hook calling convention. *)

let hook_save_cost = 18
let hook_restore_cost = 18

(** Extra bookkeeping lazypoline's entry/exit do beyond zpoline's
    (per-task gs addressing, xstate stack pointer maintenance). *)
let gs_bookkeeping_cost = 5

(** The SIGSYS slow-path handler body (rewriting machinery, context
    fiddling) beyond the priced page operations. *)
let slowpath_body_cost = 60

(** Spinlock acquire/release around the rewrite. *)
let rewrite_lock_cost = 30

(** {1 Selector store snippets}

    Real instructions (not modelled cost): set the %gs-relative
    selector byte.  Clobbers rcx and r11, which the syscall ABI
    already reserves for the kernel. *)

let set_selector_items v =
  [
    Asm.xor_rr Isa.r11 Isa.r11;
    Asm.mov_ri Isa.rcx v;
    Asm.store8 ~seg:Isa.Seg_gs Isa.r11 gs_selector Isa.rcx;
  ]
