(** lazypoline: exhaustive, expressive and efficient syscall
    interposition — the paper's contribution.

    The hybrid design: Syscall User Dispatch (selector-only, no
    allowlisted code range) as the exhaustive slow path; on the first
    execution of each syscall site the SIGSYS handler rewrites the
    instruction in place to [call rax] and redirects into the
    zpoline-style fast path, which handles every subsequent
    execution.  See the module implementation and README for the full
    mechanism walk-through. *)

module Hook : module type of Hook
(** The user-facing interposition function (shared with the baseline
    mechanisms). *)

module Layout : module type of Layout
(** Address-space layout: trampoline page, interposer region, per-task
    %gs area, protection-key constants, modelled stub costs. *)

(** Counters exposed for experiments and tests. *)
type stats = {
  mutable rewrites : int;  (** syscall sites rewritten to [call rax] *)
  mutable slow_hits : int;  (** SIGSYS slow-path interceptions *)
  mutable fast_hits : int;  (** fast-path entries *)
  mutable signals_wrapped : int;  (** app handlers wrapped *)
  mutable sigreturns_redirected : int;  (** via the trampoline *)
  mutable xstate_overflows : int;  (** xsave-stack slots exhausted *)
}

(** An installed interposer instance. *)
type t = {
  kernel : Sim_kernel.Types.kernel;
  hook : Hook.t;
  preserve_xstate : bool;
  enable_sud : bool;
  protect_selector : bool;
      (** Section VI hardening: selector behind a protection key *)
  stats : stats;
  mutable entry_addr : int;  (** shared fast/slow-path entry point *)
  mutable trampoline_addr : int;  (** the sigreturn trampoline *)
  mutable restorer_addr : int;
  mutable wrapper_addr : int;
  app_handlers : (int * int, int64 * int64 * int64 * int64) Hashtbl.t;
      (** app-visible sigaction shadow: (tgid, signal) -> action *)
  known_tasks : (int, unit) Hashtbl.t;
      (** tasks the interposer has armed (main + fork/clone children) *)
  clone_rsi : (int, int64) Hashtbl.t;
      (** clone-with-new-stack bookkeeping (internal) *)
}

val install :
  ?preserve_xstate:bool ->
  ?enable_sud:bool ->
  ?protect_selector:bool ->
  Sim_kernel.Types.kernel ->
  Sim_kernel.Types.task ->
  Hook.t ->
  t
(** Install lazypoline into the task's process, as an LD_PRELOADed
    constructor would: maps the VA-0 trampoline and the interposer
    stubs, sets up the per-task %gs area (selector = BLOCK), registers
    the SIGSYS slow-path handler, and enables SUD.

    [preserve_xstate] (default true): save/restore all SSE/x87 state
    around the hook, honouring applications' register-preservation
    expectations (Section IV-B-b).  [enable_sud:false] reproduces the
    paper's Fig. 4 fast-path-only configuration (no slow path; only
    pre-rewritten sites are interposed).  [protect_selector:true]
    enables the Section VI MPK hardening. *)

val rewrite_site : t -> Sim_kernel.Types.task -> addr:int -> unit
(** Pre-rewrite a known syscall site to [call rax], as the paper's
    microbenchmark does to measure pure steady state.  Raises
    [Invalid_argument] if [addr] does not hold a syscall
    instruction. *)

val setup_gs_area : Sim_kernel.Types.task -> int
(** Map a fresh per-task %gs area and point the task's gs base at it;
    returns its address.  Exposed for the baselines and benchmarks
    that manage SUD manually. *)

val clobber_xstate : Sim_kernel.Types.task -> unit
(** Scribble over xmm0-7 and the x87 stack, as interposer C code
    compiled with SSE would — used to reproduce the Listing 1
    compatibility hazard. *)

val set_selector : Sim_kernel.Types.task -> int -> unit
(** Write the task's SUD selector byte (in its %gs area). *)
