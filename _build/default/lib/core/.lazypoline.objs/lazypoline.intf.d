lib/core/lazypoline.mli: Hashtbl Hook Layout Sim_kernel
