lib/core/hook.ml: Array Defs Int64 List Printf Sim_cpu Sim_isa Sim_kernel Sim_mem String Types
