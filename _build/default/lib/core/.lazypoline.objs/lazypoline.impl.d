lib/core/lazypoline.ml: Array Char Cpu Defs Hashtbl Hook Int64 Isa Kernel Ksignal Layout Mem Sim_asm Sim_cpu Sim_isa Sim_kernel Sim_mem String Types
