lib/core/layout.ml: Asm Isa List Sim_asm Sim_cpu Sim_isa
