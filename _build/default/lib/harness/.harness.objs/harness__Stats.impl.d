lib/harness/stats.ml: Float List String
