lib/harness/experiments.ml: Baselines Defs Int64 Kernel Lazypoline List Loader Minicc Printf Sim_asm Sim_kernel Sim_mem Sim_pin Stats String Types Workloads
