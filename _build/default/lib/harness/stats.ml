(** Small statistics helpers for the experiment harness. *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      exp
        (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
        /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

(** Relative standard deviation, in percent. *)
let stddev_pct xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else 100.0 *. stddev xs /. m

(** A crude ASCII bar for figure-style output. *)
let bar ?(width = 40) ~max_value v =
  let n =
    if max_value <= 0.0 then 0
    else int_of_float (Float.round (float_of_int width *. v /. max_value))
  in
  String.make (max 0 (min width n)) '#'
