(** Binary decoder for x64lite.

    [decode fetch] reads bytes through [fetch : int -> int] (byte at
    offset [i] from the current program counter) and returns the
    decoded instruction together with its encoded length.  [fetch] may
    raise (e.g. a page fault on an unmapped byte); the exception
    propagates to the caller, which models instruction-fetch faults
    precisely. *)

open Isa

type error =
  | Bad_opcode of int  (** first opcode byte is not a valid encoding *)
  | Bad_operand of string  (** opcode fine, operand bytes malformed *)

let error_to_string = function
  | Bad_opcode b -> Printf.sprintf "invalid opcode byte 0x%02X" b
  | Bad_operand s -> "malformed operand: " ^ s

exception Invalid of error

let reg_at fetch off =
  let b = fetch off in
  if b > 15 then raise (Invalid (Bad_operand "register index > 15")) else b

let modbyte_at fetch off =
  let b = fetch off in
  let hi = (b lsr 4) land 0xF and lo = b land 0xF in
  (hi, lo)

let imm32_at fetch off =
  let b0 = fetch off
  and b1 = fetch (off + 1)
  and b2 = fetch (off + 2)
  and b3 = fetch (off + 3) in
  Int32.logor
    (Int32.of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16)))
    (Int32.shift_left (Int32.of_int b3) 24)

let imm64_at fetch off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (fetch (off + i)))
  done;
  !v

(* Decode with a segment override already consumed; [p] is the number
   of prefix bytes (0 or 1) and is added to the reported length. *)
let rec decode_body fetch seg p : instr * int =
  let mem_ok i =
    (* A segment prefix is only legal before a memory-accessing
       instruction; qualifying this keeps prefixed decodes unambiguous. *)
    match (seg, i) with
    | Seg_none, _ -> (i, p)
    | _, (Load _ | Store _ | Load8 _ | Store8 _ | Movups_load _
          | Movups_store _ | Fstp _) ->
        (i, p)
    | _ -> raise (Invalid (Bad_operand "segment prefix on non-memory opcode"))
  in
  let ret i len =
    let i, p = mem_ok i in
    (i, len + p)
  in
  let op = fetch 0 in
  match op with
  | 0x64 | 0x65 ->
      if seg <> Seg_none then
        raise (Invalid (Bad_operand "multiple segment prefixes"))
      else
        let seg = if op = 0x64 then Seg_fs else Seg_gs in
        decode_body (fun i -> fetch (i + 1)) seg (p + 1)
  | 0x90 -> ret Nop 1
  | 0xC3 -> ret Ret 1
  | 0xF4 -> ret Hlt 1
  | 0xCC -> ret Int3 1
  | 0x0F -> (
      let op2 = fetch 1 in
      match op2 with
      | 0x05 -> ret Syscall 2
      | 0x0B ->
          let n = fetch 2 lor (fetch 3 lsl 8) in
          ret (Hypercall n) 4
      | 0x31 -> ret Rdtsc 2
      | 0x1F ->
          let n = fetch 2 lor (fetch 3 lsl 8) in
          ret (Nopw n) 4
      | 0x02 -> ret (Wrpkru (reg_at fetch 2)) 3
      | 0x03 -> ret (Rdpkru (reg_at fetch 2)) 3
      | 0x10 ->
          let x, base = modbyte_at fetch 2 in
          ret (Movups_load (seg, x, base, imm32_at fetch 3)) 7
      | 0x11 ->
          let x, base = modbyte_at fetch 2 in
          ret (Movups_store (seg, base, imm32_at fetch 3, x)) 7
      | b when b land 0xF8 = 0x80 -> (
          match cond_of_code (b land 0x07) with
          | Some c -> ret (Jcc (c, imm32_at fetch 2)) 6
          | None -> raise (Invalid (Bad_operand "condition code")))
      | b when b land 0xF8 = 0x90 -> (
          match cond_of_code (b land 0x07) with
          | Some c -> ret (Setcc (c, reg_at fetch 2)) 3
          | None -> raise (Invalid (Bad_operand "condition code")))
      | b -> raise (Invalid (Bad_opcode (0x0F00 lor b))))
  | 0xFF ->
      let b = fetch 1 in
      if b land 0xF0 = 0xD0 then ret (Call_reg (b land 0xF)) 2
      else raise (Invalid (Bad_operand "call-reg modbyte"))
  | 0xFE ->
      let b = fetch 1 in
      if b land 0xF0 = 0xD0 then ret (Jmp_reg (b land 0xF)) 2
      else raise (Invalid (Bad_operand "jmp-reg modbyte"))
  | 0x50 -> ret (Push (reg_at fetch 1)) 2
  | 0x58 -> ret (Pop (reg_at fetch 1)) 2
  | 0x89 ->
      let dst, src = modbyte_at fetch 1 in
      ret (Mov_rr (dst, src)) 2
  | 0xB8 -> ret (Mov_ri (reg_at fetch 1, imm64_at fetch 2)) 10
  | 0xC7 -> ret (Mov_ri32 (reg_at fetch 1, imm32_at fetch 2)) 6
  | 0x8B ->
      let dst, base = modbyte_at fetch 1 in
      ret (Load (seg, dst, base, imm32_at fetch 2)) 6
  | 0x8A ->
      let src, base = modbyte_at fetch 1 in
      ret (Store (seg, base, imm32_at fetch 2, src)) 6
  | 0x8C ->
      let dst, base = modbyte_at fetch 1 in
      ret (Load8 (seg, dst, base, imm32_at fetch 2)) 6
  | 0x8D ->
      let src, base = modbyte_at fetch 1 in
      ret (Store8 (seg, base, imm32_at fetch 2, src)) 6
  | 0x8E ->
      let dst, base = modbyte_at fetch 1 in
      ret (Lea (dst, base, imm32_at fetch 2)) 6
  | 0x01 | 0x29 | 0x21 | 0x09 | 0x31 | 0x39 | 0x6B | 0x6C | 0x6D ->
      let alu =
        match op with
        | 0x01 -> Add
        | 0x29 -> Sub
        | 0x21 -> And
        | 0x09 -> Or
        | 0x31 -> Xor
        | 0x39 -> Cmp
        | 0x6B -> Mul
        | 0x6C -> Div
        | _ -> Rem
      in
      let dst, src = modbyte_at fetch 1 in
      ret (Alu_rr (alu, dst, src)) 2
  | 0x05 | 0x2D | 0x25 | 0x0D | 0x35 | 0x3D ->
      let alu =
        match op with
        | 0x05 -> Add
        | 0x2D -> Sub
        | 0x25 -> And
        | 0x0D -> Or
        | 0x35 -> Xor
        | _ -> Cmp
      in
      ret (Alu_ri (alu, reg_at fetch 1, imm32_at fetch 2)) 6
  | 0xE0 | 0xE1 | 0xE2 ->
      let sh = match op with 0xE0 -> Shl | 0xE1 -> Shr | _ -> Sar in
      let r = reg_at fetch 1 in
      let amount = fetch 2 in
      if amount > 63 then raise (Invalid (Bad_operand "shift amount"))
      else ret (Shift (sh, r, amount)) 3
  | 0xE9 -> ret (Jmp (imm32_at fetch 1)) 5
  | 0xE8 -> ret (Call (imm32_at fetch 1)) 5
  | 0x66 -> (
      let op2 = fetch 1 in
      match op2 with
      | 0x6E -> ret (Movq_xr (reg_at fetch 2, reg_at fetch 3)) 4
      | 0x7E -> ret (Movq_rx (reg_at fetch 2, reg_at fetch 3)) 4
      | 0x6C ->
          let dst, src = modbyte_at fetch 2 in
          ret (Punpcklqdq (dst, src)) 3
      | 0xEF ->
          let dst, src = modbyte_at fetch 2 in
          ret (Pxor (dst, src)) 3
      | b -> raise (Invalid (Bad_opcode (0x6600 lor b))))
  | 0xD9 -> (
      match fetch 1 with
      | 0xE8 -> ret Fld1 2
      | 0xEE -> ret Fldz 2
      | b -> raise (Invalid (Bad_opcode (0xD900 lor b))))
  | 0xDE -> (
      match fetch 1 with
      | 0xC1 -> ret Faddp 2
      | b -> raise (Invalid (Bad_opcode (0xDE00 lor b))))
  | 0xDD -> ret (Fstp (seg, reg_at fetch 1, imm32_at fetch 2)) 6
  | b -> raise (Invalid (Bad_opcode b))

(** Decode one instruction; raises {!Invalid} on a malformed
    encoding.  Returns the instruction and its total encoded length
    (prefix included). *)
let decode (fetch : int -> int) : instr * int = decode_body fetch Seg_none 0

(** Like {!decode} but returning a [result]. *)
let decode_result fetch =
  match decode fetch with
  | v -> Ok v
  | exception Invalid e -> Error e

(** Decode from a string at [pos] (for tests and the disassembler). *)
let decode_string (s : string) (pos : int) : (instr * int, error) result =
  let fetch i =
    if pos + i >= String.length s then
      raise (Invalid (Bad_operand "truncated instruction"))
    else Char.code s.[pos + i]
  in
  match decode fetch with v -> Ok v | exception Invalid e -> Error e
