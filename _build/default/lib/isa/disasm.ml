(** Pretty-printing and linear-sweep disassembly.

    The linear sweep is what a static binary rewriter (zpoline, SaBRe)
    has to rely on.  On a variable-length ISA it desynchronises when
    data or immediates alias instruction bytes — exactly the hazard
    the paper's Section II-B describes — so its results are *best
    effort*, unlike the kernel-verified syscall sites the lazy slow
    path discovers. *)

open Isa

let string_of_mem seg base disp =
  let disp = Int32.to_int disp in
  if disp = 0 then Printf.sprintf "[%s%s]" (seg_name seg) (gpr_name base)
  else if disp > 0 then
    Printf.sprintf "[%s%s + 0x%x]" (seg_name seg) (gpr_name base) disp
  else Printf.sprintf "[%s%s - 0x%x]" (seg_name seg) (gpr_name base) (-disp)

(** Render [i] in an Intel-ish syntax.  [pc] (address of the
    instruction) resolves relative branch targets when provided. *)
let string_of_instr ?pc (i : instr) : string =
  let target rel len =
    match pc with
    | Some pc -> Printf.sprintf "0x%x" (pc + len + Int32.to_int rel)
    | None -> Printf.sprintf ".%+ld" rel
  in
  match i with
  | Nop -> "nop"
  | Ret -> "ret"
  | Hlt -> "hlt"
  | Int3 -> "int3"
  | Syscall -> "syscall"
  | Hypercall n -> Printf.sprintf "hypercall %d" n
  | Rdtsc -> "rdtsc"
  | Nopw n -> Printf.sprintf "nopw %d" n
  | Wrpkru r -> "wrpkru " ^ gpr_name r
  | Rdpkru r -> "rdpkru " ^ gpr_name r
  | Call_reg r -> "call " ^ gpr_name r
  | Jmp_reg r -> "jmp " ^ gpr_name r
  | Push r -> "push " ^ gpr_name r
  | Pop r -> "pop " ^ gpr_name r
  | Mov_rr (d, s) -> Printf.sprintf "mov %s, %s" (gpr_name d) (gpr_name s)
  | Mov_ri (r, v) -> Printf.sprintf "mov %s, 0x%Lx" (gpr_name r) v
  | Mov_ri32 (r, v) -> Printf.sprintf "mov %s, %ld" (gpr_name r) v
  | Load (seg, d, b, disp) ->
      Printf.sprintf "mov %s, %s" (gpr_name d) (string_of_mem seg b disp)
  | Store (seg, b, disp, s) ->
      Printf.sprintf "mov %s, %s" (string_of_mem seg b disp) (gpr_name s)
  | Load8 (seg, d, b, disp) ->
      Printf.sprintf "movzx %s, byte %s" (gpr_name d) (string_of_mem seg b disp)
  | Store8 (seg, b, disp, s) ->
      Printf.sprintf "mov byte %s, %sb" (string_of_mem seg b disp) (gpr_name s)
  | Lea (d, b, disp) ->
      Printf.sprintf "lea %s, %s" (gpr_name d) (string_of_mem Seg_none b disp)
  | Alu_rr (op, d, s) ->
      Printf.sprintf "%s %s, %s" (alu_name op) (gpr_name d) (gpr_name s)
  | Alu_ri (op, r, v) ->
      Printf.sprintf "%s %s, %ld" (alu_name op) (gpr_name r) v
  | Shift (op, r, n) ->
      Printf.sprintf "%s %s, %d" (shift_name op) (gpr_name r) n
  | Jmp rel -> "jmp " ^ target rel 5
  | Jcc (c, rel) -> Printf.sprintf "j%s %s" (cond_name c) (target rel 6)
  | Call rel -> "call " ^ target rel 5
  | Setcc (c, r) -> Printf.sprintf "set%s %s" (cond_name c) (gpr_name r)
  | Movq_xr (x, r) -> Printf.sprintf "movq %s, %s" (xmm_name x) (gpr_name r)
  | Movq_rx (r, x) -> Printf.sprintf "movq %s, %s" (gpr_name r) (xmm_name x)
  | Movups_load (seg, x, b, disp) ->
      Printf.sprintf "movups %s, %s" (xmm_name x) (string_of_mem seg b disp)
  | Movups_store (seg, b, disp, x) ->
      Printf.sprintf "movups %s, %s" (string_of_mem seg b disp) (xmm_name x)
  | Punpcklqdq (d, s) ->
      Printf.sprintf "punpcklqdq %s, %s" (xmm_name d) (xmm_name s)
  | Pxor (d, s) -> Printf.sprintf "pxor %s, %s" (xmm_name d) (xmm_name s)
  | Fld1 -> "fld1"
  | Fldz -> "fldz"
  | Faddp -> "faddp"
  | Fstp (seg, b, disp) ->
      Printf.sprintf "fstp qword %s" (string_of_mem seg b disp)

type line = {
  addr : int;  (** address of the first byte *)
  raw : string;  (** the bytes this line covers *)
  what : [ `Instr of instr | `Bad of Decode.error ];
}

(** Linear-sweep a byte blob starting at virtual address [base].  On a
    decode error the sweep emits a [`Bad] line for the single
    offending byte and resynchronises at the next byte, as objdump
    does. *)
let sweep ?(base = 0) (code : string) : line list =
  let n = String.length code in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      match Decode.decode_string code pos with
      | Ok (i, len) when pos + len <= n ->
          let l =
            { addr = base + pos; raw = String.sub code pos len; what = `Instr i }
          in
          go (pos + len) (l :: acc)
      | Ok (_, _) | Error _ ->
          let e =
            match Decode.decode_string code pos with
            | Error e -> e
            | Ok _ -> Decode.Bad_operand "truncated instruction"
          in
          let l =
            { addr = base + pos; raw = String.sub code pos 1; what = `Bad e }
          in
          go (pos + 1) (l :: acc)
  in
  go 0 []

(** Offsets (relative to the start of [code]) at which a linear sweep
    believes a [syscall] instruction starts.  This is the "identify
    syscall instructions" step of a static rewriter: it both misses
    instructions materialised later and can misfire on data. *)
let find_syscall_sites (code : string) : int list =
  sweep code
  |> List.filter_map (fun l ->
         match l.what with `Instr Syscall -> Some l.addr | _ -> None)

let pp_line fmt (l : line) =
  let bytes =
    String.concat " "
      (List.init (String.length l.raw) (fun i ->
           Printf.sprintf "%02x" (Char.code l.raw.[i])))
  in
  match l.what with
  | `Instr i ->
      Format.fprintf fmt "%8x:  %-30s %s" l.addr bytes
        (string_of_instr ~pc:l.addr i)
  | `Bad e ->
      Format.fprintf fmt "%8x:  %-30s (bad) %s" l.addr bytes
        (Decode.error_to_string e)
