(** Binary encoder for x64lite instructions.

    Encodings are fixed per opcode (see {!Isa}); immediates are
    little-endian.  [encode] appends to a [Buffer.t] so the assembler
    can emit straight-line code cheaply. *)

open Isa

exception Cannot_encode of string

let alu_rr_opcode = function
  | Add -> 0x01
  | Sub -> 0x29
  | And -> 0x21
  | Or -> 0x09
  | Xor -> 0x31
  | Cmp -> 0x39
  | Mul -> 0x6B
  | Div -> 0x6C
  | Rem -> 0x6D

let alu_ri_opcode = function
  | Add -> 0x05
  | Sub -> 0x2D
  | And -> 0x25
  | Or -> 0x0D
  | Xor -> 0x35
  | Cmp -> 0x3D
  | (Mul | Div | Rem) as op ->
      raise (Cannot_encode (alu_name op ^ " with immediate operand"))

let shift_opcode = function Shl -> 0xE0 | Shr -> 0xE1 | Sar -> 0xE2

let check_reg r =
  if r < 0 || r > 15 then raise (Cannot_encode "register index out of range")

let byte b buf = Buffer.add_char buf (Char.chr (b land 0xFF))

let imm32 (v : int32) buf =
  byte (Int32.to_int v land 0xFF) buf;
  byte (Int32.to_int (Int32.shift_right_logical v 8) land 0xFF) buf;
  byte (Int32.to_int (Int32.shift_right_logical v 16) land 0xFF) buf;
  byte (Int32.to_int (Int32.shift_right_logical v 24) land 0xFF) buf

let imm64 (v : int64) buf =
  for i = 0 to 7 do
    byte (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF) buf
  done

let modbyte a b buf =
  check_reg a;
  check_reg b;
  byte ((a lsl 4) lor b) buf

let seg_prefix s buf =
  match s with
  | Seg_none -> ()
  | Seg_fs -> byte 0x64 buf
  | Seg_gs -> byte 0x65 buf

(** Append the encoding of [i] to [buf]. *)
let encode buf (i : instr) =
  match i with
  | Nop -> byte 0x90 buf
  | Ret -> byte 0xC3 buf
  | Hlt -> byte 0xF4 buf
  | Int3 -> byte 0xCC buf
  | Syscall ->
      byte 0x0F buf;
      byte 0x05 buf
  | Hypercall n ->
      if n < 0 || n > 0xFFFF then raise (Cannot_encode "hypercall index");
      byte 0x0F buf;
      byte 0x0B buf;
      byte (n land 0xFF) buf;
      byte ((n lsr 8) land 0xFF) buf
  | Rdtsc ->
      byte 0x0F buf;
      byte 0x31 buf
  | Nopw n ->
      if n < 0 || n > 0xFFFF then raise (Cannot_encode "nopw weight");
      byte 0x0F buf;
      byte 0x1F buf;
      byte (n land 0xFF) buf;
      byte ((n lsr 8) land 0xFF) buf
  | Wrpkru r ->
      check_reg r;
      byte 0x0F buf;
      byte 0x02 buf;
      byte r buf
  | Rdpkru r ->
      check_reg r;
      byte 0x0F buf;
      byte 0x03 buf;
      byte r buf
  | Call_reg r ->
      check_reg r;
      byte 0xFF buf;
      byte (0xD0 lor r) buf
  | Jmp_reg r ->
      check_reg r;
      byte 0xFE buf;
      byte (0xD0 lor r) buf
  | Push r ->
      check_reg r;
      byte 0x50 buf;
      byte r buf
  | Pop r ->
      check_reg r;
      byte 0x58 buf;
      byte r buf
  | Mov_rr (dst, src) ->
      byte 0x89 buf;
      modbyte dst src buf
  | Mov_ri (r, v) ->
      check_reg r;
      byte 0xB8 buf;
      byte r buf;
      imm64 v buf
  | Mov_ri32 (r, v) ->
      check_reg r;
      byte 0xC7 buf;
      byte r buf;
      imm32 v buf
  | Load (s, dst, base, disp) ->
      seg_prefix s buf;
      byte 0x8B buf;
      modbyte dst base buf;
      imm32 disp buf
  | Store (s, base, disp, src) ->
      seg_prefix s buf;
      byte 0x8A buf;
      modbyte src base buf;
      imm32 disp buf
  | Load8 (s, dst, base, disp) ->
      seg_prefix s buf;
      byte 0x8C buf;
      modbyte dst base buf;
      imm32 disp buf
  | Store8 (s, base, disp, src) ->
      seg_prefix s buf;
      byte 0x8D buf;
      modbyte src base buf;
      imm32 disp buf
  | Lea (dst, base, disp) ->
      byte 0x8E buf;
      modbyte dst base buf;
      imm32 disp buf
  | Alu_rr (op, dst, src) ->
      byte (alu_rr_opcode op) buf;
      modbyte dst src buf
  | Alu_ri (op, r, v) ->
      check_reg r;
      byte (alu_ri_opcode op) buf;
      byte r buf;
      imm32 v buf
  | Shift (op, r, amount) ->
      check_reg r;
      if amount < 0 || amount > 63 then
        raise (Cannot_encode "shift amount out of range");
      byte (shift_opcode op) buf;
      byte r buf;
      byte amount buf
  | Jmp rel ->
      byte 0xE9 buf;
      imm32 rel buf
  | Call rel ->
      byte 0xE8 buf;
      imm32 rel buf
  | Jcc (c, rel) ->
      byte 0x0F buf;
      byte (0x80 lor cond_code c) buf;
      imm32 rel buf
  | Setcc (c, r) ->
      check_reg r;
      byte 0x0F buf;
      byte (0x90 lor cond_code c) buf;
      byte r buf
  | Movq_xr (x, r) ->
      check_reg x;
      check_reg r;
      byte 0x66 buf;
      byte 0x6E buf;
      byte x buf;
      byte r buf
  | Movq_rx (r, x) ->
      check_reg x;
      check_reg r;
      byte 0x66 buf;
      byte 0x7E buf;
      byte r buf;
      byte x buf
  | Movups_load (s, x, base, disp) ->
      seg_prefix s buf;
      byte 0x0F buf;
      byte 0x10 buf;
      modbyte x base buf;
      imm32 disp buf
  | Movups_store (s, base, disp, x) ->
      seg_prefix s buf;
      byte 0x0F buf;
      byte 0x11 buf;
      modbyte x base buf;
      imm32 disp buf
  | Punpcklqdq (dst, src) ->
      byte 0x66 buf;
      byte 0x6C buf;
      modbyte dst src buf
  | Pxor (dst, src) ->
      byte 0x66 buf;
      byte 0xEF buf;
      modbyte dst src buf
  | Fld1 ->
      byte 0xD9 buf;
      byte 0xE8 buf
  | Fldz ->
      byte 0xD9 buf;
      byte 0xEE buf
  | Faddp ->
      byte 0xDE buf;
      byte 0xC1 buf
  | Fstp (s, base, disp) ->
      seg_prefix s buf;
      check_reg base;
      byte 0xDD buf;
      byte base buf;
      imm32 disp buf

(** Encode a single instruction to fresh bytes. *)
let encode_one (i : instr) : string =
  let buf = Buffer.create 10 in
  encode buf i;
  Buffer.contents buf

(** Encode an instruction list to a byte blob. *)
let encode_all (is : instr list) : string =
  let buf = Buffer.create 64 in
  List.iter (encode buf) is;
  Buffer.contents buf
