(** The x64lite instruction set.

    A small, x86-64-flavoured ISA with variable-length encodings.  The
    two properties the paper's rewriting technique depends on are
    preserved exactly:

    - [SYSCALL] is the two-byte sequence [0F 05] (as on x86-64), and
    - [CALL reg] is the two-byte sequence [FF D0+r] (x86-64's
      [call rax] is [FF D0]),

    so a syscall instruction can be rewritten in place to [call rax]
    without moving any surrounding code.  Encodings are variable
    length (1-10 bytes), so static linear-sweep disassembly suffers
    from the same desynchronisation hazards as on real x86-64:
    instruction bytes can hide inside immediates and data.

    Registers follow the System V AMD64 convention: syscall number in
    [rax], arguments in [rdi, rsi, rdx, r10, r8, r9], return value in
    [rax]; the kernel clobbers only [rcx] and [r11]. *)

(** {1 Registers} *)

type gpr = int
(** General purpose register index, 0..15. *)

let rax = 0
let rcx = 1
let rdx = 2
let rbx = 3
let rsp = 4
let rbp = 5
let rsi = 6
let rdi = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let r14 = 14
let r15 = 15

let gpr_name = function
  | 0 -> "rax"
  | 1 -> "rcx"
  | 2 -> "rdx"
  | 3 -> "rbx"
  | 4 -> "rsp"
  | 5 -> "rbp"
  | 6 -> "rsi"
  | 7 -> "rdi"
  | n when n >= 8 && n <= 15 -> "r" ^ string_of_int n
  | n -> Printf.sprintf "r?%d" n

type xmm = int
(** SSE register index, 0..15. *)

let xmm_name i = Printf.sprintf "xmm%d" i

(** Segment override for memory operands.  [Gs]/[Fs] add the task's
    segment base to the effective address; thread-local interposer
    state (selector byte, xstate stack) lives behind [Gs]. *)
type seg = Seg_none | Seg_fs | Seg_gs

let seg_name = function Seg_none -> "" | Seg_fs -> "fs:" | Seg_gs -> "gs:"

(** {1 Conditions and ALU operations} *)

type cond = Eq | Ne | Lt | Le | Gt | Ge | Ult | Uge

let cond_code = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Le -> 3
  | Gt -> 4
  | Ge -> 5
  | Ult -> 6
  | Uge -> 7

let cond_of_code = function
  | 0 -> Some Eq
  | 1 -> Some Ne
  | 2 -> Some Lt
  | 3 -> Some Le
  | 4 -> Some Gt
  | 5 -> Some Ge
  | 6 -> Some Ult
  | 7 -> Some Uge
  | _ -> None

let cond_name = function
  | Eq -> "e"
  | Ne -> "ne"
  | Lt -> "l"
  | Le -> "le"
  | Gt -> "g"
  | Ge -> "ge"
  | Ult -> "b"
  | Uge -> "ae"

type alu = Add | Sub | And | Or | Xor | Cmp | Mul | Div | Rem

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Cmp -> "cmp"
  | Mul -> "imul"
  | Div -> "idiv"
  | Rem -> "irem"

type shift = Shl | Shr | Sar

let shift_name = function Shl -> "shl" | Shr -> "shr" | Sar -> "sar"

(** {1 Instructions} *)

type instr =
  | Nop  (** [90] *)
  | Ret  (** [C3] *)
  | Hlt  (** [F4]; terminates the task with the value in [rdi] *)
  | Int3  (** [CC]; breakpoint trap *)
  | Syscall  (** [0F 05] *)
  | Hypercall of int
      (** [0F 0B imm16] — UD2 plus an index.  Dispatches to an
          OCaml-level handler registered with the kernel.  Used only
          by interposer runtime stubs, never by application code. *)
  | Rdtsc  (** [0F 31]; cycle counter into [rax] *)
  | Nopw of int
      (** [0F 1F imm16] — weighted nop: architecturally a no-op that
          retires in [imm16] cycles.  Stands in for straight-line
          application work (compressed for simulation speed); never
          emitted by interposer runtimes. *)
  | Wrpkru of gpr
      (** [0F 02 r] — load the protection-key rights register from a
          GPR (x86's WRPKRU reads eax; we take an operand so stubs can
          keep rax intact).  Bit k set = writes to pkey-k pages
          denied. *)
  | Rdpkru of gpr  (** [0F 03 r] — read PKRU into a GPR *)
  | Call_reg of gpr  (** [FF D0+r]; pushes return address *)
  | Jmp_reg of gpr  (** [FE D0+r] *)
  | Push of gpr  (** [50 r] *)
  | Pop of gpr  (** [58 r] *)
  | Mov_rr of gpr * gpr  (** [89 (dst<<4|src)] *)
  | Mov_ri of gpr * int64  (** [B8 r imm64] *)
  | Mov_ri32 of gpr * int32  (** [C7 r imm32], sign-extended *)
  | Load of seg * gpr * gpr * int32
      (** [8B (dst<<4|base) disp32]: dst := [seg: base + disp], 8 bytes *)
  | Store of seg * gpr * int32 * gpr
      (** [8A (src<<4|base) disp32]: [seg: base + disp] := src, 8 bytes *)
  | Load8 of seg * gpr * gpr * int32
      (** [8C ...]: one byte, zero-extended *)
  | Store8 of seg * gpr * int32 * gpr  (** [8D ...]: low byte of src *)
  | Lea of gpr * gpr * int32  (** [8E (dst<<4|base) disp32] *)
  | Alu_rr of alu * gpr * gpr  (** two-byte op + modbyte *)
  | Alu_ri of alu * gpr * int32  (** op + regbyte + imm32 *)
  | Shift of shift * gpr * int  (** op + regbyte + imm8 *)
  | Jmp of int32  (** [E9 rel32], relative to next instruction *)
  | Jcc of cond * int32  (** [0F 80+cc rel32] *)
  | Call of int32  (** [E8 rel32] *)
  | Setcc of cond * gpr  (** [0F 90+cc r] *)
  | Movq_xr of xmm * gpr  (** [66 6E x r]: xmm.lo := gpr, xmm.hi := 0 *)
  | Movq_rx of gpr * xmm  (** [66 7E r x]: gpr := xmm.lo *)
  | Movups_load of seg * xmm * gpr * int32
      (** [0F 10 (x<<4|base) disp32]: 16 bytes *)
  | Movups_store of seg * gpr * int32 * xmm  (** [0F 11 ...] *)
  | Punpcklqdq of xmm * xmm
      (** [66 6C (dst<<4|src)]: dst.hi := src.lo (dst.lo unchanged) *)
  | Pxor of xmm * xmm  (** [66 EF (dst<<4|src)] *)
  | Fld1  (** [D9 E8]: push 1.0 on the x87 stack *)
  | Fldz  (** [D9 EE]: push 0.0 *)
  | Faddp  (** [DE C1]: st1 := st0 + st1, pop *)
  | Fstp of seg * gpr * int32  (** [DD (base) disp32]: store st0, pop *)

(** Alias: the byte pair every rewriter cares about. *)
let syscall_bytes = (0x0F, 0x05)

let call_reg_bytes r = (0xFF, 0xD0 lor r)

(** Maximum encoded instruction length. *)
let max_instr_len = 10

(** Length of the encoding of [i], including any segment prefix. *)
let encoded_length i =
  let seg_len = function Seg_none -> 0 | Seg_fs | Seg_gs -> 1 in
  match i with
  | Nop | Ret | Hlt | Int3 -> 1
  | Syscall | Rdtsc | Call_reg _ | Jmp_reg _ | Push _ | Pop _ | Mov_rr _ -> 2
  | Fld1 | Fldz | Faddp -> 2
  | Hypercall _ | Nopw _ -> 4
  | Wrpkru _ | Rdpkru _ -> 3
  | Mov_ri _ -> 10
  | Mov_ri32 _ -> 6
  | Load (s, _, _, _) | Load8 (s, _, _, _) -> 6 + seg_len s
  | Store (s, _, _, _) | Store8 (s, _, _, _) -> 6 + seg_len s
  | Lea _ -> 6
  | Alu_rr _ -> 2
  | Alu_ri _ -> 6
  | Shift _ -> 3
  | Jmp _ | Call _ -> 5
  | Jcc _ -> 6
  | Setcc _ -> 3
  | Movq_xr _ | Movq_rx _ -> 4
  | Movups_load (s, _, _, _) | Movups_store (s, _, _, _) -> 7 + seg_len s
  | Punpcklqdq _ | Pxor _ -> 3
  | Fstp (s, _, _) -> 6 + seg_len s
