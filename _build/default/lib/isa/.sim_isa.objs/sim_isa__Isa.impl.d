lib/isa/isa.ml: Printf
