lib/isa/disasm.ml: Char Decode Format Int32 Isa List Printf String
