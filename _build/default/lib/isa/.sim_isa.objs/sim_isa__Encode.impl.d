lib/isa/encode.ml: Buffer Char Int32 Int64 Isa List
