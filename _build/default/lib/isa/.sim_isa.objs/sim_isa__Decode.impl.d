lib/isa/decode.ml: Char Int32 Int64 Isa Printf String
