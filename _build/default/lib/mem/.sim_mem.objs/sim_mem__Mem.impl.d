lib/mem/mem.ml: Buffer Bytes Char Hashtbl Int64 List Printf String
