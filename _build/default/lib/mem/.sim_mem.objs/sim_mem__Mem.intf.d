lib/mem/mem.mli:
