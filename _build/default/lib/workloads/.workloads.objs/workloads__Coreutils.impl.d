lib/workloads/coreutils.ml: Defs Isa Kernel List Loader Minicc Sim_asm Sim_isa Sim_kernel Sim_mem Sim_pin String Types Vfs
