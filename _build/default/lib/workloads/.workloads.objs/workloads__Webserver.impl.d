lib/workloads/webserver.ml: Hashtbl Kernel List Minicc Net Printf Sim_kernel String Types Vfs
