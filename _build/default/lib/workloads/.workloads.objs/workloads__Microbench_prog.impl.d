lib/workloads/microbench_prog.ml: Baselines Char Defs Int64 Isa Kernel Lazypoline Loader Sim_asm Sim_isa Sim_kernel Sim_mem String Types
