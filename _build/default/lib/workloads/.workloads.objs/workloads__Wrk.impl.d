lib/workloads/wrk.ml: Int64 List Net Printf Sim_kernel String Types Webserver
