(** A Pin-style dynamic register-preservation analysis (the tool of
    the paper's Section IV-B-b).

    Attached to a task, it watches every architectural register read
    and write and every completed syscall; a read with at least one
    syscall since the register's last write means the program expects
    the kernel (and hence any interposer) to have preserved that
    register.  Being dynamic, it underestimates: only executed paths
    are seen. *)

type reg_class = Gpr of int | Xmm of int | X87

val reg_class_to_string : reg_class -> string

type expectation = {
  reg : reg_class;
  across_syscall : int;
      (** number of the last syscall the register survived *)
}

type t = {
  mutable syscall_seq : int;
  mutable last_syscall_nr : int;
  gpr_wseq : int array;
  xmm_wseq : int array;
  mutable x87_wseq : int;
  mutable expectations : expectation list;
  mutable events : int;  (** register events observed *)
}

val attach : Sim_kernel.Types.kernel -> Sim_kernel.Types.task -> t
(** Hook the analysis onto a task (and chain onto the kernel's
    syscall trace).  Read the returned state after the program ran. *)

val expects_xstate : t -> bool
(** The paper's Table III checkmark: did the program expect any
    SSE/x87 component to survive a syscall? *)

val xstate_expectations : t -> expectation list

val gpr_expectations : t -> expectation list
(** GPR expectations, excluding rax/rcx/r11, which the syscall ABI
    declares clobbered. *)

val abi_volatile : reg_class -> bool
