(** A Pin-style dynamic register-preservation analysis (the tool of
    the paper's Section IV-B-b).

    Attached to a task, it watches every architectural register read
    and write and every completed syscall.  When a register is read
    and at least one syscall executed since its last write, the
    program evidently expects the kernel to have preserved that
    register across the syscall.  For general-purpose registers (minus
    rax/rcx/r11) the ABI guarantees this; for SSE/x87 state nothing
    obliges an *interposer* to preserve it — which is exactly the
    compatibility hazard the paper quantifies in Table III.

    As a dynamic analysis it underestimates: it only sees executed
    paths. *)

open Sim_cpu
open Sim_kernel
open Types

type reg_class = Gpr of int | Xmm of int | X87

let reg_class_to_string = function
  | Gpr r -> Sim_isa.Isa.gpr_name r
  | Xmm i -> Sim_isa.Isa.xmm_name i
  | X87 -> "x87"

type expectation = {
  reg : reg_class;
  across_syscall : int;  (** nr of (the last) intervening syscall *)
}

type t = {
  mutable syscall_seq : int;
  mutable last_syscall_nr : int;
  gpr_wseq : int array;  (** syscall_seq at last write, -1 = never *)
  xmm_wseq : int array;
  mutable x87_wseq : int;
  mutable expectations : expectation list;
  mutable events : int;
}

let create () =
  {
    syscall_seq = 0;
    last_syscall_nr = -1;
    gpr_wseq = Array.make 16 (-1);
    xmm_wseq = Array.make 16 (-1);
    x87_wseq = -1;
    expectations = [];
    events = 0;
  }

let note (p : t) reg =
  if
    not
      (List.exists
         (fun e -> e.reg = reg && e.across_syscall = p.last_syscall_nr)
         p.expectations)
  then
    p.expectations <-
      { reg; across_syscall = p.last_syscall_nr } :: p.expectations

let on_event (p : t) (e : Cpu.hook_event) =
  p.events <- p.events + 1;
  match e with
  | Cpu.Reg_write r -> p.gpr_wseq.(r) <- p.syscall_seq
  | Cpu.Xmm_write i -> p.xmm_wseq.(i) <- p.syscall_seq
  | Cpu.X87_write -> p.x87_wseq <- p.syscall_seq
  | Cpu.Reg_read r ->
      if p.gpr_wseq.(r) >= 0 && p.gpr_wseq.(r) < p.syscall_seq then
        note p (Gpr r)
  | Cpu.Xmm_read i ->
      if p.xmm_wseq.(i) >= 0 && p.xmm_wseq.(i) < p.syscall_seq then
        note p (Xmm i)
  | Cpu.X87_read ->
      if p.x87_wseq >= 0 && p.x87_wseq < p.syscall_seq then note p X87

(** Attach the tool to [t].  Also chains onto the kernel's syscall
    trace to observe syscall boundaries.  Returns the analysis
    state; read it after the program ran. *)
let attach (k : kernel) (t : task) : t =
  let p = create () in
  t.ctx.Cpu.hook <- Some (on_event p);
  let prev = k.strace in
  k.strace <-
    Some
      (fun task nr result ->
        (match prev with Some f -> f task nr result | None -> ());
        if task.tid = t.tid then begin
          p.syscall_seq <- p.syscall_seq + 1;
          p.last_syscall_nr <- nr
        end);
  p

(** Registers the kernel may clobber per the ABI; expecting those is
    an application bug, not an interposer compatibility issue. *)
let abi_volatile = function
  | Gpr r ->
      r = Sim_isa.Isa.rax || r = Sim_isa.Isa.rcx || r = Sim_isa.Isa.r11
  | Xmm _ | X87 -> false

(** Did the program expect any *extended state* component to survive a
    syscall?  (The paper's Table III checkmark.) *)
let expects_xstate (p : t) =
  List.exists
    (fun e -> match e.reg with Xmm _ | X87 -> true | Gpr _ -> false)
    p.expectations

let xstate_expectations (p : t) =
  List.filter
    (fun e -> match e.reg with Xmm _ | X87 -> true | Gpr _ -> false)
    p.expectations

let gpr_expectations (p : t) =
  List.filter
    (fun e ->
      (match e.reg with Gpr _ -> true | _ -> false)
      && not (abi_volatile e.reg))
    p.expectations
