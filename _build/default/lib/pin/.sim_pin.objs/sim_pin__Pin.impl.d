lib/pin/pin.ml: Array Cpu List Sim_cpu Sim_isa Sim_kernel Types
