lib/pin/pin.mli: Sim_kernel
