lib/asm_dsl/asm.ml: Buffer Encode Hashtbl Int32 Int64 Isa List Sim_isa String
