(** A two-pass assembler for x64lite, embedded as an OCaml DSL.

    Runtimes, trampolines and hand-written workload programs are
    expressed as [item list]s mixing instructions, labels, label-
    relative branches, absolute label loads, and raw data.  The
    assembler resolves labels in a first pass (all item sizes are
    static) and emits bytes in a second.

    External symbols (addresses of code assembled elsewhere, such as
    the interposer entry point) are supplied through [env]. *)

open Sim_isa

type item =
  | Ins of Isa.instr
  | Label of string
  | Jmp_l of string  (** [jmp label] *)
  | Jcc_l of Isa.cond * string  (** [jcc label] *)
  | Call_l of string  (** [call label] *)
  | Lea_ip of Isa.gpr * string
      (** [mov reg, imm64] where the immediate is the absolute address
          of the label; the name recalls RIP-relative [lea] *)
  | Bytes of string  (** raw data *)
  | Zeros of int  (** zero-filled region *)
  | Align of int  (** pad with [nop] to the given power-of-two *)

type blob = {
  base : int;  (** virtual address the blob was assembled for *)
  bytes : string;
  symbols : (string * int) list;  (** label -> absolute address *)
}

exception Asm_error of string

let item_size at = function
  | Ins i -> Isa.encoded_length i
  | Label _ -> 0
  | Jmp_l _ | Call_l _ -> 5
  | Jcc_l _ -> 6
  | Lea_ip _ -> 10
  | Bytes s -> String.length s
  | Zeros n -> n
  | Align a ->
      if a <= 0 || a land (a - 1) <> 0 then
        raise (Asm_error "alignment must be a positive power of two")
      else (a - (at land (a - 1))) land (a - 1)

(** Assemble [items] for virtual address [base].  Raises {!Asm_error}
    on duplicate or undefined labels. *)
let assemble ?(base = 0) ?(env = []) (items : item list) : blob =
  (* Pass 1: label addresses. *)
  let symbols = Hashtbl.create 16 in
  List.iter (fun (name, addr) -> Hashtbl.replace symbols name addr) env;
  let defined = Hashtbl.create 16 in
  let at = ref base in
  List.iter
    (fun it ->
      (match it with
      | Label name ->
          if Hashtbl.mem defined name then
            raise (Asm_error ("duplicate label " ^ name))
          else (
            Hashtbl.replace defined name ();
            Hashtbl.replace symbols name !at)
      | _ -> ());
      at := !at + item_size !at it)
    items;
  let resolve name =
    match Hashtbl.find_opt symbols name with
    | Some a -> a
    | None -> raise (Asm_error ("undefined label " ^ name))
  in
  (* Pass 2: emission. *)
  let buf = Buffer.create 256 in
  let at = ref base in
  let emit i =
    Encode.encode buf i;
    at := !at + Isa.encoded_length i
  in
  List.iter
    (fun it ->
      match it with
      | Label _ -> ()
      | Ins i -> emit i
      | Jmp_l name ->
          let rel = resolve name - (!at + 5) in
          emit (Isa.Jmp (Int32.of_int rel))
      | Call_l name ->
          let rel = resolve name - (!at + 5) in
          emit (Isa.Call (Int32.of_int rel))
      | Jcc_l (c, name) ->
          let rel = resolve name - (!at + 6) in
          emit (Isa.Jcc (c, Int32.of_int rel))
      | Lea_ip (r, name) -> emit (Isa.Mov_ri (r, Int64.of_int (resolve name)))
      | Bytes s ->
          Buffer.add_string buf s;
          at := !at + String.length s
      | Zeros n ->
          Buffer.add_string buf (String.make n '\000');
          at := !at + n
      | Align a ->
          let pad = (a - (!at land (a - 1))) land (a - 1) in
          for _ = 1 to pad do
            emit Isa.Nop
          done)
    items;
  let symbols =
    Hashtbl.fold (fun k _ acc -> (k, Hashtbl.find symbols k) :: acc) defined []
  in
  { base; bytes = Buffer.contents buf; symbols }

(** Address of [name] in [b]; raises {!Asm_error} when absent. *)
let symbol (b : blob) (name : string) : int =
  match List.assoc_opt name b.symbols with
  | Some a -> a
  | None -> raise (Asm_error ("no such symbol: " ^ name))

(** {1 Shorthand constructors}

    Thin sugar over {!Isa.instr} so hand-written runtimes read like
    assembly listings.  All of these produce [item]s. *)

let i x = Ins x
let nop = Ins Isa.Nop
let ret = Ins Isa.Ret
let hlt = Ins Isa.Hlt
let syscall = Ins Isa.Syscall
let hypercall n = Ins (Isa.Hypercall n)
let push r = Ins (Isa.Push r)
let pop r = Ins (Isa.Pop r)
let mov_rr d s = Ins (Isa.Mov_rr (d, s))
let mov_ri r v = Ins (Isa.Mov_ri (r, Int64.of_int v))
let mov_ri64 r v = Ins (Isa.Mov_ri (r, v))
let add_ri r v = Ins (Isa.Alu_ri (Isa.Add, r, Int32.of_int v))
let sub_ri r v = Ins (Isa.Alu_ri (Isa.Sub, r, Int32.of_int v))
let cmp_ri r v = Ins (Isa.Alu_ri (Isa.Cmp, r, Int32.of_int v))
let add_rr d s = Ins (Isa.Alu_rr (Isa.Add, d, s))
let sub_rr d s = Ins (Isa.Alu_rr (Isa.Sub, d, s))
let cmp_rr d s = Ins (Isa.Alu_rr (Isa.Cmp, d, s))
let xor_rr d s = Ins (Isa.Alu_rr (Isa.Xor, d, s))
let load ?(seg = Isa.Seg_none) d b disp =
  Ins (Isa.Load (seg, d, b, Int32.of_int disp))
let store ?(seg = Isa.Seg_none) b disp s =
  Ins (Isa.Store (seg, b, Int32.of_int disp, s))
let load8 ?(seg = Isa.Seg_none) d b disp =
  Ins (Isa.Load8 (seg, d, b, Int32.of_int disp))
let store8 ?(seg = Isa.Seg_none) b disp s =
  Ins (Isa.Store8 (seg, b, Int32.of_int disp, s))
let lea d b disp = Ins (Isa.Lea (d, b, Int32.of_int disp))
let call_reg r = Ins (Isa.Call_reg r)
let jmp_reg r = Ins (Isa.Jmp_reg r)
