(** A bounded byte ring buffer — the backing store of socket receive
    queues and pipes.  Bounded capacity is what creates backpressure
    (partial writes / EAGAIN), which the web-server macrobenchmark
    depends on for realistic large-response behaviour. *)

type t = {
  buf : Bytes.t;
  mutable start : int;  (** index of the first live byte *)
  mutable len : int;
}

let create cap =
  if cap <= 0 then invalid_arg "Fifo.create";
  { buf = Bytes.create cap; start = 0; len = 0 }

let capacity t = Bytes.length t.buf
let length t = t.len
let available t = capacity t - t.len
let is_empty t = t.len = 0

(** Append as much of [s.[pos..pos+len)] as fits; returns the number
    of bytes accepted. *)
let push t s pos len =
  let cap = capacity t in
  let n = min len (available t) in
  let tail = (t.start + t.len) mod cap in
  let first = min n (cap - tail) in
  Bytes.blit_string s pos t.buf tail first;
  if n > first then Bytes.blit_string s (pos + first) t.buf 0 (n - first);
  t.len <- t.len + n;
  n

(** Remove up to [len] bytes; returns them. *)
let pop t len =
  let cap = capacity t in
  let n = min len t.len in
  let out = Bytes.create n in
  let first = min n (cap - t.start) in
  Bytes.blit t.buf t.start out 0 first;
  if n > first then Bytes.blit t.buf 0 out first (n - first);
  t.start <- (t.start + n) mod cap;
  t.len <- t.len - n;
  Bytes.unsafe_to_string out
