(** Loopback stream sockets.

    A minimal TCP-over-localhost model: listeners hold a backlog of
    fully-established connections; a connection is a pair of
    cross-linked endpoints, each owning a bounded receive queue.
    There is no packet loss, reordering or latency — the paper's
    macrobenchmark also runs over localhost precisely to avoid
    network-side bottlenecks ("a maximally intensive workload that is
    not artificially slowed down by arbitrary throughput limits"). *)

let default_sockbuf = 65536

type endpoint = {
  id : int;
  rx : Fifo.t;
  mutable peer : endpoint option;  (** [None] once the peer is gone *)
  mutable closed : bool;  (** this endpoint shut down *)
  mutable peer_closed : bool;  (** EOF pending after draining [rx] *)
}

type listener = {
  port : int;
  backlog : endpoint Queue.t;
  max_backlog : int;
  mutable listener_closed : bool;
}

type t = {
  listeners : (int, listener) Hashtbl.t;
  mutable next_ep : int;
}

let create () = { listeners = Hashtbl.create 8; next_ep = 1 }

let fresh_endpoint ?(bufsize = default_sockbuf) t =
  let ep =
    { id = t.next_ep; rx = Fifo.create bufsize; peer = None; closed = false;
      peer_closed = false }
  in
  t.next_ep <- t.next_ep + 1;
  ep

(** Bind+listen on [port].  [Error `In_use] if taken. *)
let listen t ~port ~backlog =
  if Hashtbl.mem t.listeners port then Error `In_use
  else begin
    let l =
      { port; backlog = Queue.create (); max_backlog = max 1 backlog;
        listener_closed = false }
    in
    Hashtbl.replace t.listeners port l;
    Ok l
  end

(** Establish a connection to [port]; returns the client endpoint.
    The server-side endpoint goes on the listener's backlog. *)
let connect t ~port =
  match Hashtbl.find_opt t.listeners port with
  | None -> Error `Refused
  | Some l when l.listener_closed -> Error `Refused
  | Some l ->
      if Queue.length l.backlog >= l.max_backlog then Error `Refused
      else begin
        let a = fresh_endpoint t and b = fresh_endpoint t in
        a.peer <- Some b;
        b.peer <- Some a;
        Queue.push b l.backlog;
        Ok a
      end

let accept (l : listener) =
  if Queue.is_empty l.backlog then None else Some (Queue.pop l.backlog)

let close_listener t (l : listener) =
  l.listener_closed <- true;
  Hashtbl.remove t.listeners l.port

(** Bytes that can currently be written towards the peer. *)
let send_space (e : endpoint) =
  match e.peer with
  | Some p when not p.closed -> Fifo.available p.rx
  | _ -> 0

(** Write [s.[pos..pos+len)]; returns bytes accepted, [Error `Pipe]
    when the peer is gone (the caller raises SIGPIPE/EPIPE). *)
let send (e : endpoint) s pos len =
  if e.closed then Error `Pipe
  else
    match e.peer with
    | Some p when not p.closed -> Ok (Fifo.push p.rx s pos len)
    | _ -> Error `Pipe

(** Read up to [len] bytes.  [Ok ""] means EOF. *)
let recv (e : endpoint) len =
  if Fifo.length e.rx > 0 then `Data (Fifo.pop e.rx len)
  else if e.peer_closed || e.peer = None then `Eof
  else `Empty

let readable (e : endpoint) = Fifo.length e.rx > 0 || e.peer_closed || e.peer = None
let writable (e : endpoint) = send_space e > 0

let close_endpoint (e : endpoint) =
  e.closed <- true;
  (match e.peer with
  | Some p ->
      p.peer_closed <- true;
      p.peer <- None
  | None -> ());
  e.peer <- None

(** A connected pair not going through a listener (socketpair/pipe). *)
let pair ?(bufsize = default_sockbuf) t =
  let a = fresh_endpoint ~bufsize t and b = fresh_endpoint ~bufsize t in
  a.peer <- Some b;
  b.peer <- Some a;
  (a, b)
