lib/kernel/loader.ml: List Mem Sim_asm Sim_mem Types
