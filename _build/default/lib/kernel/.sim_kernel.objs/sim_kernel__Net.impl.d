lib/kernel/net.ml: Fifo Hashtbl Queue
