lib/kernel/fifo.ml: Bytes
