lib/kernel/kernel.ml: Array Bpf Buffer Bytes Char Cpu Defs Hashtbl Int32 Int64 Isa Ksignal List Mem Net Queue Random Sim_costs Sim_cpu Sim_isa Sim_mem String Types Vfs
