lib/kernel/bpf.ml: Array Bytes Defs Int32 Int64 List
