lib/kernel/ksignal.ml: Array Cpu Defs Hashtbl Int64 Isa List Mem Sim_cpu Sim_isa Sim_mem Types
