lib/kernel/types.ml: Array Bpf Cost_model Cpu Hashtbl Int64 Mem Net Random Sim_costs Sim_cpu Sim_mem Vfs
