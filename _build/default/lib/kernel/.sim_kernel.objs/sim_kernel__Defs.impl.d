lib/kernel/defs.ml: Hashtbl List Printf
