lib/kernel/vfs.ml: Bytes Defs Hashtbl List String
