(** Classic BPF, as used by seccomp filters.

    This is a faithful interpreter for the cBPF subset that seccomp
    accepts: word loads from the read-only [seccomp_data] buffer,
    ALU/JMP over a 32-bit accumulator [A] and index register [X], 16
    scratch memory slots, and RET.  Programs are validated on load
    with the same rules as the kernel: bounded length, in-bounds
    forward jumps, every path ending in a RET, no stores outside
    scratch memory.

    seccomp's expressiveness limits fall out of the semantics: a
    filter sees only the syscall number, architecture, instruction
    pointer and raw argument words — it cannot dereference user
    pointers, which is exactly the "Limited expressiveness" entry for
    seccomp-bpf in the paper's Table I. *)

(* Instruction classes *)
let bpf_ld = 0x00
let bpf_ldx = 0x01
let bpf_st = 0x02
let bpf_stx = 0x03
let bpf_alu = 0x04
let bpf_jmp = 0x05
let bpf_ret = 0x06
let bpf_misc = 0x07

(* Size / mode *)
let bpf_w = 0x00
let bpf_abs = 0x20
let bpf_imm = 0x00
let bpf_mem = 0x60
let bpf_len = 0x80

(* ALU / JMP subcodes *)
let bpf_add = 0x00
let bpf_sub = 0x10
let bpf_mul = 0x20
let bpf_div = 0x30
let bpf_or = 0x40
let bpf_and = 0x50
let bpf_lsh = 0x60
let bpf_rsh = 0x70
let bpf_neg = 0x80
let bpf_mod = 0x90
let bpf_xor = 0xa0

let bpf_ja = 0x00
let bpf_jeq = 0x10
let bpf_jgt = 0x20
let bpf_jge = 0x30
let bpf_jset = 0x40

let bpf_k = 0x00
let bpf_x = 0x08

let bpf_tax = 0x00
let bpf_txa = 0x80

let maxinsns = 4096

type insn = { code : int; jt : int; jf : int; k : int32 }

let stmt code k = { code; jt = 0; jf = 0; k = Int32.of_int k }
let jump code k jt jf = { code; jt; jf; k = Int32.of_int k }

type prog = insn array

(** The input of a seccomp filter. *)
type seccomp_data = {
  nr : int;
  arch : int32;
  instruction_pointer : int;
  args : int64 array;  (** 6 entries *)
}

(* seccomp_data field offsets, as on Linux x86-64 *)
let off_nr = 0
let off_arch = 4
let off_ip_lo = 8
let off_ip_hi = 12
let off_arg_lo i = 16 + (8 * i)
let off_arg_hi i = 20 + (8 * i)

let audit_arch_x86_64 = 0xC000003El

(** Serialise [seccomp_data] to the 64-byte buffer cBPF loads from. *)
let data_to_bytes (d : seccomp_data) : Bytes.t =
  let b = Bytes.make 64 '\000' in
  Bytes.set_int32_le b off_nr (Int32.of_int d.nr);
  Bytes.set_int32_le b off_arch d.arch;
  Bytes.set_int64_le b off_ip_lo (Int64.of_int d.instruction_pointer);
  for i = 0 to 5 do
    Bytes.set_int64_le b (off_arg_lo i) d.args.(i)
  done;
  b

type verdict =
  | Ret of int32  (** value of the RET; caller masks out the action *)

exception Invalid_program of string

(** Kernel-style validation; raises {!Invalid_program}. *)
let validate (p : prog) =
  let n = Array.length p in
  if n = 0 then raise (Invalid_program "empty program");
  if n > maxinsns then raise (Invalid_program "program too long");
  Array.iteri
    (fun i ins ->
      let cls = ins.code land 0x07 in
      (match cls with
      | c when c = bpf_ld || c = bpf_ldx ->
          let mode = ins.code land 0xE0 in
          if mode <> bpf_abs && mode <> bpf_imm && mode <> bpf_mem
             && mode <> bpf_len
          then raise (Invalid_program "unsupported load mode");
          if mode = bpf_abs then (
            if ins.code land 0x18 <> bpf_w then
              raise (Invalid_program "seccomp requires word loads");
            let k = Int32.to_int ins.k in
            if k < 0 || k > 60 || k mod 4 <> 0 then
              raise (Invalid_program "load offset out of seccomp_data"));
          if mode = bpf_mem && (Int32.to_int ins.k < 0 || Int32.to_int ins.k > 15)
          then raise (Invalid_program "scratch slot out of range")
      | c when c = bpf_st || c = bpf_stx ->
          if Int32.to_int ins.k < 0 || Int32.to_int ins.k > 15 then
            raise (Invalid_program "scratch slot out of range")
      | c when c = bpf_alu || c = bpf_misc || c = bpf_ret -> ()
      | c when c = bpf_jmp ->
          let op = ins.code land 0xF0 in
          if op = bpf_ja then (
            let tgt = i + 1 + Int32.to_int ins.k in
            if tgt <= i || tgt >= n then
              raise (Invalid_program "jump out of bounds"))
          else (
            if i + 1 + ins.jt >= n || i + 1 + ins.jf >= n then
              raise (Invalid_program "conditional jump out of bounds"))
      | _ -> raise (Invalid_program "unknown instruction class"));
      if i = n - 1 && ins.code land 0x07 <> bpf_ret
         && ins.code land 0x07 <> bpf_jmp then
        raise (Invalid_program "program may fall off the end"))
    p;
  (* Conservative reachability: ensure a RET is reachable and that no
     straight-line path runs off the end. *)
  let rec reaches_ret i seen =
    if i >= n then false
    else if List.mem i seen then false
    else
      let ins = p.(i) in
      match ins.code land 0x07 with
      | c when c = bpf_ret -> true
      | c when c = bpf_jmp ->
          let op = ins.code land 0xF0 in
          if op = bpf_ja then reaches_ret (i + 1 + Int32.to_int ins.k) (i :: seen)
          else
            reaches_ret (i + 1 + ins.jt) (i :: seen)
            || reaches_ret (i + 1 + ins.jf) (i :: seen)
      | _ -> reaches_ret (i + 1) (i :: seen)
  in
  if not (reaches_ret 0 []) then
    raise (Invalid_program "no reachable return")

let u32 v = Int32.logand v 0xFFFFFFFFl

(** Run the filter over [data]; returns the raw RET value and the
    number of instructions executed (for cost accounting). *)
let run (p : prog) (d : seccomp_data) : int32 * int =
  let data = data_to_bytes d in
  let a = ref 0l and x = ref 0l in
  let m = Array.make 16 0l in
  let steps = ref 0 in
  let n = Array.length p in
  let rec exec i =
    if i >= n then Ret 0l (* validated programs never get here *)
    else begin
      incr steps;
      let ins = p.(i) in
      let k = ins.k in
      let kint = Int32.to_int (u32 k) in
      match ins.code land 0x07 with
      | c when c = bpf_ld -> (
          match ins.code land 0xE0 with
          | m' when m' = bpf_abs ->
              a := Bytes.get_int32_le data kint;
              exec (i + 1)
          | m' when m' = bpf_imm ->
              a := k;
              exec (i + 1)
          | m' when m' = bpf_mem ->
              a := m.(kint);
              exec (i + 1)
          | m' when m' = bpf_len ->
              a := 64l;
              exec (i + 1)
          | _ -> Ret 0l)
      | c when c = bpf_ldx -> (
          match ins.code land 0xE0 with
          | m' when m' = bpf_imm ->
              x := k;
              exec (i + 1)
          | m' when m' = bpf_mem ->
              x := m.(kint);
              exec (i + 1)
          | m' when m' = bpf_len ->
              x := 64l;
              exec (i + 1)
          | _ -> Ret 0l)
      | c when c = bpf_st ->
          m.(kint) <- !a;
          exec (i + 1)
      | c when c = bpf_stx ->
          m.(kint) <- !x;
          exec (i + 1)
      | c when c = bpf_alu ->
          let src = if ins.code land 0x08 = bpf_x then !x else k in
          let v =
            match ins.code land 0xF0 with
            | op when op = bpf_add -> Int32.add !a src
            | op when op = bpf_sub -> Int32.sub !a src
            | op when op = bpf_mul -> Int32.mul !a src
            | op when op = bpf_div ->
                if src = 0l then 0l
                else
                  Int32.of_int
                    (Int32.to_int (u32 !a) / Int32.to_int (u32 src))
            | op when op = bpf_mod ->
                if src = 0l then 0l
                else
                  Int32.of_int
                    (Int32.to_int (u32 !a) mod Int32.to_int (u32 src))
            | op when op = bpf_or -> Int32.logor !a src
            | op when op = bpf_and -> Int32.logand !a src
            | op when op = bpf_xor -> Int32.logxor !a src
            | op when op = bpf_lsh ->
                Int32.shift_left !a (Int32.to_int src land 31)
            | op when op = bpf_rsh ->
                Int32.shift_right_logical !a (Int32.to_int src land 31)
            | op when op = bpf_neg -> Int32.neg !a
            | _ -> !a
          in
          a := v;
          exec (i + 1)
      | c when c = bpf_jmp ->
          let op = ins.code land 0xF0 in
          if op = bpf_ja then exec (i + 1 + kint)
          else
            let src = if ins.code land 0x08 = bpf_x then !x else k in
            let au = Int64.of_int32 !a |> Int64.logand 0xFFFFFFFFL in
            let su = Int64.of_int32 src |> Int64.logand 0xFFFFFFFFL in
            let taken =
              match op with
              | o when o = bpf_jeq -> Int64.equal au su
              | o when o = bpf_jgt -> Int64.compare au su > 0
              | o when o = bpf_jge -> Int64.compare au su >= 0
              | o when o = bpf_jset -> Int64.logand au su <> 0L
              | _ -> false
            in
            exec (i + 1 + if taken then ins.jt else ins.jf)
      | c when c = bpf_ret ->
          if ins.code land 0x18 = 0x10 then Ret !a else Ret k
      | c when c = bpf_misc ->
          if ins.code land 0xF8 = bpf_txa then a := !x else x := !a;
          exec (i + 1)
      | _ -> Ret 0l
    end
  in
  let (Ret v) = exec 0 in
  (v, !steps)

(** {1 Filter construction helpers} *)

(** A filter that returns [action] for syscall numbers in [nrs] and
    [otherwise] for the rest. *)
let filter_on_nrs ~nrs ~action ~otherwise : prog =
  (* Layout: [ld nr] check_0 .. check_{n-1} [ret otherwise] [ret action].
     check_i sits at index 1+i; a match must land on index n+2. *)
  let n = List.length nrs in
  let checks =
    List.mapi
      (fun i nr -> jump (bpf_jmp lor bpf_jeq lor bpf_k) nr (n - i) 0)
      nrs
  in
  Array.of_list
    ([ stmt (bpf_ld lor bpf_w lor bpf_abs) off_nr ]
    @ checks
    @ [ stmt (bpf_ret lor bpf_k) otherwise;
        stmt (bpf_ret lor bpf_k) action ])

(** A filter allowing syscalls whose instruction pointer lies in
    [lo, hi) and returning [outside_action] otherwise — the classic
    way to let an interposer's own syscalls through seccomp.  The
    range must not straddle a 4 GiB boundary. *)
let filter_on_ip_range ~lo ~hi ~outside_action : prog =
  [|
    (* 0 *) stmt (bpf_ld lor bpf_w lor bpf_abs) off_ip_hi;
    (* 1: wrong upper word -> outside (index 6) *)
    jump (bpf_jmp lor bpf_jeq lor bpf_k) (lo lsr 32) 0 4;
    (* 2 *) stmt (bpf_ld lor bpf_w lor bpf_abs) off_ip_lo;
    (* 3: ip_lo < lo_lo -> outside *)
    jump (bpf_jmp lor bpf_jge lor bpf_k) (lo land 0xFFFFFFFF) 0 2;
    (* 4: ip_lo >= hi_lo -> outside *)
    jump (bpf_jmp lor bpf_jge lor bpf_k) (hi land 0xFFFFFFFF) 1 0;
    (* 5 *) stmt (bpf_ret lor bpf_k) Defs.seccomp_ret_allow;
    (* 6 *) stmt (bpf_ret lor bpf_k) outside_action;
  |]

let allow_all : prog = [| stmt (bpf_ret lor bpf_k) Defs.seccomp_ret_allow |]
