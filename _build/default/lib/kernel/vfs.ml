(** An in-memory filesystem (ramfs).

    Enough POSIX semantics for the paper's workloads: the web servers
    serve static files out of it, the coreutils simulations walk and
    mutate it.  Inodes are directories or regular files; paths are
    resolved against a root and a caller-supplied cwd. *)

type inode = {
  ino : int;
  mutable node : node;
  mutable mode : int;
  mutable mtime : int64;
}

and node = Dir of (string, inode) Hashtbl.t | File of file

and file = { mutable data : Bytes.t; mutable size : int }

type t = { root : inode; mutable next_ino : int }

type open_file = {
  inode : inode;
  mutable offset : int;
  flags : int;  (** open(2) flags *)
}

let fresh_ino t =
  let i = t.next_ino in
  t.next_ino <- i + 1;
  i

let create () =
  let root =
    { ino = 1; node = Dir (Hashtbl.create 16); mode = 0o755; mtime = 0L }
  in
  { root; next_ino = 2 }

let is_dir i = match i.node with Dir _ -> true | File _ -> false

(* Split "/a/b/c" into components; empty and "." segments drop out. *)
let components path =
  String.split_on_char '/' path
  |> List.filter (fun c -> c <> "" && c <> ".")

let absolute ~cwd path =
  if String.length path > 0 && path.[0] = '/' then components path
  else components cwd @ components path

(* Resolve, handling "..". *)
let resolve t ~cwd path : (inode, int) result =
  let rec go node trail = function
    | [] -> Ok node
    | ".." :: rest -> (
        match trail with
        | [] -> go t.root [] rest
        | parent :: up -> go parent up rest)
    | name :: rest -> (
        match node.node with
        | File _ -> Error Defs.enotdir
        | Dir entries -> (
            match Hashtbl.find_opt entries name with
            | Some child -> go child (node :: trail) rest
            | None -> Error Defs.enoent))
  in
  go t.root [] (absolute ~cwd path)

(* Resolve the parent directory of [path] plus the final component. *)
let resolve_parent t ~cwd path : (inode * string, int) result =
  match List.rev (absolute ~cwd path) with
  | [] -> Error Defs.eexist (* refers to the root *)
  | last :: rev_prefix -> (
      if last = ".." then Error Defs.einval
      else
        let prefix = List.rev rev_prefix in
        let rec go node trail = function
          | [] -> Ok (node, last)
          | ".." :: rest -> (
              match trail with
              | [] -> go t.root [] rest
              | parent :: up -> go parent up rest)
          | name :: rest -> (
              match node.node with
              | File _ -> Error Defs.enotdir
              | Dir entries -> (
                  match Hashtbl.find_opt entries name with
                  | Some child -> go child (node :: trail) rest
                  | None -> Error Defs.enoent))
        in
        go t.root [] prefix)

let lookup t ~cwd path = resolve t ~cwd path

let mkdir t ~cwd path ~mode : (unit, int) result =
  match resolve_parent t ~cwd path with
  | Error e -> Error e
  | Ok (parent, name) -> (
      match parent.node with
      | File _ -> Error Defs.enotdir
      | Dir entries ->
          if Hashtbl.mem entries name then Error Defs.eexist
          else begin
            Hashtbl.replace entries name
              { ino = fresh_ino t; node = Dir (Hashtbl.create 8); mode;
                mtime = 0L };
            Ok ()
          end)

(** Create or open a file per [flags]; returns an [open_file]. *)
let openf t ~cwd path ~flags ~mode : (open_file, int) result =
  let want_write = flags land 3 <> Defs.o_rdonly in
  match resolve t ~cwd path with
  | Ok inode -> (
      match inode.node with
      | Dir _ ->
          if want_write then Error Defs.eisdir
          else Ok { inode; offset = 0; flags }
      | File f ->
          if flags land Defs.o_directory <> 0 then Error Defs.enotdir
          else begin
            if flags land Defs.o_trunc <> 0 && want_write then f.size <- 0;
            Ok { inode; offset = 0; flags }
          end)
  | Error e when e = Defs.enoent && flags land Defs.o_creat <> 0 -> (
      match resolve_parent t ~cwd path with
      | Error e -> Error e
      | Ok (parent, name) -> (
          match parent.node with
          | File _ -> Error Defs.enotdir
          | Dir entries ->
              if Hashtbl.mem entries name then Error Defs.eexist
              else begin
                let inode =
                  { ino = fresh_ino t;
                    node = File { data = Bytes.create 0; size = 0 };
                    mode; mtime = 0L }
                in
                Hashtbl.replace entries name inode;
                Ok { inode; offset = 0; flags }
              end))
  | Error e -> Error e

let file_of of_ =
  match of_.inode.node with
  | File f -> Ok f
  | Dir _ -> Error Defs.eisdir

(** Read from the current offset; advances it. *)
let read (of_ : open_file) len : (string, int) result =
  match file_of of_ with
  | Error e -> Error e
  | Ok f ->
      let n = max 0 (min len (f.size - of_.offset)) in
      let s = Bytes.sub_string f.data of_.offset n in
      of_.offset <- of_.offset + n;
      Ok s

(** Read at an explicit offset without moving the file offset
    (pread-style; also used by sendfile). *)
let pread (of_ : open_file) ~pos len : (string, int) result =
  match file_of of_ with
  | Error e -> Error e
  | Ok f ->
      let n = max 0 (min len (f.size - pos)) in
      Ok (Bytes.sub_string f.data pos n)

let ensure_capacity f n =
  if Bytes.length f.data < n then begin
    let cap = max n (max 64 (2 * Bytes.length f.data)) in
    let nd = Bytes.make cap '\000' in
    Bytes.blit f.data 0 nd 0 f.size;
    f.data <- nd
  end

let write (of_ : open_file) (s : string) : (int, int) result =
  match file_of of_ with
  | Error e -> Error e
  | Ok f ->
      if of_.flags land 3 = Defs.o_rdonly then Error Defs.ebadf
      else begin
        if of_.flags land Defs.o_append <> 0 then of_.offset <- f.size;
        let need = of_.offset + String.length s in
        ensure_capacity f need;
        Bytes.blit_string s 0 f.data of_.offset (String.length s);
        of_.offset <- of_.offset + String.length s;
        if of_.offset > f.size then f.size <- of_.offset;
        Ok (String.length s)
      end

let lseek (of_ : open_file) ~off ~whence : (int, int) result =
  match file_of of_ with
  | Error e -> Error e
  | Ok f ->
      let base =
        if whence = Defs.seek_set then Some 0
        else if whence = Defs.seek_cur then Some of_.offset
        else if whence = Defs.seek_end then Some f.size
        else None
      in
      (match base with
      | None -> Error Defs.einval
      | Some b ->
          let pos = b + off in
          if pos < 0 then Error Defs.einval
          else begin
            of_.offset <- pos;
            Ok pos
          end)

let size_of inode =
  match inode.node with File f -> f.size | Dir d -> Hashtbl.length d

let unlink t ~cwd path : (unit, int) result =
  match resolve_parent t ~cwd path with
  | Error e -> Error e
  | Ok (parent, name) -> (
      match parent.node with
      | File _ -> Error Defs.enotdir
      | Dir entries -> (
          match Hashtbl.find_opt entries name with
          | None -> Error Defs.enoent
          | Some i when is_dir i -> Error Defs.eisdir
          | Some _ ->
              Hashtbl.remove entries name;
              Ok ()))

let rmdir t ~cwd path : (unit, int) result =
  match resolve_parent t ~cwd path with
  | Error e -> Error e
  | Ok (parent, name) -> (
      match parent.node with
      | File _ -> Error Defs.enotdir
      | Dir entries -> (
          match Hashtbl.find_opt entries name with
          | None -> Error Defs.enoent
          | Some { node = Dir d; _ } when Hashtbl.length d = 0 ->
              Hashtbl.remove entries name;
              Ok ()
          | Some { node = Dir _; _ } -> Error Defs.enotempty
          | Some _ -> Error Defs.enotdir))

let rename t ~cwd ~src ~dst : (unit, int) result =
  match (resolve_parent t ~cwd src, resolve_parent t ~cwd dst) with
  | Error e, _ | _, Error e -> Error e
  | Ok (sp, sn), Ok (dp, dn) -> (
      match (sp.node, dp.node) with
      | Dir se, Dir de -> (
          match Hashtbl.find_opt se sn with
          | None -> Error Defs.enoent
          | Some i ->
              Hashtbl.remove se sn;
              Hashtbl.replace de dn i;
              Ok ())
      | _ -> Error Defs.enotdir)

let chmod t ~cwd path ~mode : (unit, int) result =
  match resolve t ~cwd path with
  | Error e -> Error e
  | Ok i ->
      i.mode <- mode;
      Ok ()

let listdir t ~cwd path : (string list, int) result =
  match resolve t ~cwd path with
  | Error e -> Error e
  | Ok { node = Dir entries; _ } ->
      Ok (Hashtbl.fold (fun k _ acc -> k :: acc) entries [] |> List.sort compare)
  | Ok _ -> Error Defs.enotdir

(** Convenience for tests and workload setup: create/overwrite a file
    with [contents], creating parent directories. *)
let add_file t path contents =
  let rec mkdirs prefix = function
    | [] | [ _ ] -> ()
    | d :: rest ->
        let p = prefix ^ "/" ^ d in
        (match mkdir t ~cwd:"/" p ~mode:0o755 with Ok () | Error _ -> ());
        mkdirs p rest
  in
  mkdirs "" (components path);
  match
    openf t ~cwd:"/" path
      ~flags:(Defs.o_wronly lor Defs.o_creat lor Defs.o_trunc)
      ~mode:0o644
  with
  | Error e -> Error e
  | Ok of_ -> (
      match write of_ contents with Ok _ -> Ok () | Error e -> Error e)

let read_file t path : (string, int) result =
  match openf t ~cwd:"/" path ~flags:Defs.o_rdonly ~mode:0 with
  | Error e -> Error e
  | Ok of_ -> read of_ (size_of of_.inode)
