test/test_baselines.ml: Alcotest Baselines Char Defs Isa Kernel Lazypoline List Loader QCheck QCheck_alcotest Sim_asm Sim_isa Sim_kernel Test_lazypoline Tutil Types
