test/test_experiments.ml: Alcotest Fun Harness Int64 List Printf Unix Workloads
