test/test_bpf.ml: Alcotest Array Bpf Defs Int32 Int64 List QCheck QCheck_alcotest Sim_kernel
