test/test_mpk.ml: Alcotest Defs Int64 Isa Kernel Lazypoline List Loader Printf Sim_asm Sim_isa Sim_kernel Tutil Types Workloads
