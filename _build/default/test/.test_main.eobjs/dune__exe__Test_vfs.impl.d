test/test_vfs.ml: Alcotest Buffer Defs Gen QCheck QCheck_alcotest Sim_kernel Vfs
