test/test_net.ml: Alcotest Buffer Fifo Gen List Net QCheck QCheck_alcotest Sim_kernel String
