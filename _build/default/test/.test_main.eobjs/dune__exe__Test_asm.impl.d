test/test_asm.ml: Alcotest Asm Decode Gen Int32 Isa List Printf QCheck QCheck_alcotest Sim_asm Sim_isa String
