test/test_workloads.ml: Alcotest Buffer Char Defs Kernel Lazypoline List Minicc Net Printf Sim_isa Sim_kernel String Types Vfs Workloads
