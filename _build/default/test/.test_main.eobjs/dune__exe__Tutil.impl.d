test/tutil.ml: Alcotest Defs Kernel Loader Sim_asm Sim_isa Sim_kernel Types
