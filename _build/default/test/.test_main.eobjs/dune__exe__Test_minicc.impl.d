test/test_minicc.ml: Alcotest Buffer Char Gen Int64 Kernel List Minicc Printf QCheck QCheck_alcotest Sim_kernel String Types Vfs
