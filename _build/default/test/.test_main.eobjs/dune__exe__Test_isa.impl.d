test/test_isa.ml: Alcotest Decode Disasm Encode Format Int32 Isa List QCheck QCheck_alcotest Sim_isa String
