test/test_lazypoline.ml: Alcotest Array Char Defs Hashtbl Int64 Isa Kernel Lazypoline List Loader Sim_asm Sim_isa Sim_kernel Sim_mem String Tutil Types Vfs
