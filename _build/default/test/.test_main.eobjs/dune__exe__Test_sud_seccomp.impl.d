test/test_sud_seccomp.ml: Alcotest Array Bpf Buffer Char Defs Hashtbl Int64 Isa Kernel Loader Printf Sim_asm Sim_costs Sim_isa Sim_kernel Tutil Types
