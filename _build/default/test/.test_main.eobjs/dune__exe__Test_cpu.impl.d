test/test_cpu.ml: Alcotest Array Cpu Int64 Isa List Mem Printf Sim_asm Sim_cpu Sim_isa Sim_mem String
