test/test_minicc_interpose.ml: Alcotest Baselines Buffer Kernel Lazypoline List Minicc Printf QCheck QCheck_alcotest Sim_kernel String Test_minicc Types Vfs
