test/test_kernel_more.ml: Alcotest Char Defs Isa Kernel Minicc Printf Sim_asm Sim_isa Sim_kernel Tutil Types Vfs
