test/test_mem.ml: Alcotest Gen List Mem Printf QCheck QCheck_alcotest Sim_mem String
