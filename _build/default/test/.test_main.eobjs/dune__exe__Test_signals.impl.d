test/test_signals.ml: Alcotest Defs Int64 Isa Sim_asm Sim_isa Sim_kernel Tutil
