test/test_lazypoline_edge.ml: Alcotest Defs Hashtbl Int64 Isa Kernel Lazypoline List Loader Sim_asm Sim_cpu Sim_isa Sim_kernel Tutil Types
