(** VFS tests. *)

open Sim_kernel

let fs () = Vfs.create ()

let test_create_read_write () =
  let v = fs () in
  (match Vfs.add_file v "/www/index.html" "hello" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "add_file: %s" (Defs.errno_name e));
  match Vfs.read_file v "/www/index.html" with
  | Ok s -> Alcotest.(check string) "contents" "hello" s
  | Error e -> Alcotest.failf "read: %s" (Defs.errno_name e)

let test_enoent () =
  match Vfs.read_file (fs ()) "/nope" with
  | Error e -> Alcotest.(check int) "enoent" Defs.enoent e
  | Ok _ -> Alcotest.fail "expected ENOENT"

let test_append_and_seek () =
  let v = fs () in
  ignore (Vfs.add_file v "/f" "abc");
  let of_ =
    match
      Vfs.openf v ~cwd:"/" "/f" ~flags:(Defs.o_wronly lor Defs.o_append)
        ~mode:0
    with
    | Ok o -> o
    | Error _ -> Alcotest.fail "open"
  in
  ignore (Vfs.write of_ "def");
  (match Vfs.read_file v "/f" with
  | Ok s -> Alcotest.(check string) "appended" "abcdef" s
  | Error _ -> Alcotest.fail "read");
  let ro =
    match Vfs.openf v ~cwd:"/" "/f" ~flags:Defs.o_rdonly ~mode:0 with
    | Ok o -> o
    | Error _ -> Alcotest.fail "open ro"
  in
  ignore (Vfs.lseek ro ~off:3 ~whence:Defs.seek_set);
  (match Vfs.read ro 100 with
  | Ok s -> Alcotest.(check string) "after seek" "def" s
  | Error _ -> Alcotest.fail "read after seek");
  match Vfs.write ro "x" with
  | Error e -> Alcotest.(check int) "ro write" Defs.ebadf e
  | Ok _ -> Alcotest.fail "write on O_RDONLY succeeded"

let test_trunc () =
  let v = fs () in
  ignore (Vfs.add_file v "/f" "0123456789");
  (match
     Vfs.openf v ~cwd:"/" "/f" ~flags:(Defs.o_wronly lor Defs.o_trunc) ~mode:0
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "open trunc");
  match Vfs.read_file v "/f" with
  | Ok s -> Alcotest.(check string) "truncated" "" s
  | Error _ -> Alcotest.fail "read"

let test_relative_paths_and_dotdot () =
  let v = fs () in
  ignore (Vfs.mkdir v ~cwd:"/" "/a" ~mode:0o755);
  ignore (Vfs.mkdir v ~cwd:"/" "/a/b" ~mode:0o755);
  ignore (Vfs.add_file v "/a/f" "x");
  (match Vfs.lookup v ~cwd:"/a/b" "../f" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "../f: %s" (Defs.errno_name e));
  match Vfs.lookup v ~cwd:"/a/b" "../../a/f" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "../../a/f: %s" (Defs.errno_name e)

let test_unlink_rename () =
  let v = fs () in
  ignore (Vfs.add_file v "/f" "x");
  (match Vfs.rename v ~cwd:"/" ~src:"/f" ~dst:"/g" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rename");
  (match Vfs.read_file v "/g" with
  | Ok s -> Alcotest.(check string) "moved" "x" s
  | Error _ -> Alcotest.fail "read after rename");
  (match Vfs.unlink v ~cwd:"/" "/g" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "unlink");
  match Vfs.read_file v "/g" with
  | Error e -> Alcotest.(check int) "gone" Defs.enoent e
  | Ok _ -> Alcotest.fail "file survived unlink"

let test_rmdir_nonempty () =
  let v = fs () in
  ignore (Vfs.mkdir v ~cwd:"/" "/d" ~mode:0o755);
  ignore (Vfs.add_file v "/d/f" "x");
  (match Vfs.rmdir v ~cwd:"/" "/d" with
  | Error e -> Alcotest.(check int) "notempty" Defs.enotempty e
  | Ok () -> Alcotest.fail "rmdir nonempty succeeded");
  ignore (Vfs.unlink v ~cwd:"/" "/d/f");
  match Vfs.rmdir v ~cwd:"/" "/d" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "rmdir empty failed"

let test_listdir () =
  let v = fs () in
  ignore (Vfs.add_file v "/d/b" "1");
  ignore (Vfs.add_file v "/d/a" "2");
  match Vfs.listdir v ~cwd:"/" "/d" with
  | Ok l -> Alcotest.(check (list string)) "sorted" [ "a"; "b" ] l
  | Error _ -> Alcotest.fail "listdir"

let prop_write_read_roundtrip =
  QCheck.Test.make ~count:200 ~name:"vfs write/read roundtrip"
    QCheck.(string_of_size QCheck.Gen.(int_range 0 100_000))
    (fun s ->
      let v = fs () in
      (match Vfs.add_file v "/blob" s with Ok () -> () | Error _ -> ());
      Vfs.read_file v "/blob" = Ok s)

let prop_partial_reads_concat =
  QCheck.Test.make ~count:100 ~name:"chunked reads reassemble file"
    QCheck.(pair (string_of_size Gen.(int_range 1 5000)) (int_range 1 512))
    (fun (s, chunk) ->
      let v = fs () in
      ignore (Vfs.add_file v "/f" s);
      match Vfs.openf v ~cwd:"/" "/f" ~flags:Defs.o_rdonly ~mode:0 with
      | Error _ -> false
      | Ok of_ ->
          let buf = Buffer.create 16 in
          let rec go () =
            match Vfs.read of_ chunk with
            | Ok "" -> ()
            | Ok part ->
                Buffer.add_string buf part;
                go ()
            | Error _ -> ()
          in
          go ();
          Buffer.contents buf = s)

let tests =
  [
    Alcotest.test_case "create/read/write" `Quick test_create_read_write;
    Alcotest.test_case "enoent" `Quick test_enoent;
    Alcotest.test_case "append and seek" `Quick test_append_and_seek;
    Alcotest.test_case "truncate" `Quick test_trunc;
    Alcotest.test_case "relative paths" `Quick test_relative_paths_and_dotdot;
    Alcotest.test_case "unlink/rename" `Quick test_unlink_rename;
    Alcotest.test_case "rmdir nonempty" `Quick test_rmdir_nonempty;
    Alcotest.test_case "listdir" `Quick test_listdir;
    QCheck_alcotest.to_alcotest prop_write_read_roundtrip;
    QCheck_alcotest.to_alcotest prop_partial_reads_concat;
  ]
