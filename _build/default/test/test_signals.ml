(** Signal machinery tests: sigaction, handler execution, sigreturn,
    masking, fatal defaults, and xstate preservation across handlers. *)

open Sim_isa
open Sim_asm.Asm
open Sim_kernel

(* Common prologue: map a RW page at 0x9000 for globals. *)
let map_globals =
  [
    mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 4096;
    mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
    mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
    mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
    mov_ri Isa.rax Defs.sys_mmap; syscall;
  ]

(* Build the sigaction struct at rsp-512 pointing to labels
   "handler" and "restorer", then rt_sigaction(sig, act, 0). *)
let install_handler sig_ =
  [
    mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 512;
    Lea_ip (Isa.rcx, "handler");
    store Isa.rbx 0 Isa.rcx;
    mov_ri Isa.rcx 0;
    store Isa.rbx 8 Isa.rcx;
    store Isa.rbx 16 Isa.rcx;
    Lea_ip (Isa.rcx, "restorer");
    store Isa.rbx 24 Isa.rcx;
    mov_ri Isa.rdi sig_;
    mov_rr Isa.rsi Isa.rbx;
    mov_ri Isa.rdx 0;
    mov_ri Isa.rax Defs.sys_rt_sigaction;
    syscall;
  ]

let restorer_block =
  [ Label "restorer"; mov_ri Isa.rax Defs.sys_rt_sigreturn; syscall ]

let kill_self sig_ =
  [
    mov_ri Isa.rax Defs.sys_getpid; syscall;
    mov_rr Isa.rdi Isa.rax;
    mov_ri Isa.rsi sig_;
    mov_ri Isa.rax Defs.sys_kill; syscall;
  ]

let test_handler_runs_and_returns () =
  let prog =
    map_globals
    @ install_handler Defs.sigusr1
    @ kill_self Defs.sigusr1
    @ [
        (* after handler returned: exit with the global's value *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rdi Isa.rbx 0;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "handler";
        mov_ri Isa.rbx 0x9000;
        mov_ri Isa.rcx 33;
        store Isa.rbx 0 Isa.rcx;
        ret;
      ]
    @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "handler wrote global" 33 code

let test_handler_preserves_registers () =
  (* The interrupted context's registers survive the handler, which
     clobbers them wildly. *)
  let prog =
    map_globals
    @ install_handler Defs.sigusr1
    @ [ mov_ri Isa.r14 777 ]
    @ kill_self Defs.sigusr1
    @ [
        mov_rr Isa.rdi Isa.r14;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "handler";
        mov_ri Isa.r14 0;
        mov_ri Isa.r15 0;
        ret;
      ]
    @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "r14 preserved" 777 code

let test_handler_preserves_xmm () =
  (* xstate is saved/restored in the signal frame by the kernel. *)
  let prog =
    map_globals
    @ install_handler Defs.sigusr1
    @ [ mov_ri Isa.rcx 4242; i (Isa.Movq_xr (7, Isa.rcx)) ]
    @ kill_self Defs.sigusr1
    @ [
        i (Isa.Movq_rx (Isa.rdi, 7));
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "handler";
        mov_ri Isa.rcx 1;
        i (Isa.Movq_xr (7, Isa.rcx));
        ret;
      ]
    @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "xmm7 preserved" 4242 code

let test_default_action_kills () =
  let prog = kill_self Defs.sigusr2 @ Tutil.exit_with 0 in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "killed" (128 + Defs.sigusr2) code

let test_sigchld_ignored_by_default () =
  let prog = kill_self Defs.sigchld @ Tutil.exit_with 9 in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "survived" 9 code

let test_sig_ign () =
  (* Set SIGUSR1 to SIG_IGN, then kill self: survives. *)
  let prog =
    [
      mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 512;
      mov_ri Isa.rcx 1 (* SIG_IGN *);
      store Isa.rbx 0 Isa.rcx;
      mov_ri Isa.rcx 0;
      store Isa.rbx 8 Isa.rcx; store Isa.rbx 16 Isa.rcx;
      store Isa.rbx 24 Isa.rcx;
      mov_ri Isa.rdi Defs.sigusr1;
      mov_rr Isa.rsi Isa.rbx;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_rt_sigaction; syscall;
    ]
    @ kill_self Defs.sigusr1
    @ Tutil.exit_with 4
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "ignored" 4 code

let test_sigprocmask_defers () =
  (* Block USR1, send it, then observe it is pending only after
     unblocking (handler sets the global). *)
  let prog =
    map_globals
    @ install_handler Defs.sigusr1
    @ [
        (* mask = 1 << (USR1-1) at rsp-600 *)
        mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 600;
        mov_ri64 Isa.rcx (Int64.shift_left 1L (Defs.sigusr1 - 1));
        store Isa.rbx 0 Isa.rcx;
        mov_ri Isa.rdi 0 (* SIG_BLOCK *);
        mov_rr Isa.rsi Isa.rbx;
        mov_ri Isa.rdx 0;
        mov_ri Isa.rax Defs.sys_rt_sigprocmask; syscall;
      ]
    @ kill_self Defs.sigusr1
    @ [
        (* handler must NOT have run: global still 0 *)
        mov_ri Isa.rbx 0x9000;
        load Isa.r13 Isa.rbx 0;
        (* unblock *)
        mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 600;
        mov_ri Isa.rdi 1 (* SIG_UNBLOCK *);
        mov_rr Isa.rsi Isa.rbx;
        mov_ri Isa.rdx 0;
        mov_ri Isa.rax Defs.sys_rt_sigprocmask; syscall;
        (* now the handler ran: exit(10*was_pending_before + global) *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rdi Isa.rbx 0;
        mov_ri Isa.rcx 10;
        i (Isa.Alu_rr (Isa.Mul, Isa.r13, Isa.rcx));
        add_rr Isa.rdi Isa.r13;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "handler";
        mov_ri Isa.rbx 0x9000;
        mov_ri Isa.rcx 1;
        store Isa.rbx 0 Isa.rcx;
        ret;
      ]
    @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  (* r13 (global before unblock) = 0, global after = 1 -> exit 1 *)
  Alcotest.(check int) "deferred until unblock" 1 code

let test_nested_handler_mask () =
  (* While the USR1 handler runs, USR1 is masked: a second kill inside
     the handler defers until after sigreturn; global counts 2 in the
     end but never recurses (depth tracked at 0x9008). *)
  let prog =
    map_globals
    @ install_handler Defs.sigusr1
    @ kill_self Defs.sigusr1
    @ [
        (* after first handler completes, the deferred one runs too;
           then exit(count + 10*maxdepth) *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rdi Isa.rbx 0;
        load Isa.rcx Isa.rbx 8;
        mov_ri Isa.rdx 10;
        i (Isa.Alu_rr (Isa.Mul, Isa.rcx, Isa.rdx));
        add_rr Isa.rdi Isa.rcx;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "handler";
        (* count++ *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rcx Isa.rbx 0;
        add_ri Isa.rcx 1;
        store Isa.rbx 0 Isa.rcx;
        (* depth = max(depth, count-in-flight): we approximate by
           recording 1 on entry; a recursive entry would record 2 via
           the in-flight counter at 0x9010 *)
        load Isa.rcx Isa.rbx 16;
        add_ri Isa.rcx 1;
        store Isa.rbx 16 Isa.rcx;
        load Isa.rdx Isa.rbx 8;
        cmp_rr Isa.rcx Isa.rdx;
        Jcc_l (Isa.Le, "no_new_max");
        store Isa.rbx 8 Isa.rcx;
        Label "no_new_max";
        (* second kill only on first invocation *)
        load Isa.rcx Isa.rbx 0;
        cmp_ri Isa.rcx 1;
        Jcc_l (Isa.Ne, "skip_rekill");
      ]
    @ kill_self Defs.sigusr1
    @ [
        Label "skip_rekill";
        (* in-flight-- *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rcx Isa.rbx 16;
        sub_ri Isa.rcx 1;
        store Isa.rbx 16 Isa.rcx;
        ret;
      ]
    @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  (* count=2, maxdepth=1 -> 2 + 10 = 12 *)
  Alcotest.(check int) "ran twice, never nested" 12 code

let tests =
  [
    Alcotest.test_case "handler runs and returns" `Quick
      test_handler_runs_and_returns;
    Alcotest.test_case "handler preserves GPRs" `Quick
      test_handler_preserves_registers;
    Alcotest.test_case "handler preserves xmm" `Quick
      test_handler_preserves_xmm;
    Alcotest.test_case "default action kills" `Quick test_default_action_kills;
    Alcotest.test_case "SIGCHLD default-ignored" `Quick
      test_sigchld_ignored_by_default;
    Alcotest.test_case "SIG_IGN" `Quick test_sig_ign;
    Alcotest.test_case "sigprocmask defers" `Quick test_sigprocmask_defers;
    Alcotest.test_case "no recursive delivery while masked" `Quick
      test_nested_handler_mask;
  ]
