(** Miniature end-to-end runs of every experiment in the harness,
    asserting the paper's qualitative shapes (the bench executable
    prints the full-size versions). *)

let quiet f =
  (* The experiment printers write to stdout; capture and discard so
     test output stays readable. *)
  let saved = Unix.dup Unix.stdout in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  flush stdout;
  Unix.dup2 null Unix.stdout;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Unix.close null)
    f

let test_table1_shape () =
  let rows = quiet (fun () -> Harness.Experiments.table1 ~iters:2_000 ()) in
  let find m = List.find (fun r -> r.Harness.Experiments.mech = m) rows in
  let lp = find "lazypoline (this work)" in
  Alcotest.(check string) "lazypoline fully expressive" "Full"
    lp.Harness.Experiments.expressiveness;
  Alcotest.(check bool) "lazypoline exhaustive" true
    lp.Harness.Experiments.exhaustive;
  Alcotest.(check string) "lazypoline efficient" "High"
    lp.Harness.Experiments.efficiency;
  let z = find "Binary Rewriting (zpoline)" in
  Alcotest.(check bool) "zpoline not exhaustive" false
    z.Harness.Experiments.exhaustive;
  let bpf = find "seccomp-bpf" in
  Alcotest.(check string) "seccomp-bpf limited" "Limited"
    bpf.Harness.Experiments.expressiveness

let test_table2_bands () =
  let rows =
    quiet (fun () -> Harness.Experiments.table2 ~iters:5_000 ~reps:1 ())
  in
  let find c =
    (List.find (fun r -> r.Harness.Experiments.config = c) rows)
      .Harness.Experiments.overhead
  in
  let open Workloads.Microbench_prog in
  let band lo hi v name =
    Alcotest.(check bool)
      (Printf.sprintf "%s in [%g, %g] (got %.2f)" name lo hi v)
      true (v >= lo && v <= hi)
  in
  (* paper: 1.66x / 2.38x / 20.8x / 1.42x *)
  band 1.5 1.9 (find Lazypoline_noxstate) "lazypoline w/o xstate";
  band 2.1 2.7 (find Lazypoline_full) "lazypoline";
  band 17.0 25.0 (find Sud) "SUD";
  band 1.3 1.55 (find Native_sud_allow) "baseline+SUD"

let test_fig4_decomposition () =
  let r = quiet (fun () -> Harness.Experiments.fig4 ~iters:5_000 ()) in
  let open Harness.Experiments in
  (* fast path without SUD matches zpoline within 10% *)
  Alcotest.(check bool) "fastpath ~ zpoline" true
    (abs_float (r.nosud_cpi -. r.zpoline_cpi) /. r.zpoline_cpi < 0.10);
  (* the three components are positive and sum to the total *)
  let a = r.nosud_cpi -. r.native_cpi in
  let b = r.noxstate_cpi -. r.nosud_cpi in
  let c = r.full_cpi -. r.noxstate_cpi in
  Alcotest.(check bool) "components positive" true (a > 0. && b > 0. && c > 0.);
  Alcotest.(check (float 0.01)) "components sum"
    (r.full_cpi -. r.native_cpi)
    (a +. b +. c);
  (* xstate is the largest component, as in the paper's Fig. 4 *)
  Alcotest.(check bool) "xstate dominates" true (c > a && c > b)

let test_table3_counts () =
  let rows = quiet (fun () -> Harness.Experiments.table3 ()) in
  let ubuntu =
    List.filter (fun r -> r.Harness.Experiments.ubuntu_expects_xstate) rows
  in
  let clear =
    List.filter (fun r -> r.Harness.Experiments.clear_expects_xstate) rows
  in
  Alcotest.(check int) "Ubuntu: 4/10 affected" 4 (List.length ubuntu);
  Alcotest.(check (list string)) "the pthread-init four"
    [ "ls"; "mkdir"; "mv"; "cp" ]
    (List.map (fun r -> r.Harness.Experiments.util) ubuntu);
  Alcotest.(check int) "Clear Linux: 10/10 affected" 10 (List.length clear)

let test_exhaustiveness_verdict () =
  let r = quiet (fun () -> Harness.Experiments.exhaustiveness ()) in
  Alcotest.(check (list string)) "zpoline alone misses the JITted getpid"
    [ "SUD"; "lazypoline" ]
    r.Harness.Experiments.jit_getpid_caught_by;
  Alcotest.(check bool) "lazypoline == SUD" true
    (r.Harness.Experiments.lazypoline_trace = r.Harness.Experiments.sud_trace)

let test_listing1_verdict () =
  let (p1, n1), (p2, n2) = quiet (fun () -> Harness.Experiments.listing1 ()) in
  let expected = Int64.of_int Workloads.Coreutils.libc_state in
  Alcotest.(check bool) "preserved run correct" true
    (p1 = expected && n1 = expected);
  Alcotest.(check bool) "unpreserved run corrupt" true
    (p2 <> expected || n2 <> expected)

let test_fig5_miniature () =
  let points =
    quiet (fun () ->
        Harness.Experiments.fig5 ~sizes:[ 1; 64 ] ~worker_counts:[ 1 ]
          ~flavours:[ Workloads.Webserver.Nginx_like ] ())
  in
  let get size c =
    (List.find
       (fun p ->
         p.Harness.Experiments.size_kb = size
         && p.Harness.Experiments.ws_config = c)
       points)
      .Harness.Experiments.req_per_sec
  in
  let open Harness.Experiments in
  let n1 = get 1 Ws_native
  and z1 = get 1 Ws_zpoline
  and lx1 = get 1 Ws_lazy_nox
  and l1 = get 1 Ws_lazy
  and s1 = get 1 Ws_sud in
  (* ordering at 1KB *)
  Alcotest.(check bool) "native fastest" true (n1 > z1 && z1 > lx1 && lx1 > l1);
  Alcotest.(check bool) "lazypoline ~2x SUD" true (l1 > 1.6 *. s1);
  Alcotest.(check bool) "lazypoline-nox >= 90% native" true
    (lx1 /. n1 >= 0.90);
  (* gaps shrink with file size *)
  let n64 = get 64 Ws_native and s64 = get 64 Ws_sud in
  Alcotest.(check bool) "SUD gap shrinks with size" true
    (s64 /. n64 > s1 /. n1)

let test_ablation_shape () =
  let classic, selector_only, amortisation =
    quiet (fun () -> Harness.Experiments.ablation ~iters:3_000 ())
  in
  Alcotest.(check bool) "hybrid >> classic" true
    (classic > 8.0 *. selector_only);
  (* per-iteration cost decreases monotonically with iteration count *)
  let rec mono = function
    | (_, a) :: ((_, b) :: _ as tl) -> a >= b && mono tl
    | _ -> true
  in
  Alcotest.(check bool) "amortisation curve monotone" true (mono amortisation)

let tests =
  [
    Alcotest.test_case "table I shape" `Quick test_table1_shape;
    Alcotest.test_case "table II bands" `Quick test_table2_bands;
    Alcotest.test_case "fig 4 decomposition" `Quick test_fig4_decomposition;
    Alcotest.test_case "table III counts" `Quick test_table3_counts;
    Alcotest.test_case "exhaustiveness verdict" `Quick
      test_exhaustiveness_verdict;
    Alcotest.test_case "listing 1 verdict" `Quick test_listing1_verdict;
    Alcotest.test_case "fig 5 miniature" `Slow test_fig5_miniature;
    Alcotest.test_case "ablation shape" `Quick test_ablation_shape;
  ]
