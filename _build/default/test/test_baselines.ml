(** Tests of the baseline interposers, and the cross-mechanism
    equivalence properties that anchor the evaluation: lazypoline
    must behave exactly like the exhaustive kernel mechanisms, while
    zpoline visibly misses dynamically generated code. *)

open Sim_isa
open Sim_asm.Asm
open Sim_kernel
module Hook = Lazypoline.Hook

type mech = Native | Lazy | Zpoline | Sud | Seccomp_user | Ptrace

let run_under mech ?(vfs_setup = fun _ -> ()) items =
  let k = Kernel.create () in
  vfs_setup k;
  let img = Loader.image_of_items items in
  let t = Kernel.spawn k img in
  let hook, trace = Hook.tracing () in
  (match mech with
  | Native -> ()
  | Lazy -> ignore (Lazypoline.install k t hook)
  | Zpoline -> ignore (Baselines.Zpoline.install k t hook)
  | Sud -> ignore (Baselines.Sud_interposer.install k t hook)
  | Seccomp_user -> ignore (Baselines.Seccomp_user.install k t hook)
  | Ptrace -> ignore (Baselines.Ptrace_interposer.install k t hook));
  let finished = Kernel.run_until_exit ~max_slices:400_000 k in
  if not finished then Alcotest.fail "program did not terminate";
  (t.Types.exit_code, List.map fst (Hook.recorded trace), k, t)

let simple_prog =
  [ mov_ri Isa.rax Defs.sys_getpid; syscall; mov_rr Isa.rdi Isa.rax;
    mov_ri Isa.rax Defs.sys_exit_group; syscall ]

let test_zpoline_static_interposition () =
  let code, trace, _, _ = run_under Zpoline simple_prog in
  Alcotest.(check int) "result intact" 1 code;
  Alcotest.(check (list int)) "trace"
    [ Defs.sys_getpid; Defs.sys_exit_group ]
    trace

let test_zpoline_rewrites_all_static_sites () =
  let k = Kernel.create () in
  let img = Loader.image_of_items simple_prog in
  let t = Kernel.spawn k img in
  let hook = Hook.dummy () in
  let st = Baselines.Zpoline.install k t hook in
  Alcotest.(check int) "two sites rewritten" 2
    st.Baselines.Zpoline.stats.Baselines.Zpoline.sites_rewritten

let test_zpoline_misses_jit () =
  (* The paper's Section V-A experiment in miniature: the JITted
     getpid escapes zpoline but not the exhaustive mechanisms. *)
  let jit = Test_lazypoline.jit_prog in
  let _, ztrace, _, _ = run_under Zpoline jit in
  let _, ltrace, _, _ = run_under Lazy jit in
  let _, strace_, _, _ = run_under Sud jit in
  Alcotest.(check bool) "zpoline missed the JITted getpid" false
    (List.mem Defs.sys_getpid ztrace);
  Alcotest.(check bool) "lazypoline caught it" true
    (List.mem Defs.sys_getpid ltrace);
  Alcotest.(check bool) "SUD caught it" true
    (List.mem Defs.sys_getpid strace_);
  Alcotest.(check (list int)) "lazypoline trace == SUD trace" strace_ ltrace

let test_sud_baseline_correctness () =
  let code, trace, _, _ = run_under Sud simple_prog in
  Alcotest.(check int) "result intact" 1 code;
  Alcotest.(check (list int)) "trace"
    [ Defs.sys_getpid; Defs.sys_exit_group ]
    trace

let test_seccomp_user_correctness () =
  let code, trace, _, _ = run_under Seccomp_user simple_prog in
  Alcotest.(check int) "result intact" 1 code;
  Alcotest.(check (list int)) "trace"
    [ Defs.sys_getpid; Defs.sys_exit_group ]
    trace

let test_ptrace_correctness () =
  let code, trace, _, _ = run_under Ptrace simple_prog in
  Alcotest.(check int) "result intact" 1 code;
  Alcotest.(check (list int)) "trace"
    [ Defs.sys_getpid; Defs.sys_exit_group ]
    trace

let test_sud_baseline_fork () =
  let prog =
    [
      mov_ri Isa.rax Defs.sys_fork; syscall;
      cmp_ri Isa.rax 0;
      Jcc_l (Isa.Eq, "child");
      mov_ri64 Isa.rdi (-1L);
      mov_rr Isa.rsi Isa.rsp; sub_ri Isa.rsi 256;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_wait4; syscall;
      mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 256;
      load Isa.rdi Isa.rbx 0;
      i (Isa.Shift (Isa.Shr, Isa.rdi, 8));
      mov_ri Isa.rax Defs.sys_exit_group; syscall;
      Label "child";
      mov_ri Isa.rax Defs.sys_getuid; syscall;
    ]
    @ Tutil.exit_with 3
  in
  let code, trace, _, _ = run_under Sud prog in
  Alcotest.(check int) "child status" 3 code;
  Alcotest.(check bool) "child getuid interposed (re-armed)" true
    (List.mem Defs.sys_getuid trace)

let test_ptrace_can_suppress () =
  let k = Kernel.create () in
  let img = Loader.image_of_items simple_prog in
  let t = Kernel.spawn k img in
  let hook = Hook.dummy () in
  hook.Hook.on_syscall <-
    (fun c ->
      if c.Hook.nr = Defs.sys_getpid then Hook.Return 42L else Hook.Emulate);
  ignore (Baselines.Ptrace_interposer.install k t hook);
  ignore (Kernel.run_until_exit k);
  Alcotest.(check int) "suppressed getpid returned 42" 42 t.Types.exit_code

let test_seccomp_bpf_sandbox () =
  let k = Kernel.create () in
  let img =
    Loader.image_of_items
      ([ mov_ri Isa.rax Defs.sys_getuid; syscall;
         mov_ri Isa.rbx 0; sub_rr Isa.rbx Isa.rax;
         mov_rr Isa.rdi Isa.rbx;
         mov_ri Isa.rax Defs.sys_exit_group; syscall ])
  in
  let t = Kernel.spawn k img in
  ignore
    (Baselines.Seccomp_bpf.install k t
       (Baselines.Seccomp_bpf.deny_nrs [ Defs.sys_getuid ]));
  ignore (Kernel.run_until_exit k);
  Alcotest.(check int) "getuid denied" Defs.eperm t.Types.exit_code

let test_zpoline_data_corruption_hazard () =
  (* Section II-B's other hazard: static scanning can MISidentify data
     as code.  A constant pool in an executable segment contains the
     bytes 0F 05; the linear sweep reads them as a syscall instruction
     and zpoline destructively rewrites them.  lazypoline never
     rewrites anything the kernel did not prove to be a live syscall,
     so the data survives. *)
  let prog =
    [
      Label "start";
      Jmp_l "code";
      Label "pool";
      Bytes "\x0f\x05\x11\x22";  (* data that looks like `syscall` *)
      Label "code";
      (* exit(first two pool bytes summed) *)
      Lea_ip (Isa.rbx, "pool");
      load8 Isa.rdi Isa.rbx 0;
      load8 Isa.rcx Isa.rbx 1;
      add_rr Isa.rdi Isa.rcx;
    ]
    @ [ mov_ri Isa.rax Defs.sys_exit_group; syscall ]
  in
  let expected = 0x0f + 0x05 in
  let native_code, _, _, _ = run_under Native prog in
  Alcotest.(check int) "native reads its pool" expected native_code;
  let lazy_code, _, _, _ = run_under Lazy prog in
  Alcotest.(check int) "lazypoline leaves data alone" expected lazy_code;
  let z_code, _, _, _ = run_under Zpoline prog in
  (* call rax = FF D0: the pool now sums to 0xff + 0xd0 (mod 256) *)
  Alcotest.(check int) "zpoline corrupted the pool"
    ((0xff + 0xd0) land 0xff)
    (z_code land 0xff);
  Alcotest.(check bool) "corruption happened" true (z_code <> native_code)

(* --- the equivalence property ------------------------------------- *)

(* Random straight-line programs over benign syscalls, accumulating a
   checksum of results in r13; exits with the checksum's low bits. *)
let gen_ops =
  QCheck.Gen.(list_size (int_range 1 15) (int_range 0 5))

let prog_of_ops ops =
  let block op =
    match op with
    | 0 -> [ mov_ri Isa.rax Defs.sys_getpid; syscall ]
    | 1 -> [ mov_ri Isa.rax Defs.sys_gettid; syscall ]
    | 2 -> [ mov_ri Isa.rax Defs.sys_getuid; syscall ]
    | 3 ->
        (* open of a missing file: -ENOENT *)
        [
          mov_rr Isa.rdi Isa.rsp; sub_ri Isa.rdi 64;
          (* path "x\0" on the stack *)
          mov_ri Isa.rcx (Char.code 'x');
          store8 Isa.rdi 0 Isa.rcx;
          mov_ri Isa.rcx 0;
          store8 Isa.rdi 1 Isa.rcx;
          mov_ri Isa.rsi Defs.o_rdonly;
          mov_ri Isa.rdx 0;
          mov_ri Isa.rax Defs.sys_open; syscall;
        ]
    | 4 -> [ mov_ri Isa.rax 500; syscall ] (* ENOSYS *)
    | _ ->
        (* pure computation, no syscall *)
        [ mov_ri Isa.rax 77; add_ri Isa.rax 1 ]
  in
  [ mov_ri Isa.r13 0 ]
  @ List.concat_map (fun op -> block op @ [ add_rr Isa.r13 Isa.rax ]) ops
  @ [
      i (Isa.Alu_ri (Isa.And, Isa.r13, 0x7Fl));
      mov_rr Isa.rdi Isa.r13;
      mov_ri Isa.rax Defs.sys_exit_group;
      syscall;
    ]

let expected_trace ops =
  List.filter_map
    (fun op ->
      match op with
      | 0 -> Some Defs.sys_getpid
      | 1 -> Some Defs.sys_gettid
      | 2 -> Some Defs.sys_getuid
      | 3 -> Some Defs.sys_open
      | 4 -> Some 500
      | _ -> None)
    ops
  @ [ Defs.sys_exit_group ]

let prop_equivalence =
  QCheck.Test.make ~count:60
    ~name:"lazypoline == SUD == native results; traces exhaustive"
    (QCheck.make gen_ops)
    (fun ops ->
      let prog = prog_of_ops ops in
      let native_code, _, _, _ = run_under Native prog in
      let lazy_code, lazy_trace, _, _ = run_under Lazy prog in
      let sud_code, sud_trace, _, _ = run_under Sud prog in
      native_code = lazy_code && native_code = sud_code
      && lazy_trace = expected_trace ops
      && sud_trace = lazy_trace)

let prop_zpoline_matches_on_static_code =
  QCheck.Test.make ~count:40
    ~name:"zpoline matches lazypoline on fully static programs"
    (QCheck.make gen_ops)
    (fun ops ->
      let prog = prog_of_ops ops in
      let z_code, z_trace, _, _ = run_under Zpoline prog in
      let l_code, l_trace, _, _ = run_under Lazy prog in
      z_code = l_code && z_trace = l_trace)

let tests =
  [
    Alcotest.test_case "zpoline static interposition" `Quick
      test_zpoline_static_interposition;
    Alcotest.test_case "zpoline rewrites all static sites" `Quick
      test_zpoline_rewrites_all_static_sites;
    Alcotest.test_case "zpoline misses JIT; exhaustive mechanisms do not"
      `Quick test_zpoline_misses_jit;
    Alcotest.test_case "SUD baseline correctness" `Quick
      test_sud_baseline_correctness;
    Alcotest.test_case "seccomp-user correctness" `Quick
      test_seccomp_user_correctness;
    Alcotest.test_case "ptrace correctness" `Quick test_ptrace_correctness;
    Alcotest.test_case "SUD baseline re-arms fork children" `Quick
      test_sud_baseline_fork;
    Alcotest.test_case "ptrace can suppress" `Quick test_ptrace_can_suppress;
    Alcotest.test_case "seccomp-bpf sandbox" `Quick test_seccomp_bpf_sandbox;
    Alcotest.test_case "zpoline data-corruption hazard" `Quick
      test_zpoline_data_corruption_hazard;
    QCheck_alcotest.to_alcotest prop_equivalence;
    QCheck_alcotest.to_alcotest prop_zpoline_matches_on_static_code;
  ]
