(** minicc compiler tests: language features end-to-end on the
    simulated kernel, plus a differential property test of compiled
    arithmetic against an OCaml reference evaluator. *)

open Sim_kernel

let run_src ?(vfs_setup = fun _ -> ()) src =
  let k = Kernel.create () in
  vfs_setup k;
  let img = Minicc.Codegen.compile_to_image src in
  let t = Kernel.spawn k img in
  if not (Kernel.run_until_exit ~max_slices:400_000 k) then
    Alcotest.fail "minicc program did not terminate";
  (t.Types.exit_code, k)

let check_ret msg expected src =
  let code, _ = run_src src in
  Alcotest.(check int) msg expected code

let test_return_constant () = check_ret "constant" 42 "long main() { return 42; }"

let test_arith () =
  (* (11 % 10) + (100/25*4/4) - (3&2) - (1^1) = 1 + 4 - 2 - 0 *)
  check_ret "arith" 3 "long main() { return (1 + 2 * 5) % 10 + 100 / 25 * 4 / 4 - (3 & 2) - (1 ^ 1); }"

let test_locals_and_assign () =
  check_ret "locals" 30
    "long main() { long x = 10; long y; y = x * 2; x = y + x; return x; }"

let test_if_else () =
  check_ret "if" 1 "long main() { if (3 > 2) { return 1; } else { return 2; } }";
  check_ret "else" 2 "long main() { if (2 > 3) return 1; else return 2; }"

let test_while_loop () =
  check_ret "sum 1..10" 55
    "long main() { long i = 1; long s = 0; while (i <= 10) { s = s + i; i = i + 1; } return s; }"

let test_for_break_continue () =
  check_ret "for with break/continue" 12
    "long main() {\n\
     long s = 0;\n\
     for (long i = 0; i < 100; i = i + 1) {\n\
     if (i % 2 == 1) continue;\n\
     if (i >= 8) break;\n\
     s = s + i;\n\
     }\n\
     return s; }"

let test_functions () =
  check_ret "fib(10)" 55
    "long fib(n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
     long main() { return fib(10); }"

let test_many_args () =
  check_ret "6 args" 21
    "long sum6(a, b, c, d, e, f) { return a + b + c + d + e + f; }\n\
     long main() { return sum6(1, 2, 3, 4, 5, 6); }"

let test_globals () =
  check_ret "globals" 15
    "long g = 5;\n\
     long bump(n) { g = g + n; return g; }\n\
     long main() { bump(4); bump(6); return g; }"

let test_buffers_and_strings () =
  check_ret "buffer bytes" (Char.code 'h')
    "long main() { char b[16]; b[0] = 'h'; b[1] = 0; return b[0]; }";
  check_ret "string literal" (Char.code 'w')
    "long main() { long s = \"world\"; return s[0]; }";
  check_ret "global buffer" 3
    "char gb[8];\n\
     long main() { gb[2] = 3; return gb[2]; }"

let test_peek_poke () =
  check_ret "peek64/poke64" 77
    "long main() { char b[16]; poke64(b, 77); return peek64(b); }"

let test_logical_ops () =
  check_ret "short circuit and" 0
    "long boom() { return 1 / 0; }\n\
     long main() { return 0 && boom(); }";
  check_ret "short circuit or" 1
    "long boom() { return 1 / 0; }\n\
     long main() { return 1 || boom(); }";
  check_ret "not" 1 "long main() { return !0; }"

let test_syscall_builtin () =
  Buffer.clear Kernel.console;
  let code, _ =
    run_src
      "long main() {\n\
       long n = syscall(1, 1, \"hello from minicc\\n\", 18);\n\
       return n;\n\
       }"
  in
  Alcotest.(check int) "write returned length" 18 code;
  Alcotest.(check string) "console" "hello from minicc\n"
    (Buffer.contents Kernel.console)

let test_open_read_write_files () =
  let code, _ =
    run_src
      ~vfs_setup:(fun k ->
        ignore (Vfs.add_file k.Types.vfs "/data/in" "abcde"))
      "long main() {\n\
       char buf[64];\n\
       long fd = syscall(2, \"/data/in\", 0, 0);\n\
       if (fd < 0) return 1;\n\
       long n = syscall(0, fd, buf, 64);\n\
       syscall(3, fd);\n\
       return n;\n\
       }"
  in
  Alcotest.(check int) "read 5 bytes" 5 code

let test_string_helpers_prog () =
  (* A small strlen/strcmp library in minicc itself. *)
  check_ret "strlen/strcpy" 5
    "long strlen(s) { long n = 0; while (s[n] != 0) { n = n + 1; } return n; }\n\
     long main() { return strlen(\"hello\"); }"

let test_compile_errors () =
  let expect_error src =
    match Minicc.Codegen.compile src with
    | exception Minicc.Ast.Compile_error _ -> ()
    | _ -> Alcotest.failf "accepted: %s" src
  in
  expect_error "long main() { return x; }";
  expect_error "long main() { return f(); }";
  expect_error "long f() { return 1; } long main() { return f(2); }";
  expect_error "long main() { break; }";
  expect_error "long nomain() { return 1; }";
  expect_error "long main() { long x = 1; long x = 2; return x; }";
  expect_error "long main() { return 1 << main; }"

let test_jit_runs () =
  Buffer.clear Kernel.console;
  let code, _ =
    Minicc.Jit.run
      "long main() { syscall(1, 1, \"jit!\\n\", 5); return 9; }"
  in
  Alcotest.(check int) "jit exit code" 9 code;
  Alcotest.(check bool) "payload output present" true
    (let s = Buffer.contents Kernel.console in
     String.length s >= 5
     && String.sub s (String.length s - 5) 5 = "jit!\n")

(* --- differential property test ----------------------------------- *)

type rexpr =
  | RNum of int64
  | RBin of Minicc.Ast.binop * rexpr * rexpr

let rec rexpr_to_src = function
  | RNum v -> Printf.sprintf "(%Ld)" v
  | RBin (op, a, b) ->
      let ops =
        match op with
        | Minicc.Ast.Add -> "+"
        | Sub -> "-"
        | Mul -> "*"
        | Div -> "/"
        | Mod -> "%"
        | BAnd -> "&"
        | BOr -> "|"
        | BXor -> "^"
        | Eq -> "=="
        | Ne -> "!="
        | Lt -> "<"
        | Le -> "<="
        | Gt -> ">"
        | Ge -> ">="
        | LAnd -> "&&"
        | LOr -> "||"
        | Shl -> "<<"
        | Shr -> ">>"
      in
      Printf.sprintf "(%s %s %s)" (rexpr_to_src a) ops (rexpr_to_src b)

let rec eval_rexpr = function
  | RNum v -> v
  | RBin (op, a, b) ->
      let x = eval_rexpr a and y = eval_rexpr b in
      let bool_ c = if c then 1L else 0L in
      (match op with
      | Minicc.Ast.Add -> Int64.add x y
      | Sub -> Int64.sub x y
      | Mul -> Int64.mul x y
      | Div -> if y = 0L then 0L else Int64.div x y
      | Mod -> if y = 0L then 0L else Int64.rem x y
      | BAnd -> Int64.logand x y
      | BOr -> Int64.logor x y
      | BXor -> Int64.logxor x y
      | Eq -> bool_ (x = y)
      | Ne -> bool_ (x <> y)
      | Lt -> bool_ (Int64.compare x y < 0)
      | Le -> bool_ (Int64.compare x y <= 0)
      | Gt -> bool_ (Int64.compare x y > 0)
      | Ge -> bool_ (Int64.compare x y >= 0)
      | LAnd -> bool_ (x <> 0L && y <> 0L)
      | LOr -> bool_ (x <> 0L || y <> 0L)
      | Shl | Shr -> 0L (* not generated *))

let gen_rexpr : rexpr QCheck.Gen.t =
  let open QCheck.Gen in
  let ops =
    [ Minicc.Ast.Add; Sub; Mul; BAnd; BOr; BXor; Eq; Ne; Lt; Le; Gt; Ge;
      LAnd; LOr ]
  in
  sized
  @@ fix (fun self n ->
         if n = 0 then map (fun v -> RNum (Int64.of_int v)) (int_range (-1000) 1000)
         else
           frequency
             [
               (1, map (fun v -> RNum (Int64.of_int v)) (int_range (-1000) 1000));
               ( 3,
                 map3
                   (fun op a b -> RBin (op, a, b))
                   (oneofl ops) (self (n / 2)) (self (n / 2)) );
               (* division with a guaranteed non-zero divisor *)
               ( 1,
                 map2
                   (fun a b ->
                     RBin
                       ( Minicc.Ast.Div,
                         a,
                         RBin (Minicc.Ast.BOr, b, RNum 1L) ))
                   (self (n / 2)) (self (n / 2)) );
             ])

let prop_compiled_arith_matches_reference =
  QCheck.Test.make ~count:120 ~name:"compiled arithmetic == reference"
    (QCheck.make ~print:rexpr_to_src gen_rexpr)
    (fun e ->
      (* exit codes are truncated; compare via a canary: return 1 iff
         expression equals the reference value *)
      let expected = eval_rexpr e in
      let src =
        Printf.sprintf
          "long main() { if ((%s) == (%Ld)) return 1; return 0; }"
          (rexpr_to_src e) expected
      in
      let code, _ = run_src src in
      code = 1)

let prop_compiled_fn_args =
  QCheck.Test.make ~count:60 ~name:"argument passing is positional"
    QCheck.(make Gen.(list_size (int_range 1 6) (int_range 0 1000)))
    (fun args ->
      let n = List.length args in
      let params = List.init n (fun idx -> Printf.sprintf "p%d" idx) in
      (* weighted sum distinguishes permutations *)
      let body =
        String.concat " + "
          (List.mapi (fun idx p -> Printf.sprintf "%d * %s" (idx + 1) p) params)
      in
      let expected =
        List.fold_left ( + ) 0 (List.mapi (fun idx a -> (idx + 1) * a) args)
        land 0x7F
      in
      let src =
        Printf.sprintf
          "long f(%s) { return %s; }\nlong main() { return (f(%s)) & 127; }"
          (String.concat ", " params)
          body
          (String.concat ", " (List.map string_of_int args))
      in
      let code, _ = run_src src in
      code = expected)

let tests =
  [
    Alcotest.test_case "return constant" `Quick test_return_constant;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "locals" `Quick test_locals_and_assign;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "while" `Quick test_while_loop;
    Alcotest.test_case "for/break/continue" `Quick test_for_break_continue;
    Alcotest.test_case "recursive functions" `Quick test_functions;
    Alcotest.test_case "six arguments" `Quick test_many_args;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "buffers and strings" `Quick test_buffers_and_strings;
    Alcotest.test_case "peek/poke" `Quick test_peek_poke;
    Alcotest.test_case "logical operators" `Quick test_logical_ops;
    Alcotest.test_case "syscall builtin" `Quick test_syscall_builtin;
    Alcotest.test_case "file I/O" `Quick test_open_read_write_files;
    Alcotest.test_case "string helpers" `Quick test_string_helpers_prog;
    Alcotest.test_case "compile errors" `Quick test_compile_errors;
    Alcotest.test_case "JIT mode" `Quick test_jit_runs;
    QCheck_alcotest.to_alcotest prop_compiled_arith_matches_reference;
    QCheck_alcotest.to_alcotest prop_compiled_fn_args;
  ]
