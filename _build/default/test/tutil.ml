(** Shared helpers for kernel-level tests: build a kernel, run an
    assembly program to completion, inspect exit codes and console
    output. *)

open Sim_kernel

let make ?(ncpus = 1) () = Kernel.create ~ncpus ()

(** Run [items] as a process; returns (exit_code, kernel, task). *)
let run_asm ?(ncpus = 1) ?(env = []) (items : Sim_asm.Asm.item list) =
  let k = Kernel.create ~ncpus () in
  let img = Loader.image_of_items ~env items in
  let t = Kernel.spawn k img in
  let finished = Kernel.run_until_exit ~max_slices:200_000 k in
  if not finished then Alcotest.fail "program did not terminate";
  (t.Types.exit_code, k, t)

(** Exit with the value in rdi. *)
let exit_with code =
  let open Sim_asm.Asm in
  [ mov_ri Sim_isa.Isa.rdi code; mov_ri Sim_isa.Isa.rax Defs.sys_exit_group;
    syscall ]

let check_exit msg expected items =
  let code, _, _ = run_asm items in
  Alcotest.(check int) msg expected code
