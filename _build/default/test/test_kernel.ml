(** Kernel integration tests driven by small assembly programs. *)

open Sim_isa
open Sim_asm.Asm
open Sim_kernel

let test_exit_code () = Tutil.check_exit "exit 7" 7 (Tutil.exit_with 7)

let test_getpid_gettid () =
  (* exit(getpid() == gettid() && getpid() == 1 ? 0 : 1)  — first task
     has tid 1 *)
  Tutil.check_exit "pid/tid" 0
    ([ mov_ri Isa.rax Defs.sys_getpid; syscall; mov_rr Isa.rbx Isa.rax ]
    @ [ mov_ri Isa.rax Defs.sys_gettid; syscall ]
    @ [
        cmp_rr Isa.rax Isa.rbx;
        Jcc_l (Isa.Ne, "bad");
        cmp_ri Isa.rax 1;
        Jcc_l (Isa.Ne, "bad");
      ]
    @ Tutil.exit_with 0
    @ [ Label "bad" ]
    @ Tutil.exit_with 1)

let test_enosys () =
  (* syscall 500 returns -ENOSYS *)
  Tutil.check_exit "enosys" Defs.enosys
    ([ mov_ri Isa.rax 500; syscall;
       (* negate *) mov_ri Isa.rbx 0; sub_rr Isa.rbx Isa.rax;
       mov_rr Isa.rdi Isa.rbx; mov_ri Isa.rax Defs.sys_exit_group; syscall ])

let test_console_write () =
  Buffer.clear Kernel.console;
  let code, _, _ =
    Tutil.run_asm
      ([
         Label "start";
         Jmp_l "go";
         Label "msg";
         Bytes "hi!\n";
         Label "go";
         mov_ri Isa.rdi 1;
         Lea_ip (Isa.rsi, "msg");
         mov_ri Isa.rdx 4;
         mov_ri Isa.rax Defs.sys_write;
         syscall;
       ]
      @ Tutil.exit_with 0)
  in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check string) "console" "hi!\n" (Buffer.contents Kernel.console)

(* msg data segment: note code pages are r-x, so data for writing must
   live elsewhere; reading strings from code pages is fine. *)

let test_mmap_mprotect_write () =
  (* mmap 2 pages RW at fixed 0x9000, write, mprotect R, write -> SIGSEGV
     kills with 128+11 *)
  let prog =
    [
      (* mmap(0x9000, 8192, RW, FIXED|ANON, -1, 0) *)
      mov_ri Isa.rdi 0x9000;
      mov_ri Isa.rsi 8192;
      mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
      mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
      mov_ri64 Isa.r8 (-1L);
      mov_ri Isa.r9 0;
      mov_ri Isa.rax Defs.sys_mmap;
      syscall;
      (* store to it *)
      mov_ri Isa.rbx 0x9000;
      mov_ri Isa.rcx 0x55;
      store Isa.rbx 0 Isa.rcx;
      (* mprotect read-only *)
      mov_ri Isa.rdi 0x9000;
      mov_ri Isa.rsi 8192;
      mov_ri Isa.rdx Defs.prot_read;
      mov_ri Isa.rax Defs.sys_mprotect;
      syscall;
      (* this store faults *)
      store Isa.rbx 0 Isa.rcx;
    ]
    @ Tutil.exit_with 0
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "killed by SIGSEGV" (128 + Defs.sigsegv) code

let test_fork_wait () =
  (* parent forks; child exits 5; parent waits and exits child's code *)
  let prog =
    [
      mov_ri Isa.rax Defs.sys_fork;
      syscall;
      cmp_ri Isa.rax 0;
      Jcc_l (Isa.Eq, "child");
      (* parent: wait4(-1, 0x8000? need writable memory) -> use stack *)
      mov_ri64 Isa.rdi (-1L);
      mov_rr Isa.rsi Isa.rsp;
      sub_ri Isa.rsi 256;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_wait4;
      syscall;
      (* status = *(rsi) >> 8 *)
      mov_rr Isa.rbx Isa.rsp;
      sub_ri Isa.rbx 256;
      load Isa.rdi Isa.rbx 0;
      i (Isa.Shift (Isa.Shr, Isa.rdi, 8));
      mov_ri Isa.rax Defs.sys_exit_group;
      syscall;
      Label "child";
    ]
    @ Tutil.exit_with 5
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "parent saw child's status" 5 code

let test_fork_memory_isolated () =
  (* child increments a global; parent's copy unchanged.  Parent exits
     with its own value. *)
  let prog =
    [
      (* global at 0x9000 *)
      mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 4096;
      mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
      mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
      mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
      mov_ri Isa.rax Defs.sys_mmap; syscall;
      mov_ri Isa.rbx 0x9000;
      mov_ri Isa.rcx 10;
      store Isa.rbx 0 Isa.rcx;
      mov_ri Isa.rax Defs.sys_fork; syscall;
      cmp_ri Isa.rax 0;
      Jcc_l (Isa.Eq, "child");
      (* parent: wait, then load global *)
      mov_ri64 Isa.rdi (-1L); mov_ri Isa.rsi 0; mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_wait4; syscall;
      load Isa.rdi Isa.rbx 0;
      mov_ri Isa.rax Defs.sys_exit_group; syscall;
      Label "child";
      mov_ri Isa.rcx 99;
      store Isa.rbx 0 Isa.rcx;
    ]
    @ Tutil.exit_with 0
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "parent value intact" 10 code

let test_clone_thread_shares_memory () =
  let prog =
    [
      mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 8192;
      mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
      mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
      mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
      mov_ri Isa.rax Defs.sys_mmap; syscall;
      (* clone(VM|FILES|SIGHAND|THREAD, stack=0x9000+8192) *)
      mov_ri Isa.rdi
        (Defs.clone_vm lor Defs.clone_files lor Defs.clone_sighand
       lor Defs.clone_thread);
      mov_ri Isa.rsi (0x9000 + 8192 - 256);
      mov_ri Isa.rdx 0; mov_ri Isa.r10 0; mov_ri Isa.r8 0;
      mov_ri Isa.rax Defs.sys_clone; syscall;
      cmp_ri Isa.rax 0;
      Jcc_l (Isa.Eq, "thread");
      (* main: spin until *0x9000 = 42 *)
      Label "spin";
      mov_ri Isa.rbx 0x9000;
      load Isa.rcx Isa.rbx 0;
      cmp_ri Isa.rcx 42;
      Jcc_l (Isa.Ne, "spin");
      mov_ri Isa.rdi 0;
      mov_ri Isa.rax Defs.sys_exit_group; syscall;
      Label "thread";
      mov_ri Isa.rbx 0x9000;
      mov_ri Isa.rcx 42;
      store Isa.rbx 0 Isa.rcx;
      (* thread exits (not group) *)
      mov_ri Isa.rdi 0;
      mov_ri Isa.rax Defs.sys_exit; syscall;
    ]
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "exit ok" 0 code

let test_pipe_roundtrip () =
  (* write through a pipe and read it back *)
  let prog =
    [
      (* pipe(rsp-64) *)
      mov_rr Isa.rdi Isa.rsp; sub_ri Isa.rdi 64;
      mov_ri Isa.rax Defs.sys_pipe; syscall;
      (* write(fds[1], "A", 1): fds at rsp-64: rfd u64, wfd u64 *)
      mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 64;
      load Isa.rdi Isa.rbx 8;
      (* put 'A' (0x41) at rsp-128 *)
      mov_rr Isa.rsi Isa.rsp; sub_ri Isa.rsi 128;
      mov_ri Isa.rcx 0x41;
      store8 Isa.rsi 0 Isa.rcx;
      mov_ri Isa.rdx 1;
      mov_ri Isa.rax Defs.sys_write; syscall;
      (* read(fds[0], rsp-192, 1) *)
      load Isa.rdi Isa.rbx 0;
      mov_rr Isa.rsi Isa.rsp; sub_ri Isa.rsi 192;
      mov_ri Isa.rdx 1;
      mov_ri Isa.rax Defs.sys_read; syscall;
      (* exit(buf[0]) *)
      mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 192;
      load8 Isa.rdi Isa.rbx 0;
      mov_ri Isa.rax Defs.sys_exit_group; syscall;
    ]
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "read back 'A'" 0x41 code

let test_open_read_file () =
  let k = Kernel.create () in
  ignore (Vfs.add_file k.Types.vfs "/etc/motd" "W");
  let img =
    Loader.image_of_items
      ([
         Label "start";
         Jmp_l "go";
         Label "path";
         Bytes "/etc/motd\000";
         Label "go";
         Lea_ip (Isa.rdi, "path");
         mov_ri Isa.rsi Defs.o_rdonly;
         mov_ri Isa.rdx 0;
         mov_ri Isa.rax Defs.sys_open;
         syscall;
         mov_rr Isa.rdi Isa.rax;
         mov_rr Isa.rsi Isa.rsp; sub_ri Isa.rsi 64;
         mov_ri Isa.rdx 16;
         mov_ri Isa.rax Defs.sys_read;
         syscall;
         mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 64;
         load8 Isa.rdi Isa.rbx 0;
         mov_ri Isa.rax Defs.sys_exit_group;
         syscall;
       ])
  in
  ignore (Kernel.spawn k img);
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  let t = Hashtbl.find k.Types.tasks 1 in
  Alcotest.(check int) "read 'W'" (Char.code 'W') t.Types.exit_code

let test_cycle_accounting_enosys () =
  (* One iteration of the microbenchmark skeleton: cycles charged for
     a non-existent syscall should be dominated by syscall_base. *)
  let k = Kernel.create () in
  let img =
    Loader.image_of_items
      ([ mov_ri Isa.rax 500; syscall ] @ Tutil.exit_with 0)
  in
  let t = Kernel.spawn k img in
  ignore (Kernel.run_until_exit k);
  let cycles = Int64.to_int t.Types.tcycles in
  let base = Sim_costs.Cost_model.default.syscall_base in
  Alcotest.(check bool)
    (Printf.sprintf "cycles %d ~ 2*base + few insns" cycles)
    true
    (cycles > 2 * base && cycles < (2 * base) + 50)

let test_execve () =
  let k = Kernel.create () in
  Hashtbl.replace k.Types.programs "/bin/five"
    (Loader.image_of_items (Tutil.exit_with 5));
  let img =
    Loader.image_of_items
      [
        Label "start";
        Jmp_l "go";
        Label "path";
        Bytes "/bin/five\000";
        Label "go";
        Lea_ip (Isa.rdi, "path");
        mov_ri Isa.rsi 0;
        mov_ri Isa.rdx 0;
        mov_ri Isa.rax Defs.sys_execve;
        syscall;
        (* only reached on failure *)
        mov_ri Isa.rdi 1;
        mov_ri Isa.rax Defs.sys_exit_group;
        syscall;
      ]
  in
  ignore (Kernel.spawn k img);
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  let t = Hashtbl.find k.Types.tasks 1 in
  Alcotest.(check int) "exec'd image ran" 5 t.Types.exit_code

let test_multi_cpu_affinity () =
  (* Two spinning tasks pinned to different CPUs both make progress. *)
  let k = Kernel.create ~ncpus:2 () in
  let spin n =
    Loader.image_of_items
      ([ mov_ri Isa.rcx n; Label "l"; sub_ri Isa.rcx 1; cmp_ri Isa.rcx 0;
         Jcc_l (Isa.Ne, "l") ]
      @ Tutil.exit_with 0)
  in
  let t1 = Kernel.spawn k ~affinity:0 (spin 5000) in
  let t2 = Kernel.spawn k ~affinity:1 (spin 5000) in
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  Alcotest.(check int) "t1 done" 0 t1.Types.exit_code;
  Alcotest.(check int) "t2 done" 0 t2.Types.exit_code;
  (* Both CPUs did comparable work. *)
  let c0 = Int64.to_int k.Types.cpus.(0).Types.clk
  and c1 = Int64.to_int k.Types.cpus.(1).Types.clk in
  Alcotest.(check bool)
    (Printf.sprintf "parallel progress (%d vs %d)" c0 c1)
    true
    (abs (c0 - c1) < 2 * Int64.to_int k.Types.slice)

let tests =
  [
    Alcotest.test_case "exit code" `Quick test_exit_code;
    Alcotest.test_case "getpid/gettid" `Quick test_getpid_gettid;
    Alcotest.test_case "ENOSYS for syscall 500" `Quick test_enosys;
    Alcotest.test_case "console write" `Quick test_console_write;
    Alcotest.test_case "mmap/mprotect/SIGSEGV" `Quick test_mmap_mprotect_write;
    Alcotest.test_case "fork + wait4" `Quick test_fork_wait;
    Alcotest.test_case "fork memory isolation" `Quick
      test_fork_memory_isolated;
    Alcotest.test_case "clone thread shares memory" `Quick
      test_clone_thread_shares_memory;
    Alcotest.test_case "pipe roundtrip" `Quick test_pipe_roundtrip;
    Alcotest.test_case "open/read file" `Quick test_open_read_file;
    Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting_enosys;
    Alcotest.test_case "execve" `Quick test_execve;
    Alcotest.test_case "multi-cpu affinity" `Quick test_multi_cpu_affinity;
  ]
