(** Encoder/decoder unit and property tests. *)

open Sim_isa

let instr_testable =
  Alcotest.testable
    (fun fmt i -> Format.pp_print_string fmt (Disasm.string_of_instr i))
    ( = )

let roundtrip i =
  let s = Encode.encode_one i in
  match Decode.decode_string s 0 with
  | Ok (i', len) -> Alcotest.(check int) "length" (String.length s) len;
      Alcotest.check instr_testable "instr" i i'
  | Error e -> Alcotest.failf "decode failed: %s" (Decode.error_to_string e)

let sample_instrs =
  [
    Isa.Nop; Isa.Ret; Isa.Hlt; Isa.Int3; Isa.Syscall; Isa.Rdtsc;
    Isa.Hypercall 0; Isa.Hypercall 65535;
    Isa.Call_reg Isa.rax; Isa.Call_reg Isa.r15; Isa.Jmp_reg Isa.rbx;
    Isa.Push Isa.rbp; Isa.Pop Isa.r11;
    Isa.Mov_rr (Isa.rdi, Isa.rsi);
    Isa.Mov_ri (Isa.rax, 0x1122334455667788L);
    Isa.Mov_ri (Isa.r9, -1L);
    Isa.Mov_ri32 (Isa.rcx, -5l);
    Isa.Load (Isa.Seg_none, Isa.rax, Isa.rbx, 16l);
    Isa.Load (Isa.Seg_gs, Isa.rax, Isa.rbx, -8l);
    Isa.Store (Isa.Seg_fs, Isa.rsp, 0l, Isa.rdx);
    Isa.Load8 (Isa.Seg_gs, Isa.rcx, Isa.r11, 4l);
    Isa.Store8 (Isa.Seg_none, Isa.rdi, 100l, Isa.rax);
    Isa.Lea (Isa.rsi, Isa.rsp, -32l);
    Isa.Alu_rr (Isa.Add, Isa.rax, Isa.rbx);
    Isa.Alu_rr (Isa.Cmp, Isa.r14, Isa.r15);
    Isa.Alu_rr (Isa.Div, Isa.rax, Isa.rcx);
    Isa.Alu_ri (Isa.Sub, Isa.rsp, 64l);
    Isa.Alu_ri (Isa.Xor, Isa.r8, -1l);
    Isa.Shift (Isa.Shl, Isa.rax, 3);
    Isa.Shift (Isa.Sar, Isa.rdx, 63);
    Isa.Jmp 0l; Isa.Jmp (-10l); Isa.Call 1000l;
    Isa.Jcc (Isa.Eq, 5l); Isa.Jcc (Isa.Uge, -6l);
    Isa.Setcc (Isa.Lt, Isa.rax);
    Isa.Movq_xr (0, Isa.rax); Isa.Movq_xr (15, Isa.r15);
    Isa.Movq_rx (Isa.rbx, 7);
    Isa.Movups_load (Isa.Seg_none, 3, Isa.rdi, 8l);
    Isa.Movups_store (Isa.Seg_gs, Isa.rsp, -16l, 12);
    Isa.Punpcklqdq (0, 0); Isa.Pxor (5, 5);
    Isa.Fld1; Isa.Fldz; Isa.Faddp;
    Isa.Fstp (Isa.Seg_none, Isa.rbp, -8l);
  ]

let test_roundtrip_samples () = List.iter roundtrip sample_instrs

let test_lengths () =
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Disasm.string_of_instr i)
        (String.length (Encode.encode_one i))
        (Isa.encoded_length i))
    sample_instrs

let test_syscall_callrax_same_size () =
  (* The property the whole paper rests on. *)
  Alcotest.(check int) "syscall is 2 bytes" 2
    (String.length (Encode.encode_one Isa.Syscall));
  Alcotest.(check int) "call rax is 2 bytes" 2
    (String.length (Encode.encode_one (Isa.Call_reg Isa.rax)));
  Alcotest.(check string) "syscall bytes" "\x0f\x05"
    (Encode.encode_one Isa.Syscall);
  Alcotest.(check string) "call rax bytes" "\xff\xd0"
    (Encode.encode_one (Isa.Call_reg Isa.rax))

let test_bad_opcode () =
  match Decode.decode_string "\x00" 0 with
  | Error (Decode.Bad_opcode 0) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Bad_opcode 0"

let test_prefix_on_non_memory () =
  (* gs prefix on nop is invalid *)
  match Decode.decode_string "\x65\x90" 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "gs-prefixed nop should not decode"

let test_truncated () =
  match Decode.decode_string "\xb8" 0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated mov should not decode"

(* Generators for property tests. *)
let gen_gpr = QCheck.Gen.int_range 0 15
let gen_seg = QCheck.Gen.oneofl [ Isa.Seg_none; Isa.Seg_fs; Isa.Seg_gs ]

let gen_cond =
  QCheck.Gen.oneofl
    [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Le; Isa.Gt; Isa.Ge; Isa.Ult; Isa.Uge ]

let gen_alu =
  QCheck.Gen.oneofl
    [ Isa.Add; Isa.Sub; Isa.And; Isa.Or; Isa.Xor; Isa.Cmp; Isa.Mul; Isa.Div;
      Isa.Rem ]

let gen_instr : Isa.instr QCheck.Gen.t =
  let open QCheck.Gen in
  let i32 = map Int32.of_int (int_range (-1000000) 1000000) in
  oneof
    [
      return Isa.Nop; return Isa.Ret; return Isa.Syscall;
      map (fun n -> Isa.Hypercall n) (int_range 0 65535);
      map (fun r -> Isa.Call_reg r) gen_gpr;
      map (fun r -> Isa.Push r) gen_gpr;
      map (fun r -> Isa.Pop r) gen_gpr;
      map2 (fun a b -> Isa.Mov_rr (a, b)) gen_gpr gen_gpr;
      map2 (fun r v -> Isa.Mov_ri (r, v)) gen_gpr int64;
      map2 (fun r v -> Isa.Mov_ri32 (r, v)) gen_gpr i32;
      map3 (fun s (a, b) d -> Isa.Load (s, a, b, d)) gen_seg
        (pair gen_gpr gen_gpr) i32;
      map3 (fun s (a, b) d -> Isa.Store (s, a, d, b)) gen_seg
        (pair gen_gpr gen_gpr) i32;
      map3 (fun op a b -> Isa.Alu_rr (op, a, b)) gen_alu gen_gpr gen_gpr;
      map2 (fun c rel -> Isa.Jcc (c, rel)) gen_cond i32;
      map2 (fun c r -> Isa.Setcc (c, r)) gen_cond gen_gpr;
      map2 (fun x r -> Isa.Movq_xr (x, r)) gen_gpr gen_gpr;
      map3 (fun s x (b, d) -> Isa.Movups_load (s, x, b, d)) gen_seg gen_gpr
        (pair gen_gpr i32);
      map Int32.of_int (int_range (-100000) 100000)
      |> map (fun rel -> Isa.Jmp rel);
    ]

let prop_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"encode/decode roundtrip"
    (QCheck.make gen_instr) (fun i ->
      let s = Encode.encode_one i in
      match Decode.decode_string s 0 with
      | Ok (i', len) -> i = i' && len = String.length s
      | Error _ -> false)

let prop_sweep_covers =
  (* A linear sweep over a stream of whole instructions recovers them
     all (no desync when starting in sync). *)
  QCheck.Test.make ~count:300 ~name:"linear sweep over aligned stream"
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 40) gen_instr))
    (fun instrs ->
      let code = Encode.encode_all instrs in
      let lines = Disasm.sweep code in
      List.length lines = List.length instrs
      && List.for_all2
           (fun l i -> match l.Disasm.what with
             | `Instr i' -> i = i'
             | `Bad _ -> false)
           lines instrs)

let tests =
  [
    Alcotest.test_case "roundtrip samples" `Quick test_roundtrip_samples;
    Alcotest.test_case "encoded lengths" `Quick test_lengths;
    Alcotest.test_case "syscall vs call rax size" `Quick
      test_syscall_callrax_same_size;
    Alcotest.test_case "bad opcode" `Quick test_bad_opcode;
    Alcotest.test_case "prefix on non-memory" `Quick test_prefix_on_non_memory;
    Alcotest.test_case "truncated" `Quick test_truncated;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_sweep_covers;
  ]
