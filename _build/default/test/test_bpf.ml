(** Classic BPF interpreter and validator tests. *)

open Sim_kernel

let data ?(nr = 0) ?(ip = 0) ?(args = [||]) () =
  {
    Bpf.nr;
    arch = Bpf.audit_arch_x86_64;
    instruction_pointer = ip;
    args =
      Array.init 6 (fun i -> if i < Array.length args then args.(i) else 0L);
  }

let run_action prog d =
  let v, _ = Bpf.run prog d in
  Int64.to_int (Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL)

let test_allow_all () =
  Alcotest.(check int) "allow" Defs.seccomp_ret_allow
    (run_action Bpf.allow_all (data ()))

let test_filter_on_nrs () =
  let p =
    Bpf.filter_on_nrs ~nrs:[ 1; 2; 60 ] ~action:Defs.seccomp_ret_trap
      ~otherwise:Defs.seccomp_ret_allow
  in
  Bpf.validate p;
  Alcotest.(check int) "hit first" Defs.seccomp_ret_trap
    (run_action p (data ~nr:1 ()));
  Alcotest.(check int) "hit last" Defs.seccomp_ret_trap
    (run_action p (data ~nr:60 ()));
  Alcotest.(check int) "miss" Defs.seccomp_ret_allow
    (run_action p (data ~nr:3 ()))

let test_ip_range_filter () =
  let p =
    Bpf.filter_on_ip_range ~lo:0x400000 ~hi:0x401000
      ~outside_action:Defs.seccomp_ret_trap
  in
  Bpf.validate p;
  Alcotest.(check int) "inside" Defs.seccomp_ret_allow
    (run_action p (data ~ip:0x400800 ()));
  Alcotest.(check int) "below" Defs.seccomp_ret_trap
    (run_action p (data ~ip:0x3fffff ()));
  Alcotest.(check int) "at hi" Defs.seccomp_ret_trap
    (run_action p (data ~ip:0x401000 ()));
  Alcotest.(check int) "at lo" Defs.seccomp_ret_allow
    (run_action p (data ~ip:0x400000 ()))

let test_arg_inspection () =
  (* Allow write(2) only when fd (arg0 low word) = 1. *)
  let open Bpf in
  let p =
    [|
      stmt (bpf_ld lor bpf_w lor bpf_abs) (off_arg_lo 0);
      jump (bpf_jmp lor bpf_jeq lor bpf_k) 1 0 1;
      stmt (bpf_ret lor bpf_k) Defs.seccomp_ret_allow;
      stmt (bpf_ret lor bpf_k) (Defs.seccomp_ret_errno lor Defs.eacces);
    |]
  in
  validate p;
  Alcotest.(check int) "fd=1 allowed" Defs.seccomp_ret_allow
    (run_action p (data ~args:[| 1L |] ()));
  Alcotest.(check int) "fd=2 errno"
    (Defs.seccomp_ret_errno lor Defs.eacces)
    (run_action p (data ~args:[| 2L |] ()))

let test_alu_and_scratch () =
  let open Bpf in
  (* A = nr; M[0]=A; A = A*2 + 1; X = M[0]; A = A - X -> nr + 1 *)
  let p =
    [|
      stmt (bpf_ld lor bpf_w lor bpf_abs) off_nr;
      stmt bpf_st 0;
      stmt (bpf_alu lor bpf_mul lor bpf_k) 2;
      stmt (bpf_alu lor bpf_add lor bpf_k) 1;
      stmt (bpf_ldx lor bpf_mem) 0;
      stmt (bpf_alu lor bpf_sub lor bpf_x) 0;
      stmt (bpf_ret lor 0x10 (* RET A *)) 0;
    |]
  in
  validate p;
  Alcotest.(check int) "nr+1" 43 (run_action p (data ~nr:42 ()))

let test_validator_rejects () =
  let open Bpf in
  let reject name p =
    match validate p with
    | exception Invalid_program _ -> ()
    | () -> Alcotest.failf "%s accepted" name
  in
  reject "empty" [||];
  reject "fall off end" [| stmt (bpf_ld lor bpf_w lor bpf_abs) 0 |];
  reject "jump oob"
    [| jump (bpf_jmp lor bpf_jeq lor bpf_k) 0 5 5;
       stmt (bpf_ret lor bpf_k) 0 |];
  reject "byte load"
    [| stmt (bpf_ld lor 0x10 lor bpf_abs) 0; stmt (bpf_ret lor bpf_k) 0 |];
  reject "unaligned offset"
    [| stmt (bpf_ld lor bpf_w lor bpf_abs) 3; stmt (bpf_ret lor bpf_k) 0 |];
  reject "offset past data"
    [| stmt (bpf_ld lor bpf_w lor bpf_abs) 64; stmt (bpf_ret lor bpf_k) 0 |]

let test_step_count () =
  let p =
    Bpf.filter_on_nrs ~nrs:[ 5 ] ~action:Defs.seccomp_ret_trap
      ~otherwise:Defs.seccomp_ret_allow
  in
  let _, steps = Bpf.run p (data ~nr:5 ()) in
  Alcotest.(check int) "steps" 3 steps

(* Reference implementation for the property test: a tiny independent
   evaluator for straight-line LD/ALU/RET programs. *)
let prop_alu_matches_reference =
  let open Bpf in
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 10)
        (pair (oneofl [ bpf_add; bpf_sub; bpf_mul; bpf_or; bpf_and; bpf_xor ])
           (int_range 0 1000)))
  in
  QCheck.Test.make ~count:300 ~name:"ALU chain matches reference"
    (QCheck.make gen)
    (fun ops ->
      let prog =
        Array.of_list
          ([ stmt (bpf_ld lor bpf_imm) 7 ]
          @ List.map (fun (op, k) -> stmt (bpf_alu lor op lor bpf_k) k) ops
          @ [ stmt (bpf_ret lor 0x10) 0 ])
      in
      let expected =
        List.fold_left
          (fun a (op, k) ->
            let k32 = Int32.of_int k in
            if op = bpf_add then Int32.add a k32
            else if op = bpf_sub then Int32.sub a k32
            else if op = bpf_mul then Int32.mul a k32
            else if op = bpf_or then Int32.logor a k32
            else if op = bpf_and then Int32.logand a k32
            else Int32.logxor a k32)
          7l ops
      in
      let v, _ = Bpf.run prog (data ()) in
      v = expected)

let tests =
  [
    Alcotest.test_case "allow all" `Quick test_allow_all;
    Alcotest.test_case "filter on nrs" `Quick test_filter_on_nrs;
    Alcotest.test_case "ip range filter" `Quick test_ip_range_filter;
    Alcotest.test_case "argument inspection" `Quick test_arg_inspection;
    Alcotest.test_case "alu and scratch" `Quick test_alu_and_scratch;
    Alcotest.test_case "validator rejects" `Quick test_validator_rejects;
    Alcotest.test_case "step count" `Quick test_step_count;
    QCheck_alcotest.to_alcotest prop_alu_matches_reference;
  ]
