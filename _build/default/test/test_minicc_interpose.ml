(** Cross-mechanism differential testing on *compiled C programs*:
    random minicc programs must behave identically native, under
    lazypoline, under the SUD baseline, and (being fully static) under
    zpoline — with lazypoline's trace matching SUD's exactly.  This is
    the repository's strongest end-to-end invariant: it exercises the
    compiler, the kernel, and all interposition layers at once. *)

open Sim_kernel
module Hook = Lazypoline.Hook

(* tiny local substring replace (no Str dependency) *)
module Str_replace = struct
  let replace_all ~needle ~by s =
    let nl = String.length needle in
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i <= String.length s - nl do
      if String.sub s !i nl = needle then begin
        Buffer.add_string buf by;
        i := !i + nl
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.add_string buf (String.sub s !i (String.length s - !i));
    Buffer.contents buf
end

type mech = Native | Lazy | Zp | SudB

let run_src mech src =
  let k = Kernel.create () in
  ignore (Vfs.add_file k.Types.vfs "/data/seed" "0123456789abcdef");
  let t = Kernel.spawn k (Minicc.Codegen.compile_to_image src) in
  let hook, trace = Hook.tracing () in
  (match mech with
  | Native -> ()
  | Lazy -> ignore (Lazypoline.install k t hook)
  | Zp -> ignore (Baselines.Zpoline.install k t hook)
  | SudB -> ignore (Baselines.Sud_interposer.install k t hook));
  Buffer.clear Kernel.console;
  if not (Kernel.run_until_exit ~max_slices:600_000 k) then
    Alcotest.fail "program did not terminate";
  (t.Types.exit_code, Buffer.contents Kernel.console,
   List.map fst (Hook.recorded trace))

(* Random program pieces. *)
type piece =
  | Arith of Test_minicc.rexpr
  | Sys_getpid
  | Sys_gettid
  | Write_console of int  (** 1..9 chars *)
  | Read_file of int  (** bytes to read from /data/seed *)
  | Loop_gettid of int  (** 1..4 iterations *)
  | Call_helper of int

let gen_piece : piece QCheck.Gen.t =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun e -> Arith e) Test_minicc.gen_rexpr);
        (2, return Sys_getpid);
        (2, return Sys_gettid);
        (1, map (fun n -> Write_console (1 + (n mod 9))) (int_range 0 100));
        (1, map (fun n -> Read_file (1 + (n mod 16))) (int_range 0 100));
        (1, map (fun n -> Loop_gettid (1 + (n mod 4))) (int_range 0 100));
        (1, map (fun n -> Call_helper (n mod 50)) (int_range 0 100));
      ])

let gen_pieces = QCheck.Gen.(list_size (int_range 1 8) gen_piece)

let piece_src = function
  | Arith e ->
      Printf.sprintf "  acc = acc + (%s);\n" (Test_minicc.rexpr_to_src e)
  | Sys_getpid -> "  acc = acc + syscall(39);\n"
  | Sys_gettid -> "  acc = acc + syscall(186);\n"
  | Write_console n ->
      Printf.sprintf "  acc = acc + syscall(1, 1, \"abcdefghi\", %d);\n" n
  | Read_file n ->
      Printf.sprintf
        "  fd = syscall(2, \"/data/seed\", 0, 0);\n\
        \  acc = acc + syscall(0, fd, buf, %d);\n\
        \  acc = acc + buf[0];\n\
        \  syscall(3, fd);\n"
        n
  | Loop_gettid n ->
      (* loop counter name must be unique per occurrence *)
      Printf.sprintf
        "  for (long i_IDX = 0; i_IDX < %d; i_IDX = i_IDX + 1) { acc = acc + syscall(186); }\n"
        n
  | Call_helper n -> Printf.sprintf "  acc = acc + helper(%d);\n" n

let program_of pieces =
  let body =
    String.concat ""
      (List.mapi
         (fun idx p ->
           Str_replace.replace_all ~needle:"IDX" ~by:(string_of_int idx)
             (piece_src p))
         pieces)
  in
  Printf.sprintf
    "long helper(x) { if (x > 25) return x * 3 - syscall(39); return x + 1; }\n\
     long main() {\n\
     char buf[64];\n\
     long fd = 0;\n\
     long acc = 0;\n\
     %s\n\
     return acc & 127;\n\
     }"
    body

let prop_minicc_equivalence =
  QCheck.Test.make ~count:40
    ~name:"random C programs: native == lazypoline == SUD == zpoline"
    (QCheck.make ~print:(fun ps -> program_of ps) gen_pieces)
    (fun pieces ->
      let src = program_of pieces in
      let n_code, n_out, _ = run_src Native src in
      let l_code, l_out, l_trace = run_src Lazy src in
      let s_code, s_out, s_trace = run_src SudB src in
      let z_code, z_out, _ = run_src Zp src in
      n_code = l_code && n_code = s_code && n_code = z_code && n_out = l_out
      && n_out = s_out && n_out = z_out && l_trace = s_trace)

let prop_protected_equivalence =
  QCheck.Test.make ~count:15
    ~name:"random C programs unchanged under MPK-protected lazypoline"
    (QCheck.make gen_pieces)
    (fun pieces ->
      let src = program_of pieces in
      let n_code, n_out, _ = run_src Native src in
      let k = Kernel.create () in
      ignore (Vfs.add_file k.Types.vfs "/data/seed" "0123456789abcdef");
      let t = Kernel.spawn k (Minicc.Codegen.compile_to_image src) in
      ignore (Lazypoline.install ~protect_selector:true k t (Hook.dummy ()));
      Buffer.clear Kernel.console;
      let ok = Kernel.run_until_exit ~max_slices:600_000 k in
      ok && t.Types.exit_code = n_code && Buffer.contents Kernel.console = n_out)

let test_strace_decodes_paths () =
  let k = Kernel.create () in
  ignore (Vfs.add_file k.Types.vfs "/etc/motd" "m");
  let t =
    Kernel.spawn k
      (Minicc.Codegen.compile_to_image
         "long main() { return syscall(2, \"/etc/motd\", 0, 0) >= 0; }")
  in
  let hook, log = Hook.strace () in
  ignore (Lazypoline.install k t hook);
  ignore (Kernel.run_until_exit k);
  Alcotest.(check int) "opened" 1 t.Types.exit_code;
  let lines = List.rev !log in
  Alcotest.(check bool)
    (Printf.sprintf "path decoded in %s" (String.concat "; " lines))
    true
    (List.exists
       (fun l ->
         String.length l >= 4
         && String.sub l 0 4 = "open"
         && String.length l > 6
         &&
         let rec contains i =
           i + 9 <= String.length l
           && (String.sub l i 9 = "/etc/motd" || contains (i + 1))
         in
         contains 0)
       lines)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_minicc_equivalence;
    QCheck_alcotest.to_alcotest prop_protected_equivalence;
    Alcotest.test_case "strace decodes paths" `Quick test_strace_decodes_paths;
  ]
