(** End-to-end tests of the lazypoline mechanism: lazy rewriting,
    fast/slow path, signal wrapping, xstate preservation, fork
    re-arming, JIT exhaustiveness, hook expressiveness. *)

open Sim_isa
open Sim_asm.Asm
open Sim_kernel
open Lazypoline
module Hook = Lazypoline.Hook
module Layout = Lazypoline.Layout

let run_with_lazypoline ?(preserve_xstate = true) ?(enable_sud = true)
    ?(hook = Hook.dummy ()) ?(setup = fun _ _ -> ()) items =
  let k = Kernel.create () in
  let img = Loader.image_of_items items in
  let t = Kernel.spawn k img in
  let st = install ~preserve_xstate ~enable_sud k t hook in
  setup k t;
  let finished = Kernel.run_until_exit ~max_slices:400_000 k in
  if not finished then Alcotest.fail "program did not terminate";
  (t.Types.exit_code, st, k, t)

let test_basic_passthrough () =
  let hook, trace = Hook.tracing () in
  let code, st, _, _ =
    run_with_lazypoline ~hook
      ([ mov_ri Isa.rax Defs.sys_getpid; syscall; mov_rr Isa.rdi Isa.rax;
         mov_ri Isa.rax Defs.sys_exit_group; syscall ])
  in
  Alcotest.(check int) "getpid result intact" 1 code;
  let nrs = List.map fst (Hook.recorded trace) in
  Alcotest.(check (list int)) "trace"
    [ Defs.sys_getpid; Defs.sys_exit_group ]
    nrs;
  Alcotest.(check int) "both sites hit slow path once" 2 st.stats.slow_hits;
  Alcotest.(check int) "both sites rewritten" 2 st.stats.rewrites

let test_fast_path_after_rewrite () =
  (* A loop executing the same syscall site 5 times: 1 slow hit, 5
     fast-path entries (the slow path redirects into the entry). *)
  let code, st, _, _ =
    run_with_lazypoline
      ([
         mov_ri Isa.rbx 5;
         Label "loop";
         mov_ri Isa.rax Defs.sys_getpid;
         syscall;
         sub_ri Isa.rbx 1;
         cmp_ri Isa.rbx 0;
         Jcc_l (Isa.Ne, "loop");
       ]
      @ Tutil.exit_with 0)
  in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check int) "one rewrite for the loop site + exit site" 2
    st.stats.rewrites;
  (* 5 loop iterations + exit_group all funnel through the entry *)
  Alcotest.(check int) "fast hits" 6 st.stats.fast_hits;
  Alcotest.(check int) "slow hits" 2 st.stats.slow_hits

let test_site_bytes_rewritten () =
  let _, _, _, t =
    run_with_lazypoline
      ([ Label "site"; mov_ri Isa.rax Defs.sys_getpid; syscall ]
      @ Tutil.exit_with 0)
  in
  (* the syscall of "site" block is at code_base + 10 (mov_ri is 10
     bytes) *)
  let site = Loader.code_base + 10 in
  Alcotest.(check string) "call rax bytes" "\xff\xd0"
    (Sim_mem.Mem.peek_bytes t.Types.mem site 2)

let test_registers_preserved () =
  (* Non-clobbered registers survive interposition; syscall results
     land in rax. *)
  let code, _, _, _ =
    run_with_lazypoline
      ([
         mov_ri Isa.r14 70;
         mov_ri Isa.rbx 7;
         mov_ri Isa.rax Defs.sys_getpid;
         syscall;
         (* exit(r14 + rbx - getpid()) = 70 + 7 - 1 = 76 *)
         add_rr Isa.r14 Isa.rbx;
         sub_rr Isa.r14 Isa.rax;
         mov_rr Isa.rdi Isa.r14;
         mov_ri Isa.rax Defs.sys_exit_group;
         syscall;
       ])
  in
  Alcotest.(check int) "registers preserved" 76 code

let listing1_prog =
  (* The paper's Listing 1: populate xmm0, do two syscalls, then use
     xmm0 to initialise two adjacent struct fields. *)
  [
    mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 4096;
    mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
    mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
    mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
    mov_ri Isa.rax Defs.sys_mmap; syscall;
    mov_ri Isa.r12 0x9100;
    i (Isa.Movq_xr (0, Isa.r12));
    i (Isa.Punpcklqdq (0, 0));
    mov_ri Isa.rax Defs.sys_set_tid_address; syscall;
    mov_ri Isa.rax Defs.sys_set_robust_list; syscall;
    i (Isa.Movups_store (Isa.Seg_none, Isa.r12, 0l, 0));
    (* exit(1 if both fields = 0x9100 else 0) *)
    load Isa.rcx Isa.r12 0;
    load Isa.rdx Isa.r12 8;
    cmp_ri Isa.rcx 0x9100;
    Jcc_l (Isa.Ne, "bad");
    cmp_ri Isa.rdx 0x9100;
    Jcc_l (Isa.Ne, "bad");
  ]
  @ Tutil.exit_with 1
  @ [ Label "bad" ]
  @ Tutil.exit_with 0

let test_listing1_xstate_preserved () =
  let hook = Hook.dummy () in
  hook.Hook.clobbers_xstate <- true;
  let code, _, _, _ =
    run_with_lazypoline ~preserve_xstate:true ~hook listing1_prog
  in
  Alcotest.(check int) "struct fields correct with preservation" 1 code

let test_listing1_xstate_clobbered () =
  (* Without preservation and with an SSE-using hook, the pthread-init
     pattern breaks — the paper's compatibility hazard. *)
  let hook = Hook.dummy () in
  hook.Hook.clobbers_xstate <- true;
  let code, _, _, _ =
    run_with_lazypoline ~preserve_xstate:false ~hook listing1_prog
  in
  Alcotest.(check int) "struct fields corrupted without preservation" 0 code

let test_signal_wrapping () =
  (* App installs a SIGUSR1 handler under lazypoline; the handler does
     a syscall of its own; everything must be interposed and the
     program completes correctly. *)
  let hook, trace = Hook.tracing () in
  let prog =
    [
      (* install handler *)
      mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 1024;
      Lea_ip (Isa.rcx, "handler");
      store Isa.rbx 0 Isa.rcx;
      mov_ri Isa.rcx 0;
      store Isa.rbx 8 Isa.rcx; store Isa.rbx 16 Isa.rcx;
      Lea_ip (Isa.rcx, "app_restorer");
      store Isa.rbx 24 Isa.rcx;
      mov_ri Isa.rdi Defs.sigusr1;
      mov_rr Isa.rsi Isa.rbx;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_rt_sigaction; syscall;
      (* a global page for the handler to write into *)
      mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 4096;
      mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
      mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
      mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
      mov_ri Isa.rax Defs.sys_mmap; syscall;
      (* raise it *)
      mov_ri Isa.rax Defs.sys_getpid; syscall;
      mov_rr Isa.rdi Isa.rax;
      mov_ri Isa.rsi Defs.sigusr1;
      mov_ri Isa.rax Defs.sys_kill; syscall;
      (* after handler: the global must be 9 (set by handler) *)
      mov_ri Isa.rbx 0x9000;
      load Isa.rdi Isa.rbx 0;
      mov_ri Isa.rax Defs.sys_exit_group; syscall;
      Label "handler";
      (* the handler performs a syscall (must be interposed) *)
      mov_ri Isa.rax Defs.sys_gettid; syscall;
      mov_ri Isa.rbx 0x9000;
      mov_ri Isa.rcx 9;
      store Isa.rbx 0 Isa.rcx;
      ret;
      Label "app_restorer";
      (* never used: lazypoline substitutes its own restorer *)
      mov_ri Isa.rax Defs.sys_rt_sigreturn; syscall;
    ]
  in
  let code, st, _, _ = run_with_lazypoline ~hook prog in
  Alcotest.(check int) "handler ran and returned" 9 code;
  let nrs = List.map fst (Hook.recorded trace) in
  Alcotest.(check bool) "sigaction interposed" true
    (List.mem Defs.sys_rt_sigaction nrs);
  Alcotest.(check bool) "handler's gettid interposed" true
    (List.mem Defs.sys_gettid nrs);
  Alcotest.(check bool) "rt_sigreturn interposed" true
    (List.mem Defs.sys_rt_sigreturn nrs);
  Alcotest.(check int) "one wrapped handler" 1 st.stats.signals_wrapped;
  Alcotest.(check int) "one redirected sigreturn" 1
    st.stats.sigreturns_redirected

let test_signal_wrapping_preserves_selector_discipline () =
  (* After a wrapped signal interrupted *application* code, the
     selector must be BLOCK again — later syscalls keep being
     interposed. *)
  let hook, trace = Hook.tracing () in
  let prog =
    [
      mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 1024;
      Lea_ip (Isa.rcx, "handler");
      store Isa.rbx 0 Isa.rcx;
      mov_ri Isa.rcx 0;
      store Isa.rbx 8 Isa.rcx; store Isa.rbx 16 Isa.rcx;
      store Isa.rbx 24 Isa.rcx;
      mov_ri Isa.rdi Defs.sigusr1;
      mov_rr Isa.rsi Isa.rbx;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_rt_sigaction; syscall;
      mov_ri Isa.rax Defs.sys_getpid; syscall;
      mov_rr Isa.rdi Isa.rax;
      mov_ri Isa.rsi Defs.sigusr1;
      mov_ri Isa.rax Defs.sys_kill; syscall;
      (* post-signal syscall must still be interposed *)
      mov_ri Isa.rax Defs.sys_getuid; syscall;
    ]
    @ Tutil.exit_with 0
    @ [ Label "handler"; ret ]
  in
  let code, st, _, _ = run_with_lazypoline ~hook prog in
  Alcotest.(check int) "exit" 0 code;
  let nrs = List.map fst (Hook.recorded trace) in
  (* The getuid site is fresh: it can only have been interposed if the
     selector was back to BLOCK after the wrapped signal — the
     trampoline restored it.  (We cannot probe the byte at exit: the
     final exit_group legitimately dies inside the entry stub with the
     selector at ALLOW.) *)
  Alcotest.(check bool) "post-signal getuid interposed" true
    (List.mem Defs.sys_getuid nrs);
  Alcotest.(check int) "sigreturn went through the trampoline" 1
    st.stats.sigreturns_redirected

let test_fork_rearms_child () =
  (* Child syscalls are interposed too (SUD re-enabled by the exit
     hypercall).  The child exits 5; parent propagates it. *)
  let hook, trace = Hook.tracing () in
  let prog =
    [
      mov_ri Isa.rax Defs.sys_fork; syscall;
      cmp_ri Isa.rax 0;
      Jcc_l (Isa.Eq, "child");
      mov_ri64 Isa.rdi (-1L);
      mov_rr Isa.rsi Isa.rsp; sub_ri Isa.rsi 256;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_wait4; syscall;
      mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 256;
      load Isa.rdi Isa.rbx 0;
      i (Isa.Shift (Isa.Shr, Isa.rdi, 8));
      mov_ri Isa.rax Defs.sys_exit_group; syscall;
      Label "child";
      (* a syscall from a fresh site in the child *)
      mov_ri Isa.rax Defs.sys_getuid; syscall;
    ]
    @ Tutil.exit_with 5
  in
  let code, st, _, _ = run_with_lazypoline ~hook prog in
  Alcotest.(check int) "child exit propagated" 5 code;
  let nrs = List.map fst (Hook.recorded trace) in
  (* The child's getuid sits at a fresh site only the child executes:
     interposing it requires the exit hypercall to have re-armed SUD
     in the child (the kernel clears it on fork). *)
  Alcotest.(check bool) "child getuid interposed" true
    (List.mem Defs.sys_getuid nrs);
  Alcotest.(check int) "child registered with the interposer" 2
    (Hashtbl.length st.known_tasks)

let jit_prog =
  (* A JIT: decodes a getpid+ret gadget into fresh RWX memory at run
     time and calls it — the syscall instruction does not exist
     anywhere (not even as data: the blob is XOR-obfuscated, as
     JIT-generated bytes are computed, not copied) until after
     install/scan time. *)
  let gadget =
    Sim_isa.Encode.encode_all
      [ Isa.Mov_ri (Isa.rax, Int64.of_int Defs.sys_getpid); Isa.Syscall;
        Isa.Ret ]
    |> String.map (fun ch -> Char.chr (Char.code ch lxor 0x55))
  in
  [
    Label "start";
    Jmp_l "go";
    Label "gadget";
    Bytes gadget;
    Label "go";
    (* mmap RWX at 0xA000 *)
    mov_ri Isa.rdi 0xA000; mov_ri Isa.rsi 4096;
    mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write lor Defs.prot_exec);
    mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
    mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
    mov_ri Isa.rax Defs.sys_mmap; syscall;
    (* copy gadget byte by byte *)
    Lea_ip (Isa.rsi, "gadget");
    mov_ri Isa.rdi 0xA000;
    mov_ri Isa.rbx (String.length gadget);
    Label "copy";
    load8 Isa.rcx Isa.rsi 0;
    i (Isa.Alu_ri (Isa.Xor, Isa.rcx, 0x55l));
    store8 Isa.rdi 0 Isa.rcx;
    add_ri Isa.rsi 1;
    add_ri Isa.rdi 1;
    sub_ri Isa.rbx 1;
    cmp_ri Isa.rbx 0;
    Jcc_l (Isa.Ne, "copy");
    (* call the JITted code *)
    mov_ri Isa.rbx 0xA000;
    call_reg Isa.rbx;
    (* exit(getpid result) *)
    mov_rr Isa.rdi Isa.rax;
    mov_ri Isa.rax Defs.sys_exit_group; syscall;
  ]

let test_jit_code_interposed () =
  (* The exhaustiveness headline: lazypoline intercepts syscalls from
     code generated after installation. *)
  let hook, trace = Hook.tracing () in
  let code, st, _, _ = run_with_lazypoline ~hook jit_prog in
  Alcotest.(check int) "JITted getpid returned pid" 1 code;
  let nrs = List.map fst (Hook.recorded trace) in
  Alcotest.(check bool) "JITted getpid interposed" true
    (List.mem Defs.sys_getpid nrs);
  Alcotest.(check bool) "JIT site was rewritten" true (st.stats.rewrites >= 3)

let test_hook_can_suppress () =
  (* Full expressiveness: deny open() of /etc/secret with EACCES. *)
  let hook = Hook.dummy () in
  hook.Hook.on_syscall <-
    (fun c ->
      if c.Hook.nr = Defs.sys_open then
        let path = Hook.read_string c (Int64.to_int c.Hook.args.(0)) in
        if path = "/etc/secret" then
          Hook.Return (Int64.of_int (-Defs.eacces))
        else Hook.Emulate
      else Hook.Emulate);
  let k = Kernel.create () in
  ignore (Vfs.add_file k.Types.vfs "/etc/secret" "classified");
  let img =
    Loader.image_of_items
      [
        Label "start";
        Jmp_l "go";
        Label "path";
        Bytes "/etc/secret\000";
        Label "go";
        Lea_ip (Isa.rdi, "path");
        mov_ri Isa.rsi Defs.o_rdonly;
        mov_ri Isa.rdx 0;
        mov_ri Isa.rax Defs.sys_open; syscall;
        mov_ri Isa.rbx 0; sub_rr Isa.rbx Isa.rax;
        mov_rr Isa.rdi Isa.rbx;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
      ]
  in
  let t = Kernel.spawn k img in
  let _st = install k t hook in
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  Alcotest.(check int) "open denied with EACCES" Defs.eacces
    t.Types.exit_code

let test_hook_can_rewrite_args () =
  (* The hook rewrites getuid into gettid via set_nr. *)
  let hook = Hook.dummy () in
  hook.Hook.on_syscall <-
    (fun c ->
      if c.Hook.nr = Defs.sys_getuid then Hook.set_nr c Defs.sys_getpid;
      Hook.Emulate);
  let code, _, _, _ =
    run_with_lazypoline ~hook
      ([ mov_ri Isa.rax Defs.sys_getuid; syscall; mov_rr Isa.rdi Isa.rax;
         mov_ri Isa.rax Defs.sys_exit_group; syscall ])
  in
  (* getuid would return 1000; rewritten getpid returns 1 *)
  Alcotest.(check int) "hook rewrote syscall" 1 code

let test_blocking_syscall_under_interposition () =
  (* nanosleep blocks in the emulated syscall and resumes correctly. *)
  let code, _, _, _ =
    run_with_lazypoline
      ([
         (* timespec at rsp-64: 0 sec, 10000 ns *)
         mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 64;
         mov_ri Isa.rcx 0;
         store Isa.rbx 0 Isa.rcx;
         mov_ri Isa.rcx 10000;
         store Isa.rbx 8 Isa.rcx;
         mov_rr Isa.rdi Isa.rbx;
         mov_ri Isa.rsi 0;
         mov_ri Isa.rax Defs.sys_nanosleep; syscall;
       ]
      @ Tutil.exit_with 0)
  in
  Alcotest.(check int) "slept and exited" 0 code

let test_sud_disabled_config () =
  (* Fig. 4 configuration: no SUD slow path.  Without pre-rewriting,
     syscalls run natively (not interposed); with pre-rewriting, the
     fast path interposes them. *)
  let hook, trace = Hook.tracing () in
  let items =
    [ Label "site"; mov_ri Isa.rax Defs.sys_getpid; syscall ]
    @ Tutil.exit_with 0
  in
  let _, st, _, _ = run_with_lazypoline ~enable_sud:false ~hook items in
  Alcotest.(check int) "no slow hits" 0 st.stats.slow_hits;
  Alcotest.(check (list int)) "nothing traced" []
    (List.map fst (Hook.recorded trace));
  (* Now with the site pre-rewritten. *)
  let hook2, trace2 = Hook.tracing () in
  let k = Kernel.create () in
  let img = Loader.image_of_items items in
  let t = Kernel.spawn k img in
  let st2 = install ~enable_sud:false k t hook2 in
  rewrite_site st2 t ~addr:(Loader.code_base + 10);
  ignore (Kernel.run_until_exit k);
  Alcotest.(check (list int)) "fast path traced getpid"
    [ Defs.sys_getpid ]
    (List.map fst (Hook.recorded trace2));
  Alcotest.(check int) "exit ok" 0 t.Types.exit_code

let tests =
  [
    Alcotest.test_case "basic passthrough + trace" `Quick
      test_basic_passthrough;
    Alcotest.test_case "fast path after rewrite" `Quick
      test_fast_path_after_rewrite;
    Alcotest.test_case "site bytes rewritten to call rax" `Quick
      test_site_bytes_rewritten;
    Alcotest.test_case "registers preserved" `Quick test_registers_preserved;
    Alcotest.test_case "Listing 1: xstate preserved" `Quick
      test_listing1_xstate_preserved;
    Alcotest.test_case "Listing 1: xstate clobbered without preservation"
      `Quick test_listing1_xstate_clobbered;
    Alcotest.test_case "signal wrapping" `Quick test_signal_wrapping;
    Alcotest.test_case "selector discipline after signals" `Quick
      test_signal_wrapping_preserves_selector_discipline;
    Alcotest.test_case "fork re-arms child" `Quick test_fork_rearms_child;
    Alcotest.test_case "JIT code interposed (exhaustiveness)" `Quick
      test_jit_code_interposed;
    Alcotest.test_case "hook suppresses syscalls" `Quick
      test_hook_can_suppress;
    Alcotest.test_case "hook rewrites syscalls" `Quick
      test_hook_can_rewrite_args;
    Alcotest.test_case "blocking syscall" `Quick
      test_blocking_syscall_under_interposition;
    Alcotest.test_case "SUD-disabled config (Fig 4)" `Quick
      test_sud_disabled_config;
  ]
