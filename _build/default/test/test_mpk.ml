(** Tests of the MPK-style selector protection (the paper's Section VI
    hardening): protection keys at the CPU/kernel level, and the
    lazypoline [~protect_selector] option that makes the SUD selector
    byte tamper-proof against application code. *)

open Sim_isa
open Sim_asm.Asm
open Sim_kernel
module Hook = Lazypoline.Hook
module Layout = Lazypoline.Layout

(* --- CPU/kernel level ---------------------------------------------- *)

let test_wrpkru_rdpkru () =
  let code, _, _ =
    Tutil.run_asm
      ([
         mov_ri Isa.rcx 0x6;
         i (Isa.Wrpkru Isa.rcx);
         i (Isa.Rdpkru Isa.rdi);
       ]
      @ [ mov_ri Isa.rax Defs.sys_exit_group; syscall ])
  in
  Alcotest.(check int) "pkru readback" 0x6 code

let pkey_mprotect_page =
  (* map a page at 0x9000 and tag it pkey 1 *)
  [
    mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 4096;
    mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
    mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
    mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
    mov_ri Isa.rax Defs.sys_mmap; syscall;
    mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 4096;
    mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
    mov_ri Isa.r10 1;
    mov_ri Isa.rax Defs.sys_pkey_mprotect; syscall;
  ]

let test_pkey_denied_write_faults () =
  let prog =
    pkey_mprotect_page
    @ [
        (* deny writes to pkey 1, then store *)
        mov_ri Isa.rcx 2;
        i (Isa.Wrpkru Isa.rcx);
        mov_ri Isa.rbx 0x9000;
        mov_ri Isa.rcx 7;
        store Isa.rbx 0 Isa.rcx;
      ]
    @ Tutil.exit_with 0
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "killed by SIGSEGV" (128 + Defs.sigsegv) code

let test_pkey_allowed_write_passes () =
  let prog =
    pkey_mprotect_page
    @ [
        mov_ri Isa.rcx 2;
        i (Isa.Wrpkru Isa.rcx);
        (* open the window, write, close *)
        mov_ri Isa.rcx 0;
        i (Isa.Wrpkru Isa.rcx);
        mov_ri Isa.rbx 0x9000;
        mov_ri Isa.rcx 7;
        store Isa.rbx 0 Isa.rcx;
        mov_ri Isa.rcx 2;
        i (Isa.Wrpkru Isa.rcx);
        (* reads are never blocked by our write-deny keys *)
        load Isa.rdi Isa.rbx 0;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
      ]
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "wrote through window" 7 code

let test_pkru_saved_across_signals () =
  (* A handler that opens the window must not leave it open for the
     interrupted context: sigreturn restores PKRU from the frame. *)
  let prog =
    pkey_mprotect_page
    @ [
        (* install handler *)
        mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 1024;
        Lea_ip (Isa.rcx, "handler");
        store Isa.rbx 0 Isa.rcx;
        mov_ri Isa.rcx 0;
        store Isa.rbx 8 Isa.rcx; store Isa.rbx 16 Isa.rcx;
        Lea_ip (Isa.rcx, "restorer");
        store Isa.rbx 24 Isa.rcx;
        mov_ri Isa.rdi Defs.sigusr1;
        mov_rr Isa.rsi Isa.rbx;
        mov_ri Isa.rdx 0;
        mov_ri Isa.rax Defs.sys_rt_sigaction; syscall;
        (* deny, then raise the signal *)
        mov_ri Isa.rcx 2;
        i (Isa.Wrpkru Isa.rcx);
        mov_ri Isa.rax Defs.sys_getpid; syscall;
        mov_rr Isa.rdi Isa.rax;
        mov_ri Isa.rsi Defs.sigusr1;
        mov_ri Isa.rax Defs.sys_kill; syscall;
        (* after the handler (which opened the window), pkru must be
           denied again *)
        i (Isa.Rdpkru Isa.rdi);
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "handler";
        mov_ri Isa.rcx 0;
        i (Isa.Wrpkru Isa.rcx);
        ret;
        Label "restorer";
        mov_ri Isa.rax Defs.sys_rt_sigreturn; syscall;
      ]
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "pkru restored to deny" 2 code

(* --- lazypoline ~protect_selector ---------------------------------- *)

let simple_prog =
  [ mov_ri Isa.rax Defs.sys_getpid; syscall; mov_rr Isa.rdi Isa.rax;
    mov_ri Isa.rax Defs.sys_exit_group; syscall ]

let test_protected_interposition_works () =
  let k = Kernel.create () in
  let t = Kernel.spawn k (Loader.image_of_items simple_prog) in
  let hook, trace = Hook.tracing () in
  ignore (Lazypoline.install ~protect_selector:true k t hook);
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  Alcotest.(check int) "result intact" 1 t.Types.exit_code;
  Alcotest.(check (list int)) "trace complete"
    [ Defs.sys_getpid; Defs.sys_exit_group ]
    (List.map fst (Hook.recorded trace))

(* An "attacker": overwrite the selector byte with ALLOW, then perform
   a secret syscall that should escape interposition. *)
let attacker_prog ~selector_addr =
  [
    mov_ri Isa.rax Defs.sys_getpid; syscall;
    (* overwrite the selector *)
    mov_ri Isa.rbx selector_addr;
    mov_ri Isa.rcx Defs.syscall_dispatch_filter_allow;
    store8 Isa.rbx 0 Isa.rcx;
    (* the syscall the interposer must not miss *)
    mov_ri Isa.rax Defs.sys_getuid; syscall;
  ]
  @ Tutil.exit_with 0

let run_attack ~protect =
  (* Two-phase: install first to learn the selector address, then
     rebuild the attacker image against it (the attacker "knows" the
     layout, as a strong adversary would). *)
  let probe_k = Kernel.create () in
  let probe_t = Kernel.spawn probe_k (Loader.image_of_items simple_prog) in
  ignore (Lazypoline.install ~protect_selector:protect probe_k probe_t (Hook.dummy ()));
  let selector_addr = probe_t.Types.sud.Types.sud_selector in
  let k = Kernel.create () in
  let t = Kernel.spawn k (Loader.image_of_items (attacker_prog ~selector_addr)) in
  let hook, trace = Hook.tracing () in
  ignore (Lazypoline.install ~protect_selector:protect k t hook);
  Alcotest.(check int) "same layout" selector_addr
    t.Types.sud.Types.sud_selector;
  ignore (Kernel.run_until_exit k);
  (t.Types.exit_code, List.map fst (Hook.recorded trace))

let test_unprotected_attack_succeeds () =
  (* Without Section VI hardening, flipping the selector silently
     disables interception: the getuid escapes. *)
  let code, trace = run_attack ~protect:false in
  Alcotest.(check int) "attacker survives" 0 code;
  Alcotest.(check bool) "getpid was still interposed" true
    (List.mem Defs.sys_getpid trace);
  Alcotest.(check bool) "getuid ESCAPED interposition" false
    (List.mem Defs.sys_getuid trace)

let test_protected_attack_faults () =
  (* With the selector behind a protection key, the overwrite faults
     and the attacker dies before issuing the secret syscall. *)
  let code, trace = run_attack ~protect:true in
  Alcotest.(check int) "attacker killed by SIGSEGV" (128 + Defs.sigsegv) code;
  Alcotest.(check bool) "no syscall escaped" false
    (List.mem Defs.sys_getuid trace)

let test_protected_signals_still_work () =
  (* Signal wrapping under protection: the wrapper and trampoline
     toggle the window correctly. *)
  let prog =
    [
      mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 1024;
      Lea_ip (Isa.rcx, "handler");
      store Isa.rbx 0 Isa.rcx;
      mov_ri Isa.rcx 0;
      store Isa.rbx 8 Isa.rcx; store Isa.rbx 16 Isa.rcx;
      store Isa.rbx 24 Isa.rcx;
      mov_ri Isa.rdi Defs.sigusr1;
      mov_rr Isa.rsi Isa.rbx;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_rt_sigaction; syscall;
      mov_ri Isa.rax Defs.sys_getpid; syscall;
      mov_rr Isa.rdi Isa.rax;
      mov_ri Isa.rsi Defs.sigusr1;
      mov_ri Isa.rax Defs.sys_kill; syscall;
      (* still interposed after the signal *)
      mov_ri Isa.rax Defs.sys_getuid; syscall;
    ]
    @ Tutil.exit_with 0
    @ [ Label "handler"; mov_ri Isa.rax Defs.sys_gettid; syscall; ret ]
  in
  let k = Kernel.create () in
  let t = Kernel.spawn k (Loader.image_of_items prog) in
  let hook, trace = Hook.tracing () in
  ignore (Lazypoline.install ~protect_selector:true k t hook);
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  Alcotest.(check int) "exit ok" 0 t.Types.exit_code;
  let nrs = List.map fst (Hook.recorded trace) in
  Alcotest.(check bool) "handler syscall interposed" true
    (List.mem Defs.sys_gettid nrs);
  Alcotest.(check bool) "post-signal syscall interposed" true
    (List.mem Defs.sys_getuid nrs)

let test_protected_fork_child () =
  let prog =
    [
      mov_ri Isa.rax Defs.sys_fork; syscall;
      cmp_ri Isa.rax 0;
      Jcc_l (Isa.Eq, "child");
      mov_ri64 Isa.rdi (-1L);
      mov_rr Isa.rsi Isa.rsp; sub_ri Isa.rsi 256;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_wait4; syscall;
      mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 256;
      load Isa.rdi Isa.rbx 0;
      i (Isa.Shift (Isa.Shr, Isa.rdi, 8));
      mov_ri Isa.rax Defs.sys_exit_group; syscall;
      Label "child";
      mov_ri Isa.rax Defs.sys_getuid; syscall;
    ]
    @ Tutil.exit_with 6
  in
  let k = Kernel.create () in
  let t = Kernel.spawn k (Loader.image_of_items prog) in
  let hook, trace = Hook.tracing () in
  ignore (Lazypoline.install ~protect_selector:true k t hook);
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  Alcotest.(check int) "child status" 6 t.Types.exit_code;
  Alcotest.(check bool) "child interposed" true
    (List.mem Defs.sys_getuid (List.map fst (Hook.recorded trace)))

let test_protection_cost_is_small () =
  (* The hardening costs two WRPKRUs per interposition — well under
     the cost of the xstate option. *)
  let base =
    Workloads.Microbench_prog.run ~iters:3_000
      Workloads.Microbench_prog.Lazypoline_noxstate
  in
  let k = Kernel.create () in
  let blob =
    Sim_asm.Asm.assemble ~base:Loader.code_base
      (Workloads.Microbench_prog.bench_items ~iters:3_000 ~nr:500)
  in
  let img =
    Loader.image ~entry:(Sim_asm.Asm.symbol blob "start") ~text:blob ()
  in
  let t = Kernel.spawn k img in
  let st =
    Lazypoline.install ~preserve_xstate:false ~protect_selector:true k t
      (Hook.dummy ())
  in
  Lazypoline.rewrite_site st t ~addr:(Sim_asm.Asm.symbol blob "site");
  ignore (Kernel.run_until_exit k);
  let protected_ = Int64.to_float t.Types.tcycles /. 3_000.0 in
  let delta = protected_ -. base in
  Alcotest.(check bool)
    (Printf.sprintf "wrpkru cost ~2x23 cycles (got %.1f)" delta)
    true
    (delta > 40.0 && delta < 80.0)

let tests =
  [
    Alcotest.test_case "wrpkru/rdpkru" `Quick test_wrpkru_rdpkru;
    Alcotest.test_case "pkey-denied write faults" `Quick
      test_pkey_denied_write_faults;
    Alcotest.test_case "window write passes" `Quick
      test_pkey_allowed_write_passes;
    Alcotest.test_case "pkru restored across signals" `Quick
      test_pkru_saved_across_signals;
    Alcotest.test_case "protected interposition works" `Quick
      test_protected_interposition_works;
    Alcotest.test_case "unprotected: attack succeeds" `Quick
      test_unprotected_attack_succeeds;
    Alcotest.test_case "protected: attack faults" `Quick
      test_protected_attack_faults;
    Alcotest.test_case "protected: signals work" `Quick
      test_protected_signals_still_work;
    Alcotest.test_case "protected: fork child" `Quick
      test_protected_fork_child;
    Alcotest.test_case "protection cost band" `Quick
      test_protection_cost_is_small;
  ]
