(** Edge cases of the lazypoline mechanism: nested signals, threads,
    execve, blocking pipelines across processes, hook interactions on
    both paths. *)

open Sim_isa
open Sim_asm.Asm
open Sim_kernel
module Hook = Lazypoline.Hook

let install_handler_at ~sig_ ~handler_label ~scratch_off =
  [
    mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx scratch_off;
    Lea_ip (Isa.rcx, handler_label);
    store Isa.rbx 0 Isa.rcx;
    mov_ri Isa.rcx 0;
    store Isa.rbx 8 Isa.rcx; store Isa.rbx 16 Isa.rcx;
    store Isa.rbx 24 Isa.rcx;
    mov_ri Isa.rdi sig_;
    mov_rr Isa.rsi Isa.rbx;
    mov_ri Isa.rdx 0;
    mov_ri Isa.rax Defs.sys_rt_sigaction; syscall;
  ]

let kill_self sig_ =
  [
    mov_ri Isa.rax Defs.sys_getpid; syscall;
    mov_rr Isa.rdi Isa.rax;
    mov_ri Isa.rsi sig_;
    mov_ri Isa.rax Defs.sys_kill; syscall;
  ]

let map_globals =
  [
    mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 4096;
    mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
    mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
    mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
    mov_ri Isa.rax Defs.sys_mmap; syscall;
  ]

let run ?(hook = Hook.dummy ()) ?(setup = fun _ -> ()) items =
  let k = Kernel.create () in
  setup k;
  let t = Kernel.spawn k (Loader.image_of_items items) in
  let st = Lazypoline.install k t hook in
  let ok = Kernel.run_until_exit ~max_slices:400_000 k in
  if not ok then Alcotest.fail "did not terminate";
  (t.Types.exit_code, st, k)

let test_nested_wrapped_signals () =
  (* USR1 handler raises USR2 (unmasked): the sigreturn stack must
     nest and unwind correctly, and all handler syscalls must be
     interposed. *)
  let hook, trace = Hook.tracing () in
  let prog =
    map_globals
    @ install_handler_at ~sig_:Defs.sigusr1 ~handler_label:"h1"
        ~scratch_off:1024
    @ install_handler_at ~sig_:Defs.sigusr2 ~handler_label:"h2"
        ~scratch_off:1024
    @ kill_self Defs.sigusr1
    @ [
        (* expect global = 0x21 (h2 ran inside h1) *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rdi Isa.rbx 0;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "h1";
        (* global = global*16 + 1 after h2 completes *)
      ]
    @ kill_self Defs.sigusr2
    @ [
        mov_ri Isa.rbx 0x9000;
        load Isa.rcx Isa.rbx 0;
        i (Isa.Shift (Isa.Shl, Isa.rcx, 4));
        add_ri Isa.rcx 1;
        store Isa.rbx 0 Isa.rcx;
        ret;
        Label "h2";
        mov_ri Isa.rax Defs.sys_gettid; syscall;
        mov_ri Isa.rbx 0x9000;
        mov_ri Isa.rcx 2;
        store Isa.rbx 0 Isa.rcx;
        ret;
      ]
  in
  let code, st, _ = run ~hook prog in
  Alcotest.(check int) "h2 nested inside h1" 0x21 code;
  Alcotest.(check int) "two sigreturns redirected" 2
    st.Lazypoline.stats.Lazypoline.sigreturns_redirected;
  Alcotest.(check bool) "h2's gettid interposed" true
    (List.mem Defs.sys_gettid (List.map fst (Hook.recorded trace)))

let test_thread_clone_vm_interposed () =
  (* A CLONE_VM thread gets its own %gs selector area and is fully
     interposed; the shared address space keeps working. *)
  let hook, trace = Hook.tracing () in
  let prog =
    map_globals
    @ [
        (* clone a thread with its own stack inside the shared page *)
        mov_ri Isa.rdi
          (Defs.clone_vm lor Defs.clone_files lor Defs.clone_sighand
         lor Defs.clone_thread);
        mov_ri Isa.rsi (0x9000 + 4096 - 512);
        mov_ri Isa.rdx 0; mov_ri Isa.r10 0; mov_ri Isa.r8 0;
        mov_ri Isa.rax Defs.sys_clone; syscall;
        cmp_ri Isa.rax 0;
        Jcc_l (Isa.Eq, "thread");
        (* main: wait for the thread's flag *)
        Label "spin";
        mov_ri Isa.rbx 0x9000;
        load Isa.rcx Isa.rbx 0;
        cmp_ri Isa.rcx 0;
        Jcc_l (Isa.Eq, "spin");
        mov_rr Isa.rdi Isa.rcx;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "thread";
        (* fresh interposition site in the thread *)
        mov_ri Isa.rax Defs.sys_getuid; syscall;
        mov_ri Isa.rbx 0x9000;
        mov_ri Isa.rcx 5;
        store Isa.rbx 0 Isa.rcx;
        mov_ri Isa.rdi 0;
        mov_ri Isa.rax Defs.sys_exit; syscall;
      ]
  in
  let code, st, k = run ~hook prog in
  Alcotest.(check int) "thread signalled main" 5 code;
  Alcotest.(check bool) "thread's getuid interposed" true
    (List.mem Defs.sys_getuid (List.map fst (Hook.recorded trace)));
  Alcotest.(check int) "thread registered" 2
    (Hashtbl.length st.Lazypoline.known_tasks);
  (* the thread got its own gs area, distinct from the main task's *)
  let bases =
    Hashtbl.fold
      (fun _ u acc -> u.Types.ctx.Sim_cpu.Cpu.gs_base :: acc)
      k.Types.tasks []
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "two distinct gs bases" 2 (List.length bases)

let test_execve_ends_interposition_cleanly () =
  (* Interposition does not survive execve (SUD is cleared and the
     mappings are gone), but it must see the execve itself and the
     exec'd image must run unimpeded. *)
  let hook, trace = Hook.tracing () in
  let k = Kernel.create () in
  Hashtbl.replace k.Types.programs "/bin/next"
    (Loader.image_of_items
       ([ mov_ri Isa.rax Defs.sys_getuid; syscall ] @ Tutil.exit_with 8));
  let t =
    Kernel.spawn k
      (Loader.image_of_items
         [
           Label "start";
           Jmp_l "go";
           Label "path";
           Bytes "/bin/next\000";
           Label "go";
           mov_ri Isa.rax Defs.sys_getpid; syscall;
           Lea_ip (Isa.rdi, "path");
           mov_ri Isa.rsi 0; mov_ri Isa.rdx 0;
           mov_ri Isa.rax Defs.sys_execve; syscall;
         ])
  in
  ignore (Lazypoline.install k t hook);
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  Alcotest.(check int) "exec'd image ran to completion" 8 t.Types.exit_code;
  let nrs = List.map fst (Hook.recorded trace) in
  Alcotest.(check bool) "execve itself was interposed" true
    (List.mem Defs.sys_execve nrs);
  Alcotest.(check bool) "post-exec syscalls not interposed" false
    (List.mem Defs.sys_getuid nrs);
  Alcotest.(check bool) "SUD off after exec" false t.Types.sud.Types.sud_on

let test_cross_process_pipe_blocking () =
  (* Parent blocks reading a pipe inside the interposer's emulated
     syscall; the (equally interposed) child wakes it. *)
  let hook, trace = Hook.tracing () in
  let prog =
    [
      (* reserve a live stack region: locals below rsp-128 would be
         fair game for signal frames (red-zone rules) *)
      sub_ri Isa.rsp 2048;
      (* pipe(fds at rsp+64) *)
      mov_rr Isa.rdi Isa.rsp; add_ri Isa.rdi 64;
      mov_ri Isa.rax Defs.sys_pipe; syscall;
      mov_ri Isa.rax Defs.sys_fork; syscall;
      cmp_ri Isa.rax 0;
      Jcc_l (Isa.Eq, "child");
      (* parent: blocking read on the empty pipe *)
      mov_rr Isa.rbx Isa.rsp; add_ri Isa.rbx 64;
      load Isa.rdi Isa.rbx 0;
      mov_rr Isa.rsi Isa.rsp; add_ri Isa.rsi 128;
      mov_ri Isa.rdx 1;
      mov_ri Isa.rax Defs.sys_read; syscall;
      (* exit with the byte received *)
      mov_rr Isa.rbx Isa.rsp; add_ri Isa.rbx 128;
      load8 Isa.rdi Isa.rbx 0;
      mov_ri Isa.rax Defs.sys_exit_group; syscall;
      Label "child";
      (* sleep briefly so the parent really blocks, then write *)
      mov_rr Isa.rbx Isa.rsp; add_ri Isa.rbx 256;
      mov_ri Isa.rcx 0;
      store Isa.rbx 0 Isa.rcx;
      mov_ri Isa.rcx 30000;
      store Isa.rbx 8 Isa.rcx;
      mov_rr Isa.rdi Isa.rbx;
      mov_ri Isa.rsi 0;
      mov_ri Isa.rax Defs.sys_nanosleep; syscall;
      mov_rr Isa.rbx Isa.rsp; add_ri Isa.rbx 64;
      load Isa.rdi Isa.rbx 8;
      mov_rr Isa.rsi Isa.rsp; add_ri Isa.rsi 384;
      mov_ri Isa.rcx 42;
      store8 Isa.rsi 0 Isa.rcx;
      mov_ri Isa.rdx 1;
      mov_ri Isa.rax Defs.sys_write; syscall;
    ]
    @ Tutil.exit_with 0
  in
  let code, _, _ = run ~hook prog in
  Alcotest.(check int) "parent received the byte" 42 code;
  let nrs = List.map fst (Hook.recorded trace) in
  Alcotest.(check bool) "read interposed" true (List.mem Defs.sys_read nrs);
  Alcotest.(check bool) "child's write interposed" true
    (List.mem Defs.sys_write nrs);
  Alcotest.(check bool) "child's nanosleep interposed" true
    (List.mem Defs.sys_nanosleep nrs)

let test_hook_suppression_on_fast_path () =
  (* The suppression path must work identically on slow (first) and
     fast (subsequent) executions of the same site. *)
  let hook = Hook.dummy () in
  hook.Hook.on_syscall <-
    (fun c ->
      if c.Hook.nr = Defs.sys_getuid then Hook.Return 7L else Hook.Emulate);
  let prog =
    [
      mov_ri Isa.r13 0;
      mov_ri Isa.rbx 3;
      Label "loop";
      mov_ri Isa.rax Defs.sys_getuid;
      syscall;
      add_rr Isa.r13 Isa.rax;
      sub_ri Isa.rbx 1;
      cmp_ri Isa.rbx 0;
      Jcc_l (Isa.Ne, "loop");
      mov_rr Isa.rdi Isa.r13;
      mov_ri Isa.rax Defs.sys_exit_group; syscall;
    ]
  in
  let code, st, _ = run ~hook prog in
  Alcotest.(check int) "3 x fake uid 7" 21 code;
  Alcotest.(check int) "site rewritten once" 2
    st.Lazypoline.stats.Lazypoline.rewrites

let test_sigprocmask_under_interposition () =
  (* Masking must behave identically under interposition: a blocked
     USR1 stays pending until unblocked. *)
  let hook, trace = Hook.tracing () in
  let prog =
    map_globals
    @ [ sub_ri Isa.rsp 2048 ]
    @ install_handler_at ~sig_:Defs.sigusr1 ~handler_label:"handler"
        ~scratch_off:1024
    @ [
        (* mask struct in live stack (above rsp), not the red zone *)
        mov_rr Isa.rbx Isa.rsp; add_ri Isa.rbx 600;
        mov_ri64 Isa.rcx (Int64.shift_left 1L (Defs.sigusr1 - 1));
        store Isa.rbx 0 Isa.rcx;
        mov_ri Isa.rdi 0;
        mov_rr Isa.rsi Isa.rbx;
        mov_ri Isa.rdx 0;
        mov_ri Isa.rax Defs.sys_rt_sigprocmask; syscall;
      ]
    @ kill_self Defs.sigusr1
    @ [
        mov_ri Isa.rbx 0x9000;
        load Isa.r13 Isa.rbx 0 (* must still be 0 *);
        mov_rr Isa.rbx Isa.rsp; add_ri Isa.rbx 600;
        mov_ri64 Isa.rcx (Int64.shift_left 1L (Defs.sigusr1 - 1));
        store Isa.rbx 0 Isa.rcx;
        mov_ri Isa.rdi 1;
        mov_rr Isa.rsi Isa.rbx;
        mov_ri Isa.rdx 0;
        mov_ri Isa.rax Defs.sys_rt_sigprocmask; syscall;
        (* handler has now run *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rdi Isa.rbx 0;
        mov_ri Isa.rcx 10;
        i (Isa.Alu_rr (Isa.Mul, Isa.r13, Isa.rcx));
        add_rr Isa.rdi Isa.r13;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "handler";
        mov_ri Isa.rbx 0x9000;
        mov_ri Isa.rcx 1;
        store Isa.rbx 0 Isa.rcx;
        ret;
      ]
  in
  let code, _, _ = run ~hook prog in
  Alcotest.(check int) "deferred then delivered" 1 code;
  Alcotest.(check bool) "sigprocmask interposed" true
    (List.mem Defs.sys_rt_sigprocmask (List.map fst (Hook.recorded trace)))

let test_vfork_interposed_like_fork () =
  let hook, trace = Hook.tracing () in
  let prog =
    [
      mov_ri Isa.rax Defs.sys_vfork; syscall;
      cmp_ri Isa.rax 0;
      Jcc_l (Isa.Eq, "child");
      mov_ri64 Isa.rdi (-1L);
      mov_ri Isa.rsi 0; mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_wait4; syscall;
    ]
    @ Tutil.exit_with 0
    @ [ Label "child"; mov_ri Isa.rax Defs.sys_getuid; syscall ]
    @ Tutil.exit_with 0
  in
  let code, _, _ = run ~hook prog in
  Alcotest.(check int) "ok" 0 code;
  let nrs = List.map fst (Hook.recorded trace) in
  Alcotest.(check bool) "vfork traced" true (List.mem Defs.sys_vfork nrs);
  Alcotest.(check bool) "vfork child interposed" true
    (List.mem Defs.sys_getuid nrs)

let test_sigaction_old_handler_shadowed () =
  (* The app must see its own previous handler through the old-act
     pointer, never the interposer's wrapper. *)
  let prog =
    [
      Label "start";
      (* first sigaction: install h1 *)
      mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 1024;
      Lea_ip (Isa.rcx, "h1");
      store Isa.rbx 0 Isa.rcx;
      mov_ri Isa.rcx 0;
      store Isa.rbx 8 Isa.rcx; store Isa.rbx 16 Isa.rcx;
      store Isa.rbx 24 Isa.rcx;
      mov_ri Isa.rdi Defs.sigusr1;
      mov_rr Isa.rsi Isa.rbx;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_rt_sigaction; syscall;
      (* second sigaction: install h2, read back old into rsp-2048 *)
      Lea_ip (Isa.rcx, "h2");
      store Isa.rbx 0 Isa.rcx;
      mov_rr Isa.rdx Isa.rsp; sub_ri Isa.rdx 2048;
      mov_ri Isa.rdi Defs.sigusr1;
      mov_rr Isa.rsi Isa.rbx;
      mov_ri Isa.rax Defs.sys_rt_sigaction; syscall;
      (* compare old handler with &h1 *)
      mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 2048;
      load Isa.rcx Isa.rbx 0;
      Lea_ip (Isa.rdx, "h1");
      cmp_rr Isa.rcx Isa.rdx;
      Jcc_l (Isa.Eq, "good");
    ]
    @ Tutil.exit_with 1
    @ [ Label "good" ]
    @ Tutil.exit_with 0
    @ [ Label "h1"; ret; Label "h2"; ret ]
  in
  let code, _, _ = run prog in
  Alcotest.(check int) "old act = app's h1, not the wrapper" 0 code

let tests =
  [
    Alcotest.test_case "nested wrapped signals" `Quick
      test_nested_wrapped_signals;
    Alcotest.test_case "CLONE_VM thread interposed" `Quick
      test_thread_clone_vm_interposed;
    Alcotest.test_case "execve ends interposition cleanly" `Quick
      test_execve_ends_interposition_cleanly;
    Alcotest.test_case "cross-process pipe blocking" `Quick
      test_cross_process_pipe_blocking;
    Alcotest.test_case "suppression on fast path" `Quick
      test_hook_suppression_on_fast_path;
    Alcotest.test_case "sigprocmask under interposition" `Quick
      test_sigprocmask_under_interposition;
    Alcotest.test_case "vfork child interposed" `Quick
      test_vfork_interposed_like_fork;
    Alcotest.test_case "sigaction old-handler shadowing" `Quick
      test_sigaction_old_handler_shadowed;
  ]
