(** Paged-memory tests: mapping, permissions, cross-page access. *)

open Sim_mem

let test_map_read_write () =
  let m = Mem.create () in
  Mem.map m ~addr:0x1000 ~len:4096 ~perm:Mem.rw;
  Mem.write_u64 m 0x1000 42L;
  Alcotest.(check int64) "u64" 42L (Mem.read_u64 m 0x1000);
  Mem.write_u8 m 0x1fff 0xAB;
  Alcotest.(check int) "u8" 0xAB (Mem.read_u8 m 0x1fff)

let test_unmapped_faults () =
  let m = Mem.create () in
  (match Mem.read_u8 m 0x5000 with
  | exception Mem.Fault (0x5000, Mem.Read) -> ()
  | _ -> Alcotest.fail "expected read fault");
  match Mem.write_u8 m 0x5000 1 with
  | exception Mem.Fault (_, Mem.Write) -> ()
  | _ -> Alcotest.fail "expected write fault"

let test_permissions () =
  let m = Mem.create () in
  Mem.map m ~addr:0x2000 ~len:4096 ~perm:Mem.r_only;
  Alcotest.(check int) "readable" 0 (Mem.read_u8 m 0x2000);
  (match Mem.write_u8 m 0x2000 1 with
  | exception Mem.Fault (_, Mem.Write) -> ()
  | _ -> Alcotest.fail "write to r-- should fault");
  (match Mem.fetch_u8 m 0x2000 with
  | exception Mem.Fault (_, Mem.Exec) -> ()
  | _ -> Alcotest.fail "fetch from r-- should fault");
  (match Mem.protect m ~addr:0x2000 ~len:4096 ~perm:Mem.rwx with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "protect failed");
  Mem.write_u8 m 0x2000 7;
  Alcotest.(check int) "after mprotect" 7 (Mem.fetch_u8 m 0x2000)

let test_protect_unmapped () =
  let m = Mem.create () in
  Mem.map m ~addr:0x1000 ~len:4096 ~perm:Mem.rw;
  match Mem.protect m ~addr:0x1000 ~len:8192 ~perm:Mem.rw with
  | Error `Unmapped -> ()
  | Ok () -> Alcotest.fail "protect over hole should fail"

let test_cross_page () =
  let m = Mem.create () in
  Mem.map m ~addr:0x1000 ~len:8192 ~perm:Mem.rw;
  let addr = 0x2000 - 3 in
  Mem.write_u64 m addr 0x1122334455667788L;
  Alcotest.(check int64) "cross-page u64" 0x1122334455667788L
    (Mem.read_u64 m addr);
  Mem.write_bytes m (0x2000 - 5) "0123456789";
  Alcotest.(check string) "cross-page bytes" "0123456789"
    (Mem.read_bytes m (0x2000 - 5) 10)

let test_find_free () =
  let m = Mem.create () in
  Mem.map m ~addr:0x10000 ~len:4096 ~perm:Mem.rw;
  let a = Mem.find_free m ~hint:0x10000 ~len:8192 in
  Alcotest.(check bool) "past mapping" true (a >= 0x11000);
  Mem.map m ~addr:a ~len:8192 ~perm:Mem.rw;
  let b = Mem.find_free m ~hint:0x10000 ~len:4096 in
  Alcotest.(check bool) "skips both" true (b >= a + 8192)

let test_clone_independent () =
  let m = Mem.create () in
  Mem.map m ~addr:0x1000 ~len:4096 ~perm:Mem.rw;
  Mem.write_u64 m 0x1000 1L;
  let m2 = Mem.clone m in
  Mem.write_u64 m2 0x1000 2L;
  Alcotest.(check int64) "original" 1L (Mem.read_u64 m 0x1000);
  Alcotest.(check int64) "clone" 2L (Mem.read_u64 m2 0x1000)

let test_page_zero_mappable () =
  (* zpoline's trampoline needs VA 0. *)
  let m = Mem.create () in
  Mem.map m ~addr:0 ~len:4096 ~perm:Mem.rx;
  Alcotest.(check int) "fetch at 0" 0 (Mem.fetch_u8 m 0)

let test_regions_coalesce () =
  let m = Mem.create () in
  Mem.map m ~addr:0x1000 ~len:8192 ~perm:Mem.rx;
  Mem.map m ~addr:0x4000 ~len:4096 ~perm:Mem.rw;
  match Mem.regions m with
  | [ (0x1000, 8192, p1); (0x4000, 4096, p2) ] ->
      Alcotest.(check string) "perm rx" "r-x" (Mem.perm_to_string p1);
      Alcotest.(check string) "perm rw" "rw-" (Mem.perm_to_string p2)
  | rs ->
      Alcotest.failf "unexpected regions: %s"
        (String.concat ","
           (List.map (fun (a, l, _) -> Printf.sprintf "%x+%x" a l) rs))

let prop_bytes_roundtrip =
  QCheck.Test.make ~count:300 ~name:"write_bytes/read_bytes roundtrip"
    QCheck.(pair (string_of_size Gen.(int_range 0 10000)) (int_range 0 5000))
    (fun (s, off) ->
      let m = Mem.create () in
      Mem.map m ~addr:0x1000 ~len:(16 * 4096) ~perm:Mem.rw;
      let addr = 0x1000 + off in
      Mem.write_bytes m addr s;
      Mem.read_bytes m addr (String.length s) = s)

let prop_peek_equals_read =
  QCheck.Test.make ~count:100 ~name:"peek equals read on readable pages"
    QCheck.(string_of_size Gen.(int_range 1 500))
    (fun s ->
      let m = Mem.create () in
      Mem.map m ~addr:0 ~len:4096 ~perm:Mem.rw;
      Mem.write_bytes m 0 s;
      Mem.peek_bytes m 0 (String.length s) = s)

let tests =
  [
    Alcotest.test_case "map/read/write" `Quick test_map_read_write;
    Alcotest.test_case "unmapped faults" `Quick test_unmapped_faults;
    Alcotest.test_case "permissions" `Quick test_permissions;
    Alcotest.test_case "protect unmapped" `Quick test_protect_unmapped;
    Alcotest.test_case "cross-page access" `Quick test_cross_page;
    Alcotest.test_case "find_free" `Quick test_find_free;
    Alcotest.test_case "clone independent" `Quick test_clone_independent;
    Alcotest.test_case "page zero mappable" `Quick test_page_zero_mappable;
    Alcotest.test_case "regions coalesce" `Quick test_regions_coalesce;
    QCheck_alcotest.to_alcotest prop_bytes_roundtrip;
    QCheck_alcotest.to_alcotest prop_peek_equals_read;
  ]
