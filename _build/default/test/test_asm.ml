(** Assembler tests: label resolution, branches, data, environments. *)

open Sim_isa
open Sim_asm

let test_forward_backward_jumps () =
  let blob =
    Asm.assemble ~base:0x1000
      [
        Asm.Label "start";
        Asm.Jmp_l "end";
        Asm.Label "mid";
        Asm.nop;
        Asm.Jmp_l "start";
        Asm.Label "end";
        Asm.Jmp_l "mid";
      ]
  in
  (* start=0x1000; jmp(5)->0x1005 mid; nop(1)->0x1006; jmp(5)->0x100b end;
     jmp(5). *)
  Alcotest.(check int) "start" 0x1000 (Asm.symbol blob "start");
  Alcotest.(check int) "mid" 0x1005 (Asm.symbol blob "mid");
  Alcotest.(check int) "end" 0x100b (Asm.symbol blob "end");
  (* First jmp: rel = 0x100b - (0x1000+5) = 6 *)
  match Decode.decode_string blob.bytes 0 with
  | Ok (Isa.Jmp rel, 5) -> Alcotest.(check int32) "rel" 6l rel
  | _ -> Alcotest.fail "expected jmp"

let test_duplicate_label () =
  match Asm.assemble [ Asm.Label "a"; Asm.Label "a" ] with
  | exception Asm.Asm_error _ -> ()
  | _ -> Alcotest.fail "duplicate label accepted"

let test_undefined_label () =
  match Asm.assemble [ Asm.Jmp_l "nowhere" ] with
  | exception Asm.Asm_error _ -> ()
  | _ -> Alcotest.fail "undefined label accepted"

let test_env_symbols () =
  let blob =
    Asm.assemble ~base:0 ~env:[ ("ext", 0xdeadb) ] [ Asm.Lea_ip (Isa.rax, "ext") ]
  in
  match Decode.decode_string blob.bytes 0 with
  | Ok (Isa.Mov_ri (0, v), 10) ->
      Alcotest.(check int64) "env addr" 0xdeadbL v
  | _ -> Alcotest.fail "expected mov rax, imm64"

let test_align_and_data () =
  let blob =
    Asm.assemble ~base:0
      [ Asm.nop; Asm.Align 16; Asm.Label "data"; Asm.Bytes "hello";
        Asm.Zeros 3 ]
  in
  Alcotest.(check int) "aligned" 16 (Asm.symbol blob "data");
  Alcotest.(check int) "size" 24 (String.length blob.bytes);
  Alcotest.(check string) "payload" "hello"
    (String.sub blob.bytes 16 5)

let test_call_label_roundtrip () =
  let blob =
    Asm.assemble ~base:0x400000
      [ Asm.Call_l "f"; Asm.hlt; Asm.Label "f"; Asm.ret ]
  in
  (match Decode.decode_string blob.bytes 0 with
  | Ok (Isa.Call rel, 5) ->
      Alcotest.(check int) "call target" (Asm.symbol blob "f")
        (0x400000 + 5 + Int32.to_int rel)
  | _ -> Alcotest.fail "expected call")

let prop_label_addresses_monotonic =
  QCheck.Test.make ~count:200 ~name:"label addresses monotonic"
    QCheck.(make Gen.(list_size (int_range 1 20) (int_range 0 2)))
    (fun shape ->
      let items =
        List.concat
          (List.mapi
             (fun i kind ->
               let lbl = Asm.Label (Printf.sprintf "l%d" i) in
               match kind with
               | 0 -> [ lbl; Asm.nop ]
               | 1 -> [ lbl; Asm.mov_ri Isa.rax i ]
               | _ -> [ lbl; Asm.Bytes (String.make (i + 1) 'x') ])
             shape)
      in
      let blob = Asm.assemble ~base:0 items in
      let addrs =
        List.mapi (fun i _ -> Asm.symbol blob (Printf.sprintf "l%d" i)) shape
      in
      let rec increasing = function
        | a :: (b :: _ as tl) -> a < b && increasing tl
        | _ -> true
      in
      increasing addrs)

let tests =
  [
    Alcotest.test_case "forward/backward jumps" `Quick
      test_forward_backward_jumps;
    Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
    Alcotest.test_case "undefined label" `Quick test_undefined_label;
    Alcotest.test_case "env symbols" `Quick test_env_symbols;
    Alcotest.test_case "align and data" `Quick test_align_and_data;
    Alcotest.test_case "call label" `Quick test_call_label_roundtrip;
    QCheck_alcotest.to_alcotest prop_label_addresses_monotonic;
  ]
