(** Kernel-level tests of the interception interfaces themselves:
    Syscall User Dispatch and seccomp, exercised by raw assembly
    programs (no interposer library involved). *)

open Sim_isa
open Sim_asm.Asm
open Sim_kernel

let map_globals =
  [
    mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 4096;
    mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
    mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
    mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
    mov_ri Isa.rax Defs.sys_mmap; syscall;
  ]

(* Selector byte lives at 0x9100. *)
let selector = 0x9100

let install_sigsys_handler =
  [
    mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 800;
    Lea_ip (Isa.rcx, "sigsys_handler");
    store Isa.rbx 0 Isa.rcx;
    mov_ri Isa.rcx 0;
    store Isa.rbx 8 Isa.rcx; store Isa.rbx 16 Isa.rcx;
    Lea_ip (Isa.rcx, "restorer");
    store Isa.rbx 24 Isa.rcx;
    mov_ri Isa.rdi Defs.sigsys;
    mov_rr Isa.rsi Isa.rbx;
    mov_ri Isa.rdx 0;
    mov_ri Isa.rax Defs.sys_rt_sigaction; syscall;
  ]

let enable_sud ?(lo = 0) ?(len = 0) () =
  [
    mov_ri Isa.rdi Defs.pr_set_syscall_user_dispatch;
    mov_ri Isa.rsi Defs.pr_sys_dispatch_on;
    mov_ri Isa.rdx lo;
    mov_ri Isa.r10 len;
    mov_ri Isa.r8 selector;
    mov_ri Isa.rax Defs.sys_prctl; syscall;
  ]

let set_selector v =
  [
    mov_ri Isa.rbx selector;
    mov_ri Isa.rcx v;
    store8 Isa.rbx 0 Isa.rcx;
  ]

let restorer_block =
  [ Label "restorer"; mov_ri Isa.rax Defs.sys_rt_sigreturn; syscall ]

(* The SIGSYS handler: store si_syscall (at rsi+24) to 0x9000, count
   invocations at 0x9008, set selector to ALLOW so the sigreturn (and
   everything after) passes, and return. *)
let sigsys_handler_block =
  [
    Label "sigsys_handler";
    load Isa.rcx Isa.rsi 24;
    mov_ri Isa.rbx 0x9000;
    store Isa.rbx 0 Isa.rcx;
    load Isa.rcx Isa.rbx 8;
    add_ri Isa.rcx 1;
    store Isa.rbx 8 Isa.rcx;
  ]
  @ set_selector Defs.syscall_dispatch_filter_allow
  @ [ ret ]

let test_sud_intercepts_when_blocked () =
  let prog =
    map_globals @ install_sigsys_handler
    @ enable_sud ()
    @ set_selector Defs.syscall_dispatch_filter_block
    @ [
        (* this getpid must be intercepted *)
        mov_ri Isa.rax Defs.sys_getpid; syscall;
        (* handler set selector to ALLOW, so we proceed; exit with
           recorded nr *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rdi Isa.rbx 0;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
      ]
    @ sigsys_handler_block @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "si_syscall = getpid" Defs.sys_getpid code

let test_sud_selector_allow_passes () =
  let prog =
    map_globals @ install_sigsys_handler
    @ enable_sud ()
    @ set_selector Defs.syscall_dispatch_filter_allow
    @ [ mov_ri Isa.rax Defs.sys_getpid; syscall;
        mov_rr Isa.rdi Isa.rax;
        mov_ri Isa.rax Defs.sys_exit_group; syscall ]
    @ sigsys_handler_block @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "getpid ran natively" 1 code

let test_sud_allowlisted_range () =
  (* Allowlist the whole code segment: nothing intercepted even with
     selector = BLOCK. *)
  let prog =
    map_globals @ install_sigsys_handler
    @ enable_sud ~lo:Loader.code_base ~len:0x10000 ()
    @ set_selector Defs.syscall_dispatch_filter_block
    @ [ mov_ri Isa.rax Defs.sys_getpid; syscall;
        mov_rr Isa.rdi Isa.rax;
        mov_ri Isa.rax Defs.sys_exit_group; syscall ]
    @ sigsys_handler_block @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "allowlisted" 1 code

let test_sud_cleared_on_fork () =
  (* Enable SUD+BLOCK, then fork.  The child's SUD is off, so its
     syscalls run natively; parent's selector is ALLOW after the
     handler ran for its own fork syscall... to keep it simple the
     parent allowlists itself first, then forks, then the child
     getpid()s freely and exits with the result. *)
  let prog =
    map_globals @ install_sigsys_handler
    @ enable_sud ~lo:Loader.code_base ~len:0x10000 ()
    @ set_selector Defs.syscall_dispatch_filter_block
    @ [
        mov_ri Isa.rax Defs.sys_fork; syscall;
        cmp_ri Isa.rax 0;
        Jcc_l (Isa.Eq, "child");
        (* parent: wait and exit with child's status *)
        mov_ri64 Isa.rdi (-1L);
        mov_rr Isa.rsi Isa.rsp; sub_ri Isa.rsi 900;
        mov_ri Isa.rdx 0;
        mov_ri Isa.rax Defs.sys_wait4; syscall;
        mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 900;
        load Isa.rdi Isa.rbx 0;
        i (Isa.Shift (Isa.Shr, Isa.rdi, 8));
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "child";
        (* in the child SUD is off: getpid from NON-allowlisted code
           would trap if SUD were still on.  We prove it is off by
           jumping to a copied syscall gadget outside the allowlist.
           Simpler: the child just getpid()s (still allowlisted) and
           exits 21 if it got a sane pid. *)
        mov_ri Isa.rax Defs.sys_getpid; syscall;
        cmp_ri Isa.rax 1;
        Jcc_l (Isa.Gt, "ok");
      ]
    @ Tutil.exit_with 1
    @ [ Label "ok" ]
    @ Tutil.exit_with 21
    @ sigsys_handler_block @ restorer_block
  in
  let code, k, _ = Tutil.run_asm prog in
  Alcotest.(check int) "child ran" 21 code;
  (* Check the kernel really cleared the child's SUD config. *)
  let child_sud_off =
    Hashtbl.fold
      (fun tid t acc -> if tid <> 1 then acc && not t.Types.sud.Types.sud_on else acc)
      k.Types.tasks true
  in
  Alcotest.(check bool) "child SUD off" true child_sud_off

let test_sud_entry_tax_charged () =
  (* Enabling SUD with selector ALLOW still slows every syscall down:
     the paper's "baseline with SUD enabled" = 1.42x row. *)
  let run extra =
    let k = Kernel.create () in
    let img =
      Loader.image_of_items
        (map_globals @ extra
        @ [ mov_ri Isa.rax Defs.sys_getpid; syscall ]
        @ Tutil.exit_with 0)
    in
    let t = Kernel.spawn k img in
    ignore (Kernel.run_until_exit k);
    Int64.to_int t.Types.tcycles
  in
  let base = run [] in
  let with_sud =
    run (enable_sud () @ set_selector Defs.syscall_dispatch_filter_allow)
  in
  let cost = Sim_costs.Cost_model.default in
  (* with_sud additionally runs the prctl (untaxed: SUD was off at its
     entry) and pays the SUD entry tax on the getpid and exit_group
     that follow, plus a few selector-store instructions. *)
  let tax = with_sud - base in
  Alcotest.(check bool)
    (Printf.sprintf "tax present (%d vs %d)" base with_sud)
    true
    (tax >= cost.syscall_base + (2 * cost.sud_check)
    && tax <= cost.syscall_base + (2 * cost.sud_check) + 40)

let serialize_bpf (p : Bpf.prog) : string =
  let b = Buffer.create 64 in
  Array.iter
    (fun { Bpf.code; jt; jf; k } ->
      Buffer.add_char b (Char.chr (code land 0xFF));
      Buffer.add_char b (Char.chr ((code lsr 8) land 0xFF));
      Buffer.add_char b (Char.chr (jt land 0xFF));
      Buffer.add_char b (Char.chr (jf land 0xFF));
      let k = Int64.logand (Int64.of_int32 k) 0xFFFFFFFFL in
      for i = 0 to 3 do
        Buffer.add_char b
          (Char.chr
             (Int64.to_int (Int64.shift_right_logical k (8 * i)) land 0xFF))
      done)
    p;
  Buffer.contents b

(* Install a seccomp filter whose insns are embedded as data in the
   text segment; the sock_fprog is built on the stack. *)
let install_filter_items (p : Bpf.prog) =
  [
    Label "start";
    Jmp_l "go";
    Label "filter_insns";
    Bytes (serialize_bpf p);
    Label "go";
    (* sock_fprog at rsp-64: len, ptr *)
    mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 64;
    mov_ri Isa.rcx (Array.length p);
    store Isa.rbx 0 Isa.rcx;
    Lea_ip (Isa.rcx, "filter_insns");
    store Isa.rbx 8 Isa.rcx;
    mov_ri Isa.rdi Defs.seccomp_set_mode_filter;
    mov_ri Isa.rsi 0;
    mov_rr Isa.rdx Isa.rbx;
    mov_ri Isa.rax Defs.sys_seccomp; syscall;
  ]

let test_seccomp_errno () =
  let filter =
    Bpf.filter_on_nrs ~nrs:[ Defs.sys_getpid ]
      ~action:(Defs.seccomp_ret_errno lor Defs.eperm)
      ~otherwise:Defs.seccomp_ret_allow
  in
  let prog =
    install_filter_items filter
    @ [
        mov_ri Isa.rax Defs.sys_getpid; syscall;
        (* rax = -EPERM; exit(-rax) *)
        mov_ri Isa.rbx 0; sub_rr Isa.rbx Isa.rax;
        mov_rr Isa.rdi Isa.rbx;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
      ]
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "EPERM" Defs.eperm code

let test_seccomp_kill () =
  let filter =
    Bpf.filter_on_nrs ~nrs:[ Defs.sys_getpid ]
      ~action:Defs.seccomp_ret_kill_process ~otherwise:Defs.seccomp_ret_allow
  in
  let prog =
    install_filter_items filter
    @ [ mov_ri Isa.rax Defs.sys_getpid; syscall ]
    @ Tutil.exit_with 0
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "killed" (128 + Defs.sigsys) code

let test_seccomp_trap_sigsys () =
  (* TRAP delivers a catchable SIGSYS carrying the syscall number. *)
  let filter =
    Bpf.filter_on_nrs ~nrs:[ Defs.sys_getuid ]
      ~action:Defs.seccomp_ret_trap ~otherwise:Defs.seccomp_ret_allow
  in
  let prog =
    install_filter_items filter
    @ map_globals @ install_sigsys_handler
    @ [
        mov_ri Isa.rax Defs.sys_getuid; syscall;
        mov_ri Isa.rbx 0x9000;
        load Isa.rdi Isa.rbx 0;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
      ]
    @ sigsys_handler_block @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "si_syscall" Defs.sys_getuid code

let test_seccomp_survives_execve () =
  (* The paper notes filters cannot be uninstalled, even across
     execve.  The exec'd image getpid()s and must see EPERM. *)
  let filter =
    Bpf.filter_on_nrs ~nrs:[ Defs.sys_getpid ]
      ~action:(Defs.seccomp_ret_errno lor Defs.eperm)
      ~otherwise:Defs.seccomp_ret_allow
  in
  let k = Kernel.create () in
  Hashtbl.replace k.Types.programs "/bin/probe"
    (Loader.image_of_items
       [
         mov_ri Isa.rax Defs.sys_getpid; syscall;
         mov_ri Isa.rbx 0; sub_rr Isa.rbx Isa.rax;
         mov_rr Isa.rdi Isa.rbx;
         mov_ri Isa.rax Defs.sys_exit_group; syscall;
       ]);
  let img =
    Loader.image_of_items
      (install_filter_items filter
      @ [
          Jmp_l "exec";
          Label "path";
          Bytes "/bin/probe\000";
          Label "exec";
          Lea_ip (Isa.rdi, "path");
          mov_ri Isa.rsi 0; mov_ri Isa.rdx 0;
          mov_ri Isa.rax Defs.sys_execve; syscall;
        ]
      @ Tutil.exit_with 99)
  in
  ignore (Kernel.spawn k img);
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  let t = Hashtbl.find k.Types.tasks 1 in
  Alcotest.(check int) "filter survived execve" Defs.eperm t.Types.exit_code

let tests =
  [
    Alcotest.test_case "SUD intercepts on BLOCK" `Quick
      test_sud_intercepts_when_blocked;
    Alcotest.test_case "SUD passes on ALLOW" `Quick
      test_sud_selector_allow_passes;
    Alcotest.test_case "SUD allowlisted range" `Quick
      test_sud_allowlisted_range;
    Alcotest.test_case "SUD cleared on fork" `Quick test_sud_cleared_on_fork;
    Alcotest.test_case "SUD entry tax" `Quick test_sud_entry_tax_charged;
    Alcotest.test_case "seccomp ERRNO" `Quick test_seccomp_errno;
    Alcotest.test_case "seccomp KILL" `Quick test_seccomp_kill;
    Alcotest.test_case "seccomp TRAP -> SIGSYS" `Quick
      test_seccomp_trap_sigsys;
    Alcotest.test_case "seccomp survives execve" `Quick
      test_seccomp_survives_execve;
  ]
