(** Loopback socket and FIFO tests. *)

open Sim_kernel

let test_fifo_basic () =
  let f = Fifo.create 8 in
  Alcotest.(check int) "push" 5 (Fifo.push f "hello" 0 5);
  Alcotest.(check int) "partial" 3 (Fifo.push f "world" 0 5);
  Alcotest.(check string) "pop wraps" "hellowor" (Fifo.pop f 100);
  Alcotest.(check bool) "empty" true (Fifo.is_empty f)

let prop_fifo_preserves_stream =
  QCheck.Test.make ~count:300 ~name:"fifo preserves byte stream"
    QCheck.(list (string_of_size Gen.(int_range 0 50)))
    (fun chunks ->
      let f = Fifo.create 64 in
      let out = Buffer.create 64 in
      let expected = Buffer.create 64 in
      List.iter
        (fun s ->
          let mutable_pos = ref 0 in
          Buffer.add_string expected s;
          while !mutable_pos < String.length s do
            let n = Fifo.push f s !mutable_pos (String.length s - !mutable_pos) in
            if n = 0 then Buffer.add_string out (Fifo.pop f 17)
            else mutable_pos := !mutable_pos + n
          done)
        chunks;
      Buffer.add_string out (Fifo.pop f 10_000);
      Buffer.contents out = Buffer.contents expected)

let test_listen_connect_accept () =
  let n = Net.create () in
  let l =
    match Net.listen n ~port:80 ~backlog:4 with
    | Ok l -> l
    | Error `In_use -> Alcotest.fail "listen"
  in
  Alcotest.(check bool) "no conn yet" true (Net.accept l = None);
  let client =
    match Net.connect n ~port:80 with
    | Ok c -> c
    | Error `Refused -> Alcotest.fail "connect"
  in
  let server =
    match Net.accept l with Some s -> s | None -> Alcotest.fail "accept"
  in
  ignore (Net.send client "GET /" 0 5);
  (match Net.recv server 100 with
  | `Data s -> Alcotest.(check string) "request" "GET /" s
  | _ -> Alcotest.fail "recv");
  ignore (Net.send server "200" 0 3);
  match Net.recv client 100 with
  | `Data s -> Alcotest.(check string) "response" "200" s
  | _ -> Alcotest.fail "recv response"

let test_refused () =
  let n = Net.create () in
  match Net.connect n ~port:99 with
  | Error `Refused -> ()
  | Ok _ -> Alcotest.fail "connect to nothing succeeded"

let test_eof_and_pipe () =
  let n = Net.create () in
  let a, b = Net.pair n in
  ignore (Net.send a "x" 0 1);
  Net.close_endpoint a;
  (match Net.recv b 10 with
  | `Data s -> Alcotest.(check string) "drain first" "x" s
  | _ -> Alcotest.fail "drain");
  (match Net.recv b 10 with
  | `Eof -> ()
  | _ -> Alcotest.fail "expected EOF after drain");
  match Net.send b "y" 0 1 with
  | Error `Pipe -> ()
  | Ok _ -> Alcotest.fail "send to closed peer succeeded"

let test_backpressure () =
  let n = Net.create () in
  let a, b = Net.pair n in
  let big = String.make 100_000 'z' in
  let sent = match Net.send a big 0 (String.length big) with
    | Ok s -> s
    | Error `Pipe -> Alcotest.fail "pipe"
  in
  Alcotest.(check int) "bounded by buffer" Net.default_sockbuf sent;
  Alcotest.(check bool) "not writable" false (Net.writable a);
  (match Net.recv b 1000 with
  | `Data s -> Alcotest.(check int) "drained" 1000 (String.length s)
  | _ -> Alcotest.fail "recv");
  Alcotest.(check bool) "writable again" true (Net.writable a)

let test_readiness () =
  let n = Net.create () in
  let a, b = Net.pair n in
  Alcotest.(check bool) "empty not readable" false (Net.readable b);
  ignore (Net.send a "q" 0 1);
  Alcotest.(check bool) "readable with data" true (Net.readable b);
  ignore (Net.recv b 10);
  Net.close_endpoint a;
  Alcotest.(check bool) "readable at EOF" true (Net.readable b)

let test_backlog_limit () =
  let n = Net.create () in
  (match Net.listen n ~port:1 ~backlog:1 with Ok _ -> () | Error _ -> ());
  (match Net.connect n ~port:1 with Ok _ -> () | Error _ -> Alcotest.fail "1st");
  match Net.connect n ~port:1 with
  | Error `Refused -> ()
  | Ok _ -> Alcotest.fail "backlog overflow accepted"

let tests =
  [
    Alcotest.test_case "fifo basic" `Quick test_fifo_basic;
    QCheck_alcotest.to_alcotest prop_fifo_preserves_stream;
    Alcotest.test_case "listen/connect/accept" `Quick
      test_listen_connect_accept;
    Alcotest.test_case "connection refused" `Quick test_refused;
    Alcotest.test_case "EOF and EPIPE" `Quick test_eof_and_pipe;
    Alcotest.test_case "backpressure" `Quick test_backpressure;
    Alcotest.test_case "readiness" `Quick test_readiness;
    Alcotest.test_case "backlog limit" `Quick test_backlog_limit;
  ]
