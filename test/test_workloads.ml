(** Workload-level integration tests: the web servers actually speak
    their protocol correctly, the microbenchmark harness measures what
    it should, the JIT driver behaves. *)

open Sim_kernel
module Micro = Workloads.Microbench_prog
module Ws = Workloads.Webserver

(* Drive one full HTTP request by hand against a booted server and
   verify the bytes that come back. *)
let request_response ~flavour ~contents =
  let file = "/www/t" in
  let k = Ws.boot ~flavour ~workers:1 ~files:[ (file, contents) ] () in
  Ws.wait_listening k ~port:80;
  let client =
    match Net.connect k.Types.net ~port:80 with
    | Ok ep -> ep
    | Error `Refused -> Alcotest.fail "refused"
  in
  let req = "GET /www/t HTTP/1.1\r\n\r\n" in
  ignore (Net.send client req 0 (String.length req));
  let expected = Ws.header_len + String.length contents in
  let buf = Buffer.create 256 in
  let fuel = ref 100_000 in
  while Buffer.length buf < expected && !fuel > 0 do
    decr fuel;
    (match Net.recv client 65536 with
    | `Data s -> Buffer.add_string buf s
    | `Eof -> fuel := 0
    | `Empty -> Kernel.run_slice k);
    ()
  done;
  Buffer.contents buf

let check_served flavour =
  let contents = String.init 3000 (fun i -> Char.chr (65 + (i mod 26))) in
  let resp = request_response ~flavour ~contents in
  Alcotest.(check int) "response length"
    (Ws.header_len + String.length contents)
    (String.length resp);
  Alcotest.(check string) "header" Ws.http_header
    (String.sub resp 0 Ws.header_len);
  Alcotest.(check string) "body intact"
    contents
    (String.sub resp Ws.header_len (String.length contents))

let test_nginx_serves () = check_served Ws.Nginx_like
let test_lighttpd_serves () = check_served Ws.Lighttpd_like

let test_server_keepalive_multiple_requests () =
  let file = "/www/t" in
  let contents = String.make 100 'q' in
  let k = Ws.boot ~flavour:Ws.Nginx_like ~workers:1 ~files:[ (file, contents) ] () in
  Ws.wait_listening k ~port:80;
  let g = Workloads.Wrk.attach k ~port:80 ~conns:2 ~file ~file_size:100 in
  Kernel.run_for k 3_000_000L;
  Alcotest.(check bool)
    (Printf.sprintf "many requests completed (%d)" g.Workloads.Wrk.completed)
    true
    (g.Workloads.Wrk.completed > 20);
  Alcotest.(check int) "no client errors" 0 g.Workloads.Wrk.errors

let test_server_under_lazypoline_correct () =
  (* Interposition must not corrupt responses. *)
  let file = "/www/t" in
  let contents = String.make 2048 'z' in
  let k =
    Ws.boot ~flavour:Ws.Lighttpd_like ~workers:1 ~files:[ (file, contents) ]
      ~interpose:(fun k t ->
        ignore (Lazypoline.install k t (Lazypoline.Hook.dummy ())))
      ()
  in
  Ws.wait_listening k ~port:80;
  let g = Workloads.Wrk.attach k ~port:80 ~conns:2 ~file ~file_size:2048 in
  Kernel.run_for k 3_000_000L;
  Alcotest.(check bool) "requests flowed" true (g.Workloads.Wrk.completed > 10);
  Alcotest.(check int) "no errors" 0 g.Workloads.Wrk.errors

let test_wrk_request_timestamps () =
  (* The generator stamps per-request issue/complete cycle times; the
     tail tables are built from them, so they must be coherent: one
     sample per completed request, issue <= complete on every row,
     completion times non-decreasing in completion order, and a
     bounded generator stops exactly at its budget. *)
  let file = "/www/t" in
  let contents = String.make 512 'r' in
  let requests = 80 in
  let k =
    Ws.boot ~flavour:Ws.Nginx_like ~workers:1 ~exit_after:requests
      ~files:[ (file, contents) ] ()
  in
  Ws.wait_listening k ~port:80;
  let g =
    Workloads.Wrk.attach ~max_requests:requests k ~port:80 ~conns:3 ~file
      ~file_size:512
  in
  Alcotest.(check bool) "server exits at its budget" true
    (Kernel.run_until_exit ~max_slices:600_000 k);
  Alcotest.(check bool) "generator saw the budget out" true
    (Workloads.Wrk.finished g);
  Alcotest.(check int) "completed exactly the budget" requests
    g.Workloads.Wrk.completed;
  let lats = Workloads.Wrk.latencies g in
  Alcotest.(check int) "one latency row per completed request" requests
    (List.length lats);
  (* every assigned rid appears exactly once *)
  Alcotest.(check int) "rids distinct" requests
    (List.length
       (List.sort_uniq compare (List.map (fun (rid, _, _) -> rid) lats)));
  ignore
    (List.fold_left
       (fun prev_complete (rid, issue, complete) ->
         Alcotest.(check bool)
           (Printf.sprintf "rid %d: issue <= complete" rid)
           true (issue <= complete);
         Alcotest.(check bool)
           (Printf.sprintf "rid %d: completion order is time order" rid)
           true (complete >= prev_complete);
         complete)
       0L lats);
  Alcotest.(check int) "no client errors" 0 g.Workloads.Wrk.errors

let test_multiworker_parallel_speedup () =
  let measure workers =
    let file = "/www/t" in
    let contents = String.make 1024 'x' in
    let k =
      Ws.boot ~ncpus:workers ~flavour:Ws.Nginx_like ~workers
        ~files:[ (file, contents) ] ()
    in
    Ws.wait_listening k ~port:80;
    let g =
      Workloads.Wrk.attach k ~port:80 ~conns:(4 * workers) ~file ~file_size:1024
    in
    Kernel.run_for k 4_000_000L;
    g.Workloads.Wrk.completed
  in
  let one = measure 1 and four = measure 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 workers beat 1 substantially (%d vs %d)" four one)
    true
    (four > 2 * one)

let test_microbench_ordering () =
  let iters = 3_000 in
  let native = Micro.run ~iters Micro.Native in
  let zpoline = Micro.run ~iters Micro.Zpoline in
  let nox = Micro.run ~iters Micro.Lazypoline_noxstate in
  let full = Micro.run ~iters Micro.Lazypoline_full in
  let sud = Micro.run ~iters Micro.Sud in
  Alcotest.(check bool) "native < zpoline" true (native < zpoline);
  Alcotest.(check bool) "zpoline < lazypoline-nox" true (zpoline < nox);
  Alcotest.(check bool) "nox < full" true (nox < full);
  Alcotest.(check bool) "full << SUD" true (full *. 4.0 < sud)

let test_microbench_sud_allow_tax () =
  let iters = 3_000 in
  let native = Micro.run ~iters Micro.Native in
  let taxed = Micro.run ~iters Micro.Native_sud_allow in
  let ratio = taxed /. native in
  (* The paper's 1.42x row; allow a modest band. *)
  Alcotest.(check bool)
    (Printf.sprintf "SUD-enabled tax ~1.4x (%.2f)" ratio)
    true
    (ratio > 1.30 && ratio < 1.55)

let test_jit_driver_statically_opaque () =
  (* Static linear sweep over the JIT driver's image must not find the
     payload's syscalls (they are obfuscated data). *)
  let img = Minicc.Jit.driver_image "long main() { return syscall(39); }" in
  let text_sites =
    List.concat_map
      (fun (addr, bytes, _) ->
        List.map (fun o -> addr + o) (Sim_isa.Disasm.find_syscall_sites bytes))
      img.Types.img_segments
  in
  (* The driver itself has 4 static syscalls (write, 2x mmap,
     mprotect); the payload's getpid/exit must not appear. *)
  Alcotest.(check int) "only the driver's own syscalls" 4
    (List.length text_sites)

let test_coreutils_all_run_clean () =
  List.iter
    (fun distro ->
      List.iter
        (fun u ->
          let _, code = Workloads.Coreutils.run_under_pin ~distro u in
          Alcotest.(check int) (u ^ " exits 0") 0 code)
        Workloads.Coreutils.util_names)
    [ Workloads.Coreutils.Glibc_2_31; Workloads.Coreutils.Clear_linux ]

let test_coreutils_do_real_work () =
  (* mkdir really creates, rm really deletes, cp really copies. *)
  let run util =
    let k = Kernel.create () in
    Workloads.Coreutils.setup_vfs k;
    let t =
      Kernel.spawn k
        (Workloads.Coreutils.image ~distro:Workloads.Coreutils.Glibc_2_31 util)
    in
    ignore (Kernel.run_until_exit k);
    Alcotest.(check int) (util ^ " ok") 0 t.Types.exit_code;
    k
  in
  let k = run "mkdir" in
  (match Vfs.lookup k.Types.vfs ~cwd:"/" "/tmp/newdir" with
  | Ok i -> Alcotest.(check bool) "dir created" true (Vfs.is_dir i)
  | Error _ -> Alcotest.fail "mkdir did nothing");
  let k = run "cp" in
  (match Vfs.read_file k.Types.vfs "/tmp/file_copy" with
  | Ok s -> Alcotest.(check int) "copied fully" 1500 (String.length s)
  | Error _ -> Alcotest.fail "cp did nothing");
  let k = run "rm" in
  match Vfs.read_file k.Types.vfs "/tmp/file_b" with
  | Error e -> Alcotest.(check int) "removed" Defs.enoent e
  | Ok _ -> Alcotest.fail "rm did nothing"

let tests =
  [
    Alcotest.test_case "nginx-sim serves correct bytes" `Quick
      test_nginx_serves;
    Alcotest.test_case "lighttpd-sim serves correct bytes" `Quick
      test_lighttpd_serves;
    Alcotest.test_case "keepalive pipeline" `Quick
      test_server_keepalive_multiple_requests;
    Alcotest.test_case "responses intact under lazypoline" `Quick
      test_server_under_lazypoline_correct;
    Alcotest.test_case "wrk request timestamps coherent" `Quick
      test_wrk_request_timestamps;
    Alcotest.test_case "multi-worker speedup" `Quick
      test_multiworker_parallel_speedup;
    Alcotest.test_case "microbench ordering" `Quick test_microbench_ordering;
    Alcotest.test_case "SUD-enabled tax band" `Quick
      test_microbench_sud_allow_tax;
    Alcotest.test_case "JIT payload statically opaque" `Quick
      test_jit_driver_statically_opaque;
    Alcotest.test_case "coreutils run clean" `Quick
      test_coreutils_all_run_clean;
    Alcotest.test_case "coreutils do real work" `Quick
      test_coreutils_do_real_work;
  ]
