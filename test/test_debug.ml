(** The time-travel debugger (lib/debug).

    Claims under test:
    - [seek]/[step]/[reverse_step] land on bit-identical machine
      states however the cursor got there (qcheck property across all
      six mechanisms, static and JIT);
    - forward stepping resumes the halted replay kernel in place (no
      fresh replays), which requires [run_slice] halt-transparency;
    - watchpoint [reverse_continue] finds the change at the very
      first event, inside the final partial checkpoint segment, and
      exactly on a checkpoint boundary; reports no hit when the value
      never changes; and uses O(log n) fresh replays (checkpoint-grid
      bisection), not a linear backward scan;
    - a session replaying a log under the wrong program fails loudly;
    - the scripted command engine (the CI gate) executes and its
      assertions catch lies. *)

module Dbg = Sim_debug.Debug
module D = Harness.Divergence
module A = Sim_audit.Audit
module Isa = Sim_isa.Isa

let session_of ?mech ?(record_mech = D.Sud) ?(checkpoint_every = 8) workload =
  let text = Dbg.record ~checkpoint_every record_mech workload in
  match Dbg.parse_log text with
  | Error e -> Alcotest.fail e
  | Ok log -> Dbg.create ?mech ~workload log

(* A minicc program that maps a page at 0x9000, loops [iters] getpids,
   and stores 4242 into the page after iteration [poke_at].  App event
   numbering: #1 mmap, #(i+2) the iteration-i getpid, #(iters+2)
   exit_group; the store becomes architecturally visible at position
   poke_at+3. *)
let poke_src ~iters ~poke_at =
  Printf.sprintf
    "long main() {\n\
    \  long i;\n\
    \  syscall(9, 36864, 4096, 3, 48, 0 - 1, 0);\n\
    \  for (i = 0; i < %d; i = i + 1) {\n\
    \    syscall(39);\n\
    \    if (i == %d) { poke64(36864, 4242); }\n\
    \  }\n\
    \  return 0;\n\
    }\n"
    iters poke_at

let poke_addr = 0x9000
let poke_session ?mech ?record_mech ~iters ~poke_at () =
  session_of ?mech ?record_mech
    (D.Prog { src = poke_src ~iters ~poke_at; jit = false })

(* --- seek / step / reverse-step ------------------------------------ *)

let test_seek_step_basics () =
  let iters = 30 in
  let s = session_of (D.Micro { iters; nr = 500 }) in
  Alcotest.(check int) "event count" (iters + 1) (Dbg.n_events s);
  Dbg.seek s 5;
  Alcotest.(check int) "cursor" 5 s.Dbg.cursor;
  (* rbx is the microbench loop counter: each event decrements it by
     exactly one (the position-p state halts after the p-th syscall,
     before its trailing decrement, so only the offset is fixed) *)
  let rbx () =
    match Dbg.watch_value s (Dbg.Wreg { tid = 1; reg = Isa.rbx }) with
    | Some v -> v
    | None -> Alcotest.fail "no rbx value"
  in
  let v5 = rbx () in
  let replays_before = s.Dbg.replays in
  Dbg.step s;
  Alcotest.(check int) "step" 6 s.Dbg.cursor;
  Alcotest.(check int64) "rbx decremented once" (Int64.sub v5 1L) (rbx ());
  Alcotest.(check int) "forward step is a resume, not a replay"
    replays_before s.Dbg.replays;
  Dbg.reverse_step s;
  Alcotest.(check int) "reverse step" 5 s.Dbg.cursor;
  Alcotest.(check int64) "rbx back at its position-5 value" v5 (rbx ());
  Alcotest.(check bool) "reverse step replays" true
    (s.Dbg.replays > replays_before)

let test_seek_end_and_zero () =
  let s = session_of (D.Micro { iters = 10; nr = 500 }) in
  Dbg.seek s (Dbg.n_events s);
  Alcotest.(check int) "at end" 11 s.Dbg.cursor;
  Dbg.seek s 0;
  Alcotest.(check int) "back to initial state" 0 s.Dbg.cursor;
  (* position 0 precedes even the loop-counter initialization *)
  Alcotest.(check (option int64)) "rbx is 0 before execution" (Some 0L)
    (Dbg.watch_value s (Dbg.Wreg { tid = 1; reg = Isa.rbx }))

(* seek j then step up to k must equal a straight-line seek k, as full
   register+memory state hashes — for every mechanism, static and JIT *)
let prop_seek_step_identity =
  let mechs = Array.of_list D.all_mechs in
  QCheck.Test.make ~count:8
    ~name:"seek+step state ≡ straight-line replay (6 mechs, jit and static)"
    (QCheck.make
       ~print:(fun (mi, jit, j, k) ->
         Printf.sprintf "%s jit=%b j=%d k=%d"
           (D.mech_name mechs.(mi))
           jit j k)
       QCheck.Gen.(
         quad (int_range 0 5) bool (int_range 0 5) (int_range 0 6)))
    (fun (mi, jit, j, k) ->
      let src =
        "long main() { long i; for (i = 0; i < 6; i = i + 1) { syscall(39); \
         } return 0; }\n"
      in
      let workload = D.Prog { src; jit } in
      let mech = mechs.(mi) in
      let s1 = session_of ~record_mech:mech workload in
      let n = Dbg.n_events s1 in
      let j = min j n and k = min (max j k) n in
      Dbg.seek s1 j;
      while s1.Dbg.cursor < k do
        Dbg.step s1
      done;
      let s2 = session_of ~record_mech:mech workload in
      Dbg.seek s2 k;
      Dbg.state_hash s1 = Dbg.state_hash s2 && Dbg.state_hash s1 <> None)

(* --- watchpoints ---------------------------------------------------- *)

let wmem = Dbg.Wmem { tid = 1; addr = poke_addr }

let test_watch_forward_continue () =
  let s = poke_session ~iters:40 ~poke_at:13 () in
  Dbg.seek s 0;
  (* page mapped by event 1: <unmapped> -> 0 *)
  Alcotest.(check (option int)) "map hit" (Some 1) (Dbg.continue_to s wmem);
  Alcotest.(check (option int64)) "mapped zero" (Some 0L)
    (Dbg.watch_value s wmem);
  (* store after iteration 13 -> position 16 *)
  Alcotest.(check (option int)) "store hit" (Some 16) (Dbg.continue_to s wmem);
  Alcotest.(check (option int64)) "stored" (Some 4242L)
    (Dbg.watch_value s wmem);
  (* no further change: cursor runs to the end *)
  Alcotest.(check (option int)) "no more changes" None
    (Dbg.continue_to s wmem);
  Alcotest.(check int) "cursor at end" (Dbg.n_events s) s.Dbg.cursor

let test_watch_reverse_boundary_and_first_event () =
  (* poke_at 13 puts the store at position 16 — exactly on a
     checkpoint boundary with cadence 8 *)
  let s = poke_session ~iters:40 ~poke_at:13 () in
  Dbg.seek s (Dbg.n_events s);
  Alcotest.(check (option int)) "boundary hit" (Some 16)
    (Dbg.reverse_continue s wmem);
  Alcotest.(check int) "cursor at hit" 16 s.Dbg.cursor;
  (* next change back: the mmap at the very first event *)
  Alcotest.(check (option int)) "first-event hit" (Some 1)
    (Dbg.reverse_continue s wmem);
  (* nothing changes before event 1 *)
  Alcotest.(check (option int)) "nothing earlier" None
    (Dbg.reverse_continue s wmem);
  Alcotest.(check int) "cursor restored on no-hit" 1 s.Dbg.cursor

let test_watch_reverse_final_partial_segment () =
  (* iters 40: events 1..42, checkpoints at 8..40, final partial
     segment (40, 42]; poke_at 38 -> store at position 41 *)
  let s = poke_session ~iters:40 ~poke_at:38 () in
  Dbg.seek s (Dbg.n_events s);
  let replays0 = s.Dbg.replays in
  Alcotest.(check (option int)) "hit inside final segment" (Some 41)
    (Dbg.reverse_continue s wmem);
  (* found by the first intra-segment scan: no bisection replays *)
  Alcotest.(check bool) "cheap (no bisection)" true
    (s.Dbg.replays - replays0 <= 2)

let test_watch_never_changes () =
  let s = session_of (D.Micro { iters = 30; nr = 500 }) in
  let w = Dbg.Wreg { tid = 1; reg = Isa.r12 } in
  Dbg.seek s (Dbg.n_events s);
  Alcotest.(check (option int)) "reverse: no change ever" None
    (Dbg.reverse_continue s w);
  Alcotest.(check int) "cursor restored" (Dbg.n_events s) s.Dbg.cursor;
  Dbg.seek s 0;
  Alcotest.(check (option int)) "forward: no change ever" None
    (Dbg.continue_to s w)

let test_reverse_continue_olog_replays () =
  (* 120 iterations, cadence 8: 122 events, 15 checkpoint boundaries.
     The store lands at position 5; reverse-continue from the end must
     find it with O(log n) fresh replays, not ~120. *)
  let s = poke_session ~iters:120 ~poke_at:2 () in
  Dbg.seek s (Dbg.n_events s);
  let replays0 = s.Dbg.replays in
  Alcotest.(check (option int)) "hit" (Some 5) (Dbg.reverse_continue s wmem);
  let used = s.Dbg.replays - replays0 in
  let boundaries = Array.length s.Dbg.log.Dbg.l_checkpoints + 1 in
  let log2 = int_of_float (ceil (log (float_of_int boundaries) /. log 2.)) in
  Alcotest.(check bool)
    (Printf.sprintf "O(log n) replays: used %d, bound %d, naive %d" used
       (4 + (2 * log2))
       (Dbg.n_events s))
    true
    (used <= 4 + (2 * log2));
  Alcotest.(check bool) "far below linear" true (used * 4 < Dbg.n_events s)

(* --- cross-mechanism replay ---------------------------------------- *)

let test_cross_mech_replay () =
  (* record under raw, debug under zpoline: the app-stream verification
     passes and the watchpoint lands on the same event *)
  let workload = D.Prog { src = poke_src ~iters:20 ~poke_at:7; jit = false } in
  let text = Dbg.record ~checkpoint_every:8 D.Raw workload in
  match Dbg.parse_log text with
  | Error e -> Alcotest.fail e
  | Ok log ->
      let s = Dbg.create ~mech:D.Zpoline ~workload log in
      Dbg.seek s (Dbg.n_events s);
      Alcotest.(check (option int)) "same hit under zpoline" (Some 10)
        (Dbg.reverse_continue s wmem)

let test_wrong_program_fails_loudly () =
  let s = poke_session ~iters:20 ~poke_at:5 () in
  (* swap in a workload that produces different events *)
  let bogus =
    Dbg.create ~mech:D.Sud
      ~workload:(D.Micro { iters = 20; nr = 500 })
      s.Dbg.log
  in
  match Dbg.seek bogus 10 with
  | () -> Alcotest.fail "mismatched replay accepted"
  | exception Failure _ -> ()

(* --- log parsing ---------------------------------------------------- *)

let test_parse_log_shape () =
  let s = poke_session ~iters:40 ~poke_at:13 () in
  let log = s.Dbg.log in
  Alcotest.(check int) "cadence from header" 8 log.Dbg.l_cadence;
  Alcotest.(check bool) "final hash present" true (log.Dbg.l_final <> None);
  Alcotest.(check (list int)) "checkpoint grid"
    [ 8; 16; 24; 32; 40 ]
    (Array.to_list log.Dbg.l_checkpoints);
  Alcotest.(check (option string)) "mech header" (Some "sud")
    (Dbg.header_value log "mech")

let test_parse_rejects_garbage () =
  (match Dbg.parse_log "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty log accepted");
  (match Dbg.parse_log "hello\nworld\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Dbg.parse_log "% simtrace-audit/1\nE bogus\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed row accepted"

(* --- scripted sessions (the CI gate's engine) ----------------------- *)

let run_script s text =
  let buf = Buffer.create 1024 in
  let rc = Dbg.run_script s ~print:(Buffer.add_string buf) text in
  (rc, Buffer.contents buf)

let test_scripted_session () =
  let s = poke_session ~iters:40 ~poke_at:13 () in
  let rc, out =
    run_script s
      {|# time-travel smoke
info
seek 12
step 2
assert-cursor 14
rstep
assert-cursor 13
seek end
watch mem 0x9000
rcontinue
assert-hit 16
assert-mem 0x9000 4242
rstep
assert-mem 0x9000 0
strace
regs
proc 1/status
stats
quit|}
  in
  if rc <> 0 then Alcotest.failf "script failed:\n%s" out;
  Alcotest.(check bool) "transcript mentions getpid" true
    (let found = ref false in
     String.split_on_char '\n' out
     |> List.iter (fun l ->
            if
              String.length l >= 6
              && String.trim l <> ""
              &&
              let rec has i =
                i + 6 <= String.length l
                && (String.sub l i 6 = "getpid" || has (i + 1))
              in
              has 0
            then found := true);
     !found)

let test_scripted_assertion_failure () =
  let s = poke_session ~iters:20 ~poke_at:5 () in
  let rc, out = run_script s "seek 3\nassert-cursor 4\n" in
  Alcotest.(check int) "failing script exits 1" 1 rc;
  Alcotest.(check bool) "says ASSERT FAILED" true
    (let rec has i =
       i + 13 <= String.length out
       && (String.sub out i 13 = "ASSERT FAILED" || has (i + 1))
     in
     has 0)

let tests =
  [
    Alcotest.test_case "seek/step/reverse-step basics" `Quick
      test_seek_step_basics;
    Alcotest.test_case "seek end and back to 0" `Quick test_seek_end_and_zero;
    QCheck_alcotest.to_alcotest prop_seek_step_identity;
    Alcotest.test_case "watch: forward continue" `Quick
      test_watch_forward_continue;
    Alcotest.test_case "watch: boundary + first-event hits" `Quick
      test_watch_reverse_boundary_and_first_event;
    Alcotest.test_case "watch: final partial segment" `Quick
      test_watch_reverse_final_partial_segment;
    Alcotest.test_case "watch: never changes" `Quick test_watch_never_changes;
    Alcotest.test_case "reverse-continue is O(log n) replays" `Quick
      test_reverse_continue_olog_replays;
    Alcotest.test_case "cross-mechanism replay" `Quick test_cross_mech_replay;
    Alcotest.test_case "wrong program fails loudly" `Quick
      test_wrong_program_fails_loudly;
    Alcotest.test_case "log parsing shape" `Quick test_parse_log_shape;
    Alcotest.test_case "log parsing rejects garbage" `Quick
      test_parse_rejects_garbage;
    Alcotest.test_case "scripted session" `Quick test_scripted_session;
    Alcotest.test_case "scripted assertion failure" `Quick
      test_scripted_assertion_failure;
  ]
