(** Tests for the machine-wide event tracer (lib/trace) and its kernel
    wiring: ring overflow accounting, the slow-path -> fast-path
    dispatch attribution under lazypoline, the observation-only
    guarantee (a traced run is cycle- and state-identical to an
    untraced one), and the shape of the Chrome trace-event JSON. *)

open Sim_kernel
module Ev = Sim_trace.Event
module Tracer = Sim_trace.Tracer
module Hook = Lazypoline.Hook

(* --- ring overflow ------------------------------------------------- *)

let test_ring_overflow () =
  let tr = Tracer.create ~capacity:4 ~ncpus:2 () in
  for i = 1 to 10 do
    Tracer.emit tr ~cpu:0 ~tid:1 ~ts:(Int64.of_int i) Ev.Sigreturn
  done;
  Tracer.emit tr ~cpu:1 ~tid:2 ~ts:100L Ev.Sigreturn;
  Alcotest.(check int) "retained" 5 (Tracer.retained tr);
  Alcotest.(check int) "dropped" 6 (Tracer.dropped tr);
  Alcotest.(check int) "emitted counts drops" 11 (Tracer.emitted tr);
  (* drop-newest: the earliest events survive, the overflow is counted *)
  Alcotest.(check (list int64))
    "oldest events kept, merged in time order"
    [ 1L; 2L; 3L; 4L; 100L ]
    (List.map (fun (e : Ev.t) -> e.Ev.ts) (Tracer.events tr));
  Tracer.clear tr;
  Alcotest.(check int) "clear resets retained" 0 (Tracer.retained tr);
  Alcotest.(check int) "clear resets dropped" 0 (Tracer.dropped tr)

let test_ring_cpu_clamp () =
  (* out-of-range CPU indices (external actors) land on ring 0 *)
  let tr = Tracer.create ~capacity:4 ~ncpus:2 () in
  Tracer.emit tr ~cpu:7 ~tid:1 ~ts:1L Ev.Sigreturn;
  Tracer.emit tr ~cpu:(-1) ~tid:1 ~ts:2L Ev.Sigreturn;
  Alcotest.(check int) "retained on ring 0" 2 (Tracer.retained tr);
  List.iter
    (fun (e : Ev.t) -> Alcotest.(check int) "clamped to cpu 0" 0 e.Ev.cpu)
    (Tracer.events tr)

(* --- lazypoline slow-path -> fast-path attribution ----------------- *)

let prog_loop =
  {|
long main() {
  long i = 0;
  while (i < 3) {
    syscall(39);
    i = i + 1;
  }
  return 0;
}
|}

(* Run [src] under lazypoline; returns the task and, when [trace] is
   set, the recorded events. *)
let lazy_run ?(trace = true) src =
  let k = Kernel.create () in
  let tr = if trace then Some (Tracer.create ~ncpus:1 ()) else None in
  k.Types.tracer <- tr;
  let t = Kernel.spawn k (Minicc.Codegen.compile_to_image src) in
  ignore (Lazypoline.install k t (Hook.dummy ()));
  if not (Kernel.run_until_exit k) then failwith "program did not terminate";
  (t, match tr with Some tr -> Tracer.events tr | None -> [])

let index_of f events =
  let rec go i = function
    | [] -> -1
    | e :: tl -> if f e then i else go (i + 1) tl
  in
  go 0 events

let test_slow_then_fast () =
  let _t, events = lazy_run prog_loop in
  (* the loop's getpid site: SUD slow path once, rewritten fast path
     for every later iteration *)
  let getpid_paths =
    List.filter_map
      (fun (e : Ev.t) ->
        match e.Ev.kind with
        | Ev.Syscall_enter { nr = 39; path } -> Some (Ev.path_name path)
        | _ -> None)
      events
  in
  Alcotest.(check (list string))
    "getpid dispatch paths"
    [ "sud-sigsys"; "fast-path"; "fast-path" ]
    getpid_paths;
  (* the rewrite and the selector flip happen before the slow-path
     dispatch they enable *)
  let first_sud_enter =
    index_of
      (fun (e : Ev.t) ->
        match e.Ev.kind with
        | Ev.Syscall_enter { path = Ev.Sud_sigsys; _ } -> true
        | _ -> false)
      events
  in
  let first_rewrite =
    index_of
      (fun (e : Ev.t) ->
        match e.Ev.kind with Ev.Rewrite _ -> true | _ -> false)
      events
  in
  let first_flip =
    index_of
      (fun (e : Ev.t) ->
        match e.Ev.kind with Ev.Selector_flip _ -> true | _ -> false)
      events
  in
  Alcotest.(check bool) "saw a slow-path dispatch" true (first_sud_enter >= 0);
  Alcotest.(check bool) "saw a rewrite" true (first_rewrite >= 0);
  Alcotest.(check bool) "saw a selector flip" true (first_flip >= 0);
  Alcotest.(check bool) "rewrite precedes its slow-path dispatch" true
    (first_rewrite < first_sud_enter);
  Alcotest.(check bool) "selector flip precedes it too" true
    (first_flip < first_sud_enter);
  (* one rewrite per site that went the slow path, at distinct sites *)
  let rewrite_sites =
    List.filter_map
      (fun (e : Ev.t) ->
        match e.Ev.kind with Ev.Rewrite { site } -> Some site | _ -> None)
      events
  in
  let sud_spans =
    List.filter
      (fun (s : Sim_trace.Summary.span) -> s.sp_path = Ev.Sud_sigsys)
      (Sim_trace.Summary.spans events)
  in
  Alcotest.(check int)
    "one rewrite per slow-path syscall"
    (List.length sud_spans) (List.length rewrite_sites);
  Alcotest.(check int)
    "rewrite sites are distinct"
    (List.length rewrite_sites)
    (List.length (List.sort_uniq compare rewrite_sites))

let test_zpoline_sweep_event () =
  let k = Kernel.create () in
  let tr = Tracer.create ~ncpus:1 () in
  k.Types.tracer <- Some tr;
  let t = Kernel.spawn k (Minicc.Codegen.compile_to_image prog_loop) in
  ignore (Baselines.Zpoline.install k t (Hook.dummy ()));
  if not (Kernel.run_until_exit k) then failwith "did not terminate";
  let sweeps =
    List.filter_map
      (fun (e : Ev.t) ->
        match e.Ev.kind with
        | Ev.Sweep { sites; bytes_scanned } -> Some (sites, bytes_scanned)
        | _ -> None)
      (Tracer.events tr)
  in
  match sweeps with
  | [ (sites, bytes) ] ->
      Alcotest.(check bool) "sweep rewrote sites" true (sites > 0);
      Alcotest.(check bool) "sweep scanned bytes" true (bytes > 0)
  | l -> Alcotest.failf "expected exactly one sweep event, got %d" (List.length l)

(* --- tracing is observation-only ----------------------------------- *)

let machine_state (t : Types.task) =
  let regs = List.init 16 (fun r -> Sim_cpu.Cpu.peek_reg t.Types.ctx r) in
  (t.Types.exit_code, t.Types.tcycles, regs)

let test_trace_is_observation_only () =
  let t_plain, _ = lazy_run ~trace:false prog_loop in
  let t_traced, events = lazy_run ~trace:true prog_loop in
  Alcotest.(check bool) "the traced run recorded events" true (events <> []);
  Alcotest.(check bool)
    "final task state is bit-identical" true
    (machine_state t_plain = machine_state t_traced)

let prop_tracing_never_changes_cycles =
  let configs =
    Workloads.Microbench_prog.
      [
        Native; Native_sud_allow; Zpoline; Lazypoline_full;
        Lazypoline_noxstate; Sud; Seccomp_bpf;
      ]
  in
  QCheck.Test.make ~count:12
    ~name:"tracing never changes simulated cycles (any mechanism)"
    QCheck.(pair (int_range 5 60) (int_range 0 (List.length configs - 1)))
    (fun (iters, ci) ->
      let config = List.nth configs ci in
      let plain = Workloads.Microbench_prog.run ~iters config in
      let tr = Tracer.create ~ncpus:1 () in
      let traced = Workloads.Microbench_prog.run ~iters ~tracer:tr config in
      plain = traced)

(* --- Chrome trace-event JSON shape --------------------------------- *)

(* A minimal JSON parser — just enough to assert the exporter's output
   is well-formed without pulling in a JSON dependency. *)
type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () <> c then
      raise (Bad_json (Printf.sprintf "expected '%c' at byte %d" c !pos));
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' ->
          advance ();
          Buffer.contents b
      | '\\' ->
          advance ();
          (match peek () with
          | 'u' ->
              advance ();
              for _ = 1 to 4 do
                advance ()
              done;
              Buffer.add_char b '?'
          | 'n' ->
              advance ();
              Buffer.add_char b '\n'
          | 't' ->
              advance ();
              Buffer.add_char b '\t'
          | c ->
              advance ();
              Buffer.add_char b c);
          go ()
      | '\000' -> raise (Bad_json "eof inside string")
      | c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_lit lit v =
    String.iter expect lit;
    v
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          J_obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((key, v) :: acc)
            | '}' ->
                advance ();
                J_obj (List.rev ((key, v) :: acc))
            | _ -> raise (Bad_json "malformed object")
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          J_arr []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elems (v :: acc)
            | ']' ->
                advance ();
                J_arr (List.rev (v :: acc))
            | _ -> raise (Bad_json "malformed array")
          in
          elems []
    | '"' -> J_str (parse_string ())
    | 't' -> parse_lit "true" (J_bool true)
    | 'f' -> parse_lit "false" (J_bool false)
    | 'n' -> parse_lit "null" J_null
    | _ ->
        let start = !pos in
        let rec num () =
          match peek () with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' ->
              advance ();
              num ()
          | _ -> ()
        in
        num ();
        if !pos = start then
          raise (Bad_json (Printf.sprintf "no value at byte %d" start));
        J_num (float_of_string (String.sub s start (!pos - start)))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing garbage");
  v

let jfield name = function
  | J_obj fields -> List.assoc_opt name fields
  | _ -> None

let jstr = function Some (J_str s) -> s | _ -> raise (Bad_json "want string")

let test_chrome_json_shape () =
  let _t, events = lazy_run prog_loop in
  let doc =
    parse_json
      (Sim_trace.Export.chrome_json ~name_of_nr:Defs.syscall_name events)
  in
  let trace_events =
    match jfield "traceEvents" doc with
    | Some (J_arr l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "trace is non-empty" true (trace_events <> []);
  (* every event is an object with ph/pid; non-metadata events carry a
     numeric timestamp *)
  List.iter
    (fun e ->
      let ph = jstr (jfield "ph" e) in
      (match jfield "pid" e with
      | Some (J_num _) -> ()
      | _ -> Alcotest.fail "event without numeric pid");
      if ph <> "M" then
        match jfield "ts" e with
        | Some (J_num ts) ->
            Alcotest.(check bool) "ts non-negative" true (ts >= 0.0)
        | _ -> Alcotest.fail "event without numeric ts")
    trace_events;
  let complete_spans =
    List.filter (fun e -> jstr (jfield "ph" e) = "X") trace_events
  in
  Alcotest.(check bool) "has syscall spans" true (complete_spans <> []);
  List.iter
    (fun e ->
      Alcotest.(check string) "span category" "syscall" (jstr (jfield "cat" e));
      match jfield "dur" e with
      | Some (J_num _) -> ()
      | _ -> Alcotest.fail "span without duration")
    complete_spans;
  (* getpid spans are named by name_of_nr and carry the dispatch path *)
  let getpid_paths =
    List.filter_map
      (fun e ->
        if jstr (jfield "name" e) = "getpid" then
          match jfield "args" e with
          | Some args -> Some (jstr (jfield "path" args))
          | None -> None
        else None)
      complete_spans
  in
  Alcotest.(check bool) "getpid span has sud-sigsys path" true
    (List.mem "sud-sigsys" getpid_paths);
  Alcotest.(check bool) "getpid span has fast path" true
    (List.mem "fast-path" getpid_paths);
  (* rewrites appear as instant events *)
  let instants =
    List.filter (fun e -> jstr (jfield "ph" e) = "i") trace_events
  in
  Alcotest.(check bool) "has a rewrite instant" true
    (List.exists (fun e -> jstr (jfield "name" e) = "rewrite") instants);
  (* async per-task spans are balanced *)
  let count ph =
    List.length (List.filter (fun e -> jstr (jfield "ph" e) = ph) trace_events)
  in
  Alcotest.(check int) "async begins match ends" (count "b") (count "e")

(* --- Perfetto request-track export (simtrace spans --out) ---------- *)

let jnum = function
  | Some (J_num n) -> n
  | _ -> raise (Bad_json "want number")

let test_request_tracks_shape () =
  (* Real span data: a small wrk run under lazypoline, exported the
     way simtrace spans does — one track per exemplar request. *)
  let module Obs = Sim_obs.Obs in
  let module D = Harness.Divergence in
  let o = Obs.create ~ncpus:1 () in
  let _a, _k, _t =
    D.run_audited ~obs:o D.Lazypoline_m
      (D.Wrk
         {
           flavour = Workloads.Webserver.Nginx_like;
           size_kb = 2;
           conns = 3;
           requests = 40;
         })
  in
  let tracks =
    List.map
      (fun r ->
        ( r.Obs.rid,
          List.map
            (fun s -> (Obs.phase_name s.Obs.s_phase, s.Obs.s_start, s.Obs.s_end))
            (Obs.segments r) ))
      (Obs.exemplars o)
  in
  Alcotest.(check bool) "exemplars to export" true (tracks <> []);
  let doc = parse_json (Sim_trace.Export.request_tracks_json tracks) in
  let trace_events =
    match jfield "traceEvents" doc with
    | Some (J_arr l) -> l
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let metas, slices =
    List.partition (fun e -> jstr (jfield "ph" e) = "M") trace_events
  in
  (* one named track per request id, no extras *)
  let rids = List.map fst tracks |> List.sort_uniq compare in
  let meta_tids =
    List.filter_map
      (fun e ->
        if jstr (jfield "name" e) = "thread_name" then begin
          let tid = int_of_float (jnum (jfield "tid" e)) in
          (match jfield "args" e with
          | Some args ->
              Alcotest.(check string) "track named by request"
                (Printf.sprintf "request %d" tid)
                (jstr (jfield "name" args))
          | None -> Alcotest.fail "thread meta without args");
          Some tid
        end
        else None)
      metas
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "one track per rid" rids meta_tids;
  (* every slice is a complete event on its request's track *)
  Alcotest.(check bool) "has phase slices" true (slices <> []);
  List.iter
    (fun e ->
      Alcotest.(check string) "complete event" "X" (jstr (jfield "ph" e));
      Alcotest.(check string) "category" "request" (jstr (jfield "cat" e));
      Alcotest.(check bool) "duration non-negative" true
        (jnum (jfield "dur" e) >= 0.0);
      let tid = int_of_float (jnum (jfield "tid" e)) in
      Alcotest.(check bool) "slice on a declared track" true
        (List.mem tid rids);
      match jfield "args" e with
      | Some args ->
          Alcotest.(check int) "rid arg matches track" tid
            (int_of_float (jnum (jfield "rid" args)))
      | None -> Alcotest.fail "slice without args")
    slices;
  (* per track: slices in time order and non-overlapping *)
  List.iter
    (fun rid ->
      let mine =
        List.filter
          (fun e -> int_of_float (jnum (jfield "tid" e)) = rid)
          slices
      in
      Alcotest.(check bool) "track non-empty" true (mine <> []);
      ignore
        (List.fold_left
           (fun prev_end e ->
             let ts = jnum (jfield "ts" e) in
             let dur = jnum (jfield "dur" e) in
             (* timestamps print at 1e-4 us precision; one simulated
                cycle is ~4.8e-4 us, so this slack only forgives
                formatting, never a real overlap *)
             Alcotest.(check bool)
               (Printf.sprintf "request %d: slices don't overlap" rid)
               true
               (ts >= prev_end -. 2.5e-4);
             ts +. dur)
           neg_infinity mine))
    rids

let tests =
  [
    Alcotest.test_case "ring: overflow accounting" `Quick test_ring_overflow;
    Alcotest.test_case "ring: cpu index clamp" `Quick test_ring_cpu_clamp;
    Alcotest.test_case "lazypoline: slow path then fast path" `Quick
      test_slow_then_fast;
    Alcotest.test_case "zpoline: sweep event" `Quick test_zpoline_sweep_event;
    Alcotest.test_case "tracing is observation-only" `Quick
      test_trace_is_observation_only;
    QCheck_alcotest.to_alcotest prop_tracing_never_changes_cycles;
    Alcotest.test_case "chrome JSON shape" `Quick test_chrome_json_shape;
    Alcotest.test_case "perfetto request tracks shape" `Quick
      test_request_tracks_shape;
  ]
