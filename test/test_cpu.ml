(** CPU interpreter tests: arithmetic, control flow, stack, SSE/x87,
    segment-relative addressing, traps and register hooks. *)

open Sim_isa
open Sim_mem
open Sim_cpu

let setup items =
  let m = Mem.create () in
  let blob = Sim_asm.Asm.assemble ~base:0x1000 items in
  Mem.map m ~addr:0x1000 ~len:(max 4096 (String.length blob.bytes)) ~perm:Mem.rx;
  Mem.poke_bytes m 0x1000 blob.bytes;
  Mem.map m ~addr:0x8000 ~len:8192 ~perm:Mem.rw;
  let c = Cpu.create () in
  c.rip <- 0x1000;
  Cpu.poke_reg c Isa.rsp 0xA000L;
  (c, m, blob)

(* Step until an outcome other than Stepped, or [fuel] runs out. *)
let rec run_to_trap ?(fuel = 10000) c m =
  if fuel = 0 then Alcotest.fail "fuel exhausted"
  else
    match Cpu.step c m with
    | Cpu.Stepped -> run_to_trap ~fuel:(fuel - 1) c m
    | o -> o

let expect_halt c m = function
  | () -> (
      match run_to_trap c m with
      | Cpu.Halted -> ()
      | _ -> Alcotest.fail "expected halt")

let test_arith () =
  let open Sim_asm.Asm in
  let c, m, _ =
    setup
      [
        mov_ri Isa.rax 10; mov_ri Isa.rbx 3;
        i (Isa.Alu_rr (Isa.Mul, Isa.rax, Isa.rbx)) (* 30 *);
        add_ri Isa.rax 12 (* 42 *);
        mov_ri Isa.rcx 5;
        i (Isa.Alu_rr (Isa.Div, Isa.rcx, Isa.rbx)) (* 1 *);
        mov_ri Isa.rdx 7;
        i (Isa.Alu_rr (Isa.Rem, Isa.rdx, Isa.rbx)) (* 1 *);
        hlt;
      ]
  in
  expect_halt c m ();
  Alcotest.(check int64) "rax" 42L (Cpu.peek_reg c Isa.rax);
  Alcotest.(check int64) "rcx" 1L (Cpu.peek_reg c Isa.rcx);
  Alcotest.(check int64) "rdx" 1L (Cpu.peek_reg c Isa.rdx)

let test_div_by_zero () =
  let open Sim_asm.Asm in
  let c, m, _ =
    setup
      [ mov_ri Isa.rax 1; mov_ri Isa.rbx 0;
        i (Isa.Alu_rr (Isa.Div, Isa.rax, Isa.rbx)); hlt ]
  in
  match run_to_trap c m with
  | Cpu.Fault_arith -> ()
  | _ -> Alcotest.fail "expected arithmetic fault"

let test_branches_signed_unsigned () =
  let open Sim_asm.Asm in
  (* rax = -1; unsigned it is huge: jb (Ult) not taken, jl (Lt) taken *)
  let c, m, _ =
    setup
      [
        mov_ri64 Isa.rax (-1L);
        cmp_ri Isa.rax 5;
        Jcc_l (Isa.Lt, "signed_less");
        mov_ri Isa.rbx 0; hlt;
        Label "signed_less";
        mov_ri64 Isa.rax (-1L);
        cmp_ri Isa.rax 5;
        Jcc_l (Isa.Ult, "unsigned_less");
        mov_ri Isa.rbx 42; hlt;
        Label "unsigned_less";
        mov_ri Isa.rbx 1; hlt;
      ]
  in
  expect_halt c m ();
  Alcotest.(check int64) "rbx" 42L (Cpu.peek_reg c Isa.rbx)

let test_call_ret_stack () =
  let open Sim_asm.Asm in
  let c, m, _ =
    setup
      [
        mov_ri Isa.rax 1;
        Call_l "f";
        add_ri Isa.rax 100; hlt;
        Label "f"; add_ri Isa.rax 10; ret;
      ]
  in
  expect_halt c m ();
  Alcotest.(check int64) "rax" 111L (Cpu.peek_reg c Isa.rax);
  Alcotest.(check int64) "rsp restored" 0xA000L (Cpu.peek_reg c Isa.rsp)

let test_call_reg_pushes_return () =
  let open Sim_asm.Asm in
  let c, m, blob =
    setup
      [
        Lea_ip (Isa.rax, "target");
        call_reg Isa.rax;
        hlt;
        Label "target";
        (* return address should be on the stack: pop it *)
        pop Isa.rbx;
        jmp_reg Isa.rbx;
      ]
  in
  expect_halt c m ();
  (* return address = instruction after the call = target minus the
     intervening hlt byte *)
  let after_call = Sim_asm.Asm.symbol blob "target" - 1 in
  Alcotest.(check int64) "ret addr" (Int64.of_int after_call)
    (Cpu.peek_reg c Isa.rbx)

let test_gs_relative () =
  let open Sim_asm.Asm in
  let c, m, _ =
    setup
      [
        mov_ri Isa.rbx 0;
        mov_ri Isa.rcx 0x5A;
        store8 ~seg:Isa.Seg_gs Isa.rbx 16 Isa.rcx;
        load8 ~seg:Isa.Seg_gs Isa.rax Isa.rbx 16;
        hlt;
      ]
  in
  c.gs_base <- 0x8000;
  expect_halt c m ();
  Alcotest.(check int64) "gs byte" 0x5AL (Cpu.peek_reg c Isa.rax);
  Alcotest.(check int) "in memory" 0x5A (Mem.read_u8 m 0x8010)

let test_listing1_pattern () =
  (* The pthread-init pattern from the paper's Listing 1: xmm0 is
     populated, two syscalls intervene, then movups writes 16 bytes. *)
  let open Sim_asm.Asm in
  let c, m, _ =
    setup
      [
        mov_ri Isa.r12 0x8100;
        i (Isa.Movq_xr (0, Isa.r12));
        i (Isa.Punpcklqdq (0, 0));
        i (Isa.Movups_store (Isa.Seg_none, Isa.r12, 0l, 0));
        hlt;
      ]
  in
  expect_halt c m ();
  Alcotest.(check int64) "prev" 0x8100L (Mem.read_u64 m 0x8100);
  Alcotest.(check int64) "next" 0x8100L (Mem.read_u64 m 0x8108)

let test_x87 () =
  let open Sim_asm.Asm in
  let c, m, _ =
    setup
      [
        i Isa.Fld1; i Isa.Fld1; i Isa.Faddp;
        mov_ri Isa.rbx 0x8000;
        i (Isa.Fstp (Isa.Seg_none, Isa.rbx, 0l));
        hlt;
      ]
  in
  expect_halt c m ();
  Alcotest.(check (float 0.0001)) "1+1" 2.0
    (Int64.float_of_bits (Mem.read_u64 m 0x8000))

let test_syscall_trap_rip () =
  let open Sim_asm.Asm in
  let c, m, _ = setup [ nop; syscall; hlt ] in
  (match run_to_trap c m with
  | Cpu.Trap_syscall -> ()
  | _ -> Alcotest.fail "expected syscall trap");
  (* rip points after the 2-byte syscall at 0x1001 *)
  Alcotest.(check int) "rip" 0x1003 c.rip

let test_hypercall_trap () =
  let open Sim_asm.Asm in
  let c, m, _ = setup [ hypercall 7; hlt ] in
  match run_to_trap c m with
  | Cpu.Trap_hypercall 7 -> ()
  | _ -> Alcotest.fail "expected hypercall trap"

let test_fetch_fault_on_nx () =
  let open Sim_asm.Asm in
  let c, m, _ = setup [ mov_ri Isa.rax 0x8000; jmp_reg Isa.rax ] in
  (* 0x8000 is rw- : executing there must fault *)
  match run_to_trap c m with
  | Cpu.Fault (0x8000, Mem.Exec) -> ()
  | o ->
      Alcotest.failf "expected exec fault, got %s"
        (match o with
        | Cpu.Fault (a, _) -> Printf.sprintf "fault at %x" a
        | Cpu.Halted -> "halt"
        | _ -> "other")

let test_hooks_observe_registers () =
  let open Sim_asm.Asm in
  let c, m, _ =
    setup [ mov_ri Isa.rbx 1; mov_rr Isa.rax Isa.rbx;
            i (Isa.Movq_xr (3, Isa.rax)); hlt ]
  in
  let events = ref [] in
  c.hook <- Some (fun e -> events := e :: !events);
  expect_halt c m ();
  let has p = List.exists p !events in
  Alcotest.(check bool) "write rbx" true
    (has (function Cpu.Reg_write 3 -> true | _ -> false));
  Alcotest.(check bool) "read rbx" true
    (has (function Cpu.Reg_read 3 -> true | _ -> false));
  Alcotest.(check bool) "write xmm3" true
    (has (function Cpu.Xmm_write 3 -> true | _ -> false))

let test_xstate_roundtrip () =
  let x = Cpu.xstate_create () in
  x.xmm_lo.(5) <- 123L;
  x.xmm_hi.(5) <- 456L;
  x.st.(0) <- Int64.bits_of_float 3.14;
  x.st_sp <- 1;
  let s = Cpu.xstate_to_bytes x in
  let y = Cpu.xstate_create () in
  Cpu.xstate_of_bytes y s;
  Alcotest.(check int64) "xmm lo" 123L y.xmm_lo.(5);
  Alcotest.(check int64) "xmm hi" 456L y.xmm_hi.(5);
  Alcotest.(check int) "st_sp" 1 y.st_sp;
  Alcotest.(check int64) "st0" (Int64.bits_of_float 3.14) y.st.(0)

(** {1 Cached-vs-uncached equivalence (qcheck)}

    For random x64lite programs — including programs that overwrite
    their own code bytes and re-execute them — stepping through the
    decoded-instruction cache must be observationally identical to the
    byte-at-a-time path: same per-step outcomes, same [rip] sequence,
    same cycle costs, same final registers, flags and memory. *)

let eq_code_base = 0x1000
let eq_code_len = 2 * Sim_mem.Mem.page_size
let eq_data_base = 0x8000
let eq_data_len = 8192

(* A subset of the ISA that keeps random programs "interesting but
   safe": memory operands go through rbx (data) or rcx (code, i.e.
   self-modifying stores); control flow uses small relative jumps.
   Wild programs that fault or hit undecodable bytes are fine — both
   paths must agree on the fault, and the run simply ends there. *)
let gen_eq_instr : Isa.instr QCheck.Gen.t =
  let open QCheck.Gen in
  let r = int_range 0 15 in
  let small32 = map Int32.of_int (int_range (-64) 64) in
  let data_disp = map Int32.of_int (int_range 0 (eq_data_len - 16)) in
  let code_disp = map Int32.of_int (int_range 0 (eq_code_len - 16)) in
  let alu =
    oneofl [ Isa.Add; Isa.Sub; Isa.And; Isa.Or; Isa.Xor; Isa.Cmp; Isa.Mul ]
  in
  (* imul has no immediate-operand encoding *)
  let alu_imm =
    oneofl [ Isa.Add; Isa.Sub; Isa.And; Isa.Or; Isa.Xor; Isa.Cmp ]
  in
  let cond =
    oneofl [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Le; Isa.Gt; Isa.Ge; Isa.Ult; Isa.Uge ]
  in
  (* Relative jumps stay within a few instructions of the current one;
     landing mid-encoding is allowed (desync is exactly the kind of
     disagreement the property would catch). *)
  let rel = map Int32.of_int (int_range (-24) 24) in
  frequency
    [
      (6, map2 (fun d imm -> Isa.Mov_ri32 (d, imm)) r small32);
      (4, map2 (fun d s -> Isa.Mov_rr (d, s)) r r);
      (6, map3 (fun op d s -> Isa.Alu_rr (op, d, s)) alu r r);
      (6, map3 (fun op d imm -> Isa.Alu_ri (op, d, imm)) alu_imm r small32);
      (2, map2 (fun c d -> Isa.Setcc (c, d)) cond r);
      (3, map2 (fun d disp -> Isa.Load (Isa.Seg_none, d, Isa.rbx, disp)) r data_disp);
      (3, map2 (fun s disp -> Isa.Store (Isa.Seg_none, Isa.rbx, disp, s)) r data_disp);
      (2, map2 (fun d disp -> Isa.Load8 (Isa.Seg_none, d, Isa.rbx, disp)) r data_disp);
      (2, map2 (fun s disp -> Isa.Store8 (Isa.Seg_none, Isa.rbx, disp, s)) r data_disp);
      (* the SMC generator: byte stores into the program's own pages *)
      (3, map2 (fun s disp -> Isa.Store8 (Isa.Seg_none, Isa.rcx, disp, s)) r code_disp);
      (2, map (fun rl -> Isa.Jmp rl) rel);
      (3, map2 (fun c rl -> Isa.Jcc (c, rl)) cond rel);
      (2, return Isa.Nop);
      (1, map (fun n -> Isa.Nopw n) (int_range 1 4));
      (1, return Isa.Rdtsc);
      (1, return Isa.Syscall);
      (1, map (fun x -> Isa.Hypercall x) (int_range 0 100));
      (1, map (fun d -> Isa.Push d) r);
      (1, map (fun d -> Isa.Pop d) r);
      (1, return Isa.Hlt);
    ]

(* One run: execute up to [fuel] steps, recording every step's
   pre-[rip], outcome and charged cost; stop at any non-advancing
   outcome.  Returns the trace plus full final state. *)
let eq_run ?icache (code : string) =
  let m = Mem.create () in
  Mem.map m ~addr:eq_code_base ~len:eq_code_len ~perm:Mem.rwx;
  Mem.poke_bytes m eq_code_base code;
  Mem.map m ~addr:eq_data_base ~len:eq_data_len ~perm:Mem.rw;
  let c = Cpu.create () in
  c.rip <- eq_code_base;
  Cpu.poke_reg c Isa.rsp (Int64.of_int (eq_data_base + eq_data_len));
  Cpu.poke_reg c Isa.rbx (Int64.of_int eq_data_base);
  Cpu.poke_reg c Isa.rcx (Int64.of_int eq_code_base);
  let trace = ref [] in
  let cycles = ref 0 in
  let continue_ = ref true in
  let fuel = ref 300 in
  while !continue_ && !fuel > 0 do
    decr fuel;
    let rip0 = c.rip in
    let o = Cpu.step ?icache c m in
    trace := (rip0, o, c.last_cost) :: !trace;
    cycles := !cycles + c.last_cost;
    match o with
    | Cpu.Stepped | Cpu.Trap_syscall | Cpu.Trap_hypercall _
    | Cpu.Trap_breakpoint ->
        ()
    | Cpu.Halted | Cpu.Fault _ | Cpu.Fault_arith | Cpu.Bad_instr _ ->
        continue_ := false
  done;
  let regs = Array.init 16 (fun r -> Cpu.peek_reg c r) in
  let memimg =
    Mem.peek_bytes m eq_code_base eq_code_len
    ^ Mem.peek_bytes m eq_data_base eq_data_len
  in
  (List.rev !trace, regs, (c.zf, c.sf, c.cf), c.rip, !cycles, memimg)

let prop_icache_equivalence =
  QCheck.Test.make ~count:300 ~name:"icache == uncached (incl. SMC)"
    (QCheck.make
       (QCheck.Gen.list_size (QCheck.Gen.int_range 5 40) gen_eq_instr))
    (fun instrs ->
      let code = Encode.encode_all instrs in
      let reference = eq_run code in
      let cached = eq_run ~icache:(Icache.create ~superblock:false ()) code in
      let superblk = eq_run ~icache:(Icache.create ~superblock:true ()) code in
      reference = cached && reference = superblk)

(* Deterministic witness for the property's SMC claim: a loop whose
   body patches the instruction *after* the loop from [hlt] to
   [mov rdx, 7; hlt]-equivalent bytes and then reaches it.  The cache
   executes (and caches) the target page across many iterations before
   the patch lands. *)
let test_smc_patch_observed () =
  let open Sim_asm.Asm in
  let items =
    [
      (* r8 = loop counter; rcx = code base (SMC window) *)
      mov_ri Isa.r8 20;
      Label "loop";
      sub_ri Isa.r8 1;
      cmp_ri Isa.r8 0;
      Jcc_l (Isa.Ne, "loop");
      (* patch 'target' (currently hlt, 0xF4) into nop (0x90) *)
      mov_ri Isa.r9 0x90;
      Lea_ip (Isa.r10, "target");
      mov_rr Isa.rcx Isa.r10;
      store8 Isa.rcx 0 Isa.r9;
      Label "target";
      hlt (* becomes nop after the patch *);
      mov_ri Isa.rax 42;
      hlt;
    ]
  in
  let blob = Sim_asm.Asm.assemble ~base:eq_code_base items in
  let run ic =
    let m = Mem.create () in
    Mem.map m ~addr:eq_code_base ~len:eq_code_len ~perm:Mem.rwx;
    Mem.poke_bytes m eq_code_base blob.Sim_asm.Asm.bytes;
    Mem.map m ~addr:eq_data_base ~len:eq_data_len ~perm:Mem.rw;
    let c = Cpu.create () in
    c.rip <- eq_code_base;
    Cpu.poke_reg c Isa.rsp (Int64.of_int (eq_data_base + eq_data_len));
    let fuel = ref 500 in
    let rec go () =
      if !fuel = 0 then Alcotest.fail "fuel exhausted";
      decr fuel;
      match Cpu.step ?icache:ic c m with
      | Cpu.Stepped -> go ()
      | Cpu.Halted -> Cpu.peek_reg c Isa.rax
      | _ -> Alcotest.fail "unexpected outcome"
    in
    go ()
  in
  (* Uncached and cached agree: execution runs *through* the patched
     byte and halts at the second hlt with rax = 42. *)
  Alcotest.(check int64) "uncached" 42L (run None);
  let ic = Icache.create () in
  Alcotest.(check int64) "icache" 42L (run (Some ic));
  Alcotest.(check bool) "patch invalidated the page" true
    ((Icache.stats ic).Icache.invalidations > 0)

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero;
    Alcotest.test_case "signed vs unsigned branches" `Quick
      test_branches_signed_unsigned;
    Alcotest.test_case "call/ret stack" `Quick test_call_ret_stack;
    Alcotest.test_case "call reg pushes return" `Quick
      test_call_reg_pushes_return;
    Alcotest.test_case "gs-relative access" `Quick test_gs_relative;
    Alcotest.test_case "listing 1 xmm pattern" `Quick test_listing1_pattern;
    Alcotest.test_case "x87 stack" `Quick test_x87;
    Alcotest.test_case "syscall trap rip" `Quick test_syscall_trap_rip;
    Alcotest.test_case "hypercall trap" `Quick test_hypercall_trap;
    Alcotest.test_case "NX fetch fault" `Quick test_fetch_fault_on_nx;
    Alcotest.test_case "register hooks" `Quick test_hooks_observe_registers;
    Alcotest.test_case "xstate roundtrip" `Quick test_xstate_roundtrip;
    QCheck_alcotest.to_alcotest prop_icache_equivalence;
    Alcotest.test_case "SMC patch observed (icache)" `Quick
      test_smc_patch_observed;
  ]
