(** The cycle-clock sampling profiler: symbolization, deterministic
    sampling, well-formed collapsed-stack output, and context
    classification of interposed runs. *)

module Profiler = Sim_metrics.Profiler
module Micro = Workloads.Microbench_prog

let contains ~needle hay =
  let nl = String.length needle and l = String.length hay in
  let rec go i = i + nl <= l && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* --- symbolization ------------------------------------------------- *)

let test_symbolize () =
  let p = Profiler.create () in
  Alcotest.(check string) "no symbols: hex" "0x400010"
    (Profiler.symbolize p 0x400010);
  Profiler.add_symbols p [ ("start", 0x400000); ("loop", 0x400020) ];
  Alcotest.(check string) "exact hit" "start" (Profiler.symbolize p 0x400000);
  Alcotest.(check string) "offset inside" "start+0x8"
    (Profiler.symbolize p 0x400008);
  Alcotest.(check string) "next symbol wins" "loop"
    (Profiler.symbolize p 0x400020);
  Alcotest.(check string) "below first symbol: hex" "0x3fffff"
    (Profiler.symbolize p 0x3fffff);
  Alcotest.(check string) "beyond 4 KiB window: hex" "0x402000"
    (Profiler.symbolize p 0x402000);
  (* incremental addition keeps the array sorted *)
  Profiler.add_symbols p [ ("mid", 0x400010) ];
  Alcotest.(check string) "inserted symbol found" "mid+0x1"
    (Profiler.symbolize p 0x400011)

let test_tick_period () =
  let p = Profiler.create ~period:100 () in
  Profiler.tick p 99 ~comm:"a" ~rip:0 ~in_kernel:false ~sig_depth:0;
  Alcotest.(check int) "no sample before period" 0 (Profiler.samples p);
  Profiler.tick p 1 ~comm:"a" ~rip:0 ~in_kernel:false ~sig_depth:0;
  Alcotest.(check int) "sample at period" 1 (Profiler.samples p);
  (* one huge charge yields multiple samples: the cost model says the
     instruction occupied all those cycles *)
  Profiler.tick p 350 ~comm:"a" ~rip:0 ~in_kernel:false ~sig_depth:0;
  Alcotest.(check int) "large charge multi-samples" 4 (Profiler.samples p)

let test_context_priority () =
  let p = Profiler.create ~period:1 () in
  Profiler.add_region p ~lo:0x1000 ~hi:0x2000 ~name:"interposer";
  Profiler.tick p 1 ~comm:"c" ~rip:0x1500 ~in_kernel:true ~sig_depth:1;
  Profiler.tick p 1 ~comm:"c" ~rip:0x1500 ~in_kernel:false ~sig_depth:1;
  Profiler.tick p 1 ~comm:"c" ~rip:0x9000 ~in_kernel:false ~sig_depth:1;
  Profiler.tick p 1 ~comm:"c" ~rip:0x9000 ~in_kernel:false ~sig_depth:0;
  let f = Profiler.folded p in
  Alcotest.(check bool) "kernel beats region" true
    (contains ~needle:"c;kernel;0x1500 1" f);
  Alcotest.(check bool) "region beats signal" true
    (contains ~needle:"c;interposer;0x1500 1" f);
  Alcotest.(check bool) "signal beats guest" true
    (contains ~needle:"c;signal;0x9000 1" f);
  Alcotest.(check bool) "guest fallback" true
    (contains ~needle:"c;guest;0x9000 1" f)

(* --- end-to-end on the microbenchmark ------------------------------ *)

let profiled_run config =
  let p = Profiler.create ~period:101 () in
  ignore (Micro.run ~iters:500 ~profiler:p config);
  p

let test_samples_collected () =
  let p = profiled_run Micro.Lazypoline_noxstate in
  Alcotest.(check bool) "samples collected" true (Profiler.samples p > 0);
  Alcotest.(check bool) "distinct stacks" true (Profiler.stacks p > 1);
  let f = Profiler.folded p in
  Alcotest.(check bool) "kernel context present" true (contains ~needle:";kernel;" f);
  (* the microbench loop body is symbolized against the image labels *)
  Alcotest.(check bool) "loop symbol appears" true (contains ~needle:";loop" f)

let test_folded_well_formed () =
  let p = profiled_run Micro.Lazypoline_full in
  let f = Profiler.folded p in
  let lines = String.split_on_char '\n' f |> List.filter (( <> ) "") in
  Alcotest.(check bool) "non-empty" true (lines <> []);
  let total =
    List.fold_left
      (fun acc line ->
        (* "comm;ctx;sym count": exactly two ';' and a positive count *)
        let semis =
          String.fold_left (fun n c -> if c = ';' then n + 1 else n) 0 line
        in
        Alcotest.(check int) ("two semicolons: " ^ line) 2 semis;
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "no count in %S" line
        | Some i -> (
            let count =
              String.sub line (i + 1) (String.length line - i - 1)
            in
            match int_of_string_opt count with
            | Some n when n > 0 -> acc + n
            | _ -> Alcotest.failf "bad count in %S" line))
      0 lines
  in
  Alcotest.(check int) "counts sum to total samples" (Profiler.samples p) total

let test_deterministic () =
  let f1 = Profiler.folded (profiled_run Micro.Lazypoline_full) in
  let f2 = Profiler.folded (profiled_run Micro.Lazypoline_full) in
  Alcotest.(check string) "identical runs, identical profiles" f1 f2

let test_top_ranked () =
  let p = profiled_run Micro.Native in
  match Profiler.top ~n:3 p with
  | [] -> Alcotest.fail "no top stacks"
  | (_, n0) :: rest ->
      List.iter
        (fun (_, n) ->
          Alcotest.(check bool) "descending counts" true (n <= n0))
        rest

let tests =
  [
    Alcotest.test_case "symbolization" `Quick test_symbolize;
    Alcotest.test_case "tick period accounting" `Quick test_tick_period;
    Alcotest.test_case "context priority" `Quick test_context_priority;
    Alcotest.test_case "microbench: samples collected" `Quick
      test_samples_collected;
    Alcotest.test_case "folded output well-formed" `Quick
      test_folded_well_formed;
    Alcotest.test_case "profiles are deterministic" `Quick test_deterministic;
    Alcotest.test_case "top stacks ranked" `Quick test_top_ranked;
  ]
