(** Chaos engine tests: keyed-PRNG determinism, zero-divergence
    sweeps across mechanisms, clobber catch + minimization + forced
    replay, and the chaos-off bit-identity property. *)

open Sim_kernel
module C = Sim_chaos.Chaos
module D = Harness.Divergence
module H = Harness.Chaos
module A = Sim_audit.Audit

let micro = D.Micro { iters = 12; nr = Defs.sys_getpid }

let all_mechs = [ D.Raw; D.Sud; D.Zpoline; D.Lazypoline_m; D.Seccomp; D.Ptrace ]

let inj_strings l = List.map C.injection_to_string l

let test_same_seed_same_run () =
  (* Two fuzz runs with the same seed perform the same injections and
     produce byte-identical audit logs. *)
  let a1, l1 = H.run_fuzz ~seed:7L D.Sud (D.Sigmicro { iters = 4 }) in
  let a2, l2 = H.run_fuzz ~seed:7L D.Sud (D.Sigmicro { iters = 4 }) in
  Alcotest.(check (list string))
    "same injections" (inj_strings l1) (inj_strings l2);
  Alcotest.(check string)
    "same audit log" (D.log_string a1) (D.log_string a2)

let test_different_seed_different_run () =
  let _, l1 = H.run_fuzz ~seed:1L D.Raw (D.Sigmicro { iters = 4 }) in
  let _, l2 = H.run_fuzz ~seed:2L D.Raw (D.Sigmicro { iters = 4 }) in
  Alcotest.(check bool)
    "injection logs differ" false
    (inj_strings l1 = inj_strings l2)

let test_sweep_clean () =
  (* No mechanism diverges from raw under fuzzed errno / signals /
     preemption. *)
  let r =
    H.sweep ~seeds:3 ~mechs:all_mechs
      ~read:(fun _ -> assert false)
      [ H.Wmicro { iters = 12; nr = Defs.sys_getpid }; H.Wsigmicro { iters = 3 } ]
  in
  if r.H.rp_failures <> [] then Alcotest.fail r.H.rp_text;
  Alcotest.(check bool) "performed injections" true (r.H.rp_injected > 0)

let test_clobber_caught_minimized_replayed () =
  (* A register-clobbering interposer bug must be caught by the
     divergence gate, shrink to a single injection, and reproduce
     under forced replay of the dumped file. *)
  let rates = { C.default_rates with C.clobber_rate = 4096 } in
  let r =
    H.sweep ~rates ~seeds:1 ~mechs:[ D.Zpoline ]
      ~read:(fun _ -> assert false)
      [ H.Wmicro { iters = 12; nr = Defs.sys_getpid } ]
  in
  match r.H.rp_failures with
  | [] -> Alcotest.fail "clobber perturbation not caught"
  | x :: _ ->
      (match x.H.x_minimized with
      | Some [ j ] ->
          Alcotest.(check char) "minimized to one clobber" 'c'
            (C.injection_to_string j).[2]
      | Some l ->
          Alcotest.fail
            (Printf.sprintf "minimized to %d injections, wanted 1"
               (List.length l))
      | None -> Alcotest.fail "forced replay did not reproduce");
      (* Round-trip through the reproducer file format and replay. *)
      let text = H.repro_to_string (H.repro_of_failure x) in
      let r2 =
        match H.repro_of_string text with
        | Ok r2 -> r2
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) "replay reproduces" true
        (H.replay ~read:(fun _ -> assert false) r2 <> None)

let test_forced_mode_only_listed () =
  (* Forced mode performs exactly the listed injections, nothing
     else. *)
  let injections =
    [
      {
        C.j_klass = C.Errno; j_tid = 1; j_index = 2; j_arg = Defs.eintr;
        j_arg2 = 0L;
      };
    ]
  in
  let a_raw = H.run_forced ~injections D.Raw micro in
  let a_m = H.run_forced ~injections D.Lazypoline_m micro in
  Alcotest.(check bool) "still no divergence" true
    (A.first_divergence a_raw a_m = None)

let chaos_off_prop =
  (* Zero-rate chaos attached = bit-identical run, for every mechanism
     and workload size. *)
  QCheck.Test.make ~name:"chaos-off is bit-identical" ~count:12
    QCheck.(pair (int_range 0 5) (int_range 1 16))
    (fun (mi, iters) ->
      let mech = List.nth all_mechs mi in
      let ok, detail =
        H.chaos_off_identical mech (D.Micro { iters; nr = Defs.sys_getpid })
      in
      if not ok then QCheck.Test.fail_report detail;
      true)

let engine_chaos_prop =
  (* Block engine vs. interpreter under seeded chaos: audit logs,
     cycle clocks AND the injection sequences themselves must match —
     the chaos stream is drawn per retired instruction, so a block
     runner that drew it at different points would diverge here. *)
  QCheck.Test.make ~name:"block engine bit-identical under chaos" ~count:10
    QCheck.(triple (int_range 0 5) (int_range 1 10_000) (int_range 1 10))
    (fun (mi, seed, iters) ->
      let mech = List.nth all_mechs mi in
      let ok, detail =
        H.engine_identical_chaos ~seed:(Int64.of_int seed) mech
          (D.Micro { iters; nr = Defs.sys_getpid })
      in
      if not ok then QCheck.Test.fail_report detail;
      true)

let test_engine_chaos_sigmicro () =
  (* Mid-block async delivery: the signal-handler-rich workload under
     chaos forces signals and preemptions to land while the engine is
     inside a compiled block; the run must stay bit-identical to the
     interpreter, injections included. *)
  List.iter
    (fun (seed, mech) ->
      let ok, detail =
        H.engine_identical_chaos ~seed mech (D.Sigmicro { iters = 3 })
      in
      if not ok then Alcotest.fail detail)
    [ (3L, D.Zpoline); (11L, D.Lazypoline_m); (23L, D.Sud) ]

let tests =
  [
    Alcotest.test_case "same seed, same run" `Quick test_same_seed_same_run;
    Alcotest.test_case "different seed, different run" `Quick
      test_different_seed_different_run;
    Alcotest.test_case "fuzz sweep: no divergence" `Quick test_sweep_clean;
    Alcotest.test_case "clobber caught, minimized, replayed" `Quick
      test_clobber_caught_minimized_replayed;
    Alcotest.test_case "forced mode injects only the list" `Quick
      test_forced_mode_only_listed;
    QCheck_alcotest.to_alcotest chaos_off_prop;
    Alcotest.test_case "block engine under chaos: sigmicro" `Quick
      test_engine_chaos_sigmicro;
    QCheck_alcotest.to_alcotest engine_chaos_prop;
  ]
