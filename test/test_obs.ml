(** Tests for the request-flow span recorder (lib/obs, layer 4 of the
    observability stack): the request lifecycle and per-phase
    accounting in isolation, the machine-wide attribution identity on
    a real wrk run, the top-k exemplar reservoir, the sidecar
    round-trip, and the headline property — attaching the recorder
    never changes a run (simulated cycles, register/memory state via
    the audit checkpoint hashes, the full serialized audit stream)
    under any of the six mechanisms, interpreter or JIT. *)

open Sim_kernel
module Obs = Sim_obs.Obs
module D = Harness.Divergence

(* --- request lifecycle + per-request accounting -------------------- *)

let test_lifecycle () =
  let o = Obs.create ~ncpus:1 () in
  Obs.note_issue o ~rid:1 ~conn:7 ~ts:100L;
  Alcotest.(check int) "issued" 1 (Obs.issued o);
  Alcotest.(check int) "nothing completed yet" 0 (Obs.completed_count o);
  (* the kernel reads the request 50 cycles later: queue wait *)
  Obs.claim o ~cpu:0 ~conn:7 ~tid:5 ~ts:150L ~ev:12;
  Obs.on_charge o ~cpu:0 ~start:150L ~cycles:40 ~phase:Obs.Papp;
  Obs.on_charge o ~cpu:0 ~start:190L ~cycles:10 ~phase:(Obs.Pkernel 0);
  Obs.task_off o ~cpu:0 ~tid:5 ~ts:200L ~blocked:true;
  Obs.task_on o ~cpu:0 ~tid:5 ~ts:230L;
  Obs.on_charge o ~cpu:0 ~start:230L ~cycles:20 ~phase:Obs.Pinterp;
  Obs.complete o ~rid:1 ~ts:250L ~ev_hi:19;
  Alcotest.(check int) "completed" 1 (Obs.completed_count o);
  match Obs.completed o with
  | [ r ] ->
      Alcotest.(check int) "audit window low" 12 r.Obs.ev_lo;
      Alcotest.(check int) "audit window high" 19 r.Obs.ev_hi;
      Alcotest.(check int64) "latency is complete - issue" 150L
        (Obs.latency r);
      let phases = Obs.req_phases r in
      let get n = List.assoc n phases in
      Alcotest.(check int64) "app cycles" 40L (get "app");
      Alcotest.(check int64) "interposer cycles" 20L (get "interposer");
      Alcotest.(check int64) "kernel cycles" 10L (get "kernel");
      Alcotest.(check int64) "blocked cycles" 30L (get "blocked");
      Alcotest.(check int64) "queue wait charged to sched" 50L (get "sched");
      (* every cycle of the latency is attributed to some phase *)
      Alcotest.(check int64) "phases cover the whole latency" (Obs.latency r)
        (List.fold_left (fun acc (_, c) -> Int64.add acc c) 0L phases);
      (* the causal track: monotone, non-overlapping, expected order *)
      let segs = Obs.segments r in
      Alcotest.(check (list string))
        "segment phase order"
        [ "sched"; "app"; "kernel"; "blocked"; "interposer" ]
        (List.map (fun s -> Obs.phase_name s.Obs.s_phase) segs);
      ignore
        (List.fold_left
           (fun prev_end s ->
             Alcotest.(check bool) "segment starts after predecessor" true
               (s.Obs.s_start >= prev_end);
             Alcotest.(check bool) "segment non-empty" true
               (s.Obs.s_end > s.Obs.s_start);
             s.Obs.s_end)
           0L segs)
  | l -> Alcotest.failf "expected one completed request, got %d"
           (List.length l)

let test_reservoir_topk () =
  let o = Obs.create ~topk:2 ~ncpus:1 () in
  List.iteri
    (fun i lat ->
      let rid = i + 1 in
      Obs.note_issue o ~rid ~conn:rid ~ts:0L;
      Obs.complete o ~rid ~ts:(Int64.of_int lat) ~ev_hi:(-1))
    [ 10; 30; 20; 40 ];
  Alcotest.(check (list int))
    "slowest two retained, slowest first" [ 4; 2 ]
    (List.map (fun r -> r.Obs.rid) (Obs.exemplars o));
  Alcotest.(check int) "evictions counted" 2 (Obs.evictions o);
  Alcotest.(check bool) "evicted exemplar unfindable" true
    (Obs.find_exemplar o 1 = None);
  match Obs.find_exemplar o 4 with
  | Some r -> Alcotest.(check int64) "slowest latency" 40L (Obs.latency r)
  | None -> Alcotest.fail "slowest exemplar missing"

let test_inflight_overflow () =
  let o = Obs.create ~max_inflight:2 ~ncpus:1 () in
  for rid = 1 to 3 do
    Obs.note_issue o ~rid ~conn:rid ~ts:0L
  done;
  Alcotest.(check int) "all issues counted" 3 (Obs.issued o);
  Alcotest.(check int) "third issue dropped at the cap" 1 (Obs.overflow o);
  (* the dropped request completes unnoticed, without corrupting books *)
  Obs.complete o ~rid:3 ~ts:50L ~ev_hi:(-1);
  Alcotest.(check int) "dropped request not counted complete" 0
    (Obs.completed_count o)

let test_totals_identity () =
  let o = Obs.create ~ncpus:2 () in
  Obs.set_baseline o [| 100L; 100L |];
  Obs.on_charge o ~cpu:0 ~start:100L ~cycles:300 ~phase:Obs.Papp;
  Obs.on_charge o ~cpu:0 ~start:400L ~cycles:100 ~phase:(Obs.Pkernel 1);
  Obs.on_charge o ~cpu:1 ~start:100L ~cycles:50 ~phase:Obs.Pinterp;
  Obs.on_charge o ~cpu:1 ~start:150L ~cycles:25 ~phase:Obs.Psched;
  (* cpu0 advanced 500 (all charged), cpu1 advanced 200 with only 75
     charged: the 125 uncharged cycles are the idle/blocked bucket *)
  let tt = Obs.totals o ~clks:[| 600L; 300L |] in
  Alcotest.(check int64) "total clock advance" 700L tt.Obs.t_total;
  Alcotest.(check int64) "app" 300L tt.Obs.t_app;
  Alcotest.(check int64) "kernel" 100L tt.Obs.t_kernel;
  Alcotest.(check int64) "interposer" 50L tt.Obs.t_interp;
  Alcotest.(check int64) "sched" 25L tt.Obs.t_sched;
  Alcotest.(check int64) "uncharged advance is blocked/idle" 225L
    tt.Obs.t_blocked;
  Alcotest.(check int64) "no accounting slack" 0L tt.Obs.t_other;
  Alcotest.(check int64) "rows sum to the total"
    tt.Obs.t_total
    (List.fold_left
       (fun acc (_, c) -> Int64.add acc c)
       0L (Obs.totals_rows tt));
  Alcotest.(check (list (pair int int64)))
    "kernel split by nr" [ (1, 100L) ] tt.Obs.t_kernel_by_nr

let test_sidecar_roundtrip () =
  let o = Obs.create ~topk:4 ~ncpus:1 () in
  List.iter
    (fun (rid, issue, complete, lo, hi) ->
      Obs.note_issue o ~rid ~conn:rid ~ts:issue;
      Obs.claim o ~cpu:0 ~conn:rid ~tid:1 ~ts:issue ~ev:lo;
      Obs.complete o ~rid ~ts:complete ~ev_hi:hi)
    [ (1, 10L, 110L, 3, 9); (2, 20L, 520L, 12, 30) ];
  let text = Obs.sidecar o in
  let rows = Obs.parse_sidecar text in
  Alcotest.(check int) "row per exemplar" 2 (List.length rows);
  (match rows with
  | slow :: _ ->
      Alcotest.(check int) "slowest first" 2 slow.Obs.x_rid;
      Alcotest.(check int64) "issue survives" 20L slow.Obs.x_issue;
      Alcotest.(check int64) "complete survives" 520L slow.Obs.x_complete;
      Alcotest.(check int) "ev_lo survives" 12 slow.Obs.x_ev_lo;
      Alcotest.(check int) "ev_hi survives" 30 slow.Obs.x_ev_hi;
      Alcotest.(check int64) "latency survives" 500L slow.Obs.x_latency
  | [] -> Alcotest.fail "no rows");
  (* a second round-trip is the identity *)
  Alcotest.(check bool) "parse is stable" true
    (Obs.parse_sidecar text = rows);
  match Obs.parse_sidecar "% not-a-spans-file\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "bad magic accepted"

(* --- machine-wide attribution on a real wrk run -------------------- *)

let wrk ~conns ~requests =
  D.Wrk
    { flavour = Workloads.Webserver.Nginx_like; size_kb = 2; conns; requests }

let test_wrk_attribution () =
  let o = Obs.create ~ncpus:1 () in
  let _a, k, _t =
    D.run_audited ~obs:o D.Lazypoline_m (wrk ~conns:4 ~requests:120)
  in
  Alcotest.(check int) "every request issued" 120 (Obs.issued o);
  Alcotest.(check int) "every request completed" 120 (Obs.completed_count o);
  Alcotest.(check int) "no in-flight overflow" 0 (Obs.overflow o);
  let clks =
    Array.map (fun (c : Types.cpu_slot) -> c.Types.clk) k.Types.cpus
  in
  let tt = Obs.totals o ~clks in
  Alcotest.(check bool) "ran" true (tt.Obs.t_total > 0L);
  Alcotest.(check int64) "phase rows sum to total cycles" tt.Obs.t_total
    (List.fold_left
       (fun acc (_, c) -> Int64.add acc c)
       0L (Obs.totals_rows tt));
  Alcotest.(check int64) "no unattributed time" 0L tt.Obs.t_other;
  Alcotest.(check bool) "app time attributed" true (tt.Obs.t_app > 0L);
  Alcotest.(check bool) "lazypoline interposer time attributed" true
    (tt.Obs.t_interp > 0L);
  Alcotest.(check bool) "kernel time attributed" true (tt.Obs.t_kernel > 0L);
  (* per-syscall kernel rows also add up *)
  Alcotest.(check int64) "kernel-by-nr sums to kernel" tt.Obs.t_kernel
    (List.fold_left
       (fun acc (_, c) -> Int64.add acc c)
       0L tt.Obs.t_kernel_by_nr);
  (* exemplars carry usable audit windows, slowest first *)
  let ex = Obs.exemplars o in
  Alcotest.(check bool) "reservoir populated" true (ex <> []);
  ignore
    (List.fold_left
       (fun prev r ->
         Alcotest.(check bool) "claimed: audit window valid" true
           (r.Obs.ev_lo >= 0 && r.Obs.ev_lo <= r.Obs.ev_hi);
         Alcotest.(check bool) "latency positive" true (Obs.latency r > 0L);
         Alcotest.(check bool) "sorted slowest first" true
           (Obs.latency r <= prev);
         Obs.latency r)
       Int64.max_int ex);
  Alcotest.(check int) "latency histogram saw every request" 120
    (Sim_stats.Stats.Log_hist.count (Obs.latency_hist o))

(* --- observation-only: the recorder never changes the run ---------- *)

let prog_src iters =
  Printf.sprintf
    {|
long main() {
  long i = 0;
  long acc = 0;
  while (i < %d) {
    acc = acc + syscall(39);
    syscall(1, 1, "x", 1);
    i = i + 1;
  }
  return acc & 7;
}
|}
    iters

(* The audit log string embeds the serialized app stream, the periodic
   checkpoint state hashes (registers + memory) and the final state
   hash, so string equality is machine-state equality. *)
let fingerprint ?obs ?prov mech workload =
  let a, k, _t = D.run_audited ?obs ?prov mech workload in
  ( D.log_string ~final_hash:(Kernel.audit_final_hash k a) a,
    Types.global_time k )

let prop_spans_observation_only =
  QCheck.Test.make ~count:12
    ~name:"span recorder never changes a run (six mechanisms, ±jit)"
    (QCheck.make
       ~print:(fun (mi, jit, iters) ->
         Printf.sprintf "%s jit=%b iters=%d"
           (D.mech_name (List.nth D.all_mechs mi))
           jit iters)
       QCheck.Gen.(
         triple (int_range 0 (List.length D.all_mechs - 1)) bool
           (int_range 3 20)))
    (fun (mi, jit, iters) ->
      let mech = List.nth D.all_mechs mi in
      let workload = D.Prog { src = prog_src iters; jit } in
      let log_off, cycles_off = fingerprint mech workload in
      let log_on, cycles_on =
        fingerprint ~obs:(Obs.create ~ncpus:1 ()) mech workload
      in
      log_on = log_off && cycles_on = cycles_off)

(* --- syscall provenance: call-site ledger + unwinder --------------- *)

module P = Sim_obs.Provenance

(* Three-deep call chain above the only syscall: exercises the rbp
   unwinder through real minicc frames. *)
let callgraph_src =
  {|
long f3() { return syscall(39); }
long f2() { return f3(); }
long f1() { return f2(); }
long main() {
  long i = 0;
  while (i < 6) { f1(); i = i + 1; }
  return 0;
}
|}

let run_prov ?prov mech =
  let p = match prov with Some p -> p | None -> P.create () in
  let _a, _k, _t =
    D.run_audited ~prov:p mech (D.Prog { src = callgraph_src; jit = false })
  in
  p

let getpid_site p =
  match List.find_opt (fun s -> s.P.s_nr = 39) (P.sites_sorted p) with
  | Some s -> s
  | None -> Alcotest.fail "no getpid call site in the ledger"

let test_prov_lazypoline_ledger () =
  let p = run_prov D.Lazypoline_m in
  (* the getpid site in f3 plus the exit site in the start shim *)
  Alcotest.(check bool) "at least two sites" true (P.distinct_sites p >= 2);
  let s = getpid_site p in
  Alcotest.(check int) "one dispatch per iteration" 6 (P.site_count s);
  (* lazy rewriting's per-site signature: first hit via SIGSYS
     (path 0), the rest on the rewritten fast path (path 1) *)
  Alcotest.(check int) "exactly one SIGSYS dispatch" 1 s.P.s_paths.(0);
  Alcotest.(check int) "remaining hits on the fast path" 5 s.P.s_paths.(1);
  (match P.rewrite_of p s.P.s_pc with
  | Some r ->
      Alcotest.(check string) "rewrite stamped lazy" "lazy"
        (P.rewrite_kind_name r.P.rw_kind)
  | None -> Alcotest.fail "hot site not marked rewritten");
  (* symbolization: the minicc symbol table resolves the site *)
  Alcotest.(check bool) "site symbolizes into f3" true
    (let sym = P.symbolize p s.P.s_pc in
     String.length sym >= 5 && String.sub sym 0 5 = "fn_f3");
  Alcotest.(check bool) "kernel cycles attributed" true (P.site_cycles s > 0.0);
  Alcotest.(check bool) "first_ev recorded" true (s.P.s_first_ev >= 0);
  (* unwinder health: everything resolves except the start shim's
     exit (rbp = 0 by design), and nothing hits the depth cap *)
  Alcotest.(check bool) "success rate >= 6/7" true
    (P.unwind_success_rate p >= 6.0 /. 7.0);
  Alcotest.(check int) "no truncation at default depth" 0
    (P.unwind_truncated p);
  (* the folded flamegraph carries the full f1 -> f2 -> f3 chain *)
  let folded = P.folded ~comm:"t" p in
  let has sub =
    let n = String.length sub and len = String.length folded in
    let rec go i = i + n <= len && (String.sub folded i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "folded has caller f1" true (has ";fn_f1");
  Alcotest.(check bool) "folded has caller f2" true (has ";fn_f2");
  Alcotest.(check bool) "folded has leaf f3" true (has ";fn_f3")

let test_prov_unwind_depth_cap () =
  let p = P.create ~max_depth:2 () in
  let (_ : P.t) = run_prov ~prov:p D.Raw in
  (* the 4-deep chain (f2, f1, main, start above the leaf) cannot fit
     in 2 frames: the walker must stop at the cap, not fault *)
  Alcotest.(check bool) "deep stacks truncated" true
    (P.unwind_truncated p > 0);
  (* capped stacks still count as resolved and still emit folded
     lines of at most comm + 2 callers + leaf *)
  let s = getpid_site p in
  Alcotest.(check int) "every dispatch recorded" 6 (P.site_count s);
  String.split_on_char '\n' (P.folded ~comm:"t" p)
  |> List.iter (fun line ->
         if line <> "" then
           Alcotest.(check bool)
             (Printf.sprintf "folded line bounded by depth cap: %s" line)
             true
             (List.length (String.split_on_char ';' line) <= 4))

let test_prov_zpoline_sweep () =
  let p = run_prov D.Zpoline in
  Alcotest.(check bool) "sites observed" true (P.distinct_sites p >= 2);
  (* the load-time sweep rewrote every site before first execution:
     every observed dispatch takes the fast path, and every observed
     site is already stamped "sweep" *)
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "site 0x%x fast-path only" s.P.s_pc)
        (P.site_count s) s.P.s_paths.(1);
      match P.rewrite_of p s.P.s_pc with
      | Some r ->
          Alcotest.(check string) "stamped by the sweep" "sweep"
            (P.rewrite_kind_name r.P.rw_kind)
      | None -> Alcotest.failf "site 0x%x not marked rewritten" s.P.s_pc)
    (P.sites_sorted p)

let test_sidecar_site_roundtrip () =
  (* /2 appends the hottest call site of each exemplar's window *)
  let o = Obs.create ~topk:4 ~ncpus:1 () in
  Obs.note_issue o ~rid:1 ~conn:1 ~ts:10L;
  Obs.claim o ~cpu:0 ~conn:1 ~tid:1 ~ts:10L ~ev:0;
  Obs.note_site o ~cpu:0 ~site:0x400062 ~cycles:50L;
  Obs.note_site o ~cpu:0 ~site:0x400099 ~cycles:900L;
  Obs.complete o ~rid:1 ~ts:110L ~ev_hi:4;
  (match Obs.parse_sidecar (Obs.sidecar o) with
  | [ row ] ->
      Alcotest.(check int) "hottest site survives the round-trip" 0x400099
        row.Obs.x_site
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows));
  (* a site-less /1 sidecar still parses, with the site unknown *)
  match
    Obs.parse_sidecar "% simtrace-spans/1\nR 1 10 110 3 9 100\n"
  with
  | [ row ] ->
      Alcotest.(check int) "v1 row accepted" 1 row.Obs.x_rid;
      Alcotest.(check int) "v1 site unknown" (-1) row.Obs.x_site
  | rows -> Alcotest.failf "expected one v1 row, got %d" (List.length rows)

let prop_prov_observation_only =
  QCheck.Test.make ~count:12
    ~name:"provenance ledger never changes a run (six mechanisms, ±jit)"
    (QCheck.make
       ~print:(fun (mi, jit, iters) ->
         Printf.sprintf "%s jit=%b iters=%d"
           (D.mech_name (List.nth D.all_mechs mi))
           jit iters)
       QCheck.Gen.(
         triple (int_range 0 (List.length D.all_mechs - 1)) bool
           (int_range 3 20)))
    (fun (mi, jit, iters) ->
      let mech = List.nth D.all_mechs mi in
      let workload = D.Prog { src = prog_src iters; jit } in
      let log_off, cycles_off = fingerprint mech workload in
      let log_on, cycles_on = fingerprint ~prov:(P.create ()) mech workload in
      log_on = log_off && cycles_on = cycles_off)

let test_spans_off_identity_wrk () =
  (* Same property on the macrobench path (wrk + webserver + epoll),
     one mechanism; the bench sweeps all six at scale. *)
  let workload = wrk ~conns:2 ~requests:60 in
  let log_off, cycles_off = fingerprint D.Zpoline workload in
  let log_on, cycles_on =
    fingerprint ~obs:(Obs.create ~ncpus:1 ()) D.Zpoline workload
  in
  Alcotest.(check int64) "cycles identical" cycles_off cycles_on;
  Alcotest.(check string) "audit log identical" log_off log_on

let tests =
  [
    Alcotest.test_case "request lifecycle + phase accounting" `Quick
      test_lifecycle;
    Alcotest.test_case "top-k exemplar reservoir" `Quick test_reservoir_topk;
    Alcotest.test_case "in-flight overflow accounting" `Quick
      test_inflight_overflow;
    Alcotest.test_case "totals: attribution identity" `Quick
      test_totals_identity;
    Alcotest.test_case "sidecar round-trip" `Quick test_sidecar_roundtrip;
    Alcotest.test_case "wrk run: full attribution" `Quick
      test_wrk_attribution;
    QCheck_alcotest.to_alcotest prop_spans_observation_only;
    Alcotest.test_case "wrk run: recorder off-identity" `Quick
      test_spans_off_identity_wrk;
    Alcotest.test_case "provenance: lazypoline per-site ledger" `Quick
      test_prov_lazypoline_ledger;
    Alcotest.test_case "provenance: unwinder depth cap" `Quick
      test_prov_unwind_depth_cap;
    Alcotest.test_case "provenance: zpoline sweep stamps" `Quick
      test_prov_zpoline_sweep;
    Alcotest.test_case "sidecar /2: hottest-site round-trip" `Quick
      test_sidecar_site_roundtrip;
    QCheck_alcotest.to_alcotest prop_prov_observation_only;
  ]
