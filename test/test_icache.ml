(** Decoded-instruction cache: SMC-aware invalidation and
    observational equivalence at the kernel level.

    The headline property (the paper's own correctness hazard): a task
    whose code is rewritten mid-run — by the lazypoline SIGSYS
    rewriter, by mprotect/munmap, by JIT emission — must execute the
    *new* bytes on the very next visit to the patched address.  A
    stale cached decode of a patched [syscall] is precisely zpoline's
    data-corruption hazard.

    The cache must also be invisible: syscall traces and simulated
    cycle counts with the icache on must equal the cache-disabled
    run's exactly. *)

open Sim_isa
open Sim_mem
open Sim_cpu
open Sim_kernel
module Micro = Workloads.Microbench_prog
module Hook = Lazypoline.Hook

let i64 = Int64.of_int

(* Collect the kernel-side syscall trace as (tid, nr, result). *)
let with_strace (k : Types.kernel) =
  let trace = ref [] in
  k.Types.strace <-
    Some (fun t nr res -> trace := (t.Types.tid, nr, res) :: !trace);
  trace

(** {1 Headline: lazypoline's lazy rewrite under the icache} *)

(* Run the paper's microbenchmark WITHOUT pre-rewriting the site, so
   the first iteration takes the SIGSYS slow path and patches the hot
   [syscall] — a site the icache has already decoded — to [call rax].
   If the cache served the stale decode, every subsequent iteration
   would raise SIGSYS again (the selector is BLOCK once the fast path
   returns) and [slow_hits] would equal the iteration count. *)
let run_lazy_rewrite ~icache ~iters =
  let k = Kernel.create ~icache () in
  let blob =
    Sim_asm.Asm.assemble ~base:Loader.code_base
      (Micro.bench_items ~iters ~nr:500)
  in
  let img =
    Loader.image ~entry:(Sim_asm.Asm.symbol blob "start") ~text:blob ()
  in
  let t = Kernel.spawn k img in
  let trace = with_strace k in
  let st = Lazypoline.install ~preserve_xstate:true k t (Hook.dummy ()) in
  let ok = Kernel.run_until_exit ~max_slices:40_000_000 k in
  Alcotest.(check bool) "terminated" true ok;
  (st.Lazypoline.stats, t, !trace)

let test_lazy_rewrite_observed () =
  let iters = 50 in
  let stats, t, _ = run_lazy_rewrite ~icache:true ~iters in
  (* Exactly two distinct syscall sites exist (the loop body and
     exit_group): one slow-path rewrite each, never a re-trap. *)
  Alcotest.(check int) "rewrites" 2 stats.Lazypoline.rewrites;
  Alcotest.(check int) "slow hits" 2 stats.Lazypoline.slow_hits;
  Alcotest.(check bool) "fast path took over" true
    (stats.Lazypoline.fast_hits >= iters);
  (* The rewrite invalidated a page the cache was executing from. *)
  Alcotest.(check bool) "icache invalidated" true
    ((Icache.stats t.Types.icache).Icache.invalidations > 0);
  Alcotest.(check bool) "icache was actually used" true
    ((Icache.stats t.Types.icache).Icache.hits > 0)

let test_lazy_rewrite_equivalent () =
  let iters = 50 in
  let stats_c, t_c, trace_c = run_lazy_rewrite ~icache:true ~iters in
  let stats_u, t_u, trace_u = run_lazy_rewrite ~icache:false ~iters in
  Alcotest.(check int) "slow hits equal" stats_u.Lazypoline.slow_hits
    stats_c.Lazypoline.slow_hits;
  Alcotest.(check int) "fast hits equal" stats_u.Lazypoline.fast_hits
    stats_c.Lazypoline.fast_hits;
  Alcotest.(check bool) "syscall traces equal" true (trace_c = trace_u);
  Alcotest.(check int64) "simulated cycles equal" t_u.Types.tcycles
    t_c.Types.tcycles

(** {1 The paper's microbenchmark: cache must not change the numbers} *)

let test_microbench_cycles_identical () =
  List.iter
    (fun config ->
      let on = Micro.run ~iters:500 ~icache:true config in
      let off = Micro.run ~iters:500 ~icache:false config in
      Alcotest.(check (float 0.0))
        (Micro.config_name config ^ " cycles/iter")
        off on)
    [
      Micro.Native; Micro.Zpoline; Micro.Lazypoline_full;
      Micro.Lazypoline_noxstate; Micro.Sud;
    ]

(** {1 minicc JIT: emission + mprotect invalidate; traces match} *)

let jit_src =
  "long main() { long i; long acc; acc = 0; for (i = 0; i < 5; i = i + 1) { \
   acc = acc + syscall(39); } return acc > 0; }"

let run_jit ~icache =
  let k = Kernel.create ~icache () in
  let trace = with_strace k in
  let code, _ = Minicc.Jit.run ~kernel:(Some k) jit_src in
  (code, !trace)

let test_jit_trace_equivalent () =
  let code_c, trace_c = run_jit ~icache:true in
  let code_u, trace_u = run_jit ~icache:false in
  Alcotest.(check int) "exit codes equal" code_u code_c;
  Alcotest.(check bool) "traces nonempty" true (List.length trace_c > 5);
  Alcotest.(check bool) "syscall traces equal" true (trace_c = trace_u)

(* JIT emission under an interposer that must still see the JITted
   syscalls (lazypoline's exhaustiveness) — with the icache on. *)
let test_jit_under_lazypoline () =
  let run ~icache =
    let k = Kernel.create ~icache () in
    let t = Kernel.spawn k (Minicc.Jit.driver_image jit_src) in
    let hook, rec_ = Hook.tracing () in
    ignore (Lazypoline.install k t hook);
    Alcotest.(check bool) "terminated" true
      (Kernel.run_until_exit ~max_slices:2_000_000 k);
    (t.Types.exit_code, List.map fst (Hook.recorded rec_))
  in
  let code_c, nrs_c = run ~icache:true in
  let code_u, nrs_u = run ~icache:false in
  Alcotest.(check int) "exit codes equal" code_u code_c;
  Alcotest.(check bool) "hooked syscall numbers equal" true (nrs_c = nrs_u);
  Alcotest.(check bool) "JITted getpid hooked" true
    (List.mem Defs.sys_getpid nrs_c)

(** {1 mprotect / munmap / remap invalidation (CPU level)} *)

let step_to_halt ?icache ?(fuel = 1000) c m =
  let rec go fuel =
    if fuel = 0 then Alcotest.fail "fuel exhausted"
    else
      match Cpu.step ?icache c m with
      | Cpu.Stepped -> go (fuel - 1)
      | o -> o
  in
  go fuel

let assemble_at base items =
  (Sim_asm.Asm.assemble ~base items).Sim_asm.Asm.bytes

let prog_return v =
  let open Sim_asm.Asm in
  [ mov_ri Isa.rax v; hlt ]

let fresh_cpu () =
  let c = Cpu.create () in
  c.rip <- 0x1000;
  c

let test_mprotect_invalidates () =
  let m = Mem.create () in
  Mem.map m ~addr:0x1000 ~len:4096 ~perm:Mem.rx;
  Mem.poke_bytes m 0x1000 (assemble_at 0x1000 (prog_return 1));
  let ic = Icache.create () in
  let c = fresh_cpu () in
  (match step_to_halt ~icache:ic c m with
  | Cpu.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  Alcotest.(check int64) "first run" 1L (Cpu.peek_reg c Isa.rax);
  (* Drop X: the cached page must not keep the code executable. *)
  (match Mem.protect m ~addr:0x1000 ~len:4096 ~perm:Mem.rw with
  | Ok () -> ()
  | Error `Unmapped -> Alcotest.fail "protect failed");
  let c2 = fresh_cpu () in
  (match step_to_halt ~icache:ic c2 m with
  | Cpu.Fault (0x1000, Mem.Exec) -> ()
  | _ -> Alcotest.fail "expected exec fault after mprotect");
  (* Patch while writable, restore X: new bytes must be decoded. *)
  Mem.write_bytes m 0x1000 (assemble_at 0x1000 (prog_return 2));
  (match Mem.protect m ~addr:0x1000 ~len:4096 ~perm:Mem.rx with
  | Ok () -> ()
  | Error `Unmapped -> Alcotest.fail "protect failed");
  let c3 = fresh_cpu () in
  (match step_to_halt ~icache:ic c3 m with
  | Cpu.Halted -> ()
  | _ -> Alcotest.fail "expected halt");
  Alcotest.(check int64) "patched run" 2L (Cpu.peek_reg c3 Isa.rax)

let test_munmap_remap_invalidates () =
  let m = Mem.create () in
  Mem.map m ~addr:0x1000 ~len:4096 ~perm:Mem.rx;
  Mem.poke_bytes m 0x1000 (assemble_at 0x1000 (prog_return 7));
  let ic = Icache.create () in
  let c = fresh_cpu () in
  ignore (step_to_halt ~icache:ic c m);
  Alcotest.(check int64) "before" 7L (Cpu.peek_reg c Isa.rax);
  Mem.unmap m ~addr:0x1000 ~len:4096;
  let c2 = fresh_cpu () in
  (match step_to_halt ~icache:ic c2 m with
  | Cpu.Fault (0x1000, Mem.Exec) -> ()
  | _ -> Alcotest.fail "expected fault on unmapped page");
  (* Same page number, fresh mapping, different program. *)
  Mem.map m ~addr:0x1000 ~len:4096 ~perm:Mem.rx;
  Mem.poke_bytes m 0x1000 (assemble_at 0x1000 (prog_return 9));
  let c3 = fresh_cpu () in
  ignore (step_to_halt ~icache:ic c3 m);
  Alcotest.(check int64) "after remap" 9L (Cpu.peek_reg c3 Isa.rax)

let test_counters_move () =
  (* Sanity on the reported statistics: a hot loop is hit-dominated. *)
  let m = Mem.create () in
  let open Sim_asm.Asm in
  let code =
    assemble_at 0x1000
      [
        mov_ri Isa.rbx 200;
        Label "loop";
        sub_ri Isa.rbx 1;
        cmp_ri Isa.rbx 0;
        Jcc_l (Isa.Ne, "loop");
        hlt;
      ]
  in
  Mem.map m ~addr:0x1000 ~len:4096 ~perm:Mem.rx;
  Mem.poke_bytes m 0x1000 code;
  let ic = Icache.create () in
  let c = fresh_cpu () in
  ignore (step_to_halt ~icache:ic ~fuel:2000 c m);
  let s = Icache.stats ic in
  Alcotest.(check bool) "hits dominate" true (s.Icache.hits > 500);
  Alcotest.(check bool) "few misses" true
    (s.Icache.misses < 10 && s.Icache.misses > 0);
  Alcotest.(check int) "no invalidations" 0 s.Icache.invalidations

let test_fork_gets_private_cache () =
  (* After fork, parent SMC must not leak into the child's decodes:
     the child re-executes the original bytes while the parent patched
     its own copy.  (Exit codes prove which bytes each executed.) *)
  let open Sim_asm.Asm in
  let items =
    [
      mov_ri Isa.rax Defs.sys_fork;
      syscall;
      cmp_ri Isa.rax 0;
      Jcc_l (Isa.Eq, "child");
      (* parent: patch 'probe' from [mov rdi,1] to [mov rdi,2]-bytes;
         both parent and child then execute 'probe' and exit rdi. *)
      Lea_ip (Isa.r10, "probe");
      mov_ri Isa.r9 2;
      (* overwrite the low immediate byte of the mov_ri32 at probe+2 *)
      add_ri Isa.r10 2;
      store8 Isa.r10 0 Isa.r9;
      Jmp_l "probe";
      Label "child";
      (* give the parent time to patch its copy *)
      mov_ri Isa.rcx 2000;
      Label "spin";
      sub_ri Isa.rcx 1;
      cmp_ri Isa.rcx 0;
      Jcc_l (Isa.Ne, "spin");
      Label "probe";
      (* C7 r imm32: the immediate's low byte sits at probe+2 *)
      i (Isa.Mov_ri32 (Isa.rdi, 1l));
      mov_ri Isa.rax Defs.sys_exit;
      syscall;
    ]
  in
  let k = Kernel.create ~icache:true () in
  let blob = Sim_asm.Asm.assemble ~base:Loader.code_base items in
  (* Code must be writable for the parent's self-patch. *)
  let img =
    {
      Types.img_segments = [ (blob.Sim_asm.Asm.base, blob.Sim_asm.Asm.bytes, Mem.rwx) ];
      img_entry = blob.Sim_asm.Asm.base;
      img_stack_top = Loader.default_stack_top;
      img_stack_size = Loader.default_stack_size;
      img_symbols = [];
    }
  in
  let parent = Kernel.spawn k img in
  Alcotest.(check bool) "terminated" true
    (Kernel.run_until_exit ~max_slices:1_000_000 k);
  Alcotest.(check int) "parent executed patched bytes" 2
    parent.Types.exit_code;
  let child_code =
    Hashtbl.fold
      (fun _ (t : Types.task) acc ->
        if t.Types.tid <> parent.Types.tid then Some t.Types.exit_code else acc)
      k.Types.tasks None
  in
  Alcotest.(check (option int)) "child executed original bytes" (Some 1)
    child_code

(** {1 Threaded-code block engine: boundary hazards} *)

module D = Harness.Divergence

(* Run a raw image (no interposer, so the block engine is eligible)
   twice — blocks on, blocks off — and return exit code + task
   cycles.  [perm] is rwx for the self-modifying tests. *)
let run_blocks ~blocks ?(perm = Mem.rx) items =
  let k = Kernel.create ~icache:true ~blocks () in
  let blob = Sim_asm.Asm.assemble ~base:Loader.code_base items in
  let img =
    {
      Types.img_segments =
        [ (blob.Sim_asm.Asm.base, blob.Sim_asm.Asm.bytes, perm) ];
      img_entry = blob.Sim_asm.Asm.base;
      img_stack_top = Loader.default_stack_top;
      img_stack_size = Loader.default_stack_size;
      img_symbols = [];
    }
  in
  let t = Kernel.spawn k img in
  Alcotest.(check bool) "terminated" true
    (Kernel.run_until_exit ~max_slices:2_000_000 k);
  (t.Types.exit_code, t.Types.tcycles)

let check_engine_invisible name ?perm items =
  let _, _, _, i0, _ = Icache.block_totals () in
  let code_on, cyc_on = run_blocks ~blocks:true ?perm items in
  let _, _, _, i1, _ = Icache.block_totals () in
  let code_off, cyc_off = run_blocks ~blocks:false ?perm items in
  Alcotest.(check int) (name ^ ": exit codes equal") code_off code_on;
  Alcotest.(check int64) (name ^ ": cycles equal") cyc_off cyc_on;
  Alcotest.(check bool) (name ^ ": block engine exercised") true (i1 > i0)

let test_block_midblock_smc () =
  (* A store that patches a LATER instruction of the same straight-line
     superblock (the immediate of the mov at probe+2): the block was
     compiled from the pre-patch bytes, so the runner must notice the
     write, exit the block and resume interpreting the new bytes.  Both
     runs exit with the patched value. *)
  let open Sim_asm.Asm in
  let items =
    [
      mov_ri Isa.rbx 12;
      Label "loop";
      Lea_ip (Isa.r10, "probe");
      add_ri Isa.r10 2;
      mov_ri Isa.r9 2;
      store8 Isa.r10 0 Isa.r9;
      Label "probe";
      (* C7 r imm32: the immediate's low byte sits at probe+2 *)
      i (Isa.Mov_ri32 (Isa.rdi, 1l));
      sub_ri Isa.rbx 1;
      cmp_ri Isa.rbx 0;
      Jcc_l (Isa.Ne, "loop");
      mov_ri Isa.rax Defs.sys_exit;
      syscall;
    ]
  in
  let _, _, k0, _, _ = Icache.block_totals () in
  let code_on, cyc_on = run_blocks ~blocks:true ~perm:Mem.rwx items in
  let _, _, k1, _, _ = Icache.block_totals () in
  let code_off, cyc_off = run_blocks ~blocks:false ~perm:Mem.rwx items in
  Alcotest.(check int) "executed patched bytes" 2 code_on;
  Alcotest.(check int) "exit codes equal" code_off code_on;
  Alcotest.(check int64) "cycles equal" cyc_off cyc_on;
  Alcotest.(check bool) "SMC killed a block" true (k1 > k0)

let test_block_page_straddle () =
  (* A 10-byte mov whose encoding straddles the page seam: the block
     compiler must either handle the straddler or fall back — and in
     both cases stay bit-identical to the interpreter. *)
  let open Sim_asm.Asm in
  (* mov_ri is 10 bytes; place the body 3 bytes before the seam. *)
  let pad = List.init (Mem.page_size - 3 - 10) (fun _ -> nop) in
  let items =
    [ mov_ri Isa.rbx 8; Label "top" ]
    @ pad
    @ [
        Label "body";
        mov_ri64 Isa.rdi 1L;
        sub_ri Isa.rbx 1;
        cmp_ri Isa.rbx 0;
        Jcc_l (Isa.Ne, "top");
        mov_ri Isa.rax Defs.sys_exit;
        syscall;
      ]
  in
  let blob = Sim_asm.Asm.assemble ~base:Loader.code_base items in
  Alcotest.(check int) "body starts 3 bytes before the seam"
    (Mem.page_size - 3)
    (Sim_asm.Asm.symbol blob "body" - Loader.code_base);
  check_engine_invisible "page straddle" items

let test_block_single_insn_at_seam () =
  (* A jump target on the very last byte of a page: the superblock
     starting there holds exactly one instruction before the page (and
     hence the block) ends. *)
  let open Sim_asm.Asm in
  (* prefix is two 10-byte movs + a 5-byte jmp = 25 bytes. *)
  let pad = List.init (Mem.page_size - 1 - 25) (fun _ -> nop) in
  let items =
    [ mov_ri Isa.rbx 8; mov_ri Isa.rdi 1; Label "top"; Jmp_l "seam" ]
    @ pad
    @ [
        Label "seam";
        nop;
        sub_ri Isa.rbx 1;
        cmp_ri Isa.rbx 0;
        Jcc_l (Isa.Ne, "top");
        mov_ri Isa.rax Defs.sys_exit;
        syscall;
      ]
  in
  let blob = Sim_asm.Asm.assemble ~base:Loader.code_base items in
  Alcotest.(check int) "seam target on the page's last byte"
    (Mem.page_size - 1)
    (Sim_asm.Asm.symbol blob "seam" - Loader.code_base);
  check_engine_invisible "single-instruction block at seam" items

let engine_identity_prop =
  (* The PR-6 acceptance property: for every mechanism, an audited run
     with the block engine is bit-identical (event stream, checkpoints,
     final state hash, cycle count) to the interpreter run. *)
  QCheck.Test.make ~name:"block engine bit-identical (six mechanisms)"
    ~count:12
    QCheck.(pair (int_range 0 5) (int_range 1 12))
    (fun (mi, iters) ->
      let mech = List.nth D.all_mechs mi in
      let ok, detail =
        D.engine_identical mech (D.Micro { iters; nr = Defs.sys_getpid })
      in
      if not ok then QCheck.Test.fail_report detail;
      true)

let tests =
  [
    Alcotest.test_case "lazypoline rewrite observed (headline)" `Quick
      test_lazy_rewrite_observed;
    Alcotest.test_case "lazypoline rewrite: icache invisible" `Quick
      test_lazy_rewrite_equivalent;
    Alcotest.test_case "microbench cycles identical on/off" `Quick
      test_microbench_cycles_identical;
    Alcotest.test_case "minicc JIT trace equivalence" `Quick
      test_jit_trace_equivalent;
    Alcotest.test_case "JIT under lazypoline with icache" `Quick
      test_jit_under_lazypoline;
    Alcotest.test_case "mprotect invalidates" `Quick test_mprotect_invalidates;
    Alcotest.test_case "munmap + remap invalidates" `Quick
      test_munmap_remap_invalidates;
    Alcotest.test_case "hit/miss/invalidation counters" `Quick
      test_counters_move;
    Alcotest.test_case "fork isolates caches" `Quick
      test_fork_gets_private_cache;
    Alcotest.test_case "block engine: mid-block SMC" `Quick
      test_block_midblock_smc;
    Alcotest.test_case "block engine: page-straddling instruction" `Quick
      test_block_page_straddle;
    Alcotest.test_case "block engine: single-instruction block at seam" `Quick
      test_block_single_insn_at_seam;
    QCheck_alcotest.to_alcotest engine_identity_prop;
  ]
