(** Coverage for kernel surfaces not directly exercised elsewhere:
    dup, fcntl, lseek, getcwd/chdir, rename-across-dirs, sendfile
    semantics, epoll ctl MOD/DEL, futex, tgkill, brk, partial writes
    and EAGAIN.  Mostly driven through minicc for brevity. *)

open Sim_kernel

let run ?(setup = fun _ -> ()) src =
  let k = Kernel.create () in
  setup k;
  let t = Kernel.spawn k (Minicc.Codegen.compile_to_image src) in
  if not (Kernel.run_until_exit ~max_slices:400_000 k) then
    Alcotest.fail "did not terminate";
  (t.Types.exit_code, k)

let check ?setup msg expected src =
  let code, _ = run ?setup src in
  Alcotest.(check int) msg expected code

let with_file path contents k = ignore (Vfs.add_file k.Types.vfs path contents)

let test_dup_shares_offset () =
  (* dup'd fds share the open file description, hence the offset. *)
  check ~setup:(with_file "/f" "abcdef") "dup shares offset"
    (Char.code 'c')
    {|
long main() {
  char b[8];
  long fd = syscall(2, "/f", 0, 0);
  long fd2 = syscall(32, fd);
  syscall(0, fd, b, 2);          /* consume "ab" via fd */
  syscall(0, fd2, b, 1);         /* fd2 must see "c" */
  return b[0];
}
|}

let test_fcntl_getfl_setfl () =
  check "fcntl roundtrip" Defs.o_nonblock
    {|
long main() {
  long fd = syscall(41, 0, 0, 0);        /* socket */
  syscall(72, fd, 4, 2048);              /* F_SETFL O_NONBLOCK */
  return syscall(72, fd, 3, 0);          /* F_GETFL */
}
|}

let test_lseek_whences () =
  check ~setup:(with_file "/f" "0123456789") "lseek SET/CUR/END" 0
    {|
long main() {
  char b[4];
  long fd = syscall(2, "/f", 0, 0);
  if (syscall(8, fd, 4, 0) != 4) return 1;     /* SEEK_SET */
  syscall(0, fd, b, 1);
  if (b[0] != '4') return 2;
  if (syscall(8, fd, 2, 1) != 7) return 3;     /* SEEK_CUR */
  if (syscall(8, fd, -3, 2) != 7) return 4;    /* SEEK_END */
  syscall(0, fd, b, 1);
  if (b[0] != '7') return 5;
  if (syscall(8, fd, -99, 0) != -22) return 6; /* EINVAL */
  return 0;
}
|}

let test_getcwd_chdir () =
  check "getcwd after chdir" 0
    {|
long main() {
  char b[64];
  syscall(83, "/work", 493);            /* mkdir */
  if (syscall(80, "/work") != 0) return 1;
  long n = syscall(79, b, 64);
  if (n <= 0) return 2;
  if (b[0] != '/') return 3;
  if (b[1] != 'w') return 4;
  return 0;
}
|}

let test_rename_across_dirs () =
  check ~setup:(with_file "/a/f" "payload") "rename across directories" 0
    {|
long main() {
  char b[16];
  syscall(83, "/b", 493);
  if (syscall(82, "/a/f", "/b/g") != 0) return 1;
  if (syscall(2, "/a/f", 0, 0) != -2) return 2;   /* ENOENT */
  long fd = syscall(2, "/b/g", 0, 0);
  if (fd < 0) return 3;
  if (syscall(0, fd, b, 16) != 7) return 4;
  return 0;
}
|}

let test_brk_grows_heap () =
  check "brk allocates writable memory" 77
    {|
long main() {
  long base = syscall(12, 0);
  if (syscall(12, base + 8192) != base + 8192) return 1;
  poke64(base + 4096, 77);
  return peek64(base + 4096);
}
|}

let test_sendfile_advances_offset () =
  check ~setup:(with_file "/f" "0123456789") "sendfile uses file offset" 0
    {|
long main() {
  char b[16];
  char p[16];
  syscall(22, p);                        /* pipe */
  long fd = syscall(2, "/f", 0, 0);
  if (syscall(40, peek64(p + 8), fd, 0, 4) != 4) return 1;
  if (syscall(40, peek64(p + 8), fd, 0, 4) != 4) return 2;
  if (syscall(0, peek64(p), b, 16) != 8) return 3;
  if (b[0] != '0') return 4;
  if (b[4] != '4') return 5;             /* second call continued */
  return 0;
}
|}

let test_epoll_mod_del () =
  check "epoll ctl MOD and DEL" 0
    {|
long main() {
  char ev[16];
  char out[64];
  char p[16];
  syscall(22, p);
  long rfd = peek64(p);
  long ep = syscall(291, 0);
  poke64(ev, 1);                         /* EPOLLIN */
  poke64(ev + 8, 777);                   /* user data */
  syscall(233, ep, 1, rfd, ev);          /* ADD */
  syscall(1, peek64(p + 8), "x", 1);     /* make readable */
  if (syscall(232, ep, out, 4, 0) != 1) return 1;
  if (peek64(out + 8) != 777) return 2;
  poke64(ev + 8, 888);
  syscall(233, ep, 3, rfd, ev);          /* MOD */
  if (syscall(232, ep, out, 4, 0) != 1) return 3;
  if (peek64(out + 8) != 888) return 4;
  syscall(233, ep, 2, rfd, 0);           /* DEL */
  if (syscall(232, ep, out, 4, 0) != 0) return 5;
  return 0;
}
|}

let test_nonblocking_read_eagain () =
  check "O_NONBLOCK read returns EAGAIN" 0
    {|
long main() {
  char b[4];
  char p[16];
  syscall(22, p);
  long rfd = peek64(p);
  syscall(72, rfd, 4, 2048);             /* F_SETFL O_NONBLOCK */
  if (syscall(0, rfd, b, 1) != -11) return 1;   /* EAGAIN */
  syscall(1, peek64(p + 8), "z", 1);
  if (syscall(0, rfd, b, 1) != 1) return 2;
  if (b[0] != 'z') return 3;
  return 0;
}
|}

let test_write_to_closed_pipe_epipe () =
  check "EPIPE with SIGPIPE ignored" 0
    {|
long main() {
  char act[32];
  char p[16];
  syscall(22, p);
  /* ignore SIGPIPE (handler = SIG_IGN = 1) */
  poke64(act, 1);
  poke64(act + 8, 0); poke64(act + 16, 0); poke64(act + 24, 0);
  syscall(13, 13, act, 0);
  syscall(3, peek64(p));                 /* close read end */
  if (syscall(1, peek64(p + 8), "x", 1) != -32) return 1;  /* EPIPE */
  return 0;
}
|}

let test_write_to_closed_pipe_sigpipe_kills () =
  let code, _ =
    run
      {|
long main() {
  char p[16];
  syscall(22, p);
  syscall(3, peek64(p));
  syscall(1, peek64(p + 8), "x", 1);
  return 0;
}
|}
  in
  Alcotest.(check int) "killed by SIGPIPE" (128 + Defs.sigpipe) code

let test_tgkill_thread_directed () =
  (* tgkill posts to a specific thread id. *)
  check "tgkill self" (128 + Defs.sigusr2)
    {|
long main() {
  long tid = syscall(186);
  syscall(234, syscall(39), tid, 12);    /* SIGUSR2, default kills */
  return 0;
}
|}

let test_futex_wait_wake () =
  (* Two threads synchronise via futex (assembly: needs clone). *)
  let open Sim_asm.Asm in
  let open Sim_isa in
  let prog =
    [
      (* shared page *)
      mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 8192;
      mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
      mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
      mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
      mov_ri Isa.rax Defs.sys_mmap; syscall;
      (* clone a thread *)
      mov_ri Isa.rdi
        (Defs.clone_vm lor Defs.clone_files lor Defs.clone_sighand
       lor Defs.clone_thread);
      mov_ri Isa.rsi (0x9000 + 8192 - 256);
      mov_ri Isa.rdx 0; mov_ri Isa.r10 0; mov_ri Isa.r8 0;
      mov_ri Isa.rax Defs.sys_clone; syscall;
      cmp_ri Isa.rax 0;
      Jcc_l (Isa.Eq, "thread");
      (* main: futex_wait(0x9000, 0) *)
      mov_ri Isa.rdi 0x9000;
      mov_ri Isa.rsi Defs.futex_wait;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_futex; syscall;
      (* woken: read the value the thread wrote *)
      mov_ri Isa.rbx 0x9100;
      load Isa.rdi Isa.rbx 0;
      mov_ri Isa.rax Defs.sys_exit_group; syscall;
      Label "thread";
      (* publish 9, flip the futex word, wake *)
      mov_ri Isa.rbx 0x9100;
      mov_ri Isa.rcx 9;
      store Isa.rbx 0 Isa.rcx;
      mov_ri Isa.rbx 0x9000;
      mov_ri Isa.rcx 1;
      store Isa.rbx 0 Isa.rcx;
      mov_ri Isa.rdi 0x9000;
      mov_ri Isa.rsi Defs.futex_wake;
      mov_ri Isa.rdx 1;
      mov_ri Isa.rax Defs.sys_futex; syscall;
      mov_ri Isa.rdi 0;
      mov_ri Isa.rax Defs.sys_exit; syscall;
    ]
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "futex handshake" 9 code

let test_getdents_pagination () =
  check
    ~setup:(fun k ->
      for i = 0 to 9 do
        ignore (Vfs.add_file k.Types.vfs (Printf.sprintf "/d/f%d" i) "x")
      done)
    "getdents paginates" 0
    {|
long main() {
  char ents[192];                        /* room for 3 records */
  long fd = syscall(2, "/d", 0, 0);
  long total = 0;
  long n = 1;
  while (n > 0) {
    n = syscall(78, fd, ents, 192);
    total = total + n / 64;
  }
  if (total != 10) return total;
  return 0;
}
|}

let test_sched_yield_and_uname () =
  check "trivial syscalls" 0
    {|
long main() {
  if (syscall(24) != 0) return 1;        /* sched_yield */
  if (syscall(63, 0) != 0) return 2;     /* uname */
  return 0;
}
|}

let test_clock_monotonic () =
  check "clock_gettime advances" 0
    {|
long main() {
  char t1[16];
  char t2[16];
  syscall(228, 0, t1);
  work(4200);                            /* ~2us at 2.1GHz */
  syscall(228, 0, t2);
  long ns1 = peek64(t1) * 1000000000 + peek64(t1 + 8);
  long ns2 = peek64(t2) * 1000000000 + peek64(t2 + 8);
  if (ns2 <= ns1) return 1;
  if (ns2 - ns1 < 1000) return 2;        /* at least 1us passed */
  return 0;
}
|}

let test_futex_wait_timeout () =
  (* FUTEX_WAIT with a timespec times out with -ETIMEDOUT when the
     word never changes. *)
  let open Sim_asm.Asm in
  let open Sim_isa in
  let prog =
    [
      mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 4096;
      mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
      mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
      mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
      mov_ri Isa.rax Defs.sys_mmap; syscall;
      (* timespec {0, 100us} at 0x9080; futex word 0 at 0x9040 *)
      mov_ri Isa.rbx 0x9080;
      mov_ri Isa.rcx 0;
      store Isa.rbx 0 Isa.rcx;
      mov_ri Isa.rcx 100_000;
      store Isa.rbx 8 Isa.rcx;
      mov_ri Isa.rdi 0x9040;
      mov_ri Isa.rsi Defs.futex_wait;
      mov_ri Isa.rdx 0;
      mov_ri Isa.r10 0x9080;
      mov_ri Isa.rax Defs.sys_futex; syscall;
      (* exit(-ret) = ETIMEDOUT = 110 *)
      mov_ri Isa.rdi 0;
      sub_rr Isa.rdi Isa.rax;
      mov_ri Isa.rax Defs.sys_exit_group; syscall;
    ]
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "futex timeout" Defs.etimedout code

let test_epoll_wait_timeout () =
  (* epoll_wait with a positive timeout and no ready events returns 0
     at the virtual deadline instead of blocking forever. *)
  let open Sim_asm.Asm in
  let open Sim_isa in
  let prog =
    [
      mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 4096;
      mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
      mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
      mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
      mov_ri Isa.rax Defs.sys_mmap; syscall;
      mov_ri Isa.rdi 8;
      mov_ri Isa.rax Defs.sys_epoll_create; syscall;
      mov_rr Isa.rdi Isa.rax;
      mov_ri Isa.rsi 0x9100;
      mov_ri Isa.rdx 8;
      mov_ri Isa.r10 2 (* ms *);
      mov_ri Isa.rax Defs.sys_epoll_wait; syscall;
      (* exit(ret + 7) = 7 when the wait timed out with 0 events *)
      mov_rr Isa.rdi Isa.rax;
      add_ri Isa.rdi 7;
      mov_ri Isa.rax Defs.sys_exit_group; syscall;
    ]
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "epoll timeout -> 0 events" 7 code

let tests =
  [
    Alcotest.test_case "dup shares offset" `Quick test_dup_shares_offset;
    Alcotest.test_case "fcntl F_GETFL/F_SETFL" `Quick test_fcntl_getfl_setfl;
    Alcotest.test_case "lseek whences" `Quick test_lseek_whences;
    Alcotest.test_case "getcwd/chdir" `Quick test_getcwd_chdir;
    Alcotest.test_case "rename across dirs" `Quick test_rename_across_dirs;
    Alcotest.test_case "brk" `Quick test_brk_grows_heap;
    Alcotest.test_case "sendfile offset" `Quick test_sendfile_advances_offset;
    Alcotest.test_case "epoll MOD/DEL" `Quick test_epoll_mod_del;
    Alcotest.test_case "nonblocking EAGAIN" `Quick test_nonblocking_read_eagain;
    Alcotest.test_case "EPIPE when ignored" `Quick
      test_write_to_closed_pipe_epipe;
    Alcotest.test_case "SIGPIPE kills by default" `Quick
      test_write_to_closed_pipe_sigpipe_kills;
    Alcotest.test_case "tgkill" `Quick test_tgkill_thread_directed;
    Alcotest.test_case "futex wait/wake" `Quick test_futex_wait_wake;
    Alcotest.test_case "futex wait timeout" `Quick test_futex_wait_timeout;
    Alcotest.test_case "epoll_wait positive timeout" `Quick
      test_epoll_wait_timeout;
    Alcotest.test_case "getdents pagination" `Quick test_getdents_pagination;
    Alcotest.test_case "sched_yield/uname" `Quick test_sched_yield_and_uname;
    Alcotest.test_case "clock_gettime monotonic" `Quick test_clock_monotonic;
  ]
