(** Unit tests for the percentile/histogram additions to
    [Sim_stats.Stats] (backing the tracer's latency tables). *)

module Stats = Sim_stats.Stats

let feq = Alcotest.(check (float 1e-9))

let test_percentile_empty () =
  Alcotest.(check bool)
    "empty sample is nan" true
    (Float.is_nan (Stats.percentile [] 50.0))

let test_percentile_singleton () =
  feq "p0 of singleton" 42.0 (Stats.percentile [ 42.0 ] 0.0);
  feq "p50 of singleton" 42.0 (Stats.percentile [ 42.0 ] 50.0);
  feq "p100 of singleton" 42.0 (Stats.percentile [ 42.0 ] 100.0)

let test_percentile_interpolated () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  feq "p0 is min" 10.0 (Stats.percentile xs 0.0);
  feq "p100 is max" 40.0 (Stats.percentile xs 100.0);
  (* rank of p50 over 4 samples is 1.5: midway between 20 and 30 *)
  feq "p50 interpolates" 25.0 (Stats.percentile xs 50.0);
  (* rank of p25 is 0.75: three quarters of the way from 10 to 20 *)
  feq "p25 interpolates" 17.5 (Stats.percentile xs 25.0);
  feq "input order is irrelevant" 25.0
    (Stats.percentile [ 40.0; 10.0; 30.0; 20.0 ] 50.0);
  feq "p clamps high" 40.0 (Stats.percentile xs 150.0);
  feq "p clamps low" 10.0 (Stats.percentile xs (-5.0))

let test_percentile_nonfinite () =
  (* Non-finite samples are measurement failures: dropped, not ranked. *)
  feq "nan samples dropped" 25.0
    (Stats.percentile [ nan; 10.0; 20.0; 30.0; 40.0; nan ] 50.0);
  feq "infinities dropped" 25.0
    (Stats.percentile [ infinity; 10.0; 20.0; 30.0; 40.0; neg_infinity ] 50.0);
  Alcotest.(check bool)
    "all-nan sample is nan" true
    (Float.is_nan (Stats.percentile [ nan; nan ] 50.0));
  (* a single survivor behaves like a singleton *)
  feq "one finite survivor" 7.0 (Stats.percentile [ nan; 7.0 ] 99.0);
  (* a non-finite p must not crash; it reads as the median *)
  feq "nan p is median" 25.0
    (Stats.percentile [ 10.0; 20.0; 30.0; 40.0 ] nan)

let test_histogram_empty () =
  Alcotest.(check int) "no buckets" 0 (Array.length (Stats.histogram []))

let test_histogram_singleton () =
  let h = Stats.histogram ~bins:3 [ 9.0 ] in
  Alcotest.(check int) "bucket count" 3 (Array.length h);
  let lo, hi, c0 = h.(0) in
  Alcotest.(check int) "sole sample in first bucket" 1 c0;
  feq "first bucket starts at the sample" 9.0 lo;
  feq "unit width under zero range" 10.0 hi

let test_histogram_nonfinite () =
  (* A NaN would make the min/max range NaN and every index undefined;
     non-finite samples are dropped instead. *)
  let h = Stats.histogram ~bins:2 [ nan; 1.0; 2.0; infinity ] in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "only finite samples counted" 2 total;
  Alcotest.(check int) "all-nonfinite yields no buckets" 0
    (Array.length (Stats.histogram [ nan; infinity ]))

let test_histogram_constant () =
  let h = Stats.histogram ~bins:4 [ 5.0; 5.0; 5.0 ] in
  Alcotest.(check int) "bucket count" 4 (Array.length h);
  let _, _, c0 = h.(0) in
  Alcotest.(check int) "all in first bucket" 3 c0;
  Array.iteri
    (fun i (_, _, c) ->
      if i > 0 then Alcotest.(check int) "other buckets empty" 0 c)
    h

let test_histogram_uniform () =
  let xs = List.init 10 (fun i -> float_of_int i) in
  let h = Stats.histogram ~bins:10 xs in
  Alcotest.(check int) "bucket count" 10 (Array.length h);
  Array.iter (fun (_, _, c) -> Alcotest.(check int) "one per bucket" 1 c) h;
  let lo, _, _ = h.(0) and _, hi, _ = h.(9) in
  feq "span starts at min" 0.0 lo;
  feq "span ends at max" 9.0 hi;
  (* total count is preserved *)
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "total preserved" 10 total

(* --- log-bucketed histogram (Log_hist) ----------------------------- *)

module H = Stats.Log_hist

let test_log_hist_empty () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check bool) "percentile is nan" true
    (Float.is_nan (H.percentile h 50.0));
  Alcotest.(check bool) "max is nan" true (Float.is_nan (H.max_value h));
  Alcotest.(check int) "no buckets" 0 (Array.length (H.buckets h))

let test_log_hist_bucket_bounds () =
  (* Buckets are octaves split into [sub] linear slices: every sample
     must land inside its bucket's [lo, hi) bounds, and each bucket's
     relative width is at most 1/sub. *)
  let sub = 8 in
  let h = H.create ~sub () in
  let samples = [ 1.0; 1.9; 2.0; 3.5; 100.0; 1024.0; 1_000_000.0 ] in
  List.iter (H.add h) samples;
  let buckets = H.buckets h in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 buckets in
  Alcotest.(check int) "every sample bucketed" (List.length samples) total;
  Array.iter
    (fun (lo, hi, _) ->
      Alcotest.(check bool) "bounds ordered" true (lo < hi);
      Alcotest.(check bool)
        (Printf.sprintf "bucket [%g,%g) relative width <= 1/sub" lo hi)
        true
        (hi -. lo <= (lo /. float_of_int sub) +. 1e-9))
    buckets;
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "sample %g inside some bucket" v)
        true
        (Array.exists (fun (lo, hi, _) -> v >= lo && v < hi) buckets))
    samples;
  (* exact extremes survive bucketing; the percentile estimates sit
     mid-bucket, so they are only bucket-accurate (1/sub relative) *)
  feq "min exact" 1.0 (H.min_value h);
  feq "max exact" 1_000_000.0 (H.max_value h);
  let close name expected got =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %g within 1/sub of %g" name got expected)
      true
      (Float.abs (got -. expected) /. expected <= 1.0 /. float_of_int sub)
  in
  close "p0 tracks min" 1.0 (H.percentile h 0.0);
  close "p100 tracks max" 1_000_000.0 (H.percentile h 100.0)

let test_log_hist_underflow () =
  let h = H.create () in
  List.iter (H.add h) [ 0.0; 0.5; 4.0 ];
  Alcotest.(check int) "all counted" 3 (H.count h);
  match H.buckets h with
  | [||] -> Alcotest.fail "no buckets"
  | b ->
      let lo, hi, c = b.(0) in
      feq "underflow bucket starts at 0" 0.0 lo;
      feq "underflow bucket ends at 1" 1.0 hi;
      Alcotest.(check int) "sub-1 samples pooled" 2 c

let test_log_hist_nonfinite () =
  let h = H.create () in
  List.iter (H.add h) [ nan; infinity; neg_infinity; -3.0; 7.0 ];
  Alcotest.(check int) "only the finite non-negative sample counted" 1
    (H.count h);
  Alcotest.(check int) "four drops recorded" 4 (H.dropped h);
  feq "books unpolluted" 7.0 (H.percentile h 50.0)

(* A deterministic heavy-tailed sample (no Random: the suite must be
   reproducible): exponentially spaced values hit many octaves. *)
let heavy_tail n = List.init n (fun i -> Float.pow 1.013 (float_of_int i))

let test_log_hist_tail_accuracy () =
  let sub = 64 in
  let xs = heavy_tail 2000 in
  let h = H.create ~sub () in
  List.iter (H.add h) xs;
  List.iter
    (fun p ->
      let exact = Stats.percentile xs p in
      let est = H.percentile h p in
      let rel = Float.abs (est -. exact) /. exact in
      Alcotest.(check bool)
        (Printf.sprintf "p%g within 1/sub: est %.1f exact %.1f (%.4f rel)" p
           est exact rel)
        true
        (rel <= 1.0 /. float_of_int sub))
    [ 50.0; 90.0; 99.0; 99.9 ]

let test_log_hist_merge () =
  let sub = 32 in
  let xs = heavy_tail 500 in
  let whole = H.create ~sub () in
  List.iter (H.add whole) xs;
  let a = H.create ~sub () and b = H.create ~sub () in
  List.iteri (fun i v -> H.add (if i mod 2 = 0 then a else b) v) xs;
  H.merge ~into:a b;
  Alcotest.(check int) "count merges" (H.count whole) (H.count a);
  feq "sum merges" (H.sum whole) (H.sum a);
  feq "max merges" (H.max_value whole) (H.max_value a);
  feq "p90 identical to unsplit" (H.percentile whole 90.0)
    (H.percentile a 90.0);
  match H.merge ~into:a (H.create ~sub:7 ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "merged histograms with different sub"

let test_log_hist_merge_disjoint () =
  (* The two inputs occupy disjoint octaves (no shared bucket), so the
     merge must graft whole octaves rather than just summing slices. *)
  let sub = 16 in
  let lows = [ 1.0; 1.5; 2.0; 3.0 ] and highs = [ 1.0e6; 1.5e6; 3.0e6 ] in
  let a = H.create ~sub () and b = H.create ~sub () in
  List.iter (H.add a) lows;
  List.iter (H.add b) highs;
  H.merge ~into:a b;
  let whole = H.create ~sub () in
  List.iter (H.add whole) (lows @ highs);
  Alcotest.(check int) "count" (H.count whole) (H.count a);
  feq "sum" (H.sum whole) (H.sum a);
  feq "min" (H.min_value whole) (H.min_value a);
  feq "max" (H.max_value whole) (H.max_value a);
  List.iter
    (fun p ->
      feq
        (Printf.sprintf "p%g identical to unsplit" p)
        (H.percentile whole p) (H.percentile a p))
    [ 0.0; 50.0; 90.0; 100.0 ];
  (* the gap between the octave groups holds no buckets: every bucket
     must contain at least one sample *)
  Array.iter
    (fun (lo, hi, c) ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket [%g,%g) non-empty" lo hi)
        true (c > 0))
    (H.buckets a)

let test_log_hist_percentile_edges () =
  (* empty: every percentile is nan, not an exception *)
  let e = H.create () in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "empty p%g is nan" p)
        true
        (Float.is_nan (H.percentile e p)))
    [ 0.0; 50.0; 100.0 ];
  (* single sample: all percentiles collapse onto its bucket *)
  let sub = 16 in
  let h = H.create ~sub () in
  H.add h 42.0;
  feq "min exact" 42.0 (H.min_value h);
  feq "max exact" 42.0 (H.max_value h);
  feq "p0 = p100 for one sample" (H.percentile h 0.0) (H.percentile h 100.0);
  List.iter
    (fun p ->
      let est = H.percentile h p in
      Alcotest.(check bool)
        (Printf.sprintf "p%g within 1/sub of the sample (got %g)" p est)
        true
        (Float.abs (est -. 42.0) /. 42.0 <= 1.0 /. float_of_int sub))
    [ 0.0; 50.0; 99.9; 100.0 ]

let prop_log_hist_relative_error =
  (* The structural guarantee behind the tracer's latency tables: the
     percentile estimate lands in the same bucket as the sample whose
     sorted index the rank maps to, so it is within 1/sub relative
     error of that sample.  (Against the *interpolated* exact
     percentile no such bound exists: two neighbouring samples may be
     octaves apart.) *)
  QCheck.Test.make ~count:100
    ~name:"log-hist percentile relative error <= 1/sub"
    (QCheck.make
       ~print:(fun (sub, xs, p) ->
         Printf.sprintf "sub=%d n=%d p=%g" sub (List.length xs) p)
       QCheck.Gen.(
         triple
           (int_range 4 64)
           (list_size (int_range 1 200) (float_range 1.0 1.0e9))
           (float_range 0.0 100.0)))
    (fun (sub, xs, p) ->
      let h = H.create ~sub () in
      List.iter (H.add h) xs;
      let n = List.length xs in
      let sorted = List.sort compare xs in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let sample = List.nth sorted (int_of_float (Float.floor rank)) in
      let est = H.percentile h p in
      Float.abs (est -. sample) /. sample
      <= (1.0 /. float_of_int sub) +. 1e-6)

(* --- streaming sketch (full float range) --------------------------- *)

let test_sketch_mixed_signs () =
  let xs = [ -8.0; -2.0; -1.0; 0.0; 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  let s = Stats.Sketch.of_list xs in
  Alcotest.(check int) "count" 9 (Stats.Sketch.count s);
  feq "min is most negative" (-8.0) (Stats.Sketch.min_value s);
  feq "max" 16.0 (Stats.Sketch.max_value s);
  feq "sum" 20.0 (Stats.Sketch.sum s);
  (* splice point: p0 must read from the negative half, p100 from the
     positive, each bucket-accurate (default sub = 16) *)
  let close name expected got =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %g near %g" name got expected)
      true
      (Float.abs (got -. expected) /. Float.abs expected <= 1.0 /. 16.0)
  in
  close "p0" (-8.0) (Stats.Sketch.percentile s 0.0);
  close "p100" 16.0 (Stats.Sketch.percentile s 100.0);
  (* exact median is the 0.0 sample; the splice + bucket estimate may
     drift into the adjacent bucket but not past the neighbours *)
  let med = Stats.Sketch.percentile s 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "median between the neighbour samples (%g)" med)
    true
    (med >= -1.0 && med <= 2.0);
  let p25 = Stats.Sketch.percentile s 25.0 in
  Alcotest.(check bool)
    (Printf.sprintf "p25 negative (%g)" p25)
    true (p25 < 0.0)

let test_sketch_all_negative () =
  let s = Stats.Sketch.of_list [ -10.0; -20.0; -40.0 ] in
  feq "min" (-40.0) (Stats.Sketch.min_value s);
  feq "max" (-10.0) (Stats.Sketch.max_value s);
  let close name expected got =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %g near %g" name got expected)
      true
      (Float.abs (got -. expected) /. Float.abs expected <= 1.0 /. 16.0)
  in
  close "p0 tracks min" (-40.0) (Stats.Sketch.percentile s 0.0);
  close "p100 tracks max" (-10.0) (Stats.Sketch.percentile s 100.0);
  let med = Stats.Sketch.percentile s 50.0 in
  Alcotest.(check bool)
    (Printf.sprintf "median in the middle bucket (%g)" med)
    true
    (med <= -10.0 && med >= -40.0);
  Alcotest.(check bool) "nan dropped, counted" true
    (Stats.Sketch.add s nan;
     Stats.Sketch.dropped s = 1 && Stats.Sketch.count s = 3)

let tests =
  [
    Alcotest.test_case "percentile: empty" `Quick test_percentile_empty;
    Alcotest.test_case "percentile: singleton" `Quick test_percentile_singleton;
    Alcotest.test_case "percentile: interpolation" `Quick
      test_percentile_interpolated;
    Alcotest.test_case "percentile: non-finite inputs" `Quick
      test_percentile_nonfinite;
    Alcotest.test_case "histogram: empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram: singleton" `Quick test_histogram_singleton;
    Alcotest.test_case "histogram: non-finite inputs" `Quick
      test_histogram_nonfinite;
    Alcotest.test_case "histogram: constant sample" `Quick
      test_histogram_constant;
    Alcotest.test_case "histogram: uniform sample" `Quick
      test_histogram_uniform;
    Alcotest.test_case "log-hist: empty" `Quick test_log_hist_empty;
    Alcotest.test_case "log-hist: bucket bounds" `Quick
      test_log_hist_bucket_bounds;
    Alcotest.test_case "log-hist: underflow bucket" `Quick
      test_log_hist_underflow;
    Alcotest.test_case "log-hist: non-finite inputs" `Quick
      test_log_hist_nonfinite;
    Alcotest.test_case "log-hist: tail accuracy vs exact" `Quick
      test_log_hist_tail_accuracy;
    Alcotest.test_case "log-hist: merge" `Quick test_log_hist_merge;
    Alcotest.test_case "log-hist: merge disjoint octaves" `Quick
      test_log_hist_merge_disjoint;
    Alcotest.test_case "log-hist: percentile edge cases" `Quick
      test_log_hist_percentile_edges;
    QCheck_alcotest.to_alcotest prop_log_hist_relative_error;
    Alcotest.test_case "sketch: mixed signs" `Quick test_sketch_mixed_signs;
    Alcotest.test_case "sketch: all negative" `Quick test_sketch_all_negative;
  ]
