(** Unit tests for the percentile/histogram additions to
    [Sim_stats.Stats] (backing the tracer's latency tables). *)

module Stats = Sim_stats.Stats

let feq = Alcotest.(check (float 1e-9))

let test_percentile_empty () =
  Alcotest.(check bool)
    "empty sample is nan" true
    (Float.is_nan (Stats.percentile [] 50.0))

let test_percentile_singleton () =
  feq "p0 of singleton" 42.0 (Stats.percentile [ 42.0 ] 0.0);
  feq "p50 of singleton" 42.0 (Stats.percentile [ 42.0 ] 50.0);
  feq "p100 of singleton" 42.0 (Stats.percentile [ 42.0 ] 100.0)

let test_percentile_interpolated () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  feq "p0 is min" 10.0 (Stats.percentile xs 0.0);
  feq "p100 is max" 40.0 (Stats.percentile xs 100.0);
  (* rank of p50 over 4 samples is 1.5: midway between 20 and 30 *)
  feq "p50 interpolates" 25.0 (Stats.percentile xs 50.0);
  (* rank of p25 is 0.75: three quarters of the way from 10 to 20 *)
  feq "p25 interpolates" 17.5 (Stats.percentile xs 25.0);
  feq "input order is irrelevant" 25.0
    (Stats.percentile [ 40.0; 10.0; 30.0; 20.0 ] 50.0);
  feq "p clamps high" 40.0 (Stats.percentile xs 150.0);
  feq "p clamps low" 10.0 (Stats.percentile xs (-5.0))

let test_percentile_nonfinite () =
  (* Non-finite samples are measurement failures: dropped, not ranked. *)
  feq "nan samples dropped" 25.0
    (Stats.percentile [ nan; 10.0; 20.0; 30.0; 40.0; nan ] 50.0);
  feq "infinities dropped" 25.0
    (Stats.percentile [ infinity; 10.0; 20.0; 30.0; 40.0; neg_infinity ] 50.0);
  Alcotest.(check bool)
    "all-nan sample is nan" true
    (Float.is_nan (Stats.percentile [ nan; nan ] 50.0));
  (* a single survivor behaves like a singleton *)
  feq "one finite survivor" 7.0 (Stats.percentile [ nan; 7.0 ] 99.0);
  (* a non-finite p must not crash; it reads as the median *)
  feq "nan p is median" 25.0
    (Stats.percentile [ 10.0; 20.0; 30.0; 40.0 ] nan)

let test_histogram_empty () =
  Alcotest.(check int) "no buckets" 0 (Array.length (Stats.histogram []))

let test_histogram_singleton () =
  let h = Stats.histogram ~bins:3 [ 9.0 ] in
  Alcotest.(check int) "bucket count" 3 (Array.length h);
  let lo, hi, c0 = h.(0) in
  Alcotest.(check int) "sole sample in first bucket" 1 c0;
  feq "first bucket starts at the sample" 9.0 lo;
  feq "unit width under zero range" 10.0 hi

let test_histogram_nonfinite () =
  (* A NaN would make the min/max range NaN and every index undefined;
     non-finite samples are dropped instead. *)
  let h = Stats.histogram ~bins:2 [ nan; 1.0; 2.0; infinity ] in
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "only finite samples counted" 2 total;
  Alcotest.(check int) "all-nonfinite yields no buckets" 0
    (Array.length (Stats.histogram [ nan; infinity ]))

let test_histogram_constant () =
  let h = Stats.histogram ~bins:4 [ 5.0; 5.0; 5.0 ] in
  Alcotest.(check int) "bucket count" 4 (Array.length h);
  let _, _, c0 = h.(0) in
  Alcotest.(check int) "all in first bucket" 3 c0;
  Array.iteri
    (fun i (_, _, c) ->
      if i > 0 then Alcotest.(check int) "other buckets empty" 0 c)
    h

let test_histogram_uniform () =
  let xs = List.init 10 (fun i -> float_of_int i) in
  let h = Stats.histogram ~bins:10 xs in
  Alcotest.(check int) "bucket count" 10 (Array.length h);
  Array.iter (fun (_, _, c) -> Alcotest.(check int) "one per bucket" 1 c) h;
  let lo, _, _ = h.(0) and _, hi, _ = h.(9) in
  feq "span starts at min" 0.0 lo;
  feq "span ends at max" 9.0 hi;
  (* total count is preserved *)
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "total preserved" 10 total

let tests =
  [
    Alcotest.test_case "percentile: empty" `Quick test_percentile_empty;
    Alcotest.test_case "percentile: singleton" `Quick test_percentile_singleton;
    Alcotest.test_case "percentile: interpolation" `Quick
      test_percentile_interpolated;
    Alcotest.test_case "percentile: non-finite inputs" `Quick
      test_percentile_nonfinite;
    Alcotest.test_case "histogram: empty" `Quick test_histogram_empty;
    Alcotest.test_case "histogram: singleton" `Quick test_histogram_singleton;
    Alcotest.test_case "histogram: non-finite inputs" `Quick
      test_histogram_nonfinite;
    Alcotest.test_case "histogram: constant sample" `Quick
      test_histogram_constant;
    Alcotest.test_case "histogram: uniform sample" `Quick
      test_histogram_uniform;
  ]
