(** The metrics registry: unit tests for [Sim_metrics.Metrics], the
    kernel wiring through [Kmetrics], and the observation-only
    contract — a run with metrics and the sampling profiler attached
    is cycle- and state-identical to an unobserved run (qcheck
    property over the microbenchmark configurations, plus a full
    register/memory comparison on a compiled C program). *)

open Sim_kernel
module M = Sim_metrics.Metrics
module Profiler = Sim_metrics.Profiler
module Ev = Sim_trace.Event

(* --- registry units ------------------------------------------------ *)

let test_counter_idempotent () =
  let r = M.create () in
  let c1 = M.counter r ~help:"h" "requests_total" in
  incr c1;
  let c2 = M.counter r "requests_total" in
  Alcotest.(check bool) "same cell" true (c1 == c2);
  incr c2;
  Alcotest.(check (option int)) "one cell, two bumps" (Some 2)
    (M.find r "requests_total")

let test_labels_distinguish () =
  let r = M.create () in
  let a = M.counter r ~labels:[ ("path", "fast") ] "dispatches" in
  let b = M.counter r ~labels:[ ("path", "slow") ] "dispatches" in
  Alcotest.(check bool) "distinct cells" false (a == b);
  a := 3;
  b := 5;
  Alcotest.(check (option int)) "fast" (Some 3)
    (M.find r ~labels:[ ("path", "fast") ] "dispatches");
  Alcotest.(check (option int)) "slow" (Some 5)
    (M.find r ~labels:[ ("path", "slow") ] "dispatches");
  (* label order must not matter for identity *)
  let a' = M.counter r ~labels:[ ("path", "fast") ] "dispatches" in
  Alcotest.(check bool) "order-insensitive key" true (a == a')

let test_probe_replaces () =
  let r = M.create () in
  M.probe r "live_value" (fun () -> 1);
  Alcotest.(check (option int)) "first thunk" (Some 1) (M.find r "live_value");
  (* re-registration swaps the thunk: re-attaching a registry to a
     fresh kernel must not keep scraping the old one *)
  M.probe r "live_value" (fun () -> 42);
  Alcotest.(check (option int)) "second thunk" (Some 42)
    (M.find r "live_value")

let test_histogram_buckets () =
  let r = M.create () in
  let h = M.histogram r "latency" in
  List.iter (M.observe h) [ 1; 2; 3; 100; 100_000 ];
  Alcotest.(check int) "count" 5 h.M.h_count;
  Alcotest.(check int) "sum" 100_106 h.M.h_sum;
  (* v <= 2^i: 1 -> bucket 0, 2 -> 1, 3 -> 2, 100 -> 7, 100000 -> 17 *)
  Alcotest.(check int) "bucket 0" 1 h.M.h_buckets.(0);
  Alcotest.(check int) "bucket 1" 1 h.M.h_buckets.(1);
  Alcotest.(check int) "bucket 2" 1 h.M.h_buckets.(2);
  Alcotest.(check int) "bucket 7" 1 h.M.h_buckets.(7);
  Alcotest.(check int) "bucket 17" 1 h.M.h_buckets.(17)

let test_prometheus_shape () =
  let r = M.create () in
  let c = M.counter r ~help:"things done" "sim_things_total" in
  c := 7;
  let h = M.histogram r "sim_lat" in
  M.observe h 3;
  let text = M.prometheus r in
  let has needle =
    let nl = String.length needle and l = String.length text in
    let rec go i = i + nl <= l && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "HELP line" true (has "# HELP sim_things_total things done");
  Alcotest.(check bool) "TYPE line" true (has "# TYPE sim_things_total counter");
  Alcotest.(check bool) "value line" true (has "sim_things_total 7");
  Alcotest.(check bool) "histogram bucket" true (has "sim_lat_bucket{le=\"4\"} 1");
  Alcotest.(check bool) "+Inf bucket" true (has "sim_lat_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool) "sum" true (has "sim_lat_sum 3");
  Alcotest.(check bool) "count" true (has "sim_lat_count 1")

let test_json_shape () =
  let r = M.create () in
  (M.counter r ~labels:[ ("k", "v") ] "c_total") := 9;
  let j = M.to_json r in
  Alcotest.(check bool) "array" true (j.[0] = '[' && j.[String.length j - 1] = ']');
  let has needle =
    let nl = String.length needle and l = String.length j in
    let rec go i = i + nl <= l && (String.sub j i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "name field" true (has "\"name\": \"c_total\"");
  Alcotest.(check bool) "labels object" true (has "\"k\": \"v\"");
  Alcotest.(check bool) "value field" true (has "\"value\": 9")

(* --- kernel wiring ------------------------------------------------- *)

let run_metered ?(mech = `Lazy) src =
  let k = Kernel.create () in
  let m = Kernel.enable_metrics k in
  let t = Kernel.spawn k (Minicc.Codegen.compile_to_image src) in
  (match mech with
  | `Native -> ()
  | `Lazy -> ignore (Lazypoline.install k t (Lazypoline.Hook.dummy ())));
  Buffer.clear Kernel.console;
  Alcotest.(check bool) "terminated" true
    (Kernel.run_until_exit ~max_slices:600_000 k);
  (k, t, m)

let src_loop =
  "long main() { long acc = 0; for (long i = 0; i < 5; i = i + 1) { acc = \
   acc + syscall(39); } return acc & 1; }"

let test_kernel_counts () =
  let _k, _t, m = run_metered ~mech:`Native src_loop in
  let v name = Option.value ~default:0 (M.find m.Kmetrics.registry name) in
  Alcotest.(check bool) "syscalls counted" true (v "sim_syscalls_total" >= 6);
  (* 5x getpid + exit; all direct without an interposer *)
  Alcotest.(check int) "all direct" (v "sim_syscalls_total")
    (Kmetrics.path_count m Ev.Direct);
  Alcotest.(check bool) "per-nr row for getpid" true
    (Option.value ~default:0
       (M.find m.Kmetrics.registry
          ~labels:[ ("nr", "39"); ("name", "getpid") ]
          "sim_syscalls_by_nr_total")
    >= 5);
  Alcotest.(check bool) "latency histogram populated" true
    (m.Kmetrics.syscall_cycles.M.h_count >= 6);
  Alcotest.(check bool) "cycles probe scrapes" true (v "sim_cycles" > 0)

let test_kernel_dispatch_split () =
  let _k, _t, m = run_metered ~mech:`Lazy src_loop in
  (* first getpid faults into the SUD slow path and is rewritten;
     later iterations take the fast path *)
  Alcotest.(check bool) "slow path hit" true (Kmetrics.slow_hits m >= 1);
  Alcotest.(check bool) "fast path hits" true (Kmetrics.fast_hits m >= 2);
  Alcotest.(check bool) "rewrite counted" true
    (Option.value ~default:0 (M.find m.Kmetrics.registry "sim_rewrites_total")
    >= 1);
  Alcotest.(check bool) "selector flips counted" true
    (Option.value ~default:0
       (M.find m.Kmetrics.registry "sim_sud_selector_flips_total")
    >= 1)

let test_sweep_metrics () =
  let k = Kernel.create () in
  let m = Kernel.enable_metrics k in
  let t =
    Kernel.spawn k
      (Minicc.Codegen.compile_to_image "long main() { return syscall(39) > 0; }")
  in
  ignore (Baselines.Zpoline.install k t (Lazypoline.Hook.dummy ()));
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  let v name = Option.value ~default:0 (M.find m.Kmetrics.registry name) in
  Alcotest.(check bool) "one sweep" true (v "sim_rewrite_sweeps_total" >= 1);
  Alcotest.(check bool) "sites found" true
    (v "sim_rewrite_sweep_sites_total" >= 1);
  Alcotest.(check bool) "bytes scanned" true
    (v "sim_rewrite_sweep_bytes_total" > 0)

(* --- observation-only: cycle identity over the microbench ---------- *)

let micro_configs =
  Workloads.Microbench_prog.
    [
      Native; Native_sud_allow; Zpoline; Lazypoline_full; Lazypoline_noxstate;
      Lazypoline_nosud; Lazypoline_protected; Sud; Seccomp_user; Seccomp_bpf;
      Ptrace;
    ]

let prop_observers_cycle_identical =
  QCheck.Test.make ~count:(List.length micro_configs)
    ~name:"metrics+profiler attached: cycles identical to unobserved run"
    (QCheck.make
       ~print:(fun i ->
         Workloads.Microbench_prog.config_name
           (List.nth micro_configs (i mod List.length micro_configs)))
       QCheck.Gen.(int_range 0 (List.length micro_configs - 1)))
    (fun i ->
      let config = List.nth micro_configs i in
      let plain = Workloads.Microbench_prog.run ~iters:300 config in
      let metrics = Kmetrics.create () in
      let profiler = Profiler.create ~period:13 () in
      let observed =
        Workloads.Microbench_prog.run ~iters:300 ~metrics ~profiler config
      in
      plain = observed)

(* --- observation-only: full state identity on a C program ---------- *)

let final_state src ~observe =
  let k = Kernel.create () in
  if observe then begin
    ignore (Kernel.enable_metrics k);
    k.Types.profiler <- Some (Profiler.create ~period:37 ())
  end;
  ignore (Vfs.add_file k.Types.vfs "/data/seed" "0123456789abcdef");
  let t = Kernel.spawn k (Minicc.Codegen.compile_to_image src) in
  ignore (Lazypoline.install k t (Lazypoline.Hook.dummy ()));
  Buffer.clear Kernel.console;
  Alcotest.(check bool) "terminated" true
    (Kernel.run_until_exit ~max_slices:600_000 k);
  let regs = List.init 16 (fun r -> Sim_cpu.Cpu.peek_reg t.Types.ctx r) in
  let mem_dump =
    Sim_mem.Mem.regions t.Types.mem
    |> List.map (fun (addr, len, perm) ->
           (addr, len, perm, Digest.string (Sim_mem.Mem.peek_bytes t.Types.mem addr len)))
  in
  ( t.Types.exit_code,
    Buffer.contents Kernel.console,
    t.Types.tcycles,
    Types.global_time k,
    t.Types.ctx.Sim_cpu.Cpu.rip,
    regs,
    mem_dump )

let test_state_identity () =
  let src =
    "long main() {\n\
     char buf[64];\n\
     long fd = syscall(2, \"/data/seed\", 0, 0);\n\
     long acc = syscall(0, fd, buf, 16);\n\
     syscall(3, fd);\n\
     for (long i = 0; i < 4; i = i + 1) { acc = acc + syscall(186); }\n\
     syscall(1, 1, \"done\", 4);\n\
     return acc & 63;\n\
     }"
  in
  let a = final_state src ~observe:false in
  let b = final_state src ~observe:true in
  let c1, o1, tc1, g1, rip1, regs1, mem1 = a in
  let c2, o2, tc2, g2, rip2, regs2, mem2 = b in
  Alcotest.(check int) "exit code" c1 c2;
  Alcotest.(check string) "console" o1 o2;
  Alcotest.(check int64) "task cycles" tc1 tc2;
  Alcotest.(check int64) "global time" g1 g2;
  Alcotest.(check int) "rip" rip1 rip2;
  Alcotest.(check (list int64)) "registers" regs1 regs2;
  Alcotest.(check int) "region count" (List.length mem1) (List.length mem2);
  List.iter2
    (fun (a1, l1, p1, d1) (a2, l2, p2, d2) ->
      Alcotest.(check int) "region addr" a1 a2;
      Alcotest.(check int) "region len" l1 l2;
      Alcotest.(check int) "region perm" p1 p2;
      Alcotest.(check string) "region bytes" (Digest.to_hex d1)
        (Digest.to_hex d2))
    mem1 mem2

let tests =
  [
    Alcotest.test_case "registry: counter idempotent" `Quick
      test_counter_idempotent;
    Alcotest.test_case "registry: labels distinguish" `Quick
      test_labels_distinguish;
    Alcotest.test_case "registry: probe re-registration" `Quick
      test_probe_replaces;
    Alcotest.test_case "registry: histogram buckets" `Quick
      test_histogram_buckets;
    Alcotest.test_case "export: prometheus shape" `Quick test_prometheus_shape;
    Alcotest.test_case "export: json shape" `Quick test_json_shape;
    Alcotest.test_case "kernel: dispatch counts" `Quick test_kernel_counts;
    Alcotest.test_case "kernel: lazypoline fast/slow split" `Quick
      test_kernel_dispatch_split;
    Alcotest.test_case "kernel: zpoline sweep counters" `Quick
      test_sweep_metrics;
    QCheck_alcotest.to_alcotest prop_observers_cycle_identical;
    Alcotest.test_case "observers: full state identity" `Quick
      test_state_identity;
  ]
