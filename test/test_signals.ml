(** Signal machinery tests: sigaction, handler execution, sigreturn,
    masking, fatal defaults, and xstate preservation across handlers. *)

open Sim_isa
open Sim_asm.Asm
open Sim_kernel

(* Common prologue: map a RW page at 0x9000 for globals. *)
let map_globals =
  [
    mov_ri Isa.rdi 0x9000; mov_ri Isa.rsi 4096;
    mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
    mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
    mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
    mov_ri Isa.rax Defs.sys_mmap; syscall;
  ]

(* Build the sigaction struct at rsp-512 pointing to labels
   "handler" and "restorer", then rt_sigaction(sig, act, 0). *)
let install_handler sig_ =
  [
    mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 512;
    Lea_ip (Isa.rcx, "handler");
    store Isa.rbx 0 Isa.rcx;
    mov_ri Isa.rcx 0;
    store Isa.rbx 8 Isa.rcx;
    store Isa.rbx 16 Isa.rcx;
    Lea_ip (Isa.rcx, "restorer");
    store Isa.rbx 24 Isa.rcx;
    mov_ri Isa.rdi sig_;
    mov_rr Isa.rsi Isa.rbx;
    mov_ri Isa.rdx 0;
    mov_ri Isa.rax Defs.sys_rt_sigaction;
    syscall;
  ]

let restorer_block =
  [ Label "restorer"; mov_ri Isa.rax Defs.sys_rt_sigreturn; syscall ]

let kill_self sig_ =
  [
    mov_ri Isa.rax Defs.sys_getpid; syscall;
    mov_rr Isa.rdi Isa.rax;
    mov_ri Isa.rsi sig_;
    mov_ri Isa.rax Defs.sys_kill; syscall;
  ]

let test_handler_runs_and_returns () =
  let prog =
    map_globals
    @ install_handler Defs.sigusr1
    @ kill_self Defs.sigusr1
    @ [
        (* after handler returned: exit with the global's value *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rdi Isa.rbx 0;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "handler";
        mov_ri Isa.rbx 0x9000;
        mov_ri Isa.rcx 33;
        store Isa.rbx 0 Isa.rcx;
        ret;
      ]
    @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "handler wrote global" 33 code

let test_handler_preserves_registers () =
  (* The interrupted context's registers survive the handler, which
     clobbers them wildly. *)
  let prog =
    map_globals
    @ install_handler Defs.sigusr1
    @ [ mov_ri Isa.r14 777 ]
    @ kill_self Defs.sigusr1
    @ [
        mov_rr Isa.rdi Isa.r14;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "handler";
        mov_ri Isa.r14 0;
        mov_ri Isa.r15 0;
        ret;
      ]
    @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "r14 preserved" 777 code

let test_handler_preserves_xmm () =
  (* xstate is saved/restored in the signal frame by the kernel. *)
  let prog =
    map_globals
    @ install_handler Defs.sigusr1
    @ [ mov_ri Isa.rcx 4242; i (Isa.Movq_xr (7, Isa.rcx)) ]
    @ kill_self Defs.sigusr1
    @ [
        i (Isa.Movq_rx (Isa.rdi, 7));
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "handler";
        mov_ri Isa.rcx 1;
        i (Isa.Movq_xr (7, Isa.rcx));
        ret;
      ]
    @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "xmm7 preserved" 4242 code

let test_default_action_kills () =
  let prog = kill_self Defs.sigusr2 @ Tutil.exit_with 0 in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "killed" (128 + Defs.sigusr2) code

let test_sigchld_ignored_by_default () =
  let prog = kill_self Defs.sigchld @ Tutil.exit_with 9 in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "survived" 9 code

let test_sig_ign () =
  (* Set SIGUSR1 to SIG_IGN, then kill self: survives. *)
  let prog =
    [
      mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 512;
      mov_ri Isa.rcx 1 (* SIG_IGN *);
      store Isa.rbx 0 Isa.rcx;
      mov_ri Isa.rcx 0;
      store Isa.rbx 8 Isa.rcx; store Isa.rbx 16 Isa.rcx;
      store Isa.rbx 24 Isa.rcx;
      mov_ri Isa.rdi Defs.sigusr1;
      mov_rr Isa.rsi Isa.rbx;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_rt_sigaction; syscall;
    ]
    @ kill_self Defs.sigusr1
    @ Tutil.exit_with 4
  in
  let code, _, _ = Tutil.run_asm prog in
  Alcotest.(check int) "ignored" 4 code

let test_sigprocmask_defers () =
  (* Block USR1, send it, then observe it is pending only after
     unblocking (handler sets the global). *)
  let prog =
    map_globals
    @ install_handler Defs.sigusr1
    @ [
        (* mask = 1 << (USR1-1) at rsp-600 *)
        mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 600;
        mov_ri64 Isa.rcx (Int64.shift_left 1L (Defs.sigusr1 - 1));
        store Isa.rbx 0 Isa.rcx;
        mov_ri Isa.rdi 0 (* SIG_BLOCK *);
        mov_rr Isa.rsi Isa.rbx;
        mov_ri Isa.rdx 0;
        mov_ri Isa.rax Defs.sys_rt_sigprocmask; syscall;
      ]
    @ kill_self Defs.sigusr1
    @ [
        (* handler must NOT have run: global still 0 *)
        mov_ri Isa.rbx 0x9000;
        load Isa.r13 Isa.rbx 0;
        (* unblock *)
        mov_rr Isa.rbx Isa.rsp; sub_ri Isa.rbx 600;
        mov_ri Isa.rdi 1 (* SIG_UNBLOCK *);
        mov_rr Isa.rsi Isa.rbx;
        mov_ri Isa.rdx 0;
        mov_ri Isa.rax Defs.sys_rt_sigprocmask; syscall;
        (* now the handler ran: exit(10*was_pending_before + global) *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rdi Isa.rbx 0;
        mov_ri Isa.rcx 10;
        i (Isa.Alu_rr (Isa.Mul, Isa.r13, Isa.rcx));
        add_rr Isa.rdi Isa.r13;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "handler";
        mov_ri Isa.rbx 0x9000;
        mov_ri Isa.rcx 1;
        store Isa.rbx 0 Isa.rcx;
        ret;
      ]
    @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  (* r13 (global before unblock) = 0, global after = 1 -> exit 1 *)
  Alcotest.(check int) "deferred until unblock" 1 code

let test_nested_handler_mask () =
  (* While the USR1 handler runs, USR1 is masked: a second kill inside
     the handler defers until after sigreturn; global counts 2 in the
     end but never recurses (depth tracked at 0x9008). *)
  let prog =
    map_globals
    @ install_handler Defs.sigusr1
    @ kill_self Defs.sigusr1
    @ [
        (* after first handler completes, the deferred one runs too;
           then exit(count + 10*maxdepth) *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rdi Isa.rbx 0;
        load Isa.rcx Isa.rbx 8;
        mov_ri Isa.rdx 10;
        i (Isa.Alu_rr (Isa.Mul, Isa.rcx, Isa.rdx));
        add_rr Isa.rdi Isa.rcx;
        mov_ri Isa.rax Defs.sys_exit_group; syscall;
        Label "handler";
        (* count++ *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rcx Isa.rbx 0;
        add_ri Isa.rcx 1;
        store Isa.rbx 0 Isa.rcx;
        (* depth = max(depth, count-in-flight): we approximate by
           recording 1 on entry; a recursive entry would record 2 via
           the in-flight counter at 0x9010 *)
        load Isa.rcx Isa.rbx 16;
        add_ri Isa.rcx 1;
        store Isa.rbx 16 Isa.rcx;
        load Isa.rdx Isa.rbx 8;
        cmp_rr Isa.rcx Isa.rdx;
        Jcc_l (Isa.Le, "no_new_max");
        store Isa.rbx 8 Isa.rcx;
        Label "no_new_max";
        (* second kill only on first invocation *)
        load Isa.rcx Isa.rbx 0;
        cmp_ri Isa.rcx 1;
        Jcc_l (Isa.Ne, "skip_rekill");
      ]
    @ kill_self Defs.sigusr1
    @ [
        Label "skip_rekill";
        (* in-flight-- *)
        mov_ri Isa.rbx 0x9000;
        load Isa.rcx Isa.rbx 16;
        sub_ri Isa.rcx 1;
        store Isa.rbx 16 Isa.rcx;
        ret;
      ]
    @ restorer_block
  in
  let code, _, _ = Tutil.run_asm prog in
  (* count=2, maxdepth=1 -> 2 + 10 = 12 *)
  Alcotest.(check int) "ran twice, never nested" 12 code

(* ------------------------------------------------------------------ *)
(* SA_RESTART vs -EINTR for blocking syscalls, across every
   interposition mechanism.

   The interrupting signal comes from a forced chaos block-signal
   injection ('b', keyed on the count of completed app syscalls), so
   the interruption lands at the same application event under raw and
   under every interposer.  Each program encodes its outcome as
   exit(10 * handler_hits - ret):
   - an interrupted non-restarted wait returns -EINTR: 10 + 4 = 14;
   - a transparently restarted read/write completes with 1: 10 - 1 = 9. *)

module D = Harness.Divergence
module C = Sim_chaos.Chaos

let g2 = 0x9000

let all_mechs = [ D.Raw; D.Sud; D.Zpoline; D.Lazypoline_m; D.Seccomp; D.Ptrace ]

(* Globals staging, NOT below rsp: a sigflow interposer's SIGSYS frame
   lands below the interrupted rsp and would clobber it. *)
let map_glob2 =
  [
    mov_ri Isa.rdi g2; mov_ri Isa.rsi 8192;
    mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
    mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
    mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
    mov_ri Isa.rax Defs.sys_mmap; syscall;
  ]

let install_g ~flags sig_ =
  [
    mov_ri Isa.rbx (g2 + 0x140);
    Lea_ip (Isa.rcx, "handler");
    store Isa.rbx 0 Isa.rcx;
    mov_ri Isa.rcx 0;
    store Isa.rbx 8 Isa.rcx;
    mov_ri Isa.rcx flags;
    store Isa.rbx 16 Isa.rcx;
    Lea_ip (Isa.rcx, "restorer");
    store Isa.rbx 24 Isa.rcx;
    mov_ri Isa.rdi sig_;
    mov_rr Isa.rsi Isa.rbx;
    mov_ri Isa.rdx 0;
    mov_ri Isa.rax Defs.sys_rt_sigaction; syscall;
  ]

let handler_block =
  [
    Label "handler";
    mov_ri Isa.rbx g2;
    load Isa.rcx Isa.rbx 0;
    add_ri Isa.rcx 1;
    store Isa.rbx 0 Isa.rcx;
    ret;
  ]
  @ restorer_block

(* exit(10 * handler_hits - rax) *)
let encode_exit =
  [
    mov_rr Isa.r12 Isa.rax;
    mov_ri Isa.rbx g2;
    load Isa.rcx Isa.rbx 0;
    mov_ri Isa.rdx 10;
    i (Isa.Alu_rr (Isa.Mul, Isa.rcx, Isa.rdx));
    mov_rr Isa.rdi Isa.rcx;
    sub_rr Isa.rdi Isa.r12;
    mov_ri Isa.rax Defs.sys_exit_group; syscall;
  ]

let pipe_fds = [ mov_ri Isa.rdi (g2 + 0x20); mov_ri Isa.rax Defs.sys_pipe; syscall ]

let clone_thread =
  [
    mov_ri Isa.rdi
      (Defs.clone_vm lor Defs.clone_files lor Defs.clone_sighand
     lor Defs.clone_thread);
    mov_ri Isa.rsi (g2 + 8192 - 256);
    mov_ri Isa.rdx 0; mov_ri Isa.r10 0; mov_ri Isa.r8 0;
    mov_ri Isa.rax Defs.sys_clone; syscall;
    cmp_ri Isa.rax 0;
    Jcc_l (Isa.Eq, "thread");
  ]

(* timespec {0, 5ms} at g2+0xC0: the helper thread sleeps this long so
   the signal-interruption path resolves before it supplies data. *)
let stage_child_delay =
  [
    mov_ri Isa.rbx (g2 + 0xC0);
    mov_ri Isa.rcx 0;
    store Isa.rbx 0 Isa.rcx;
    mov_ri Isa.rcx 5_000_000;
    store Isa.rbx 8 Isa.rcx;
  ]

let blocksig ~index =
  [
    {
      C.j_klass = C.Blocksig; j_tid = 1; j_index = index;
      j_arg = Defs.sigusr1; j_arg2 = 0L;
    };
  ]

let run_mech mech ~injections items =
  let k = Kernel.create () in
  Kernel.attach_chaos k (C.forced injections);
  let img = Loader.image_of_items items in
  let t = Kernel.spawn k img in
  D.install mech k t (Lazypoline.Hook.dummy ());
  if not (Kernel.run_until_exit ~max_slices:400_000 k) then
    Alcotest.fail "program did not terminate";
  t.Types.exit_code

let check_mechs msg expected ~injections items =
  List.iter
    (fun m ->
      Alcotest.(check int)
        (Printf.sprintf "%s under %s" msg (D.mech_name m))
        expected
        (run_mech m ~injections items))
    all_mechs

let test_read_eintr () =
  (* A blocking read with no SA_RESTART returns -EINTR. *)
  let prog =
    map_glob2 @ pipe_fds
    @ install_g ~flags:0 Defs.sigusr1
    @ [
        mov_ri Isa.rbx (g2 + 0x20);
        load Isa.rdi Isa.rbx 0;
        mov_ri Isa.rsi (g2 + 0x80);
        mov_ri Isa.rdx 8;
        mov_ri Isa.rax Defs.sys_read; syscall;
      ]
    @ encode_exit @ handler_block
  in
  check_mechs "read -EINTR" 14 ~injections:(blocksig ~index:2) prog

let test_read_restart () =
  (* With SA_RESTART the read transparently restarts and completes
     once a helper thread supplies a byte. *)
  let prog =
    map_glob2 @ pipe_fds
    @ install_g ~flags:Defs.sa_restart Defs.sigusr1
    @ stage_child_delay @ clone_thread
    @ [
        mov_ri Isa.rbx (g2 + 0x20);
        load Isa.rdi Isa.rbx 0;
        mov_ri Isa.rsi (g2 + 0x80);
        mov_ri Isa.rdx 8;
        mov_ri Isa.rax Defs.sys_read; syscall;
      ]
    @ encode_exit
    @ [
        Label "thread";
        mov_ri Isa.rdi (g2 + 0xC0);
        mov_ri Isa.rsi 0;
        mov_ri Isa.rax Defs.sys_nanosleep; syscall;
        mov_ri Isa.rbx (g2 + 0x20);
        load Isa.rdi Isa.rbx 8;
        mov_ri Isa.rsi (g2 + 0xE0);
        mov_ri Isa.rdx 1;
        mov_ri Isa.rax Defs.sys_write; syscall;
        mov_ri Isa.rdi 0;
        mov_ri Isa.rax Defs.sys_exit; syscall;
      ]
    @ handler_block
  in
  check_mechs "read restarted" 9 ~injections:(blocksig ~index:3) prog

let fill_pipe =
  (* 16 x 4096 fills the 64KiB pipe buffer exactly. *)
  [
    mov_ri Isa.rbx (g2 + 0x20);
    load Isa.r14 Isa.rbx 8;
    mov_ri Isa.r13 16;
    Label "fill";
    mov_rr Isa.rdi Isa.r14;
    mov_ri Isa.rsi g2;
    mov_ri Isa.rdx 4096;
    mov_ri Isa.rax Defs.sys_write; syscall;
    sub_ri Isa.r13 1;
    cmp_ri Isa.r13 0;
    Jcc_l (Isa.Ne, "fill");
  ]

let blocked_write_1 =
  [
    mov_rr Isa.rdi Isa.r14;
    mov_ri Isa.rsi g2;
    mov_ri Isa.rdx 1;
    mov_ri Isa.rax Defs.sys_write; syscall;
  ]

let test_write_eintr () =
  let prog =
    map_glob2 @ pipe_fds
    @ install_g ~flags:0 Defs.sigusr1
    @ fill_pipe @ blocked_write_1 @ encode_exit @ handler_block
  in
  check_mechs "write -EINTR" 14 ~injections:(blocksig ~index:18) prog

let test_write_restart () =
  let prog =
    map_glob2 @ pipe_fds
    @ install_g ~flags:Defs.sa_restart Defs.sigusr1
    @ stage_child_delay @ clone_thread @ fill_pipe @ blocked_write_1
    @ encode_exit
    @ [
        Label "thread";
        mov_ri Isa.rdi (g2 + 0xC0);
        mov_ri Isa.rsi 0;
        mov_ri Isa.rax Defs.sys_nanosleep; syscall;
        mov_ri Isa.rbx (g2 + 0x20);
        load Isa.rdi Isa.rbx 0;
        mov_ri Isa.rsi (g2 + 0x100);
        mov_ri Isa.rdx 4096;
        mov_ri Isa.rax Defs.sys_read; syscall;
        mov_ri Isa.rdi 0;
        mov_ri Isa.rax Defs.sys_exit; syscall;
      ]
    @ handler_block
  in
  check_mechs "write restarted" 9 ~injections:(blocksig ~index:19) prog

let test_nanosleep_eintr () =
  (* nanosleep is not restartable: -EINTR even under SA_RESTART. *)
  let prog =
    map_glob2
    @ install_g ~flags:Defs.sa_restart Defs.sigusr1
    @ [
        mov_ri Isa.rbx (g2 + 0xC0);
        mov_ri Isa.rcx 5;
        store Isa.rbx 0 Isa.rcx;
        mov_ri Isa.rcx 0;
        store Isa.rbx 8 Isa.rcx;
        mov_ri Isa.rdi (g2 + 0xC0);
        mov_ri Isa.rsi 0;
        mov_ri Isa.rax Defs.sys_nanosleep; syscall;
      ]
    @ encode_exit @ handler_block
  in
  check_mechs "nanosleep -EINTR" 14 ~injections:(blocksig ~index:1) prog

let test_futex_eintr () =
  (* FUTEX_WAIT is not restartable here either. *)
  let prog =
    map_glob2
    @ install_g ~flags:Defs.sa_restart Defs.sigusr1
    @ [
        mov_ri Isa.rdi (g2 + 0x40);
        mov_ri Isa.rsi Defs.futex_wait;
        mov_ri Isa.rdx 0;
        mov_ri Isa.r10 0;
        mov_ri Isa.rax Defs.sys_futex; syscall;
      ]
    @ encode_exit @ handler_block
  in
  check_mechs "futex -EINTR" 14 ~injections:(blocksig ~index:1) prog

let test_epoll_eintr () =
  (* epoll_wait is never restarted, matching signal(7). *)
  let prog =
    map_glob2
    @ install_g ~flags:Defs.sa_restart Defs.sigusr1
    @ [
        mov_ri Isa.rdi 8;
        mov_ri Isa.rax Defs.sys_epoll_create; syscall;
        mov_rr Isa.rdi Isa.rax;
        mov_ri Isa.rsi (g2 + 0x100);
        mov_ri Isa.rdx 8;
        mov_ri64 Isa.r10 (-1L);
        mov_ri Isa.rax Defs.sys_epoll_wait; syscall;
      ]
    @ encode_exit @ handler_block
  in
  check_mechs "epoll_wait -EINTR" 14 ~injections:(blocksig ~index:2) prog

let tests =
  [
    Alcotest.test_case "handler runs and returns" `Quick
      test_handler_runs_and_returns;
    Alcotest.test_case "handler preserves GPRs" `Quick
      test_handler_preserves_registers;
    Alcotest.test_case "handler preserves xmm" `Quick
      test_handler_preserves_xmm;
    Alcotest.test_case "default action kills" `Quick test_default_action_kills;
    Alcotest.test_case "SIGCHLD default-ignored" `Quick
      test_sigchld_ignored_by_default;
    Alcotest.test_case "SIG_IGN" `Quick test_sig_ign;
    Alcotest.test_case "sigprocmask defers" `Quick test_sigprocmask_defers;
    Alcotest.test_case "no recursive delivery while masked" `Quick
      test_nested_handler_mask;
    Alcotest.test_case "read -EINTR (all mechanisms)" `Quick test_read_eintr;
    Alcotest.test_case "read SA_RESTART (all mechanisms)" `Quick
      test_read_restart;
    Alcotest.test_case "write -EINTR (all mechanisms)" `Quick test_write_eintr;
    Alcotest.test_case "write SA_RESTART (all mechanisms)" `Quick
      test_write_restart;
    Alcotest.test_case "nanosleep -EINTR despite SA_RESTART" `Quick
      test_nanosleep_eintr;
    Alcotest.test_case "futex -EINTR despite SA_RESTART" `Quick
      test_futex_eintr;
    Alcotest.test_case "epoll_wait -EINTR despite SA_RESTART" `Quick
      test_epoll_eintr;
  ]
