let () =
  Alcotest.run "lazypoline-sim"
    [
      ("isa", Test_isa.tests);
      ("asm", Test_asm.tests);
      ("mem", Test_mem.tests);
      ("cpu", Test_cpu.tests);
      ("icache", Test_icache.tests);
      ("bpf", Test_bpf.tests);
      ("vfs", Test_vfs.tests);
      ("net", Test_net.tests);
      ("kernel", Test_kernel.tests);
      ("signals", Test_signals.tests);
      ("sud-seccomp", Test_sud_seccomp.tests);
      ("lazypoline", Test_lazypoline.tests);
      ("baselines", Test_baselines.tests);
      ("minicc", Test_minicc.tests);
      ("workloads", Test_workloads.tests);
      ("experiments", Test_experiments.tests);
      ("mpk", Test_mpk.tests);
      ("lazypoline-edge", Test_lazypoline_edge.tests);
      ("minicc-interpose", Test_minicc_interpose.tests);
      ("kernel-more", Test_kernel_more.tests);
      ("stats", Test_stats.tests);
      ("trace", Test_trace.tests);
      ("metrics", Test_metrics.tests);
      ("procfs", Test_procfs.tests);
      ("profiler", Test_profiler.tests);
      ("audit", Test_audit.tests);
      ("chaos", Test_chaos.tests);
      ("debug", Test_debug.tests);
      ("obs", Test_obs.tests);
      ("policy", Test_policy.tests);
    ]
