(** The divergence auditor (observability layer 3).

    Three claims under test:
    - record → replay is bit-identical (serialized stream, chain hash,
      checkpoint hashes, final state hash) for every interposition
      mechanism — the recorder is deterministic and observation-only;
    - the cross-mechanism diff is empty for every correct interposer:
      raw, SUD, zpoline, lazypoline, seccomp-user and ptrace produce
      identical per-task application streams on the microbench and the
      minicc-JIT workloads;
    - a seeded fault (an interposer clobbering a callee-saved register
      on one syscall) is localized by the bisection to exactly that
      syscall index and register, with a state delta at the point of
      divergence. *)

open Sim_kernel
module A = Sim_audit.Audit
module D = Harness.Divergence
module Micro = Workloads.Microbench_prog

let all_configs =
  Micro.
    [
      Native;
      Native_sud_allow;
      Zpoline;
      Lazypoline_full;
      Lazypoline_noxstate;
      Lazypoline_nosud;
      Lazypoline_protected;
      Sud;
      Seccomp_user;
      Seccomp_bpf;
      Ptrace;
    ]

let record_micro ?(iters = 120) ?(nr = 500) config =
  let a = A.create ~checkpoint_every:16 () in
  let final = ref 0L in
  let cycles =
    Micro.run ~iters ~nr ~auditor:a
      ~on_done:(fun k _t -> final := Kernel.audit_final_hash k a)
      config
  in
  let log = D.log_string ~final_hash:!final a in
  (cycles, log, A.chain a, !final)

(* --- record → replay bit-identity ---------------------------------- *)

let test_replay_identical_all_configs () =
  List.iter
    (fun config ->
      let c1, log1, chain1, f1 = record_micro config in
      let c2, log2, chain2, f2 = record_micro config in
      let name = Micro.config_name config in
      Alcotest.(check (float 0.0)) (name ^ ": cycles") c1 c2;
      Alcotest.(check string) (name ^ ": stream") log1 log2;
      Alcotest.(check int64) (name ^ ": chain") chain1 chain2;
      Alcotest.(check int64) (name ^ ": final hash") f1 f2;
      Alcotest.(check bool) (name ^ ": non-empty") true
        (String.length log1 > 0))
    all_configs

let prop_record_replay =
  QCheck.Test.make ~count:12 ~name:"record → replay bit-identical (random)"
    (QCheck.make
       ~print:(fun (ci, iters, nr) ->
         Printf.sprintf "%s iters=%d nr=%d"
           (Micro.config_name (List.nth all_configs ci))
           iters nr)
       QCheck.Gen.(
         triple
           (int_range 0 (List.length all_configs - 1))
           (int_range 20 200) (int_range 480 520)))
    (fun (ci, iters, nr) ->
      let config = List.nth all_configs ci in
      let _, log1, chain1, f1 = record_micro ~iters ~nr config in
      let _, log2, chain2, f2 = record_micro ~iters ~nr config in
      log1 = log2 && chain1 = chain2 && f1 = f2)

let replay_forkexec mech =
  let a, k, _ = D.run_audited ~checkpoint_every:8 mech D.Forkexec in
  D.log_string ~final_hash:(Kernel.audit_final_hash k a) a

let test_replay_forkexec () =
  List.iter
    (fun mech ->
      let l1 = replay_forkexec mech and l2 = replay_forkexec mech in
      Alcotest.(check string)
        (D.mech_name mech ^ ": fork/execve stream")
        l1 l2;
      (* both tasks must appear in the stream *)
      Alcotest.(check bool)
        (D.mech_name mech ^ ": two tasks")
        true
        (String.length l1 > 0 && String.contains l1 '\n'))
    [ D.Raw; D.Lazypoline_m; D.Sud ]

(* --- the audited stream has the right shape ------------------------ *)

let test_stream_shape () =
  let a = A.create ~checkpoint_every:16 () in
  ignore (Micro.run ~iters:50 ~auditor:a Micro.Native);
  (* 50 loop syscalls + exit_group, all App scope *)
  let app = A.app_stream_of_tid a 1 in
  Alcotest.(check int) "app events" 51 (Array.length app);
  Alcotest.(check int) "app count" 51 (A.app_count a);
  (match app.(0).A.ev with
  | A.Syscall { nr; ret = Some r; _ } ->
      Alcotest.(check int) "nr" 500 nr;
      Alcotest.(check int64) "ENOSYS" (Int64.of_int (-Defs.enosys)) r
  | _ -> Alcotest.fail "expected a syscall event");
  (match app.(50).A.ev with
  | A.Syscall { nr; ret = None; _ } ->
      Alcotest.(check int) "exit_group" Defs.sys_exit_group nr
  | _ -> Alcotest.fail "expected exit_group with no result");
  (* checkpoints were taken every 16 app syscalls *)
  Alcotest.(check int) "checkpoints" 3 (List.length (A.checkpoints a))

let test_mech_events_classified () =
  (* under SUD every app syscall also produces a SIGSYS delivery, a
     stub re-issue and a sigreturn; the App stream must still equal
     the raw one *)
  let raw = A.create () in
  ignore (Micro.run ~iters:40 ~auditor:raw Micro.Native);
  let sud = A.create () in
  ignore (Micro.run ~iters:40 ~auditor:sud Micro.Sud);
  let mech_events =
    List.filter (fun (e : A.entry) -> e.A.scope = A.Mech) (A.entries sud)
  in
  Alcotest.(check bool) "sud has mechanism-private events" true
    (List.length mech_events > 0);
  Alcotest.(check (option pass)) "no divergence raw vs sud" None
    (A.first_divergence raw sud);
  (* raw has no Mech events at all *)
  Alcotest.(check int) "raw is all-App" 0
    (List.length
       (List.filter (fun (e : A.entry) -> e.A.scope = A.Mech) (A.entries raw)))

(* --- cross-mechanism zero divergence ------------------------------- *)

let test_diff_micro_zero () =
  let o = D.diff (D.Micro { iters = 60; nr = 500 }) in
  if o.D.o_findings <> [] then Alcotest.failf "diverged:\n%s" o.D.o_text;
  Alcotest.(check int) "all six mechanisms ran" 6 (List.length o.D.o_runs)

let test_diff_minicc_jit_zero () =
  let o = D.diff (D.Prog { src = Harness.Experiments.tcc_app; jit = true }) in
  if o.D.o_findings <> [] then Alcotest.failf "diverged:\n%s" o.D.o_text

(* --- seeded-fault bisection ---------------------------------------- *)

let test_bisection_localizes_fault () =
  (* zpoline clobbers callee-saved rbx on its 10th interception; rbx
     is the loop counter, so the fault is architecturally visible *)
  let p = { D.at = 10; reg = Sim_isa.Isa.rbx; value = 3L } in
  let o =
    D.diff
      ~perturb_for:(D.Zpoline, p)
      ~mechs:[ D.Raw; D.Zpoline ]
      (D.Micro { iters = 40; nr = 500 })
  in
  match o.D.o_findings with
  | [ f ] ->
      Alcotest.(check string) "mechanism" "zpoline" (D.mech_name f.D.f_mech);
      (* app events are 1-based in the report; index is 0-based *)
      Alcotest.(check int) "first divergent syscall index" 9
        f.D.f_div.A.d_index;
      Alcotest.(check bool)
        ("reason names rbx: " ^ f.D.f_div.A.d_reason)
        true
        (let r = f.D.f_div.A.d_reason in
         String.length r >= 3
         &&
         let found = ref false in
         for i = 0 to String.length r - 3 do
           if String.sub r i 3 = "rbx" then found := true
         done;
         !found);
      (* the delta dump replayed both runs and shows the clobbered
         register *)
      Alcotest.(check bool)
        "delta dump present" true
        (String.length f.D.f_delta > 0)
  | l -> Alcotest.failf "expected exactly one finding, got %d" (List.length l)

let test_bisection_clean_without_fault () =
  let o =
    D.diff ~mechs:[ D.Raw; D.Zpoline ] (D.Micro { iters = 40; nr = 500 })
  in
  Alcotest.(check int) "no findings" 0 (List.length o.D.o_findings)

(* --- create rejects nonsense cadences ------------------------------ *)

let test_create_rejects_nonpositive () =
  List.iter
    (fun bad ->
      match A.create ~checkpoint_every:bad () with
      | _ -> Alcotest.failf "checkpoint_every %d accepted" bad
      | exception Invalid_argument _ -> ())
    [ 0; -1; -64 ];
  (* 1 is the smallest legal cadence *)
  ignore (A.create ~checkpoint_every:1 ())

(* --- observation-only: auditing never perturbs the run ------------- *)

let test_audit_observation_only () =
  List.iter
    (fun config ->
      let bare = Micro.run ~iters:80 config in
      let a = A.create () in
      let audited = Micro.run ~iters:80 ~auditor:a config in
      Alcotest.(check (float 0.0))
        (Micro.config_name config ^ ": cycles identical")
        bare audited)
    all_configs

let tests =
  [
    Alcotest.test_case "replay identical, all 11 configs" `Slow
      test_replay_identical_all_configs;
    QCheck_alcotest.to_alcotest prop_record_replay;
    Alcotest.test_case "replay identical, fork/execve" `Quick
      test_replay_forkexec;
    Alcotest.test_case "stream shape" `Quick test_stream_shape;
    Alcotest.test_case "mechanism-private classification" `Quick
      test_mech_events_classified;
    Alcotest.test_case "diff: microbench zero divergence" `Slow
      test_diff_micro_zero;
    Alcotest.test_case "diff: minicc-jit zero divergence" `Slow
      test_diff_minicc_jit_zero;
    Alcotest.test_case "bisection localizes seeded fault" `Quick
      test_bisection_localizes_fault;
    Alcotest.test_case "bisection clean without fault" `Quick
      test_bisection_clean_without_fault;
    Alcotest.test_case "create rejects non-positive cadence" `Quick
      test_create_rejects_nonpositive;
    Alcotest.test_case "auditing is observation-only" `Slow
      test_audit_observation_only;
  ]
