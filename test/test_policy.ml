(** Syscall-flow-integrity policy engine: graph builder + artifact
    round-trip, enforcement state machine semantics, static minicc
    flow-graph extraction, the observation-only (report-mode) qcheck
    gate, zero-false-positive enforcement across mechanisms and
    workloads, pkey compartment edge cases (pkey_mprotect mid-run,
    munmap/remap with fresh code), strace denial tagging,
    /proc/<pid>/policy, and chaos-as-attacker detection. *)

open Sim_isa
open Sim_asm.Asm
open Sim_kernel
module P = Sim_policy.Policy
module D = Harness.Divergence
module Sfi = Harness.Sfi
module A = Sim_audit.Audit

let contains ~needle hay =
  let nl = String.length needle and l = String.length hay in
  let rec go i = i + nl <= l && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let all_mechs = [ D.Raw; D.Sud; D.Zpoline; D.Lazypoline_m; D.Seccomp; D.Ptrace ]

(* --- graphs and artifacts ------------------------------------------ *)

let sample_graph () =
  let g = P.create_graph ~name:"sample.c" ~jit:true () in
  P.add_node g ~nr:Defs.sys_getpid ~sites:[ 0x400010; 0x400020 ] ();
  P.add_node g ~nr:Defs.sys_write ();
  P.add_node g ~nr:Defs.sys_exit_group ~sites:[ 0x400030 ] ();
  P.add_edge g ~from_nr:P.start_nr ~to_nr:Defs.sys_getpid;
  P.add_edge g ~from_nr:Defs.sys_getpid ~to_nr:Defs.sys_write;
  P.add_edge g ~from_nr:Defs.sys_write ~to_nr:Defs.sys_getpid;
  P.add_edge g ~from_nr:Defs.sys_getpid ~to_nr:Defs.sys_exit_group;
  P.add_compartment g ~pkey:0
    ~nrs:[ Defs.sys_getpid; Defs.sys_write; Defs.sys_exit_group ];
  g

let test_artifact_roundtrip () =
  let g = sample_graph () in
  let text = P.graph_to_string g in
  match P.graph_of_string text with
  | Error e -> Alcotest.fail e
  | Ok g2 ->
      Alcotest.(check string) "name" "sample.c" g2.P.g_name;
      Alcotest.(check bool) "jit" true g2.P.g_jit;
      Alcotest.(check int) "nodes" (P.node_count g) (P.node_count g2);
      Alcotest.(check int) "edges" (P.edge_count g) (P.edge_count g2);
      Alcotest.(check int) "compartments" (P.compartment_count g)
        (P.compartment_count g2);
      Alcotest.(check bool) "site kept" true
        (P.site_ok g2 ~nr:Defs.sys_getpid ~pc:0x400010);
      Alcotest.(check bool) "site not invented" false
        (P.site_ok g2 ~nr:Defs.sys_getpid ~pc:0x999);
      Alcotest.(check bool) "edge kept" true
        (P.has_edge g2 ~from_nr:Defs.sys_write ~to_nr:Defs.sys_getpid);
      Alcotest.(check bool) "compartment kept" true
        (P.compartment_ok g2 ~pkey:0 ~nr:Defs.sys_write);
      Alcotest.(check bool) "foreign pkey denied" false
        (P.compartment_ok g2 ~pkey:1 ~nr:Defs.sys_write);
      (* serialization is canonical: a round-trip reproduces the text *)
      Alcotest.(check string) "idempotent" text (P.graph_to_string g2)

let test_artifact_errors () =
  let expect_error what = function
    | Ok _ -> Alcotest.failf "%s: parsed but should not" what
    | Error _ -> ()
  in
  expect_error "future version"
    (P.graph_of_string "% simtrace-policy/9\nN 39\n");
  expect_error "wrong kind" (P.graph_of_string "% simtrace-audit/1\nN 39\n");
  expect_error "no magic" (P.graph_of_string "N 39\n");
  let good = P.graph_to_string (sample_graph ()) in
  expect_error "bad row" (P.graph_of_string (good ^ "X nonsense\n"))

(* --- the enforcement state machine --------------------------------- *)

let kind = Alcotest.testable (Fmt.of_to_string P.vkind_name) ( = )

let check_v what expected = function
  | Some (v : P.violation) -> Alcotest.check kind what expected v.P.v_kind
  | None -> Alcotest.failf "%s: no violation" what

let test_engine_kinds () =
  let g = sample_graph () in
  (* unknown number: node check fires first whatever else is wrong *)
  let p = P.create g in
  check_v "node" P.Vnode
    (P.check p ~tid:1 ~nr:Defs.sys_close ~site:0x999 ~pkey:7 ~index:1);
  (* report mode advances past the rogue syscall (it did execute) *)
  Alcotest.(check int) "report advances" Defs.sys_close (P.last_nr p ~tid:1);
  (* known number, impossible successor *)
  let p = P.create g in
  check_v "edge" P.Vedge
    (P.check p ~tid:1 ~nr:Defs.sys_write ~site:0x0 ~pkey:0 ~index:1);
  (* right number and edge, wrong call site *)
  let p = P.create g in
  check_v "site" P.Vsite
    (P.check p ~tid:1 ~nr:Defs.sys_getpid ~site:0x999 ~pkey:0 ~index:1);
  (* everything right but the issuing page's pkey has no privilege *)
  let p = P.create g in
  check_v "compartment" P.Vcompartment
    (P.check p ~tid:1 ~nr:Defs.sys_getpid ~site:0x400010 ~pkey:2 ~index:1);
  Alcotest.(check int) "kind counters" 1 (P.kind_count p P.Vcompartment)

let test_engine_deny_holds_position () =
  let g = sample_graph () in
  let p = P.create ~mode:P.Deny g in
  Alcotest.(check bool) "getpid clean" true
    (P.check p ~tid:1 ~nr:Defs.sys_getpid ~site:0x400010 ~pkey:0 ~index:1
    = None);
  check_v "close denied" P.Vnode
    (P.check p ~tid:1 ~nr:Defs.sys_close ~site:0x400010 ~pkey:0 ~index:2);
  (* the denied syscall never ran: the next one is judged as getpid's
     successor, so write is still reachable *)
  Alcotest.(check int) "deny holds position" Defs.sys_getpid
    (P.last_nr p ~tid:1);
  Alcotest.(check bool) "write still a successor" true
    (P.check p ~tid:1 ~nr:Defs.sys_write ~site:0x0 ~pkey:0 ~index:3 = None);
  Alcotest.(check int) "checks counted" 3 p.P.checks;
  Alcotest.(check int) "one violation" 1 (P.violation_count p)

let test_learning () =
  let p = P.learner ~name:"learned" () in
  Alcotest.(check bool) "learning never flags" true
    (P.check p ~tid:1 ~nr:Defs.sys_getpid ~site:0x400010 ~pkey:0 ~index:1
    = None);
  Alcotest.(check bool) "learning never flags 2" true
    (P.check p ~tid:1 ~nr:Defs.sys_write ~site:0x400020 ~pkey:0 ~index:2
    = None);
  P.freeze p;
  P.reset_state p;
  let g = p.P.graph in
  Alcotest.(check int) "nodes learned" 2 (P.node_count g);
  Alcotest.(check bool) "start edge" true
    (P.has_edge g ~from_nr:P.start_nr ~to_nr:Defs.sys_getpid);
  Alcotest.(check bool) "transition edge" true
    (P.has_edge g ~from_nr:Defs.sys_getpid ~to_nr:Defs.sys_write);
  Alcotest.(check bool) "site learned" true
    (P.site_ok g ~nr:Defs.sys_write ~pc:0x400020);
  Alcotest.(check bool) "compartment learned" true
    (P.compartment_ok g ~pkey:0 ~nr:Defs.sys_getpid)

let test_oracle () =
  let g = sample_graph () in
  (* close at #3 is out of graph; the oracle's position skips it, so
     the write at #4 is still judged as getpid's successor *)
  let nrs =
    [ Defs.sys_getpid; Defs.sys_write; Defs.sys_close; Defs.sys_getpid;
      Defs.sys_exit_group ]
  in
  Alcotest.(check (list int)) "oracle indices" [ 3 ]
    (P.out_of_graph_indices g nrs);
  Alcotest.(check (list int)) "clean stream" []
    (P.out_of_graph_indices g
       [ Defs.sys_getpid; Defs.sys_write; Defs.sys_getpid;
         Defs.sys_exit_group ])

(* --- static extraction (minicc flow graphs) ------------------------ *)

let flow_src =
  "long main() { long i = 0; while (i < 3) { syscall(39); i = i + 1; } \
   syscall(1, 1, \"hi\\n\", 3); return 0; }"

let test_flowgraph_static () =
  let g = Minicc.Flowgraph.extract ~name:"flow.c" ~jit:false flow_src in
  Alcotest.(check bool) "getpid node" true (P.has_node g Defs.sys_getpid);
  Alcotest.(check bool) "write node" true (P.has_node g Defs.sys_write);
  Alcotest.(check bool) "exit node" true (P.has_node g Defs.sys_exit_group);
  Alcotest.(check bool) "start edge" true
    (P.has_edge g ~from_nr:P.start_nr ~to_nr:Defs.sys_getpid);
  (* the loop may run zero times *)
  Alcotest.(check bool) "loop-skipped edge" true
    (P.has_edge g ~from_nr:P.start_nr ~to_nr:Defs.sys_write);
  Alcotest.(check bool) "loop back-edge" true
    (P.has_edge g ~from_nr:Defs.sys_getpid ~to_nr:Defs.sys_getpid);
  Alcotest.(check bool) "loop exit edge" true
    (P.has_edge g ~from_nr:Defs.sys_getpid ~to_nr:Defs.sys_write);
  Alcotest.(check bool) "shim exit edge" true
    (P.has_edge g ~from_nr:Defs.sys_write ~to_nr:Defs.sys_exit_group);
  (* no flow from write back into the loop *)
  Alcotest.(check bool) "no bogus edge" false
    (P.has_edge g ~from_nr:Defs.sys_write ~to_nr:Defs.sys_getpid);
  Alcotest.(check int) "one compartment" 1 (P.compartment_count g)

let test_flowgraph_jit () =
  let g = Minicc.Flowgraph.extract ~name:"flow.c" ~jit:true flow_src in
  Alcotest.(check bool) "jit flag" true g.P.g_jit;
  (* the driver's own mmap/mprotect chain is part of the graph *)
  Alcotest.(check bool) "driver mmap node" true (P.has_node g Defs.sys_mmap);
  Alcotest.(check bool) "driver mprotect node" true
    (P.has_node g Defs.sys_mprotect);
  Alcotest.(check bool) "payload node" true (P.has_node g Defs.sys_getpid)

(* --- report mode is observation-only (qcheck) ---------------------- *)

let report_only_prop =
  let graphs =
    [| Minicc.Flowgraph.extract ~name:"flow.c" ~jit:false flow_src;
       Minicc.Flowgraph.extract ~name:"flow.c" ~jit:true flow_src |]
  in
  QCheck.Test.make
    ~name:"report-mode policy is bit-identical (six mechanisms, ±jit)"
    ~count:10
    QCheck.(pair (int_range 0 5) bool)
    (fun (mi, jit) ->
      let mech = List.nth all_mechs mi in
      let graph = graphs.(if jit then 1 else 0) in
      let ok, detail =
        Sfi.report_identical graph mech (D.Prog { src = flow_src; jit })
      in
      if not ok then QCheck.Test.fail_report detail;
      true)

(* --- zero false positives under enforcement ------------------------ *)

let test_enforce_clean_micro () =
  let micro = D.Micro { iters = 12; nr = Defs.sys_getpid } in
  let graph = Sfi.learn micro in
  List.iter
    (fun mech ->
      let ok, detail = Sfi.enforce_clean graph mech micro in
      if not ok then
        Alcotest.failf "micro under %s: %s" (D.mech_name mech) detail)
    all_mechs

let test_enforce_clean_prog () =
  let graph = Minicc.Flowgraph.extract ~name:"flow.c" ~jit:false flow_src in
  let jgraph = Minicc.Flowgraph.extract ~name:"flow.c" ~jit:true flow_src in
  List.iter
    (fun mech ->
      let ok, detail =
        Sfi.enforce_clean graph mech (D.Prog { src = flow_src; jit = false })
      in
      if not ok then
        Alcotest.failf "prog under %s: %s" (D.mech_name mech) detail)
    all_mechs;
  List.iter
    (fun mech ->
      let ok, detail =
        Sfi.enforce_clean jgraph mech (D.Prog { src = flow_src; jit = true })
      in
      if not ok then
        Alcotest.failf "jit prog under %s: %s" (D.mech_name mech) detail)
    [ D.Zpoline; D.Lazypoline_m ]

let test_enforce_clean_wrk () =
  let wrk =
    D.Wrk
      {
        flavour = Workloads.Webserver.Nginx_like;
        size_kb = 4;
        conns = 8;
        requests = 200;
      }
  in
  let graph = Sfi.learn wrk in
  let ok, detail = Sfi.enforce_clean ~require_exit:false graph D.Lazypoline_m wrk in
  if not ok then Alcotest.fail detail

(* --- pkey compartment edge cases ----------------------------------- *)

(** Run [items] under a kernel with [policy] attached (plus an auditor,
    so violations localize to app-stream indices). *)
let run_items ?policy items =
  let k = Kernel.create () in
  (match policy with Some p -> Kernel.attach_policy k p | None -> ());
  Kernel.attach_audit k (A.create ());
  let img = Loader.image_of_items items in
  let t = Kernel.spawn k img in
  if not (Kernel.run_until_exit ~max_slices:200_000 k) then
    Alcotest.fail "program did not terminate";
  (t.Types.exit_code, k, t)

(* pkey_mprotect of the program's own text page mid-run: syscalls after
   the retag are issued from a pkey the compartment table never granted
   privileges to. *)
let retag_items =
  [
    mov_ri Isa.rdi Loader.code_base;
    mov_ri Isa.rsi 4096;
    mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_exec);
    mov_ri Isa.r10 1;
    mov_ri Isa.rax Defs.sys_pkey_mprotect;
    syscall;
    mov_ri Isa.rax Defs.sys_getpid;
    syscall;
    mov_ri Isa.rdi 0;
    mov_ri Isa.rax Defs.sys_exit_group;
    syscall;
  ]

let retag_graph () =
  let g = P.create_graph ~name:"retag" () in
  P.add_node g ~nr:Defs.sys_pkey_mprotect ();
  P.add_node g ~nr:Defs.sys_getpid ();
  P.add_node g ~nr:Defs.sys_exit_group ();
  P.add_edge g ~from_nr:P.start_nr ~to_nr:Defs.sys_pkey_mprotect;
  P.add_edge g ~from_nr:Defs.sys_pkey_mprotect ~to_nr:Defs.sys_getpid;
  P.add_edge g ~from_nr:Defs.sys_getpid ~to_nr:Defs.sys_exit_group;
  P.add_compartment g ~pkey:0
    ~nrs:[ Defs.sys_pkey_mprotect; Defs.sys_getpid; Defs.sys_exit_group ];
  g

let test_pkey_retag_reported () =
  let p = P.create (retag_graph ()) in
  let code, _, _ = run_items ~policy:p retag_items in
  Alcotest.(check int) "exited" 0 code;
  (* the retag syscall itself still issues from pkey 0 (the check runs
     pre-dispatch); getpid and exit_group come from the pkey-1 page *)
  Alcotest.(check int) "two compartment violations" 2
    (P.kind_count p P.Vcompartment);
  Alcotest.(check int) "nothing else" 2 (P.violation_count p);
  match P.violations p with
  | v :: _ ->
      Alcotest.(check int) "first is getpid" Defs.sys_getpid v.P.v_nr;
      Alcotest.(check int) "pkey recorded" 1 v.P.v_pkey
  | [] -> Alcotest.fail "no violations"

let test_pkey_retag_killed () =
  let p = P.create ~mode:P.Kill (retag_graph ()) in
  let code, _, _ = run_items ~policy:p retag_items in
  Alcotest.(check int) "killed by SIGSYS" (128 + Defs.sigsys) code;
  Alcotest.(check int) "one kill" 1 p.P.killed;
  Alcotest.(check int) "localized" 1 (P.violation_count p)

(* munmap/remap: the engine's pkey lookup is live, so a scratch page
   that held pkey-3 code loses the taint when it is unmapped and a
   fresh mapping (pkey 0) is populated with new code — which also
   forces the icache to refetch the rewritten page. *)
let scratch = 0x9000

let stub_bytes =
  (Sim_asm.Asm.assemble ~base:scratch
     [ mov_ri Isa.rax Defs.sys_getpid; syscall; ret ])
    .Sim_asm.Asm.bytes

(* Write [stub_bytes] to [scratch] with 8-byte guest stores. *)
let write_stub_items =
  let word_at i =
    let w = ref 0L in
    for j = 7 downto 0 do
      let b =
        if i + j < String.length stub_bytes then
          Char.code stub_bytes.[i + j]
        else 0
      in
      w := Int64.logor (Int64.shift_left !w 8) (Int64.of_int b)
    done;
    !w
  in
  let items = ref [] in
  let i = ref 0 in
  while !i < String.length stub_bytes do
    items :=
      store Isa.rbx !i Isa.rcx :: mov_ri64 Isa.rcx (word_at !i) :: !items;
    i := !i + 8
  done;
  (mov_ri Isa.rbx scratch :: List.rev !items)
  @ [ mov_ri64 Isa.rdx (Int64.of_int scratch); call_reg Isa.rdx ]

let map_scratch_items =
  [
    mov_ri Isa.rdi scratch;
    mov_ri Isa.rsi 4096;
    mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write lor Defs.prot_exec);
    mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
    mov_ri64 Isa.r8 (-1L);
    mov_ri Isa.r9 0;
    mov_ri Isa.rax Defs.sys_mmap;
    syscall;
  ]

let remap_items =
  map_scratch_items
  (* tag the scratch page pkey 3 *)
  @ [
      mov_ri Isa.rdi scratch;
      mov_ri Isa.rsi 4096;
      mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write lor Defs.prot_exec);
      mov_ri Isa.r10 3;
      mov_ri Isa.rax Defs.sys_pkey_mprotect;
      syscall;
    ]
  @ write_stub_items (* getpid from the pkey-3 page: violation *)
  @ [
      mov_ri Isa.rdi scratch;
      mov_ri Isa.rsi 4096;
      mov_ri Isa.rax Defs.sys_munmap;
      syscall;
    ]
  @ map_scratch_items (* fresh mapping: pkey back to 0 *)
  @ write_stub_items (* same call, now clean *)
  @ [ mov_ri Isa.rdi 0; mov_ri Isa.rax Defs.sys_exit_group; syscall ]

let remap_graph () =
  let g = P.create_graph ~name:"remap" () in
  List.iter
    (fun nr -> P.add_node g ~nr ())
    [ Defs.sys_mmap; Defs.sys_pkey_mprotect; Defs.sys_munmap;
      Defs.sys_getpid; Defs.sys_exit_group ];
  List.iter
    (fun (a, b) -> P.add_edge g ~from_nr:a ~to_nr:b)
    [
      (P.start_nr, Defs.sys_mmap);
      (Defs.sys_mmap, Defs.sys_pkey_mprotect);
      (Defs.sys_pkey_mprotect, Defs.sys_getpid);
      (Defs.sys_getpid, Defs.sys_munmap);
      (Defs.sys_munmap, Defs.sys_mmap);
      (Defs.sys_mmap, Defs.sys_getpid);
      (Defs.sys_getpid, Defs.sys_exit_group);
    ];
  P.add_compartment g ~pkey:0
    ~nrs:
      [ Defs.sys_mmap; Defs.sys_pkey_mprotect; Defs.sys_munmap;
        Defs.sys_getpid; Defs.sys_exit_group ];
  g

let test_pkey_unmap_remap () =
  let p = P.create (remap_graph ()) in
  let code, _, _ = run_items ~policy:p remap_items in
  Alcotest.(check int) "exited" 0 code;
  (* exactly the first stub call violates: same code, same site page,
     but only the first mapping carried pkey 3 *)
  Alcotest.(check int) "one violation" 1 (P.violation_count p);
  match P.violations p with
  | [ v ] ->
      Alcotest.check kind "compartment kind" P.Vcompartment v.P.v_kind;
      Alcotest.(check int) "getpid" Defs.sys_getpid v.P.v_nr;
      Alcotest.(check int) "tainted pkey" 3 v.P.v_pkey;
      Alcotest.(check bool) "site inside the scratch page" true
        (v.P.v_site >= scratch && v.P.v_site < scratch + 4096)
  | _ -> Alcotest.fail "expected exactly one violation"

(* --- strace tagging and /proc -------------------------------------- *)

let test_strace_policy_tag () =
  let g = P.create_graph ~name:"nowrite" () in
  P.add_node g ~nr:Defs.sys_getpid ();
  P.add_node g ~nr:Defs.sys_exit_group ();
  P.add_edge g ~from_nr:P.start_nr ~to_nr:Defs.sys_getpid;
  P.add_edge g ~from_nr:Defs.sys_getpid ~to_nr:Defs.sys_exit_group;
  let p = P.create ~mode:P.Deny g in
  let k = Kernel.create () in
  Kernel.attach_policy k p;
  let log = Strace.attach k in
  let img =
    Loader.image_of_items
      [
        mov_ri Isa.rax Defs.sys_getpid;
        syscall;
        mov_ri Isa.rdi 1;
        mov_ri Isa.rsi 0;
        mov_ri Isa.rdx 0;
        mov_ri Isa.rax Defs.sys_write;
        syscall;
        mov_ri Isa.rdi 0;
        mov_ri Isa.rax Defs.sys_exit_group;
        syscall;
      ]
  in
  let t = Kernel.spawn k img in
  if not (Kernel.run_until_exit ~max_slices:200_000 k) then
    Alcotest.fail "program did not terminate";
  Alcotest.(check int) "exited cleanly" 0 t.Types.exit_code;
  Alcotest.(check int) "write denied" 1 p.P.denied;
  let lines = List.rev !log in
  Alcotest.(check bool) "denial tagged" true
    (List.exists
       (fun l -> contains ~needle:"EPERM (policy)" l)
       lines);
  List.iter
    (fun l ->
      if contains ~needle:"getpid" l then
        Alcotest.(check bool) "clean call untagged" false
          (contains ~needle:"(policy)" l))
    lines

let test_procfs_policy () =
  let p = P.create (retag_graph ()) in
  let _, k, t = run_items ~policy:p retag_items in
  let s =
    match Vfs.read_file k.Types.vfs (Printf.sprintf "/proc/%d/policy" t.Types.tid) with
    | Ok s -> s
    | Error e -> Alcotest.failf "read /proc policy: error %d" e
  in
  Alcotest.(check bool) "mode line" true (contains ~needle:"policy:\treport" s);
  Alcotest.(check bool) "graph name" true (contains ~needle:"retag" s);
  Alcotest.(check bool) "violations rendered" true
    (contains ~needle:"policy compartment violation" s);
  let k2 = Kernel.create () in
  let t2 = Kernel.spawn k2 (Loader.image_of_items retag_items) in
  ignore (Kernel.run_until_exit ~max_slices:200_000 k2 : bool);
  match Vfs.read_file k2.Types.vfs (Printf.sprintf "/proc/%d/policy" t2.Types.tid) with
  | Ok s -> Alcotest.(check bool) "detached" true (contains ~needle:"detached" s)
  | Error e -> Alcotest.failf "read /proc policy: error %d" e

(* --- chaos as the attacker ----------------------------------------- *)

let test_detect_forced_ptrace () =
  (* ptrace writes the saved tracee context: the clobber persists and
     the rogue syscalls reach the kernel — all must be flagged *)
  let d = Sfi.detect_forced D.Ptrace 3 in
  if not d.Sfi.det_ok then Alcotest.fail (Sfi.describe_detection d);
  Alcotest.(check bool) "escapes detected" true (d.Sfi.det_truth <> [])

let test_detect_forced_sud_contained () =
  (* SUD's hook runs in a SIGSYS handler: sigreturn restores the saved
     frame, so the clobber never escapes and the engine must not cry
     wolf *)
  let d = Sfi.detect_forced D.Sud 3 in
  if not d.Sfi.det_ok then Alcotest.fail (Sfi.describe_detection d);
  Alcotest.(check (list int)) "contained" [] d.Sfi.det_truth

let test_attack_report () =
  let ok, report = Sfi.attack_report () in
  if not ok then Alcotest.fail report

let test_chaos_attack_sweep () =
  let ok, report =
    Sfi.chaos_attack_sweep ~seeds:5 ~mechs:[ D.Zpoline; D.Ptrace ] ()
  in
  if not ok then Alcotest.fail report

let tests =
  [
    Alcotest.test_case "artifact round-trip" `Quick test_artifact_roundtrip;
    Alcotest.test_case "artifact errors" `Quick test_artifact_errors;
    Alcotest.test_case "violation kinds + precedence" `Quick test_engine_kinds;
    Alcotest.test_case "deny holds the position" `Quick
      test_engine_deny_holds_position;
    Alcotest.test_case "learning builds the graph" `Quick test_learning;
    Alcotest.test_case "ground-truth oracle" `Quick test_oracle;
    Alcotest.test_case "static flow graph" `Quick test_flowgraph_static;
    Alcotest.test_case "jit flow graph (driver chain)" `Quick
      test_flowgraph_jit;
    QCheck_alcotest.to_alcotest report_only_prop;
    Alcotest.test_case "enforce clean: micro, six mechanisms" `Quick
      test_enforce_clean_micro;
    Alcotest.test_case "enforce clean: minicc prog ±jit" `Quick
      test_enforce_clean_prog;
    Alcotest.test_case "enforce clean: wrk macrobench" `Quick
      test_enforce_clean_wrk;
    Alcotest.test_case "pkey retag mid-run: reported" `Quick
      test_pkey_retag_reported;
    Alcotest.test_case "pkey retag mid-run: kill verdict" `Quick
      test_pkey_retag_killed;
    Alcotest.test_case "pkey taint dies with the mapping" `Quick
      test_pkey_unmap_remap;
    Alcotest.test_case "strace tags policy denials" `Quick
      test_strace_policy_tag;
    Alcotest.test_case "/proc/<pid>/policy" `Quick test_procfs_policy;
    Alcotest.test_case "forced clobber: ptrace escape flagged" `Quick
      test_detect_forced_ptrace;
    Alcotest.test_case "forced clobber: SUD containment" `Quick
      test_detect_forced_sud_contained;
    Alcotest.test_case "attack report: all classes, all mechanisms" `Quick
      test_attack_report;
    Alcotest.test_case "chaos attack sweep (enforce mode)" `Quick
      test_chaos_attack_sweep;
  ]
