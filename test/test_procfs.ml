(** The /proc synthetic filesystem: host-side reads through the VFS,
    the maps-vs-MMU acceptance check, and the guest-visible view — a
    compiled C program reading its own [/proc/self/interposer] and
    asserting the fast-path count grew after its syscall sites were
    rewritten. *)

open Sim_kernel

let contains ~needle hay =
  let nl = String.length needle and l = String.length hay in
  let rec go i = i + nl <= l && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let read_proc k path =
  match Vfs.read_file k.Types.vfs path with
  | Ok s -> s
  | Error e -> Alcotest.failf "read %s: error %d" path e

let spawn_prog k src = Kernel.spawn k (Minicc.Codegen.compile_to_image src)

let src_trivial = "long main() { return syscall(39) > 0; }"

(* --- host-side reads ----------------------------------------------- *)

let test_status () =
  let k = Kernel.create () in
  let t = spawn_prog k src_trivial in
  let s = read_proc k (Printf.sprintf "/proc/%d/status" t.Types.tid) in
  Alcotest.(check bool) "Name line" true (contains ~needle:"Name:" s);
  Alcotest.(check bool) "Pid line" true
    (contains ~needle:(Printf.sprintf "Pid:\t%d" t.Types.tid) s);
  Alcotest.(check bool) "runnable" true (contains ~needle:"R (running)" s);
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  let s = read_proc k (Printf.sprintf "/proc/%d/status" t.Types.tid) in
  Alcotest.(check bool) "zombie after exit" true
    (contains ~needle:"Z (zombie)" s)

let test_listing () =
  let k = Kernel.create () in
  let t = spawn_prog k src_trivial in
  (match Vfs.listdir k.Types.vfs ~cwd:"/" "/proc" with
  | Ok names ->
      Alcotest.(check bool) "metrics listed" true (List.mem "metrics" names);
      Alcotest.(check bool) "pid listed" true
        (List.mem (string_of_int t.Types.tid) names)
  | Error e -> Alcotest.failf "listdir /proc: error %d" e);
  match
    Vfs.listdir k.Types.vfs ~cwd:"/"
      (Printf.sprintf "/proc/%d" t.Types.tid)
  with
  | Ok names ->
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " listed") true (List.mem n names))
        [ "status"; "maps"; "interposer" ]
  | Error e -> Alcotest.failf "listdir pid dir: error %d" e

let test_read_only () =
  let k = Kernel.create () in
  let t = spawn_prog k src_trivial in
  ignore t;
  (match
     Vfs.openf k.Types.vfs ~cwd:"/" "/proc/metrics" ~flags:Defs.o_wronly
       ~mode:0
   with
  | Error e -> Alcotest.(check int) "write open refused" Defs.eacces e
  | Ok _ -> Alcotest.fail "write open of a /proc node succeeded");
  match Vfs.add_file k.Types.vfs "/proc/evil" "x" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "created a file under /proc"

let test_nonexistent_pid () =
  let k = Kernel.create () in
  ignore (spawn_prog k src_trivial);
  match Vfs.read_file k.Types.vfs "/proc/9999/status" with
  | Error e -> Alcotest.(check int) "enoent" Defs.enoent e
  | Ok _ -> Alcotest.fail "read status of a nonexistent pid"

(* Acceptance: /proc/<pid>/maps must match the simulated MMU's mapping
   table exactly — parse every line back and compare field by field. *)
let test_maps_exact () =
  let k = Kernel.create () in
  let t = spawn_prog k src_trivial in
  let text = read_proc k (Printf.sprintf "/proc/%d/maps" t.Types.tid) in
  let lines = String.split_on_char '\n' text |> List.filter (( <> ) "") in
  let parsed =
    List.map
      (fun line ->
        Scanf.sscanf line "%x-%x %c%c%c%c" (fun lo hi r w x _p ->
            (lo, hi, r, w, x)))
      lines
  in
  let expected = Sim_mem.Mem.regions t.Types.mem in
  Alcotest.(check int) "one line per region" (List.length expected)
    (List.length parsed);
  List.iter2
    (fun (addr, len, perm) (lo, hi, r, w, x) ->
      Alcotest.(check int) "start" addr lo;
      Alcotest.(check int) "end" (addr + len) hi;
      let flag bit c yes = if perm land bit <> 0 then c = yes else c = '-' in
      Alcotest.(check bool) "r flag" true (flag Sim_mem.Mem.p_r r 'r');
      Alcotest.(check bool) "w flag" true (flag Sim_mem.Mem.p_w w 'w');
      Alcotest.(check bool) "x flag" true (flag Sim_mem.Mem.p_x x 'x'))
    expected parsed

let test_interposer_and_metrics_nodes () =
  let k = Kernel.create () in
  let m = Kernel.enable_metrics k in
  let t = spawn_prog k src_trivial in
  ignore (Lazypoline.install k t (Lazypoline.Hook.dummy ()));
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  let s = read_proc k (Printf.sprintf "/proc/%d/interposer" t.Types.tid) in
  Alcotest.(check bool) "sud on" true (contains ~needle:"sud:\ton" s);
  Alcotest.(check bool) "registry attached" true
    (contains ~needle:"metrics:\tattached" s);
  Alcotest.(check bool) "rewrites reported" true
    (contains
       ~needle:
         (Printf.sprintf "rewrites:\t%d"
            (Option.value ~default:(-1)
               (Sim_metrics.Metrics.find m.Kmetrics.registry
                  "sim_rewrites_total")))
       s);
  let p = read_proc k "/proc/metrics" in
  Alcotest.(check bool) "prometheus exposition" true
    (contains ~needle:"# TYPE sim_syscalls_total counter" p);
  (* the block-engine probes flow through the same registry *)
  Alcotest.(check bool) "block counters exposed" true
    (contains ~needle:"sim_block_hits_total" p
    && contains ~needle:"sim_blocks_compiled_total" p);
  (* and the snapshot semantics: the text equals a direct scrape *)
  Alcotest.(check string) "matches direct scrape" (Kmetrics.prometheus m) p

let test_metrics_node_detached () =
  let k = Kernel.create () in
  ignore (spawn_prog k src_trivial);
  let p = read_proc k "/proc/metrics" in
  Alcotest.(check bool) "placeholder text" true
    (contains ~needle:"not attached" p)

(* --- guest-visible /proc (satellite): fast path grows -------------- *)

let guest_src =
  {|long main() {
  char buf[64];
  long fd = syscall(2, "/proc/self/interposer", 0, 0);
  long n = syscall(0, fd, buf, 64);
  while (n > 0) { syscall(1, 1, buf, n); n = syscall(0, fd, buf, 64); }
  syscall(3, fd);
  syscall(1, 1, "=MID=", 5);
  long acc = 0;
  for (long i = 0; i < 6; i = i + 1) { acc = acc + syscall(186); }
  fd = syscall(2, "/proc/self/interposer", 0, 0);
  n = syscall(0, fd, buf, 64);
  while (n > 0) { syscall(1, 1, buf, n); n = syscall(0, fd, buf, 64); }
  syscall(3, fd);
  syscall(1, 1, "=MAPS=", 6);
  fd = syscall(2, "/proc/self/maps", 0, 0);
  n = syscall(0, fd, buf, 64);
  while (n > 0) { syscall(1, 1, buf, n); n = syscall(0, fd, buf, 64); }
  syscall(3, fd);
  return acc & 7;
}|}

let fast_path_of snapshot =
  let rec find = function
    | [] -> Alcotest.fail "no fast_path line in interposer snapshot"
    | line :: rest -> (
        match Scanf.sscanf_opt line "fast_path:\t%d" (fun n -> n) with
        | Some n -> n
        | None -> find rest)
  in
  find (String.split_on_char '\n' snapshot)

let test_guest_sees_fast_path_grow () =
  let k = Kernel.create () in
  ignore (Kernel.enable_metrics k);
  let t = spawn_prog k guest_src in
  ignore (Lazypoline.install k t (Lazypoline.Hook.dummy ()));
  Buffer.clear Kernel.console;
  Alcotest.(check bool) "terminated" true
    (Kernel.run_until_exit ~max_slices:600_000 k);
  let out = Buffer.contents Kernel.console in
  let before, after_mid =
    match String.index_opt out '=' with
    | None -> Alcotest.fail "no =MID= marker in guest output"
    | Some _ ->
        let mid = "=MID=" in
        let rec split i =
          if i + String.length mid > String.length out then
            Alcotest.fail "no =MID= marker in guest output"
          else if String.sub out i (String.length mid) = mid then
            ( String.sub out 0 i,
              String.sub out
                (i + String.length mid)
                (String.length out - i - String.length mid) )
          else split (i + 1)
        in
        split 0
  in
  let second, maps_dump =
    let mk = "=MAPS=" in
    let rec split i =
      if i + String.length mk > String.length after_mid then
        Alcotest.fail "no =MAPS= marker in guest output"
      else if String.sub after_mid i (String.length mk) = mk then
        ( String.sub after_mid 0 i,
          String.sub after_mid
            (i + String.length mk)
            (String.length after_mid - i - String.length mk) )
      else split (i + 1)
    in
    split 0
  in
  let f1 = fast_path_of before and f2 = fast_path_of second in
  Alcotest.(check bool)
    (Printf.sprintf "fast path grew (%d -> %d)" f1 f2)
    true (f2 > f1);
  Alcotest.(check bool) "guest sees sud on" true
    (contains ~needle:"sud:\ton" before);
  (* the maps the guest read must include its own code segment *)
  (match Sim_mem.Mem.regions t.Types.mem with
  | (addr, len, _) :: _ ->
      let line_start = Printf.sprintf "%08x-" addr in
      ignore len;
      Alcotest.(check bool) "guest maps shows first region" true
        (contains ~needle:line_start maps_dump)
  | [] -> Alcotest.fail "no mapped regions")

(* --- observation-integrity probes (gated macrobench) --------------- *)

(* Scrape one sample's value out of a Prometheus exposition. *)
let metric_value text name =
  let rec find = function
    | [] -> Alcotest.failf "no %s sample in /proc/metrics" name
    | line :: rest -> (
        match
          Scanf.sscanf_opt line "%s %d" (fun n v ->
              if n = name then Some v else None)
        with
        | Some (Some v) -> v
        | _ -> find rest)
  in
  find (String.split_on_char '\n' text)

let test_observation_integrity_probes () =
  (* The gated macrobench: a bounded wrk run with every observer
     attached — tracer, span recorder, metrics.  The integrity probes
     must expose the drop counters, and all of them must read zero:
     a lossy observer means the attribution cannot be trusted. *)
  let k = Kernel.create () in
  ignore (Kernel.enable_metrics k);
  let tr = Sim_trace.Tracer.create ~ncpus:1 () in
  k.Types.tracer <- Some tr;
  let o = Sim_obs.Obs.create ~ncpus:1 () in
  Kernel.attach_obs k o;
  let file = "/www/f" in
  let requests = 200 in
  let t =
    Workloads.Webserver.boot_into k ~port:80 ~exit_after:requests
      ~flavour:Workloads.Webserver.Nginx_like ~workers:1
      ~files:[ (file, String.make 1024 'x') ]
      ()
  in
  ignore (Lazypoline.install k t (Lazypoline.Hook.dummy ()));
  Workloads.Webserver.wait_listening k ~port:80;
  let g =
    Workloads.Wrk.attach ~max_requests:requests k ~port:80 ~conns:4 ~file
      ~file_size:1024
  in
  Alcotest.(check bool) "server exited" true
    (Kernel.run_until_exit ~max_slices:600_000 k);
  Alcotest.(check int) "all requests served" requests
    g.Workloads.Wrk.completed;
  let p = read_proc k "/proc/metrics" in
  (* the per-CPU ring counters are exposed alongside the machine total *)
  Alcotest.(check bool) "per-cpu ring probe exposed" true
    (contains ~needle:"sim_trace_ring_dropped_cpu0" p);
  Alcotest.(check bool) "reservoir evictions probe exposed" true
    (contains ~needle:"sim_obs_reservoir_evictions_total" p);
  (* gates: every observer kept up *)
  Alcotest.(check int) "no trace-ring drops" 0
    (metric_value p "sim_trace_ring_dropped_total");
  Alcotest.(check int) "no drops on cpu0 either" 0
    (metric_value p "sim_trace_ring_dropped_cpu0");
  Alcotest.(check int) "no span in-flight overflow" 0
    (metric_value p "sim_obs_inflight_overflow_total");
  Alcotest.(check int) "every request issued counted" requests
    (metric_value p "sim_obs_requests_issued_total");
  Alcotest.(check int) "every request completed counted" requests
    (metric_value p "sim_obs_requests_completed_total")

let test_integrity_probes_detached () =
  (* Without observers the probes still exist and read zero (scrape
     thunks close over the kernel, not over an instance). *)
  let k = Kernel.create () in
  ignore (Kernel.enable_metrics k);
  ignore (spawn_prog k src_trivial);
  Alcotest.(check bool) "terminated" true (Kernel.run_until_exit k);
  let p = read_proc k "/proc/metrics" in
  Alcotest.(check int) "ring drops read zero" 0
    (metric_value p "sim_trace_ring_dropped_total");
  Alcotest.(check int) "span overflow reads zero" 0
    (metric_value p "sim_obs_inflight_overflow_total");
  Alcotest.(check int) "issued reads zero" 0
    (metric_value p "sim_obs_requests_issued_total")

let tests =
  [
    Alcotest.test_case "status node" `Quick test_status;
    Alcotest.test_case "directory listing" `Quick test_listing;
    Alcotest.test_case "read-only mount" `Quick test_read_only;
    Alcotest.test_case "nonexistent pid" `Quick test_nonexistent_pid;
    Alcotest.test_case "maps matches MMU exactly" `Quick test_maps_exact;
    Alcotest.test_case "interposer + metrics nodes" `Quick
      test_interposer_and_metrics_nodes;
    Alcotest.test_case "metrics node without registry" `Quick
      test_metrics_node_detached;
    Alcotest.test_case "guest reads /proc/self, fast path grows" `Quick
      test_guest_sees_fast_path_grow;
    Alcotest.test_case "observation-integrity probes (gated macrobench)"
      `Quick test_observation_integrity_probes;
    Alcotest.test_case "integrity probes read zero when detached" `Quick
      test_integrity_probes_detached;
  ]
