(** lazypoline: exhaustive, expressive and efficient syscall
    interposition via hybrid SUD + lazy binary rewriting.

    The mechanism, exactly as in the paper:

    - {b Slow path} (exhaustive): Syscall User Dispatch is enabled
      with a per-task %gs-relative selector byte and {e no}
      allowlisted code range.  A syscall executed while the selector
      is BLOCK raises SIGSYS.  Our handler rewrites the faulting
      [syscall] instruction to [call rax] (same size, in place, under
      a spinlock and an mprotect RW/RX flip), emulates the call push,
      redirects the saved context to the shared fast-path entry, and
      sigreturns with the selector {e still ALLOW} — the
      "selector-only SUD" design of Section IV-A-c.

    - {b Fast path} (efficient): the rewritten [call rax] lands in a
      zpoline-style nop sled on the page at VA 0 (the syscall number
      is in [rax] per the ABI) and slides into the interposer entry.
      The entry sets the selector to ALLOW, runs the hook, executes
      the real syscall, restores the selector to BLOCK and returns.

    - {b Signal wrapping} (Fig. 3): application [rt_sigaction] calls
      are interposed; the kernel gets a wrapper handler that pushes
      the current selector on a %gs-relative sigreturn stack and sets
      BLOCK before tail-jumping to the application handler.  The
      handler's [rt_sigreturn] is itself interposed and is redirected
      through the {e sigreturn trampoline}, which restores the saved
      selector after the kernel restored the application context.

    - {b xstate preservation} (Section IV-B-b): optionally, all
      SSE/x87 state is saved to a per-task xsave-area stack on entry
      and restored on exit, making the interposer safe for
      applications that expect the kernel's register-preservation
      guarantees. *)

open Sim_isa
open Sim_mem
open Sim_cpu
open Sim_kernel
open Types

(* This file is the library's main module: re-export the public
   companions so users can say [Lazypoline.Hook] etc. *)
module Hook = Hook
module Layout = Layout

type stats = {
  mutable rewrites : int;  (** syscall sites rewritten to [call rax] *)
  mutable slow_hits : int;  (** SIGSYS slow-path interceptions *)
  mutable fast_hits : int;  (** fast-path entries *)
  mutable signals_wrapped : int;
  mutable sigreturns_redirected : int;
  mutable xstate_overflows : int;
}

type t = {
  kernel : kernel;
  hook : Hook.t;
  preserve_xstate : bool;
  enable_sud : bool;
  protect_selector : bool;
      (** Section VI hardening: the gs area (selector byte, stacks)
          is tagged with a protection key; stubs open a write window
          with [wrpkru] and close it again, so application code
          cannot flip the selector. *)
  stats : stats;
  mutable entry_addr : int;
  mutable trampoline_addr : int;
  mutable restorer_addr : int;
  mutable wrapper_addr : int;
  (* App-visible sigaction shadow: (tgid, sig) -> (handler, mask,
     flags, restorer). *)
  app_handlers : (int * int, int64 * int64 * int64 * int64) Hashtbl.t;
  known_tasks : (int, unit) Hashtbl.t;
  (* clone-with-new-stack: the caller's rsi is temporarily redirected
     (see [prep_clone]); restored at exit, keyed by tid. *)
  clone_rsi : (int, int64) Hashtbl.t;
}

let to_i = Int64.to_int
let i64 = Int64.of_int

let gs_read_u64 (t : task) off = Mem.peek_u64 t.mem (t.ctx.Cpu.gs_base + off)
let gs_write_u64 (t : task) off v = Mem.poke_u64 t.mem (t.ctx.Cpu.gs_base + off) v
let gs_read_u8 (t : task) off = Char.code (Mem.peek_bytes t.mem (t.ctx.Cpu.gs_base + off) 1).[0]
let gs_write_u8 (t : task) off v =
  Mem.poke_bytes t.mem (t.ctx.Cpu.gs_base + off) (String.make 1 (Char.chr v))

let set_selector (t : task) v = gs_write_u8 t Layout.gs_selector v

(* Selector writes from the hypercall handlers, visible to the event
   tracer.  (The stubs' own inline %gs stores are plain machine-code
   stores and stay untraced.) *)
let set_selector_traced (st : t) (tk : task) v =
  set_selector tk v;
  if st.kernel.tracer <> None then
    trace_emit st.kernel
      (Sim_trace.Event.Selector_flip
         { allow = v = Defs.syscall_dispatch_filter_allow });
  match st.kernel.metrics with
  | Some m -> incr m.Kmetrics.selector_flips
  | None -> ()

(* Scribble over the caller-saved vector registers, as interposer C
   code compiled with SSE would. *)
let clobber_xstate (t : task) =
  for i = 0 to 7 do
    t.ctx.Cpu.x.Cpu.xmm_lo.(i) <- 0xDEAD_BEEF_DEAD_BEEFL;
    t.ctx.Cpu.x.Cpu.xmm_hi.(i) <- 0xDEAD_BEEF_DEAD_BEEFL
  done;
  t.ctx.Cpu.x.Cpu.st_sp <- 0

(** {1 xstate stack} *)

let xstate_push (st : t) (t : task) =
  charge st.kernel st.kernel.cost.xsave;
  let depth = to_i (gs_read_u64 t Layout.gs_xstack_depth) in
  if depth >= Layout.gs_xstack_slots then
    st.stats.xstate_overflows <- st.stats.xstate_overflows + 1
  else begin
    Mem.poke_bytes t.mem
      (t.ctx.Cpu.gs_base + Layout.gs_xstack_base
      + (depth * Layout.gs_xstack_frame))
      (Cpu.xstate_to_bytes t.ctx.Cpu.x);
    gs_write_u64 t Layout.gs_xstack_depth (i64 (depth + 1))
  end

let xstate_pop (st : t) (t : task) =
  charge st.kernel st.kernel.cost.xrstor;
  let depth = to_i (gs_read_u64 t Layout.gs_xstack_depth) in
  if depth > 0 then begin
    let frame =
      Mem.peek_bytes t.mem
        (t.ctx.Cpu.gs_base + Layout.gs_xstack_base
        + ((depth - 1) * Layout.gs_xstack_frame))
        Layout.gs_xstack_frame
    in
    Cpu.xstate_of_bytes t.ctx.Cpu.x frame;
    gs_write_u64 t Layout.gs_xstack_depth (i64 (depth - 1))
  end

(** {1 New-task initialisation (fork/clone children)}

    SUD is deactivated by the kernel on fork/clone, so the first time
    a new task reaches the interposer exit we give it a fresh
    %gs-region, re-enable SUD on it, and inherit the parent's wrapped
    signal handlers (Section IV-B-a). *)

let init_new_task (st : t) (k : kernel) (t : task) =
  (* Recover the xstate the parent's entry saved: the child inherited
     the parent's gs region (copied for fork, shared for threads). *)
  if st.preserve_xstate && t.ctx.Cpu.gs_base <> 0 then begin
    let depth = try to_i (gs_read_u64 t Layout.gs_xstack_depth) with Mem.Fault _ -> 0 in
    if depth > 0 then begin
      charge k k.cost.xrstor;
      let frame =
        Mem.peek_bytes t.mem
          (t.ctx.Cpu.gs_base + Layout.gs_xstack_base
          + ((depth - 1) * Layout.gs_xstack_frame))
          Layout.gs_xstack_frame
      in
      Cpu.xstate_of_bytes t.ctx.Cpu.x frame
    end
  end;
  (* Fresh per-task region, mapped with a real (charged) mmap. *)
  let addr =
    to_i
      (Kernel.kernel_syscall k t Defs.sys_mmap
         [|
           0L; i64 Layout.gs_size;
           i64 (Defs.prot_read lor Defs.prot_write);
           i64 (Defs.map_private lor Defs.map_anonymous); -1L; 0L;
         |])
  in
  ignore
    (Kernel.kernel_syscall k t Defs.sys_arch_prctl
       [| i64 Defs.arch_set_gs; i64 addr |]);
  if st.protect_selector then
    ignore
      (Kernel.kernel_syscall k t Defs.sys_pkey_mprotect
         [|
           i64 addr; i64 Layout.gs_size;
           i64 (Defs.prot_read lor Defs.prot_write);
           i64 Layout.selector_pkey;
         |]);
  if st.enable_sud then
    ignore
      (Kernel.kernel_syscall k t Defs.sys_prctl
         [|
           i64 Defs.pr_set_syscall_user_dispatch;
           i64 Defs.pr_sys_dispatch_on; 0L; 0L;
           i64 (addr + Layout.gs_selector);
         |]);
  (* The child continues in the exit stub, whose tail sets the
     selector to BLOCK through the fresh %gs. *)
  (* Inherit the parent's wrapped handlers under the child's tgid. *)
  (match find_task k t.parent_tid with
  | Some parent when parent.tgid <> t.tgid ->
      Hashtbl.iter
        (fun (tg, sg) v ->
          if tg = parent.tgid then Hashtbl.replace st.app_handlers (t.tgid, sg) v)
        (Hashtbl.copy st.app_handlers)
  | _ -> ());
  Hashtbl.replace st.known_tasks t.tid ()

(** {1 rt_sigaction emulation (signal wrapping)} *)

let emulate_sigaction (st : t) (k : kernel) (t : task) =
  let c = t.ctx in
  let sig_ = to_i (Cpu.peek_reg c Isa.rdi) in
  let act_ptr = to_i (Cpu.peek_reg c Isa.rsi) in
  let old_ptr = to_i (Cpu.peek_reg c Isa.rdx) in
  let result =
    if sig_ < 1 || sig_ > Defs.nsig || sig_ = Defs.sigkill
       || sig_ = Defs.sigstop
    then i64 (-Defs.einval)
    else begin
      let prev = Hashtbl.find_opt st.app_handlers (t.tgid, sig_) in
      (* Serve the app's request for the previous action from our
         shadow (the kernel holds our wrapper, not the app handler). *)
      (if old_ptr <> 0 then
         let h, m, f, r =
           match prev with
           | Some v -> v
           | None ->
               let a = t.sighand.(sig_) in
               (* Never leak our own handlers to the app. *)
               if a.sa_handler = i64 st.wrapper_addr then (0L, 0L, 0L, 0L)
               else (a.sa_handler, a.sa_mask, a.sa_flags, a.sa_restorer)
         in
         Mem.poke_u64 t.mem old_ptr h;
         Mem.poke_u64 t.mem (old_ptr + 8) m;
         Mem.poke_u64 t.mem (old_ptr + 16) f;
         Mem.poke_u64 t.mem (old_ptr + 24) r);
      if act_ptr = 0 then 0L
      else begin
        let h = Mem.peek_u64 t.mem act_ptr in
        let m = Mem.peek_u64 t.mem (act_ptr + 8) in
        let f = Mem.peek_u64 t.mem (act_ptr + 16) in
        let r = Mem.peek_u64 t.mem (act_ptr + 24) in
        if h = Defs.sig_dfl || h = Defs.sig_ign then begin
          Hashtbl.remove st.app_handlers (t.tgid, sig_);
          Kernel.kernel_syscall k t Defs.sys_rt_sigaction
            [| i64 sig_; i64 act_ptr; 0L |]
        end
        else if sig_ = Defs.sigsys then begin
          (* Our own SIGSYS registration must stay; remember the app's
             wish but do not install it (documented limitation,
             matching the real tool). *)
          Hashtbl.replace st.app_handlers (t.tgid, sig_) (h, m, f, r);
          0L
        end
        else begin
          st.stats.signals_wrapped <- st.stats.signals_wrapped + 1;
          Hashtbl.replace st.app_handlers (t.tgid, sig_) (h, m, f, r);
          (* Stage the modified sigaction in our scratch page and
             install it with a real (charged) syscall. *)
          let scratch = Layout.interp_data_base + Layout.scratch_sigaction in
          Mem.poke_u64 t.mem scratch (i64 st.wrapper_addr);
          Mem.poke_u64 t.mem (scratch + 8) m;
          Mem.poke_u64 t.mem (scratch + 16) f;
          Mem.poke_u64 t.mem (scratch + 24) (i64 st.restorer_addr);
          Kernel.kernel_syscall k t Defs.sys_rt_sigaction
            [| i64 sig_; i64 scratch; 0L |]
        end
      end
    end
  in
  Cpu.poke_reg c Isa.rax result;
  (* The app's rt_sigaction never reaches the dispatcher (we emulated
     it), but it *is* part of the application's observable syscall
     history — synthesize the audit record the dispatcher would have
     produced, so a lazypoline stream still matches a raw run. *)
  (match k.auditor with
  | Some a ->
      let module A = Sim_audit.Audit in
      let args = Array.map (fun r -> Cpu.peek_reg c r) Hook.arg_regs in
      let path =
        match t.trace_path with
        | Some p -> p
        | None -> Sim_trace.Event.Fast_path
      in
      A.record_syscall a ~tid:t.tid ~scope:A.App ~nr:Defs.sys_rt_sigaction
        ~args ~ret:(Some result) ~path c;
      if A.checkpoint_due a then A.take_checkpoint a ~tid:t.tid c t.mem
  | None -> ());
  (* The suppressed syscall never dispatches: a dispatch-path tag
     staged for it (SUD slow path) must not leak onto the next one. *)
  t.trace_path <- None;
  (* Suppress the stub's syscall instruction. *)
  c.rip <- c.rip + 2

(** {1 clone interposition}

    A clone with a fresh child stack resumes the child inside the
    shared epilogue, whose [ret] pops a return address — but the new
    stack has none.  Like the real rewriters, we replicate the
    caller's return address at the top of the child stack and hand the
    kernel the adjusted stack pointer (the caller's [rsi] is restored
    on exit). *)

let prep_clone (st : t) (t : task) =
  let c = t.ctx in
  let new_stack = to_i (Cpu.peek_reg c Isa.rsi) in
  if new_stack <> 0 then begin
    match Mem.peek_u64 t.mem (to_i (Cpu.peek_reg c Isa.rsp)) with
    | ret_addr -> (
        try
          Mem.write_u64 t.mem (new_stack - 8) ret_addr;
          Hashtbl.replace st.clone_rsi t.tid (Cpu.peek_reg c Isa.rsi);
          Cpu.poke_reg c Isa.rsi (i64 (new_stack - 8))
        with Mem.Fault _ -> ())
    | exception Mem.Fault _ -> ()
  end

(** {1 rt_sigreturn interposition}

    Cannot restore the selector before the sigreturn (that would
    recursively trigger interception), so we route the resumed
    context through the sigreturn trampoline (Section IV-B-c). *)

let prep_sigreturn (st : t) (k : kernel) (t : task) =
  ignore k;
  let c = t.ctx in
  st.stats.sigreturns_redirected <- st.stats.sigreturns_redirected + 1;
  (* Drop the return address the fast-path call pushed: rt_sigreturn
     never returns, and the kernel locates the frame from rsp. *)
  let rsp = to_i (Cpu.peek_reg c Isa.rsp) + 8 in
  Cpu.poke_reg c Isa.rsp (i64 rsp);
  let f = rsp - 8 in
  let depth = to_i (gs_read_u64 t Layout.gs_sigstack_depth) in
  if depth > 0 then begin
    let entry =
      t.ctx.Cpu.gs_base + Layout.gs_sigstack_base
      + ((depth - 1) * Layout.gs_sigstack_entry)
    in
    let resume = Mem.peek_u64 t.mem (f + 40 + Ksignal.uc_rip_off) in
    Mem.poke_u64 t.mem (entry + 8) resume;
    Mem.poke_u64 t.mem (f + 40 + Ksignal.uc_rip_off) (i64 st.trampoline_addr)
  end
(* The stub's syscall now performs the real rt_sigreturn. *)

(** {1 The hypercall handlers} *)

let hyper_enter (st : t) (k : kernel) (t : task) =
  let c = t.ctx in
  charge k (Layout.hook_save_cost + Layout.gs_bookkeeping_cost);
  st.stats.fast_hits <- st.stats.fast_hits + 1;
  let nr = to_i (Cpu.peek_reg c Isa.rax) in
  let returns_to_app =
    nr <> Defs.sys_rt_sigreturn && nr <> Defs.sys_exit
    && nr <> Defs.sys_exit_group && nr <> Defs.sys_execve
  in
  if st.preserve_xstate && returns_to_app then xstate_push st t;
  if st.hook.Hook.clobbers_xstate then clobber_xstate t;
  charge k st.hook.Hook.body_cost;
  let site =
    match Mem.peek_u64 t.mem (to_i (Cpu.peek_reg c Isa.rsp)) with
    | ret -> to_i ret - 2
    | exception Mem.Fault _ -> 0
  in
  let ctx =
    {
      Hook.kernel = k;
      task = t;
      nr;
      args =
        Array.map (fun r -> Cpu.peek_reg c r) Hook.arg_regs;
      site;
    }
  in
  match st.hook.Hook.on_syscall ctx with
  | Hook.Return v ->
      (* Suppress the syscall: balance the xstate stack we just
         pushed (the pop also undoes any hook clobbering).  The
         suppressed syscall never dispatches, so any dispatch-path
         tag staged for it must not leak onto the next one. *)
      t.trace_path <- None;
      if st.preserve_xstate && returns_to_app then xstate_pop st t;
      Cpu.poke_reg c Isa.rax v;
      c.rip <- c.rip + 2
  | Hook.Emulate ->
      (* The hook may have rewritten the syscall number. *)
      let nr = to_i (Cpu.peek_reg c Isa.rax) in
      if nr = Defs.sys_rt_sigaction then emulate_sigaction st k t
      else begin
        (* The stub's [syscall] instruction below carries the real
           dispatch: tag it as the interposer fast path, unless the
           SUD slow path already claimed this in-flight syscall.
           (rt_sigaction is excluded: it suppresses the stub's
           syscall entirely.) *)
        if observing k && t.trace_path = None then
          t.trace_path <- Some Sim_trace.Event.Fast_path;
        if nr = Defs.sys_rt_sigreturn then prep_sigreturn st k t
        else if nr = Defs.sys_clone then prep_clone st t
      end

let hyper_exit (st : t) (k : kernel) (t : task) =
  charge k (Layout.hook_restore_cost + Layout.gs_bookkeeping_cost);
  (* restore the caller's rsi after a clone (see prep_clone) *)
  (match Hashtbl.find_opt st.clone_rsi t.tid with
  | Some rsi ->
      Hashtbl.remove st.clone_rsi t.tid;
      Cpu.poke_reg t.ctx Isa.rsi rsi
  | None -> ());
  if not (Hashtbl.mem st.known_tasks t.tid) then init_new_task st k t
  else if st.preserve_xstate then xstate_pop st t

let hyper_sigwrap (st : t) (k : kernel) (t : task) =
  charge k 10;
  let c = t.ctx in
  let depth = to_i (gs_read_u64 t Layout.gs_sigstack_depth) in
  if depth < Layout.gs_sigstack_slots then begin
    let entry =
      t.ctx.Cpu.gs_base + Layout.gs_sigstack_base
      + (depth * Layout.gs_sigstack_entry)
    in
    Mem.poke_u64 t.mem entry (i64 (gs_read_u8 t Layout.gs_selector));
    gs_write_u64 t Layout.gs_sigstack_depth (i64 (depth + 1))
  end;
  set_selector_traced st t Defs.syscall_dispatch_filter_block;
  let sig_ = to_i (Cpu.peek_reg c Isa.rdi) in
  let handler =
    match Hashtbl.find_opt st.app_handlers (t.tgid, sig_) with
    | Some (h, _, _, _) -> h
    | None ->
        (* No recorded handler (should not happen): return straight to
           the restorer, which sigreturns and pops our entry. *)
        i64 st.restorer_addr
  in
  Cpu.poke_reg c Isa.rax handler
(* the stub then does: jmp rax *)

let hyper_sigreturn_trampoline (st : t) (k : kernel) (t : task) =
  charge k 8;
  (* models the trampoline's own wrpkru open/store/close sequence *)
  if st.protect_selector then charge k (2 * 23);
  let c = t.ctx in
  let depth = to_i (gs_read_u64 t Layout.gs_sigstack_depth) in
  if depth > 0 then begin
    let entry =
      t.ctx.Cpu.gs_base + Layout.gs_sigstack_base
      + ((depth - 1) * Layout.gs_sigstack_entry)
    in
    gs_write_u64 t Layout.gs_sigstack_depth (i64 (depth - 1));
    let sel = to_i (Mem.peek_u64 t.mem entry) in
    let resume = to_i (Mem.peek_u64 t.mem (entry + 8)) in
    set_selector_traced st t (sel land 0xFF);
    c.rip <- resume
  end
  else
    (* Unbalanced trampoline entry: fatal (surfaces bugs loudly). *)
    Ksignal.kill_task_group k t ~code:(128 + Defs.sigsys)

(** The SIGSYS slow path: locate, rewrite, redirect. *)
let hyper_sigsys (st : t) (k : kernel) (t : task) =
  let c = t.ctx in
  charge k Layout.slowpath_body_cost;
  st.stats.slow_hits <- st.stats.slow_hits + 1;
  let si = to_i (Cpu.peek_reg c Isa.rsi) in
  let call_addr = to_i (Mem.peek_u64 t.mem (si + Ksignal.si_call_addr_off)) in
  let uc = to_i (Cpu.peek_reg c Isa.rdx) in
  let site = call_addr - 2 in
  (* We will sigreturn with the selector still ALLOW; the redirected
     entry point re-blocks it when done (selector-only SUD). *)
  set_selector_traced st t Defs.syscall_dispatch_filter_allow;
  (* Rewrite the faulting instruction — it is guaranteed to be a
     real, aligned syscall instruction because the kernel identified
     it for us.  We still check, defensively.

     This is the self-modifying-code hazard the decoded-instruction
     cache must survive: the task has already *executed* (and so
     cached) this syscall instruction.  Both the mprotect flips and
     the write itself bump the page's generation in [Mem], so the
     very next fetch of [site] sees the patched [call rax] — the
     icache cannot serve the stale [syscall] by construction (the
     headline case in test_icache). *)
  (match Mem.peek_bytes t.mem site 2 with
  | "\x0f\x05" ->
      charge k Layout.rewrite_lock_cost;
      let page = site land lnot (Mem.page_size - 1) in
      let len = site + 2 - page in
      let orig_perm =
        match Mem.perm_at t.mem site with Some p -> p | None -> Mem.rx
      in
      let prot_of p =
        (if p land Mem.p_r <> 0 then Defs.prot_read else 0)
        lor (if p land Mem.p_w <> 0 then Defs.prot_write else 0)
        lor if p land Mem.p_x <> 0 then Defs.prot_exec else 0
      in
      ignore
        (Kernel.kernel_syscall k t Defs.sys_mprotect
           [|
             i64 page; i64 len;
             i64 (Defs.prot_read lor Defs.prot_write);
           |]);
      Mem.write_bytes t.mem site "\xff\xd0" (* call rax *);
      ignore
        (Kernel.kernel_syscall k t Defs.sys_mprotect
           [| i64 page; i64 len; i64 (prot_of orig_perm) |]);
      st.stats.rewrites <- st.stats.rewrites + 1;
      if k.tracer <> None then trace_emit k (Sim_trace.Event.Rewrite { site });
      (match k.metrics with
      | Some m -> incr m.Kmetrics.rewrites
      | None -> ());
      (match k.prov with
      | Some p ->
          Sim_obs.Provenance.note_rewrite p ~site
            ~kind:Sim_obs.Provenance.Rw_lazy ~now:(now k)
      | None -> ())
  | _ -> ()
  | exception Mem.Fault _ -> ());
  (* Redirect the interrupted context to the shared entry point,
     emulating the call push so fast and slow path share one
     implementation. *)
  let app_rsp = to_i (Mem.peek_u64 t.mem (uc + Ksignal.uc_gpr_off Isa.rsp)) in
  let new_rsp = app_rsp - 8 in
  (try Mem.write_u64 t.mem new_rsp (i64 call_addr)
   with Mem.Fault _ -> ());
  Mem.poke_u64 t.mem (uc + Ksignal.uc_gpr_off Isa.rsp) (i64 new_rsp);
  Mem.poke_u64 t.mem (uc + Ksignal.uc_rip_off) (i64 st.entry_addr)
(* the stub then pops the handler frame slot and rt_sigreturns with
   the selector set to ALLOW *)

(** {1 Installation} *)

let fresh_stats () =
  {
    rewrites = 0;
    slow_hits = 0;
    fast_hits = 0;
    signals_wrapped = 0;
    sigreturns_redirected = 0;
    xstate_overflows = 0;
  }

(** Build the interposer's runtime stubs.  All control transfers into
    OCaml happen through hypercall instructions embedded in these
    (simulated) code pages; everything else is real machine code. *)
let stub_items ~mpk ~enter ~exit_ ~sigsys ~sigwrap ~tramp =
  let open Sim_asm.Asm in
  (* With selector protection, stubs open a PKRU write window on entry
     and close it before returning to application code.  The SIGSYS
     handler needs no explicit close: the kernel's sigreturn restores
     the interrupted context's PKRU from the frame. *)
  let open_w = if mpk then Layout.(wrpkru_items pkru_allow_all) else [] in
  let close_w = if mpk then Layout.(wrpkru_items pkru_deny_selector) else [] in
  [ Label "syscall_entry" ]
  @ open_w
  @ Layout.set_selector_items Defs.syscall_dispatch_filter_allow
  @ [ hypercall enter; Label "emulated_syscall"; syscall; hypercall exit_ ]
  @ Layout.set_selector_items Defs.syscall_dispatch_filter_block
  @ close_w
  @ [ ret; Label "sigsys_handler" ]
  @ open_w
  @ [
      hypercall sigsys;
      add_ri Isa.rsp 8;
      mov_ri Isa.rax Defs.sys_rt_sigreturn;
      syscall;
      Label "wrapper_handler";
    ]
  @ open_w
  @ [ hypercall sigwrap ]
  @ close_w
  @ [
      jmp_reg Isa.rax;
      Label "wrapper_restorer";
      mov_ri Isa.rax Defs.sys_rt_sigreturn;
      syscall;
      Label "sigreturn_trampoline";
      hypercall tramp;
    ]

(** Map a fresh %gs area for [t] and point its gs base at it
    (install-time equivalent of what {!init_new_task} does through
    real syscalls at run time). *)
let setup_gs_area (t : task) =
  let addr = Mem.find_free t.mem ~hint:0x1800_0000 ~len:Layout.gs_size in
  Mem.map t.mem ~addr ~len:Layout.gs_size ~perm:Mem.rw;
  t.ctx.Cpu.gs_base <- addr;
  addr

(** Install lazypoline into [t]'s process, as an LD_PRELOADed
    constructor would: map the trampoline and stub pages, set up the
    per-task %gs area, register the SIGSYS handler, enable SUD with
    selector = BLOCK.  Returns the handle carrying stats and
    configuration.

    [preserve_xstate:false] reproduces the paper's
    "lazypoline without xstate preservation" configuration;
    [enable_sud:false] its Fig. 4 "fast path only" configuration
    (no slow path: only pre-rewritten sites are interposed). *)
let install ?(preserve_xstate = true) ?(enable_sud = true)
    ?(protect_selector = false) (k : kernel) (t : task) (hook : Hook.t) : t =
  let st =
    {
      kernel = k;
      hook;
      preserve_xstate;
      enable_sud;
      protect_selector;
      stats = fresh_stats ();
      entry_addr = 0;
      trampoline_addr = 0;
      restorer_addr = 0;
      wrapper_addr = 0;
      app_handlers = Hashtbl.create 8;
      known_tasks = Hashtbl.create 8;
      clone_rsi = Hashtbl.create 4;
    }
  in
  let enter = Kernel.register_hypercall k (hyper_enter st) in
  let exit_ = Kernel.register_hypercall k (hyper_exit st) in
  let sigsys = Kernel.register_hypercall k (hyper_sigsys st) in
  let sigwrap = Kernel.register_hypercall k (hyper_sigwrap st) in
  let tramp = Kernel.register_hypercall k (hyper_sigreturn_trampoline st) in
  let stub =
    Sim_asm.Asm.assemble ~base:Layout.interp_code_base
      (stub_items ~mpk:protect_selector ~enter ~exit_ ~sigsys ~sigwrap ~tramp)
  in
  st.entry_addr <- Sim_asm.Asm.symbol stub "syscall_entry";
  st.trampoline_addr <- Sim_asm.Asm.symbol stub "sigreturn_trampoline";
  st.restorer_addr <- Sim_asm.Asm.symbol stub "wrapper_restorer";
  st.wrapper_addr <- Sim_asm.Asm.symbol stub "wrapper_handler";
  (* Map stub code (RX) and scratch page (RW). *)
  Mem.map t.mem ~addr:stub.Sim_asm.Asm.base
    ~len:(String.length stub.Sim_asm.Asm.bytes) ~perm:Mem.rx;
  Mem.poke_bytes t.mem stub.Sim_asm.Asm.base stub.Sim_asm.Asm.bytes;
  Mem.map t.mem ~addr:Layout.interp_data_base ~len:Mem.page_size ~perm:Mem.rw;
  (* zpoline trampoline page at VA 0. *)
  let tramp_blob = Layout.trampoline_blob ~entry:st.entry_addr in
  Mem.map t.mem ~addr:0 ~len:(String.length tramp_blob.Sim_asm.Asm.bytes)
    ~perm:Mem.rx;
  Mem.poke_bytes t.mem 0 tramp_blob.Sim_asm.Asm.bytes;
  (* Per-task gs area; selector starts BLOCKed. *)
  let gs_addr = setup_gs_area t in
  set_selector t Defs.syscall_dispatch_filter_block;
  if protect_selector then begin
    (match
       Mem.set_pkey t.mem ~addr:gs_addr ~len:Layout.gs_size
         ~pkey:Layout.selector_pkey
     with
    | Ok () -> ()
    | Error `Unmapped -> assert false);
    t.ctx.Cpu.pkru <- Layout.pkru_deny_selector
  end;
  (* Our SIGSYS handler (slow path). *)
  t.sighand.(Defs.sigsys) <-
    {
      sa_handler = i64 (Sim_asm.Asm.symbol stub "sigsys_handler");
      sa_mask = 0L;
      sa_flags = 0L;
      sa_restorer = 0L;
    };
  if enable_sud then begin
    t.sud.sud_on <- true;
    t.sud.sud_lo <- 0;
    t.sud.sud_len <- 0;
    t.sud.sud_selector <- gs_addr + Layout.gs_selector
  end;
  Hashtbl.replace st.known_tasks t.tid ();
  st

(** Pre-rewrite a known syscall site to [call rax], as the paper's
    microbenchmark does to measure pure steady-state overhead
    ("we manually rewrote the syscall instruction up front").  The
    site must currently hold a syscall instruction.  [poke_bytes]
    bumps the page generation, invalidating any cached decode of the
    site. *)
let rewrite_site (st : t) (t : task) ~addr =
  match Mem.peek_bytes t.mem addr 2 with
  | "\x0f\x05" ->
      Mem.poke_bytes t.mem addr "\xff\xd0";
      if st.kernel.tracer <> None then
        trace_emit st.kernel (Sim_trace.Event.Rewrite { site = addr });
      (match st.kernel.metrics with
      | Some m -> incr m.Kmetrics.rewrites
      | None -> ());
      (match st.kernel.prov with
      | Some p ->
          Sim_obs.Provenance.note_rewrite p ~site:addr
            ~kind:Sim_obs.Provenance.Rw_manual ~now:(now st.kernel)
      | None -> ())
  | _ -> invalid_arg "rewrite_site: not a syscall instruction"
  | exception Mem.Fault _ -> invalid_arg "rewrite_site: unmapped"
