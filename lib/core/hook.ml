(** The user-facing interposition function.

    Every interposer in this repository — lazypoline and all the
    baselines — funnels intercepted syscalls through a [t].  The hook
    is *fully expressive*: it sees the syscall number and arguments,
    can read and write the application's memory and registers, can
    rewrite arguments, and can suppress the syscall entirely and
    supply its own return value.  (Contrast with seccomp-bpf, whose
    "hook" is a BPF program that cannot even dereference a pointer —
    see {!Baselines.Seccomp_bpf}.) *)

open Sim_kernel

type ctx = {
  kernel : Types.kernel;
  task : Types.task;
  nr : int;
  args : int64 array;  (** six syscall arguments, by value *)
  site : int;
      (** address of the syscall instruction being interposed, when
          known (0 for mechanisms that do not track it) *)
}

(** What to do with the intercepted syscall. *)
type action =
  | Emulate  (** execute it (possibly with rewritten nr/args) *)
  | Return of int64  (** suppress it and return this value *)

type t = {
  name : string;
  mutable on_syscall : ctx -> action;
  mutable body_cost : int;
      (** modelled cycle cost of the hook body (C code in the real
          tool); the paper's "dummy" interposition function that just
          re-executes the syscall *)
  mutable clobbers_xstate : bool;
      (** when true, the hook body scribbles over xmm0-7 before
          returning, like interposer C code compiled with SSE
          enabled.  This is the compatibility hazard of Section
          IV-B-b; pair with [preserve_xstate:false] to reproduce the
          Listing 1 breakage. *)
}

(** Read and rewrite the interposed syscall's register state.  These
    are "kernel-privileged" accessors: they do not feed the Pin
    analysis (the app did not touch the registers). *)
let get_reg (c : ctx) r = Sim_cpu.Cpu.peek_reg c.task.Types.ctx r
let set_reg (c : ctx) r v = Sim_cpu.Cpu.poke_reg c.task.Types.ctx r v

let set_nr (c : ctx) nr = set_reg c Sim_isa.Isa.rax (Int64.of_int nr)

let arg_regs =
  Sim_isa.Isa.[| rdi; rsi; rdx; r10; r8; r9 |]

let set_arg (c : ctx) i v = set_reg c arg_regs.(i) v

(** Deep argument inspection: read the task's memory. *)
let read_mem (c : ctx) addr len =
  Sim_mem.Mem.peek_bytes c.task.Types.mem addr len

let read_string (c : ctx) addr =
  Sim_mem.Mem.read_cstring c.task.Types.mem addr

(* Writes go through [Mem.poke_bytes], which participates in the
   code-mutation protocol: a hook that patches executable bytes
   invalidates any cached decode of them automatically. *)
let write_mem (c : ctx) addr s =
  Sim_mem.Mem.poke_bytes c.task.Types.mem addr s

(** The paper's benchmark hook: pass everything through unchanged. *)
let dummy () : t =
  {
    name = "dummy";
    on_syscall = (fun _ -> Emulate);
    body_cost = 12;
    clobbers_xstate = false;
  }

(** A tracing hook: records (nr, args) like `strace`, then passes the
    call through.  Used by the exhaustiveness experiment. *)
let tracing () : t * (int * int64 array) list ref =
  let trace = ref [] in
  ( {
      name = "trace";
      on_syscall =
        (fun c ->
          trace := (c.nr, Array.copy c.args) :: !trace;
          Emulate);
      body_cost = 25;
      clobbers_xstate = false;
    },
    trace )

let recorded trace = List.rev !trace

(** Pretty-print one trace entry, strace-style. *)
let entry_to_string (nr, args) =
  Printf.sprintf "%s(%s)" (Defs.syscall_name nr)
    (String.concat ", "
       (List.map (fun a -> Printf.sprintf "0x%Lx" a) (Array.to_list args)))

(** {1 Decoded (strace-style) tracing}

    Formats each syscall with the argument kinds of the real thing:
    path strings are read from the task's memory at interception time
    (an expressiveness demo in itself — seccomp-bpf could not produce
    this trace). *)

type arg_kind = Aint | Afd | Apath | Abuf | Asig

let arg_spec nr : arg_kind list =
  if nr = Defs.sys_read then [ Afd; Abuf; Aint ]
  else if nr = Defs.sys_write then [ Afd; Abuf; Aint ]
  else if nr = Defs.sys_open then [ Apath; Aint; Aint ]
  else if nr = Defs.sys_openat then [ Afd; Apath; Aint; Aint ]
  else if nr = Defs.sys_close then [ Afd ]
  else if nr = Defs.sys_stat then [ Apath; Abuf ]
  else if nr = Defs.sys_fstat then [ Afd; Abuf ]
  else if nr = Defs.sys_mmap then [ Aint; Aint; Aint; Aint; Afd; Aint ]
  else if nr = Defs.sys_mprotect || nr = Defs.sys_munmap then
    [ Aint; Aint; Aint ]
  else if nr = Defs.sys_rt_sigaction then [ Asig; Abuf; Abuf ]
  else if nr = Defs.sys_kill then [ Aint; Asig ]
  else if nr = Defs.sys_tgkill then [ Aint; Aint; Asig ]
  else if nr = Defs.sys_mkdir || nr = Defs.sys_rmdir || nr = Defs.sys_unlink
          || nr = Defs.sys_chdir then [ Apath ]
  else if nr = Defs.sys_chmod then [ Apath; Aint ]
  else if nr = Defs.sys_rename then [ Apath; Apath ]
  else if nr = Defs.sys_execve then [ Apath; Abuf; Abuf ]
  else if nr = Defs.sys_sendfile then [ Afd; Afd; Abuf; Aint ]
  else if nr = Defs.sys_getpid || nr = Defs.sys_gettid
          || nr = Defs.sys_getuid || nr = Defs.sys_fork
          || nr = Defs.sys_vfork || nr = Defs.sys_rt_sigreturn then []
  else if nr = Defs.sys_exit || nr = Defs.sys_exit_group then [ Aint ]
  else if nr = Defs.sys_epoll_wait then [ Afd; Abuf; Aint; Aint ]
  else if nr = Defs.sys_epoll_ctl then [ Afd; Aint; Afd; Abuf ]
  else if nr = Defs.sys_accept || nr = Defs.sys_accept4 then
    [ Afd; Abuf; Abuf ]
  else [ Aint; Aint; Aint; Aint; Aint; Aint ]

let format_call (c : ctx) : string =
  let fmt kind v =
    match kind with
    | Aint -> Int64.to_string v
    | Afd -> Int64.to_string v
    | Asig -> Defs.signal_name (Int64.to_int v)
    | Abuf -> Printf.sprintf "0x%Lx" v
    | Apath -> (
        match read_string c (Int64.to_int v) with
        | s -> Printf.sprintf "%S" s
        | exception _ -> Printf.sprintf "0x%Lx (bad)" v)
  in
  let spec = arg_spec c.nr in
  let parts = List.mapi (fun idx kind -> fmt kind c.args.(idx)) spec in
  Printf.sprintf "%s(%s)" (Defs.syscall_name c.nr) (String.concat ", " parts)

(** Like {!tracing} but records fully decoded call strings. *)
let strace () : t * string list ref =
  let log = ref [] in
  ( {
      name = "strace";
      on_syscall =
        (fun c ->
          log := format_call c :: !log;
          Emulate);
      body_cost = 40;
      clobbers_xstate = false;
    },
    log )
