(** The user-facing interposition function.

    Every interposer in this repository — lazypoline and all the
    baselines — funnels intercepted syscalls through a [t].  The hook
    is *fully expressive*: it sees the syscall number and arguments,
    can read and write the application's memory and registers, can
    rewrite arguments, and can suppress the syscall entirely and
    supply its own return value.  (Contrast with seccomp-bpf, whose
    "hook" is a BPF program that cannot even dereference a pointer —
    see {!Baselines.Seccomp_bpf}.) *)

open Sim_kernel

type ctx = {
  kernel : Types.kernel;
  task : Types.task;
  nr : int;
  args : int64 array;  (** six syscall arguments, by value *)
  site : int;
      (** address of the syscall instruction being interposed, when
          known (0 for mechanisms that do not track it) *)
}

(** What to do with the intercepted syscall. *)
type action =
  | Emulate  (** execute it (possibly with rewritten nr/args) *)
  | Return of int64  (** suppress it and return this value *)

type t = {
  name : string;
  mutable on_syscall : ctx -> action;
  mutable body_cost : int;
      (** modelled cycle cost of the hook body (C code in the real
          tool); the paper's "dummy" interposition function that just
          re-executes the syscall *)
  mutable clobbers_xstate : bool;
      (** when true, the hook body scribbles over xmm0-7 before
          returning, like interposer C code compiled with SSE
          enabled.  This is the compatibility hazard of Section
          IV-B-b; pair with [preserve_xstate:false] to reproduce the
          Listing 1 breakage. *)
}

(** Read and rewrite the interposed syscall's register state.  These
    are "kernel-privileged" accessors: they do not feed the Pin
    analysis (the app did not touch the registers). *)
let get_reg (c : ctx) r = Sim_cpu.Cpu.peek_reg c.task.Types.ctx r
let set_reg (c : ctx) r v = Sim_cpu.Cpu.poke_reg c.task.Types.ctx r v

let set_nr (c : ctx) nr = set_reg c Sim_isa.Isa.rax (Int64.of_int nr)

let arg_regs =
  Sim_isa.Isa.[| rdi; rsi; rdx; r10; r8; r9 |]

let set_arg (c : ctx) i v = set_reg c arg_regs.(i) v

(** Deep argument inspection: read the task's memory. *)
let read_mem (c : ctx) addr len =
  Sim_mem.Mem.peek_bytes c.task.Types.mem addr len

let read_string (c : ctx) addr =
  Sim_mem.Mem.read_cstring c.task.Types.mem addr

(* Writes go through [Mem.poke_bytes], which participates in the
   code-mutation protocol: a hook that patches executable bytes
   invalidates any cached decode of them automatically. *)
let write_mem (c : ctx) addr s =
  Sim_mem.Mem.poke_bytes c.task.Types.mem addr s

(** The paper's benchmark hook: pass everything through unchanged. *)
let dummy () : t =
  {
    name = "dummy";
    on_syscall = (fun _ -> Emulate);
    body_cost = 12;
    clobbers_xstate = false;
  }

(** A tracing hook: records (nr, args) like `strace`, then passes the
    call through.  Used by the exhaustiveness experiment. *)
let tracing () : t * (int * int64 array) list ref =
  let trace = ref [] in
  ( {
      name = "trace";
      on_syscall =
        (fun c ->
          trace := (c.nr, Array.copy c.args) :: !trace;
          Emulate);
      body_cost = 25;
      clobbers_xstate = false;
    },
    trace )

let recorded trace = List.rev !trace

(** Pretty-print one trace entry, strace-style. *)
let entry_to_string (nr, args) =
  Printf.sprintf "%s(%s)" (Defs.syscall_name nr)
    (String.concat ", "
       (List.map (fun a -> Printf.sprintf "0x%Lx" a) (Array.to_list args)))

(** {1 Decoded (strace-style) tracing}

    Formats each syscall with the argument kinds of the real thing:
    path strings are read from the task's memory at interception time
    (an expressiveness demo in itself — seccomp-bpf could not produce
    this trace).  The decoder itself lives in {!Sim_kernel.Strace} and
    is shared with the kernel-side [k.strace] callback, so both trace
    paths format identically. *)

type arg_kind = Strace.arg_kind = Aint | Afd | Apath | Abuf | Asig

let arg_spec = Strace.arg_spec

let format_call (c : ctx) : string =
  Strace.format_call ~read_str:(read_string c) c.nr c.args

(** Like {!tracing} but records fully decoded call strings. *)
let strace () : t * string list ref =
  let log = ref [] in
  ( {
      name = "strace";
      on_syscall =
        (fun c ->
          log := format_call c :: !log;
          Emulate);
      body_cost = 40;
      clobbers_xstate = false;
    },
    log )
