(** Sampling profiler driven by the simulated cycle clock.

    Every [period] simulated cycles (counted through the kernel's one
    clock-advance point, [Types.charge]) the profiler captures the
    current task's (comm, rip, dispatch context) and aggregates it
    into a collapsed-stack table.  Sampling is keyed to the simulated
    clock, not host time or randomness, so profiles are fully
    deterministic: the same program produces the same folded output
    every run.

    Context classification, in priority order:

    + ["kernel"] — the charge happened inside the simulated kernel
      (syscall dispatch, signal delivery, sigreturn);
    + a registered address region — e.g. the zpoline trampoline page
      or the interposer stub text, registered by the CLI before the
      run (the kernel itself stays ignorant of interposer layout);
    + ["signal"] — a signal frame is live (handler depth > 0);
    + ["guest"] — plain application execution.

    Leaf frames are symbolized against loader symbol tables
    ({!add_symbols}, fed from [Asm.blob] symbols through
    [Types.image]); unresolvable addresses fall back to hex.  Output
    is the flamegraph collapsed format, one ["comm;ctx;sym count"]
    line per distinct stack ({!folded}), consumable by flamegraph.pl
    or speedscope.

    Observation-only: ticking never charges cycles or touches guest
    state; a profiled run is cycle- and state-identical to an
    unprofiled one (asserted by a qcheck property in test_metrics). *)

type t = {
  period : int;
  mutable credit : int;  (** cycles until the next sample fires *)
  mutable total : int;  (** samples captured *)
  mutable regions : (int * int * string) list;  (** lo, hi-exclusive, ctx *)
  mutable syms : (int * string) array;  (** sorted by address *)
  counts : (string, int) Hashtbl.t;  (** folded stack -> sample count *)
}

(* Default period: prime, so sampling does not phase-lock with loop
   bodies whose cycle counts are round numbers. *)
let create ?(period = 997) () =
  if period <= 0 then invalid_arg "Profiler.create: period must be positive";
  {
    period;
    credit = period;
    total = 0;
    regions = [];
    syms = [||];
    counts = Hashtbl.create 64;
  }

let add_region p ~lo ~hi ~name =
  p.regions <- (lo, hi, name) :: p.regions

let add_symbols p (syms : (string * int) list) =
  let all =
    Array.append p.syms (Array.of_list (List.map (fun (n, a) -> (a, n)) syms))
  in
  Array.sort compare all;
  p.syms <- all

(* Greatest symbol at or below [rip], if within 4 KiB (past that the
   address is likelier an unsymbolized island than a huge function). *)
let symbolize p rip =
  let n = Array.length p.syms in
  if n = 0 then Printf.sprintf "0x%x" rip
  else begin
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fst p.syms.(mid) <= rip then lo := mid else hi := mid
    done;
    let addr, name = p.syms.(!lo) in
    if rip >= addr && rip - addr < 4096 then
      if rip = addr then name else Printf.sprintf "%s+0x%x" name (rip - addr)
    else Printf.sprintf "0x%x" rip
  end

let region_of p rip =
  let rec go = function
    | [] -> None
    | (lo, hi, name) :: rest ->
        if rip >= lo && rip < hi then Some name else go rest
  in
  go p.regions

let sample p ~comm ~rip ~in_kernel ~sig_depth =
  let ctx =
    if in_kernel then "kernel"
    else
      match region_of p rip with
      | Some name -> name
      | None -> if sig_depth > 0 then "signal" else "guest"
  in
  let key = comm ^ ";" ^ ctx ^ ";" ^ symbolize p rip in
  p.total <- p.total + 1;
  Hashtbl.replace p.counts key
    (1 + Option.value ~default:0 (Hashtbl.find_opt p.counts key))

(** Advance the sampling clock by [n] cycles on behalf of the current
    task; captures a sample each time the period elapses.  A single
    charge larger than the period yields multiple samples attributed
    to the same instruction — the cost model says that instruction
    occupied those cycles. *)
let tick p n ~comm ~rip ~in_kernel ~sig_depth =
  p.credit <- p.credit - n;
  while p.credit <= 0 do
    sample p ~comm ~rip ~in_kernel ~sig_depth;
    p.credit <- p.credit + p.period
  done

let samples p = p.total

let stacks p = Hashtbl.length p.counts

(** Collapsed-stack output, one "frames count" line per distinct
    stack, sorted for determinism. *)
let folded p =
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) p.counts []
  |> List.sort compare
  |> List.map (fun (k, c) -> Printf.sprintf "%s %d\n" k c)
  |> String.concat ""

(** Top [n] stacks by sample count, for one-shot summaries. *)
let top ?(n = 10) p =
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) p.counts []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare b a with 0 -> compare ka kb | c -> c)
  |> List.filteri (fun i _ -> i < n)
