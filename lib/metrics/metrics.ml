(** A typed counter/gauge/histogram registry.

    The simulated kernel hangs one of these off {!Sim_kernel.Types}
    (like the [Tracer] handle): wiring sites increment plain [int
    ref]s, so the enabled path costs one load/store per event and the
    disabled path ([None] on the kernel) costs a single match.
    Nothing here ever charges simulated cycles — metrics are
    observation-only by construction, the same contract as the event
    tracer.

    Four metric kinds:

    - {b Counter} — monotonically increasing [int ref], bumped at the
      instrumentation site.
    - {b Gauge} — settable [int ref] for point-in-time levels.
    - {b Probe} — a [unit -> int] thunk sampled at scrape time; used
      to promote pre-existing process-wide counters (the decoded
      icache's [g_hits]/[g_misses]) and derived values (runqueue
      depth) into the registry without touching their hot paths.
    - {b Histogram} — power-of-two buckets with sum and count,
      Prometheus-compatible cumulative export.

    Exports: Prometheus text exposition ({!prometheus}) and JSON
    ({!to_json}).  Both are deterministic: metrics are sorted by
    (name, labels), so two identical runs scrape identically. *)

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array;
      (** bucket [i] counts observations [v] with [v <= 2^i]; the last
          bucket is the +Inf catch-all *)
}

(* 2^39 cycles upper bucket: beyond any simulated run we do. *)
let hist_bins = 40

type value =
  | Counter of int ref
  | Gauge of int ref
  | Probe of (unit -> int)
  | Histogram of hist

type metric = {
  m_name : string;
  m_help : string;
  m_labels : (string * string) list;
  m_value : value;
}

type t = { tbl : (string * (string * string) list, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

(* Registration is idempotent: asking for an existing (name, labels)
   pair returns the existing cell, so wiring code can re-register
   freely (e.g. re-attaching one registry to a fresh kernel). *)
let register t ~help ~labels name mk =
  let key = (name, List.sort compare labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some m -> m.m_value
  | None ->
      let v = mk () in
      Hashtbl.replace t.tbl key
        { m_name = name; m_help = help; m_labels = snd key; m_value = v };
      v

let counter t ?(help = "") ?(labels = []) name : int ref =
  match register t ~help ~labels name (fun () -> Counter (ref 0)) with
  | Counter r -> r
  | _ -> invalid_arg ("metric registered with another type: " ^ name)

let gauge t ?(help = "") ?(labels = []) name : int ref =
  match register t ~help ~labels name (fun () -> Gauge (ref 0)) with
  | Gauge r -> r
  | _ -> invalid_arg ("metric registered with another type: " ^ name)

(* A probe re-registration replaces the thunk: the closure captures a
   kernel, and attaching the registry to a new kernel must not keep
   scraping the old one. *)
let probe t ?(help = "") ?(labels = []) name (f : unit -> int) =
  let key = (name, List.sort compare labels) in
  Hashtbl.replace t.tbl key
    { m_name = name; m_help = help; m_labels = snd key; m_value = Probe f }

let histogram t ?(help = "") ?(labels = []) name : hist =
  let mk () =
    Histogram { h_count = 0; h_sum = 0; h_buckets = Array.make hist_bins 0 }
  in
  match register t ~help ~labels name mk with
  | Histogram h -> h
  | _ -> invalid_arg ("metric registered with another type: " ^ name)

(* Bucket index: smallest i with v <= 2^i (v <= 1 lands in bucket 0);
   values beyond the last power of two land in the +Inf bucket. *)
let bucket_of v =
  let v = max 0 v in
  let rec go i bound =
    if i >= hist_bins - 1 then hist_bins - 1
    else if v <= bound then i
    else go (i + 1) (bound * 2)
  in
  go 0 1

let observe (h : hist) v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + max 0 v;
  let i = bucket_of v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

(** Current scalar value of a metric ([None] for histograms). *)
let value_of = function
  | Counter r | Gauge r -> Some !r
  | Probe f -> Some (f ())
  | Histogram _ -> None

(** Look up the current value of (name, labels). *)
let find t ?(labels = []) name : int option =
  match Hashtbl.find_opt t.tbl (name, List.sort compare labels) with
  | None -> None
  | Some m -> value_of m.m_value

let sorted_metrics t =
  Hashtbl.fold (fun _ m acc -> m :: acc) t.tbl []
  |> List.sort (fun a b ->
         match compare a.m_name b.m_name with
         | 0 -> compare a.m_labels b.m_labels
         | c -> c)

let label_str labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k v) labels)
    ^ "}"

let type_name = function
  | Counter _ -> "counter"
  | Gauge _ | Probe _ -> "gauge"
  | Histogram _ -> "histogram"

(** Prometheus text exposition (version 0.0.4). *)
let prometheus t =
  let b = Buffer.create 1024 in
  let last_header = ref "" in
  List.iter
    (fun m ->
      if m.m_name <> !last_header then begin
        last_header := m.m_name;
        if m.m_help <> "" then
          Buffer.add_string b
            (Printf.sprintf "# HELP %s %s\n" m.m_name m.m_help);
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" m.m_name (type_name m.m_value))
      end;
      match m.m_value with
      | Counter _ | Gauge _ | Probe _ ->
          let v = match value_of m.m_value with Some v -> v | None -> 0 in
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" m.m_name (label_str m.m_labels) v)
      | Histogram h ->
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let le =
                if i = hist_bins - 1 then "+Inf"
                else string_of_int (1 lsl i)
              in
              (* Elide empty interior buckets to keep the exposition
                 readable; always emit the +Inf catch-all. *)
              if c > 0 || i = hist_bins - 1 then
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" m.m_name
                     (label_str (m.m_labels @ [ ("le", le) ]))
                     !cum))
            h.h_buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %d\n" m.m_name (label_str m.m_labels)
               h.h_sum);
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" m.m_name (label_str m.m_labels)
               h.h_count))
    (sorted_metrics t);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** JSON export: [{"name":..,"type":..,"labels":{..},"value":..}]
    (histograms carry "count", "sum" and a "buckets" array of
    [le, cumulative_count] pairs instead of "value"). *)
let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun i m ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\n  { \"name\": \"%s\", \"type\": \"%s\", "
           (json_escape m.m_name) (type_name m.m_value));
      Buffer.add_string b "\"labels\": {";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf "\"%s\": \"%s\"" (json_escape k) (json_escape v)))
        m.m_labels;
      Buffer.add_string b "}, ";
      (match m.m_value with
      | Counter _ | Gauge _ | Probe _ ->
          let v = match value_of m.m_value with Some v -> v | None -> 0 in
          Buffer.add_string b (Printf.sprintf "\"value\": %d }" v)
      | Histogram h ->
          Buffer.add_string b
            (Printf.sprintf "\"count\": %d, \"sum\": %d, \"buckets\": ["
               h.h_count h.h_sum);
          let cum = ref 0 and first = ref true in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              if c > 0 || i = hist_bins - 1 then begin
                if not !first then Buffer.add_string b ", ";
                first := false;
                let le =
                  if i = hist_bins - 1 then "\"+Inf\""
                  else string_of_int (1 lsl i)
                in
                Buffer.add_string b (Printf.sprintf "[%s, %d]" le !cum)
              end)
            h.h_buckets;
          Buffer.add_string b "] }"))
    (sorted_metrics t);
  Buffer.add_string b "\n]";
  Buffer.contents b
