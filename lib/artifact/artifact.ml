(** Versioned [% simtrace-<kind>/<N>] artifact headers.

    Every on-disk artifact the toolchain writes — audit logs, chaos
    reproducers, request-span sidecars, syscall-flow policies — opens
    with a magic line

    {v % simtrace-<kind>/<version> v}

    followed by [% key value] header rows and then kind-specific body
    rows.  This module is the one place that writes and parses that
    envelope, so a version mismatch produces the same error shape
    everywhere: it names the file, the expected kind/version(s) and
    what was actually found. *)

let prefix = "% simtrace-"

(** The magic line for [kind] at [version] (no trailing newline). *)
let magic ~kind ~version = Printf.sprintf "%% simtrace-%s/%d" kind version

(** Split [text] into lines, dropping a trailing empty line but
    keeping interior blanks (body parsers decide what blank means). *)
let lines_of (text : string) : string list =
  match List.rev (String.split_on_char '\n' text) with
  | "" :: rest -> List.rev rest
  | all -> List.rev all

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* "kind/version" from a trimmed magic line, if it is one. *)
let split_magic (line : string) : (string * int) option =
  let line = String.trim line in
  if not (starts_with ~prefix line) then None
  else
    let rest =
      String.sub line (String.length prefix)
        (String.length line - String.length prefix)
    in
    match String.rindex_opt rest '/' with
    | None -> None
    | Some i -> (
        let kind = String.sub rest 0 i in
        let v = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt v with
        | Some v when kind <> "" -> Some (kind, v)
        | _ -> None)

let describe_file = function Some f -> f ^ ": " | None -> ""

let expected_of ~kind ~accept =
  String.concat " or "
    (List.map (fun v -> Printf.sprintf "simtrace-%s/%d" kind v) accept)

(** Validate the magic line of [text] against [kind], accepting any
    version in [accept].  On success returns the parsed version and
    the remaining lines (everything after the magic line).  On failure
    the error names the file (when given) and the expected vs actual
    kind/version. *)
let parse_magic ?file ~kind ~accept (text : string) :
    (int * string list, string) result =
  match lines_of text with
  | [] -> Error (Printf.sprintf "%sempty file, expected a %s artifact"
                   (describe_file file) (expected_of ~kind ~accept))
  | first :: rest -> (
      match split_magic first with
      | None ->
          Error
            (Printf.sprintf "%snot a %s artifact (first line %S)"
               (describe_file file) (expected_of ~kind ~accept) first)
      | Some (k, v) when k <> kind ->
          Error
            (Printf.sprintf "%snot a %s artifact (got simtrace-%s/%d)"
               (describe_file file) (expected_of ~kind ~accept) k v)
      | Some (_, v) when not (List.mem v accept) ->
          Error
            (Printf.sprintf
               "%sunsupported simtrace-%s version %d (expected %s)"
               (describe_file file) kind v (expected_of ~kind ~accept))
      | Some (_, v) -> Ok (v, rest))

(** All [% key value] header rows of [lines], in file order.  Rows
    starting with [%] but carrying no space-separated value are
    skipped (that covers the magic line itself, so callers may pass
    either the full file or the post-magic remainder). *)
let headers (lines : string list) : (string * string) list =
  List.filter_map
    (fun line ->
      if String.length line < 2 || line.[0] <> '%' then None
      else
        match
          String.split_on_char ' '
            (String.trim (String.sub line 1 (String.length line - 1)))
        with
        | key :: (_ :: _ as v) when key <> "" && not (String.contains key '/')
          ->
            Some (key, String.concat " " v)
        | _ -> None)
    lines

(** First [% key value] row for [key]. *)
let header_value ~key (lines : string list) : string option =
  List.assoc_opt key (headers lines)

(** Body rows: everything that is not a [%]-prefixed line and not
    blank. *)
let body (lines : string list) : string list =
  List.filter
    (fun l -> String.trim l <> "" && (String.length l = 0 || l.[0] <> '%'))
    lines

(** {1 Writing} *)

(** Open [buf] with the magic line for [kind]/[version]. *)
let add_magic buf ~kind ~version =
  Buffer.add_string buf (magic ~kind ~version);
  Buffer.add_char buf '\n'

(** Append one [% key value] header row. *)
let add_header buf key value = Printf.bprintf buf "%% %s %s\n" key value
