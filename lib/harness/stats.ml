(** Small statistics helpers for the experiment harness. *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      exp
        (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
        /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

(** Relative standard deviation, in percent. *)
let stddev_pct xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else 100.0 *. stddev xs /. m

(** [percentile xs p] is the [p]-th percentile (0..100) of [xs] under
    linear interpolation between closest ranks: the rank of [p] is
    [p/100 * (n-1)] over the sorted sample, fractional ranks
    interpolate between the two neighbouring order statistics.
    [nan] on the empty list; the sole element on a singleton.

    Non-finite samples (NaN from a failed measurement, infinities
    from a zero division upstream) are dropped before ranking — they
    have no defined order and would otherwise poison the sort.  A
    non-finite [p] is treated as the median. *)
let percentile xs p =
  match List.filter Float.is_finite xs with
  | [] -> nan
  | [ x ] -> x
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let p = if Float.is_finite p then p else 50.0 in
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

(** [histogram ?bins xs] buckets [xs] into [bins] equal-width buckets
    spanning [min xs, max xs]; returns [(lo, hi, count)] per bucket,
    in order.  Empty input yields no buckets; a constant sample lands
    entirely in the first bucket (degenerate zero-width range, unit
    bucket width).  Non-finite samples are dropped: a NaN would make
    the whole [min xs, max xs] range NaN and every bucket index
    undefined. *)
let histogram ?(bins = 10) xs =
  match List.filter Float.is_finite xs with
  | [] -> [||]
  | xs ->
      let bins = max 1 bins in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      let w = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
      let counts = Array.make bins 0 in
      List.iter
        (fun x ->
          let i = int_of_float ((x -. lo) /. w) in
          let i = max 0 (min (bins - 1) i) in
          counts.(i) <- counts.(i) + 1)
        xs;
      Array.mapi
        (fun i c ->
          (lo +. (w *. float_of_int i), lo +. (w *. float_of_int (i + 1)), c))
        counts

(** A crude ASCII bar for figure-style output. *)
let bar ?(width = 40) ~max_value v =
  let n =
    if max_value <= 0.0 then 0
    else int_of_float (Float.round (float_of_int width *. v /. max_value))
  in
  String.make (max 0 (min width n)) '#'
