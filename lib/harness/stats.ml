(** Small statistics helpers for the experiment harness. *)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      exp
        (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
        /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

(** Relative standard deviation, in percent. *)
let stddev_pct xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else 100.0 *. stddev xs /. m

(** [percentile xs p] is the [p]-th percentile (0..100) of [xs] under
    linear interpolation between closest ranks: the rank of [p] is
    [p/100 * (n-1)] over the sorted sample, fractional ranks
    interpolate between the two neighbouring order statistics.
    [nan] on the empty list; the sole element on a singleton.

    Non-finite samples (NaN from a failed measurement, infinities
    from a zero division upstream) are dropped before ranking — they
    have no defined order and would otherwise poison the sort.  A
    non-finite [p] is treated as the median. *)
let percentile xs p =
  match List.filter Float.is_finite xs with
  | [] -> nan
  | [ x ] -> x
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let p = if Float.is_finite p then p else 50.0 in
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

(** [histogram ?bins xs] buckets [xs] into [bins] equal-width buckets
    spanning [min xs, max xs]; returns [(lo, hi, count)] per bucket,
    in order.  Empty input yields no buckets; a constant sample lands
    entirely in the first bucket (degenerate zero-width range, unit
    bucket width).  Non-finite samples are dropped: a NaN would make
    the whole [min xs, max xs] range NaN and every bucket index
    undefined. *)
let histogram ?(bins = 10) xs =
  match List.filter Float.is_finite xs with
  | [] -> [||]
  | xs ->
      let bins = max 1 bins in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      let w = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
      let counts = Array.make bins 0 in
      List.iter
        (fun x ->
          let i = int_of_float ((x -. lo) /. w) in
          let i = max 0 (min (bins - 1) i) in
          counts.(i) <- counts.(i) + 1)
        xs;
      Array.mapi
        (fun i c ->
          (lo +. (w *. float_of_int i), lo +. (w *. float_of_int (i + 1)), c))
        counts

(** A crude ASCII bar for figure-style output. *)
let bar ?(width = 40) ~max_value v =
  let n =
    if max_value <= 0.0 then 0
    else int_of_float (Float.round (float_of_int width *. v /. max_value))
  in
  String.make (max 0 (min width n)) '#'

(** HDR-style log2-bucketed histogram over non-negative magnitudes.

    The equal-width {!histogram} above needs the whole sample in
    memory and cannot resolve a microsecond tail under a
    millisecond-wide bucket once the range spans decades.  This one
    is streaming and O(1) per sample: a value [v >= 1] lands in
    octave [floor (log2 v)], subdivided into [sub] linear sub-buckets,
    so the relative width of any bucket — and hence the worst-case
    quantile error — is bounded by [1/sub] regardless of range.

    Hardened like {!percentile}: non-finite or negative samples are
    counted in [dropped] and excluded, never indexed.  Values in
    [0, 1) share a dedicated underflow bucket (cycle counts are
    integers, so in practice only exact zeros land there). *)
module Log_hist = struct
  type t = {
    sub : int;  (** linear sub-buckets per octave *)
    counts : int array;  (** 64 octaves x [sub] *)
    mutable under : int;  (** samples in [0, 1) *)
    mutable dropped : int;  (** non-finite or negative samples *)
    mutable total : int;  (** indexed samples, [under] included *)
    mutable sum : float;
    mutable min_v : float;
    mutable max_v : float;
  }

  let octaves = 64

  let create ?(sub = 16) () =
    let sub = max 1 sub in
    {
      sub;
      counts = Array.make (octaves * sub) 0;
      under = 0;
      dropped = 0;
      total = 0;
      sum = 0.0;
      min_v = infinity;
      max_v = neg_infinity;
    }

  let index t v =
    let e = int_of_float (Float.floor (Float.log2 v)) in
    let e = min (octaves - 1) e in
    (* position within the octave, in [1, 2) *)
    let f = v /. Float.pow 2.0 (float_of_int e) in
    let s = min (t.sub - 1) (int_of_float ((f -. 1.0) *. float_of_int t.sub)) in
    (e * t.sub) + s

  (** [lo, hi) bounds of bucket [i]. *)
  let bounds t i =
    let e = i / t.sub and s = i mod t.sub in
    let base = Float.pow 2.0 (float_of_int e) in
    let w = base /. float_of_int t.sub in
    (base +. (w *. float_of_int s), base +. (w *. float_of_int (s + 1)))

  let add t v =
    if (not (Float.is_finite v)) || v < 0.0 then t.dropped <- t.dropped + 1
    else begin
      t.total <- t.total + 1;
      t.sum <- t.sum +. v;
      if v < t.min_v then t.min_v <- v;
      if v > t.max_v then t.max_v <- v;
      if v < 1.0 then t.under <- t.under + 1
      else
        let i = index t v in
        t.counts.(i) <- t.counts.(i) + 1
    end

  let count t = t.total
  let dropped t = t.dropped
  let sum t = t.sum
  let mean t = if t.total = 0 then nan else t.sum /. float_of_int t.total
  let min_value t = if t.total = 0 then nan else t.min_v
  let max_value t = if t.total = 0 then nan else t.max_v

  (** Non-empty buckets in increasing value order as
      [(lo, hi, count)], the underflow bucket first as [(0, 1, n)]. *)
  let buckets t =
    let acc = ref [] in
    for i = Array.length t.counts - 1 downto 0 do
      if t.counts.(i) > 0 then
        let lo, hi = bounds t i in
        acc := (lo, hi, t.counts.(i)) :: !acc
    done;
    let acc = if t.under > 0 then (0.0, 1.0, t.under) :: !acc else !acc in
    Array.of_list acc

  (** Estimated [p]-th percentile (0..100) under the same
      closest-ranks convention as {!percentile}: rank
      [p/100 * (n-1)], interpolated linearly inside the bucket the
      rank lands in, then clamped to the exact observed min/max (so
      p0 and p100 are exact).  [nan] on an empty histogram; a
      non-finite [p] reads as the median. *)
  let percentile t p =
    if t.total = 0 then nan
    else begin
      let p = if Float.is_finite p then p else 50.0 in
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let rank = p /. 100.0 *. float_of_int (t.total - 1) in
      (* walk buckets until the cumulative count covers the rank *)
      let est = ref t.max_v in
      let cum = ref 0.0 in
      let found = ref false in
      if (not !found) && t.under > 0 then begin
        let c = float_of_int t.under in
        if rank < !cum +. c then begin
          est := (rank -. !cum +. 0.5) /. c *. 1.0;
          found := true
        end
        else cum := !cum +. c
      end;
      let i = ref 0 in
      let n = Array.length t.counts in
      while (not !found) && !i < n do
        let c = t.counts.(!i) in
        if c > 0 then begin
          let cf = float_of_int c in
          if rank < !cum +. cf then begin
            let lo, hi = bounds t !i in
            est := lo +. ((rank -. !cum +. 0.5) /. cf *. (hi -. lo));
            found := true
          end
          else cum := !cum +. cf
        end;
        incr i
      done;
      Float.max t.min_v (Float.min t.max_v !est)
    end

  (** Accumulate [src] into [dst]; both must share [sub]. *)
  let merge ~into:dst src =
    if dst.sub <> src.sub then invalid_arg "Log_hist.merge: sub mismatch";
    Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
    dst.under <- dst.under + src.under;
    dst.dropped <- dst.dropped + src.dropped;
    dst.total <- dst.total + src.total;
    dst.sum <- dst.sum +. src.sum;
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
end

(** Streaming percentile sketch over arbitrary finite floats: a
    {!Log_hist} per sign plus an exact zero count, so it accepts the
    full float range while keeping Log_hist's bounded relative error
    on each side.  Non-finite samples are dropped (and counted), as
    everywhere in this module. *)
module Sketch = struct
  type t = {
    pos : Log_hist.t;
    neg : Log_hist.t;  (** magnitudes of negative samples *)
  }

  let create ?sub () =
    { pos = Log_hist.create ?sub (); neg = Log_hist.create ?sub () }

  let add t v =
    if not (Float.is_finite v) then t.pos.Log_hist.dropped <- t.pos.Log_hist.dropped + 1
    else if v < 0.0 then Log_hist.add t.neg (-.v)
    else Log_hist.add t.pos v

  let of_list ?sub xs =
    let t = create ?sub () in
    List.iter (add t) xs;
    t

  let count t = Log_hist.count t.pos + Log_hist.count t.neg
  let dropped t = Log_hist.dropped t.pos + Log_hist.dropped t.neg
  let sum t = Log_hist.sum t.pos -. Log_hist.sum t.neg
  let mean t = if count t = 0 then nan else sum t /. float_of_int (count t)

  let min_value t =
    if Log_hist.count t.neg > 0 then -.Log_hist.max_value t.neg
    else Log_hist.min_value t.pos

  let max_value t =
    if Log_hist.count t.pos > 0 then Log_hist.max_value t.pos
    else -.Log_hist.min_value t.neg

  (** Same convention as {!Log_hist.percentile}, spliced across the
      negative and non-negative halves of the sample. *)
  let percentile t p =
    let np = Log_hist.count t.pos and nn = Log_hist.count t.neg in
    let n = np + nn in
    if n = 0 then nan
    else if nn = 0 then Log_hist.percentile t.pos p
    else if np = 0 then -.Log_hist.percentile t.neg (100.0 -. p)
    else begin
      let p = if Float.is_finite p then p else 50.0 in
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      if rank < float_of_int nn then
        (* rank r from the bottom is rank (nn-1-r) from the top of the
           mirrored magnitude histogram *)
        let q =
          if nn = 1 then 50.0
          else (float_of_int (nn - 1) -. rank) /. float_of_int (nn - 1) *. 100.0
        in
        -.Log_hist.percentile t.neg q
      else
        let q =
          if np = 1 then 50.0
          else (rank -. float_of_int nn) /. float_of_int (np - 1) *. 100.0
        in
        Log_hist.percentile t.pos q
    end
end
