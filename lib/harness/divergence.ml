(** Cross-mechanism divergence auditing.

    Runs one workload under each interposition mechanism with a
    {!Sim_audit.Audit} recorder attached, diffs the per-task
    application streams against an uninterposed (raw) run modulo
    mechanism-private events, and on mismatch bisects to the first
    divergent syscall, replays both runs up to it, and dumps a
    side-by-side register / memory-page delta.

    This is the executable form of the paper's "interposition without
    compromise" claim: for a correct interposer the diff is empty —
    every syscall number, argument, result, callee-saved register and
    the xstate are identical to the raw run, under every mechanism. *)

open Sim_isa
open Sim_kernel
module A = Sim_audit.Audit
module Hook = Lazypoline.Hook

(* ------------------------------------------------------------------ *)
(* Mechanisms                                                          *)

type mech = Raw | Sud | Zpoline | Lazypoline_m | Seccomp | Ptrace

let all_mechs = [ Raw; Sud; Zpoline; Lazypoline_m; Seccomp; Ptrace ]

let mech_name = function
  | Raw -> "raw"
  | Sud -> "sud"
  | Zpoline -> "zpoline"
  | Lazypoline_m -> "lazypoline"
  | Seccomp -> "seccomp"
  | Ptrace -> "ptrace"

let mech_of_string s =
  match String.lowercase_ascii s with
  | "raw" | "none" -> Some Raw
  | "sud" -> Some Sud
  | "zpoline" -> Some Zpoline
  | "lazypoline" -> Some Lazypoline_m
  | "seccomp" | "seccomp-user" -> Some Seccomp
  | "ptrace" -> Some Ptrace
  | _ -> None

let install ?(preserve_xstate = true) mech k t (hook : Hook.t) =
  match mech with
  | Raw -> ()
  | Sud -> ignore (Baselines.Sud_interposer.install k t hook)
  | Zpoline -> ignore (Baselines.Zpoline.install k t hook)
  | Lazypoline_m -> ignore (Lazypoline.install ~preserve_xstate k t hook)
  | Seccomp -> ignore (Baselines.Seccomp_user.install k t hook)
  | Ptrace -> ignore (Baselines.Ptrace_interposer.install k t hook)

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)

type workload =
  | Micro of { iters : int; nr : int }  (** the Table II loop *)
  | Prog of { src : string; jit : bool }  (** a minicc program *)
  | Forkexec  (** fork + execve + wait4 across two tasks *)
  | Sigmicro of { iters : int }
      (** signal-handler-rich loop over blocking syscalls — the chaos
          engine's favourite prey: two user handlers (SIGALRM with
          SA_RESTART, SIGUSR1 without), and every iteration issues
          write, getpid, nanosleep, a timed FUTEX_WAIT and a timed
          epoll_wait, so injected signals land on restartable and
          non-restartable waits alike *)
  | Attack of { iters : int }
      (** the policy engine's adversarial prey: a getpid loop that
          computes the syscall number as [rbx + rbp + r12..r15] (all
          initialised so the sum is [getpid]) — any chaos clobber of
          any callee-saved register turns the next iteration into an
          out-of-graph syscall number, one detectable escape per
          clobber class *)
  | Wrk of {
      flavour : Workloads.Webserver.flavour;
      size_kb : int;
      conns : int;
      requests : int;
    }
      (** the Fig. 5 macrobench as an audited workload: one
          single-worker web server (the worker exits after serving
          [requests], so the run self-terminates) driven by the wrk
          load generator with [conns] keepalive connections.  This is
          what the request-flow span recorder traces; note the app
          event stream is timing-dependent (epoll batching varies
          with interposer overhead), so Wrk runs are recorded and
          replayed {e per mechanism} — cross-mechanism diffs use the
          deterministic workloads above. *)

let workload_name = function
  | Micro { iters; nr } -> Printf.sprintf "microbench(iters=%d,nr=%d)" iters nr
  | Prog { jit; _ } -> if jit then "minicc-jit" else "minicc"
  | Forkexec -> "fork-execve"
  | Sigmicro { iters } -> Printf.sprintf "sigmicro(iters=%d)" iters
  | Attack { iters } -> Printf.sprintf "attack(iters=%d)" iters
  | Wrk { flavour; size_kb; conns; requests } ->
      Printf.sprintf "wrk(%s,%dkb,conns=%d,requests=%d)"
        (Workloads.Webserver.flavour_name flavour)
        size_kb conns requests

let forkexec_child_path = "/bin/child"

let forkexec_child_image () =
  let items =
    Sim_asm.Asm.
      [
        Label "cstart";
        Lea_ip (Isa.rsi, "msg");
        mov_ri Isa.rdi 1;
        mov_ri Isa.rdx 6;
        mov_ri Isa.rax Defs.sys_write;
        syscall;
        mov_ri Isa.rdi 0;
        mov_ri Isa.rax Defs.sys_exit_group;
        syscall;
        Label "msg";
        Bytes "child\n";
      ]
  in
  let blob = Sim_asm.Asm.assemble ~base:Loader.code_base items in
  Loader.image ~entry:(Sim_asm.Asm.symbol blob "cstart") ~text:blob ()

let forkexec_items () =
  Sim_asm.Asm.
    [
      Label "start";
      mov_ri Isa.rax Defs.sys_fork;
      syscall;
      cmp_ri Isa.rax 0;
      Jcc_l (Isa.Ne, "parent");
      (* child: execve a registered program *)
      Lea_ip (Isa.rdi, "path");
      mov_ri Isa.rsi 0;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_execve;
      syscall;
      (* unreachable unless execve failed *)
      mov_ri Isa.rdi 1;
      mov_ri Isa.rax Defs.sys_exit_group;
      syscall;
      Label "parent";
      mov_rr Isa.rdi Isa.rax;
      mov_ri Isa.rsi 0;
      mov_ri Isa.rdx 0;
      mov_ri Isa.r10 0;
      mov_ri Isa.rax Defs.sys_wait4;
      syscall;
      mov_ri Isa.rdi 0;
      mov_ri Isa.rax Defs.sys_exit_group;
      syscall;
      Label "path";
      Bytes (forkexec_child_path ^ "\000");
    ]

(* Globals page for sigmicro, mapped by the program itself:
   +0x00 SIGALRM handler hit count     +0x40 futex word (stays 0)
   +0x08 SIGUSR1 handler hit count     +0x80 nanosleep timespec
   +0xC0 futex-wait timespec           +0x100 epoll_wait event buffer
   +0x140 sigaction staging area

   The sigaction struct deliberately lives here and NOT below rsp: a
   sigflow interposer's SIGSYS frame lands below the interrupted rsp
   and would clobber anything the app staged there — data passed to a
   syscall must be in memory the app actually owns. *)
let sigmicro_globals = 0x9000

let sigmicro_install_handler sig_ ~handler ~flags =
  Sim_asm.Asm.
    [
      mov_ri Isa.rbx (sigmicro_globals + 0x140);
      Lea_ip (Isa.rcx, handler);
      store Isa.rbx 0 Isa.rcx;
      mov_ri Isa.rcx 0;
      store Isa.rbx 8 Isa.rcx;
      mov_ri Isa.rcx flags;
      store Isa.rbx 16 Isa.rcx;
      Lea_ip (Isa.rcx, "restorer");
      store Isa.rbx 24 Isa.rcx;
      mov_ri Isa.rdi sig_;
      mov_rr Isa.rsi Isa.rbx;
      mov_ri Isa.rdx 0;
      mov_ri Isa.rax Defs.sys_rt_sigaction;
      syscall;
    ]

let sigmicro_counter_bump off =
  Sim_asm.Asm.
    [
      mov_ri Isa.rbx sigmicro_globals;
      load Isa.rcx Isa.rbx off;
      add_ri Isa.rcx 1;
      store Isa.rbx off Isa.rcx;
      ret;
    ]

let sigmicro_items ~iters =
  let g = sigmicro_globals in
  Sim_asm.Asm.(
    [
      Label "start";
      (* map the globals page *)
      mov_ri Isa.rdi g;
      mov_ri Isa.rsi 4096;
      mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
      mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
      mov_ri64 Isa.r8 (-1L);
      mov_ri Isa.r9 0;
      mov_ri Isa.rax Defs.sys_mmap;
      syscall;
    ]
    @ sigmicro_install_handler Defs.sigalrm ~handler:"h_alrm"
        ~flags:Defs.sa_restart
    @ sigmicro_install_handler Defs.sigusr1 ~handler:"h_usr1" ~flags:0
    @ [
        (* timespecs: nanosleep {0, 1500ns}; futex wait {0, 1000ns} *)
        mov_ri Isa.rbx (g + 0x80);
        mov_ri Isa.rcx 0;
        store Isa.rbx 0 Isa.rcx;
        mov_ri Isa.rcx 1500;
        store Isa.rbx 8 Isa.rcx;
        mov_ri Isa.rbx (g + 0xC0);
        mov_ri Isa.rcx 0;
        store Isa.rbx 0 Isa.rcx;
        mov_ri Isa.rcx 1000;
        store Isa.rbx 8 Isa.rcx;
        (* epoll instance (empty interest set: a positive-timeout wait
           always runs to its virtual deadline) *)
        mov_ri Isa.rdi 8;
        mov_ri Isa.rax Defs.sys_epoll_create;
        syscall;
        mov_rr Isa.r14 Isa.rax;
        mov_ri Isa.r13 iters;
        Label "loop";
        (* write(1, msg, 6): restartable *)
        mov_ri Isa.rdi 1;
        Lea_ip (Isa.rsi, "msg");
        mov_ri Isa.rdx 6;
        mov_ri Isa.rax Defs.sys_write;
        syscall;
        mov_ri Isa.rax Defs.sys_getpid;
        syscall;
        (* nanosleep(&ts, 0): blocks ~1.5us, -EINTR on any handler *)
        mov_ri Isa.rdi (g + 0x80);
        mov_ri Isa.rsi 0;
        mov_ri Isa.rax Defs.sys_nanosleep;
        syscall;
        (* futex(&word, FUTEX_WAIT, 0, &ts): word never changes, so
           the wait ends in -ETIMEDOUT unless a signal lands first *)
        mov_ri Isa.rdi (g + 0x40);
        mov_ri Isa.rsi Defs.futex_wait;
        mov_ri Isa.rdx 0;
        mov_ri Isa.r10 (g + 0xC0);
        mov_ri Isa.rax Defs.sys_futex;
        syscall;
        (* epoll_wait(epfd, buf, 8, 1ms): wakes with 0 at the deadline *)
        mov_rr Isa.rdi Isa.r14;
        mov_ri Isa.rsi (g + 0x100);
        mov_ri Isa.rdx 8;
        mov_ri Isa.r10 1;
        mov_ri Isa.rax Defs.sys_epoll_wait;
        syscall;
        sub_ri Isa.r13 1;
        cmp_ri Isa.r13 0;
        Jcc_l (Isa.Ne, "loop");
        mov_ri Isa.rdi 0;
        mov_ri Isa.rax Defs.sys_exit_group;
        syscall;
        Label "h_alrm";
      ]
    @ sigmicro_counter_bump 0
    @ [ Label "h_usr1" ]
    @ sigmicro_counter_bump 8
    @ [
        Label "restorer";
        mov_ri Isa.rax Defs.sys_rt_sigreturn;
        syscall;
        Label "msg";
        Bytes "chaos\n";
      ])

(* The syscall number is recomputed from callee-saved registers every
   iteration, so a clobber injection at any interception corrupts the
   *next* number issued — the policy engine must localize it.  The
   counter lives in rsi (caller-saved, outside the clobber set) so
   the loop structure itself survives the attack. *)
let attack_items ~iters =
  Sim_asm.Asm.(
    [
      Label "start";
      mov_ri Isa.rbx Defs.sys_getpid;
      mov_ri Isa.rbp 0;
      mov_ri Isa.r12 0;
      mov_ri Isa.r13 0;
      mov_ri Isa.r14 0;
      mov_ri Isa.r15 0;
      mov_ri Isa.rsi iters;
      Label "loop";
      mov_rr Isa.rax Isa.rbx;
      add_rr Isa.rax Isa.rbp;
      add_rr Isa.rax Isa.r12;
      add_rr Isa.rax Isa.r13;
      add_rr Isa.rax Isa.r14;
      add_rr Isa.rax Isa.r15;
      Label "site";
      syscall;
      sub_ri Isa.rsi 1;
      cmp_ri Isa.rsi 0;
      Jcc_l (Isa.Ne, "loop");
      mov_ri Isa.rdi 0;
      mov_ri Isa.rax Defs.sys_exit_group;
      Label "site_exit";
      syscall;
    ])

let workload_image k = function
  | Micro { iters; nr } ->
      let blob =
        Sim_asm.Asm.assemble ~base:Loader.code_base
          (Workloads.Microbench_prog.bench_items ~iters ~nr)
      in
      Loader.image ~entry:(Sim_asm.Asm.symbol blob "start") ~text:blob ()
  | Prog { src; jit } ->
      if jit then Minicc.Jit.driver_image src
      else Minicc.Codegen.compile_to_image src
  | Forkexec ->
      Hashtbl.replace k.Types.programs forkexec_child_path
        (forkexec_child_image ());
      let blob =
        Sim_asm.Asm.assemble ~base:Loader.code_base (forkexec_items ())
      in
      Loader.image ~entry:(Sim_asm.Asm.symbol blob "start") ~text:blob ()
  | Sigmicro { iters } ->
      let blob =
        Sim_asm.Asm.assemble ~base:Loader.code_base (sigmicro_items ~iters)
      in
      Loader.image ~entry:(Sim_asm.Asm.symbol blob "start") ~text:blob ()
  | Attack { iters } ->
      let blob =
        Sim_asm.Asm.assemble ~base:Loader.code_base (attack_items ~iters)
      in
      Loader.image ~entry:(Sim_asm.Asm.symbol blob "start") ~text:blob ()
  | Wrk _ -> invalid_arg "workload_image: Wrk boots via workload_spawn"

let wrk_port = 80
let wrk_file = "/www/index.html"

(** Boot [workload]'s initial task into [k].  For the image-based
    workloads this is compile + spawn; [Wrk] instead boots the web
    server (the load generator attaches later, in
    {!workload_start}, so the interposer is installed on the server
    before any request traffic exists). *)
let workload_spawn k workload : Types.task =
  match workload with
  | Wrk { flavour; size_kb; requests; _ } ->
      Workloads.Webserver.boot_into k ~port:wrk_port ~exit_after:requests
        ~flavour ~workers:1
        ~files:[ (wrk_file, String.make (size_kb * 1024) 'x') ]
        ()
  | w ->
      let img = workload_image k w in
      (* The provenance ledger symbolizes unwound PCs through the
         image's symbol table; register it before any code runs. *)
      (match k.Types.prov with
      | Some p -> Sim_obs.Provenance.add_symbols p img.Types.img_symbols
      | None -> ());
      Kernel.spawn k img

(** Post-install start-up: for [Wrk], run the kernel until the server
    listens, then attach the load generator ([max_requests] caps the
    issued rids so exactly [requests] requests exist end to end).
    No-op for the self-contained workloads. *)
let workload_start k workload =
  match workload with
  | Wrk { size_kb; conns; requests; _ } ->
      Workloads.Webserver.wait_listening k ~port:wrk_port;
      ignore
        (Workloads.Wrk.attach ~max_requests:requests k ~port:wrk_port ~conns
           ~file:wrk_file ~file_size:(size_kb * 1024))
  | _ -> ()

(** Register the interposer code windows (trampoline page, interposer
    code region) with the span recorder — so cycles retired there are
    attributed to the interposition phase — and attach it to [k].
    The same windows the chaos engine treats as hot. *)
let attach_obs (k : Types.kernel) (o : Sim_obs.Obs.t) =
  Sim_obs.Obs.add_range o ~lo:0 ~hi:4096;
  Sim_obs.Obs.add_range o ~lo:Lazypoline.Layout.interp_code_base
    ~hi:(Lazypoline.Layout.interp_code_base + 0x10000);
  Kernel.attach_obs k o

(* ------------------------------------------------------------------ *)
(* Audited runs                                                        *)

(** A seeded fault for the bisection test: at interception number
    [at] (1-based, counted at the hook), clobber register [reg] with
    [value] — modelling an interposer that fails to preserve
    callee-saved state on one syscall. *)
type perturb = { at : int; reg : int; value : int64 }

(** Run [workload] under [mech] with an auditor attached.  Returns
    the audit, the kernel and the initial task.  [stop_after] halts
    the machine after that many application syscalls (replay-to-point
    for delta dumps).  [chaos] attaches a chaos engine for the run:
    the interposer hot windows (trampoline page, interposer code) are
    registered for biased preemption, and for interposed mechanisms
    the hook is wrapped so register-clobber injections fire at
    interception time — modelling an interposer that corrupts
    callee-saved state.  [blocks] forces the threaded-code block
    engine on/off for the run (default: the kernel's
    [SIM_NO_BLOCKS]-aware default) — the lever for the engine-identity
    gates.  [prov] attaches a syscall-provenance ledger (guest stack
    unwinding + per-call-site counters), with the workload image's
    symbols registered at spawn; observation-only, like [obs].
    [policy] attaches a syscall-flow-integrity engine:
    observation-only in report/learning mode, intrusive in deny/kill
    mode. *)
let run_audited ?(checkpoint_every = 64) ?stop_after ?perturb ?chaos ?blocks
    ?obs ?prov ?policy mech workload : A.t * Types.kernel * Types.task =
  let a = A.create ~checkpoint_every ?stop_after () in
  let k = Kernel.create ?blocks () in
  Kernel.attach_audit k a;
  (match obs with Some o -> attach_obs k o | None -> ());
  (match prov with Some p -> Kernel.attach_prov k p | None -> ());
  (match policy with Some p -> Kernel.attach_policy k p | None -> ());
  (match chaos with
  | Some ch ->
      Sim_chaos.Chaos.add_hot_range ch ~lo:0 ~hi:4096;
      Sim_chaos.Chaos.add_hot_range ch ~lo:Lazypoline.Layout.interp_code_base
        ~hi:(Lazypoline.Layout.interp_code_base + 0x10000);
      Kernel.attach_chaos k ch
  | None -> ());
  (* The same fixture files simtrace mounts, so `simtrace diff` on a
     user program sees the run `simtrace run` would. *)
  ignore (Vfs.add_file k.Types.vfs "/etc/hosts" "127.0.0.1 localhost\n");
  ignore (Vfs.add_file k.Types.vfs "/tmp/file_a" (String.make 256 'a'));
  let t = workload_spawn k workload in
  let hook = Hook.dummy () in
  (match perturb with
  | Some p ->
      let count = ref 0 in
      let inner = hook.Hook.on_syscall in
      hook.Hook.on_syscall <-
        (fun c ->
          incr count;
          if !count = p.at then Hook.set_reg c p.reg p.value;
          inner c)
  | None -> ());
  (match (chaos, mech) with
  | Some ch, m when m <> Raw ->
      let inner = hook.Hook.on_syscall in
      hook.Hook.on_syscall <-
        (fun c ->
          (match Sim_chaos.Chaos.clobber_injection ch with
          | Some (reg, value) -> Hook.set_reg c reg value
          | None -> ());
          inner c)
  | _ -> ());
  install mech k t hook;
  workload_start k workload;
  ignore (Kernel.run_until_exit ~max_slices:40_000_000 k);
  (a, k, t)

(** Serialize an audit with the kernel's syscall/errno names. *)
let log_string ?final_hash a =
  A.to_string ?final_hash ~syscall_name:Defs.syscall_name
    ~errno_name:Defs.errno_name a

(* ------------------------------------------------------------------ *)
(* Delta dump at the divergence point                                  *)

let dump_regs buf name_l name_r (cl : Sim_cpu.Cpu.t) (cr : Sim_cpu.Cpu.t) =
  Printf.bprintf buf "  %-5s %-18s %-18s\n" "reg" name_l name_r;
  for r = 0 to 15 do
    let vl = Sim_cpu.Cpu.peek_reg cl r and vr = Sim_cpu.Cpu.peek_reg cr r in
    Printf.bprintf buf "  %-5s 0x%-16Lx 0x%-16Lx%s\n" (Isa.gpr_name r) vl vr
      (if vl <> vr then "   <-- differs" else "")
  done;
  Printf.bprintf buf "  %-5s 0x%-16x 0x%-16x%s\n" "rip" cl.Sim_cpu.Cpu.rip
    cr.Sim_cpu.Cpu.rip
    (if cl.Sim_cpu.Cpu.rip <> cr.Sim_cpu.Cpu.rip then "   <-- differs" else "")

let dump_page_delta buf (ml : Sim_mem.Mem.t) (mr : Sim_mem.Mem.t) =
  let pages m = Sim_mem.Mem.mapped_pages m in
  let pl = pages ml and pr = pages mr in
  let both = List.filter (fun pn -> List.mem pn pr) pl in
  let only_l = List.filter (fun pn -> not (List.mem pn pr)) pl in
  let only_r = List.filter (fun pn -> not (List.mem pn pl)) pr in
  let differing =
    List.filter (fun pn -> A.page_hash ml pn <> A.page_hash mr pn) both
  in
  let show label pns =
    if pns <> [] then begin
      let shown = List.filteri (fun i _ -> i < 16) pns in
      Printf.bprintf buf "  %s: %d page(s):%s%s\n" label (List.length pns)
        (String.concat ""
           (List.map
              (fun pn ->
                Printf.sprintf " 0x%x" (pn * Sim_mem.Mem.page_size))
              shown))
        (if List.length pns > 16 then " ..." else "")
    end
  in
  show "pages with differing content" differing;
  show "pages mapped only in left" only_l;
  show "pages mapped only in right" only_r;
  if differing = [] && only_l = [] && only_r = [] then
    Printf.bprintf buf "  memory: identical page sets and contents\n"

(** Replay both runs up to the divergent syscall and render the
    side-by-side state delta. *)
let delta_dump ?perturb_for ~base_mech ~mech workload (d : A.divergence) :
    string =
  let buf = Buffer.create 1024 in
  let perturb_of m =
    match perturb_for with
    | Some (pm, p) when pm = m -> Some p
    | _ -> None
  in
  match (d.A.d_left, d.A.d_right) with
  | Some l, Some r when l.A.app_seq > 0 && r.A.app_seq > 0 ->
      let _, kl, _ =
        run_audited ?perturb:(perturb_of base_mech) ~stop_after:l.A.app_seq
          base_mech workload
      in
      let _, kr, _ =
        run_audited ?perturb:(perturb_of mech) ~stop_after:r.A.app_seq mech
          workload
      in
      (match
         ( Hashtbl.find_opt kl.Types.tasks d.A.d_tid,
           Hashtbl.find_opt kr.Types.tasks d.A.d_tid )
       with
      | Some tl, Some tr ->
          Printf.bprintf buf
            "state at first divergent syscall (tid %d, app syscall #%d):\n"
            d.A.d_tid l.A.app_seq;
          dump_regs buf (mech_name base_mech) (mech_name mech) tl.Types.ctx
            tr.Types.ctx;
          dump_page_delta buf tl.Types.mem tr.Types.mem
      | _ ->
          Printf.bprintf buf
            "  (tid %d no longer live at the divergence point)\n" d.A.d_tid);
      Buffer.contents buf
  | _ ->
      Printf.bprintf buf
        "  (stream ended or diverged on a non-syscall event; no replay \
         point)\n";
      Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The diff driver                                                     *)

type finding = { f_mech : mech; f_div : A.divergence; f_delta : string }

type outcome = {
  o_base : mech;
  o_workload : workload;
  o_runs : (mech * A.t * int64) list;  (** mech, audit, final state hash *)
  o_findings : finding list;  (** empty = zero divergences *)
  o_text : string;  (** human-readable report *)
}

(** Run [workload] under every mechanism in [mechs], diff each
    against [against] (default raw), bisect mismatches and attach
    delta dumps.  [perturb_for] seeds a fault into one mechanism —
    the bisection self-test. *)
let diff ?(against = Raw) ?perturb_for ?(mechs = all_mechs) workload : outcome
    =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "divergence audit: %s, base %s\n"
    (workload_name workload) (mech_name against);
  let perturb_of m =
    match perturb_for with
    | Some (pm, p) when pm = m -> Some p
    | _ -> None
  in
  let run m =
    let a, k, _ = run_audited ?perturb:(perturb_of m) m workload in
    (m, a, Kernel.audit_final_hash k a)
  in
  let base = run against in
  let others = List.filter (fun m -> m <> against) mechs in
  let runs = base :: List.map run others in
  let _, base_audit, _ = base in
  let findings = ref [] in
  List.iter
    (fun (m, a, final) ->
      if m <> against then begin
        match A.first_divergence base_audit a with
        | None ->
            Printf.bprintf buf
              "  %-12s OK: %d app syscalls identical (final state hash \
               %Lx)\n"
              (mech_name m) (A.app_count a) final
        | Some d ->
            let delta =
              delta_dump ?perturb_for ~base_mech:against ~mech:m workload d
            in
            Printf.bprintf buf
              "  %-12s DIVERGED at tid %d, app event %d: %s\n" (mech_name m)
              d.A.d_tid (d.A.d_index + 1) d.A.d_reason;
            (match (d.A.d_left, d.A.d_right) with
            | Some l, Some r ->
                Printf.bprintf buf "    %-12s %s\n    %-12s %s\n"
                  (mech_name against)
                  (A.describe_ev ~syscall_name:Defs.syscall_name l.A.ev)
                  (mech_name m)
                  (A.describe_ev ~syscall_name:Defs.syscall_name r.A.ev)
            | _ -> ());
            Buffer.add_string buf delta;
            findings := { f_mech = m; f_div = d; f_delta = delta } :: !findings
      end)
    runs;
  let findings = List.rev !findings in
  if findings = [] then
    Printf.bprintf buf "zero divergences across %d mechanism(s)\n"
      (List.length others);
  {
    o_base = against;
    o_workload = workload;
    o_runs = runs;
    o_findings = findings;
    o_text = Buffer.contents buf;
  }

(* ------------------------------------------------------------------ *)
(* Engine identity: threaded-code blocks vs. the pure interpreter      *)

(** Run [workload] under [mech] twice — once through the threaded-code
    block engine, once forced onto the per-instruction interpreter —
    and compare everything an audit can see: the application event
    stream, the periodic state-hash checkpoints, the final
    register+memory hash and the total simulated cycle count.  This is
    the PR-6 acceptance gate: the engine must be a host-side
    optimisation with no simulated footprint whatsoever. *)
let engine_identical mech workload : bool * string =
  let run blocks =
    let a, k, _ = run_audited ~blocks mech workload in
    let h = Kernel.audit_final_hash k a in
    (log_string ~final_hash:h a, Types.global_time k, h)
  in
  let log_on, cyc_on, h_on = run true in
  let log_off, cyc_off, h_off = run false in
  if log_on = log_off && cyc_on = cyc_off then
    ( true,
      Printf.sprintf "identical: %Ld cycles, state hash %Lx" cyc_on h_on )
  else
    ( false,
      Printf.sprintf
        "ENGINE MISMATCH: cycles %Ld (blocks) vs %Ld (interp), hash %Lx vs \
         %Lx, audit logs %s"
        cyc_on cyc_off h_on h_off
        (if log_on = log_off then "equal" else "differ") )
