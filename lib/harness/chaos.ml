(** Chaos sweeps gated by audit divergence.

    The driver runs workload x mechanism x seed with a seeded
    {!Sim_chaos.Chaos} engine attached to both a raw run and an
    interposed run, and asserts that the application-scoped audit
    streams stay identical — injected faults, fuzzed signals and
    adversarial preemption included.  On a divergence it shrinks the
    union injection set to a minimal reproducer by greedy bisection
    (forced-mode re-runs) and serializes it as a replayable
    [% simtrace-chaos/1] file.

    This is the adversarial complement of {!Divergence.diff}: that
    gate checks the happy path, this one checks that interposition is
    transparent under errno storms, signals landing mid-stub and
    preemption inside the interposer's hot windows. *)

open Sim_kernel
module A = Sim_audit.Audit
module C = Sim_chaos.Chaos
module D = Divergence

(* ------------------------------------------------------------------ *)
(* Workload specs (serializable, unlike D.workload whose Prog carries
   source text)                                                        *)

type wspec =
  | Wmicro of { iters : int; nr : int }
  | Wsigmicro of { iters : int }
  | Wforkexec
  | Wprog of { path : string; jit : bool }
  | Wattack of { iters : int }

let wspec_to_string = function
  | Wmicro { iters; nr } -> Printf.sprintf "micro %d %d" iters nr
  | Wsigmicro { iters } -> Printf.sprintf "sigmicro %d" iters
  | Wforkexec -> "forkexec"
  | Wprog { path; jit } -> Printf.sprintf "prog %b %s" jit path
  | Wattack { iters } -> Printf.sprintf "attack %d" iters

let wspec_of_string s : wspec option =
  match String.split_on_char ' ' (String.trim s) with
  | [ "micro"; iters; nr ] -> (
      try Some (Wmicro { iters = int_of_string iters; nr = int_of_string nr })
      with _ -> None)
  | [ "sigmicro"; iters ] -> (
      try Some (Wsigmicro { iters = int_of_string iters }) with _ -> None)
  | [ "forkexec" ] -> Some Wforkexec
  | "prog" :: jit :: rest when rest <> [] -> (
      try
        Some (Wprog { path = String.concat " " rest; jit = bool_of_string jit })
      with _ -> None)
  | [ "attack"; iters ] -> (
      try Some (Wattack { iters = int_of_string iters }) with _ -> None)
  | _ -> None

(** Resolve a spec to a runnable workload.  [read] maps a program
    path to its source text (injected so this module stays free of
    file I/O policy). *)
let resolve ~(read : string -> string) = function
  | Wmicro { iters; nr } -> D.Micro { iters; nr }
  | Wsigmicro { iters } -> D.Sigmicro { iters }
  | Wforkexec -> D.Forkexec
  | Wprog { path; jit } -> D.Prog { src = read path; jit }
  | Wattack { iters } -> D.Attack { iters }

(* ------------------------------------------------------------------ *)
(* Single runs                                                         *)

(** One audited run of [workload] under [mech] with a fuzzing chaos
    engine.  Returns the audit and the injections performed.
    [stop_after] bounds the run to that many application syscalls. *)
let run_fuzz ?(rates = C.default_rates) ?stop_after ~seed mech workload :
    A.t * C.injection list =
  let ch = C.fuzz ~rates ~seed () in
  let a, _, _ = D.run_audited ?stop_after ~chaos:ch mech workload in
  (a, C.log ch)

(** One audited run with an explicit (forced) injection set. *)
let run_forced ?stop_after ~injections mech workload : A.t =
  let ch = C.forced injections in
  let a, _, _ = D.run_audited ?stop_after ~chaos:ch mech workload in
  a

(* An interposed run is bounded by the raw baseline's app-syscall
   count plus a margin: a clobbered loop register can otherwise send
   the workload spinning for 2^63 iterations.  The margin keeps
   "right stream is longer" divergences detectable; a diverging run
   truncated at the bound has already diverged within it. *)
let bound_of (a_raw : A.t) = a_raw.A.app_count + 16

(** Do raw and [mech], both forced to exactly [injections], diverge? *)
let forced_divergence ~injections mech workload : A.divergence option =
  let a_raw = run_forced ~injections D.Raw workload in
  let a_m =
    run_forced ~stop_after:(bound_of a_raw) ~injections mech workload
  in
  A.first_divergence a_raw a_m

(* ------------------------------------------------------------------ *)
(* Minimization                                                        *)

let dedup_injections (logs : C.injection list list) : C.injection list =
  let seen = Hashtbl.create 64 in
  List.concat logs
  |> List.filter (fun j ->
         let k = C.key_of j in
         if Hashtbl.mem seen k then false
         else begin
           Hashtbl.replace seen k ();
           true
         end)

(** Shrink [injections] to a (locally) minimal subset that still makes
    raw and [mech] diverge: recursive halving while a single half
    fails, then greedy one-by-one removal.  Returns [None] when the
    full set does not reproduce the divergence under forced replay
    (a schedule-dependent repro — report the full set instead). *)
let minimize ?(greedy_cap = 64) ~mech ~workload (injections : C.injection list)
    : C.injection list option =
  let test s = forced_divergence ~injections:s mech workload <> None in
  if not (test injections) then None
  else
    let split injs =
      let n = List.length injs in
      ( List.filteri (fun i _ -> i < n / 2) injs,
        List.filteri (fun i _ -> i >= n / 2) injs )
    in
    let greedy injs =
      if List.length injs > greedy_cap then injs
      else
        let rec go kept = function
          | [] -> List.rev kept
          | j :: rest ->
              if test (List.rev_append kept rest) then go kept rest
              else go (j :: kept) rest
        in
        go [] injs
    in
    let rec halve injs =
      if List.length injs <= 1 then injs
      else
        let l, r = split injs in
        if test l then halve l else if test r then halve r else greedy injs
    in
    Some (halve injections)

(* ------------------------------------------------------------------ *)
(* The reproducer file: % simtrace-chaos/1                             *)

type repro = {
  r_wspec : wspec;
  r_mech : D.mech;
  r_seed : int64;
  r_injections : C.injection list;
}

let chaos_artifact_kind = "chaos"
let chaos_artifact_version = 1

let repro_to_string (r : repro) : string =
  let module Art = Sim_artifact.Artifact in
  let buf = Buffer.create 256 in
  Art.add_magic buf ~kind:chaos_artifact_kind ~version:chaos_artifact_version;
  Art.add_header buf "workload" (wspec_to_string r.r_wspec);
  Art.add_header buf "mech" (D.mech_name r.r_mech);
  Art.add_header buf "seed" (Int64.to_string r.r_seed);
  List.iter
    (fun j -> Printf.bprintf buf "%s\n" (C.injection_to_string j))
    r.r_injections;
  Buffer.contents buf

let repro_of_string ?file (s : string) : (repro, string) result =
  let module Art = Sim_artifact.Artifact in
  match
    Art.parse_magic ?file ~kind:chaos_artifact_kind
      ~accept:[ chaos_artifact_version ] s
  with
  | Error e -> Error e
  | Ok (_v, rest) -> (
      let header key = Art.header_value ~key rest in
      match (header "workload", header "mech", header "seed") with
      | Some w, Some m, Some seed -> (
          match (wspec_of_string w, D.mech_of_string m) with
          | Some wspec, Some mech -> (
              try
                let injections =
                  List.filter_map
                    (fun l ->
                      if String.length l > 0 && l.[0] = 'I' then
                        C.injection_of_string l
                      else None)
                    rest
                in
                Ok
                  {
                    r_wspec = wspec;
                    r_mech = mech;
                    r_seed = Int64.of_string seed;
                    r_injections = injections;
                  }
              with _ -> Error "malformed seed")
          | None, _ -> Error ("unknown workload spec: " ^ w)
          | _, None -> Error ("unknown mechanism: " ^ m))
      | _ -> Error "missing workload/mech/seed header")

(** Replay a reproducer: force its injection set into a raw and an
    interposed run and diff.  Returns the divergence if it reproduces
    (the expected outcome for a file dumped by a failing sweep). *)
let replay ~(read : string -> string) (r : repro) : A.divergence option =
  let workload = resolve ~read r.r_wspec in
  forced_divergence ~injections:r.r_injections r.r_mech workload

(* ------------------------------------------------------------------ *)
(* The sweep                                                           *)

type failure = {
  x_wspec : wspec;
  x_mech : D.mech;
  x_seed : int64;
  x_div : A.divergence;
  x_injections : C.injection list;  (** union fuzz log (raw + mech) *)
  x_minimized : C.injection list option;
      (** [Some] when forced replay reproduces and shrinking ran *)
}

type report = {
  rp_runs : int;  (** mechanism runs checked (excluding raw baselines) *)
  rp_injected : int;  (** injections performed across all runs *)
  rp_failures : failure list;
  rp_text : string;
}

let repro_of_failure (x : failure) : repro =
  {
    r_wspec = x.x_wspec;
    r_mech = x.x_mech;
    r_seed = x.x_seed;
    r_injections =
      (match x.x_minimized with Some m -> m | None -> x.x_injections);
  }

(** Run every workload under every mechanism for seeds [1..seeds],
    each against a raw baseline fuzzed with the same seed, and check
    for application-stream divergence.  [minimize] shrinks each
    failure to a minimal forced reproducer. *)
let sweep ?(rates = C.default_rates) ?(minimize_failures = true) ~seeds
    ~(mechs : D.mech list) ~(read : string -> string) (wspecs : wspec list) :
    report =
  let buf = Buffer.create 4096 in
  let mechs = List.filter (fun m -> m <> D.Raw) mechs in
  Printf.bprintf buf
    "chaos sweep: %d workload(s) x %d mechanism(s) x %d seed(s)\n"
    (List.length wspecs) (List.length mechs) seeds;
  let runs = ref 0 and injected = ref 0 in
  let failures = ref [] in
  List.iter
    (fun wspec ->
      let workload = resolve ~read wspec in
      for seed_i = 1 to seeds do
        let seed = Int64.of_int seed_i in
        let a_raw, log_raw = run_fuzz ~rates ~seed D.Raw workload in
        injected := !injected + List.length log_raw;
        List.iter
          (fun mech ->
            let a_m, log_m =
              run_fuzz ~rates ~stop_after:(bound_of a_raw) ~seed mech workload
            in
            incr runs;
            injected := !injected + List.length log_m;
            match A.first_divergence a_raw a_m with
            | None -> ()
            | Some d ->
                let union = dedup_injections [ log_raw; log_m ] in
                let minimized =
                  if minimize_failures then minimize ~mech ~workload union
                  else None
                in
                Printf.bprintf buf
                  "  FAIL %s %s seed=%Ld: tid %d app event %d: %s\n"
                  (D.workload_name workload) (D.mech_name mech) seed d.A.d_tid
                  (d.A.d_index + 1) d.A.d_reason;
                (match minimized with
                | Some m ->
                    Printf.bprintf buf
                      "    minimized to %d injection(s) (from %d):\n"
                      (List.length m) (List.length union);
                    List.iter
                      (fun j -> Printf.bprintf buf "      %s\n" (C.describe j))
                      m
                | None ->
                    Printf.bprintf buf
                      "    forced replay did not reproduce; keeping all %d \
                       injection(s)\n"
                      (List.length union));
                failures :=
                  {
                    x_wspec = wspec;
                    x_mech = mech;
                    x_seed = seed;
                    x_div = d;
                    x_injections = union;
                    x_minimized = minimized;
                  }
                  :: !failures)
          mechs
      done;
      Printf.bprintf buf "  %-28s swept %d seed(s)\n"
        (D.workload_name workload) seeds)
    wspecs;
  let failures = List.rev !failures in
  Printf.bprintf buf
    "%s: %d run(s), %d injection(s) performed, %d divergence(s)\n"
    (if failures = [] then "CHAOS OK" else "CHAOS FAIL")
    !runs !injected (List.length failures);
  {
    rp_runs = !runs;
    rp_injected = !injected;
    rp_failures = failures;
    rp_text = Buffer.contents buf;
  }

(* ------------------------------------------------------------------ *)
(* Chaos-off identity                                                  *)

(** A zero-rate chaos engine must be behaviorally invisible: the
    audit log (streams, checkpoints, final state hash) and the cycle
    clock of a run with it attached are bit-identical to a run
    without.  Returns [(ok, detail)]. *)
let chaos_off_identical mech workload : bool * string =
  let a1, k1, _ = D.run_audited mech workload in
  let ch = C.fuzz ~rates:C.zero_rates ~seed:1L () in
  let a2, k2, _ = D.run_audited ~chaos:ch mech workload in
  let h1 = Kernel.audit_final_hash k1 a1
  and h2 = Kernel.audit_final_hash k2 a2 in
  let c1 = Types.global_time k1 and c2 = Types.global_time k2 in
  let log1 = D.log_string ~final_hash:h1 a1
  and log2 = D.log_string ~final_hash:h2 a2 in
  if log1 = log2 && c1 = c2 && C.count ch = 0 then
    (true, Printf.sprintf "identical: %Ld cycles, state hash %Lx" c1 h1)
  else
    ( false,
      Printf.sprintf
        "MISMATCH: cycles %Ld vs %Ld, hash %Lx vs %Lx, logs %s, %d \
         injection(s) from a zero-rate engine"
        c1 c2 h1 h2
        (if log1 = log2 then "equal" else "differ")
        (C.count ch) )

(* ------------------------------------------------------------------ *)
(* Engine identity under chaos                                         *)

(** The adversarial half of {!Divergence.engine_identical}: run the
    same seeded fuzzing chaos engine over a blocks-on and a blocks-off
    run and require bit-identical audit logs, cycle clocks AND
    injection sequences.  The last is the sharp edge — the per-task
    preemption counter must advance once per retired instruction, so
    if the block runner drew the chaos stream at different points than
    the interpreter the injections themselves would drift. *)
let engine_identical_chaos ?(rates = C.default_rates) ~seed mech workload :
    bool * string =
  let run blocks =
    let ch = C.fuzz ~rates ~seed () in
    let a, k, _ = D.run_audited ~chaos:ch ~blocks mech workload in
    let h = Kernel.audit_final_hash k a in
    (D.log_string ~final_hash:h a, Types.global_time k, h, C.log ch)
  in
  let log_on, cyc_on, h_on, inj_on = run true in
  let log_off, cyc_off, h_off, inj_off = run false in
  let inj_eq =
    List.length inj_on = List.length inj_off
    && List.for_all2 (fun a b -> C.key_of a = C.key_of b) inj_on inj_off
  in
  if log_on = log_off && cyc_on = cyc_off && inj_eq then
    ( true,
      Printf.sprintf "identical: %Ld cycles, %d injection(s), state hash %Lx"
        cyc_on (List.length inj_on) h_on )
  else
    ( false,
      Printf.sprintf
        "ENGINE/CHAOS MISMATCH (seed %Ld): cycles %Ld vs %Ld, hash %Lx vs \
         %Lx, logs %s, injections %d vs %d (%s)"
        seed cyc_on cyc_off h_on h_off
        (if log_on = log_off then "equal" else "differ")
        (List.length inj_on) (List.length inj_off)
        (if inj_eq then "aligned" else "MISALIGNED") )
