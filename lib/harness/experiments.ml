(** The evaluation harness: one entry point per table/figure of the
    paper.  Each experiment prints the regenerated table/series and
    returns its raw numbers so tests can assert on the shapes. *)

open Sim_kernel
module Stats = Sim_stats.Stats
module Micro = Workloads.Microbench_prog
module Hook = Lazypoline.Hook

let line () = print_endline (String.make 72 '-')

let section title =
  line ();
  Printf.printf "%s\n" title;
  line ()

(** {1 Table I — characteristics of the mechanisms}

    Expressiveness and exhaustiveness are structural properties of
    each implementation in this repository (what the hook interface
    can do; whether JIT code is caught — both covered by tests); the
    efficiency class is derived from the measured microbenchmark
    overhead. *)

type characteristics = {
  mech : string;
  expressiveness : string;
  exhaustive : bool;
  efficiency : string;
  measured : float;  (** microbenchmark overhead, x over native *)
}

let table1 ?(iters = 20_000) () : characteristics list =
  let eff x = if x < 3.0 then "High" else if x < 25.0 then "Moderate" else "Low" in
  let m c = Micro.overhead ~iters c in
  let rows =
    [
      ("ptrace", "Full", true, m Micro.Ptrace);
      ("seccomp-bpf", "Limited", true, m Micro.Seccomp_bpf);
      ("seccomp-user", "Full", true, m Micro.Seccomp_user);
      ("SUD", "Full", true, m Micro.Sud);
      ("Binary Rewriting (zpoline)", "Full", false, m Micro.Zpoline);
      ("lazypoline (this work)", "Full", true, m Micro.Lazypoline_full);
    ]
  in
  let rows =
    List.map
      (fun (mech, expressiveness, exhaustive, measured) ->
        { mech; expressiveness; exhaustive; efficiency = eff measured; measured })
      rows
  in
  section "Table I: characteristics of syscall interposition mechanisms";
  Printf.printf "%-28s %-15s %-14s %-10s %s\n" "Mechanism" "Expressiveness"
    "Exhaustiveness" "Efficiency" "(measured)";
  List.iter
    (fun r ->
      Printf.printf "%-28s %-15s %-14s %-10s %.2fx\n" r.mech r.expressiveness
        (if r.exhaustive then "yes" else "NO")
        r.efficiency r.measured)
    rows;
  rows

(** {1 Table II — microbenchmark overheads} *)

type micro_row = { config : Micro.config; overhead : float; sd_pct : float }

let table2 ?(iters = 20_000) ?(reps = 3) () : micro_row list =
  let measure c =
    let xs = List.init reps (fun _ -> Micro.overhead ~iters c) in
    (Stats.geomean xs, Stats.stddev_pct xs)
  in
  let configs =
    [
      Micro.Zpoline; Micro.Lazypoline_noxstate; Micro.Lazypoline_full;
      Micro.Sud; Micro.Native_sud_allow;
    ]
  in
  let rows =
    List.map
      (fun c ->
        let overhead, sd_pct = measure c in
        { config = c; overhead; sd_pct })
      configs
  in
  section
    (Printf.sprintf
       "Table II: microbenchmark overhead vs native (syscall 500 x%d, %d reps)"
       iters reps);
  Printf.printf "   (paper: zpoline n/a, lazypoline-no-xstate 1.66x,\n";
  Printf.printf "    lazypoline 2.38x, SUD 20.8x, baseline+SUD 1.42x)\n\n";
  List.iter
    (fun r ->
      Printf.printf "%-44s %6.2fx   (sd %.2f%%)\n" (Micro.config_name r.config)
        r.overhead r.sd_pct)
    rows;
  (* extended comparison beyond the paper's table *)
  print_newline ();
  Printf.printf "extra (not in the paper's Table II):\n";
  List.iter
    (fun c ->
      Printf.printf "%-44s %6.2fx\n" (Micro.config_name c)
        (Micro.overhead ~iters c))
    [ Micro.Seccomp_user; Micro.Seccomp_bpf; Micro.Ptrace;
      Micro.Lazypoline_protected ];
  rows

(** {1 Fig. 4 — lazypoline's overhead breakdown} *)

type fig4_result = {
  native_cpi : float;  (** cycles per iteration *)
  zpoline_cpi : float;
  nosud_cpi : float;  (** lazypoline fast path, SUD disabled *)
  noxstate_cpi : float;
  full_cpi : float;
}

let fig4 ?(iters = 20_000) () : fig4_result =
  let r =
    {
      native_cpi = Micro.run ~iters Micro.Native;
      zpoline_cpi = Micro.run ~iters Micro.Zpoline;
      nosud_cpi = Micro.run ~iters Micro.Lazypoline_nosud;
      noxstate_cpi = Micro.run ~iters Micro.Lazypoline_noxstate;
      full_cpi = Micro.run ~iters Micro.Lazypoline_full;
    }
  in
  section "Fig. 4: lazypoline overhead breakdown (cycles per syscall)";
  let row name v =
    Printf.printf "%-28s %8.1f  %s\n" name v
      (Stats.bar ~max_value:r.full_cpi v)
  in
  row "native" r.native_cpi;
  row "zpoline" r.zpoline_cpi;
  row "lazypoline (SUD disabled)" r.nosud_cpi;
  row "lazypoline w/o xstate" r.noxstate_cpi;
  row "lazypoline" r.full_cpi;
  print_newline ();
  Printf.printf "breakdown of lazypoline's overhead over native (%.1f cycles):\n"
    (r.full_cpi -. r.native_cpi);
  Printf.printf "  rewriting mechanism (zpoline-equivalent): %6.1f\n"
    (r.nosud_cpi -. r.native_cpi);
  Printf.printf "  enabling SUD (exhaustiveness guarantee) : %6.1f\n"
    (r.noxstate_cpi -. r.nosud_cpi);
  Printf.printf "  xstate preservation (full ABI)          : %6.1f\n"
    (r.full_cpi -. r.noxstate_cpi);
  Printf.printf
    "check: lazypoline fast path w/o SUD matches zpoline: %.1f vs %.1f (%.1f%%)\n"
    r.nosud_cpi r.zpoline_cpi
    (100.0 *. (r.nosud_cpi -. r.zpoline_cpi) /. r.zpoline_cpi);
  r

(** {1 Table III — register-preservation expectations (Pin tool)} *)

type table3_row = {
  util : string;
  ubuntu_expects_xstate : bool;
  clear_expects_xstate : bool;
}

let table3 () : table3_row list =
  let open Workloads.Coreutils in
  let rows =
    List.map
      (fun util ->
        let pu, cu = run_under_pin ~distro:Glibc_2_31 util in
        let pc, cc = run_under_pin ~distro:Clear_linux util in
        if cu <> 0 || cc <> 0 then
          failwith (Printf.sprintf "%s exited nonzero (%d/%d)" util cu cc);
        {
          util;
          ubuntu_expects_xstate = Sim_pin.Pin.expects_xstate pu;
          clear_expects_xstate = Sim_pin.Pin.expects_xstate pc;
        })
      util_names
  in
  section "Table III: coreutils expecting xstate preservation across syscalls";
  Printf.printf "%-10s %-14s %s\n" "Coreutils" "Ubuntu 20.04" "Clear Linux";
  List.iter
    (fun r ->
      let mark b = if b then "x (affected)" else "-" in
      Printf.printf "%-10s %-14s %s\n" r.util
        (mark r.ubuntu_expects_xstate)
        (mark r.clear_expects_xstate))
    rows;
  let count f = List.length (List.filter f rows) in
  Printf.printf
    "\naffected: Ubuntu %d/10 (paper: 4/10, pthread-init), Clear Linux %d/10 (paper: 10/10, ptmalloc_init)\n"
    (count (fun r -> r.ubuntu_expects_xstate))
    (count (fun r -> r.clear_expects_xstate));
  rows

(** {1 Section V-A — exhaustiveness on JIT-compiled code} *)

type exhaustiveness_result = {
  sud_trace : int list;
  zpoline_trace : int list;
  lazypoline_trace : int list;
  jit_getpid_caught_by : string list;
}

(* the "C application run under tcc -run" with the singular non-libc
   getpid *)
let tcc_app = {|
long main() {
  char msg[32];
  msg[0] = 'p'; msg[1] = 'i'; msg[2] = 'd'; msg[3] = ':'; msg[4] = ' ';
  long pid = syscall(39);          /* the introduced getpid */
  msg[5] = '0' + pid % 10;
  msg[6] = 10;
  syscall(1, 1, msg, 7);
  return 0;
}
|}

let run_jit_under install_fn =
  let k = Kernel.create () in
  let img = Minicc.Jit.driver_image tcc_app in
  let t = Kernel.spawn k img in
  let hook, trace = Hook.tracing () in
  install_fn k t hook;
  if not (Kernel.run_until_exit ~max_slices:500_000 k) then
    failwith "jit workload did not terminate";
  if t.Types.exit_code <> 0 then failwith "jit workload failed";
  List.map fst (Hook.recorded trace)

let exhaustiveness () : exhaustiveness_result =
  let sud_trace =
    run_jit_under (fun k t h -> ignore (Baselines.Sud_interposer.install k t h))
  in
  let zpoline_trace =
    run_jit_under (fun k t h -> ignore (Baselines.Zpoline.install k t h))
  in
  let lazypoline_trace =
    run_jit_under (fun k t h -> ignore (Lazypoline.install k t h))
  in
  let caught trace = List.mem Defs.sys_getpid trace in
  let r =
    {
      sud_trace;
      zpoline_trace;
      lazypoline_trace;
      jit_getpid_caught_by =
        List.filter_map
          (fun (n, tr) -> if caught tr then Some n else None)
          [
            ("SUD", sud_trace); ("zpoline", zpoline_trace);
            ("lazypoline", lazypoline_trace);
          ];
    }
  in
  section "Section V-A: exhaustiveness under JIT compilation (tcc -run analogue)";
  let show name tr =
    Printf.printf "%-12s %3d syscalls | getpid from JIT code: %s\n" name
      (List.length tr)
      (if caught tr then "CAUGHT" else "** MISSED **")
  in
  show "SUD" sud_trace;
  show "zpoline" zpoline_trace;
  show "lazypoline" lazypoline_trace;
  Printf.printf "lazypoline trace identical to SUD trace: %b\n"
    (lazypoline_trace = sud_trace);
  r

(** {1 Listing 1 — the xstate clobbering demo} *)

let listing1 () =
  section "Listing 1: pthread-init xmm pattern under an SSE-using interposer";
  let run ~preserve =
    let k = Kernel.create () in
    Workloads.Coreutils.setup_vfs k;
    let t =
      Kernel.spawn k
        (Workloads.Coreutils.image ~distro:Workloads.Coreutils.Glibc_2_31 "ls")
    in
    let hook = Hook.dummy () in
    hook.Hook.clobbers_xstate <- true;
    ignore (Lazypoline.install ~preserve_xstate:preserve k t hook);
    ignore (Kernel.run_until_exit k);
    (* __stack_user's prev/next were initialised from xmm0 *)
    let prev = Sim_mem.Mem.peek_u64 t.Types.mem Workloads.Coreutils.libc_state in
    let next =
      Sim_mem.Mem.peek_u64 t.Types.mem (Workloads.Coreutils.libc_state + 8)
    in
    (prev, next)
  in
  let expected = Int64.of_int Workloads.Coreutils.libc_state in
  let p1, n1 = run ~preserve:true in
  let p2, n2 = run ~preserve:false in
  Printf.printf "expected &__stack_user = 0x%Lx\n" expected;
  Printf.printf "with xstate preservation   : prev=0x%Lx next=0x%Lx  %s\n" p1 n1
    (if p1 = expected && n1 = expected then "OK" else "CORRUPT");
  Printf.printf "without xstate preservation: prev=0x%Lx next=0x%Lx  %s\n" p2 n2
    (if p2 = expected && n2 = expected then "OK" else "CORRUPT");
  ((p1, n1), (p2, n2))

(** {1 Fig. 5 — web server macrobenchmarks} *)

type ws_config = Ws_native | Ws_zpoline | Ws_lazy_nox | Ws_lazy | Ws_sud

let ws_config_name = function
  | Ws_native -> "native"
  | Ws_zpoline -> "zpoline"
  | Ws_lazy_nox -> "lazypoline w/o xstate"
  | Ws_lazy -> "lazypoline"
  | Ws_sud -> "SUD"

let ws_install = function
  | Ws_native -> fun _ _ -> ()
  | Ws_zpoline ->
      fun k t -> ignore (Baselines.Zpoline.install k t (Hook.dummy ()))
  | Ws_lazy_nox ->
      fun k t ->
        ignore (Lazypoline.install ~preserve_xstate:false k t (Hook.dummy ()))
  | Ws_lazy -> fun k t -> ignore (Lazypoline.install k t (Hook.dummy ()))
  | Ws_sud ->
      fun k t -> ignore (Baselines.Sud_interposer.install k t (Hook.dummy ()))

type ws_point = {
  flavour : Workloads.Webserver.flavour;
  size_kb : int;
  workers : int;
  ws_config : ws_config;
  req_per_sec : float;
}

(** One benchmark point: throughput of [flavour] serving a
    [size_kb]-KiB file with [workers] workers under [ws_config]. *)
let fig5_point ?(warmup = 2_000_000L) ?(window = 12_000_000L) ~flavour ~size_kb
    ~workers ws_config : ws_point =
  let file = Printf.sprintf "/www/f%dk" size_kb in
  let contents = String.make (size_kb * 1024) 'x' in
  let k =
    Workloads.Webserver.boot ~ncpus:workers ~flavour ~workers
      ~files:[ (file, contents) ]
      ~interpose:(ws_install ws_config) ()
  in
  Workloads.Webserver.wait_listening k ~port:80;
  let g =
    Workloads.Wrk.attach k ~port:80 ~conns:(4 * workers) ~file
      ~file_size:(size_kb * 1024)
  in
  Kernel.run_for k warmup;
  let t0 = Types.global_time k in
  let c0 = g.Workloads.Wrk.completed in
  Kernel.run_for k window;
  let dt = Int64.sub (Types.global_time k) t0 in
  let reqs = g.Workloads.Wrk.completed - c0 in
  if g.Workloads.Wrk.errors > 0 then
    Printf.eprintf "warning: %d client errors (%s)\n%!" g.Workloads.Wrk.errors
      (ws_config_name ws_config);
  {
    flavour;
    size_kb;
    workers;
    ws_config;
    req_per_sec = float_of_int reqs /. (Int64.to_float dt /. 2.1e9);
  }

let fig5 ?(sizes = [ 1; 4; 16; 64; 256 ]) ?(worker_counts = [ 1; 12 ])
    ?(flavours = Workloads.Webserver.[ Nginx_like; Lighttpd_like ]) () :
    ws_point list =
  let configs = [ Ws_native; Ws_zpoline; Ws_lazy_nox; Ws_lazy; Ws_sud ] in
  let all = ref [] in
  section "Fig. 5: web server throughput under interposition";
  List.iter
    (fun flavour ->
      List.iter
        (fun workers ->
          Printf.printf "\n%s, %d worker%s (relative throughput; abs = req/s):\n"
            (Workloads.Webserver.flavour_name flavour)
            workers
            (if workers = 1 then "" else "s");
          Printf.printf "%-8s" "size";
          List.iter
            (fun c -> Printf.printf "%22s" (ws_config_name c))
            configs;
          print_newline ();
          List.iter
            (fun size_kb ->
              let window =
                if workers = 1 then 12_000_000L else 6_000_000L
              in
              let points =
                List.map
                  (fun c ->
                    fig5_point ~window ~flavour ~size_kb ~workers c)
                  configs
              in
              all := points @ !all;
              let native =
                (List.find (fun p -> p.ws_config = Ws_native) points)
                  .req_per_sec
              in
              Printf.printf "%-8s" (Printf.sprintf "%dKB" size_kb);
              List.iter
                (fun p ->
                  Printf.printf "%14.1f%% %6.0f"
                    (100.0 *. p.req_per_sec /. native)
                    p.req_per_sec)
                points;
              print_newline ())
            sizes)
        worker_counts)
    flavours;
  List.rev !all

(** {1 Ablation: selector-only SUD vs the classic deployment}

    lazypoline's slow path does *not* interpose from inside the
    SIGSYS handler; it redirects to the shared fast-path entry and
    leaves the selector ALLOW across the sigreturn (Section IV-A-c).
    The classic deployment (our SUD baseline) pays the full signal
    round trip on every interception, forever.  The gap between the
    two *is* the value of lazy rewriting. *)

let ablation ?(iters = 20_000) () =
  section "Ablation: handling a hot syscall site, classic SUD vs lazypoline";
  let classic = Micro.overhead ~iters Micro.Sud in
  let selector_only = Micro.overhead ~iters Micro.Lazypoline_noxstate in
  Printf.printf "classic SUD deployment (interpose in handler): %6.2fx\n" classic;
  Printf.printf "lazypoline (rewrite once, fast path after)   : %6.2fx\n"
    selector_only;
  Printf.printf "speedup from the hybrid design               : %6.2fx\n"
    (classic /. selector_only);
  (* Amortisation curve: without pre-rewriting, the first execution
     pays the slow path; per-iteration cost approaches steady state
     as the iteration count grows. *)
  Printf.printf "\nlazy-rewrite amortisation (no pre-rewriting, cold start):\n";
  let amortisation =
    List.map
      (fun iters ->
        let k = Kernel.create () in
        let blob =
          Sim_asm.Asm.assemble ~base:Loader.code_base
            (Micro.bench_items ~iters ~nr:500)
        in
        let img =
          Loader.image ~entry:(Sim_asm.Asm.symbol blob "start") ~text:blob ()
        in
        let t = Kernel.spawn k img in
        ignore (Lazypoline.install ~preserve_xstate:false k t (Hook.dummy ()));
        ignore (Kernel.run_until_exit k);
        let cpi = Int64.to_float t.Types.tcycles /. float_of_int iters in
        (iters, cpi))
      [ 1; 10; 100; 1000; 10000 ]
  in
  List.iter
    (fun (n, cpi) -> Printf.printf "  %6d iterations: %8.1f cycles/iter\n" n cpi)
    amortisation;
  (* The nop-sled entry position: [call rax] lands at VA = syscall
     number, so low-numbered syscalls slide through more of the sled.
     This is why the paper's microbenchmark uses number 500 ("enters
     the nop sled at its very tail") — and why the effect is mild on
     superscalar hardware, which retires nops ~4 per cycle. *)
  Printf.printf "\nsled-entry position (zpoline overhead by syscall number):\n";
  List.iter
    (fun nr ->
      let native = Micro.run ~iters ~nr Micro.Native in
      let z = Micro.run ~iters ~nr Micro.Zpoline in
      Printf.printf "  nr %3d (%s): %.2fx (+%.0f cycles of sled)\n" nr
        (Defs.syscall_name nr) (z /. native) (z -. native))
    [ 39; 200; 500 ];
  (classic, selector_only, amortisation)
