(** Syscall-flow-integrity validation: the chaos engine as attacker.

    The policy engine (lib/policy, enforced in the kernel's dispatch)
    claims three properties; this module turns each into a harness
    check the tests and the CI gate run directly:

    - {b invisibility} — a report-mode policy attached to a run leaves
      the audit log, the final state hash and the cycle clock
      bit-identical to a bare run ({!report_identical});
    - {b zero false positives} — a clean workload completes under an
      enforcing policy with no violations and no denials
      ({!enforce_clean});
    - {b detection} — a chaos register-clobber that steers the guest
      to an out-of-graph syscall is flagged by the engine at the exact
      application-syscall index, no later than the audit-divergence
      oracle sees the escape ({!detect_forced}, {!attack_report},
      {!chaos_attack_sweep}).

    Ground truth for detection is {!Sim_policy.Policy.out_of_graph_indices}
    replayed over the audited application syscall-number stream — an
    oracle that sees the whole run at once, independent of the online
    state machine it judges. *)

open Sim_kernel
module A = Sim_audit.Audit
module C = Sim_chaos.Chaos
module D = Divergence
module P = Sim_policy.Policy

(* ------------------------------------------------------------------ *)
(* Producing policies                                                  *)

(** Learn a flow graph by observing one run of [workload].  Learning
    under [Raw] records true application call sites (rip-2 on the
    direct dispatch path) — the same PCs {!Kernel} recovers under
    every interposer, so a raw-learned graph enforces cleanly under
    all six mechanisms. *)
let learn ?(mech = D.Raw) workload : P.graph =
  let p = P.learner ~name:(D.workload_name workload) () in
  let _a, _k, _t = D.run_audited ~policy:p mech workload in
  P.freeze p;
  P.reset_state p;
  p.P.graph

(** The graph for a chaos workload spec: static minicc extraction for
    programs (the compiler knows its own flow), raw-run learning for
    the asm workloads. *)
let policy_for ~(read : string -> string) (w : Chaos.wspec) : P.graph =
  match w with
  | Chaos.Wprog { path; jit } ->
      Minicc.Flowgraph.extract ~name:(Filename.basename path) ~jit (read path)
  | w -> learn (Chaos.resolve ~read w)

(** The hand-built ground-truth graph of {!Divergence.attack_items}:
    getpid at "site" and exit_group at "site_exit", start→getpid,
    getpid→getpid, getpid→exit_group, everything in compartment 0.
    Any clobber of a callee-saved register perturbs the recomputed
    syscall number and leaves this graph. *)
let attack_graph ~iters : P.graph =
  let g = P.create_graph ~name:(Printf.sprintf "attack(iters=%d)" iters) () in
  let blob =
    Sim_asm.Asm.assemble ~base:Loader.code_base (D.attack_items ~iters)
  in
  let site = Sim_asm.Asm.symbol blob "site" in
  let site_exit = Sim_asm.Asm.symbol blob "site_exit" in
  P.add_node g ~nr:Defs.sys_getpid ~sites:[ site ] ();
  P.add_node g ~nr:Defs.sys_exit_group ~sites:[ site_exit ] ();
  P.add_edge g ~from_nr:P.start_nr ~to_nr:Defs.sys_getpid;
  P.add_edge g ~from_nr:Defs.sys_getpid ~to_nr:Defs.sys_getpid;
  P.add_edge g ~from_nr:Defs.sys_getpid ~to_nr:Defs.sys_exit_group;
  P.add_compartment g ~pkey:0
    ~nrs:[ Defs.sys_getpid; Defs.sys_exit_group ];
  g

(* ------------------------------------------------------------------ *)
(* Invisibility and false positives                                    *)

(** A report-mode policy must be behaviorally invisible: audit log,
    final state hash and cycle clock bit-identical to a bare run.
    Returns [(ok, detail)]. *)
let report_identical graph mech workload : bool * string =
  let a1, k1, _ = D.run_audited mech workload in
  let p = P.create ~mode:P.Report graph in
  let a2, k2, _ = D.run_audited ~policy:p mech workload in
  let h1 = Kernel.audit_final_hash k1 a1
  and h2 = Kernel.audit_final_hash k2 a2 in
  let c1 = Types.global_time k1 and c2 = Types.global_time k2 in
  let log1 = D.log_string ~final_hash:h1 a1
  and log2 = D.log_string ~final_hash:h2 a2 in
  if log1 = log2 && c1 = c2 then
    ( true,
      Printf.sprintf "identical: %Ld cycles, %d check(s), %d violation(s)" c1
        p.P.checks (P.violation_count p) )
  else
    ( false,
      Printf.sprintf
        "REPORT-MODE MISMATCH under %s: cycles %Ld vs %Ld, hash %Lx vs %Lx, \
         logs %s"
        (D.mech_name mech) c1 c2 h1 h2
        (if log1 = log2 then "equal" else "differ") )

(** A clean workload under an enforcing (deny-mode) policy must run to
    completion with zero violations and zero denials.  [require_exit]
    is off for server workloads whose root task parks instead of
    exiting. *)
let enforce_clean ?(require_exit = true) graph mech workload : bool * string =
  let p = P.create ~mode:P.Deny graph in
  let a, _k, t = D.run_audited ~policy:p mech workload in
  let viol = P.violation_count p in
  let exited = t.Types.state = Types.Zombie in
  if viol = 0 && p.P.denied = 0 && ((not require_exit) || exited) then
    ( true,
      Printf.sprintf "clean: %d app syscall(s), %d check(s), 0 denial(s)"
        (A.app_count a) p.P.checks )
  else
    ( false,
      Printf.sprintf
        "FALSE POSITIVE under %s: %d violation(s), %d denied, task %s"
        (D.mech_name mech) viol p.P.denied
        (if exited then "exited" else "did not exit") )

(* ------------------------------------------------------------------ *)
(* Detection                                                           *)

(** The application syscall-number stream of an audited run, in
    dispatch order — the input to the ground-truth oracle. *)
let app_nrs (a : A.t) : int list =
  A.entries a
  |> List.filter_map (fun (e : A.entry) ->
         match (e.A.scope, e.A.ev) with
         | A.App, A.Syscall { nr; _ } -> Some nr
         | _ -> None)

let reg_name r =
  match r with
  | 3 -> "rbx"
  | 5 -> "rbp"
  | 12 -> "r12"
  | 13 -> "r13"
  | 14 -> "r14"
  | 15 -> "r15"
  | r -> Printf.sprintf "r#%d" r

let clobber_at ~index ~reg ~value : C.injection =
  { C.j_klass = C.Clobber; j_tid = 0; j_index = index; j_arg = reg;
    j_arg2 = value }

(** One forced-clobber attack, fully judged.  What "correct" means is
    mechanism-dependent, because the mechanisms *contain* an in-hook
    register clobber differently (all three outcomes are the paper's
    machinery working as designed):

    - ptrace writes the saved tracee context: the clobber persists,
      the rogue syscall reaches the kernel — the engine must flag it;
    - zpoline / lazypoline fast paths jump through [call *rax]: a
      rogue number inside the trampoline sled dispatches (engine must
      flag it), one outside it is a wild jump that faults before any
      syscall — fail-stop, nothing for the engine to see;
    - SUD / seccomp hooks run in a SIGSYS handler: sigreturn restores
      the saved frame, the clobber never escapes — the engine must
      stay silent (a violation here would be a false positive).

    So the judgment is: every ground-truth escape flagged at its exact
    index (no later than one past the audit-divergence oracle, which
    already sees the clobbered callee-saved snapshot of the syscall
    *during* whose interception the clobber landed); and if the run
    has no ground-truth escape (contained or fail-stop), zero
    violations. *)
type detection = {
  det_mech : D.mech;
  det_reg : int;  (** ISA index of the clobbered callee-saved register *)
  det_truth : int list;
      (** ground-truth out-of-graph app-syscall indices (1-based) *)
  det_flagged : int list;  (** engine violation indices *)
  det_missed : int list;  (** truth minus flagged — must be empty *)
  det_first : P.violation option;  (** first violation, for localization *)
  det_div_index : int option;
      (** app index where the audit-divergence oracle fires, if any *)
  det_ok : bool;
}

let describe_detection (d : detection) : string =
  Printf.sprintf "%-10s %-4s escapes=%-2d detected=%-2d missed=%d %s%s %s"
    (D.mech_name d.det_mech) (reg_name d.det_reg)
    (List.length d.det_truth)
    (List.length d.det_truth - List.length d.det_missed)
    (List.length d.det_missed)
    (match d.det_first with
    | Some v ->
        Printf.sprintf "first=[%s]"
          (String.trim (P.describe_violation ~syscall_name:Defs.syscall_name v))
    | None -> if d.det_truth = [] then "contained" else "first=none")
    (match d.det_div_index with
    | Some i -> Printf.sprintf " audit-oracle@%d" i
    | None -> "")
    (if d.det_ok then "ok" else "FAIL")

(** Force one clobber of callee-saved register [reg] at hook
    interception [at] in an [Attack] run and judge the engine (see
    {!detection}).  The default [value] keeps the rogue syscall
    number small, so zpoline-style [call *rax] dispatch still lands
    in the trampoline sled and the escape reaches the kernel instead
    of fail-stopping on a wild jump. *)
let detect_forced ?(iters = 6) ?(at = 2) ?(value = 3L) ?(mode = P.Report)
    mech reg : detection =
  let graph = attack_graph ~iters in
  let inj = clobber_at ~index:at ~reg ~value in
  let p = P.create ~mode graph in
  let ch = C.forced [ inj ] in
  let a, _k, _t = D.run_audited ~chaos:ch ~policy:p mech (D.Attack { iters }) in
  let truth = P.out_of_graph_indices graph (app_nrs a) in
  let flagged = List.map (fun v -> v.P.v_index) (P.violations p) in
  let missed = List.filter (fun i -> not (List.mem i flagged)) truth in
  let div = Chaos.forced_divergence ~injections:[ inj ] mech (D.Attack { iters }) in
  let div_index = Option.map (fun d -> d.A.d_index + 1) div in
  let first = match P.violations p with v :: _ -> Some v | [] -> None in
  let ok =
    if truth = [] then P.violation_count p = 0
    else
      missed = []
      &&
      match (first, div_index) with
      | Some v, Some di -> v.P.v_index <= di + 1
      | Some _, None -> true
      | None, _ -> false
  in
  {
    det_mech = mech;
    det_reg = reg;
    det_truth = truth;
    det_flagged = flagged;
    det_missed = missed;
    det_first = first;
    det_div_index = div_index;
    det_ok = ok;
  }

let interposed = [ D.Sud; D.Zpoline; D.Lazypoline_m; D.Seccomp; D.Ptrace ]

(** Every clobber class (each callee-saved register) under every
    interposed mechanism: one forced attack each.  All must judge ok,
    and every clobber class must produce at least one detected
    kernel-reaching escape across the mechanism set (containment on
    one mechanism is fine; a class no mechanism can exhibit is not).
    Returns [(all_ok, report_text)]. *)
let attack_report ?(iters = 6) ?(mode = P.Report) ?(mechs = interposed) () :
    bool * string =
  let b = Buffer.create 1024 in
  let ok = ref true in
  let detected_per_class = Hashtbl.create 8 in
  Buffer.add_string b
    "# syscall-flow-integrity forced-clobber detection (one run per \
     mechanism x register)\n";
  List.iter
    (fun mech ->
      Array.iter
        (fun reg ->
          let d = detect_forced ~iters ~mode mech reg in
          if not d.det_ok then ok := false;
          let seen =
            try Hashtbl.find detected_per_class reg with Not_found -> 0
          in
          Hashtbl.replace detected_per_class reg
            (seen + List.length d.det_truth - List.length d.det_missed);
          Buffer.add_string b (describe_detection d);
          Buffer.add_char b '\n')
        C.callee_saved)
    mechs;
  Array.iter
    (fun reg ->
      let n = try Hashtbl.find detected_per_class reg with Not_found -> 0 in
      if n = 0 then begin
        ok := false;
        Printf.bprintf b "NO DETECTED ESCAPE for clobber class %s\n"
          (reg_name reg)
      end)
    C.callee_saved;
  (!ok, Buffer.contents b)

(** Seeded fuzz sweep, clobber injector only, policy enforcing: over
    [seeds] seeds per mechanism, every ground-truth escape in every
    run must be flagged by the engine.  [(ok, report)] — ok also
    requires that the sweep produced at least one escape (an attack
    sweep that never attacked proves nothing). *)
let chaos_attack_sweep ?(iters = 12) ?(seeds = 25) ?(rate = 12288)
    ?(mode = P.Deny) ?(mechs = interposed) () : bool * string =
  let graph = attack_graph ~iters in
  let rates = { C.zero_rates with C.clobber_rate = rate } in
  let runs = ref 0
  and injected_runs = ref 0
  and escapes = ref 0
  and detected = ref 0
  and missed = ref [] in
  List.iter
    (fun mech ->
      for seed = 1 to seeds do
        let seed64 = Int64.of_int seed in
        let ch = C.fuzz ~rates ~seed:seed64 () in
        let p = P.create ~mode graph in
        let a, _k, _t =
          D.run_audited ~chaos:ch ~policy:p mech (D.Attack { iters })
        in
        incr runs;
        if C.count ch > 0 then incr injected_runs;
        let truth = P.out_of_graph_indices graph (app_nrs a) in
        let flagged = List.map (fun v -> v.P.v_index) (P.violations p) in
        escapes := !escapes + List.length truth;
        List.iter
          (fun i ->
            if List.mem i flagged then incr detected
            else missed := (mech, seed64, i) :: !missed)
          truth
      done)
    mechs;
  let b = Buffer.create 512 in
  Printf.bprintf b
    "# syscall-flow-integrity chaos sweep: %d mechanism(s) x %d seed(s), \
     attack(iters=%d), mode=%s, clobber_rate=%d/65536\n"
    (List.length mechs) seeds iters (P.mode_name mode) rate;
  Printf.bprintf b
    "runs: %d  runs-with-injections: %d  escapes: %d  detected: %d  \
     undetected: %d\n"
    !runs !injected_runs !escapes !detected
    (List.length !missed);
  List.iter
    (fun (mech, seed, i) ->
      Printf.bprintf b "UNDETECTED: %s seed=%Ld app syscall #%d\n"
        (D.mech_name mech) seed i)
    (List.rev !missed);
  let ok = !missed = [] && !escapes > 0 in
  Printf.bprintf b "%s\n" (if ok then "PASS" else "FAIL");
  (ok, Buffer.contents b)
