(** Syscall-flow-integrity policies.

    A policy is a coarse-grained syscall-flow graph in the SFIP mold
    plus a per-compartment syscall allowlist in the "syscall as an MPK
    privilege" mold:

    - {b nodes} are syscall numbers, each carrying the set of call-site
      PCs the program may issue it from (empty = any site);
    - {b edges} are the possible successor relations between syscall
      numbers, with a distinguished START pseudo-node ([start_nr]) for
      the first syscall of a task and a wildcard node ([any_nr]) for
      statically unresolvable numbers;
    - {b compartments} map a memory protection key to the set of
      syscall numbers code tagged with that pkey may issue at all.

    Graphs come from three producers: static extraction out of minicc
    codegen ({!Minicc.Flowgraph}), a learning run (attach a policy in
    {!learning} mode, run the workload, freeze), or the builder API
    below.  They serialize as versioned [% simtrace-policy/1]
    artifacts.

    The enforcement engine is deliberately kernel-agnostic: the kernel
    hands {!check} the task id, syscall number, recovered call-site PC
    and the pkey active at that PC, and gets back an optional
    violation.  What happens next — count it (report mode), fail the
    syscall with [-EPERM], or kill the task — is the caller's job,
    driven by {!mode}.  In report mode the engine is observation-only:
    it never charges cycles and never mutates anything outside its own
    counters, so a report-mode run is bit-identical to a bare one. *)

module Artifact = Sim_artifact.Artifact
module IntSet = Set.Make (Int)

(** Pseudo syscall number for "no syscall yet" (task start). *)
let start_nr = -1

(** Pseudo syscall number for "statically unknown": an [any_nr] node
    matches every number, an edge touching it matches on that side. *)
let any_nr = -2

let nr_name ?(syscall_name = fun nr -> Printf.sprintf "sys_%d" nr) nr =
  if nr = start_nr then "START"
  else if nr = any_nr then "ANY"
  else syscall_name nr

(* ------------------------------------------------------------------ *)
(* Graphs                                                              *)

type graph = {
  g_name : string;  (** provenance label, e.g. the source file *)
  g_jit : bool;
  mutable nodes : (int, IntSet.t) Hashtbl.t;
      (** nr -> allowed site PCs; an empty set means any site *)
  edges : (int * int, unit) Hashtbl.t;
  compartments : (int, IntSet.t) Hashtbl.t;  (** pkey -> allowed nrs *)
}

let create_graph ?(name = "?") ?(jit = false) () =
  {
    g_name = name;
    g_jit = jit;
    nodes = Hashtbl.create 16;
    edges = Hashtbl.create 32;
    compartments = Hashtbl.create 4;
  }

(** {2 Builder} *)

let add_node g ~nr ?(sites = []) () =
  let cur =
    match Hashtbl.find_opt g.nodes nr with
    | Some s -> s
    | None -> IntSet.empty
  in
  Hashtbl.replace g.nodes nr (List.fold_left (fun s pc -> IntSet.add pc s) cur sites)

let add_edge g ~from_nr ~to_nr =
  if not (Hashtbl.mem g.edges (from_nr, to_nr)) then
    Hashtbl.replace g.edges (from_nr, to_nr) ()

let add_compartment g ~pkey ~nrs =
  let cur =
    match Hashtbl.find_opt g.compartments pkey with
    | Some s -> s
    | None -> IntSet.empty
  in
  Hashtbl.replace g.compartments pkey
    (List.fold_left (fun s nr -> IntSet.add nr s) cur nrs)

let node_count g = Hashtbl.length g.nodes
let edge_count g = Hashtbl.length g.edges
let compartment_count g = Hashtbl.length g.compartments

let has_node g nr = nr = any_nr || Hashtbl.mem g.nodes nr || Hashtbl.mem g.nodes any_nr

let has_edge g ~from_nr ~to_nr =
  Hashtbl.mem g.edges (from_nr, to_nr)
  || Hashtbl.mem g.edges (from_nr, any_nr)
  || Hashtbl.mem g.edges (any_nr, to_nr)
  || Hashtbl.mem g.edges (any_nr, any_nr)

(** Is [pc] an allowed site for [nr]?  True when the node's site set
    is empty (site-agnostic node) or when an [any_nr] node exists. *)
let site_ok g ~nr ~pc =
  match Hashtbl.find_opt g.nodes nr with
  | Some sites -> IntSet.is_empty sites || IntSet.mem pc sites
  | None -> Hashtbl.mem g.nodes any_nr

(** Compartment verdict for issuing [nr] from a page tagged [pkey].
    An empty compartment table disables the check (a flow-graph-only
    policy); a pkey absent from a non-empty table allows nothing. *)
let compartment_ok g ~pkey ~nr =
  Hashtbl.length g.compartments = 0
  ||
  match Hashtbl.find_opt g.compartments pkey with
  | Some nrs -> IntSet.mem nr nrs || IntSet.mem any_nr nrs
  | None -> false

(* ------------------------------------------------------------------ *)
(* Serialization: % simtrace-policy/1                                  *)

let artifact_kind = "policy"
let artifact_version = 1

(** Serialize [g].  Row shapes:

    {v
    N <nr> [<site-pc-hex> ...]      node + its sites
    E <from-nr> <to-nr>             edge (START = -1, ANY = -2)
    C <pkey> <nr> [<nr> ...]        compartment allowlist
    v} *)
let graph_to_string (g : graph) : string =
  let buf = Buffer.create 1024 in
  Artifact.add_magic buf ~kind:artifact_kind ~version:artifact_version;
  Artifact.add_header buf "file" g.g_name;
  Artifact.add_header buf "jit" (string_of_bool g.g_jit);
  Hashtbl.fold (fun nr sites acc -> (nr, sites) :: acc) g.nodes []
  |> List.sort compare
  |> List.iter (fun (nr, sites) ->
         Printf.bprintf buf "N %d" nr;
         IntSet.iter (fun pc -> Printf.bprintf buf " 0x%x" pc) sites;
         Buffer.add_char buf '\n');
  Hashtbl.fold (fun e () acc -> e :: acc) g.edges []
  |> List.sort compare
  |> List.iter (fun (a, b) -> Printf.bprintf buf "E %d %d\n" a b);
  Hashtbl.fold (fun pk nrs acc -> (pk, nrs) :: acc) g.compartments []
  |> List.sort compare
  |> List.iter (fun (pk, nrs) ->
         Printf.bprintf buf "C %d" pk;
         IntSet.iter (fun nr -> Printf.bprintf buf " %d" nr) nrs;
         Buffer.add_char buf '\n');
  Buffer.contents buf

let graph_of_string ?file (s : string) : (graph, string) result =
  match
    Artifact.parse_magic ?file ~kind:artifact_kind
      ~accept:[ artifact_version ] s
  with
  | Error e -> Error e
  | Ok (_v, rest) -> (
      let name =
        match Artifact.header_value ~key:"file" rest with
        | Some f -> f
        | None -> "?"
      in
      let jit = Artifact.header_value ~key:"jit" rest = Some "true" in
      let g = create_graph ~name ~jit () in
      try
        List.iter
          (fun line ->
            match String.split_on_char ' ' (String.trim line) with
            | "N" :: nr :: sites ->
                add_node g ~nr:(int_of_string nr)
                  ~sites:(List.map int_of_string sites)
                  ()
            | [ "E"; a; b ] ->
                add_edge g ~from_nr:(int_of_string a)
                  ~to_nr:(int_of_string b)
            | "C" :: pk :: nrs ->
                add_compartment g ~pkey:(int_of_string pk)
                  ~nrs:(List.map int_of_string nrs)
            | _ -> failwith ("bad policy row: " ^ line))
          (Artifact.body rest);
        Ok g
      with Failure m -> Error (Artifact.describe_file file ^ m))

(* ------------------------------------------------------------------ *)
(* The enforcement engine                                              *)

(** What to do when a check fails.  [Report] only counts (and is
    observation-only); [Deny] fails the syscall with [-EPERM] without
    dispatching it; [Kill] terminates the offending task group. *)
type mode = Report | Deny | Kill

let mode_name = function
  | Report -> "report"
  | Deny -> "enforce"
  | Kill -> "kill"

let mode_of_string = function
  | "report" -> Some Report
  | "enforce" | "deny" | "eperm" -> Some Deny
  | "kill" -> Some Kill
  | _ -> None

type vkind =
  | Vnode  (** syscall number has no node at all *)
  | Vedge  (** number exists but not as a successor of the last one *)
  | Vsite  (** right number, wrong call-site PC *)
  | Vcompartment  (** site's pkey may not issue this number *)

let vkind_name = function
  | Vnode -> "node"
  | Vedge -> "edge"
  | Vsite -> "site"
  | Vcompartment -> "compartment"

type violation = {
  v_index : int;
      (** 1-based app-stream syscall index the violation localizes to *)
  v_tid : int;
  v_nr : int;
  v_prev : int;  (** the state machine's position: last in-graph nr *)
  v_site : int;  (** recovered call-site PC *)
  v_pkey : int;
  v_kind : vkind;
}

let describe_violation ?syscall_name v =
  Printf.sprintf
    "policy %s violation: tid %d app syscall #%d: %s -> %s (site 0x%x, pkey \
     %d)"
    (vkind_name v.v_kind) v.v_tid v.v_index
    (nr_name ?syscall_name v.v_prev)
    (nr_name ?syscall_name v.v_nr)
    v.v_site v.v_pkey

type t = {
  mutable graph : graph;
  mutable mode : mode;
  mutable learning : bool;
      (** record instead of check: every observed transition, site and
          (pkey, nr) pair is added to the graph *)
  last : (int, int) Hashtbl.t;  (** tid -> last in-graph nr *)
  mutable checks : int;
  mutable denied : int;  (** syscalls failed with -EPERM *)
  mutable killed : int;  (** tasks killed *)
  mutable v_counts : int array;  (** per-{!vkind} violation counts *)
  mutable violations : violation list;  (** newest first, bounded *)
  max_violations : int;
  denial_tag : (int, unit) Hashtbl.t;
      (** tids whose most recent syscall result was a policy -EPERM;
          consumed by the strace decoder to tag the rendered errno *)
}

let create ?(mode = Report) ?(max_violations = 256) (graph : graph) : t =
  {
    graph;
    mode;
    learning = false;
    last = Hashtbl.create 8;
    checks = 0;
    denied = 0;
    killed = 0;
    v_counts = Array.make 4 0;
    violations = [];
    max_violations = max 1 max_violations;
    denial_tag = Hashtbl.create 4;
  }

(** A fresh policy in learning mode: run the workload, then
    {!freeze}. *)
let learner ?name ?jit () : t =
  let p = create (create_graph ?name ?jit ()) in
  p.learning <- true;
  p

let freeze (p : t) =
  p.learning <- false;
  Hashtbl.reset p.last

let reset_state (p : t) =
  Hashtbl.reset p.last;
  Hashtbl.reset p.denial_tag;
  p.checks <- 0;
  p.denied <- 0;
  p.killed <- 0;
  p.v_counts <- Array.make 4 0;
  p.violations <- []

let vkind_index = function
  | Vnode -> 0
  | Vedge -> 1
  | Vsite -> 2
  | Vcompartment -> 3

let violation_count p = Array.fold_left ( + ) 0 p.v_counts
let violations p = List.rev p.violations

let kind_count p kind = p.v_counts.(vkind_index kind)

let last_nr p ~tid =
  match Hashtbl.find_opt p.last tid with Some nr -> nr | None -> start_nr

let record_violation p v =
  p.v_counts.(vkind_index v.v_kind) <- p.v_counts.(vkind_index v.v_kind) + 1;
  if violation_count p <= p.max_violations then
    p.violations <- v :: p.violations

(** Check (or, in learning mode, record) one application syscall
    dispatch: task [tid] issues [nr] from call-site [site] whose page
    carries protection key [pkey]; [index] is the 1-based app-stream
    position the dispatch will be audited at.  Returns the first
    violated property, most fundamental first: node, then edge, then
    site, then compartment.

    State-machine advance mirrors what the application observes: in
    report mode (and on a clean check) the rogue syscall executed, so
    the position moves to [nr]; under [Deny]/[Kill] the caller
    suppresses the syscall, so the position stays — the next in-graph
    syscall is judged as the successor of the last one that really
    ran. *)
let check (p : t) ~tid ~nr ~site ~pkey ~index : violation option =
  p.checks <- p.checks + 1;
  let prev = last_nr p ~tid in
  if p.learning then begin
    add_node p.graph ~nr ~sites:[ site ] ();
    add_edge p.graph ~from_nr:prev ~to_nr:nr;
    add_compartment p.graph ~pkey ~nrs:[ nr ];
    Hashtbl.replace p.last tid nr;
    None
  end
  else begin
    let g = p.graph in
    let kind =
      if not (has_node g nr) then Some Vnode
      else if not (has_edge g ~from_nr:prev ~to_nr:nr) then Some Vedge
      else if not (site_ok g ~nr ~pc:site) then Some Vsite
      else if not (compartment_ok g ~pkey ~nr) then Some Vcompartment
      else None
    in
    match kind with
    | None ->
        Hashtbl.replace p.last tid nr;
        None
    | Some v_kind ->
        let v =
          { v_index = index; v_tid = tid; v_nr = nr; v_prev = prev;
            v_site = site; v_pkey = pkey; v_kind }
        in
        record_violation p v;
        if p.mode = Report then Hashtbl.replace p.last tid nr;
        Some v
  end

(** Bookkeeping for the caller's verdict application. *)
let note_denied p ~tid =
  p.denied <- p.denied + 1;
  Hashtbl.replace p.denial_tag tid ()

let note_killed p = p.killed <- p.killed + 1

let clear_denial_tag p ~tid = Hashtbl.remove p.denial_tag tid

(** Was [tid]'s most recent syscall result a policy denial?  Reading
    does not consume the tag; the kernel clears it at the next
    dispatch. *)
let denial_tagged p ~tid = Hashtbl.mem p.denial_tag tid

(** Replay a recorded (prev, nr) transition sequence against the
    graph without touching engine state — the ground-truth oracle the
    chaos harness walks over audited app streams.  Returns the 1-based
    indices of out-of-graph transitions. *)
let out_of_graph_indices (g : graph) (nrs : int list) : int list =
  let rec go i prev acc = function
    | [] -> List.rev acc
    | nr :: rest ->
        let ok = has_node g nr && has_edge g ~from_nr:prev ~to_nr:nr in
        let prev' = if ok then nr else prev in
        go (i + 1) prev' (if ok then acc else i :: acc) rest
  in
  go 1 start_nr [] nrs

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

let summary ?syscall_name (p : t) : string =
  let b = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let g = p.graph in
  out "policy %s (%s%s): %d node(s), %d edge(s), %d compartment(s)\n"
    g.g_name (mode_name p.mode)
    (if p.learning then ", learning" else "")
    (node_count g) (edge_count g) (compartment_count g);
  out
    "  %d check(s), %d violation(s) (node=%d edge=%d site=%d compartment=%d), \
     %d denied, %d killed\n"
    p.checks (violation_count p) p.v_counts.(0) p.v_counts.(1) p.v_counts.(2)
    p.v_counts.(3) p.denied p.killed;
  List.iter
    (fun v -> out "  %s\n" (describe_violation ?syscall_name v))
    (violations p);
  Buffer.contents b

(** Render the graph itself, nodes then edges, for the CLI and
    /proc. *)
let graph_summary ?syscall_name (g : graph) : string =
  let b = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out "flow graph %s (jit=%b): %d node(s), %d edge(s)\n" g.g_name g.g_jit
    (node_count g) (edge_count g);
  Hashtbl.fold (fun nr sites acc -> (nr, sites) :: acc) g.nodes []
  |> List.sort compare
  |> List.iter (fun (nr, sites) ->
         out "  node %-16s" (nr_name ?syscall_name nr);
         if IntSet.is_empty sites then out " (any site)"
         else IntSet.iter (fun pc -> out " 0x%x" pc) sites;
         out "\n");
  Hashtbl.fold (fun e () acc -> e :: acc) g.edges []
  |> List.sort compare
  |> List.iter (fun (a, b') ->
         out "  edge %s -> %s\n" (nr_name ?syscall_name a)
           (nr_name ?syscall_name b'));
  Hashtbl.fold (fun pk nrs acc -> (pk, nrs) :: acc) g.compartments []
  |> List.sort compare
  |> List.iter (fun (pk, nrs) ->
         out "  compartment pkey=%d:" pk;
         IntSet.iter (fun nr -> out " %s" (nr_name ?syscall_name nr)) nrs;
         out "\n");
  Buffer.contents b
