(** Deterministic chaos engine: seeded adversarial execution.

    Three injectors, all driven by one splitmix64-style PRNG keyed on
    [(seed, injector class, task, event index)] so that a run with a
    given seed replays bit-identically, and so that the *same logical
    injections* land in runs of the same workload under *different
    interposition mechanisms*:

    - {b errno injection} — eligible syscalls transiently fail with
      EINTR / EAGAIN / ENOMEM instead of dispatching;
    - {b async-signal fuzzing} — SIGALRM / SIGUSR1 posted either right
      after a syscall completes (delivered at the very next
      instruction boundary, which under an interposer is typically
      deep inside its stub or signal trampoline), or at the moment a
      syscall blocks (exercising the SA_RESTART vs -EINTR return
      paths);
    - {b preemption fuzzing} — forced end-of-timeslice at arbitrary
      instruction boundaries, with a weighted bias toward interposer
      hot windows (trampoline / stub address ranges and in-handler
      execution).

    A fourth, optional injector clobbers a callee-saved register at a
    hook interception (the PR-4 seeded perturbation, now chaos-driven)
    — a self-test that the divergence gate downstream actually fires.

    Mechanism neutrality is what makes the audit oracle work: errno
    and signal decisions are keyed on per-task counters of
    *application* syscalls reaching the dispatcher, which are
    identical across raw, SUD, zpoline, lazypoline, seccomp-user and
    ptrace runs (interposer-private syscalls go through
    [Kernel.kernel_syscall] and never touch the counters; the
    sigaction family is excluded because lazypoline emulates it
    without a dispatch).  Preemption is keyed on per-task instruction
    counts and is deliberately mechanism-specific: adversarial
    schedules are allowed to differ, the application-visible stream is
    not.

    This module sits below the kernel (which holds an optional handle
    to it), so it cannot depend on [Sim_kernel.Defs]; the handful of
    Linux ABI constants it needs (syscall numbers, signal numbers,
    errnos) are x86-64 ABI facts restated here. *)

(* Linux x86-64 ABI constants (mirrors Sim_kernel.Defs; this module
   sits below the kernel and cannot depend on it). *)
let nr_read = 0
let nr_write = 1
let nr_mmap = 9
let nr_rt_sigaction = 13
let nr_rt_sigprocmask = 14
let nr_rt_sigreturn = 15
let nr_nanosleep = 35
let nr_accept = 43
let nr_futex = 202
let nr_epoll_wait = 232
let eintr = 4
let eagain = 11
let enomem = 12
let sigusr1 = 10
let sigalrm = 14

(* Callee-saved GPR indices (rbx, rbp, r12-r15). *)
let callee_saved = [| 3; 5; 12; 13; 14; 15 |]

(** {1 The PRNG} *)

(** splitmix64 finalizer: a bijective avalanche over the keyed sum,
    so nearby keys produce independent decisions. *)
let sm64 (z : int64) : int64 =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Hash of [(seed, class, tid, index)] — every decision is a pure
    function of these four values and nothing else. *)
let key_hash (seed : int64) ~(cls : char) ~(tid : int) ~(index : int) : int64 =
  sm64
    (Int64.add seed
       (Int64.add
          (Int64.mul (Int64.of_int (Char.code cls)) 0x9e3779b97f4a7c15L)
          (Int64.add
             (Int64.mul (Int64.of_int tid) 0x2545f4914f6cdd1dL)
             (Int64.of_int index))))

(* A 16-bit slice of the hash, compared against per-65536 rates. *)
let roll (h : int64) : int = Int64.to_int (Int64.logand h 0xFFFFL)

(** {1 Injections} *)

type klass =
  | Errno  (** ['e'] syscall fails with [arg] instead of dispatching *)
  | Sig  (** ['s'] signal [arg] posted after a syscall completes *)
  | Blocksig  (** ['b'] signal [arg] posted as a syscall blocks *)
  | Preempt  (** ['p'] timeslice ends at this instruction boundary *)
  | Clobber  (** ['c'] callee-saved reg [arg] := [arg2] at a hook *)

let klass_char = function
  | Errno -> 'e'
  | Sig -> 's'
  | Blocksig -> 'b'
  | Preempt -> 'p'
  | Clobber -> 'c'

let klass_of_char = function
  | 'e' -> Some Errno
  | 's' -> Some Sig
  | 'b' -> Some Blocksig
  | 'p' -> Some Preempt
  | 'c' -> Some Clobber
  | _ -> None

type injection = {
  j_klass : klass;
  j_tid : int;  (** task injected into ([0] for Clobber: hook-global) *)
  j_index : int;  (** class-specific per-task event index *)
  j_arg : int;  (** errno / signal number / register index *)
  j_arg2 : int64;  (** clobber value; [0L] otherwise *)
}

let injection_key (c : char) ~tid ~index = Printf.sprintf "%c %d %d" c tid index

let key_of (j : injection) =
  injection_key (klass_char j.j_klass) ~tid:j.j_tid ~index:j.j_index

(** One serialized injection: [I <class> <tid> <index> <arg> <arg2hex>]
    — the body lines of a [% simtrace-chaos/1] file. *)
let injection_to_string (j : injection) =
  Printf.sprintf "I %c %d %d %d %Lx" (klass_char j.j_klass) j.j_tid j.j_index
    j.j_arg j.j_arg2

let injection_of_string (s : string) : injection option =
  match String.split_on_char ' ' (String.trim s) with
  | [ "I"; c; tid; index; arg; arg2 ] when String.length c = 1 -> (
      match klass_of_char c.[0] with
      | Some k -> (
          try
            Some
              {
                j_klass = k;
                j_tid = int_of_string tid;
                j_index = int_of_string index;
                j_arg = int_of_string arg;
                j_arg2 = Int64.of_string ("0x" ^ arg2);
              }
          with _ -> None)
      | None -> None)
  | _ -> None

(** {1 Configuration and state} *)

type rates = {
  errno_rate : int;  (** per 65536, per eligible syscall *)
  sig_rate : int;  (** per 65536, per counted syscall completion *)
  block_sig_rate : int;  (** per 65536, per blocking syscall *)
  preempt_rate : int;  (** per 65536, per retired instruction *)
  hot_boost : int;  (** preempt-rate multiplier inside hot windows *)
  clobber_rate : int;  (** per 65536, per hook interception; 0 = off *)
}

let default_rates =
  {
    errno_rate = 512;
    sig_rate = 384;
    block_sig_rate = 8192;
    preempt_rate = 24;
    hot_boost = 16;
    clobber_rate = 0;
  }

let zero_rates =
  {
    errno_rate = 0;
    sig_rate = 0;
    block_sig_rate = 0;
    preempt_rate = 0;
    hot_boost = 1;
    clobber_rate = 0;
  }

type mode =
  | Fuzz of int64  (** decisions come from the seeded PRNG *)
  | Forced of (string, injection) Hashtbl.t
      (** decisions come from an explicit injection set, looked up by
          [(class, tid, index)] — replay and minimization mode *)

type t = {
  mode : mode;
  rates : rates;
  mutable hot_ranges : (int * int) list;
      (** [lo, hi) guest VA ranges treated as interposer hot windows *)
  counters : (char * int, int ref) Hashtbl.t;  (** (class, tid) -> next *)
  fired : (string, unit) Hashtbl.t;
      (** once-guards: a blocking syscall retried after an SA_RESTART
          round must not be re-injected at the same index *)
  mutable clobber_count : int;
  mutable log_rev : injection list;
  mutable injected : int;
}

let create ?(rates = default_rates) (mode : mode) : t =
  {
    mode;
    rates;
    hot_ranges = [];
    counters = Hashtbl.create 16;
    fired = Hashtbl.create 16;
    clobber_count = 0;
    log_rev = [];
    injected = 0;
  }

let fuzz ?rates ~seed () = create ?rates (Fuzz seed)

let forced (injections : injection list) : t =
  let tbl = Hashtbl.create (List.length injections) in
  List.iter (fun j -> Hashtbl.replace tbl (key_of j) j) injections;
  create ~rates:zero_rates (Forced tbl)

let add_hot_range (ch : t) ~lo ~hi =
  ch.hot_ranges <- (lo, hi) :: ch.hot_ranges

(** The injections performed, in execution order. *)
let log (ch : t) : injection list = List.rev ch.log_rev
let count (ch : t) : int = ch.injected

let record (ch : t) (j : injection) =
  ch.log_rev <- j :: ch.log_rev;
  ch.injected <- ch.injected + 1

let bump (ch : t) (cls : char) (tid : int) : int =
  match Hashtbl.find_opt ch.counters (cls, tid) with
  | Some r ->
      let v = !r in
      incr r;
      v
  | None ->
      Hashtbl.replace ch.counters (cls, tid) (ref 1);
      0

let peek (ch : t) (cls : char) (tid : int) : int =
  match Hashtbl.find_opt ch.counters (cls, tid) with Some r -> !r | None -> 0

(** {1 Eligibility} *)

(* Syscalls whose transient failure an application must tolerate.
   The per-nr errno menu keeps the injected failure plausible:
   blocking waits see EINTR, I/O additionally EAGAIN, mmap ENOMEM. *)
let errno_menu nr =
  if nr = nr_read || nr = nr_write || nr = nr_accept then
    [| eintr; eagain |]
  else if nr = nr_nanosleep || nr = nr_epoll_wait then [| eintr |]
  else if nr = nr_futex then [| eintr; eagain |]
  else if nr = nr_mmap then [| enomem |]
  else [||]

(* Counted for signal-injection keying: every application syscall
   except the sigaction family, which lazypoline emulates without a
   kernel dispatch (counting it would shift every later index under
   raw but not under lazypoline, breaking cross-mechanism keying). *)
let counted nr =
  nr >= 0 && nr <> nr_rt_sigaction && nr <> nr_rt_sigprocmask
  && nr <> nr_rt_sigreturn

let pick arr (h : int64) =
  arr.(Int64.to_int (Int64.logand (Int64.shift_right_logical h 16) 0x7FFFL)
       mod Array.length arr)

(** {1 Decision points}

    Each is called from exactly one kernel site; all counter state
    advances deterministically whether or not an injection fires, so a
    zero-rate engine is behaviorally invisible. *)

(** Pre-dispatch: should this (first-issue, non-retry) syscall fail
    with an injected errno instead of executing?  Returns the negated
    result's errno. *)
let errno_injection (ch : t) ~tid ~nr : int option =
  let menu = errno_menu nr in
  if Array.length menu = 0 then None
  else
    let index = bump ch 'e' tid in
    match ch.mode with
    | Fuzz seed ->
        let h = key_hash seed ~cls:'e' ~tid ~index in
        if roll h < ch.rates.errno_rate then begin
          let e = pick menu h in
          record ch
            { j_klass = Errno; j_tid = tid; j_index = index; j_arg = e;
              j_arg2 = 0L };
          Some e
        end
        else None
    | Forced tbl -> (
        match Hashtbl.find_opt tbl (injection_key 'e' ~tid ~index) with
        | Some j ->
            record ch j;
            Some j.j_arg
        | None -> None)

let pick_signal (h : int64) =
  if Int64.logand (Int64.shift_right_logical h 32) 1L = 0L then sigalrm
  else sigusr1

(** Post-dispatch: a counted syscall just completed for [tid]; should
    an async signal be pending at the next instruction boundary?
    [handler_ok s] must say whether the task has a user handler for
    [s] — injection into handler-less tasks would just kill them,
    which is legal but uselessly cuts the run short. *)
let post_syscall_injection (ch : t) ~tid ~nr ~(handler_ok : int -> bool) :
    int option =
  if not (counted nr) then None
  else
    let index = bump ch 's' tid in
    match ch.mode with
    | Fuzz seed ->
        let h = key_hash seed ~cls:'s' ~tid ~index in
        if roll h < ch.rates.sig_rate then begin
          let s = pick_signal h in
          if handler_ok s then begin
            record ch
              { j_klass = Sig; j_tid = tid; j_index = index; j_arg = s;
                j_arg2 = 0L };
            Some s
          end
          else None
        end
        else None
    | Forced tbl -> (
        match Hashtbl.find_opt tbl (injection_key 's' ~tid ~index) with
        | Some j when handler_ok j.j_arg ->
            record ch j;
            Some j.j_arg
        | _ -> None)

(** A syscall of [tid] is blocking right now; should a signal
    interrupt the wait (driving the SA_RESTART / -EINTR paths)?
    Keyed on the index of the *enclosing* counted syscall so the
    decision lands at the same application event under every
    mechanism; a once-guard keeps SA_RESTART retries of the same wait
    from being re-injected forever. *)
let block_signal_injection (ch : t) ~tid ~(handler_ok : int -> bool) :
    int option =
  let index = peek ch 's' tid in
  let k = injection_key 'b' ~tid ~index in
  if Hashtbl.mem ch.fired k then None
  else
    match ch.mode with
    | Fuzz seed ->
        let h = key_hash seed ~cls:'b' ~tid ~index in
        if roll h < ch.rates.block_sig_rate then begin
          let s = pick_signal h in
          if handler_ok s then begin
            Hashtbl.replace ch.fired k ();
            record ch
              { j_klass = Blocksig; j_tid = tid; j_index = index; j_arg = s;
                j_arg2 = 0L };
            Some s
          end
          else None
        end
        else None
    | Forced tbl -> (
        match Hashtbl.find_opt tbl k with
        | Some j when handler_ok j.j_arg ->
            Hashtbl.replace ch.fired k ();
            record ch j;
            Some j.j_arg
        | _ -> None)

(** Per retired instruction: end the task's timeslice here?  [rip] is
    the next instruction's address; the rate is boosted inside hot
    windows (registered interposer code ranges, or any live signal
    frame).  Deliberately mechanism-specific — adversarial schedules
    may differ across mechanisms, application-visible state may not. *)
let preempt_injection (ch : t) ~tid ~rip ~sig_depth : bool =
  let index = bump ch 'p' tid in
  match ch.mode with
  | Fuzz seed ->
      let hot =
        sig_depth > 0
        || List.exists (fun (lo, hi) -> rip >= lo && rip < hi) ch.hot_ranges
      in
      let rate =
        if hot then ch.rates.preempt_rate * ch.rates.hot_boost
        else ch.rates.preempt_rate
      in
      let h = key_hash seed ~cls:'p' ~tid ~index in
      if roll h < rate then begin
        record ch
          { j_klass = Preempt; j_tid = tid; j_index = index;
            j_arg = (if hot then 1 else 0); j_arg2 = 0L };
        true
      end
      else false
  | Forced tbl -> (
      match Hashtbl.find_opt tbl (injection_key 'p' ~tid ~index) with
      | Some j ->
          record ch j;
          true
      | None -> false)

(** Per hook interception (driver-side, not a kernel site): clobber a
    callee-saved register?  This is the PR-4 seeded register
    perturbation as a chaos class — a deliberate interposer bug the
    divergence gate must catch and the minimizer must isolate. *)
let clobber_injection (ch : t) : (int * int64) option =
  let index = ch.clobber_count in
  ch.clobber_count <- index + 1;
  match ch.mode with
  | Fuzz seed ->
      if ch.rates.clobber_rate = 0 then None
      else
        let h = key_hash seed ~cls:'c' ~tid:0 ~index in
        if roll h < ch.rates.clobber_rate then begin
          let reg = pick callee_saved h in
          let v = sm64 (Int64.add h 1L) in
          record ch
            { j_klass = Clobber; j_tid = 0; j_index = index; j_arg = reg;
              j_arg2 = v };
          Some (reg, v)
        end
        else None
  | Forced tbl -> (
      match Hashtbl.find_opt tbl (injection_key 'c' ~tid:0 ~index) with
      | Some j ->
          record ch j;
          Some (j.j_arg, j.j_arg2)
      | None -> None)

(** {1 Reporting} *)

let describe (j : injection) =
  match j.j_klass with
  | Errno ->
      Printf.sprintf "errno: tid %d eligible-syscall #%d fails with errno %d"
        j.j_tid j.j_index j.j_arg
  | Sig ->
      Printf.sprintf "signal: tid %d gets signal %d after app syscall #%d"
        j.j_tid j.j_arg j.j_index
  | Blocksig ->
      Printf.sprintf
        "block-signal: tid %d gets signal %d while blocked at app syscall #%d"
        j.j_tid j.j_arg j.j_index
  | Preempt ->
      Printf.sprintf "preempt: tid %d preempted at instruction #%d%s" j.j_tid
        j.j_index
        (if j.j_arg = 1 then " (hot window)" else "")
  | Clobber ->
      Printf.sprintf
        "clobber: hook interception #%d clobbers callee-saved reg %d with \
         0x%Lx"
        j.j_index j.j_arg j.j_arg2
