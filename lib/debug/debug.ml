(** Time-travel debugging over [% simtrace-audit/1] logs.

    The audit recorder (PR 4) captures, per run, the ordered stream of
    observable events plus periodic state-hash checkpoints.  That is
    the substrate rr builds reverse execution on: because the machine
    is deterministic, "going back" is replaying forward to an earlier
    point.  This module turns a recorded log into an interactive
    debugging session:

    - [seek n] — move the cursor to just after application syscall
      [n] (0 = initial state).  Backward motion re-executes the
      program from scratch with an [Audit.stop_after] barrier (the
      audit checkpoints are {e integrity hashes}, not restorable
      snapshots — the simulated kernels hold closures and cannot be
      cloned, so the "nearest checkpoint" of rr degenerates to the
      checkpoint at 0, with the same asymptotics per replay).
      Forward motion is much cheaper: the halted kernel's barrier is
      moved and the machine {e resumed} in place, which is exact
      because [Kernel.run_slice] is halt-transparent.
    - [step] / [reverse_step] — cursor ±1; reverse = replay +
      re-execute n−1 events, per rr.
    - [continue_to] / [reverse_continue] — run until a watchpoint (a
      register or a memory word) changes value.  Forward is a linear
      resume scan.  Reverse uses binary search over the checkpoint
      grid: O(log n) full replays probe the watched value at
      checkpoint boundaries, then one linear scan inside the located
      segment pins the exact event.  When the watched value changes
      only once this is exact; if it oscillates {e within} a segment
      and returns to the boundary value, the grid search reports a
      change, not necessarily the latest one (rr has the same
      granularity/precision trade with its checkpoint spacing).
    - inspection — the {!Sim_kernel.Strace} decoder for the event
      under the cursor, [/proc/<pid>/*] views through the replay
      kernel's VFS, register dumps and cross-position register/page
      deltas reusing {!Harness.Divergence} machinery.

    Every replayed prefix is verified against the log as it is
    produced — full-row identity when replaying under the recorded
    mechanism, mechanism-neutral app-stream identity when replaying a
    log under a different mechanism (the cross-mechanism trick the
    audit format was designed for).  A resume whose rows stop
    matching falls back to a fresh replay; a fresh replay that
    mismatches is a hard error (wrong program or wrong log). *)

open Sim_kernel
module A = Sim_audit.Audit
module D = Harness.Divergence
module Cpu = Sim_cpu.Cpu
module Mem = Sim_mem.Mem
module Isa = Sim_isa.Isa
module Hook = Lazypoline.Hook

(* ------------------------------------------------------------------ *)
(* Log parsing                                                         *)

type ev_info =
  | Esys of {
      nr : int;
      name : string;
      args : int64 array;
      ret : int64 option;
      status : string;
      path : string;
      cs : int64 array;
      xh : int64;
    }
  | Esig of int
  | Esigret
  | Esched of int

type line_ev = {
  le_seq : int;
  le_tid : int;
  le_scope : char;  (** 'A' or 'M' *)
  le_ev : ev_info;
}

type log = {
  l_header : (string * string) list;
  l_rows : string array;  (** body rows (E and K lines), verbatim *)
  l_events : line_ev array;  (** parsed E rows, in order *)
  l_app : int array;
      (** for app position p (1-based), [l_app.(p-1)] indexes the App
          syscall's row in [l_events] *)
  l_checkpoints : int array;  (** checkpoint app-positions, ascending *)
  l_cadence : int;
  l_final : int64 option;  (** the F row's final state hash *)
}

let header_value log key = List.assoc_opt key log.l_header

let hex64 tok = Int64.of_string ("0x" ^ tok)

let parse_line raw : [ `Ev of line_ev | `Ck of int * string | `Final of int64 ]
    =
  match String.split_on_char ' ' raw with
  | "E" :: seq :: tid :: scope :: rest ->
      let le_seq = int_of_string seq and le_tid = int_of_string tid in
      let le_scope = scope.[0] in
      let ev =
        match rest with
        | [ "R" ] -> Esigret
        | [ "G"; signo ] -> Esig (int_of_string signo)
        | [ "C"; prev ] -> Esched (int_of_string prev)
        | "S" :: nr :: name :: tl ->
            (* a0..a5 ret status path cs0..cs5 xh *)
            let toks = Array.of_list tl in
            if Array.length toks <> 16 then failwith "bad syscall row";
            let args = Array.init 6 (fun i -> hex64 toks.(i)) in
            let ret = if toks.(6) = "-" then None else Some (hex64 toks.(6)) in
            let status = toks.(7) and path = toks.(8) in
            let cs = Array.init 6 (fun i -> hex64 toks.(9 + i)) in
            let xh = hex64 toks.(15) in
            Esys { nr = int_of_string nr; name; args; ret; status; path; cs; xh }
        | _ -> failwith "bad event row"
      in
      `Ev { le_seq; le_tid; le_scope; le_ev = ev }
  | [ "K"; _seq; app_seq; _tid; _hash ] -> `Ck (int_of_string app_seq, raw)
  | [ "F"; hash ] -> `Final (hex64 hash)
  | _ -> failwith "unrecognized row"

let audit_artifact_kind = "audit"
let audit_artifact_version = 1

let parse_log ?file (text : string) : (log, string) result =
  let module Art = Sim_artifact.Artifact in
  match
    Art.parse_magic ?file ~kind:audit_artifact_kind
      ~accept:[ audit_artifact_version ] text
  with
  | Error e -> Error e
  | Ok (_v, after_magic) -> (
      let header = Art.headers after_magic in
      let rest =
        List.filter
          (fun l -> String.trim l <> "" && l.[0] <> '%')
          after_magic
      in
      let rows = ref [] in
      let events = ref [] and app = ref [] and cks = ref [] in
      let final = ref None in
      let nev = ref 0 in
      try
        List.iter
          (fun line ->
            match parse_line line with
            | `Ev e ->
                rows := line :: !rows;
                events := e :: !events;
                (match (e.le_scope, e.le_ev) with
                | 'A', Esys _ -> app := !nev :: !app
                | _ -> ());
                incr nev
            | `Ck (app_seq, raw) ->
                rows := raw :: !rows;
                if app_seq > 0 then cks := app_seq :: !cks
            | `Final h -> final := Some h)
          rest;
        let cadence =
          match List.assoc_opt "checkpoint-every" header with
          | Some v -> (
              match int_of_string_opt v with
              | Some n when n > 0 -> n
              | _ -> failwith "bad checkpoint-every header")
          | None -> 64
        in
        Ok
          {
            l_header = header;
            l_rows = Array.of_list (List.rev !rows);
            l_events = Array.of_list (List.rev !events);
            l_app = Array.of_list (List.rev !app);
            l_checkpoints =
              Array.of_list (List.sort_uniq compare !cks);
            l_cadence = cadence;
            l_final = !final;
          }
      with
      | Failure m -> Error ("malformed audit log: " ^ m)
      | _ -> Error "malformed audit log")

(* ------------------------------------------------------------------ *)
(* Watchpoints                                                         *)

type watch =
  | Wreg of { tid : int; reg : int }
  | Wmem of { tid : int; addr : int }  (** one 64-bit word *)

let watch_name = function
  | Wreg { tid; reg } -> Printf.sprintf "reg %s (tid %d)" (Isa.gpr_name reg) tid
  | Wmem { tid; addr } -> Printf.sprintf "mem 0x%x (tid %d)" addr tid

let reg_of_name name =
  let rec go i =
    if i > 15 then None
    else if Isa.gpr_name i = name then Some i
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Session                                                             *)

type live = { lk : Types.kernel; la : A.t }

type t = {
  log : log;
  mech : D.mech;
  preserve_xstate : bool;
  workload : D.workload;
  blocks : bool option;
  strict : bool;
      (** replaying under the recorded mechanism: verify full-row
          identity (Mech events, checkpoints and all); otherwise only
          the mechanism-neutral app stream *)
  mutable cursor : int;  (** app position: 0 = initial, n = after event n *)
  mutable live : live option;  (** replay kernel at state [cursor] *)
  mutable watch : watch option;
  mutable last_hit : int option;
  mutable replays : int;  (** fresh from-scratch re-executions *)
  mutable resumes : int;  (** in-place forward resumes *)
  mutable spans : Sim_obs.Obs.sidecar_row list;
      (** request spans from the log's [.spans] sidecar, slowest
          first — the p99 exemplars [--seek-request] jumps to *)
}

let n_events s = Array.length s.log.l_app

let create ?mech ?blocks ?preserve_xstate ~workload (log : log) : t =
  let rec_mech =
    match header_value log "mech" with
    | Some m -> D.mech_of_string m
    | None -> None
  in
  let mech =
    match (mech, rec_mech) with
    | Some m, _ -> m
    | None, Some m -> m
    | None, None -> D.Raw
  in
  let preserve_xstate =
    match preserve_xstate with
    | Some b -> b
    | None -> header_value log "preserve-xstate" <> Some "false"
  in
  {
    log;
    mech;
    preserve_xstate;
    workload;
    blocks;
    strict = (match rec_mech with Some m -> m = mech | None -> false);
    cursor = 0;
    live = None;
    watch = None;
    last_hit = None;
    replays = 0;
    resumes = 0;
    spans = [];
  }

(** Reconstruct a [Wrk] workload from a log's
    [% wrk <flavour> <size_kb> <conns> <requests>] header (written by
    [simtrace record] for wrk runs), so a span-recorded macrobench
    replays without the user re-specifying the workload. *)
let wrk_of_header log : D.workload option =
  match header_value log "wrk" with
  | None -> None
  | Some v -> (
      match String.split_on_char ' ' v with
      | [ fl; sz; cn; rq ] -> (
          let flavour =
            match fl with
            | "nginx-sim" -> Some Workloads.Webserver.Nginx_like
            | "lighttpd-sim" -> Some Workloads.Webserver.Lighttpd_like
            | _ -> None
          in
          match
            ( flavour,
              int_of_string_opt sz,
              int_of_string_opt cn,
              int_of_string_opt rq )
          with
          | Some flavour, Some size_kb, Some conns, Some requests ->
              Some (D.Wrk { flavour; size_kb; conns; requests })
          | _ -> None)
      | _ -> None)

(** Load a [% simtrace-spans/1] or [/2] sidecar (the exemplar table
    the span recorder wrote next to the audit log); rows keep their
    slowest-first order. *)
let load_spans s (text : string) = s.spans <- Sim_obs.Obs.parse_sidecar text

(** A fresh replay kernel: same fixture files as [simtrace run] and
    [Divergence.run_audited], audit attached before spawn, interposer
    installed, nothing executed yet (= position 0).  A provenance
    ledger rides along on every replay — observation-only, so the
    verified rows are unchanged — giving the [sites] command the
    call-site table of the replayed prefix at the cursor. *)
let make_live s : live =
  let a = A.create ~checkpoint_every:s.log.l_cadence () in
  let k = Kernel.create ?blocks:s.blocks () in
  Kernel.attach_audit k a;
  Kernel.attach_prov k (Sim_obs.Provenance.create ());
  ignore (Vfs.add_file k.Types.vfs "/etc/hosts" "127.0.0.1 localhost\n");
  ignore (Vfs.add_file k.Types.vfs "/tmp/file_a" (String.make 256 'a'));
  let t = D.workload_spawn k s.workload in
  let hook = Hook.dummy () in
  D.install ~preserve_xstate:s.preserve_xstate s.mech k t hook;
  (* Wrk logs: the load generator attaches (and the server boots to
     listening) exactly as at record time, so the replayed event
     stream lines up row for row.  The boot prefix executes here,
     which makes the earliest reachable position for such logs the
     end of that prefix rather than 0. *)
  D.workload_start k s.workload;
  { lk = k; la = a }

(** Verify that the events replayed so far are a prefix of the log. *)
let verify s (lv : live) : (unit, string) result =
  if s.strict then begin
    let got =
      D.log_string lv.la |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> "")
    in
    let err = ref None in
    List.iteri
      (fun i row ->
        if !err = None then
          if i >= Array.length s.log.l_rows then
            err := Some (Printf.sprintf "replay row %d past end of log" i)
          else if row <> s.log.l_rows.(i) then
            err :=
              Some
                (Printf.sprintf "replay diverged from log at row %d:\n  log:    %s\n  replay: %s"
                   i s.log.l_rows.(i) row))
      got;
    match !err with None -> Ok () | Some e -> Error e
  end
  else begin
    (* cross-mechanism: compare the mechanism-neutral content of App
       syscalls by app position *)
    let err = ref None in
    List.iter
      (fun (e : A.entry) ->
        if !err = None && e.A.scope = A.App && e.A.app_seq > 0 then
          match e.A.ev with
          | A.Syscall { nr; args; ret; cs; xh; path = _ } ->
              let p = e.A.app_seq in
              if p > n_events s then
                err := Some (Printf.sprintf "replay app event %d past end of log" p)
              else (
                match s.log.l_events.(s.log.l_app.(p - 1)).le_ev with
                | Esys l ->
                    if
                      l.nr <> nr || l.args <> args || l.ret <> ret
                      || l.cs <> cs || l.xh <> xh
                    then
                      err :=
                        Some
                          (Printf.sprintf
                             "replay diverged from log at app event %d (%s vs %s)"
                             p l.name (Defs.syscall_name nr))
                | _ -> err := Some (Printf.sprintf "log app event %d is not a syscall" p))
          | _ -> ())
      (A.entries lv.la);
    match !err with None -> Ok () | Some e -> Error e
  end

(** Resume a (halted or fresh) live kernel forward to app position
    [target].  Exact because [run_slice] is halt-transparent. *)
let advance s (lv : live) target =
  A.set_stop_after lv.la (if target >= n_events s then None else Some target);
  A.clear_halt lv.la;
  lv.lk.Types.halted <- false;
  ignore (Kernel.run_until_exit ~max_slices:40_000_000 lv.lk);
  if A.app_count lv.la <> target then
    failwith
      (Printf.sprintf "replay stopped at app event %d (wanted %d): log/program mismatch?"
         (A.app_count lv.la) target)

let materialize s target : live =
  s.replays <- s.replays + 1;
  let lv = make_live s in
  if target > 0 then advance s lv target;
  (match verify s lv with Ok () -> () | Error e -> failwith e);
  lv

(** Move the cursor.  Forward: resume in place (with prefix
    verification; mismatch falls back to a fresh replay).  Backward or
    no live kernel: fresh bounded replay. *)
let seek s target =
  if target < 0 || target > n_events s then
    failwith
      (Printf.sprintf "seek %d out of range (log has %d app events)" target
         (n_events s));
  (match s.live with
  | Some lv when s.cursor <= target ->
      if s.cursor < target then begin
        s.resumes <- s.resumes + 1;
        match
          advance s lv target;
          verify s lv
        with
        | Ok () -> ()
        | Error _ -> s.live <- Some (materialize s target)
        | exception _ -> s.live <- Some (materialize s target)
      end
  | _ -> s.live <- Some (materialize s target));
  s.cursor <- target

let step s = if s.cursor < n_events s then seek s (s.cursor + 1)
let reverse_step s = if s.cursor > 0 then seek s (s.cursor - 1)

(* ------------------------------------------------------------------ *)
(* Request-flow navigation (spans sidecar)                             *)

(** Seek to where a recorded request's handling begins: the app-event
    index its sidecar row captured at claim time ([ev_lo] — the
    server's first read of that request's bytes).  An ordinary
    {!seek}, so the replayed prefix is verified against the log like
    any other motion. *)
let seek_request s rid : (Sim_obs.Obs.sidecar_row, string) result =
  match List.find_opt (fun r -> r.Sim_obs.Obs.x_rid = rid) s.spans with
  | None ->
      Error
        (Printf.sprintf
           "no request %d in the spans sidecar (%d exemplar row(s) loaded)"
           rid (List.length s.spans))
  | Some r ->
      if r.Sim_obs.Obs.x_ev_lo < 0 then
        Error
          (Printf.sprintf "request %d has no recorded audit event index" rid)
      else begin
        seek s (min r.Sim_obs.Obs.x_ev_lo (n_events s));
        Ok r
      end

let span_row_line (r : Sim_obs.Obs.sidecar_row) =
  Printf.sprintf "  rid %-6d latency %-10Ld cycles  app events [%d..%d]"
    r.Sim_obs.Obs.x_rid r.Sim_obs.Obs.x_latency r.Sim_obs.Obs.x_ev_lo
    r.Sim_obs.Obs.x_ev_hi

let spans_listing s : string =
  if s.spans = [] then "no spans sidecar loaded"
  else
    "exemplar requests (slowest first):\n"
    ^ String.concat "\n" (List.map span_row_line s.spans)

(* ------------------------------------------------------------------ *)
(* Watch evaluation and continue / reverse-continue                    *)

let watch_value s (w : watch) : int64 option =
  match s.live with
  | None -> None
  | Some lv -> (
      let find tid = Hashtbl.find_opt lv.lk.Types.tasks tid in
      match w with
      | Wreg { tid; reg } -> (
          match find tid with
          | Some t -> Some (Cpu.peek_reg t.Types.ctx reg)
          | None -> None)
      | Wmem { tid; addr } -> (
          match find tid with
          | Some t -> (
              try Some (Mem.peek_u64 t.Types.mem addr)
              with Mem.Fault _ -> None)
          | None -> None))

(** Linear forward scan from the cursor; each probe is a one-event
    resume, no fresh replays.  Cursor ends at the hit, or at the end
    of the log on no hit. *)
let ensure_live s = if s.live = None then seek s s.cursor

let continue_to s (w : watch) : int option =
  ensure_live s;
  let v0 = watch_value s w in
  let n = n_events s in
  let rec go p =
    if p > n then None
    else begin
      seek s p;
      if watch_value s w <> v0 then Some p else go (p + 1)
    end
  in
  let hit = go (s.cursor + 1) in
  s.last_hit <- hit;
  hit

(** Scan positions (b, hi] for the latest value change, returning the
    value at [b] and the hit (if any).  One fresh replay (the seek to
    [b]) plus resumes. *)
let scan_segment s w b hi : int64 option * int option =
  seek s b;
  let base = watch_value s w in
  let prev = ref base and hit = ref None in
  for p = b + 1 to hi do
    seek s p;
    let v = watch_value s w in
    if v <> !prev then hit := Some p;
    prev := v
  done;
  (base, !hit)

(** Reverse-continue: find the latest event before the cursor at which
    the watched value changed, by binary search over checkpoint-grid
    prefixes — O(log n) fresh replays plus one intra-segment scan. *)
let reverse_continue s (w : watch) : int option =
  ensure_live s;
  let c0 = s.cursor in
  if c0 = 0 then begin
    s.last_hit <- None;
    None
  end
  else begin
    let bounds =
      Array.to_list s.log.l_checkpoints
      |> List.filter (fun b -> b < c0)
      |> fun l -> List.sort_uniq compare (0 :: l)
    in
    let arr = Array.of_list bounds in
    let b_last = arr.(Array.length arr - 1) in
    let result =
      match scan_segment s w b_last (c0 - 1) with
      | _, Some j -> Some j
      | v_ref, None ->
          if Array.length arr = 1 then None
          else begin
            let vb i =
              seek s arr.(i);
              watch_value s w
            in
            if vb 0 = v_ref then None
            else begin
              (* invariant: value(arr.(lo)) <> v_ref, value(arr.(hi)) = v_ref *)
              let lo = ref 0 and hi = ref (Array.length arr - 1) in
              while !hi - !lo > 1 do
                let mid = (!lo + !hi) / 2 in
                if vb mid = v_ref then hi := mid else lo := mid
              done;
              snd (scan_segment s w arr.(!lo) arr.(!hi))
            end
          end
    in
    (match result with Some j -> seek s j | None -> seek s c0);
    s.last_hit <- result;
    result
  end

(* ------------------------------------------------------------------ *)
(* Call-site navigation (provenance ledger)                            *)

module P = Sim_obs.Provenance

let prov_of (lv : live) = lv.lk.Types.prov

(** The per-call-site ledger of the replayed prefix at the cursor —
    built by the provenance recorder riding on every replay. *)
let sites_listing s : string =
  ensure_live s;
  match s.live with
  | None -> "no live replay; seek first"
  | Some lv -> (
      match prov_of lv with
      | None -> "no provenance ledger on the replay kernel"
      | Some p ->
          Printf.sprintf "call sites of the replayed prefix (cursor #%d):\n%s"
            s.cursor (P.table p))

(** Seek to the first audited app syscall issued from call site [pc]:
    one full verified replay builds the whole-log ledger, whose
    recorded first-event index for that site then becomes the target
    of an ordinary verified {!seek} — the same contract as
    {!seek_request}. *)
let seek_site s pc : (string, string) result =
  let full =
    match s.live with
    | Some lv when s.cursor = n_events s -> lv
    | _ -> materialize s (n_events s)
  in
  match prov_of full with
  | None -> Error "no provenance ledger on the replay kernel"
  | Some p -> (
      match List.filter (fun st -> st.P.s_pc = pc) (P.sites_sorted p) with
      | [] ->
          Error
            (Printf.sprintf
               "no audited syscall from call site 0x%x (%d site(s) in the log; \
                try: sites)"
               pc (P.distinct_sites p))
      | l ->
          let ev =
            List.fold_left (fun acc st -> min acc st.P.s_first_ev) max_int l
          in
          if ev < 1 then
            Error
              (Printf.sprintf "site 0x%x has no recorded audit event index" pc)
          else begin
            (* keep the full replay live: a forward seek from the end
               would be wasted, but the backward seek below replays
               bounded to [ev] and verifies like any other motion *)
            s.live <- Some full;
            s.cursor <- n_events s;
            seek s (min ev (n_events s));
            Ok
              (Printf.sprintf "site 0x%x (%s): %d audited syscall(s), first at #%d"
                 pc (P.symbolize p pc)
                 (List.fold_left (fun acc st -> acc + P.site_count st) 0 l)
                 ev)
          end)

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)

let event_at s pos : line_ev option =
  if pos >= 1 && pos <= n_events s then
    Some s.log.l_events.(s.log.l_app.(pos - 1))
  else None

(** The strace-decoded line for the app event at [pos] (path arguments
    are read from the replay kernel's memory at the cursor state). *)
let strace_line s pos : string =
  match event_at s pos with
  | None -> "#0 (initial state; no event)"
  | Some le -> (
      match le.le_ev with
      | Esys { nr; args; ret; _ } ->
          let read_str addr =
            match s.live with
            | Some lv -> (
                match Hashtbl.find_opt lv.lk.Types.tasks le.le_tid with
                | Some t -> Mem.read_cstring t.Types.mem addr
                | None -> raise Not_found)
            | None -> raise Not_found
          in
          Printf.sprintf "#%d tid %d %s%s" pos le.le_tid
            (Strace.format_call ~read_str nr args)
            (Strace.format_ret
               (match ret with Some v -> v | None -> Int64.min_int))
      | Esig signo -> Printf.sprintf "#%d tid %d signal %d" pos le.le_tid signo
      | Esigret -> Printf.sprintf "#%d tid %d sigreturn" pos le.le_tid
      | Esched prev ->
          Printf.sprintf "#%d tid %d sched from %d" pos le.le_tid prev)

let proc_read s path : (string, string) result =
  match s.live with
  | None -> Error "no live replay; seek first"
  | Some lv -> (
      let p =
        if String.length path > 0 && path.[0] = '/' then path
        else "/proc/" ^ path
      in
      match Vfs.read_file lv.lk.Types.vfs p with
      | Ok c -> Ok c
      | Error e -> Error (Printf.sprintf "%s: errno %d" p e))

let regs_dump s tid : (string, string) result =
  match s.live with
  | None -> Error "no live replay; seek first"
  | Some lv -> (
      match Hashtbl.find_opt lv.lk.Types.tasks tid with
      | None -> Error (Printf.sprintf "no task %d" tid)
      | Some t ->
          let c = t.Types.ctx in
          let buf = Buffer.create 512 in
          for r = 0 to 15 do
            Printf.bprintf buf "  %-5s 0x%016Lx\n" (Isa.gpr_name r)
              (Cpu.peek_reg c r)
          done;
          Printf.bprintf buf "  %-5s 0x%x\n" "rip" c.Cpu.rip;
          Ok (Buffer.contents buf))

let mem_dump s tid addr len : (string, string) result =
  match s.live with
  | None -> Error "no live replay; seek first"
  | Some lv -> (
      match Hashtbl.find_opt lv.lk.Types.tasks tid with
      | None -> Error (Printf.sprintf "no task %d" tid)
      | Some t -> (
          try
            let buf = Buffer.create 256 in
            let words = (len + 7) / 8 in
            for i = 0 to words - 1 do
              Printf.bprintf buf "  0x%x: 0x%016Lx\n" (addr + (8 * i))
                (Mem.peek_u64 t.Types.mem (addr + (8 * i)))
            done;
            Ok (Buffer.contents buf)
          with Mem.Fault (a, _) ->
            Error (Printf.sprintf "fault reading 0x%x" a)))

(** Side-by-side register + memory-page delta between the state at
    [other] and the cursor state, via a throwaway bounded replay. *)
let delta s ~tid other : (string, string) result =
  match s.live with
  | None -> Error "no live replay; seek first"
  | Some lv -> (
      if other < 0 || other > n_events s then Error "position out of range"
      else
        let tmp = materialize s other in
        match
          ( Hashtbl.find_opt tmp.lk.Types.tasks tid,
            Hashtbl.find_opt lv.lk.Types.tasks tid )
        with
        | Some tl, Some tr ->
            let buf = Buffer.create 1024 in
            Printf.bprintf buf "tid %d, #%d vs #%d:\n" tid other s.cursor;
            D.dump_regs buf
              (Printf.sprintf "#%d" other)
              (Printf.sprintf "#%d" s.cursor)
              tl.Types.ctx tr.Types.ctx;
            D.dump_page_delta buf tl.Types.mem tr.Types.mem;
            Ok (Buffer.contents buf)
        | _ -> Error (Printf.sprintf "task %d not live at both positions" tid))

(** Full register+memory state hash at the cursor (all live tasks) —
    the bit-identity witness used by the seek/step qcheck property. *)
let state_hash s : int64 option =
  match s.live with
  | None -> None
  | Some lv -> Some (Kernel.audit_final_hash lv.lk lv.la)

let info s : string =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "audit log: %d app events, %d checkpoints (every %d)\n"
    (n_events s)
    (Array.length s.log.l_checkpoints)
    s.log.l_cadence;
  Printf.bprintf buf "mechanism: %s%s  preserve-xstate: %b\n"
    (D.mech_name s.mech)
    (if s.strict then " (as recorded; full-row verification)"
     else " (override; app-stream verification)")
    s.preserve_xstate;
  List.iter
    (fun (k, v) -> Printf.bprintf buf "header: %s = %s\n" k v)
    s.log.l_header;
  (match s.log.l_final with
  | Some h -> Printf.bprintf buf "final state hash: %Lx\n" h
  | None -> ());
  Printf.bprintf buf "cursor: #%d  replays: %d  resumes: %d" s.cursor
    s.replays s.resumes;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Recording helper (tests and benches)                                *)

(** Record [workload] under [mech] and render the full versioned log —
    header, rows, final state hash — exactly as [simtrace record]
    writes it. *)
let record ?(checkpoint_every = 64) ?blocks ?obs ?(header = []) mech workload
    : string =
  let a, k, _ = D.run_audited ~checkpoint_every ?blocks ?obs mech workload in
  let fh = Kernel.audit_final_hash k a in
  let buf = Buffer.create 4096 in
  let module Art = Sim_artifact.Artifact in
  Art.add_magic buf ~kind:audit_artifact_kind ~version:audit_artifact_version;
  List.iter (fun (key, v) -> Art.add_header buf key v) header;
  Art.add_header buf "mech" (D.mech_name mech);
  Art.add_header buf "checkpoint-every" (string_of_int checkpoint_every);
  Buffer.add_string buf (D.log_string ~final_hash:fh a);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Command engine (shared by the REPL and --script mode)               *)

type cmd_result = { out : string; ok : bool; quit : bool }

let ok_out out = { out; ok = true; quit = false }
let fail_out out = { out; ok = false; quit = false }

let cursor_line s =
  if s.cursor = 0 then
    Printf.sprintf "#0 (initial state, %d events ahead)" (n_events s)
  else strace_line s s.cursor

let parse_watch toks : (watch, string) result =
  let tid, spec =
    match toks with
    | "tid" :: t :: rest -> (int_of_string t, rest)
    | rest -> (1, rest)
  in
  match spec with
  | [ "reg"; name ] -> (
      match reg_of_name name with
      | Some r -> Ok (Wreg { tid; reg = r })
      | None -> Error (Printf.sprintf "unknown register %S" name))
  | [ "mem"; addr ] -> (
      match int_of_string_opt addr with
      | Some a -> Ok (Wmem { tid; addr = a })
      | None -> Error (Printf.sprintf "bad address %S" addr))
  | _ -> Error "watch spec: [tid N] reg <name> | [tid N] mem <addr>"

let help_text =
  {|commands:
  info                      log summary, cursor, replay/resume counters
  seek <n>|end              move to just after app event n (0 = initial state)
  step [n] / rstep [n]      forward / reverse step (default 1)
  watch [tid N] reg <r>     set the watchpoint to a register
  watch [tid N] mem <addr>  set the watchpoint to a 64-bit memory word
  continue | c              run forward until the watched value changes
  rcontinue | rc            run backward (checkpoint bisection) to the change
  requests                  list the spans sidecar's exemplar requests
  request <rid>             seek to where request <rid>'s handling begins
  sites                     per-call-site syscall ledger of the replayed prefix
  site <pc>                 seek to the first audited syscall from call site pc
  strace [n]                decode the app event at n (default: cursor)
  regs [tid]                register dump at the cursor
  mem <addr> [len]          memory words at the cursor
  proc <path>               read /proc/<path> through the replay kernel
  delta <n>                 register/page delta: state at n vs the cursor
  stats                     replay/resume counters
  assert-cursor <n>         fail unless the cursor is at n        (scripts/CI)
  assert-hit [n]            fail unless the last continue hit [at n]
  assert-no-hit             fail unless the last continue found no change
  assert-mem <addr> <val>   fail unless the word at addr equals val
  assert-reg <r> <val>      fail unless register r equals val
  quit | q                  leave the debugger|}

let exec_command s (line : string) : cmd_result =
  let toks =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun t -> t <> "")
  in
  try
    match toks with
    | [] -> ok_out ""
    | [ ("quit" | "q" | "exit") ] -> { out = ""; ok = true; quit = true }
    | [ "help" ] -> ok_out help_text
    | [ "info" ] -> ok_out (info s)
    | [ "stats" ] ->
        ok_out
          (Printf.sprintf "replays: %d  resumes: %d" s.replays s.resumes)
    | [ "seek"; "end" ] ->
        seek s (n_events s);
        ok_out (cursor_line s)
    | [ "seek"; n ] ->
        seek s (int_of_string n);
        ok_out (cursor_line s)
    | "step" :: rest ->
        let n = match rest with [ n ] -> int_of_string n | _ -> 1 in
        for _ = 1 to n do
          step s
        done;
        ok_out (cursor_line s)
    | ("rstep" | "reverse-step") :: rest ->
        let n = match rest with [ n ] -> int_of_string n | _ -> 1 in
        for _ = 1 to n do
          reverse_step s
        done;
        ok_out (cursor_line s)
    | "watch" :: spec -> (
        match parse_watch spec with
        | Ok w ->
            s.watch <- Some w;
            ensure_live s;
            let v =
              match watch_value s w with
              | Some v -> Printf.sprintf "0x%Lx" v
              | None -> "<unmapped>"
            in
            ok_out (Printf.sprintf "watching %s, currently %s" (watch_name w) v)
        | Error e -> fail_out e)
    | [ ("continue" | "c") ] | [ ("rcontinue" | "rc") ] -> (
        match s.watch with
        | None -> fail_out "no watchpoint set (use: watch reg <r> | watch mem <addr>)"
        | Some w -> (
            let reverse =
              match toks with [ ("rcontinue" | "rc") ] -> true | _ -> false
            in
            let hit =
              if reverse then reverse_continue s w else continue_to s w
            in
            match hit with
            | Some _ ->
                let v =
                  match watch_value s w with
                  | Some v -> Printf.sprintf "0x%Lx" v
                  | None -> "<unmapped>"
                in
                ok_out
                  (Printf.sprintf "%s changed to %s at %s" (watch_name w) v
                     (cursor_line s))
            | None ->
                ok_out
                  (Printf.sprintf "%s: no change %s; %s" (watch_name w)
                     (if reverse then "before the cursor" else "ahead")
                     (cursor_line s))))
    | [ "requests" ] -> ok_out (spans_listing s)
    | [ "sites" ] -> ok_out (sites_listing s)
    | [ "site"; pc ] -> (
        match seek_site s (int_of_string pc) with
        | Ok d -> ok_out (Printf.sprintf "%s\n%s" d (cursor_line s))
        | Error e -> fail_out e)
    | [ "request"; rid ] -> (
        match seek_request s (int_of_string rid) with
        | Ok r ->
            ok_out (Printf.sprintf "%s\n%s" (span_row_line r) (cursor_line s))
        | Error e -> fail_out e)
    | "strace" :: rest ->
        let pos =
          match rest with [ n ] -> int_of_string n | _ -> s.cursor
        in
        ok_out (strace_line s pos)
    | "regs" :: rest -> (
        let tid = match rest with [ t ] -> int_of_string t | _ -> 1 in
        match regs_dump s tid with Ok d -> ok_out d | Error e -> fail_out e)
    | "mem" :: addr :: rest -> (
        let len = match rest with [ l ] -> int_of_string l | _ -> 8 in
        match mem_dump s 1 (int_of_string addr) len with
        | Ok d -> ok_out d
        | Error e -> fail_out e)
    | [ "proc"; path ] -> (
        match proc_read s path with Ok d -> ok_out d | Error e -> fail_out e)
    | [ "delta"; n ] -> (
        match delta s ~tid:1 (int_of_string n) with
        | Ok d -> ok_out d
        | Error e -> fail_out e)
    | [ "assert-cursor"; n ] ->
        let n = int_of_string n in
        if s.cursor = n then ok_out (Printf.sprintf "cursor at #%d" n)
        else
          fail_out
            (Printf.sprintf "ASSERT FAILED: cursor at #%d, expected #%d"
               s.cursor n)
    | "assert-hit" :: rest -> (
        match (s.last_hit, rest) with
        | Some j, [] -> ok_out (Printf.sprintf "hit at #%d" j)
        | Some j, [ n ] when int_of_string n = j ->
            ok_out (Printf.sprintf "hit at #%d" j)
        | Some j, n :: _ ->
            fail_out
              (Printf.sprintf "ASSERT FAILED: hit at #%d, expected #%s" j n)
        | None, _ -> fail_out "ASSERT FAILED: no watchpoint hit")
    | [ "assert-no-hit" ] -> (
        match s.last_hit with
        | None -> ok_out "no hit, as expected"
        | Some j ->
            fail_out (Printf.sprintf "ASSERT FAILED: unexpected hit at #%d" j))
    | [ "assert-mem"; addr; v ] -> (
        let addr = int_of_string addr and want = Int64.of_string v in
        match watch_value s (Wmem { tid = 1; addr }) with
        | Some got when got = want ->
            ok_out (Printf.sprintf "mem 0x%x = %Ld" addr want)
        | Some got ->
            fail_out
              (Printf.sprintf "ASSERT FAILED: mem 0x%x = %Ld, expected %Ld"
                 addr got want)
        | None ->
            fail_out (Printf.sprintf "ASSERT FAILED: mem 0x%x unmapped" addr))
    | [ "assert-reg"; name; v ] -> (
        match reg_of_name name with
        | None -> fail_out (Printf.sprintf "unknown register %S" name)
        | Some r -> (
            let want = Int64.of_string v in
            match watch_value s (Wreg { tid = 1; reg = r }) with
            | Some got when got = want ->
                ok_out (Printf.sprintf "%s = %Ld" name want)
            | Some got ->
                fail_out
                  (Printf.sprintf "ASSERT FAILED: %s = %Ld, expected %Ld"
                     name got want)
            | None -> fail_out "ASSERT FAILED: no live task"))
    | _ ->
        fail_out
          (Printf.sprintf "unknown command %S (try: help)" (String.trim line))
  with
  | Failure m -> fail_out m
  | Invalid_argument m -> fail_out m

(** Run a scripted session: one command per line, [#] comments.  Every
    command and its output goes through [print]; the first failing
    command (or failed assertion) stops the script.  Returns 0 on
    success, 1 on failure. *)
let run_script s ~(print : string -> unit) (text : string) : int =
  let lines = String.split_on_char '\n' text in
  let rec go = function
    | [] -> 0
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go rest
        else begin
          print (Printf.sprintf "(tdb) %s\n" trimmed);
          let r = exec_command s trimmed in
          if r.out <> "" then
            print (if String.length r.out > 0 && r.out.[String.length r.out - 1] = '\n' then r.out else r.out ^ "\n");
          if not r.ok then 1 else if r.quit then 0 else go rest
        end
  in
  go lines
