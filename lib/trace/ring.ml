(** Bounded event ring with overflow accounting.

    One ring per simulated CPU.  Memory is bounded by construction:
    the backing array is allocated once at [create] and never grows.
    When the ring is full, new events are {e dropped} (and counted) in
    preference to overwriting older ones — the earliest events of a
    run (installation, first rewrites) are usually the interesting
    ones, and a monotone drop counter makes truncation visible
    instead of silent. *)

type 'a t = {
  buf : 'a option array;
  mutable len : int;
  mutable dropped : int;
  mutable pushed : int;  (** total offered, including dropped *)
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: non-positive capacity";
  { buf = Array.make capacity None; len = 0; dropped = 0; pushed = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let dropped t = t.dropped
let pushed t = t.pushed

(** Append [x]; drops (and counts) when full. *)
let push t x =
  t.pushed <- t.pushed + 1;
  if t.len >= Array.length t.buf then t.dropped <- t.dropped + 1
  else begin
    t.buf.(t.len) <- Some x;
    t.len <- t.len + 1
  end

(** Retained events, oldest first. *)
let to_list t =
  let rec go i acc =
    if i < 0 then acc
    else
      match t.buf.(i) with
      | Some x -> go (i - 1) (x :: acc)
      | None -> go (i - 1) acc
  in
  go (t.len - 1) []

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.len <- 0;
  t.dropped <- 0;
  t.pushed <- 0
