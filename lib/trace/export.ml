(** Chrome trace-event JSON export.

    Produces the {e JSON Object Format} of the Trace Event spec
    (loadable in Perfetto and chrome://tracing):

    - one thread track per simulated CPU (process "machine"), carrying
      syscall spans as complete ["X"] events and everything else as
      instant ["i"] events — so rewrites, selector flips, signals,
      mmaps and icache invalidations appear exactly where they
      happened on that CPU's timeline;
    - one async track per task ([ph] ["b"]/["e"], category
      ["syscall"]), so a syscall that migrates or blocks still reads
      as one span of its task.

    Timestamps are microseconds (the format's native unit) derived
    from simulated cycles at the simulator's 2.1 GHz clock.  The
    exporter is pure string building — no JSON library involved — and
    the shape is asserted by a parser in test_trace. *)

let cycles_per_us = 2100.0
let us_of_cycles (c : int64) = Int64.to_float c /. cycles_per_us

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One JSON event object; [args] are pre-rendered "key":value pairs. *)
let obj b ~first ~name ~cat ~ph ~ts ?dur ~pid ~tid ?id ?scope ~args () =
  if not !first then Buffer.add_string b ",";
  first := false;
  Buffer.add_string b
    (Printf.sprintf "\n    {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.4f"
       (escape name) (escape cat) ph ts);
  (match dur with
  | Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%.4f" d)
  | None -> ());
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid tid);
  (match id with
  | Some i -> Buffer.add_string b (Printf.sprintf ",\"id\":\"%s\"" (escape i))
  | None -> ());
  (match scope with
  | Some s -> Buffer.add_string b (Printf.sprintf ",\"s\":\"%s\"" s)
  | None -> ());
  Buffer.add_string b
    (if args = [] then "}"
     else
       Printf.sprintf ",\"args\":{%s}}"
         (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" k v) args)))

let meta b ~first ~name ~pid ?tid ~value () =
  if not !first then Buffer.add_string b ",";
  first := false;
  Buffer.add_string b
    (Printf.sprintf "\n    {\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d" name pid);
  (match tid with
  | Some t -> Buffer.add_string b (Printf.sprintf ",\"tid\":%d" t)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf ",\"args\":{\"name\":\"%s\"}}" (escape value))

let str v = Printf.sprintf "\"%s\"" (escape v)
let hex v = str (Printf.sprintf "0x%x" v)

let instant_args (k : Event.kind) =
  match k with
  | Event.Signal_deliver { signo; handler } ->
      [ ("signo", string_of_int signo); ("handler", hex handler) ]
  | Event.Selector_flip { allow } ->
      [ ("selector", str (if allow then "ALLOW" else "BLOCK")) ]
  | Event.Rewrite { site } -> [ ("site", hex site) ]
  | Event.Sweep { sites; bytes_scanned } ->
      [ ("sites", string_of_int sites); ("bytes", string_of_int bytes_scanned) ]
  | Event.Context_switch { prev_tid; next_tid } ->
      [ ("prev_tid", string_of_int prev_tid); ("next_tid", string_of_int next_tid) ]
  | Event.Task_spawn { child_tid } -> [ ("child_tid", string_of_int child_tid) ]
  | Event.Mmap { addr; len; prot_exec } ->
      [ ("addr", hex addr); ("len", string_of_int len);
        ("exec", if prot_exec then "true" else "false") ]
  | Event.Munmap { addr; len } ->
      [ ("addr", hex addr); ("len", string_of_int len) ]
  | Event.Mprotect { addr; len; prot_exec } ->
      [ ("addr", hex addr); ("len", string_of_int len);
        ("exec", if prot_exec then "true" else "false") ]
  | Event.Icache_invalidate { page } -> [ ("page", string_of_int page) ]
  | Event.Jit_emit { addr; len } ->
      [ ("addr", hex addr); ("len", string_of_int len) ]
  | Event.Sigreturn | Event.Syscall_enter _ | Event.Syscall_exit _ -> []

(** Render [groups] — named (run, events) pairs — as one Chrome trace
    JSON document.  Each group gets two processes: pid [2g] "machine:
    <name>" (per-CPU threads) and pid [2g+1] "tasks: <name>" (async
    per-task spans).  [name_of_nr] names syscall spans. *)
let chrome_json_groups ?(name_of_nr = string_of_int)
    (groups : (string * Event.t list) list) : string =
  let b = Buffer.create 4096 in
  let first = ref true in
  Buffer.add_string b "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
  List.iteri
    (fun g (gname, events) ->
      let pid_cpu = 2 * g and pid_task = (2 * g) + 1 in
      let seen_cpus = Hashtbl.create 4 and seen_tids = Hashtbl.create 8 in
      List.iter
        (fun (e : Event.t) ->
          if not (Hashtbl.mem seen_cpus e.cpu) then begin
            Hashtbl.replace seen_cpus e.cpu ();
            meta b ~first ~name:"thread_name" ~pid:pid_cpu ~tid:e.cpu
              ~value:(Printf.sprintf "cpu %d" e.cpu) ()
          end;
          if e.tid >= 0 && not (Hashtbl.mem seen_tids e.tid) then begin
            Hashtbl.replace seen_tids e.tid ();
            meta b ~first ~name:"thread_name" ~pid:pid_task ~tid:e.tid
              ~value:(Printf.sprintf "task %d" e.tid) ()
          end)
        events;
      meta b ~first ~name:"process_name" ~pid:pid_cpu
        ~value:("machine: " ^ gname) ();
      meta b ~first ~name:"process_name" ~pid:pid_task
        ~value:("tasks: " ^ gname) ();
      let spans_ = Summary.spans events in
      List.iteri
        (fun i (s : Summary.span) ->
          let name = name_of_nr s.sp_nr in
          let ts = us_of_cycles s.sp_start in
          let dur = us_of_cycles s.sp_dur in
          let args =
            [
              ("nr", string_of_int s.sp_nr);
              ("path", str (Event.path_name s.sp_path));
              ("ret", str (Int64.to_string s.sp_ret));
              ("blocked", if s.sp_blocked then "true" else "false");
              ("tid", string_of_int s.sp_tid);
            ]
          in
          (* the per-CPU track: a complete span where it dispatched *)
          obj b ~first ~name ~cat:"syscall" ~ph:"X" ~ts ~dur ~pid:pid_cpu
            ~tid:s.sp_cpu ~args ();
          (* the per-task track: an async span surviving migration *)
          let id = Printf.sprintf "%d.%d.%d" g s.sp_tid i in
          obj b ~first ~name ~cat:"syscall" ~ph:"b" ~ts ~pid:pid_task
            ~tid:s.sp_tid ~id ~args ();
          obj b ~first ~name ~cat:"syscall" ~ph:"e"
            ~ts:(ts +. dur) ~pid:pid_task ~tid:s.sp_tid ~id ~args:[] ())
        spans_;
      List.iter
        (fun (e : Event.t) ->
          match e.kind with
          | Event.Syscall_enter _ | Event.Syscall_exit _ -> ()
          | k ->
              obj b ~first ~name:(Event.kind_name k) ~cat:"machine" ~ph:"i"
                ~ts:(us_of_cycles e.ts) ~pid:pid_cpu ~tid:e.cpu ~scope:"t"
                ~args:(("tid", string_of_int e.tid) :: instant_args k)
                ())
        events)
    groups;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(** Single-run export: {!chrome_json_groups} with one group. *)
let chrome_json ?name_of_nr ?(name = "trace") (events : Event.t list) : string
    =
  chrome_json_groups ?name_of_nr [ (name, events) ]

(** Request-track export: one thread track per request id under a
    single "requests" process, each carrying that request's causal
    phase slices as complete ["X"] events — so a p99 outlier reads as
    one horizontal lane whose colors show where its latency went.

    Deliberately generic: takes [(rid, segments)] pairs where a
    segment is [(phase name, start cycles, end cycles)], so it knows
    nothing about the span recorder that produced them.  Segments are
    expected non-overlapping and in start order per request (the
    recorder guarantees both); timestamps are microseconds like
    {!chrome_json}. *)
let request_tracks_json ?(name = "requests")
    (tracks : (int * (string * int64 * int64) list) list) : string =
  let b = Buffer.create 4096 in
  let first = ref true in
  Buffer.add_string b "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
  meta b ~first ~name:"process_name" ~pid:1 ~value:name ();
  List.iter
    (fun (rid, segs) ->
      meta b ~first ~name:"thread_name" ~pid:1 ~tid:rid
        ~value:(Printf.sprintf "request %d" rid) ();
      List.iter
        (fun (phase, s_start, s_end) ->
          let ts = us_of_cycles s_start in
          let dur = us_of_cycles (Int64.sub s_end s_start) in
          obj b ~first ~name:phase ~cat:"request" ~ph:"X" ~ts ~dur ~pid:1
            ~tid:rid
            ~args:[ ("rid", string_of_int rid) ]
            ())
        segs)
    tracks;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
