(** Aggregation over a traced run: syscall spans, per-mechanism
    dispatch-path counts, and syscall-latency histograms with
    p50/p90/p99 (via the streaming {!Sim_stats.Stats.Log_hist}
    sketch, so percentile memory is O(buckets) however many spans a
    run produced).

    Works on the event list {!Tracer.events} returns; knows nothing
    about the kernel, so syscall names are supplied by the caller
    ([?name_of_nr], e.g. [Defs.syscall_name]). *)

module Stats = Sim_stats.Stats

(** One completed (or blocked) syscall, paired from its
    enter/exit events. *)
type span = {
  sp_nr : int;
  sp_path : Event.dispatch_path;
  sp_tid : int;
  sp_cpu : int;
  sp_start : int64;  (** cycle time at syscall entry *)
  sp_dur : int64;  (** cycles from entry to exit (or to blocking) *)
  sp_ret : int64;
  sp_blocked : bool;
}

(** Pair enter/exit events into spans, per task.  Enter and exit are
    emitted by the same dispatcher invocation, so per tid they
    strictly alternate; a trailing unmatched enter (task died inside
    the dispatcher) is dropped. *)
let spans (events : Event.t list) : span list =
  let pending : (int, Event.t * int * Event.dispatch_path) Hashtbl.t =
    Hashtbl.create 16
  in
  let out = ref [] in
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Syscall_enter { nr; path } ->
          Hashtbl.replace pending e.tid (e, nr, path)
      | Event.Syscall_exit { nr; path; ret; blocked } -> (
          match Hashtbl.find_opt pending e.tid with
          | Some (enter, enr, _) when enr = nr ->
              Hashtbl.remove pending e.tid;
              out :=
                {
                  sp_nr = nr;
                  sp_path = path;
                  sp_tid = e.tid;
                  sp_cpu = enter.cpu;
                  sp_start = enter.ts;
                  sp_dur = Int64.sub e.ts enter.ts;
                  sp_ret = ret;
                  sp_blocked = blocked;
                }
                :: !out
          | _ -> ())
      | _ -> ())
    events;
  List.rev !out

(** Dispatch-path histogram: completed-span count per mechanism, every
    path listed (zeros included) in {!Event.all_paths} order. *)
let path_counts (spans_ : span list) : (Event.dispatch_path * int) list =
  List.map
    (fun p ->
      (p, List.length (List.filter (fun s -> s.sp_path = p) spans_)))
    Event.all_paths

(** Latency statistics for one (syscall nr, dispatch path) bucket. *)
type latency_row = {
  lr_nr : int;
  lr_path : Event.dispatch_path;
  lr_count : int;
  lr_p50 : float;
  lr_p90 : float;
  lr_p99 : float;
  lr_max : float;  (** all in cycles *)
}

(** Per-(nr, path) latency rows over non-blocked spans, busiest bucket
    first.  Durations stream into one log-bucketed sketch per bucket:
    percentiles come out with bounded relative error (1/64 a bucket's
    width) without ever materializing the sample. *)
let latency_rows (spans_ : span list) : latency_row list =
  let buckets : (int * Event.dispatch_path, Stats.Log_hist.t) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun s ->
      if not s.sp_blocked then
        let key = (s.sp_nr, s.sp_path) in
        let h =
          match Hashtbl.find_opt buckets key with
          | Some h -> h
          | None ->
              let h = Stats.Log_hist.create ~sub:64 () in
              Hashtbl.replace buckets key h;
              h
        in
        Stats.Log_hist.add h (Int64.to_float s.sp_dur))
    spans_;
  Hashtbl.fold
    (fun (nr, path) h acc ->
      {
        lr_nr = nr;
        lr_path = path;
        lr_count = Stats.Log_hist.count h;
        lr_p50 = Stats.Log_hist.percentile h 50.0;
        lr_p90 = Stats.Log_hist.percentile h 90.0;
        lr_p99 = Stats.Log_hist.percentile h 99.0;
        lr_max = Stats.Log_hist.max_value h;
      }
      :: acc)
    buckets []
  |> List.sort (fun a b -> compare (b.lr_count, a.lr_nr) (a.lr_count, b.lr_nr))

(** Latency histogram (cycles) for one syscall number across all
    paths, via {!Sim_stats.Stats.histogram}. *)
let latency_histogram ?(bins = 10) (spans_ : span list) ~nr =
  Stats.histogram ~bins
    (List.filter_map
       (fun s ->
         if s.sp_nr = nr && not s.sp_blocked then
           Some (Int64.to_float s.sp_dur)
         else None)
       spans_)

(** Count of non-span events per kind name (rewrites, flips, ...). *)
let kind_counts (events : Event.t list) : (string * int) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Syscall_enter _ | Event.Syscall_exit _ -> ()
      | k ->
          let name = Event.kind_name k in
          Hashtbl.replace tbl name
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name)))
    events;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(** The human-readable report: dispatch-path counts, other-event
    counts, the per-syscall latency table, and the ring overflow
    accounting. *)
let report ?(name_of_nr = string_of_int) (tr : Tracer.t) : string =
  let events = Tracer.events tr in
  let spans_ = spans events in
  let b = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out "trace summary: %d events retained, %d dropped (ring overflow)\n"
    (Tracer.retained tr) (Tracer.dropped tr);
  out "\ndispatch paths (completed syscalls):\n";
  List.iter
    (fun (p, n) -> out "  %-12s %8d\n" (Event.path_name p) n)
    (path_counts spans_);
  (match kind_counts events with
  | [] -> ()
  | kinds ->
      out "\nother events:\n";
      List.iter (fun (k, n) -> out "  %-18s %8d\n" k n) kinds);
  out "\nsyscall latency (cycles):\n";
  out "  %-16s %-12s %7s %8s %8s %8s %8s\n" "syscall" "path" "count" "p50"
    "p90" "p99" "max";
  List.iter
    (fun r ->
      out "  %-16s %-12s %7d %8.0f %8.0f %8.0f %8.0f\n" (name_of_nr r.lr_nr)
        (Event.path_name r.lr_path) r.lr_count r.lr_p50 r.lr_p90 r.lr_p99
        r.lr_max)
    (latency_rows spans_);
  Buffer.contents b
