(** The typed event model of the machine-wide tracer.

    One flat variant covers everything the simulator's interposition
    story needs to make inspectable: syscall entry/exit tagged with
    the dispatch path that carried it (the paper's Table II axis),
    signal delivery and [rt_sigreturn], SUD selector flips, the
    lazypoline [syscall] -> [call rax] rewrites, zpoline's load-time
    sweep, scheduler context switches, address-space mutations
    ([mmap]/[mprotect]/[munmap]), decoded-instruction-cache
    invalidations and JIT code publication.

    Events are plain data: emitting one never charges simulated
    cycles and never touches task state, so a traced run is
    cycle-for-cycle identical to an untraced one (asserted by a
    qcheck property in test_trace). *)

(** How a syscall reached (or was denied) the kernel's dispatcher. *)
type dispatch_path =
  | Sud_sigsys  (** SUD intercepted it: the lazypoline/SUD slow path *)
  | Fast_path  (** a rewritten [call rax] site, via the interposer stub *)
  | Seccomp_path  (** a seccomp filter decided its fate *)
  | Ptrace_path  (** dispatched under ptrace syscall-stops *)
  | Direct  (** plain [syscall], no interposition on the way in *)

let path_name = function
  | Sud_sigsys -> "sud-sigsys"
  | Fast_path -> "fast-path"
  | Seccomp_path -> "seccomp"
  | Ptrace_path -> "ptrace-stop"
  | Direct -> "direct"

let all_paths = [ Sud_sigsys; Fast_path; Seccomp_path; Ptrace_path; Direct ]

type kind =
  | Syscall_enter of { nr : int; path : dispatch_path }
  | Syscall_exit of {
      nr : int;
      path : dispatch_path;
      ret : int64;
      blocked : bool;  (** the task blocked; the syscall will retry *)
    }
  | Signal_deliver of { signo : int; handler : int }
  | Sigreturn
  | Selector_flip of { allow : bool }
      (** the interposer flipped the SUD selector byte *)
  | Rewrite of { site : int }
      (** lazypoline patched [syscall] -> [call rax] at [site] *)
  | Sweep of { sites : int; bytes_scanned : int }
      (** zpoline's load-time linear sweep finished *)
  | Context_switch of { prev_tid : int; next_tid : int }
  | Task_spawn of { child_tid : int }
  | Mmap of { addr : int; len : int; prot_exec : bool }
  | Munmap of { addr : int; len : int }
  | Mprotect of { addr : int; len : int; prot_exec : bool }
  | Icache_invalidate of { page : int }
      (** a stale page generation dropped a page's decoded entries *)
  | Jit_emit of { addr : int; len : int }
      (** freshly written pages became executable (W -> X flip): JIT
          emission, or an interposer re-publishing patched code *)

type t = {
  ts : int64;  (** simulated cycle time of the emitting CPU *)
  tid : int;  (** current task, or -1 when none *)
  cpu : int;  (** simulated CPU the event happened on *)
  seq : int;  (** tracer-wide emission order, to break timestamp ties *)
  kind : kind;
}

let kind_name = function
  | Syscall_enter _ -> "syscall_enter"
  | Syscall_exit _ -> "syscall_exit"
  | Signal_deliver _ -> "signal_deliver"
  | Sigreturn -> "sigreturn"
  | Selector_flip _ -> "selector_flip"
  | Rewrite _ -> "rewrite"
  | Sweep _ -> "sweep"
  | Context_switch _ -> "context_switch"
  | Task_spawn _ -> "task_spawn"
  | Mmap _ -> "mmap"
  | Munmap _ -> "munmap"
  | Mprotect _ -> "mprotect"
  | Icache_invalidate _ -> "icache_invalidate"
  | Jit_emit _ -> "jit_emit"

(** Debug rendering, one line per event. *)
let to_string (e : t) =
  let k =
    match e.kind with
    | Syscall_enter { nr; path } ->
        Printf.sprintf "syscall_enter nr=%d path=%s" nr (path_name path)
    | Syscall_exit { nr; path; ret; blocked } ->
        Printf.sprintf "syscall_exit nr=%d path=%s ret=%Ld%s" nr
          (path_name path) ret
          (if blocked then " (blocked)" else "")
    | Signal_deliver { signo; handler } ->
        Printf.sprintf "signal_deliver signo=%d handler=0x%x" signo handler
    | Sigreturn -> "sigreturn"
    | Selector_flip { allow } ->
        Printf.sprintf "selector_flip %s" (if allow then "ALLOW" else "BLOCK")
    | Rewrite { site } -> Printf.sprintf "rewrite site=0x%x" site
    | Sweep { sites; bytes_scanned } ->
        Printf.sprintf "sweep sites=%d bytes=%d" sites bytes_scanned
    | Context_switch { prev_tid; next_tid } ->
        Printf.sprintf "context_switch %d->%d" prev_tid next_tid
    | Task_spawn { child_tid } -> Printf.sprintf "task_spawn child=%d" child_tid
    | Mmap { addr; len; prot_exec } ->
        Printf.sprintf "mmap 0x%x+%d%s" addr len (if prot_exec then " X" else "")
    | Munmap { addr; len } -> Printf.sprintf "munmap 0x%x+%d" addr len
    | Mprotect { addr; len; prot_exec } ->
        Printf.sprintf "mprotect 0x%x+%d%s" addr len
          (if prot_exec then " X" else "")
    | Icache_invalidate { page } -> Printf.sprintf "icache_invalidate pn=%d" page
    | Jit_emit { addr; len } -> Printf.sprintf "jit_emit 0x%x+%d" addr len
  in
  Printf.sprintf "[%Ld cpu%d tid%d] %s" e.ts e.cpu e.tid k
