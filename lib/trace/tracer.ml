(** The machine-wide tracer handle: per-CPU bounded rings plus a
    global sequence counter.

    The kernel holds a [Tracer.t option]; every emit site guards on
    it, so a disabled tracer costs one pointer comparison and no
    allocation.  Emitting never charges simulated cycles and never
    mutates task, memory or CPU state — tracing is observation only,
    and the simulated machine is bit-identical with it on or off. *)

type t = {
  rings : Event.t Ring.t array;  (** one ring per simulated CPU *)
  mutable seq : int;  (** global emission order *)
}

let default_capacity = 1 lsl 16

(** [create ~ncpus ()] makes a tracer with one [capacity]-event ring
    per CPU (default {!default_capacity}). *)
let create ?(capacity = default_capacity) ~ncpus () =
  if ncpus <= 0 then invalid_arg "Tracer.create: non-positive ncpus";
  { rings = Array.init ncpus (fun _ -> Ring.create capacity); seq = 0 }

let ncpus t = Array.length t.rings

(** Record [kind] at simulated time [ts] on [cpu] for task [tid].
    Out-of-range CPU indices (external actors) land on ring 0. *)
let emit t ~cpu ~tid ~ts kind =
  let cpu = if cpu < 0 || cpu >= Array.length t.rings then 0 else cpu in
  let seq = t.seq in
  t.seq <- seq + 1;
  Ring.push t.rings.(cpu) { Event.ts; tid; cpu; seq; kind }

(** Events dropped across all rings (ring-full overflow). *)
let dropped t =
  Array.fold_left (fun acc r -> acc + Ring.dropped r) 0 t.rings

(** Events dropped on one CPU's ring (0 for out-of-range CPUs), for
    the per-CPU drop probes in /proc/metrics. *)
let dropped_on t cpu =
  if cpu < 0 || cpu >= Array.length t.rings then 0
  else Ring.dropped t.rings.(cpu)

(** Events offered across all rings, including dropped ones. *)
let emitted t = Array.fold_left (fun acc r -> acc + Ring.pushed r) 0 t.rings

let retained t = Array.fold_left (fun acc r -> acc + Ring.length r) 0 t.rings

(** All retained events, merged across CPUs and ordered by
    (timestamp, emission order).  Some emit sites stamp an event with
    the time an operation {e started} but emit it after nested events
    (e.g. a syscall-enter emitted together with its exit), so the
    per-ring order alone is not the timeline order. *)
let events t : Event.t list =
  let all =
    Array.fold_left (fun acc r -> List.rev_append (Ring.to_list r) acc) [] t.rings
  in
  List.sort
    (fun (a : Event.t) (b : Event.t) ->
      match Int64.compare a.ts b.ts with 0 -> compare a.seq b.seq | c -> c)
    all

let clear t =
  Array.iter Ring.clear t.rings;
  t.seq <- 0
