(** Request-flow observability: per-request causal spans and
    tail-latency attribution.

    The kernel holds an [Obs.t option] next to the tracer, metrics
    registry, profiler and auditor, under the same contract: [None]
    (the default) is the zero-cost path, attaching one never charges
    simulated cycles and never mutates task, memory or CPU state.  A
    spanned run is bit-identical — cycles, registers, memory, audit
    hash — to an unspanned one (the qcheck gate in test_obs).

    What it records, fed from three kinds of hook:

    - {b every} [charge] call, classified into a causal phase: app
      compute, interposer trampoline/selector work, kernel service
      (per syscall nr), or scheduler overhead.  Classification uses
      state the kernel already maintains ([in_kernel], the
      [trace_path] dispatch tag, the guest rip against registered
      interposer code ranges) plus a per-CPU staged syscall nr;
    - request causality: the load generator stamps a request id at
      issue time keyed by the server-side connection endpoint, the
      kernel claims it when a task first reads that connection, and
      the generator completes it when the response is fully received.
      Between claim and completion every cycle charged to the serving
      task — and every off-CPU gap, split into blocked vs
      runnable-but-unscheduled — is attributed to the request;
    - scheduling: task-on/task-off edges, so off-CPU time is
      attributed even though blocked CPUs advance their clocks
      without [charge] (the idle jump in [run_slice]).

    Memory is bounded everywhere: the in-flight table has a hard cap
    (overflowing requests are dropped and counted — the CI gate fails
    on a nonzero count), per-request phase segments are capped, the
    completed-request log is a sliding window, and the slow-request
    exemplars live in a top-k reservoir whose evictions are counted.
    Aggregate latency goes into a {!Sim_stats.Stats.Log_hist} so a
    100k-request run costs O(buckets), not O(requests). *)

module Stats = Sim_stats.Stats

(** Causal phase of a charged cycle (or of an off-CPU gap). *)
type phase =
  | Papp  (** guest application compute *)
  | Pinterp  (** interposer trampoline / selector / rewriter code *)
  | Pkernel of int
      (** simulated-kernel service; the payload is the syscall nr
          being dispatched, or [-1] for kernel work outside any
          dispatch (signal delivery, scheduler bookkeeping at
          [in_kernel > 0]) *)
  | Pblocked  (** off CPU, waiting on I/O / futex / sleep *)
  | Psched  (** runnable but unscheduled, or context-switch cost *)

let phase_name = function
  | Papp -> "app"
  | Pinterp -> "interposer"
  | Pkernel _ -> "kernel"
  | Pblocked -> "blocked"
  | Psched -> "sched"

(** One contiguous run of cycles in a single phase on a request's
    critical path — the Perfetto slice unit. *)
type seg = { s_phase : phase; s_start : int64; mutable s_end : int64 }

(** Per-request record: identity, the audit event-index window that
    explains it, per-phase cycle totals, and the (bounded) phase
    segments. *)
type req = {
  rid : int;
  conn : int;  (** server-side endpoint id carrying the request *)
  issue_ts : int64;  (** generator fired the request *)
  mutable claim_ts : int64;  (** kernel first read it; -1 until claimed *)
  mutable complete_ts : int64;  (** response fully received; -1 in flight *)
  mutable ev_lo : int;
      (** app-stream audit index of the first syscall serving this
          request (the claiming read), or -1 without an auditor *)
  mutable ev_hi : int;  (** app-stream audit index at completion *)
  mutable tid : int;  (** serving task, -1 until claimed *)
  mutable c_app : int64;
  mutable c_interp : int64;
  mutable c_kernel : int64;
  k_by_nr : (int, int64 ref) Hashtbl.t;  (** kernel cycles per syscall nr *)
  mutable c_blocked : int64;
  mutable c_sched : int64;
  mutable segs : seg list;  (** newest first *)
  mutable nsegs : int;
  mutable segs_truncated : bool;
  mutable off_at : int64;  (** went off CPU at this time; -1 while on *)
  mutable off_blocked : bool;  (** the off-CPU reason was a block *)
  site_cyc : (int, int64 ref) Hashtbl.t;
      (** kernel cycles per syscall call-site PC inside this request's
          window, fed by the provenance ledger when one is attached
          (bounded; empty without one) *)
  mutable site_dropped : bool;  (** distinct-site cap hit *)
}

let latency r =
  if r.complete_ts < 0L then -1L else Int64.sub r.complete_ts r.issue_ts

(** Segments oldest-first, for export. *)
let segments r = List.rev r.segs

(** Per-phase totals of one request as [(name, cycles)] rows in
    canonical order (kernel aggregated across nrs). *)
let req_phases r =
  [
    ("app", r.c_app);
    ("interposer", r.c_interp);
    ("kernel", r.c_kernel);
    ("blocked", r.c_blocked);
    ("sched", r.c_sched);
  ]

type t = {
  ncpus : int;
  cur_nr : int array;
      (** syscall nr being dispatched on each CPU, -1 outside any
          dispatch — staged at syscall entry, restored around nested
          kernel services, self-healed with [in_kernel] *)
  active : req option array;  (** per-CPU resolved request slot *)
  (* machine-wide phase accumulators over every charged cycle *)
  mutable m_app : int64;
  mutable m_interp : int64;
  mutable m_kernel : int64;
  m_kernel_by_nr : (int, int64 ref) Hashtbl.t;
  mutable m_sched : int64;
  mutable baseline : int64 array;  (** per-CPU clocks at attach *)
  mutable ranges : (int * int) list;  (** interposer code [lo, hi) *)
  conn_pending : (int, int) Hashtbl.t;  (** conn id -> issued rid *)
  by_tid : (int, req) Hashtbl.t;  (** serving task -> its current request *)
  inflight : (int, req) Hashtbl.t;  (** rid -> record *)
  max_inflight : int;
  mutable overflow : int;  (** issues dropped: in-flight table full *)
  topk : int;
  mutable reservoir : req list;  (** slowest completed, latency ascending *)
  mutable evictions : int;  (** exemplars pushed out of the reservoir *)
  max_completed : int;
  mutable completed : req list;  (** newest first, sliding window *)
  mutable ncompleted_kept : int;
  mutable completed_dropped : int;
  mutable n_issued : int;
  mutable n_completed : int;
  lat : Stats.Log_hist.t;  (** request latency, cycles *)
  max_segs : int;
}

let create ?(topk = 16) ?(max_inflight = 4096) ?(max_completed = 1024)
    ?(max_segs = 512) ?(sub = 32) ~ncpus () =
  if ncpus <= 0 then invalid_arg "Obs.create: non-positive ncpus";
  {
    ncpus;
    cur_nr = Array.make ncpus (-1);
    active = Array.make ncpus None;
    m_app = 0L;
    m_interp = 0L;
    m_kernel = 0L;
    m_kernel_by_nr = Hashtbl.create 64;
    m_sched = 0L;
    baseline = Array.make ncpus 0L;
    ranges = [];
    conn_pending = Hashtbl.create 64;
    by_tid = Hashtbl.create 16;
    inflight = Hashtbl.create 256;
    max_inflight = max 1 max_inflight;
    overflow = 0;
    topk = max 1 topk;
    reservoir = [];
    evictions = 0;
    max_completed = max 0 max_completed;
    completed = [];
    ncompleted_kept = 0;
    completed_dropped = 0;
    n_issued = 0;
    n_completed = 0;
    lat = Stats.Log_hist.create ~sub ();
    max_segs = max 8 max_segs;
  }

(** Snapshot the per-CPU clocks the accounting starts from; total
    machine time in {!totals} is measured against it. *)
let set_baseline t clks =
  Array.blit clks 0 t.baseline 0 (min (Array.length clks) t.ncpus)

(** Register an interposer code range [\[lo, hi)]; guest cycles at a
    rip inside any registered range classify as {!Pinterp} even
    before a dispatch-path tag is staged. *)
let add_range t ~lo ~hi = t.ranges <- (lo, hi) :: t.ranges

let in_interp t rip =
  List.exists (fun (lo, hi) -> rip >= lo && rip < hi) t.ranges

let set_cur_nr t cpu nr = if cpu >= 0 && cpu < t.ncpus then t.cur_nr.(cpu) <- nr
let cur_nr t cpu = if cpu >= 0 && cpu < t.ncpus then t.cur_nr.(cpu) else -1

let bump tbl nr c =
  match Hashtbl.find_opt tbl nr with
  | Some r -> r := Int64.add !r c
  | None -> Hashtbl.replace tbl nr (ref c)

(* Append [start, stop) in [phase] to the request's segment list,
   coalescing contiguous same-phase runs.  Cross-CPU migration can
   hand us a start before the previous segment's end (per-CPU clocks
   are not globally ordered); the displayed segment is clamped to
   keep the track monotone — the cycle accumulators stay exact. *)
let seg_append t r ~phase ~start ~stop =
  let start =
    match r.segs with s :: _ when s.s_end > start -> s.s_end | _ -> start
  in
  let stop = if stop < start then start else stop in
  if stop > start then
    match r.segs with
    | s :: _ when s.s_phase = phase && s.s_end = start -> s.s_end <- stop
    | _ ->
        if r.nsegs >= t.max_segs then r.segs_truncated <- true
        else begin
          r.segs <- { s_phase = phase; s_start = start; s_end = stop } :: r.segs;
          r.nsegs <- r.nsegs + 1
        end

let req_charge r ~phase ~cycles =
  (match phase with
  | Papp -> r.c_app <- Int64.add r.c_app cycles
  | Pinterp -> r.c_interp <- Int64.add r.c_interp cycles
  | Pkernel nr ->
      r.c_kernel <- Int64.add r.c_kernel cycles;
      bump r.k_by_nr nr cycles
  | Pblocked -> r.c_blocked <- Int64.add r.c_blocked cycles
  | Psched -> r.c_sched <- Int64.add r.c_sched cycles);
  ()

(** The per-charge hook: [cycles] were just charged on [cpu] over
    simulated time [\[start, start+cycles)], classified as [phase].
    Feeds both the machine-wide accumulators and, when the CPU is
    serving a claimed request, that request's critical path. *)
let on_charge t ~cpu ~start ~cycles ~phase =
  if cycles > 0 then begin
    let c = Int64.of_int cycles in
    (match phase with
    | Papp -> t.m_app <- Int64.add t.m_app c
    | Pinterp -> t.m_interp <- Int64.add t.m_interp c
    | Pkernel nr ->
        t.m_kernel <- Int64.add t.m_kernel c;
        bump t.m_kernel_by_nr nr c
    | Psched | Pblocked -> t.m_sched <- Int64.add t.m_sched c);
    match if cpu >= 0 && cpu < t.ncpus then t.active.(cpu) else None with
    | None -> ()
    | Some r ->
        req_charge r ~phase ~cycles:c;
        seg_append t r ~phase ~start ~stop:(Int64.add start c)
  end

(* Per-request distinct call sites are bounded: a server loop touches
   a handful, and the cap keeps a hostile workload from growing an
   exemplar without bound. *)
let max_req_sites = 64

(** The provenance ledger observed a dispatch from call-site PC
    [site] costing [cycles] of kernel time on [cpu]: attribute it to
    the request being served there, so exemplars can name the
    hottest call site of their window. *)
let note_site t ~cpu ~site ~cycles =
  match if cpu >= 0 && cpu < t.ncpus then t.active.(cpu) else None with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.site_cyc site with
      | Some c -> c := Int64.add !c cycles
      | None ->
          if Hashtbl.length r.site_cyc >= max_req_sites then
            r.site_dropped <- true
          else Hashtbl.replace r.site_cyc site (ref cycles))

(** The call site that cost the most kernel cycles inside [r]'s
    window, as [(pc, cycles)]; ties break to the lower PC so the
    answer is deterministic.  [None] when no provenance ledger fed
    the run. *)
let hot_site r =
  Hashtbl.fold
    (fun pc c best ->
      match best with
      | Some (bpc, bc) when Int64.compare !c bc < 0 -> Some (bpc, bc)
      | Some (bpc, bc) when !c = bc && bpc < pc -> Some (bpc, bc)
      | _ -> Some (pc, !c))
    r.site_cyc None

(** {1 Request lifecycle} *)

(** The load generator fired request [rid] on the connection whose
    server-side endpoint id is [conn] at time [ts]. *)
let note_issue t ~rid ~conn ~ts =
  t.n_issued <- t.n_issued + 1;
  if Hashtbl.length t.inflight >= t.max_inflight then
    t.overflow <- t.overflow + 1
  else begin
    let r =
      {
        rid;
        conn;
        issue_ts = ts;
        claim_ts = -1L;
        complete_ts = -1L;
        ev_lo = -1;
        ev_hi = -1;
        tid = -1;
        c_app = 0L;
        c_interp = 0L;
        c_kernel = 0L;
        k_by_nr = Hashtbl.create 8;
        c_blocked = 0L;
        c_sched = 0L;
        segs = [];
        nsegs = 0;
        segs_truncated = false;
        off_at = -1L;
        off_blocked = false;
        site_cyc = Hashtbl.create 8;
        site_dropped = false;
      }
    in
    Hashtbl.replace t.inflight rid r;
    Hashtbl.replace t.conn_pending conn rid
  end

(** The kernel observed task [tid] (running on [cpu]) read fresh data
    from connection [conn]: the pending request on that connection —
    if any — is now being served.  [ev] is the app-stream audit index
    the claiming syscall will be logged at (-1 without an auditor).
    The issue-to-claim gap is queue wait: runnable work nobody had
    picked up yet, charged to {!Psched}. *)
let claim t ~cpu ~conn ~tid ~ts ~ev =
  match Hashtbl.find_opt t.conn_pending conn with
  | None -> ()
  | Some rid -> (
      Hashtbl.remove t.conn_pending conn;
      match Hashtbl.find_opt t.inflight rid with
      | None -> ()
      | Some r ->
          r.claim_ts <- ts;
          r.ev_lo <- ev;
          r.tid <- tid;
          r.off_at <- -1L;
          if ts > r.issue_ts then begin
            req_charge r ~phase:Psched ~cycles:(Int64.sub ts r.issue_ts);
            seg_append t r ~phase:Psched ~start:r.issue_ts ~stop:ts
          end;
          Hashtbl.replace t.by_tid tid r;
          if cpu >= 0 && cpu < t.ncpus then t.active.(cpu) <- Some r)

(** Scheduler edge: [tid] starts running on [cpu] at [ts].  If it is
    serving a request and was off CPU, the gap is attributed as
    blocked or scheduler wait depending on how it went off. *)
let task_on t ~cpu ~tid ~ts =
  match Hashtbl.find_opt t.by_tid tid with
  | None -> ()
  | Some r ->
      if r.off_at >= 0L && ts > r.off_at then begin
        let phase = if r.off_blocked then Pblocked else Psched in
        req_charge r ~phase ~cycles:(Int64.sub ts r.off_at);
        seg_append t r ~phase ~start:r.off_at ~stop:ts
      end;
      r.off_at <- -1L;
      if cpu >= 0 && cpu < t.ncpus then t.active.(cpu) <- Some r

(** Scheduler edge: [tid] leaves [cpu] at [ts]; [blocked] tells
    whether it went off waiting (vs preempted while runnable). *)
let task_off t ~cpu ~tid ~ts ~blocked =
  (match Hashtbl.find_opt t.by_tid tid with
  | None -> ()
  | Some r ->
      r.off_at <- ts;
      r.off_blocked <- blocked);
  if cpu >= 0 && cpu < t.ncpus then t.active.(cpu) <- None

(* Insert a completed request into the top-k reservoir (latency
   ascending); the fastest exemplar is evicted when full. *)
let reservoir_insert t r =
  let l = latency r in
  let rec ins = function
    | [] -> [ r ]
    | x :: rest as all -> if latency x >= l then r :: all else x :: ins rest
  in
  if List.length t.reservoir < t.topk then t.reservoir <- ins t.reservoir
  else
    match t.reservoir with
    | fastest :: rest when latency fastest < l ->
        t.evictions <- t.evictions + 1;
        t.reservoir <- ins rest
    | _ -> ()

(** The generator gave up on [rid] (connection died mid-request):
    forget it without polluting the latency books. *)
let abandon t ~rid =
  match Hashtbl.find_opt t.inflight rid with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.inflight rid;
      Hashtbl.remove t.conn_pending r.conn;
      (match Hashtbl.find_opt t.by_tid r.tid with
      | Some cur when cur == r -> Hashtbl.remove t.by_tid r.tid
      | _ -> ());
      for cpu = 0 to t.ncpus - 1 do
        match t.active.(cpu) with
        | Some a when a == r -> t.active.(cpu) <- None
        | _ -> ()
      done

(** The generator received the last byte of the response for [rid] at
    [ts]; [ev_hi] is the current app-stream audit index (every
    syscall that served the request is at an index <= it). *)
let complete t ~rid ~ts ~ev_hi =
  match Hashtbl.find_opt t.inflight rid with
  | None -> ()
  | Some r ->
      Hashtbl.remove t.inflight rid;
      if r.off_at >= 0L && ts > r.off_at then begin
        let phase = if r.off_blocked then Pblocked else Psched in
        req_charge r ~phase ~cycles:(Int64.sub ts r.off_at);
        seg_append t r ~phase ~start:r.off_at ~stop:ts;
        r.off_at <- -1L
      end;
      r.complete_ts <- ts;
      r.ev_hi <- ev_hi;
      t.n_completed <- t.n_completed + 1;
      Stats.Log_hist.add t.lat (Int64.to_float (latency r));
      (match Hashtbl.find_opt t.by_tid r.tid with
      | Some cur when cur == r ->
          Hashtbl.remove t.by_tid r.tid;
          for cpu = 0 to t.ncpus - 1 do
            match t.active.(cpu) with
            | Some a when a == r -> t.active.(cpu) <- None
            | _ -> ()
          done
      | _ -> ());
      reservoir_insert t r;
      if t.max_completed > 0 then begin
        t.completed <- r :: t.completed;
        if t.ncompleted_kept >= t.max_completed then begin
          t.completed <-
            List.filteri (fun i _ -> i < t.max_completed) t.completed;
          t.completed_dropped <- t.completed_dropped + 1
        end
        else t.ncompleted_kept <- t.ncompleted_kept + 1
      end

(** {1 Reading the results} *)

type totals = {
  t_app : int64;
  t_interp : int64;
  t_kernel : int64;
  t_kernel_by_nr : (int * int64) list;  (** cycles per nr, busiest first *)
  t_sched : int64;
  t_blocked : int64;  (** derived: un-charged clock advance (idle CPUs) *)
  t_other : int64;  (** accounting slack; 0 unless the books disagree *)
  t_total : int64;  (** total per-CPU clock advance since attach *)
}

(** Machine-wide attribution against the CPUs' current clocks.  Every
    charged cycle lands in app/interposer/kernel/sched; the only
    other way a simulated clock advances is the idle jump for a CPU
    with nothing runnable, so total minus charged is the blocked/idle
    bucket — and [t_other] is exactly the residue of that identity. *)
let totals t ~clks =
  let total = ref 0L in
  Array.iteri
    (fun i c ->
      if i < t.ncpus then total := Int64.add !total (Int64.sub c t.baseline.(i)))
    clks;
  let charged =
    Int64.add (Int64.add t.m_app t.m_interp) (Int64.add t.m_kernel t.m_sched)
  in
  let blocked = Int64.sub !total charged in
  let blocked = if blocked < 0L then 0L else blocked in
  let by_nr =
    Hashtbl.fold (fun nr c acc -> (nr, !c) :: acc) t.m_kernel_by_nr []
    |> List.sort (fun (_, a) (_, b) -> Int64.compare b a)
  in
  {
    t_app = t.m_app;
    t_interp = t.m_interp;
    t_kernel = t.m_kernel;
    t_kernel_by_nr = by_nr;
    t_sched = t.m_sched;
    t_blocked = blocked;
    t_other = Int64.sub !total (Int64.add charged blocked);
    t_total = !total;
  }

let totals_rows tt =
  [
    ("app", tt.t_app);
    ("interposer", tt.t_interp);
    ("kernel", tt.t_kernel);
    ("sched", tt.t_sched);
    ("blocked", tt.t_blocked);
    ("other", tt.t_other);
  ]

(** Completed requests still retained, completion order. *)
let completed t = List.rev t.completed

(** Top-k slowest completed requests, slowest first. *)
let exemplars t = List.rev t.reservoir

let find_exemplar t rid = List.find_opt (fun r -> r.rid = rid) t.reservoir
let latency_hist t = t.lat
let issued t = t.n_issued
let completed_count t = t.n_completed
let overflow t = t.overflow
let evictions t = t.evictions
let completed_dropped t = t.completed_dropped

(** {1 The sidecar exemplar index}

    [simtrace record --wrk] writes the top-k exemplars next to the
    audit log as [<log>.spans] so a later [simtrace debug
    --seek-request] can map a request id to its audit event window
    without re-running the workload. *)

(* /2 appended the hottest call site of each exemplar's window as a
   trailing column; the rid stays field 2, so tooling that extracts
   ids positionally keeps working, and /1 files still parse. *)
let sidecar_artifact_kind = "spans"
let sidecar_artifact_version = 2

let sidecar t : string =
  let b = Buffer.create 256 in
  Sim_artifact.Artifact.add_magic b ~kind:sidecar_artifact_kind
    ~version:sidecar_artifact_version;
  List.iter
    (fun r ->
      let site = match hot_site r with Some (pc, _) -> pc | None -> -1 in
      Buffer.add_string b
        (Printf.sprintf "R %d %Ld %Ld %d %d %Ld %d\n" r.rid r.issue_ts
           r.complete_ts r.ev_lo r.ev_hi (latency r) site))
    (exemplars t);
  Buffer.contents b

type sidecar_row = {
  x_rid : int;
  x_issue : int64;
  x_complete : int64;
  x_ev_lo : int;
  x_ev_hi : int;
  x_latency : int64;
  x_site : int;  (** hottest call-site PC of the window, -1 if unknown *)
}

(** Parse a sidecar produced by {!sidecar} (/2, or the site-less /1);
    rows keep file (slowest first) order.  Raises [Failure] on a bad
    magic or row. *)
let parse_sidecar ?file (s : string) : sidecar_row list =
  match
    Sim_artifact.Artifact.parse_magic ?file ~kind:sidecar_artifact_kind
      ~accept:[ 1; sidecar_artifact_version ] s
  with
  | Error e -> failwith e
  | Ok (v, rows) ->
      let v1 = v = 1 in
      List.filter_map
        (fun line ->
          let line = String.trim line in
          if line = "" then None
          else
            let mk rid issue complete lo hi lat site =
              Some
                {
                  x_rid = rid;
                  x_issue = issue;
                  x_complete = complete;
                  x_ev_lo = lo;
                  x_ev_hi = hi;
                  x_latency = lat;
                  x_site = site;
                }
            in
            try
              if v1 then
                Scanf.sscanf line "R %d %Ld %Ld %d %d %Ld"
                  (fun rid issue complete lo hi lat ->
                    mk rid issue complete lo hi lat (-1))
              else
                Scanf.sscanf line "R %d %Ld %Ld %d %d %Ld %d" mk
            with Scanf.Scan_failure _ | Failure _ | End_of_file ->
              failwith ("bad spans sidecar row: " ^ line))
        rows

(** {1 Reports} *)

let pct v total =
  if total <= 0L then 0.0
  else 100.0 *. Int64.to_float v /. Int64.to_float total

(** Human-readable report: machine phase breakdown, request-latency
    percentiles and the exemplar table. *)
let report ?(name_of_nr = string_of_int)
    ?(name_of_site = fun pc -> Printf.sprintf "0x%x" pc) t ~clks : string =
  let b = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let tt = totals t ~clks in
  out "phase attribution (machine-wide, cycles):\n";
  List.iter
    (fun (name, c) ->
      out "  %-12s %14Ld  %5.1f%%\n" name c (pct c tt.t_total))
    (totals_rows tt);
  out "  %-12s %14Ld\n" "total" tt.t_total;
  (match tt.t_kernel_by_nr with
  | [] -> ()
  | rows ->
      out "\nkernel cycles by syscall:\n";
      List.iteri
        (fun i (nr, c) ->
          if i < 12 then out "  %-16s %14Ld\n" (name_of_nr nr) c)
        rows);
  out "\nrequests: %d issued, %d completed" t.n_issued t.n_completed;
  if t.overflow > 0 then out ", %d DROPPED (in-flight cap)" t.overflow;
  out "\n";
  let h = t.lat in
  if Stats.Log_hist.count h > 0 then begin
    out "request latency (cycles): ";
    List.iter
      (fun p ->
        out "p%g=%.0f " p (Stats.Log_hist.percentile h p))
      [ 50.0; 90.0; 99.0; 99.9 ];
    out "max=%.0f\n" (Stats.Log_hist.max_value h)
  end;
  (match exemplars t with
  | [] -> ()
  | ex ->
      out "\nslowest requests (top-%d reservoir, %d evictions):\n" t.topk
        t.evictions;
      out "  %6s %12s %10s %10s  %s\n" "rid" "latency" "ev_lo" "ev_hi"
        "phase breakdown";
      List.iter
        (fun r ->
          let parts =
            req_phases r
            |> List.filter (fun (_, c) -> c > 0L)
            |> List.map (fun (n, c) -> Printf.sprintf "%s=%Ld" n c)
            |> String.concat " "
          in
          let hot =
            match hot_site r with
            | Some (pc, c) ->
                Printf.sprintf "  hot=%s (%Ld)" (name_of_site pc) c
            | None -> ""
          in
          out "  %6d %12Ld %10d %10d  %s%s\n" r.rid (latency r) r.ev_lo
            r.ev_hi parts hot)
        ex);
  Buffer.contents b
