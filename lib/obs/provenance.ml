(** Syscall provenance: guest stack unwinding and a per-call-site
    interposition ledger.

    Lazypoline's central claim is *per-site* lazy specialization: the
    SIGSYS handler rewrites individual [syscall] instructions, so
    whether a dispatch takes the fast path is a property of the call
    site, not of the process.  Every other observability layer
    (tracer, metrics, spans) attributes cost per CPU, per request or
    per syscall number — this one attributes it per {e site}.

    The kernel holds a [Provenance.t option] next to the tracer,
    metrics registry, profiler, auditor and span recorder, under the
    same contract: [None] (the default) is the zero-cost path, and
    attaching one never charges simulated cycles and never mutates
    task, memory or CPU state.  A provenanced run is bit-identical —
    cycles, registers, memory, audit hash — to a bare one (the qcheck
    gate in test_obs).

    At every audited application syscall the kernel hands us:

    - the {b site PC} of the [syscall] (or rewritten [call rax])
      instruction that issued it.  For direct dispatches that is
      [rip - 2]; for interposed dispatches the stub's return slot
      still holds the application return address, so the site is
      recovered exactly the way the interposer entry itself does;
    - a bounded {b guest backtrace}, walked over the rbp frame chain
      minicc codegen emits ([push rbp; mov rbp, rsp] prologues).  The
      walker never faults: every load goes through {!Mem.peek_u64}
      under a handler, depth is capped, and the chain must be
      8-aligned and strictly increasing to continue;
    - the dispatch path, the kernel-cycle cost of the dispatch and
      the app-stream audit index it was recorded at.

    The ledger keys on (site PC, syscall nr) and keeps the
    dispatch-path mix, first/last-seen cycle, the first audit index
    (so the time-travel debugger can seek to a site), a
    {!Sim_stats.Stats.Log_hist} of per-dispatch kernel cycles, and
    the merged unwind stacks for collapsed-flamegraph output.
    Rewrite events (lazypoline's lazy SIGSYS rewrite, explicit
    [rewrite_site], zpoline's load-time sweep) stamp a separate
    per-PC table, which is how the paper's Table II story becomes
    checkable per site: a lazypoline site's mix must be one SIGSYS
    hit followed by fast-path-only dispatches once its rewrite is
    stamped. *)

module Stats = Sim_stats.Stats
module Ev = Sim_trace.Event
open Sim_mem

(** Same path order as [Kmetrics.path_index], so exports line up. *)
let path_index = function
  | Ev.Sud_sigsys -> 0
  | Ev.Fast_path -> 1
  | Ev.Seccomp_path -> 2
  | Ev.Ptrace_path -> 3
  | Ev.Direct -> 4

let npaths = 5
let path_names = [| "sud_sigsys"; "fast_path"; "seccomp"; "ptrace"; "direct" |]

(** How a site's [syscall] byte pair got replaced with [call rax]. *)
type rewrite_kind =
  | Rw_lazy  (** lazypoline's SIGSYS slow path, on first execution *)
  | Rw_sweep  (** zpoline's load-time linear sweep *)
  | Rw_manual  (** explicit [Lazypoline.rewrite_site] (benchmarks) *)

let rewrite_kind_name = function
  | Rw_lazy -> "lazy"
  | Rw_sweep -> "sweep"
  | Rw_manual -> "manual"

type rewrite = {
  rw_pc : int;
  mutable rw_kind : rewrite_kind;
  mutable rw_count : int;  (** times this PC was (re)stamped *)
  mutable rw_first : int64;  (** cycle time of the first stamp *)
}

(** One (site PC, syscall nr) ledger entry. *)
type site = {
  s_pc : int;
  s_nr : int;
  s_paths : int array;  (** dispatch count per {!path_index} *)
  mutable s_first_seen : int64;
  mutable s_last_seen : int64;
  mutable s_first_ev : int;
      (** app-stream audit index of the first dispatch recorded from
          this site, or -1 without an auditor *)
  s_kcycles : Stats.Log_hist.t;  (** kernel cycles per dispatch *)
  s_stacks : (int list, int ref) Hashtbl.t;
      (** unwound caller chains (innermost first) -> dispatch count *)
  mutable s_stacks_dropped : int;  (** chains beyond the per-site cap *)
}

let site_count (s : site) = Array.fold_left ( + ) 0 s.s_paths
let site_cycles (s : site) = Stats.Log_hist.sum s.s_kcycles

type t = {
  sites : (int * int, site) Hashtbl.t;
  rewrites : (int, rewrite) Hashtbl.t;
  mutable syms : (int * string) array;  (** sorted by address *)
  max_depth : int;
  max_sites : int;
  mutable sites_dropped : int;  (** dispatches beyond the site cap *)
  max_stacks : int;
  sub : int;  (** Log_hist resolution for per-site cycle hists *)
  (* unwinder health, exported as sim_site_* probes *)
  mutable attempts : int;
  mutable resolved : int;  (** unwinds that recovered >= 1 frame *)
  mutable frames_total : int;
  mutable truncated : int;  (** walks stopped by the depth cap *)
}

let create ?(max_depth = 16) ?(max_sites = 4096) ?(max_stacks = 64)
    ?(sub = 16) () =
  {
    sites = Hashtbl.create 64;
    rewrites = Hashtbl.create 64;
    syms = [||];
    max_depth = max 1 max_depth;
    max_sites = max 1 max_sites;
    sites_dropped = 0;
    max_stacks = max 1 max_stacks;
    sub;
    attempts = 0;
    resolved = 0;
    frames_total = 0;
    truncated = 0;
  }

(** {1 Symbolization}

    Same scheme as the sampling profiler: a sorted (address, name)
    array, binary search for the last symbol at or below the PC, and
    a 4 KiB window so data addresses don't get claimed by the
    preceding function. *)

let add_symbols t (syms : (string * int) list) =
  (* Dot-prefixed labels are assembler-local (branch targets, syscall
     site markers like [.sc3]) — they would shadow the enclosing
     function symbol, so the symbolizer ignores them. *)
  let syms = List.filter (fun (n, _) -> String.length n = 0 || n.[0] <> '.') syms in
  let a =
    Array.of_list (List.map (fun (n, addr) -> (addr, n)) syms @ Array.to_list t.syms)
  in
  Array.sort compare a;
  t.syms <- a

let symbolize t pc =
  let a = t.syms in
  let n = Array.length a in
  if n = 0 then Printf.sprintf "0x%x" pc
  else begin
    let lo = ref 0 and hi = ref (n - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if fst a.(mid) <= pc then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !best < 0 then Printf.sprintf "0x%x" pc
    else
      let addr, name = a.(!best) in
      let off = pc - addr in
      if off >= 4096 then Printf.sprintf "0x%x" pc
      else if off = 0 then name
      else Printf.sprintf "%s+0x%x" name off
  end

(** {1 The unwinder}

    Walk the rbp frame chain: at a standard [push rbp; mov rbp, rsp]
    frame, [\[rbp\]] is the caller's saved rbp and [\[rbp+8\]] the
    return address.  Returns the recovered return addresses innermost
    first.  Never faults and always terminates: loads go through
    {!Mem.peek_u64} under a handler, frame pointers must be 8-aligned
    and strictly increasing, and depth is capped. *)
let unwind t mem ~rbp : int list =
  let acc = ref [] and depth = ref 0 and fp = ref rbp and stop = ref false in
  while not !stop do
    if !depth >= t.max_depth then begin
      t.truncated <- t.truncated + 1;
      stop := true
    end
    else if !fp <= 0 || !fp land 7 <> 0 then stop := true
    else
      match
        (Mem.peek_u64 mem (!fp + 8), Mem.peek_u64 mem !fp)
      with
      | ret, next ->
          let ret = Int64.to_int ret and next = Int64.to_int next in
          if ret <= 0 then stop := true
          else begin
            acc := ret :: !acc;
            incr depth;
            if next > !fp then fp := next else stop := true
          end
      | exception Mem.Fault _ -> stop := true
  done;
  List.rev !acc

(** {1 Recording} *)

let find_site t ~pc ~nr =
  match Hashtbl.find_opt t.sites (pc, nr) with
  | Some s -> Some s
  | None ->
      if Hashtbl.length t.sites >= t.max_sites then begin
        t.sites_dropped <- t.sites_dropped + 1;
        None
      end
      else begin
        let s =
          {
            s_pc = pc;
            s_nr = nr;
            s_paths = Array.make npaths 0;
            s_first_seen = -1L;
            s_last_seen = -1L;
            s_first_ev = -1;
            s_kcycles = Stats.Log_hist.create ~sub:t.sub ();
            s_stacks = Hashtbl.create 4;
            s_stacks_dropped = 0;
          }
        in
        Hashtbl.replace t.sites (pc, nr) s;
        Some s
      end

(** Record one audited application dispatch: [site] issued syscall
    [nr] via [path], costing [cycles] of kernel time, finishing at
    cycle [now]; [ev] is the app-stream audit index the dispatch was
    recorded at (-1 without an auditor).  [mem]/[rbp] feed the
    unwinder. *)
let record t ~mem ~site ~nr ~path ~rbp ~cycles ~now ~ev =
  let frames = unwind t mem ~rbp in
  t.attempts <- t.attempts + 1;
  if frames <> [] then t.resolved <- t.resolved + 1;
  t.frames_total <- t.frames_total + List.length frames;
  match find_site t ~pc:site ~nr with
  | None -> ()
  | Some s ->
      let pi = path_index path in
      s.s_paths.(pi) <- s.s_paths.(pi) + 1;
      if s.s_first_seen < 0L then s.s_first_seen <- now;
      s.s_last_seen <- now;
      if s.s_first_ev < 0 && ev >= 0 then s.s_first_ev <- ev;
      Stats.Log_hist.add s.s_kcycles (Int64.to_float cycles);
      (match Hashtbl.find_opt s.s_stacks frames with
      | Some r -> incr r
      | None ->
          if Hashtbl.length s.s_stacks >= t.max_stacks then
            s.s_stacks_dropped <- s.s_stacks_dropped + 1
          else Hashtbl.replace s.s_stacks frames (ref 1))

(** Stamp a binary rewrite of [site] ([syscall] -> [call rax]) on the
    ledger.  Later stamps of the same PC keep the first kind and
    time; the count tells re-stamps (e.g. a sweep finding an
    already-rewritten image) apart. *)
let note_rewrite t ~site ~kind ~now =
  match Hashtbl.find_opt t.rewrites site with
  | Some r -> r.rw_count <- r.rw_count + 1
  | None ->
      Hashtbl.replace t.rewrites site
        { rw_pc = site; rw_kind = kind; rw_count = 1; rw_first = now }

let rewrite_of t pc = Hashtbl.find_opt t.rewrites pc

(** {1 Reading the ledger} *)

(** All (site, nr) entries, most kernel cycles first (count, then PC
    break ties, so the order is deterministic). *)
let sites_sorted t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.sites []
  |> List.sort (fun a b ->
         match compare (site_cycles b) (site_cycles a) with
         | 0 -> (
             match compare (site_count b) (site_count a) with
             | 0 -> compare (a.s_pc, a.s_nr) (b.s_pc, b.s_nr)
             | c -> c)
         | c -> c)

let distinct_sites t = Hashtbl.length t.sites
let rewrite_count t = Hashtbl.length t.rewrites
let unwind_attempts t = t.attempts
let unwind_resolved t = t.resolved
let unwind_truncated t = t.truncated
let sites_dropped t = t.sites_dropped

let unwind_success_rate t =
  if t.attempts = 0 then 1.0
  else float_of_int t.resolved /. float_of_int t.attempts

(** {1 Reports} *)

(** Human-readable table, hottest site first. *)
let table ?(limit = 24) t : string =
  let b = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out "call-site ledger: %d sites, %d rewrites, unwind %d/%d (%.1f%%)\n"
    (distinct_sites t) (rewrite_count t) t.resolved t.attempts
    (100.0 *. unwind_success_rate t);
  if t.sites_dropped > 0 then
    out "  %d dispatches DROPPED (site-table cap)\n" t.sites_dropped;
  out "  %-26s %4s %9s %12s %8s %8s  %-10s %s\n" "site" "nr" "count"
    "kcycles" "p50" "p99" "rewrite" "path mix";
  List.iteri
    (fun i s ->
      if i < limit then begin
        let mix =
          Array.to_list s.s_paths
          |> List.mapi (fun pi c ->
                 if c = 0 then "" else Printf.sprintf "%s=%d" path_names.(pi) c)
          |> List.filter (fun x -> x <> "")
          |> String.concat " "
        in
        let rw =
          match rewrite_of t s.s_pc with
          | Some r -> rewrite_kind_name r.rw_kind
          | None -> "-"
        in
        out "  %-26s %4d %9d %12.0f %8.0f %8.0f  %-10s %s\n"
          (Printf.sprintf "%s (0x%x)" (symbolize t s.s_pc) s.s_pc)
          s.s_nr (site_count s) (site_cycles s)
          (Stats.Log_hist.percentile s.s_kcycles 50.0)
          (Stats.Log_hist.percentile s.s_kcycles 99.0)
          rw mix
      end)
    (sites_sorted t);
  Buffer.contents b

(** Collapsed flamegraph (Brendan Gregg format), one line per
    distinct stack: [comm;outermost;...;caller;site_sym count] — the
    same frame separator and terminal-count shape as the PR-3
    profiler's folded output, keyed by call site, weighted by
    dispatch count.  Unwound return addresses are symbolized like the
    leaf; a failed unwind still emits the site as a one-frame
    stack. *)
let folded ?(comm = "sites") t : string =
  let b = Buffer.create 1024 in
  List.iter
    (fun s ->
      let leaf = symbolize t s.s_pc in
      let lines =
        Hashtbl.fold
          (fun frames count acc ->
            let callers =
              List.rev_map (fun ra -> symbolize t ra) frames
              (* frames are innermost first: reversed = outermost first *)
            in
            let stack = String.concat ";" (comm :: (callers @ [ leaf ])) in
            (stack, !count) :: acc)
          s.s_stacks []
        |> List.sort compare
      in
      List.iter
        (fun (stack, count) ->
          Buffer.add_string b (Printf.sprintf "%s %d\n" stack count))
        lines)
    (sites_sorted t);
  Buffer.contents b

(** JSON export of the full ledger (sites hottest-first, rewrite
    table, unwinder health). *)
let to_json t : string =
  let b = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  out "{\n  \"unwind\": { \"attempts\": %d, \"resolved\": %d, " t.attempts
    t.resolved;
  out "\"success_rate\": %.4f, \"frames\": %d, \"truncated\": %d },\n"
    (unwind_success_rate t) t.frames_total t.truncated;
  out "  \"sites_dropped\": %d,\n" t.sites_dropped;
  out "  \"sites\": [";
  List.iteri
    (fun i s ->
      if i > 0 then out ",";
      out "\n    { \"pc\": %d, \"sym\": \"%s\", \"nr\": %d, " s.s_pc
        (symbolize t s.s_pc) s.s_nr;
      out "\"count\": %d, \"kcycles\": %.0f, " (site_count s) (site_cycles s);
      out "\"p50\": %.1f, \"p99\": %.1f, "
        (Stats.Log_hist.percentile s.s_kcycles 50.0)
        (Stats.Log_hist.percentile s.s_kcycles 99.0);
      out "\"first_seen\": %Ld, \"last_seen\": %Ld, \"first_ev\": %d, "
        s.s_first_seen s.s_last_seen s.s_first_ev;
      (match rewrite_of t s.s_pc with
      | Some r ->
          out "\"rewrite\": { \"kind\": \"%s\", \"count\": %d, \"at\": %Ld }, "
            (rewrite_kind_name r.rw_kind) r.rw_count r.rw_first
      | None -> out "\"rewrite\": null, ");
      out "\"paths\": { ";
      Array.iteri
        (fun pi c ->
          if pi > 0 then out ", ";
          out "\"%s\": %d" path_names.(pi) c)
        s.s_paths;
      out " } }")
    (sites_sorted t);
  out "\n  ],\n  \"rewrites\": [";
  let rws =
    Hashtbl.fold (fun _ r acc -> r :: acc) t.rewrites []
    |> List.sort (fun a b -> compare a.rw_pc b.rw_pc)
  in
  List.iteri
    (fun i r ->
      if i > 0 then out ",";
      out "\n    { \"pc\": %d, \"sym\": \"%s\", \"kind\": \"%s\", " r.rw_pc
        (symbolize t r.rw_pc) (rewrite_kind_name r.rw_kind);
      out "\"count\": %d, \"at\": %Ld }" r.rw_count r.rw_first)
    rws;
  out "\n  ]\n}\n";
  Buffer.contents b
