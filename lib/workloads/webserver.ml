(** Event-driven static-file web servers in minicc, for the Fig. 5
    macrobenchmark.

    Two flavours mirroring the paper's targets:

    - [Nginx_like]: master + forked workers, epoll event loop,
      [sendfile] for the response body (single copy);
    - [Lighttpd_like]: same structure, but read-file/write-socket
      chunks (two copies), as lighttpd's plain file backend does.

    Per request the worker performs the realistic syscall mix of a
    keepalive static-file server: epoll_wait, read (request), open,
    fstat, header write, body transfer, close, plus an access-log
    write and a clock_gettime per event-loop turn.  The [work(...)]
    calls model nginx/lighttpd's per-request userspace bookkeeping
    (parsing beyond what we do by hand, allocation, timers, logging
    machinery) as weighted straight-line code — see DESIGN.md. *)

open Sim_kernel

type flavour = Nginx_like | Lighttpd_like

let flavour_name = function
  | Nginx_like -> "nginx-sim"
  | Lighttpd_like -> "lighttpd-sim"

let http_header = "HTTP/1.1 200 OK\r\n\r\n"
let header_len = String.length http_header

(* Per-request modelled userspace bookkeeping, in cycles.  Calibrated
   so a native single worker spends ~35-45k cycles per 1 KiB request,
   matching real nginx's ~30-50k requests/s/core at 2.1 GHz. *)
let parse_work = 13000
let log_work = 10000
let loop_work = 9000

let source ?(exit_after = 0) ~(flavour : flavour) ~(port : int)
    ~(workers : int) () : string =
  let body_transfer =
    match flavour with
    | Nginx_like ->
        (* sendfile loop: single copy, uses the file offset *)
        "  long off = 0;\n\
        \  while (off < size) {\n\
        \    long sent = syscall(40, fd, ffd, 0, 65536);\n\
        \    if (sent <= 0) { syscall(3, ffd); return 0; }\n\
        \    off = off + sent;\n\
        \  }\n"
    | Lighttpd_like ->
        (* read + write chunks: two copies *)
        "  long r = 1;\n\
        \  while (r > 0) {\n\
        \    r = syscall(0, ffd, body, 65536);\n\
        \    if (r > 0) {\n\
        \      long w = 0;\n\
        \      while (w < r) {\n\
        \        long x = syscall(1, fd, body + w, r - w);\n\
        \        if (x < 0) { syscall(3, ffd); return 0; }\n\
        \        w = w + x;\n\
        \      }\n\
        \    }\n\
        \  }\n"
  in
  (* Bounded-run fragments: with [exit_after > 0] each worker serves
     exactly that many requests then exits, and the master reaps its
     workers and exits too — so a load-generator-driven run
     terminates on its own (the time-travel debugger records such
     runs).  With the default 0 the generated source is byte-for-byte
     what it always was: an unbounded server. *)
  let served_decl = if exit_after > 0 then "  long served = 0;\n" else "" in
  let served_check =
    if exit_after > 0 then
      Printf.sprintf
        " else {\n\
        \          served = served + 1;\n\
        \          if (served >= %d) { return 0; }\n\
        \        }" exit_after
    else ""
  in
  let master_loop =
    if exit_after > 0 then
      Printf.sprintf
        "  /* master: reap workers, then exit */\n\
        \  long w2 = %d;\n\
        \  while (w2 > 0) { syscall(61, 0 - 1, 0, 0); w2 = w2 - 1; }" workers
    else "  /* master: reap forever */\n  while (1) { syscall(61, 0 - 1, 0, 0); }"
  in
  Printf.sprintf
    {|
long copy_str(dst, src) {
  long i = 0;
  while (src[i] != 0) { dst[i] = src[i]; i = i + 1; }
  dst[i] = 0;
  return i;
}

/* parse "GET <path> HTTP/1.1..." into path; returns path length */
long find_path(buf, path) {
  long i = 0;
  while (buf[i] != ' ' && buf[i] != 0) { i = i + 1; }
  if (buf[i] == 0) return 0;
  i = i + 1;
  long j = 0;
  while (buf[i] != ' ' && buf[i] != 0 && j < 120) {
    path[j] = buf[i];
    i = i + 1;
    j = j + 1;
  }
  path[j] = 0;
  return j;
}

/* returns 1 to keep the connection, 0 to close it */
long handle(fd, logfd) {
  char req[2048];
  char path[128];
  char hdr[64];
  char logline[160];
  char tsbuf[16];
  char body[65536];
  long n = syscall(0, fd, req, 2048);
  if (n <= 0) return 0;
  work(%d);                       /* request parsing, header fields */
  long plen = find_path(req, path);
  if (plen == 0) return 0;
  long ffd = syscall(2, path, 0, 0);
  if (ffd < 0) return 0;
  char st[32];
  syscall(5, ffd, st);
  long size = peek64(st + 8);
  long hl = copy_str(hdr, "HTTP/1.1 200 OK%s");
  long w0 = 0;
  while (w0 < hl) {
    long x0 = syscall(1, fd, hdr + w0, hl - w0);
    if (x0 < 0) { syscall(3, ffd); return 0; }
    w0 = w0 + x0;
  }
%s
  syscall(3, ffd);
  /* access log: one formatted line per request, like the real ones */
  long ll = copy_str(logline, path);
  logline[ll] = 10;
  work(%d);
  syscall(1, logfd, logline, ll + 1);
  return 1;
}

long serve(lfd) {
  char ev[16];
  char events[1024];
  char tspec[16];
  long ep = syscall(291, 0);
  poke64(ev, 1);
  poke64(ev + 8, lfd);
  syscall(233, ep, 1, lfd, ev);
  long logfd = syscall(2, "/log/access", 1089, 420);
%s  while (1) {
    long n = syscall(232, ep, events, 64, 0 - 1);
    syscall(228, 0, tspec);       /* time update per loop turn */
    work(%d);                     /* timer wheel, connection bookkeeping */
    long i = 0;
    while (i < n) {
      long fd = peek64(events + i * 16 + 8);
      if (fd == lfd) {
        long c = 0;
        while (c >= 0) {
          c = syscall(288, lfd, 0, 0, 0);
          if (c >= 0) {
            poke64(ev, 1);
            poke64(ev + 8, c);
            syscall(233, ep, 1, c, ev);
          }
        }
      } else {
        if (handle(fd, logfd) == 0) {
          syscall(233, ep, 2, fd, 0);
          syscall(3, fd);
        }%s
      }
      i = i + 1;
    }
  }
  return 0;
}

long main() {
  long lfd = syscall(41, 0, 0, 0);
  char addr[16];
  poke64(addr, %d);
  syscall(49, lfd, addr, 16);
  syscall(50, lfd, 128);
  syscall(72, lfd, 4, 2048);      /* fcntl F_SETFL O_NONBLOCK on listener */
  long w = %d;
  while (w > 0) {
    long pid = syscall(57);
    if (pid == 0) { return serve(lfd); }
    w = w - 1;
  }
%s
  return 0;
}
|}
    parse_work "\\r\\n\\r\\n" body_transfer log_work served_decl loop_work
    served_check port workers master_loop

(** Compile the server and spawn it into an existing kernel [k] with
    [workers] worker processes, serving files from [files] (path,
    contents).  Returns the master task (callers then attach a load
    generator and run).  [exit_after], when positive, makes each
    worker exit after serving that many requests and the master reap
    and exit — a self-terminating run the audit/debug tooling can
    record end to end. *)
let boot_into (k : Types.kernel) ?(port = 80) ?(exit_after = 0) ~flavour
    ~workers ~(files : (string * string) list)
    ?(interpose = fun _k _t -> ()) () : Types.task =
  List.iter
    (fun (path, contents) -> ignore (Vfs.add_file k.Types.vfs path contents))
    files;
  ignore (Vfs.add_file k.Types.vfs "/log/access" "");
  let src = source ~exit_after ~flavour ~port ~workers () in
  let img = Minicc.Codegen.compile_to_image src in
  let t = Kernel.spawn k ~comm:(flavour_name flavour) img in
  interpose k t;
  t

(** Compile the server and prepare a kernel that runs it with
    [workers] worker processes on [ncpus] CPUs, serving files from
    [files] (path, contents).  Returns the kernel (callers then attach
    a load generator and run). *)
let boot ?(ncpus = 1) ?(port = 80) ?(exit_after = 0) ~flavour ~workers
    ~(files : (string * string) list) ?(interpose = fun _k _t -> ()) () :
    Types.kernel =
  let k = Kernel.create ~ncpus () in
  ignore (boot_into k ~port ~exit_after ~flavour ~workers ~files ~interpose ());
  k

(** Step the kernel until the server is listening on [port] (or fail
    after [max_slices]). *)
let wait_listening ?(max_slices = 50_000) (k : Types.kernel) ~port =
  let rec go n =
    if Hashtbl.mem k.Types.net.Net.listeners port then ()
    else if n = 0 then failwith "server never started listening"
    else begin
      Kernel.run_slice k;
      go (n - 1)
    end
  in
  go max_slices
