(** Ten coreutils simulations for the Pin register-preservation study
    (the paper's Table III).

    Each utility is a small minicc program doing its real job against
    the simulated VFS, prefixed by a hand-written "libc startup"
    runtime in one of two flavours:

    - [Glibc_2_31] ("Ubuntu 20.04", x86-64-v1): utilities that link
      the threading paths run the pthread initialisation of the
      paper's Listing 1 — xmm0 is populated, [set_tid_address] and
      [set_robust_list] execute, and only then does a [movups]
      initialise the [__stack_user] list head.  The compiler hoisted
      the xmm write above the syscalls, so the program expects the
      kernel to preserve xmm0 across them.  The non-threaded builds
      complete their xmm use before any syscall.

    - [Clear_linux] ("Clear Linux, glibc 2.39", up to x86-64-v3):
      every binary runs a [ptmalloc_init] that pre-populates an xmm
      register for the [main_arena] and expects the intervening
      [getrandom] (heap cookie) to preserve it.

    The affected sets reproduce Table III: 4/10 on Ubuntu (ls, mkdir,
    mv, cp — the pthread-init issue), 10/10 on Clear Linux. *)

open Sim_isa
open Sim_asm.Asm
open Sim_kernel

type distro = Glibc_2_31 | Clear_linux

let distro_name = function
  | Glibc_2_31 -> "Ubuntu 20.04 (glibc 2.31)"
  | Clear_linux -> "Clear Linux (glibc 2.39)"

(* Scratch page the runtime uses for its "libc state". *)
let libc_state = 0x98_0000

let map_libc_state =
  [
    mov_ri Isa.rdi libc_state; mov_ri Isa.rsi 4096;
    mov_ri Isa.rdx (Defs.prot_read lor Defs.prot_write);
    mov_ri Isa.r10 (Defs.map_fixed lor Defs.map_anonymous);
    mov_ri64 Isa.r8 (-1L); mov_ri Isa.r9 0;
    mov_ri Isa.rax Defs.sys_mmap; syscall;
  ]

(* Listing 1: xmm0 holds &__stack_user across two syscalls. *)
let pthread_init_pattern =
  [
    mov_ri Isa.r12 libc_state;
    i (Isa.Movq_xr (0, Isa.r12));
    i (Isa.Punpcklqdq (0, 0));
    mov_ri Isa.rdi (libc_state + 256);
    mov_ri Isa.rax Defs.sys_set_tid_address; syscall;
    mov_ri Isa.rdi (libc_state + 264);
    mov_ri Isa.rsi 24;
    mov_ri Isa.rax Defs.sys_set_robust_list; syscall;
    (* write '&__stack_user' to 'prev' + 'next' *)
    i (Isa.Movups_store (Isa.Seg_none, Isa.r12, 0l, 0));
  ]

(* Same syscalls, but the xmm use completes before them (what the
   compiler emits when nothing profits from hoisting). *)
let pthread_init_pattern_safe =
  [
    mov_ri Isa.r12 libc_state;
    i (Isa.Movq_xr (0, Isa.r12));
    i (Isa.Punpcklqdq (0, 0));
    i (Isa.Movups_store (Isa.Seg_none, Isa.r12, 0l, 0));
    mov_ri Isa.rdi (libc_state + 256);
    mov_ri Isa.rax Defs.sys_set_tid_address; syscall;
    mov_ri Isa.rdi (libc_state + 264);
    mov_ri Isa.rsi 24;
    mov_ri Isa.rax Defs.sys_set_robust_list; syscall;
  ]

(* ptmalloc_init on Clear Linux: xmm1 prepared for main_arena, then
   getrandom fetches the heap cookie, then xmm1 initialises the
   arena. *)
let ptmalloc_init_pattern =
  [
    mov_ri Isa.r12 (libc_state + 512) (* &main_arena *);
    mov_ri64 Isa.rcx 0x2525252525252525L;
    i (Isa.Movq_xr (1, Isa.rcx));
    i (Isa.Punpcklqdq (1, 1));
    (* getrandom(cookie_buf, 16, 0) *)
    mov_ri Isa.rdi (libc_state + 768);
    mov_ri Isa.rsi 16;
    mov_ri Isa.rdx 0;
    mov_ri Isa.rax Defs.sys_getrandom; syscall;
    i (Isa.Movups_store (Isa.Seg_none, Isa.r12, 0l, 1));
  ]

(* Utilities whose Ubuntu builds pull in the pthread paths. *)
let threaded_on_ubuntu = [ "ls"; "mkdir"; "mv"; "cp" ]

let util_names =
  [ "ls"; "pwd"; "chmod"; "mkdir"; "mv"; "cp"; "rm"; "touch"; "cat"; "clear" ]

(* The actual utility bodies, in minicc. *)
let util_source = function
  | "ls" ->
      (* getdents over /tmp, print names *)
      "long main() {\n\
       char ents[1024];\n\
       char line[64];\n\
       long fd = syscall(2, \"/tmp\", 0, 0);\n\
       if (fd < 0) return 1;\n\
       long n = syscall(78, fd, ents, 1024);\n\
       long off = 0;\n\
       while (off < n) {\n\
       long i = 0;\n\
       while (ents[off + i] != 0 && i < 55) { line[i] = ents[off + i]; i = i + 1; }\n\
       line[i] = '\\n';\n\
       syscall(1, 1, line, i + 1);\n\
       off = off + 64;\n\
       }\n\
       syscall(3, fd);\n\
       return 0; }"
  | "pwd" ->
      "long main() {\n\
       char buf[128];\n\
       long n = syscall(79, buf, 128);\n\
       if (n < 0) return 1;\n\
       buf[n - 1] = '\\n';\n\
       syscall(1, 1, buf, n);\n\
       return 0; }"
  | "chmod" ->
      "long main() { return syscall(90, \"/tmp/file_a\", 420) != 0; }"
  | "mkdir" ->
      "long main() { return syscall(83, \"/tmp/newdir\", 493) != 0; }"
  | "mv" ->
      "long main() { return syscall(82, \"/tmp/file_a\", \"/tmp/file_moved\") != 0; }"
  | "cp" ->
      "long main() {\n\
       char buf[512];\n\
       long src = syscall(2, \"/tmp/file_a\", 0, 0);\n\
       if (src < 0) return 1;\n\
       long dst = syscall(2, \"/tmp/file_copy\", 65, 420);\n\
       if (dst < 0) return 1;\n\
       long n = 1;\n\
       while (n > 0) {\n\
       n = syscall(0, src, buf, 512);\n\
       if (n > 0) syscall(1, dst, buf, n);\n\
       }\n\
       syscall(3, src);\n\
       syscall(3, dst);\n\
       return 0; }"
  | "rm" -> "long main() { return syscall(87, \"/tmp/file_b\", 0) != 0; }"
  | "touch" ->
      "long main() {\n\
       long fd = syscall(2, \"/tmp/file_new\", 65, 420);\n\
       if (fd < 0) return 1;\n\
       syscall(3, fd);\n\
       return 0; }"
  | "cat" ->
      "long main() {\n\
       char buf[512];\n\
       long fd = syscall(2, \"/tmp/file_a\", 0, 0);\n\
       if (fd < 0) return 1;\n\
       long n = 1;\n\
       while (n > 0) {\n\
       n = syscall(0, fd, buf, 512);\n\
       if (n > 0) syscall(1, 1, buf, n);\n\
       }\n\
       syscall(3, fd);\n\
       return 0; }"
  | "clear" ->
      "long main() {\n\
       char b[8];\n\
       b[0] = 27; b[1] = '['; b[2] = '2'; b[3] = 'J';\n\
       syscall(1, 1, b, 4);\n\
       return 0; }"
  | u -> Minicc.Ast.error "unknown utility %s" u

(** Build the image for [util] as compiled against [distro]'s libc:
    the minicc body plus the distro's startup runtime. *)
let image ~(distro : distro) (util : string) : Types.image =
  let text, data = Minicc.Codegen.compile (util_source util) in
  let pattern =
    match distro with
    | Glibc_2_31 ->
        if List.mem util threaded_on_ubuntu then pthread_init_pattern
        else pthread_init_pattern_safe
    | Clear_linux ->
        (* ptmalloc_init runs in every binary; the pthread paths only
           in the threaded ones (harmlessly ordered here). *)
        ptmalloc_init_pattern
  in
  let entry = Sim_asm.Asm.symbol text "start" in
  let runtime =
    Sim_asm.Asm.assemble ~base:0x50_0000
      ([ Label "rt_start" ] @ map_libc_state @ pattern
      @ [ mov_ri Isa.rbx entry; jmp_reg Isa.rbx ])
  in
  {
    Types.img_segments =
      [
        (text.Sim_asm.Asm.base, text.Sim_asm.Asm.bytes, Sim_mem.Mem.rx);
        (data.Sim_asm.Asm.base, data.Sim_asm.Asm.bytes, Sim_mem.Mem.rw);
        (runtime.Sim_asm.Asm.base, runtime.Sim_asm.Asm.bytes, Sim_mem.Mem.rx);
      ];
    img_entry = Sim_asm.Asm.symbol runtime "rt_start";
    img_stack_top = Loader.default_stack_top;
    img_stack_size = Loader.default_stack_size;
    img_symbols = text.Sim_asm.Asm.symbols @ runtime.Sim_asm.Asm.symbols;
  }

(** Populate the VFS with what the utilities expect. *)
let setup_vfs (k : Types.kernel) =
  ignore (Vfs.add_file k.Types.vfs "/tmp/file_a" (String.make 1500 'a'));
  ignore (Vfs.add_file k.Types.vfs "/tmp/file_b" "bbb")

(** Run [util] natively under the Pin tool; returns the analysis and
    the exit code. *)
let run_under_pin ~distro util : Sim_pin.Pin.t * int =
  let k = Kernel.create () in
  setup_vfs k;
  let t = Kernel.spawn k (image ~distro util) in
  let pin = Sim_pin.Pin.attach k t in
  let ok = Kernel.run_until_exit k in
  if not ok then failwith ("coreutil did not terminate: " ^ util);
  (pin, t.Types.exit_code)
