(** The paper's microbenchmark (Table II / Fig. 4): invoke the
    non-existent syscall 500 in a tight loop and measure cycles per
    iteration under every interposition mechanism.

    Syscall 500 bounds the kernel round trip from below (ENOSYS
    immediately) and enters the zpoline nop sled at its very tail,
    maximally exposing the interposers' own overhead.  As in the
    paper, the lazypoline configurations pre-rewrite the loop's
    syscall site so the measurement captures pure steady state, not
    the one-off slow-path rewrite. *)

open Sim_isa
open Sim_asm.Asm
open Sim_kernel
module Hook = Lazypoline.Hook

type config =
  | Native
  | Native_sud_allow  (** SUD enabled, selector = ALLOW, no interposer *)
  | Zpoline
  | Lazypoline_full  (** SUD slow path + xstate preservation *)
  | Lazypoline_noxstate
  | Lazypoline_nosud  (** Fig. 4: fast path only, SUD disabled *)
  | Lazypoline_protected
      (** Section VI hardening: selector behind a protection key *)
  | Sud
  | Seccomp_user
  | Seccomp_bpf
  | Ptrace

let config_name = function
  | Native -> "native"
  | Native_sud_allow -> "native+SUD(ALLOW)"
  | Zpoline -> "zpoline"
  | Lazypoline_full -> "lazypoline"
  | Lazypoline_noxstate -> "lazypoline w/o xstate"
  | Lazypoline_nosud -> "lazypoline w/o SUD"
  | Lazypoline_protected -> "lazypoline + MPK selector protection"
  | Sud -> "SUD"
  | Seccomp_user -> "seccomp-user"
  | Seccomp_bpf -> "seccomp-bpf"
  | Ptrace -> "ptrace"

let bench_items ~iters ~nr =
  [
    Label "start";
    mov_ri Isa.rbx iters;
    Label "loop";
    mov_ri Isa.rax nr;
    Label "site";
    syscall;
    sub_ri Isa.rbx 1;
    cmp_ri Isa.rbx 0;
    Jcc_l (Isa.Ne, "loop");
  ]
  @ [ mov_ri Isa.rdi 0; mov_ri Isa.rax Defs.sys_exit_group; syscall ]

(** Run one configuration; returns cycles per iteration.  [icache]
    selects the simulator's decoded-instruction cache (host-side speed
    only; simulated cycle counts are identical either way — asserted
    by test_icache).  [blocks] likewise selects the threaded-code
    block engine on top of the icache (default: on unless
    [SIM_NO_BLOCKS] is set); also host-side only and bit-identical,
    asserted by the engine-identity properties in test_icache.  [tracer] attaches a machine-wide event tracer to
    the run; tracing is observation-only, so the returned
    cycles-per-iteration is identical with or without it (asserted by
    a qcheck property in test_trace).  [metrics] and [profiler] attach
    the corresponding observers under the same contract (asserted in
    test_metrics).  [chaos] attaches a chaos engine; with zero rates
    it must also leave the cycle count bit-identical (the chaos-off
    identity gate in bench/main.ml and test_chaos). *)
let run ?(iters = 20_000) ?(nr = 500) ?(icache = true) ?blocks
    ?(tracer : Sim_trace.Tracer.t option)
    ?(metrics : Kmetrics.t option)
    ?(profiler : Sim_metrics.Profiler.t option)
    ?(auditor : Sim_audit.Audit.t option)
    ?(chaos : Sim_chaos.Chaos.t option)
    ?(policy : Sim_policy.Policy.t option)
    ?(on_done : Types.kernel -> Types.task -> unit = fun _ _ -> ())
    (config : config) : float =
  let k = Kernel.create ~icache ?blocks () in
  k.Types.tracer <- tracer;
  (match metrics with Some m -> Kernel.attach_metrics k m | None -> ());
  (match auditor with Some a -> Kernel.attach_audit k a | None -> ());
  (match chaos with Some ch -> Kernel.attach_chaos k ch | None -> ());
  (match policy with Some p -> Kernel.attach_policy k p | None -> ());
  (match profiler with
  | Some p ->
      k.Types.profiler <- Some p;
      Sim_metrics.Profiler.add_region p ~lo:0 ~hi:Sim_mem.Mem.page_size
        ~name:"zpoline-trampoline";
      Sim_metrics.Profiler.add_region p ~lo:Lazypoline.Layout.interp_code_base
        ~hi:(Lazypoline.Layout.interp_code_base + 0x10000)
        ~name:"interposer"
  | None -> ());
  let blob =
    Sim_asm.Asm.assemble ~base:Loader.code_base (bench_items ~iters ~nr)
  in
  let img = Loader.image ~entry:(Sim_asm.Asm.symbol blob "start") ~text:blob () in
  (match profiler with
  | Some p -> Sim_metrics.Profiler.add_symbols p img.Types.img_symbols
  | None -> ());
  let t = Kernel.spawn k img in
  let site = Sim_asm.Asm.symbol blob "site" in
  let hook = Hook.dummy () in
  (match config with
  | Native -> ()
  | Native_sud_allow ->
      (* Enable SUD with a permanently-ALLOW selector and no handler:
         measures the bare entry-path tax of the exhaustiveness
         guarantee. *)
      let gs = Lazypoline.setup_gs_area t in
      Sim_mem.Mem.poke_bytes t.Types.mem gs
        (String.make 1 (Char.chr Defs.syscall_dispatch_filter_allow));
      t.Types.sud.Types.sud_on <- true;
      t.Types.sud.Types.sud_selector <- gs
  | Zpoline -> ignore (Baselines.Zpoline.install k t hook)
  | Lazypoline_full ->
      let st = Lazypoline.install ~preserve_xstate:true k t hook in
      Lazypoline.rewrite_site st t ~addr:site
  | Lazypoline_noxstate ->
      let st = Lazypoline.install ~preserve_xstate:false k t hook in
      Lazypoline.rewrite_site st t ~addr:site
  | Lazypoline_nosud ->
      let st =
        Lazypoline.install ~preserve_xstate:false ~enable_sud:false k t hook
      in
      Lazypoline.rewrite_site st t ~addr:site
  | Lazypoline_protected ->
      let st =
        Lazypoline.install ~preserve_xstate:false ~protect_selector:true k t
          hook
      in
      Lazypoline.rewrite_site st t ~addr:site
  | Sud -> ignore (Baselines.Sud_interposer.install k t hook)
  | Seccomp_user -> ignore (Baselines.Seccomp_user.install k t hook)
  | Seccomp_bpf ->
      ignore (Baselines.Seccomp_bpf.install k t Baselines.Seccomp_bpf.inspect_all)
  | Ptrace -> ignore (Baselines.Ptrace_interposer.install k t hook));
  let ok = Kernel.run_until_exit ~max_slices:40_000_000 k in
  if not ok then failwith ("microbench did not terminate: " ^ config_name config);
  on_done k t;
  Int64.to_float t.Types.tcycles /. float_of_int iters

(** Overhead of [config] relative to native execution. *)
let overhead ?iters ?nr ?icache config =
  let base = run ?iters ?nr ?icache Native in
  run ?iters ?nr ?icache config /. base
