(** A wrk-style keepalive load generator.

    Modelled as an external actor on the simulated network stack
    rather than as simulated machine code: in the paper's setup the
    client runs on 36 dedicated cores (three times the server's 12)
    precisely so that it is never the bottleneck, and the client is
    never interposed.  Each connection keeps one request in flight:
    as soon as the response's last byte arrives, the next request
    goes out — maximum pressure, like wrk over keepalive
    connections. *)

open Sim_kernel

type conn = {
  ep : Net.endpoint;
  mutable to_recv : int;  (** bytes outstanding of the current response *)
  mutable in_flight : bool;
  mutable send_pos : int;  (** partial-request progress *)
}

type t = {
  conns : conn list;
  request : string;
  response_size : int;  (** header + body, known a priori *)
  mutable completed : int;
  mutable errors : int;
}

(** Connect [conns] keepalive connections to [port] and register the
    generator as a kernel actor.  [file] is the path requested;
    [file_size] its size (the client knows what it asked for). *)
let attach (k : Types.kernel) ~port ~conns ~file ~file_size : t =
  let request = Printf.sprintf "GET %s HTTP/1.1\r\nHost: bench\r\n\r\n" file in
  (* A refused connection (no listener yet, backlog full) is a load
     generator error like any other — count it and carry on with the
     connections that did come up, instead of aborting the whole
     simulation. *)
  let refused = ref 0 in
  let connected =
    List.filter_map
      (fun _ ->
        match Net.connect k.Types.net ~port with
        | Ok ep -> Some { ep; to_recv = 0; in_flight = false; send_pos = 0 }
        | Error `Refused ->
            incr refused;
            None)
      (List.init conns Fun.id)
  in
  let g =
    {
      conns = connected;
      request;
      response_size = Webserver.header_len + file_size;
      completed = 0;
      errors = !refused;
    }
  in
  let step () =
    List.iter
      (fun c ->
        (* Drain whatever the server produced. *)
        let rec drain () =
          match Net.recv c.ep 65536 with
          | `Data s ->
              c.to_recv <- c.to_recv - String.length s;
              if c.to_recv > 0 then drain ()
          | `Eof ->
              if c.in_flight then g.errors <- g.errors + 1;
              c.in_flight <- false;
              c.to_recv <- 0
          | `Empty -> ()
        in
        if c.in_flight then drain ();
        if c.in_flight && c.to_recv <= 0 then begin
          g.completed <- g.completed + 1;
          c.in_flight <- false;
          c.send_pos <- 0
        end;
        (* Fire the next request. *)
        if (not c.in_flight) && c.ep.Net.peer <> None then begin
          let remaining = String.length g.request - c.send_pos in
          match Net.send c.ep g.request c.send_pos remaining with
          | Ok sent ->
              c.send_pos <- c.send_pos + sent;
              if c.send_pos >= String.length g.request then begin
                c.in_flight <- true;
                c.to_recv <- g.response_size
              end
          | Error `Pipe -> g.errors <- g.errors + 1
        end)
      g.conns;
    ()
  in
  k.Types.actors <- step :: k.Types.actors;
  g

(** Requests per simulated second (cycles at 2.1 GHz). *)
let throughput (g : t) ~(cycles : int64) =
  Int64.to_float (Int64.of_int g.completed)
  /. (Int64.to_float cycles /. 2.1e9)
