(** A wrk-style keepalive load generator.

    Modelled as an external actor on the simulated network stack
    rather than as simulated machine code: in the paper's setup the
    client runs on 36 dedicated cores (three times the server's 12)
    precisely so that it is never the bottleneck, and the client is
    never interposed.  Each connection keeps one request in flight:
    as soon as the response's last byte arrives, the next request
    goes out — maximum pressure, like wrk over keepalive
    connections.

    Every request carries a generator-assigned id: issue and
    completion cycle timestamps are recorded per request (the
    latency sample the tail tables are built from), and when the
    kernel has a span recorder attached the id is stamped on the
    connection at issue time so the kernel can attribute the
    request's whole lifetime to causal phases
    ({!Sim_obs.Obs.note_issue} / [claim] / [complete]). *)

open Sim_kernel

type conn = {
  ep : Net.endpoint;
  mutable to_recv : int;  (** bytes outstanding of the current response *)
  mutable in_flight : bool;
  mutable send_pos : int;  (** partial-request progress *)
  mutable rid : int;  (** request id in flight on this connection, or -1 *)
  mutable issued_at : int64;  (** cycle time the in-flight request fired *)
  mutable dead : bool;  (** server closed the connection *)
}

type t = {
  conns : conn list;
  request : string;
  response_size : int;  (** header + body, known a priori *)
  max_requests : int;  (** stop issuing after this many (0 = unbounded) *)
  mutable next_rid : int;
  mutable completed : int;
  mutable errors : int;
  mutable latencies : (int * int64 * int64) list;
      (** (rid, issue, complete) per finished request, newest first *)
}

(* The server-side endpoint id of a client connection — the key the
   kernel claims requests by (it sees the server half on its reads). *)
let conn_token (c : conn) =
  match c.ep.Net.peer with Some p -> p.Net.id | None -> c.ep.Net.id

(** Connect [conns] keepalive connections to [port] and register the
    generator as a kernel actor.  [file] is the path requested;
    [file_size] its size (the client knows what it asked for).
    [max_requests] bounds the total issued (0, the default, keeps
    firing as long as the simulation runs). *)
let attach ?(max_requests = 0) (k : Types.kernel) ~port ~conns ~file
    ~file_size : t =
  let request = Printf.sprintf "GET %s HTTP/1.1\r\nHost: bench\r\n\r\n" file in
  (* A refused connection (no listener yet, backlog full) is a load
     generator error like any other — count it and carry on with the
     connections that did come up, instead of aborting the whole
     simulation. *)
  let refused = ref 0 in
  let connected =
    List.filter_map
      (fun _ ->
        match Net.connect k.Types.net ~port with
        | Ok ep ->
            Some
              { ep; to_recv = 0; in_flight = false; send_pos = 0; rid = -1;
                issued_at = 0L; dead = false }
        | Error `Refused ->
            incr refused;
            None)
      (List.init conns Fun.id)
  in
  let g =
    {
      conns = connected;
      request;
      response_size = Webserver.header_len + file_size;
      max_requests;
      next_rid = 1;
      completed = 0;
      errors = !refused;
      latencies = [];
    }
  in
  let app_ev () =
    match k.Types.auditor with
    | Some a -> Sim_audit.Audit.app_count a
    | None -> -1
  in
  let step () =
    let now = Types.global_time k in
    List.iter
      (fun c ->
        (* Drain whatever the server produced. *)
        let rec drain () =
          match Net.recv c.ep 65536 with
          | `Data s ->
              c.to_recv <- c.to_recv - String.length s;
              if c.to_recv > 0 then drain ()
          | `Eof ->
              if c.in_flight then begin
                g.errors <- g.errors + 1;
                (match k.Types.obs with
                | Some o when c.rid >= 0 -> Sim_obs.Obs.abandon o ~rid:c.rid
                | _ -> ())
              end;
              c.in_flight <- false;
              c.rid <- -1;
              c.dead <- true;
              c.to_recv <- 0
          | `Empty -> ()
        in
        if c.in_flight then drain ();
        if c.in_flight && c.to_recv <= 0 then begin
          g.completed <- g.completed + 1;
          g.latencies <- (c.rid, c.issued_at, now) :: g.latencies;
          (match k.Types.obs with
          | Some o ->
              Sim_obs.Obs.complete o ~rid:c.rid ~ts:now ~ev_hi:(app_ev ())
          | None -> ());
          c.in_flight <- false;
          c.rid <- -1;
          c.send_pos <- 0
        end;
        (* Fire the next request (unless the budget is spent). *)
        if
          (not c.in_flight) && (not c.dead)
          && c.ep.Net.peer <> None
          && (g.max_requests = 0 || g.next_rid <= g.max_requests)
        then begin
          if c.send_pos = 0 && c.rid < 0 then begin
            (* The request exists from its first byte on the wire:
               stamp the id and the issue time now, so queueing delay
               ahead of the server's first read is part of its
               latency. *)
            c.rid <- g.next_rid;
            g.next_rid <- g.next_rid + 1;
            c.issued_at <- now;
            match k.Types.obs with
            | Some o ->
                Sim_obs.Obs.note_issue o ~rid:c.rid ~conn:(conn_token c)
                  ~ts:now
            | None -> ()
          end;
          let remaining = String.length g.request - c.send_pos in
          match Net.send c.ep g.request c.send_pos remaining with
          | Ok sent ->
              c.send_pos <- c.send_pos + sent;
              if c.send_pos >= String.length g.request then begin
                c.in_flight <- true;
                c.to_recv <- g.response_size
              end
          | Error `Pipe ->
              g.errors <- g.errors + 1;
              (match k.Types.obs with
              | Some o when c.rid >= 0 -> Sim_obs.Obs.abandon o ~rid:c.rid
              | _ -> ());
              c.rid <- -1;
              c.dead <- true;
              c.send_pos <- 0
        end)
      g.conns;
    ()
  in
  k.Types.actors <- step :: k.Types.actors;
  g

(** Finished requests as (rid, issue, complete), completion order. *)
let latencies (g : t) = List.rev g.latencies

(** True once a bounded generator has collected every response. *)
let finished (g : t) =
  g.max_requests > 0 && g.completed >= g.max_requests

(** Requests per simulated second (cycles at 2.1 GHz). *)
let throughput (g : t) ~(cycles : int64) =
  Int64.to_float (Int64.of_int g.completed)
  /. (Int64.to_float cycles /. 2.1e9)
