(** Deterministic divergence auditor (observability layer 3).

    Records, per task, the ordered stream of {e observable} events —
    dispatched syscalls, signal deliveries, [rt_sigreturn]s and
    scheduling points — together with incremental state-hash
    checkpoints, so that two runs can be compared:

    - {e same mechanism} (record → replay): the full serialized
      stream plus every checkpoint hash must be bit-identical;
    - {e across mechanisms} (raw vs sud/zpoline/lazypoline/seccomp/
      ptrace): only the per-task {e application} streams are compared,
      and only their mechanism-neutral content.  Events that exist
      because of the interposer — SIGSYS deliveries and their
      sigreturns, interposer-issued kernel syscalls, scheduling — are
      classified [Mech] and skipped; legitimate per-mechanism state
      differences (rsp/rip inside stub frames, rcx/r11 sysret
      clobbers, selector/gs pages) are excluded from the comparison
      key, which covers syscall number, arguments, result, the
      callee-saved GPRs and the xstate hash.

    Observation-only contract, like the tracer and metrics layers: an
    attached auditor never charges simulated cycles and never perturbs
    architectural state, so an audited run is cycle- and
    state-identical to an unaudited one.

    State hashes are FNV-1a-64 over registers, flags, segment bases,
    pkru, the full xstate, and a Merkle-style fold of per-page memory
    hashes.  Page hashes are cached keyed by [Mem.page_gen] — every
    store bumps its page's generation, so unchanged pages are never
    rehashed (the same versioning the decoded-instruction cache
    validates against). *)

module Cpu = Sim_cpu.Cpu
module Mem = Sim_mem.Mem
module Event = Sim_trace.Event
module Isa = Sim_isa.Isa

(* ------------------------------------------------------------------ *)
(* FNV-1a 64-bit                                                       *)

let seed = 0xcbf29ce484222325L
let prime = 0x100000001b3L
let mix h x = Int64.mul (Int64.logxor h x) prime
let mix_int h i = mix h (Int64.of_int i)

let hash_bytes_from h0 (b : Bytes.t) =
  let n = Bytes.length b in
  let h = ref h0 in
  let i = ref 0 in
  while !i + 8 <= n do
    h := mix !h (Bytes.get_int64_le b !i);
    i := !i + 8
  done;
  while !i < n do
    h := mix_int !h (Char.code (Bytes.get b !i));
    incr i
  done;
  !h

let hash_bytes b = hash_bytes_from seed b
let hash_string s = hash_bytes (Bytes.unsafe_of_string s)

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

(** [App]: an event the application itself caused and could observe —
    part of its syscall/signal history under {e any} correct
    interposer.  [Mech]: mechanism-private — it exists only because of
    how interposition is implemented (SIGSYS trampolines, rewrite
    syscalls, scheduling) and is excluded from cross-mechanism
    diffs. *)
type scope = App | Mech

type ev =
  | Syscall of {
      nr : int;
      args : int64 array;  (** the six argument registers at dispatch *)
      ret : int64 option;  (** [None]: control transfer, no result write *)
      path : Event.dispatch_path;
      cs : int64 array;  (** callee-saved rbx rbp r12–r15 after return *)
      xh : int64;  (** xstate hash after return *)
    }
  | Signal of { signo : int }
  | Sigreturn
  | Sched of { prev : int }

type entry = {
  seq : int;  (** global sequence number, 0-based *)
  tid : int;
  scope : scope;
  ev : ev;
  app_seq : int;  (** 1-based count of App syscalls so far; 0 otherwise *)
  key : int64;
      (** mechanism-neutral content hash: what cross-mechanism diffs
          compare.  Excludes [seq], [scope], [path]. *)
  chain : int64;
      (** running hash of {e everything} up to and including this
          entry — replay identity for the same mechanism. *)
}

type checkpoint = { ck_seq : int; ck_app_seq : int; ck_tid : int; ck_hash : int64 }
type row = Rev of entry | Rck of checkpoint

(* Callee-saved registers per the SysV ABI (minus rsp, which
   legitimately differs inside interposer stub frames). *)
let callee_saved = [| Isa.rbx; Isa.rbp; Isa.r12; Isa.r13; Isa.r14; Isa.r15 |]
let callee_saved_names = [| "rbx"; "rbp"; "r12"; "r13"; "r14"; "r15" |]

type t = {
  mutable rows_rev : row list;
  mutable seq : int;
  mutable chain : int64;
  mutable app_count : int;
  checkpoint_every : int;
  mutable pending_checkpoint : bool;
  frames : (int, scope list ref) Hashtbl.t;
      (** per-tid stack of signal-frame scopes; a sigreturn inherits
          the scope of the delivery that pushed its frame *)
  caches : (int, (int, int * int64) Hashtbl.t) Hashtbl.t;
      (** per-tid page-hash cache: pn -> (generation, hash) *)
  mutable stop_after : int option;
      (** halt the machine once this many App syscalls are recorded —
          used to replay a run "up to" a divergence point.  Mutable so
          the debugger can move the stop barrier forward and resume a
          halted replay instead of re-executing from scratch. *)
  mutable halted : bool;
}

let create ?(checkpoint_every = 64) ?stop_after () =
  if checkpoint_every <= 0 then
    invalid_arg
      (Printf.sprintf "Audit.create: checkpoint_every must be positive (got %d)"
         checkpoint_every);
  {
    rows_rev = [];
    seq = 0;
    chain = seed;
    app_count = 0;
    checkpoint_every;
    pending_checkpoint = false;
    frames = Hashtbl.create 7;
    caches = Hashtbl.create 7;
    stop_after;
    halted = false;
  }

let should_halt a = a.halted
let checkpoint_every a = a.checkpoint_every

(** Move the stop barrier.  [None] removes it; the next recorded App
    syscall at or past a [Some n] barrier halts the machine. *)
let set_stop_after a n = a.stop_after <- n

(** Clear the halt latch so a machine stopped at a [stop_after]
    barrier can run again (after the barrier has been moved). *)
let clear_halt a = a.halted <- false

(** Drop all cached state for [tid] — required on [execve], which
    replaces the task's address space with a fresh one whose page
    generations restart and could alias stale cache entries. *)
let forget_task a tid =
  Hashtbl.remove a.caches tid;
  Hashtbl.remove a.frames tid

(* ------------------------------------------------------------------ *)
(* State hashing                                                       *)

let xstate_hash (c : Cpu.t) = hash_string (Cpu.xstate_to_bytes c.Cpu.x)

let cache_for a tid =
  match Hashtbl.find_opt a.caches tid with
  | Some c -> c
  | None ->
      let c = Hashtbl.create 64 in
      Hashtbl.replace a.caches tid c;
      c

(** Hash one page's content plus its mapping attributes. *)
let page_hash mem pn =
  let base = pn * Mem.page_size in
  let perm = match Mem.perm_at mem base with Some p -> p | None -> -1 in
  let h = mix_int (mix_int seed perm) (Mem.pkey_at mem base) in
  match Mem.page_data mem pn with
  | Some b -> hash_bytes_from h b
  | None -> h

(** Merkle-style fold over the whole address space; consults the
    per-tid cache so pages whose generation is unchanged since the
    last hash are not re-read. *)
let mem_hash a ~tid mem =
  let cache = cache_for a tid in
  List.fold_left
    (fun h pn ->
      let gen = Mem.page_gen mem pn in
      let ph =
        match Hashtbl.find_opt cache pn with
        | Some (g, hv) when g = gen -> hv
        | _ ->
            let hv = page_hash mem pn in
            Hashtbl.replace cache pn (gen, hv);
            hv
      in
      mix (mix_int h pn) ph)
    seed (Mem.mapped_pages mem)

let flags_bits (c : Cpu.t) =
  (if c.Cpu.zf then 1 else 0)
  lor (if c.Cpu.sf then 2 else 0)
  lor if c.Cpu.cf then 4 else 0

(** Full architectural state hash: 16 GPRs, rip, flags, fs/gs bases,
    pkru, xstate, and the incremental memory hash. *)
let full_state_hash a ~tid (c : Cpu.t) mem =
  let h = ref seed in
  Array.iter (fun r -> h := mix !h r) c.Cpu.regs;
  h := mix_int !h c.Cpu.rip;
  h := mix_int !h (flags_bits c);
  h := mix_int !h c.Cpu.fs_base;
  h := mix_int !h c.Cpu.gs_base;
  h := mix_int !h c.Cpu.pkru;
  h := mix !h (xstate_hash c);
  mix !h (mem_hash a ~tid mem)

(* ------------------------------------------------------------------ *)
(* Recording                                                           *)

let scope_bit = function App -> 1 | Mech -> 2

let path_bit = function
  | Event.Sud_sigsys -> 1
  | Event.Fast_path -> 2
  | Event.Seccomp_path -> 3
  | Event.Ptrace_path -> 4
  | Event.Direct -> 5

let ev_key tid ev =
  let h = mix_int seed tid in
  match ev with
  | Syscall { nr; args; ret; cs; xh; path = _ } ->
      let h = mix_int (mix_int h 1) nr in
      let h = Array.fold_left mix h args in
      let h =
        match ret with None -> mix_int h 0 | Some v -> mix (mix_int h 1) v
      in
      let h = Array.fold_left mix h cs in
      mix h xh
  | Signal { signo } -> mix_int (mix_int h 2) signo
  | Sigreturn -> mix_int h 3
  | Sched { prev } -> mix_int (mix_int h 4) prev

let push a ~tid ~scope ev =
  let key = ev_key tid ev in
  let chain =
    let h = mix a.chain key in
    let h = mix_int h (scope_bit scope) in
    match ev with
    | Syscall { path; _ } -> mix_int h (path_bit path)
    | _ -> h
  in
  let app_seq =
    match (scope, ev) with
    | App, Syscall _ ->
        a.app_count <- a.app_count + 1;
        if a.app_count mod a.checkpoint_every = 0 then
          a.pending_checkpoint <- true;
        (match a.stop_after with
        | Some n when a.app_count >= n -> a.halted <- true
        | _ -> ());
        a.app_count
    | _ -> 0
  in
  let e = { seq = a.seq; tid; scope; ev; app_seq; key; chain } in
  a.rows_rev <- Rev e :: a.rows_rev;
  a.seq <- a.seq + 1;
  a.chain <- chain

let capture_cs (c : Cpu.t) = Array.map (fun r -> Cpu.peek_reg c r) callee_saved

let record_syscall a ~tid ~scope ~nr ~args ~ret ~path (c : Cpu.t) =
  push a ~tid ~scope
    (Syscall { nr; args; ret; path; cs = capture_cs c; xh = xstate_hash c })

(** [mech] classifies the delivery: SIGSYS raised by SUD or a seccomp
    TRAP filter is interposition plumbing, anything else is an
    application-visible signal.  The scope is remembered on a per-tid
    frame stack so the matching sigreturn inherits it. *)
let record_signal a ~tid ~signo ~mech =
  let scope = if mech then Mech else App in
  let st =
    match Hashtbl.find_opt a.frames tid with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace a.frames tid r;
        r
  in
  st := scope :: !st;
  push a ~tid ~scope (Signal { signo })

let record_sigreturn a ~tid =
  let scope =
    match Hashtbl.find_opt a.frames tid with
    | Some ({ contents = s :: rest } as r) ->
        r := rest;
        s
    | _ -> App
  in
  push a ~tid ~scope Sigreturn

let record_sched a ~tid ~prev = push a ~tid ~scope:Mech (Sched { prev })

let checkpoint_due a = a.pending_checkpoint

let take_checkpoint a ~tid (c : Cpu.t) mem =
  a.pending_checkpoint <- false;
  let h = full_state_hash a ~tid c mem in
  a.rows_rev <-
    Rck { ck_seq = a.seq; ck_app_seq = a.app_count; ck_tid = tid; ck_hash = h }
    :: a.rows_rev

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let rows a = List.rev a.rows_rev

let entries a =
  List.filter_map (function Rev e -> Some e | Rck _ -> None) (rows a)

let checkpoints a =
  List.filter_map (function Rck c -> Some c | Rev _ -> None) (rows a)

let app_count a = a.app_count
let chain a = a.chain

let tids a =
  let seen = Hashtbl.create 7 in
  List.iter (fun e -> Hashtbl.replace seen e.tid ()) (entries a);
  Hashtbl.fold (fun tid () acc -> tid :: acc) seen [] |> List.sort compare

(** The per-task application stream: App-scope syscalls, signals and
    sigreturns, in order — what must be identical across mechanisms. *)
let app_stream_of_tid a tid =
  entries a
  |> List.filter (fun e -> e.tid = tid && e.scope = App)
  |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let scope_char = function App -> 'A' | Mech -> 'M'

let add_entry buf ~syscall_name ~errno_name (e : entry) =
  let open Printf in
  bprintf buf "E %d %d %c " e.seq e.tid (scope_char e.scope);
  (match e.ev with
  | Syscall { nr; args; ret; path; cs; xh } ->
      bprintf buf "S %d %s" nr (syscall_name nr);
      Array.iter (fun v -> bprintf buf " %Lx" v) args;
      (match ret with
      | None -> bprintf buf " - -"
      | Some v ->
          let status =
            if v < 0L && v >= -4095L then errno_name (Int64.to_int (Int64.neg v))
            else "ok"
          in
          bprintf buf " %Lx %s" v status);
      bprintf buf " %s" (Event.path_name path);
      Array.iter (fun v -> bprintf buf " %Lx" v) cs;
      bprintf buf " %Lx" xh
  | Signal { signo } -> bprintf buf "G %d" signo
  | Sigreturn -> bprintf buf "R"
  | Sched { prev } -> bprintf buf "C %d" prev);
  Buffer.add_char buf '\n'

let to_buffer ?final_hash ~syscall_name ~errno_name a buf =
  List.iter
    (function
      | Rev e -> add_entry buf ~syscall_name ~errno_name e
      | Rck c ->
          Printf.bprintf buf "K %d %d %d %Lx\n" c.ck_seq c.ck_app_seq c.ck_tid
            c.ck_hash)
    (rows a);
  (match final_hash with
  | Some h -> Printf.bprintf buf "F %Lx\n" h
  | None -> ())

let to_string ?final_hash ~syscall_name ~errno_name a =
  let buf = Buffer.create 4096 in
  to_buffer ?final_hash ~syscall_name ~errno_name a buf;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Cross-run diffing                                                   *)

type divergence = {
  d_tid : int;
  d_index : int;  (** 0-based index into the per-tid app stream *)
  d_left : entry option;  (** [None]: the left stream ended here *)
  d_right : entry option;
  d_reason : string;
}

let describe_ev ~syscall_name = function
  | Syscall { nr; ret; _ } ->
      Printf.sprintf "%s(#%d)%s" (syscall_name nr) nr
        (match ret with None -> "" | Some v -> Printf.sprintf " = %Ld" v)
  | Signal { signo } -> Printf.sprintf "signal %d" signo
  | Sigreturn -> "sigreturn"
  | Sched { prev } -> Printf.sprintf "sched from %d" prev

(** Explain the first differing field of two same-index entries, in
    mechanism-neutral terms. *)
let explain_pair l r =
  match (l.ev, r.ev) with
  | Syscall a, Syscall b ->
      if a.nr <> b.nr then
        Printf.sprintf "syscall nr differs: %d vs %d" a.nr b.nr
      else begin
        let reason = ref None in
        let put s = if !reason = None then reason := Some s in
        Array.iteri
          (fun i v ->
            if v <> b.args.(i) then
              put (Printf.sprintf "arg%d differs: %Ld vs %Ld" i v b.args.(i)))
          a.args;
        (match (a.ret, b.ret) with
        | Some x, Some y when x <> y ->
            put (Printf.sprintf "result differs: %Ld vs %Ld" x y)
        | None, Some y -> put (Printf.sprintf "result differs: - vs %Ld" y)
        | Some x, None -> put (Printf.sprintf "result differs: %Ld vs -" x)
        | _ -> ());
        Array.iteri
          (fun i v ->
            if v <> b.cs.(i) then
              put
                (Printf.sprintf "callee-saved %s differs: %Ld vs %Ld"
                   callee_saved_names.(i) v b.cs.(i)))
          a.cs;
        if a.xh <> b.xh then put "xstate differs";
        match !reason with Some s -> s | None -> "entries differ"
      end
  | Signal a, Signal b when a.signo <> b.signo ->
      Printf.sprintf "signal differs: %d vs %d" a.signo b.signo
  | _ ->
      Printf.sprintf "event kind differs: %s vs %s"
        (describe_ev ~syscall_name:(fun n -> Printf.sprintf "sys_%d" n) l.ev)
        (describe_ev ~syscall_name:(fun n -> Printf.sprintf "sys_%d" n) r.ev)

(** First divergent index between two per-tid app streams, found by
    binary search over prefix-chain hashes (O(log n) hash compares
    instead of a linear field-by-field walk). *)
let first_divergent_index (la : entry array) (lb : entry array) =
  let n = min (Array.length la) (Array.length lb) in
  (* prefix.(i) = hash of keys [0, i) *)
  let prefix arr =
    let p = Array.make (n + 1) seed in
    for i = 0 to n - 1 do
      p.(i + 1) <- mix p.(i) arr.(i).key
    done;
    p
  in
  let pa = prefix la and pb = prefix lb in
  if pa.(n) = pb.(n) then
    if Array.length la = Array.length lb then None else Some n
  else begin
    (* largest m with equal prefixes; divergence at index m *)
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if pa.(mid) = pb.(mid) then lo := mid else hi := mid
    done;
    Some !lo
  end

let first_divergence (a : t) (b : t) : divergence option =
  let union_tids =
    List.sort_uniq compare (tids a @ tids b)
  in
  let best = ref None in
  List.iter
    (fun tid ->
      let la = app_stream_of_tid a tid and lb = app_stream_of_tid b tid in
      match first_divergent_index la lb with
      | None -> ()
      | Some i ->
          let get arr j = if j < Array.length arr then Some arr.(j) else None in
          let l = get la i and r = get lb i in
          let reason =
            match (l, r) with
            | Some l, Some r -> explain_pair l r
            | None, Some _ -> "left stream ended early"
            | Some _, None -> "right stream ended early"
            | None, None -> "streams diverge"
          in
          let d = { d_tid = tid; d_index = i; d_left = l; d_right = r;
                    d_reason = reason }
          in
          (* keep the divergence earliest in global order *)
          let sk = function
            | Some (e : entry) -> e.seq
            | None -> max_int
          in
          let rank d = min (sk d.d_left) (sk d.d_right) in
          (match !best with
          | Some prev when rank prev <= rank d -> ()
          | _ -> best := Some d))
    union_tids;
  !best
