(** Cycle cost model for the simulated machine.

    The simulator charges cycles for two kinds of events:

    - ordinary instruction execution (one cycle per instruction, like a
      scalar in-order core), and
    - "priced" events whose real-world cost cannot be derived from
      instruction counts in a functional simulator: kernel entry/exit,
      signal delivery, context switches, [xsave]/[xrstor], per-byte
      copies, BPF interpretation.

    The default constants are calibrated once against the
    microbenchmark ratios of the paper's Table II (48-core Xeon Gold
    5318S @ 2.10 GHz, Linux 5.15).  Everything else in the evaluation
    (Fig. 4 breakdown, Fig. 5 web-server macrobenchmarks, Table III)
    emerges from which priced events each interposition mechanism
    triggers and how often; nothing downstream is hard-coded.

    All costs are in (simulated) CPU cycles. *)

type t = {
  insn : int;
      (** base cost of executing one instruction *)
  syscall_base : int;
      (** kernel round trip of a completed syscall (entry, dispatch,
          exit), excluding the work of the syscall body itself *)
  syscall_abort : int;
      (** kernel entry that is aborted before dispatch (e.g. SUD or a
          seccomp TRAP decides to deliver a signal instead) *)
  sud_check : int;
      (** extra syscall entry-path cost whenever Syscall User Dispatch
          is enabled for the task: interception-enabled check plus the
          user-space selector byte read.  Charged even when the
          selector says ALLOW (this is the paper's "baseline with SUD
          enabled" 1.42x row). *)
  seccomp_fixed : int;
      (** fixed cost of invoking the seccomp machinery on a syscall *)
  bpf_insn : int;
      (** cost per interpreted classic-BPF instruction *)
  signal_delivery : int;
      (** building the signal frame, rewriting user context, and
          returning to user space at the handler *)
  sigreturn_kernel : int;
      (** kernel-side work of [rt_sigreturn] (context restore),
          excluding the syscall round trip that carries it *)
  context_switch : int;
      (** scheduling another task on this CPU (used by ptrace stops) *)
  xsave : int;  (** saving all extended state components *)
  xrstor : int;  (** restoring all extended state components *)
  copy_num : int;
  copy_den : int;
      (** user/kernel copies cost [bytes * copy_num / copy_den] *)
  page_op : int;
      (** per-page cost of mapping/permission changes (TLB shootdown
          and page-table walk, amortised) *)
  sock_op : int;
      (** fixed kernel network-stack cost per socket data operation
          (skb handling, loopback queueing) *)
  accept_op : int;  (** connection establishment cost *)
  epoll_op : int;  (** epoll_wait / epoll_ctl fixed cost *)
  fs_op : int;  (** VFS path lookup / inode operation *)
  policy_check : int;
      (** per-dispatch syscall-flow-integrity check (graph edge + site
          + compartment lookup) when a policy is attached in an
          enforcing mode; report mode is observation-only and charges
          nothing *)
}

(* Calibration notes (against Table II of the paper, baseline syscall
   round trip normalised to [syscall_base] = 250):

   - native + SUD enabled: (250 + sud_check) / 250 = 1.42x
     => sud_check = 105
   - SUD interposition: abort + check + delivery + handler work + real
     syscall + sigreturn round trip
     = 150 + 105 + 2900 + ~15 + (250 + 105) + (250 + 105 + 1400)
     ~= 5280 = ~20.8x of a ~254-cycle native iteration.
   - xstate preservation: (xsave + xrstor) / 250 = 0.72, the gap
     between lazypoline (2.38x) and lazypoline-without-xstate (1.66x).
*)
let default : t =
  {
    insn = 1;
    syscall_base = 250;
    syscall_abort = 150;
    sud_check = 105;
    (* Per-syscall seccomp cost must exceed the SUD selector check:
       the paper (and [60]) report SUD's direct filtering beating
       BPF-program execution. *)
    seccomp_fixed = 60;
    bpf_insn = 12;
    signal_delivery = 2900;
    sigreturn_kernel = 1400;
    context_switch = 1500;
    xsave = 90;
    xrstor = 90;
    copy_num = 1;
    copy_den = 2;
    page_op = 120;
    sock_op = 600;
    accept_op = 1800;
    epoll_op = 350;
    fs_op = 450;
    (* A few hash lookups on the syscall entry path — in the SFIP
       ballpark of single-digit-percent overhead on a getpid loop. *)
    policy_check = 35;
  }

(** [copy_cost t bytes] is the cycle cost of copying [bytes] bytes
    between user and kernel space. *)
let copy_cost t bytes = bytes * t.copy_num / t.copy_den
