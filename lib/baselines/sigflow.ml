(** Shared machinery for the two signal-driven baselines (SUD and
    seccomp-user): a SIGSYS handler that re-executes the intercepted
    syscall from within the handler and sigreturns back.

    This is the "typical deployment" of Section II-A that lazypoline
    deliberately departs from: the interposition happens inside the
    signal handler, and the handler's own syscall / sigreturn must be
    exempted (via the selector for SUD, via an instruction-pointer
    range filter for seccomp).

    Handler stub shape (entered with rdi = sig, rsi = &siginfo,
    rdx = &ucontext, rsp = frame base F):

    {v
    [selector := ALLOW]          (SUD variant only)
    hypercall PREP               hook runs; app nr/args loaded into
                                 the live registers from the ucontext
    syscall                      the application's syscall, for real
    hypercall FIN                result written back into ucontext;
                                 fresh children re-armed
    [selector := BLOCK]          (SUD variant only)
    add rsp, 8
    mov rax, rt_sigreturn
    syscall                      selector is BLOCK again by now, so
                                 this sigreturn relies on the stub's
                                 allowlisted code range (SUD) or the
                                 instruction-pointer filter (seccomp)
    v}

    Note the SUD variant restores BLOCK *before* the sigreturn and
    relies on the allowlisted code range for the sigreturn itself —
    exactly the classic deployment (and the attack surface) the paper
    describes. *)

open Sim_isa
open Sim_mem
open Sim_cpu
open Sim_kernel
open Types
module Hook = Lazypoline.Hook
module Layout = Lazypoline.Layout

type stats = { mutable interceptions : int }

type t = {
  kernel : kernel;
  hook : Hook.t;
  use_selector : bool;  (** SUD variant: maintain the selector byte *)
  stats : stats;
  (* PREP -> FIN communication: per-task suppressed-syscall value. *)
  skip : (int, int64) Hashtbl.t;
  mutable handler_addr : int;
  mutable stub_lo : int;
  mutable stub_hi : int;
}

let to_i = Int64.to_int
let i64 = Int64.of_int

(* At PREP and FIN, rsp still equals the frame base F. *)
let uc_of_rsp (t : task) = to_i (Cpu.peek_reg t.ctx Isa.rsp) + 40
let si_of_rsp (t : task) = to_i (Cpu.peek_reg t.ctx Isa.rsp) + 8

let hyper_prep (st : t) (k : kernel) (t : task) =
  charge k Layout.hook_save_cost;
  st.stats.interceptions <- st.stats.interceptions + 1;
  let uc = uc_of_rsp t and si = si_of_rsp t in
  let nr = to_i (Mem.peek_u64 t.mem (uc + Ksignal.uc_gpr_off Isa.rax)) in
  let args =
    Array.map
      (fun r -> Mem.peek_u64 t.mem (uc + Ksignal.uc_gpr_off r))
      Hook.arg_regs
  in
  let site =
    to_i (Mem.peek_u64 t.mem (si + Ksignal.si_call_addr_off)) - 2
  in
  if st.hook.Hook.clobbers_xstate then
    (* Harmless here: the kernel's signal frame preserves the app's
       xstate across the handler — signal-based interposition gets
       register preservation for free, which is part of why it is so
       compatible (and so slow). *)
    Lazypoline.clobber_xstate t;
  charge k st.hook.Hook.body_cost;
  let ctx = { Hook.kernel = k; task = t; nr; args; site } in
  (match st.hook.Hook.on_syscall ctx with
  | Hook.Return v ->
      Hashtbl.replace st.skip t.tid v;
      (* Skip the stub's syscall instruction. *)
      t.ctx.rip <- t.ctx.rip + 2
  | Hook.Emulate -> Hashtbl.remove st.skip t.tid);
  (* Load the (possibly hook-rewritten) app context into the live
     registers so the stub's syscall instruction replays it. *)
  let c = t.ctx in
  Cpu.poke_reg c Isa.rax (Mem.peek_u64 t.mem (uc + Ksignal.uc_gpr_off Isa.rax));
  Array.iter
    (fun r -> Cpu.poke_reg c r (Mem.peek_u64 t.mem (uc + Ksignal.uc_gpr_off r)))
    Hook.arg_regs;
  (if nr = Defs.sys_clone && not (Hashtbl.mem st.skip t.tid) then begin
     (* A clone child with a fresh stack resumes inside this stub and
        must eventually sigreturn — from a frame its new stack does
        not have.  The classic SIGSYS-interposer move: replicate our
        whole signal frame at the top of the child stack, patch the
        copy's saved rsp to the stack the app actually asked for, and
        hand the kernel the copy's base as the child stack pointer.
        The child then runs the stub tail on the copy and sigreturns
        into app code on the requested stack. *)
     let new_top = to_i (Cpu.peek_reg c Isa.rsi) in
     if new_top <> 0 then begin
       let f = to_i (Cpu.peek_reg c Isa.rsp) in
       let f' = (new_top - Ksignal.frame_size) land lnot 15 in
       try
         let frame = Mem.peek_bytes t.mem f Ksignal.frame_size in
         Mem.poke_bytes t.mem f' frame;
         Mem.poke_u64 t.mem
           (f' + 40 + Ksignal.uc_gpr_off Isa.rsp)
           (i64 new_top);
         (* The copy's saved rip already points past the app's
            syscall site; its saved rax is overwritten with the
            child's 0 by FIN. *)
         Cpu.poke_reg c Isa.rsi (i64 f')
       with Mem.Fault _ -> ()
     end
   end);
  if
    nr = Defs.sys_rt_sigreturn
    && not (Hashtbl.mem st.skip t.tid)
  then begin
    (* An application signal restorer's own rt_sigreturn trapped (its
       [syscall] sits in app code, outside the exempt range).  The
       kernel locates the frame from rsp, so replaying it from this
       nested SIGSYS frame would restore garbage: move rsp back to
       the interrupted position first.  The replayed sigreturn then
       restores the full app context, abandoning our handler frame
       (it never returns, so the stub's tail is never reached). *)
    Cpu.poke_reg c Isa.rsp (Mem.peek_u64 t.mem (uc + Ksignal.uc_gpr_off Isa.rsp));
    (* The stub's post-FIN selector-restore never executes on this
       path; re-block by hand (the replay itself is exempt by code
       range, as in the classic deployment). *)
    if st.use_selector && t.sud.sud_on then
      Mem.poke_bytes t.mem
        (t.ctx.Cpu.gs_base + Layout.gs_selector)
        (String.make 1 (Char.chr Defs.syscall_dispatch_filter_block))
  end

let rearm_new_task (st : t) (k : kernel) (t : task) =
  if st.use_selector && not t.sud.sud_on then begin
    let addr =
      to_i
        (Kernel.kernel_syscall k t Defs.sys_mmap
           [|
             0L; i64 Layout.gs_size;
             i64 (Defs.prot_read lor Defs.prot_write);
             i64 (Defs.map_private lor Defs.map_anonymous); -1L; 0L;
           |])
    in
    ignore
      (Kernel.kernel_syscall k t Defs.sys_arch_prctl
         [| i64 Defs.arch_set_gs; i64 addr |]);
    ignore
      (Kernel.kernel_syscall k t Defs.sys_prctl
         [|
           i64 Defs.pr_set_syscall_user_dispatch;
           i64 Defs.pr_sys_dispatch_on; i64 st.stub_lo;
           i64 (st.stub_hi - st.stub_lo); i64 addr;
         |])
  end

let hyper_fin (st : t) (k : kernel) (t : task) =
  charge k Layout.hook_restore_cost;
  let uc = uc_of_rsp t in
  let result =
    match Hashtbl.find_opt st.skip t.tid with
    | Some v ->
        Hashtbl.remove st.skip t.tid;
        v
    | None -> Cpu.peek_reg t.ctx Isa.rax
  in
  Mem.poke_u64 t.mem (uc + Ksignal.uc_gpr_off Isa.rax) result;
  (* A task we have never prepared is a fresh fork/clone child that
     resumed inside this stub: re-arm interception for it. *)
  rearm_new_task st k t

let stub_items (st : t) ~prep ~fin =
  let open Sim_asm.Asm in
  [ Label "sigsys_handler" ]
  @ (if st.use_selector then
       Layout.set_selector_items Defs.syscall_dispatch_filter_allow
     else [])
  @ [ hypercall prep; Label "emulated_syscall"; syscall; hypercall fin ]
  @ (if st.use_selector then
       Layout.set_selector_items Defs.syscall_dispatch_filter_block
     else [])
  @ [
      add_ri Isa.rsp 8;
      mov_ri Isa.rax Defs.sys_rt_sigreturn;
      Label "sigreturn_syscall";
      syscall;
    ]

(** Map the handler stub into [t] and register it for SIGSYS.
    Returns the handle; the caller (SUD or seccomp-user install)
    arranges the actual interception trigger. *)
let setup (k : kernel) (t : task) (hook : Hook.t) ~use_selector : t =
  let st =
    {
      kernel = k;
      hook;
      use_selector;
      stats = { interceptions = 0 };
      skip = Hashtbl.create 4;
      handler_addr = 0;
      stub_lo = 0;
      stub_hi = 0;
    }
  in
  let prep = Kernel.register_hypercall k (hyper_prep st) in
  let fin = Kernel.register_hypercall k (hyper_fin st) in
  let stub =
    Sim_asm.Asm.assemble ~base:Layout.interp_code_base
      (stub_items st ~prep ~fin)
  in
  st.handler_addr <- Sim_asm.Asm.symbol stub "sigsys_handler";
  st.stub_lo <- stub.Sim_asm.Asm.base;
  (* The filter/SUD check sees the instruction pointer *after* the
     syscall instruction, so the exempt range must extend past the
     stub's final (sigreturn) instruction. *)
  st.stub_hi <- stub.Sim_asm.Asm.base + String.length stub.Sim_asm.Asm.bytes + 16;
  Mem.map t.mem ~addr:stub.Sim_asm.Asm.base
    ~len:(String.length stub.Sim_asm.Asm.bytes) ~perm:Mem.rx;
  Mem.poke_bytes t.mem stub.Sim_asm.Asm.base stub.Sim_asm.Asm.bytes;
  t.sighand.(Defs.sigsys) <-
    {
      sa_handler = i64 st.handler_addr;
      sa_mask = 0L;
      (* SA_NODEFER, as every SECCOMP_RET_TRAP interposer must: an app
         restorer's rt_sigreturn can trap *inside* our handler window,
         and a masked forced SIGSYS is fatal. *)
      sa_flags = i64 Defs.sa_nodefer;
      sa_restorer = 0L;
    };
  st
