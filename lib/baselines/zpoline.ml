(** The zpoline baseline: pure load-time binary rewriting.

    At install time, every executable region of the process image is
    linearly disassembled; every [syscall] instruction the sweep finds
    is rewritten to [call rax], which lands in the nop-sled trampoline
    at VA 0 (the syscall number is in [rax] per the ABI) and slides
    into the interposer entry.

    What this gets right (and why the paper builds on it): the rewrite
    itself can never fail — [call rax] is exactly as large as
    [syscall].

    What it gets wrong by design (Section II-B): it cannot see code
    that does not exist yet (JIT, dynamic loading), and the linear
    sweep can both miss syscalls hidden by instruction-stream
    desynchronisation and misidentify data as code.  The tests and the
    exhaustiveness experiment exercise both failure modes. *)

open Sim_isa
open Sim_mem
open Sim_cpu
open Sim_kernel
open Types
module Hook = Lazypoline.Hook
module Layout = Lazypoline.Layout

type stats = {
  mutable sites_rewritten : int;
  mutable hits : int;
  mutable bytes_scanned : int;
}

type t = {
  kernel : kernel;
  hook : Hook.t;
  stats : stats;
  mutable entry_addr : int;
  clone_rsi : (int, int64) Hashtbl.t;
      (** caller's rsi across a clone (see [prep_clone]) *)
}

let to_i = Int64.to_int

(** A clone with a fresh child stack resumes the child inside the
    stub, whose [ret] pops a return address the new stack does not
    have: replicate the caller's return address at the top of the
    child stack and hand the kernel the adjusted pointer, exactly as
    the lazypoline fast path does. *)
let prep_clone (st : t) (t : task) =
  let c = t.ctx in
  let new_stack = to_i (Cpu.peek_reg c Isa.rsi) in
  if new_stack <> 0 then begin
    match Mem.peek_u64 t.mem (to_i (Cpu.peek_reg c Isa.rsp)) with
    | ret_addr -> (
        try
          Mem.write_u64 t.mem (new_stack - 8) ret_addr;
          Hashtbl.replace st.clone_rsi t.tid (Cpu.peek_reg c Isa.rsi);
          Cpu.poke_reg c Isa.rsi (Int64.of_int (new_stack - 8))
        with Mem.Fault _ -> ())
    | exception Mem.Fault _ -> ()
  end

let hyper_enter (st : t) (k : kernel) (t : task) =
  charge k Layout.hook_save_cost;
  st.stats.hits <- st.stats.hits + 1;
  let c = t.ctx in
  let nr = to_i (Cpu.peek_reg c Isa.rax) in
  if st.hook.Hook.clobbers_xstate then
    (* zpoline does not preserve extended state: the hook's SSE usage
       leaks straight into the application (Section IV-B-b). *)
    Lazypoline.clobber_xstate t;
  charge k st.hook.Hook.body_cost;
  let site =
    match Mem.peek_u64 t.mem (to_i (Cpu.peek_reg c Isa.rsp)) with
    | ret -> to_i ret - 2
    | exception Mem.Fault _ -> 0
  in
  let ctx =
    {
      Hook.kernel = k;
      task = t;
      nr;
      args = Array.map (fun r -> Cpu.peek_reg c r) Hook.arg_regs;
      site;
    }
  in
  match st.hook.Hook.on_syscall ctx with
  | Hook.Return v ->
      t.trace_path <- None;
      Cpu.poke_reg c Isa.rax v;
      c.rip <- c.rip + 2
  | Hook.Emulate ->
      (* The stub's [syscall] below carries the real dispatch: tag it
         as a rewritten-site fast-path entry for the tracer. *)
      if observing k && t.trace_path = None then
        t.trace_path <- Some Sim_trace.Event.Fast_path;
      if nr = Defs.sys_rt_sigreturn then
        (* A signal restorer's [syscall] was rewritten like any other
           site, so the trampoline call pushed a return address the
           kernel does not expect: rt_sigreturn locates the frame from
           rsp and never returns, so drop it.  (Real zpoline must
           special-case rt_sigreturn for exactly this reason.) *)
        Cpu.poke_reg c Isa.rsp
          (Int64.of_int (to_i (Cpu.peek_reg c Isa.rsp) + 8))
      else if nr = Defs.sys_clone then prep_clone st t

let hyper_exit (st : t) (k : kernel) (t : task) =
  charge k Layout.hook_restore_cost;
  (* restore the caller's rsi after a clone (see prep_clone) *)
  match Hashtbl.find_opt st.clone_rsi t.tid with
  | Some rsi ->
      Hashtbl.remove st.clone_rsi t.tid;
      Cpu.poke_reg t.ctx Isa.rsi rsi
  | None -> ()

let stub_items ~enter ~exit_ =
  let open Sim_asm.Asm in
  [
    Label "syscall_entry"; hypercall enter; Label "emulated_syscall";
    syscall; hypercall exit_; ret;
  ]

(** Rewrite every syscall site a linear sweep finds in the currently
    mapped executable regions.  Returns the number of rewrites.  The
    patches land through [Mem.poke_bytes] directly onto RX pages,
    which bumps each page's generation — decoded-instruction caches
    pick up the rewritten bytes on their next fetch even when the
    sweep runs after code has already executed. *)
let rewrite_image (st : t) (t : task) =
  let n = ref 0 in
  List.iter
    (fun (addr, len, perm) ->
      if perm land Mem.p_x <> 0 && addr <> Layout.trampoline_base
         && addr <> Layout.interp_code_base then begin
        let code = Mem.peek_bytes t.mem addr len in
        st.stats.bytes_scanned <- st.stats.bytes_scanned + len;
        List.iter
          (fun off -> begin
            Mem.poke_bytes t.mem (addr + off) "\xff\xd0";
            (match st.kernel.prov with
            | Some p ->
                Sim_obs.Provenance.note_rewrite p ~site:(addr + off)
                  ~kind:Sim_obs.Provenance.Rw_sweep ~now:(now st.kernel)
            | None -> ());
            incr n
          end)
          (Disasm.find_syscall_sites code)
      end)
    (Mem.regions t.mem);
  st.stats.sites_rewritten <- st.stats.sites_rewritten + !n;
  if st.kernel.tracer <> None then
    Types.trace_emit st.kernel
      (Sim_trace.Event.Sweep
         { sites = !n; bytes_scanned = st.stats.bytes_scanned });
  (match st.kernel.metrics with
  | Some m ->
      incr m.Kmetrics.sweeps;
      Kmetrics.add m.Kmetrics.sweep_sites !n;
      Kmetrics.add m.Kmetrics.sweep_bytes st.stats.bytes_scanned;
      Kmetrics.add m.Kmetrics.rewrites !n
  | None -> ());
  !n

(** Install zpoline into [t]'s process: map the trampoline page at VA
    0 and the interposer stub, then statically rewrite the image. *)
let install (k : kernel) (t : task) (hook : Hook.t) : t =
  let st =
    {
      kernel = k;
      hook;
      stats = { sites_rewritten = 0; hits = 0; bytes_scanned = 0 };
      entry_addr = 0;
      clone_rsi = Hashtbl.create 4;
    }
  in
  let enter = Kernel.register_hypercall k (hyper_enter st) in
  let exit_ = Kernel.register_hypercall k (hyper_exit st) in
  let stub =
    Sim_asm.Asm.assemble ~base:Layout.interp_code_base
      (stub_items ~enter ~exit_)
  in
  st.entry_addr <- Sim_asm.Asm.symbol stub "syscall_entry";
  Mem.map t.mem ~addr:stub.Sim_asm.Asm.base
    ~len:(String.length stub.Sim_asm.Asm.bytes) ~perm:Mem.rx;
  Mem.poke_bytes t.mem stub.Sim_asm.Asm.base stub.Sim_asm.Asm.bytes;
  let tramp = Layout.trampoline_blob ~entry:st.entry_addr in
  Mem.map t.mem ~addr:0 ~len:(String.length tramp.Sim_asm.Asm.bytes)
    ~perm:Mem.rx;
  Mem.poke_bytes t.mem 0 tramp.Sim_asm.Asm.bytes;
  ignore (rewrite_image st t);
  st
