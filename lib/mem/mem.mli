(** Simulated paged virtual memory.

    An address space is a sparse set of 4 KiB pages, each carrying
    read/write/execute permissions and an MPK-style protection key.
    Page 0 is mappable (the zpoline trampoline requires a mapping at
    virtual address 0).  Threads share one [t]; [fork] deep-copies
    with {!clone}. *)

type access = Read | Write | Exec

val access_to_string : access -> string

exception Fault of int * access
(** Raised on permission violations and unmapped accesses: faulting
    address and the attempted access.  The kernel converts it into a
    SIGSEGV for the faulting task. *)

val page_size : int
val page_shift : int
val page_mask : int

(** {1 Permissions} *)

type perm = int
(** Bitmask of {!p_r}, {!p_w}, {!p_x}. *)

val p_r : int
val p_w : int
val p_x : int
val perm : ?r:bool -> ?w:bool -> ?x:bool -> unit -> perm
val rw : perm
val rx : perm
val rwx : perm
val r_only : perm
val perm_to_string : perm -> string
(** e.g. ["r-x"]. *)

(** {1 Address spaces} *)

type t

val create : unit -> t

val map : t -> addr:int -> len:int -> perm:perm -> unit
(** Map (page-rounded) zero-filled pages, replacing any existing ones
    in the range (MAP_FIXED semantics). *)

val unmap : t -> addr:int -> len:int -> unit

val protect : t -> addr:int -> len:int -> perm:perm -> (unit, [ `Unmapped ]) result
(** mprotect: change permissions; [`Unmapped] if any page is missing. *)

val is_mapped : t -> int -> bool
val perm_at : t -> int -> perm option
val page_align_down : int -> int
val page_align_up : int -> int
val pages_in_range : addr:int -> len:int -> int

val find_free : t -> hint:int -> len:int -> int
(** First free page-aligned range of [len] bytes at or above [hint]
    (for [mmap(NULL, ...)]). *)

(** {1 Protection keys (MPK)} *)

val pkey_at : t -> int -> int
(** Key of the page containing the address; 0 = default, never denied. *)

val set_pkey : t -> addr:int -> len:int -> pkey:int -> (unit, [ `Unmapped ]) result
(** Tag a mapped range with a protection key ([pkey_mprotect]). *)

(** {1 Checked accessors (user-mode semantics)} *)

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val fetch_u8 : t -> int -> int
(** Instruction fetch: requires X. *)

val read_u64 : t -> int -> int64
val write_u64 : t -> int -> int64 -> unit
val read_bytes : t -> int -> int -> string
val write_bytes : t -> int -> string -> unit
val read_cstring : ?max:int -> t -> int -> string

(** {1 Privileged accessors (kernel semantics: ignore permissions)} *)

val poke_bytes : t -> int -> string -> unit
val peek_bytes : t -> int -> int -> string
val peek_u64 : t -> int -> int64
val poke_u64 : t -> int -> int64 -> unit

(** {1 Code-mutation tracking (decoded-instruction caches)}

    Every event that can change what executing a page means — a store
    to an executable page, [map]/[unmap] over it, [protect], a pkey
    change — bumps that page's {e generation} (drawn from a monotonic
    per-address-space counter, so remap after unmap can never alias a
    stale value) and the address-space-wide {e code-mutation epoch}.
    A decoded-instruction cache keys entries by page generation and
    revalidates whenever the epoch moves; because all mutators funnel
    through this module, stale decode of self-modified code is
    impossible by construction. *)

val page_gen : t -> int -> int
(** Generation of page number [pn]; [-1] when unmapped. *)

val code_mut_count : t -> int
(** Address-space-wide count of code-mutation events. *)

val exec_page_data : t -> int -> Bytes.t option
(** Backing bytes of page number [pn] if mapped with X, else [None].
    Aliases the live page — valid as a read-only snapshot only while
    {!code_mut_count} is unchanged. *)

val page_data : t -> int -> Bytes.t option
(** Backing bytes of any mapped page (privileged view, used by state
    hashing).  Aliases the live page — a read-only snapshot valid only
    until the page's generation moves. *)

val mapped_pages : t -> int list
(** All mapped page numbers, sorted ascending.  Every store bumps its
    page's generation (executable pages additionally count as code
    mutations), so [page_gen] doubles as a content version for
    incremental whole-address-space hashing. *)

(** {1 Introspection} *)

val clone : t -> t
(** Deep copy, for [fork]. *)

val regions : t -> (int * int * perm) list
(** Mapped regions as (start, length, perm), sorted and coalesced —
    what a static rewriter enumerates. *)

(** {1 Mapping-level trace hook}

    Mapping changes reported to an observer (the machine-wide event
    tracer).  [x] is the new execute bit; [x_gained] flags an mprotect
    that made a previously non-executable page executable — the W^X
    publish step of JIT emission. *)

type trace_event =
  | Tmap of { addr : int; len : int; x : bool }
  | Tunmap of { addr : int; len : int }
  | Tprotect of { addr : int; len : int; x : bool; x_gained : bool }

val set_trace_hook : t -> (trace_event -> unit) option -> unit
(** Install (or clear) the observer for {!map}/{!unmap}/{!protect}.
    Not inherited by {!clone}. *)
