(** Simulated paged virtual memory.

    An address space is a sparse set of 4 KiB pages, each carrying
    read/write/execute permissions.  Page 0 is mappable (the zpoline
    trampoline requires a mapping at virtual address 0, i.e. a real
    deployment sets [mmap_min_addr] to 0).

    Threads share one [t]; [fork] deep-copies it.  Permission
    violations raise {!Fault}, which the kernel converts into a
    SIGSEGV for the faulting task. *)

type access = Read | Write | Exec

let access_to_string = function
  | Read -> "read"
  | Write -> "write"
  | Exec -> "exec"

exception Fault of int * access  (** address, attempted access *)

let page_size = 4096
let page_shift = 12
let page_mask = page_size - 1

(* Permission bits. *)
let p_r = 1
let p_w = 2
let p_x = 4

type perm = int

let perm ?(r = false) ?(w = false) ?(x = false) () =
  (if r then p_r else 0) lor (if w then p_w else 0) lor if x then p_x else 0

let rw = p_r lor p_w
let rx = p_r lor p_x
let rwx = p_r lor p_w lor p_x
let r_only = p_r

let perm_to_string p =
  Printf.sprintf "%c%c%c"
    (if p land p_r <> 0 then 'r' else '-')
    (if p land p_w <> 0 then 'w' else '-')
    (if p land p_x <> 0 then 'x' else '-')

type page = {
  data : Bytes.t;
  mutable pperm : perm;
  mutable pkey : int;
  mutable gen : int;
      (** page generation, for decoded-instruction caches: bumped on
          every event that can change what executing this page means —
          stores while the page is executable, map/unmap over it,
          mprotect, pkey changes.  Generations are drawn from a
          per-address-space monotonic counter, so a page number never
          sees the same generation twice (remapping after unmap cannot
          alias a stale cache entry). *)
}

(** Mapping-level changes, reported to an observer (the kernel's
    tracer) when one is installed with {!set_trace_hook}.  [x] is the
    new mapping's execute bit; [x_gained] marks an mprotect that
    turned a previously non-executable page executable — the W^X
    "publish" a JIT performs after emitting code. *)
type trace_event =
  | Tmap of { addr : int; len : int; x : bool }
  | Tunmap of { addr : int; len : int }
  | Tprotect of { addr : int; len : int; x : bool; x_gained : bool }

type t = {
  pages : (int, page) Hashtbl.t;
  mutable next_gen : int;  (** monotonic generation source *)
  mutable code_mut : int;
      (** count of code-mutation events across the whole address
          space; a cheap epoch that lets a cache skip per-page
          generation checks while nothing executable has changed *)
  mutable trace_hook : (trace_event -> unit) option;
      (** observer for mapping-level changes; not copied by {!clone} *)
  mutable last_pn : int;
      (** one-entry translation memo: page number of [last_page], or
          [min_int] when empty.  Page records mutate in place under
          mprotect/pkey changes, so the memo only has to be dropped
          when a mapping is created or destroyed (map/unmap). *)
  mutable last_page : page;
}

(* Memo filler: permissions 0, so any access through it faults — an
   empty memo slot behaves exactly like unmapped memory. *)
let no_page : page =
  { data = Bytes.create 0; pperm = 0; pkey = 0; gen = -1 }

let create () =
  { pages = Hashtbl.create 64; next_gen = 1; code_mut = 0; trace_hook = None;
    last_pn = min_int; last_page = no_page }

let set_trace_hook t hook = t.trace_hook <- hook

(* Call sites guard on [trace_hook <> None] before building the event
   so the untraced path allocates nothing. *)
let fire t ev = match t.trace_hook with Some f -> f ev | None -> ()

let fresh_gen t =
  let g = t.next_gen in
  t.next_gen <- g + 1;
  g

(* Record a code-mutation event on [p].  Every writer of executable
   memory — the CPU's stores, the kernel's poke paths used by the
   lazypoline SIGSYS rewriter, zpoline's load-time sweep, the loader —
   funnels through this one bump; decoded-instruction caches validate
   against [gen] and can never race a mutator. *)
let bump_page t p =
  p.gen <- fresh_gen t;
  t.code_mut <- t.code_mut + 1

(* Mapping-level events (map/unmap/protect/pkey) change fetch
   semantics even without touching bytes; they always count. *)
let bump_epoch t = t.code_mut <- t.code_mut + 1

(** Current generation of page number [pn]; [-1] when unmapped (never
    a valid cached generation, so stale entries cannot match). *)
let page_gen t pn =
  if t.last_pn = pn then t.last_page.gen
  else match Hashtbl.find_opt t.pages pn with Some p -> p.gen | None -> -1

let code_mut_count t = t.code_mut

let is_mapped t addr = Hashtbl.mem t.pages (addr lsr page_shift)

let page_align_down a = a land lnot page_mask
let page_align_up a = (a + page_mask) land lnot page_mask

(** Map [len] bytes at [addr] (both page-aligned up/down as needed)
    with permission [perm], zero-filled.  Existing pages in the range
    are replaced (MAP_FIXED semantics). *)
let map t ~addr ~len ~perm =
  if len <= 0 then invalid_arg "Mem.map: non-positive length";
  let first = page_align_down addr lsr page_shift in
  let last = (page_align_up (addr + len) - 1) lsr page_shift in
  for pn = first to last do
    Hashtbl.replace t.pages pn
      { data = Bytes.create page_size; pperm = perm; pkey = 0;
        gen = fresh_gen t }
  done;
  t.last_pn <- min_int;
  t.last_page <- no_page;
  bump_epoch t;
  (* Fresh anonymous pages are zeroed. *)
  for pn = first to last do
    Bytes.fill (Hashtbl.find t.pages pn).data 0 page_size '\000'
  done;
  if t.trace_hook <> None then
    fire t (Tmap { addr; len; x = perm land p_x <> 0 })

let unmap t ~addr ~len =
  let first = page_align_down addr lsr page_shift in
  let last = (page_align_up (addr + len) - 1) lsr page_shift in
  for pn = first to last do
    Hashtbl.remove t.pages pn
  done;
  t.last_pn <- min_int;
  t.last_page <- no_page;
  (* Caches key entries by generation; an unmapped page reads back
     generation -1, and any future map() draws a fresh one — but the
     epoch must still advance so caches revalidate at all. *)
  bump_epoch t;
  if t.trace_hook <> None then fire t (Tunmap { addr; len })

(** Change permissions on a mapped range.  Returns [Error `Unmapped]
    if any page in the range is missing (like mprotect's ENOMEM). *)
let protect t ~addr ~len ~perm =
  let first = page_align_down addr lsr page_shift in
  let last = (page_align_up (addr + len) - 1) lsr page_shift in
  let ok = ref true in
  for pn = first to last do
    if not (Hashtbl.mem t.pages pn) then ok := false
  done;
  if not !ok then Error `Unmapped
  else (
    let x_gained = ref false in
    for pn = first to last do
      let p = Hashtbl.find t.pages pn in
      if p.pperm land p_x = 0 && perm land p_x <> 0 then x_gained := true;
      p.pperm <- perm;
      (* An X page may have been rewritten while W (the lazypoline
         RW/RX flip, JIT emission followed by mprotect): the flip back
         is the moment stale decodes must die. *)
      p.gen <- fresh_gen t
    done;
    bump_epoch t;
    if t.trace_hook <> None then
      fire t
        (Tprotect { addr; len; x = perm land p_x <> 0; x_gained = !x_gained });
    Ok ())

let perm_at t addr =
  match Hashtbl.find_opt t.pages (addr lsr page_shift) with
  | Some p -> Some p.pperm
  | None -> None

(** Protection key of the page containing [addr] (0 = default key,
    never denied). *)
let pkey_at t addr =
  match Hashtbl.find_opt t.pages (addr lsr page_shift) with
  | Some p -> p.pkey
  | None -> 0

(** Tag a mapped range with protection key [pkey] (pkey_mprotect). *)
let set_pkey t ~addr ~len ~pkey =
  let first = page_align_down addr lsr page_shift in
  let last = (page_align_up (addr + len) - 1) lsr page_shift in
  let ok = ref true in
  for pn = first to last do
    if not (Hashtbl.mem t.pages pn) then ok := false
  done;
  if not !ok then Error `Unmapped
  else (
    for pn = first to last do
      let p = Hashtbl.find t.pages pn in
      p.pkey <- pkey;
      p.gen <- fresh_gen t
    done;
    bump_epoch t;
    Ok ())

(** Number of mapped pages overlapping [addr, addr+len). *)
let pages_in_range ~addr ~len =
  let first = page_align_down addr lsr page_shift in
  let last = (page_align_up (addr + len) - 1) lsr page_shift in
  last - first + 1

(** Find a free page-aligned range of [len] bytes at or above [hint].
    Used for [mmap(NULL, ...)]. *)
let find_free t ~hint ~len =
  let npages = pages_in_range ~addr:0 ~len in
  let start = page_align_up hint lsr page_shift in
  let rec scan pn =
    let rec check i =
      if i >= npages then true
      else if Hashtbl.mem t.pages (pn + i) then false
      else check (i + 1)
    in
    if check 0 then pn lsl page_shift else scan (pn + 1)
  in
  scan start

let check_page p addr access need =
  if p.pperm land need = 0 then raise (Fault (addr, access))

(* Stores only invalidate decoded code when the target page is
   executable; writes to plain data pages stay epoch-silent so the
   common case costs one branch. *)
(* Every store versions its page: executable pages additionally count
   as a code mutation (icache revalidation), data pages only advance
   their generation so content observers (e.g. the audit layer's
   per-page hash cache) can skip unchanged pages without perturbing
   the code-mutation epoch. *)
let store_bump t p =
  if p.pperm land p_x <> 0 then bump_page t p else p.gen <- fresh_gen t

(* One-entry-memoized page lookup: the memo turns the common
   same-page-as-last-time access into two compares.  Returns
   [no_page] (permissions 0, so every permission check faults) when
   [pn] is unmapped — the accessors below then raise the same
   [Fault] they always did, just from [check_page].  [no_page] is
   never memoized. *)
let find_page t pn =
  if t.last_pn = pn then t.last_page
  else
    match Hashtbl.find_opt t.pages pn with
    | Some p ->
        t.last_pn <- pn;
        t.last_page <- p;
        p
    | None -> no_page

(* Byte accessors with permission checks. *)

let read_u8 t addr =
  let p = find_page t (addr lsr page_shift) in
  check_page p addr Read p_r;
  Char.code (Bytes.unsafe_get p.data (addr land page_mask))

let write_u8 t addr v =
  let p = find_page t (addr lsr page_shift) in
  check_page p addr Write p_w;
  store_bump t p;
  Bytes.unsafe_set p.data (addr land page_mask) (Char.unsafe_chr (v land 0xFF))

(** Instruction fetch: requires execute permission. *)
let fetch_u8 t addr =
  let p = find_page t (addr lsr page_shift) in
  check_page p addr Exec p_x;
  Char.code (Bytes.unsafe_get p.data (addr land page_mask))

let read_u64 t addr =
  if addr land page_mask <= page_size - 8 then (
    let p = find_page t (addr lsr page_shift) in
    check_page p addr Read p_r;
    Bytes.get_int64_le p.data (addr land page_mask))
  else
    (* Crosses a page boundary: fall back to bytes. *)
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_u8 t (addr + i)))
    done;
    !v

let write_u64 t addr v =
  if addr land page_mask <= page_size - 8 then (
    let p = find_page t (addr lsr page_shift) in
    check_page p addr Write p_w;
    store_bump t p;
    Bytes.set_int64_le p.data (addr land page_mask) v)
  else
    for i = 0 to 7 do
      write_u8 t (addr + i)
        (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
    done

let read_bytes t addr len =
  let b = Bytes.create len in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = a land page_mask in
    let chunk = min (len - !i) (page_size - off) in
    let p = find_page t (a lsr page_shift) in
    check_page p a Read p_r;
    Bytes.blit p.data off b !i chunk;
    i := !i + chunk
  done;
  Bytes.unsafe_to_string b

let write_bytes t addr (s : string) =
  let len = String.length s in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = a land page_mask in
    let chunk = min (len - !i) (page_size - off) in
    let p = find_page t (a lsr page_shift) in
    check_page p a Write p_w;
    store_bump t p;
    Bytes.blit_string s !i p.data off chunk;
    i := !i + chunk
  done

(** Privileged store that ignores the W permission — used by the
    loader and by the kernel when building signal frames, never by
    simulated code. *)
let poke_bytes t addr (s : string) =
  let len = String.length s in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = a land page_mask in
    let chunk = min (len - !i) (page_size - off) in
    (match Hashtbl.find_opt t.pages (a lsr page_shift) with
    | Some p ->
        (* poke ignores W, but not the invalidation protocol: this is
           the path zpoline's sweep and rewrite_site patch code
           through, directly onto RX pages. *)
        store_bump t p;
        Bytes.blit_string s !i p.data off chunk
    | None -> raise (Fault (a, Write)));
    i := !i + chunk
  done

(** Privileged read that ignores permissions (kernel / debugger view). *)
let peek_bytes t addr len =
  let b = Bytes.create len in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = a land page_mask in
    let chunk = min (len - !i) (page_size - off) in
    (match Hashtbl.find_opt t.pages (a lsr page_shift) with
    | Some p -> Bytes.blit p.data off b !i chunk
    | None -> raise (Fault (a, Read)));
    i := !i + chunk
  done;
  Bytes.unsafe_to_string b

let peek_u64 t addr =
  if addr land page_mask <= page_size - 8 then begin
    let p = find_page t (addr lsr page_shift) in
    (* peek ignores permissions, so a PROT_NONE page is readable here —
       only true unmapped memory (the [no_page] sentinel) faults. *)
    if p == no_page then raise (Fault (addr, Read));
    Bytes.get_int64_le p.data (addr land page_mask)
  end
  else
    let s = peek_bytes t addr 8 in
    Bytes.get_int64_le (Bytes.of_string s) 0

let poke_u64 t addr v =
  if addr land page_mask <= page_size - 8 then begin
    let p = find_page t (addr lsr page_shift) in
    if p == no_page then raise (Fault (addr, Write));
    store_bump t p;
    Bytes.set_int64_le p.data (addr land page_mask) v
  end
  else begin
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    poke_bytes t addr (Bytes.to_string b)
  end

(** Read a NUL-terminated string (bounded by [max], default 4096). *)
let read_cstring ?(max = 4096) t addr =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= max then Buffer.contents buf
    else
      let c = read_u8 t (addr + i) in
      if c = 0 then Buffer.contents buf
      else (
        Buffer.add_char buf (Char.chr c);
        go (i + 1))
  in
  go 0

(** Deep copy for [fork]. *)
let clone t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter
    (fun pn p ->
      Hashtbl.replace pages pn
        { data = Bytes.copy p.data; pperm = p.pperm; pkey = p.pkey;
          gen = p.gen })
    t.pages;
  (* Generations carry over (bytes are identical at the fork point),
     but the two address spaces diverge from here on; each must get
     its own decoded-instruction cache — and its own trace hook, if
     anyone wants one (the child's events are not the parent's). *)
  { pages; next_gen = t.next_gen; code_mut = t.code_mut; trace_hook = None;
    last_pn = min_int; last_page = no_page }

(** Live backing bytes of page number [pn] when it is mapped and
    executable, for instruction-cache fills.  The returned [Bytes.t]
    aliases the page: treat it as a read-only snapshot that is valid
    only while {!code_mut_count} is unchanged — any mutation of
    executable memory bumps the epoch (and the page's generation),
    which is exactly the signal to drop both the snapshot and any
    decodes made from it. *)
let exec_page_data t pn =
  match Hashtbl.find_opt t.pages pn with
  | Some p when p.pperm land p_x <> 0 -> Some p.data
  | _ -> None

(** Backing bytes of any mapped page, regardless of permission — the
    privileged view used by state hashing.  Same aliasing caveat as
    {!exec_page_data}: a snapshot valid only until the page's
    generation moves. *)
let page_data t pn =
  match Hashtbl.find_opt t.pages pn with Some p -> Some p.data | None -> None

(** All mapped page numbers, sorted ascending — a deterministic
    iteration order for whole-address-space hashing. *)
let mapped_pages t =
  Hashtbl.fold (fun pn _ acc -> pn :: acc) t.pages [] |> List.sort compare

(** Mapped regions as (first_addr, length_bytes, perm) triples, sorted,
    with adjacent same-permission pages coalesced.  Used by static
    rewriters to enumerate executable code. *)
let regions t =
  let pns =
    Hashtbl.fold (fun pn p acc -> (pn, p.pperm) :: acc) t.pages []
    |> List.sort compare
  in
  let rec coalesce = function
    | [] -> []
    | (pn, pm) :: rest ->
        let rec extend last = function
          | (pn', pm') :: tl when pn' = last + 1 && pm' = pm -> extend pn' tl
          | tl -> (last, tl)
        in
        let last, tl = extend pn rest in
        (pn lsl page_shift, (last - pn + 1) * page_size, pm) :: coalesce tl
  in
  coalesce pns
