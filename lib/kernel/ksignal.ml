(** Signal delivery and [rt_sigreturn].

    Signal frames live in simulated user memory with a fixed layout,
    so user-space code — in particular the interposer's SIGSYS
    handler — can inspect and *modify* the saved context exactly the
    way lazypoline rewrites [REG_RIP] in the real ucontext.

    Frame layout, relative to the frame base [F] (16-byte aligned;
    [rsp] at handler entry equals [F]):

    {v
    F+  0  return address for the handler (sa_restorer)
    F+  8  siginfo: si_signo
    F+ 16           si_code
    F+ 24           si_call_addr
    F+ 32           si_syscall
    F+ 40  ucontext: 16 GPRs            (uc+0   .. uc+127)
    F+168            saved rip           (uc+128)
    F+176            flags (zf|sf|cf)    (uc+136)
    F+184            saved sigmask       (uc+144)
    F+192            xstate              (uc+152, 328 bytes)
    v}

    Handler-entry registers follow the SysV signal ABI:
    [rdi = signo], [rsi = &siginfo = F+8], [rdx = &ucontext = F+40]. *)

open Sim_isa
open Sim_mem
open Sim_cpu
open Types

let frame_size = 528
let redzone = 128

(* ucontext-relative offsets (add to the pointer in rdx). *)
let uc_gpr_off r = 8 * r
let uc_rip_off = 128
let uc_flags_off = 136
let uc_mask_off = 144
let uc_xstate_off = 152
let uc_pkru_off = 480  (* after the 328-byte xstate *)

(* siginfo-relative offsets (add to the pointer in rsi). *)
let si_signo_off = 0
let si_code_off = 8
let si_call_addr_off = 16
let si_syscall_off = 24

let default_ignored s =
  s = Defs.sigchld || s = Defs.sigcont || s = 28 (* SIGWINCH *) || s = 23
  (* SIGURG *)

exception Killed_by_signal of task * int

(** Terminate [t] (and, for a fatal signal, its whole thread group)
    without running user code.  Registered exit work is the caller's
    job; we only flip states here. *)
let kill_task_group (k : kernel) (t : task) ~code =
  let victims =
    Hashtbl.fold
      (fun _ u acc ->
        if u.tgid = t.tgid && u.state <> Zombie then u :: acc else acc)
      k.tasks []
  in
  List.iter
    (fun u ->
      u.exit_code <- code;
      u.state <- Zombie;
      u.on_cpu <- -1)
    victims

let flags_word (c : Cpu.t) =
  Int64.of_int
    ((if c.zf then 1 else 0)
    lor (if c.sf then 2 else 0)
    lor if c.cf then 4 else 0)

let set_flags_word (c : Cpu.t) (v : int64) =
  let v = Int64.to_int v in
  c.zf <- v land 1 <> 0;
  c.sf <- v land 2 <> 0;
  c.cf <- v land 4 <> 0

(** Queue [sig_] for [t].  [info] travels with it (SIGSYS carries the
    syscall number and call address). *)
let post (k : kernel) (t : task) ?(info : sig_info option) (sig_ : int) =
  ignore k;
  if t.state <> Zombie then begin
    t.pending <- Int64.logor t.pending (sig_bit sig_);
    (match info with
    | Some i ->
        t.pending_info <-
          (sig_, i) :: List.remove_assoc sig_ t.pending_info
    | None -> ())
  end

(** Build the frame for [sig_] and redirect [t] to its handler.
    Assumes a handler is installed (callers check).  Charges the
    signal-delivery cost. *)
let push_frame (k : kernel) (t : task) (sig_ : int) (info : sig_info) =
  let act = t.sighand.(sig_) in
  let c = t.ctx in
  enter_kernel k;
  charge k k.cost.signal_delivery;
  if k.tracer <> None then
    trace_emit k
      (Sim_trace.Event.Signal_deliver
         { signo = sig_; handler = Int64.to_int act.sa_handler });
  (match k.metrics with
  | Some m -> incr m.Kmetrics.signal_deliveries
  | None -> ());
  (* Audit classification: a SIGSYS raised by SUD or a seccomp TRAP
     filter is interposition plumbing (mechanism-private); any other
     delivery is part of the application's observable history.  The
     frame scope is remembered so the matching sigreturn inherits
     it. *)
  (match k.auditor with
  | Some a ->
      let mech =
        sig_ = Defs.sigsys
        && (info.si_code = Defs.sys_seccomp_code
           || info.si_code = Defs.sys_user_dispatch_code)
      in
      Sim_audit.Audit.record_signal a ~tid:t.tid ~signo:sig_ ~mech
  | None -> ());
  t.sig_depth <- t.sig_depth + 1;
  let sp = Int64.to_int (Cpu.peek_reg c Isa.rsp) in
  let f = (sp - redzone - frame_size) land lnot 15 in
  (try
     (* The kernel writes the frame regardless of page protections
        (it is the kernel); an unmapped stack is a fatal fault. *)
     Mem.poke_u64 t.mem (f + 0) act.sa_restorer;
     Mem.poke_u64 t.mem (f + 8) (Int64.of_int info.si_signo);
     Mem.poke_u64 t.mem (f + 16) (Int64.of_int info.si_code);
     Mem.poke_u64 t.mem (f + 24) (Int64.of_int info.si_call_addr);
     Mem.poke_u64 t.mem (f + 32) (Int64.of_int info.si_syscall);
     for r = 0 to 15 do
       Mem.poke_u64 t.mem (f + 40 + (8 * r)) (Cpu.peek_reg c r)
     done;
     Mem.poke_u64 t.mem (f + 40 + uc_rip_off) (Int64.of_int c.rip);
     Mem.poke_u64 t.mem (f + 40 + uc_flags_off) (flags_word c);
     Mem.poke_u64 t.mem (f + 40 + uc_mask_off) t.sigmask;
     (* xstate (and PKRU, which lives in xstate on real parts) is
        saved with kernel privilege as well. *)
     Mem.poke_bytes t.mem (f + 40 + uc_xstate_off) (Cpu.xstate_to_bytes c.x);
     Mem.poke_u64 t.mem (f + 40 + uc_pkru_off) (Int64.of_int c.pkru)
   with Mem.Fault _ ->
     kill_task_group k t ~code:(128 + Defs.sigsegv);
     raise (Killed_by_signal (t, Defs.sigsegv)));
  (* Enter the handler. *)
  Cpu.poke_reg c Isa.rsp (Int64.of_int f);
  Cpu.poke_reg c Isa.rdi (Int64.of_int sig_);
  Cpu.poke_reg c Isa.rsi (Int64.of_int (f + 8));
  Cpu.poke_reg c Isa.rdx (Int64.of_int (f + 40));
  c.rip <- Int64.to_int act.sa_handler;
  (* SA_NODEFER: leave the signal itself deliverable while its handler
     runs (sa_mask still applies). *)
  let self =
    if Int64.logand act.sa_flags (Int64.of_int Defs.sa_nodefer) <> 0L then 0L
    else sig_bit sig_
  in
  t.sigmask <- Int64.logor t.sigmask (Int64.logor act.sa_mask self)

(** Deliver one pending, unmasked signal if any.  Returns [true] when
    user-visible control flow changed (handler entered or task
    killed). *)
let deliver_pending (k : kernel) (t : task) : bool =
  let deliverable = Int64.logand t.pending (Int64.lognot t.sigmask) in
  if deliverable = 0L then false
  else begin
    (* Lowest-numbered signal first, like Linux. *)
    let rec first s =
      if s > Defs.nsig then None
      else if Int64.logand deliverable (sig_bit s) <> 0L then Some s
      else first (s + 1)
    in
    match first 1 with
    | None -> false
    | Some sig_ ->
        t.pending <- Int64.logand t.pending (Int64.lognot (sig_bit sig_));
        let info =
          match List.assoc_opt sig_ t.pending_info with
          | Some i -> i
          | None ->
              { si_signo = sig_; si_code = 0; si_call_addr = 0; si_syscall = 0 }
        in
        t.pending_info <- List.remove_assoc sig_ t.pending_info;
        let act = t.sighand.(sig_) in
        if act.sa_handler = Defs.sig_ign then false
        else if act.sa_handler = Defs.sig_dfl then
          if default_ignored sig_ then false
          else begin
            kill_task_group k t ~code:(128 + sig_);
            true
          end
        else begin
          push_frame k t sig_ info;
          true
        end
  end

(** First pending, unmasked signal that would actually do something
    (run a handler or kill) — the one [deliver_pending] will pick.
    Ignored signals must not interrupt blocked syscalls. *)
let first_actionable (t : task) : int option =
  let deliverable = Int64.logand t.pending (Int64.lognot t.sigmask) in
  let rec scan s =
    if s > Defs.nsig then None
    else if Int64.logand deliverable (sig_bit s) <> 0L then
      let act = t.sighand.(s) in
      if act.sa_handler = Defs.sig_ign then scan (s + 1)
      else if act.sa_handler = Defs.sig_dfl && default_ignored s then
        scan (s + 1)
      else Some s
    else scan (s + 1)
  in
  if deliverable = 0L then None else scan 1

let has_actionable_signal (t : task) = first_actionable t <> None

(** Force-deliver [sig_]: used for synchronous faults (SIGSEGV,
    SIGILL, SIGFPE, seccomp/SUD SIGSYS).  If the signal is masked or
    has no handler, the task dies — matching the kernel's
    [force_sig_info]. *)
let force (k : kernel) (t : task) (sig_ : int) (info : sig_info) =
  let act = t.sighand.(sig_) in
  let masked = Int64.logand t.sigmask (sig_bit sig_) <> 0L in
  if masked || act.sa_handler = Defs.sig_dfl || act.sa_handler = Defs.sig_ign
  then kill_task_group k t ~code:(128 + sig_)
  else push_frame k t sig_ info

(** Implement [rt_sigreturn]: restore the context saved in the frame
    that [t]'s [rsp] currently points into (rsp = F + 8, because the
    handler's [ret] popped the restorer address and the restorer
    issued the syscall). *)
let sigreturn (k : kernel) (t : task) : unit =
  charge k k.cost.sigreturn_kernel;
  trace_emit k Sim_trace.Event.Sigreturn;
  (match k.metrics with
  | Some m -> incr m.Kmetrics.sigreturns
  | None -> ());
  (match k.auditor with
  | Some a -> Sim_audit.Audit.record_sigreturn a ~tid:t.tid
  | None -> ());
  t.sig_depth <- max 0 (t.sig_depth - 1);
  let c = t.ctx in
  let f = Int64.to_int (Cpu.peek_reg c Isa.rsp) - 8 in
  try
    for r = 0 to 15 do
      Cpu.poke_reg c r (Mem.peek_u64 t.mem (f + 40 + (8 * r)))
    done;
    c.rip <- Int64.to_int (Mem.peek_u64 t.mem (f + 40 + uc_rip_off));
    set_flags_word c (Mem.peek_u64 t.mem (f + 40 + uc_flags_off));
    t.sigmask <- Mem.peek_u64 t.mem (f + 40 + uc_mask_off);
    let xs = Mem.peek_bytes t.mem (f + 40 + uc_xstate_off) Cpu.xstate_bytes in
    Cpu.xstate_of_bytes c.x xs;
    c.pkru <- Int64.to_int (Mem.peek_u64 t.mem (f + 40 + uc_pkru_off)) land 0xFFFF
  with Mem.Fault _ ->
    kill_task_group k t ~code:(128 + Defs.sigsegv)
