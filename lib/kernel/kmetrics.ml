(** The kernel's named metric bundle.

    Pre-registers every metric the simulated kernel and the
    interposers bump on their hot paths, so instrumentation sites
    touch plain [int ref]s instead of hashing into the registry.
    Hangs off [Types.kernel] as [k.metrics : Kmetrics.t option];
    [None] (the default) is the zero-cost path.

    Naming follows Prometheus conventions ([sim_] prefix, [_total]
    for counters).  Per-syscall-number counters are created lazily on
    first dispatch of that number, so the registry only carries rows
    for syscalls the workload actually made. *)

module M = Sim_metrics.Metrics
module Ev = Sim_trace.Event

type t = {
  registry : M.t;
  syscalls_total : int ref;
  by_path : int ref array;  (** indexed by {!path_index} *)
  by_nr : int ref option array;  (** lazily-registered, indexed by nr *)
  syscall_cycles : M.hist;
  ctx_switches : int ref;
  signal_deliveries : int ref;
  sigreturns : int ref;
  selector_flips : int ref;
  rewrites : int ref;
  sweeps : int ref;
  sweep_sites : int ref;
  sweep_bytes : int ref;
  mmap_bytes : int ref;
  munmap_bytes : int ref;
  mprotect_bytes : int ref;
  wx_flips : int ref;
}

let path_index = function
  | Ev.Sud_sigsys -> 0
  | Ev.Fast_path -> 1
  | Ev.Seccomp_path -> 2
  | Ev.Ptrace_path -> 3
  | Ev.Direct -> 4

let create () =
  let r = M.create () in
  let by_path = Array.make 5 (ref 0) in
  List.iter
    (fun p ->
      by_path.(path_index p) <-
        M.counter r
          ~help:"syscall dispatches by interposition path"
          ~labels:[ ("path", Ev.path_name p) ]
          "sim_syscalls_by_path_total")
    Ev.all_paths;
  {
    registry = r;
    syscalls_total =
      M.counter r ~help:"syscalls dispatched by the simulated kernel"
        "sim_syscalls_total";
    by_path;
    by_nr = Array.make (Defs.max_syscall + 1) None;
    syscall_cycles =
      M.histogram r ~help:"simulated cycles per syscall (entry to exit)"
        "sim_syscall_cycles";
    ctx_switches =
      M.counter r ~help:"scheduler context switches" "sim_context_switches_total";
    signal_deliveries =
      M.counter r ~help:"signal handler frames pushed"
        "sim_signal_deliveries_total";
    sigreturns = M.counter r ~help:"rt_sigreturns" "sim_sigreturns_total";
    selector_flips =
      M.counter r ~help:"SUD selector flips by interposer hypercalls"
        "sim_sud_selector_flips_total";
    rewrites =
      M.counter r ~help:"syscall sites rewritten to call rax"
        "sim_rewrites_total";
    sweeps =
      M.counter r ~help:"zpoline-style full-image rewrite sweeps"
        "sim_rewrite_sweeps_total";
    sweep_sites =
      M.counter r ~help:"syscall sites found by rewrite sweeps"
        "sim_rewrite_sweep_sites_total";
    sweep_bytes =
      M.counter r ~help:"executable bytes scanned by rewrite sweeps"
        "sim_rewrite_sweep_bytes_total";
    mmap_bytes = M.counter r ~help:"bytes mapped" "sim_mmap_bytes_total";
    munmap_bytes = M.counter r ~help:"bytes unmapped" "sim_munmap_bytes_total";
    mprotect_bytes =
      M.counter r ~help:"bytes reprotected" "sim_mprotect_bytes_total";
    wx_flips =
      M.counter r
        ~help:"pages flipped writable-to-executable (JIT publish steps)"
        "sim_wx_flips_total";
  }

let add r n = r := !r + n

let nr_counter m nr =
  match m.by_nr.(nr) with
  | Some c -> c
  | None ->
      let c =
        M.counter m.registry ~help:"syscall dispatches by syscall number"
          ~labels:[ ("nr", string_of_int nr); ("name", Defs.syscall_name nr) ]
          "sim_syscalls_by_nr_total"
      in
      m.by_nr.(nr) <- Some c;
      c

(** One dispatched syscall: bumps the total, the per-path and the
    per-number counters. *)
let count_syscall m ~nr ~path =
  incr m.syscalls_total;
  incr m.by_path.(path_index path);
  if nr >= 0 && nr <= Defs.max_syscall then incr (nr_counter m nr)

let observe_latency m cycles = M.observe m.syscall_cycles cycles

(** Per-path count accessors for /proc and [simtrace stat]. *)
let path_count m p = !(m.by_path.(path_index p))
let fast_hits m = path_count m Ev.Fast_path
let slow_hits m = path_count m Ev.Sud_sigsys

let prometheus m = M.prometheus m.registry
let to_json m = M.to_json m.registry
