(** ABI constants of the simulated kernel.

    Syscall numbers, errno values, signal numbers and flag bits follow
    x86-64 Linux so that workloads, traces and filters read like the
    real thing. *)

(** {1 Syscall numbers (x86-64)} *)

let sys_read = 0
let sys_write = 1
let sys_open = 2
let sys_close = 3
let sys_stat = 4
let sys_fstat = 5
let sys_lseek = 8
let sys_mmap = 9
let sys_mprotect = 10
let sys_munmap = 11
let sys_brk = 12
let sys_rt_sigaction = 13
let sys_rt_sigprocmask = 14
let sys_rt_sigreturn = 15
let sys_ioctl = 16
let sys_pipe = 22
let sys_sched_yield = 24
let sys_dup = 32
let sys_nanosleep = 35
let sys_getpid = 39
let sys_sendfile = 40
let sys_socket = 41
let sys_connect = 42
let sys_accept = 43
let sys_shutdown = 48
let sys_bind = 49
let sys_listen = 50
let sys_clone = 56
let sys_fork = 57
let sys_vfork = 58
let sys_execve = 59
let sys_exit = 60
let sys_wait4 = 61
let sys_kill = 62
let sys_uname = 63
let sys_fcntl = 72
let sys_getdents = 78
let sys_getcwd = 79
let sys_chdir = 80
let sys_rename = 82
let sys_mkdir = 83
let sys_rmdir = 84
let sys_unlink = 87
let sys_chmod = 90
let sys_gettimeofday = 96
let sys_ptrace = 101
let sys_getuid = 102
let sys_prctl = 157
let sys_arch_prctl = 158
let sys_gettid = 186
let sys_futex = 202
let sys_epoll_create = 213
let sys_set_tid_address = 218
let sys_clock_gettime = 228
let sys_exit_group = 231
let sys_epoll_wait = 232
let sys_epoll_ctl = 233
let sys_tgkill = 234
let sys_openat = 257
let sys_set_robust_list = 273
let sys_accept4 = 288
let sys_epoll_create1 = 291
let sys_seccomp = 317
let sys_getrandom = 318
let sys_pkey_mprotect = 329

(** Highest valid syscall number; anything above returns -ENOSYS.  The
    microbenchmark uses number 500 precisely because it does not
    exist. *)
let max_syscall = 450

let syscall_name =
  let tbl =
    [
      (sys_read, "read"); (sys_write, "write"); (sys_open, "open");
      (sys_close, "close"); (sys_stat, "stat"); (sys_fstat, "fstat");
      (sys_lseek, "lseek"); (sys_mmap, "mmap"); (sys_mprotect, "mprotect");
      (sys_munmap, "munmap"); (sys_brk, "brk");
      (sys_rt_sigaction, "rt_sigaction");
      (sys_rt_sigprocmask, "rt_sigprocmask");
      (sys_rt_sigreturn, "rt_sigreturn"); (sys_ioctl, "ioctl");
      (sys_pipe, "pipe"); (sys_sched_yield, "sched_yield"); (sys_dup, "dup");
      (sys_nanosleep, "nanosleep"); (sys_getpid, "getpid");
      (sys_sendfile, "sendfile"); (sys_socket, "socket");
      (sys_connect, "connect"); (sys_accept, "accept");
      (sys_shutdown, "shutdown"); (sys_bind, "bind"); (sys_listen, "listen");
      (sys_clone, "clone"); (sys_fork, "fork"); (sys_vfork, "vfork");
      (sys_execve, "execve"); (sys_exit, "exit"); (sys_wait4, "wait4");
      (sys_kill, "kill"); (sys_uname, "uname"); (sys_fcntl, "fcntl");
      (sys_getdents, "getdents"); (sys_getcwd, "getcwd");
      (sys_chdir, "chdir"); (sys_rename, "rename"); (sys_mkdir, "mkdir");
      (sys_rmdir, "rmdir"); (sys_unlink, "unlink"); (sys_chmod, "chmod");
      (sys_gettimeofday, "gettimeofday"); (sys_ptrace, "ptrace");
      (sys_getuid, "getuid"); (sys_prctl, "prctl");
      (sys_arch_prctl, "arch_prctl"); (sys_gettid, "gettid");
      (sys_futex, "futex"); (sys_epoll_create, "epoll_create");
      (sys_set_tid_address, "set_tid_address");
      (sys_clock_gettime, "clock_gettime"); (sys_exit_group, "exit_group");
      (sys_epoll_wait, "epoll_wait"); (sys_epoll_ctl, "epoll_ctl");
      (sys_tgkill, "tgkill"); (sys_openat, "openat");
      (sys_set_robust_list, "set_robust_list"); (sys_accept4, "accept4");
      (sys_epoll_create1, "epoll_create1"); (sys_seccomp, "seccomp");
      (sys_getrandom, "getrandom"); (sys_pkey_mprotect, "pkey_mprotect");
    ]
  in
  let h = Hashtbl.create 64 in
  List.iter (fun (n, s) -> Hashtbl.replace h n s) tbl;
  fun n ->
    match Hashtbl.find_opt h n with
    | Some s -> s
    | None -> Printf.sprintf "sys_%d" n

(** {1 errno} *)

let eperm = 1
let enoent = 2
let eintr = 4
let ebadf = 9
let echild = 10
let eagain = 11
let enomem = 12
let eacces = 13
let efault = 14
let eexist = 17
let enotdir = 20
let eisdir = 21
let einval = 22
let emfile = 24
let enospc = 28
let espipe = 29
let epipe = 32
let enosys = 38
let enotempty = 39
let enotsock = 88
let eaddrinuse = 98
let econnrefused = 111
let enotsup = 95
let etimedout = 110

let errno_name e =
  match e with
  | 1 -> "EPERM" | 2 -> "ENOENT" | 4 -> "EINTR" | 9 -> "EBADF"
  | 10 -> "ECHILD" | 11 -> "EAGAIN" | 12 -> "ENOMEM" | 13 -> "EACCES"
  | 14 -> "EFAULT" | 17 -> "EEXIST" | 20 -> "ENOTDIR" | 21 -> "EISDIR"
  | 22 -> "EINVAL" | 24 -> "EMFILE" | 28 -> "ENOSPC" | 29 -> "ESPIPE"
  | 32 -> "EPIPE" | 38 -> "ENOSYS" | 39 -> "ENOTEMPTY" | 88 -> "ENOTSOCK"
  | 95 -> "ENOTSUP" | 98 -> "EADDRINUSE" | 110 -> "ETIMEDOUT"
  | 111 -> "ECONNREFUSED"
  | e -> Printf.sprintf "E%d" e

(** {1 Signals} *)

let sigint = 2
let sigill = 4
let sigabrt = 6
let sigfpe = 8
let sigkill = 9
let sigusr1 = 10
let sigsegv = 11
let sigusr2 = 12
let sigpipe = 13
let sigalrm = 14
let sigterm = 15
let sigchld = 17
let sigcont = 18
let sigstop = 19
let sigsys = 31
let nsig = 64

let signal_name = function
  | 2 -> "SIGINT" | 4 -> "SIGILL" | 6 -> "SIGABRT" | 8 -> "SIGFPE"
  | 9 -> "SIGKILL" | 10 -> "SIGUSR1" | 11 -> "SIGSEGV" | 12 -> "SIGUSR2"
  | 13 -> "SIGPIPE" | 14 -> "SIGALRM" | 15 -> "SIGTERM" | 17 -> "SIGCHLD"
  | 18 -> "SIGCONT" | 19 -> "SIGSTOP" | 31 -> "SIGSYS"
  | n -> Printf.sprintf "SIG%d" n

(* sig handler sentinels *)
let sig_dfl = 0L
let sig_ign = 1L

(* sigaction sa_flags *)
let sa_restart = 0x10000000

let sa_nodefer = 0x40000000
(** Do not add the signal to the mask while its handler runs.  This is
    how SECCOMP_RET_TRAP interposers keep a nested trap (e.g. an app
    restorer's rt_sigreturn caught by the filter inside the SIGSYS
    handler window) from force-killing the process. *)

(** May an interrupted blocking instance of [nr] be transparently
    restarted when the interrupting handler was installed with
    SA_RESTART?  Follows signal(7): I/O-style waits restart,
    nanosleep / epoll_wait / futex always report EINTR. *)
let syscall_restartable nr =
  nr = sys_read || nr = sys_write || nr = sys_accept || nr = sys_accept4
  || nr = sys_wait4 || nr = sys_connect || nr = sys_sendfile

(* si_code for SIGSYS *)
let sys_seccomp_code = 1 (* SYS_SECCOMP *)
let sys_user_dispatch_code = 2 (* SYS_USER_DISPATCH *)

(** {1 open(2) flags} *)

let o_rdonly = 0
let o_wronly = 1
let o_rdwr = 2
let o_creat = 0o100
let o_trunc = 0o1000
let o_append = 0o2000
let o_nonblock = 0o4000
let o_directory = 0o200000
let o_cloexec = 0o2000000

(** {1 lseek} *)

let seek_set = 0
let seek_cur = 1
let seek_end = 2

(** {1 mmap} *)

let prot_read = 1
let prot_write = 2
let prot_exec = 4
let map_shared = 1
let map_private = 2
let map_fixed = 16
let map_anonymous = 32

(** {1 prctl / Syscall User Dispatch} *)

let pr_set_syscall_user_dispatch = 59
let pr_sys_dispatch_off = 0
let pr_sys_dispatch_on = 1

(* Values of the SUD selector byte.  As in Linux:
   0 = allow (do not intercept), 1 = block (intercept). *)
let syscall_dispatch_filter_allow = 0
let syscall_dispatch_filter_block = 1

(** {1 arch_prctl} *)

let arch_set_gs = 0x1001
let arch_set_fs = 0x1002
let arch_get_fs = 0x1003
let arch_get_gs = 0x1004

(** {1 clone flags} *)

let clone_vm = 0x100
let clone_fs = 0x200
let clone_files = 0x400
let clone_sighand = 0x800
let clone_thread = 0x10000
let clone_settls = 0x80000

(** {1 seccomp} *)

let seccomp_set_mode_strict = 0
let seccomp_set_mode_filter = 1

let seccomp_ret_kill_process = 0x80000000
let seccomp_ret_kill_thread = 0x00000000
let seccomp_ret_trap = 0x00030000
let seccomp_ret_errno = 0x00050000
let seccomp_ret_trace = 0x7ff00000
let seccomp_ret_log = 0x7ffc0000
let seccomp_ret_allow = 0x7fff0000
let seccomp_ret_action_full = 0xffff0000
let seccomp_ret_data = 0x0000ffff

(** {1 epoll} *)

let epollin = 0x1
let epollout = 0x4
let epollerr = 0x8
let epollhup = 0x10
let epoll_ctl_add = 1
let epoll_ctl_del = 2
let epoll_ctl_mod = 3

(** {1 futex} *)

let futex_wait = 0
let futex_wake = 1

(** {1 fcntl} *)

let f_getfl = 3
let f_setfl = 4

(** {1 Simulated stat(2) layout}

    Our libc is our own, so we define a compact struct:
    [mode:u64@0, size:u64@8, mtime:u64@16, ino:u64@24]; 32 bytes. *)

let stat_size = 32

(** {1 Simulated epoll_event layout}

    [events:u64@0, data:u64@8]; 16 bytes (Linux packs this into 12;
    we keep natural alignment). *)

let epoll_event_size = 16
