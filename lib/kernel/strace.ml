(** The one strace decoder.

    Both decoded-trace paths — the interposer-side {!Hook.strace}
    hook (lib/core) and the kernel-side [k.strace] callback on
    {!Types.kernel} — used to duplicate the formatting; they now both
    route through this module.  The decoder knows the argument kinds
    of common syscalls (paths are read from the task's memory at
    interception time) and names errnos on failing returns.

    Argument decoding is parameterized over [read_str] so the
    interposer hook (which reads through its own accessors) and the
    kernel callback (which reads the task memory directly) share the
    format byte-for-byte. *)

open Sim_isa

type arg_kind = Aint | Afd | Apath | Abuf | Asig

let arg_spec nr : arg_kind list =
  if nr = Defs.sys_read then [ Afd; Abuf; Aint ]
  else if nr = Defs.sys_write then [ Afd; Abuf; Aint ]
  else if nr = Defs.sys_open then [ Apath; Aint; Aint ]
  else if nr = Defs.sys_openat then [ Afd; Apath; Aint; Aint ]
  else if nr = Defs.sys_close then [ Afd ]
  else if nr = Defs.sys_stat then [ Apath; Abuf ]
  else if nr = Defs.sys_fstat then [ Afd; Abuf ]
  else if nr = Defs.sys_mmap then [ Aint; Aint; Aint; Aint; Afd; Aint ]
  else if nr = Defs.sys_mprotect || nr = Defs.sys_munmap then
    [ Aint; Aint; Aint ]
  else if nr = Defs.sys_rt_sigaction then [ Asig; Abuf; Abuf ]
  else if nr = Defs.sys_kill then [ Aint; Asig ]
  else if nr = Defs.sys_tgkill then [ Aint; Aint; Asig ]
  else if nr = Defs.sys_mkdir || nr = Defs.sys_rmdir || nr = Defs.sys_unlink
          || nr = Defs.sys_chdir then [ Apath ]
  else if nr = Defs.sys_chmod then [ Apath; Aint ]
  else if nr = Defs.sys_rename then [ Apath; Apath ]
  else if nr = Defs.sys_execve then [ Apath; Abuf; Abuf ]
  else if nr = Defs.sys_sendfile then [ Afd; Afd; Abuf; Aint ]
  else if nr = Defs.sys_getpid || nr = Defs.sys_gettid
          || nr = Defs.sys_getuid || nr = Defs.sys_fork
          || nr = Defs.sys_vfork || nr = Defs.sys_rt_sigreturn then []
  else if nr = Defs.sys_exit || nr = Defs.sys_exit_group then [ Aint ]
  else if nr = Defs.sys_epoll_wait then [ Afd; Abuf; Aint; Aint ]
  else if nr = Defs.sys_epoll_ctl then [ Afd; Aint; Afd; Abuf ]
  else if nr = Defs.sys_accept || nr = Defs.sys_accept4 then
    [ Afd; Abuf; Abuf ]
  else [ Aint; Aint; Aint; Aint; Aint; Aint ]

(** [read_str addr] returns the NUL-terminated string at [addr], or
    raises on fault — the formatter falls back to printing the raw
    pointer. *)
let format_call ~(read_str : int -> string) nr (args : int64 array) : string =
  let fmt kind v =
    match kind with
    | Aint -> Int64.to_string v
    | Afd -> Int64.to_string v
    | Asig -> Defs.signal_name (Int64.to_int v)
    | Abuf -> Printf.sprintf "0x%Lx" v
    | Apath -> (
        match read_str (Int64.to_int v) with
        | s -> Printf.sprintf "%S" s
        | exception _ -> Printf.sprintf "0x%Lx (bad)" v)
  in
  let spec = arg_spec nr in
  let parts = List.mapi (fun idx kind -> fmt kind args.(idx)) spec in
  Printf.sprintf "%s(%s)" (Defs.syscall_name nr) (String.concat ", " parts)

(** Format a syscall result: errnos by name, restarts marked, control
    transfers (execve, exit, rt_sigreturn — no result write) as [?].
    [policy] marks an errno as injected by the syscall-flow-integrity
    engine rather than returned by the syscall itself. *)
let format_ret ?(policy = false) (v : int64) : string =
  if v = Int64.min_int then " = ?"
  else if v = -512L then " = ? ERESTARTSYS (restarted)"
  else if v < 0L && v >= -4095L then
    Printf.sprintf " = %Ld %s%s" v
      (Defs.errno_name (Int64.to_int (Int64.neg v)))
      (if policy then " (policy)" else "")
  else Printf.sprintf " = %Ld" v

(* The dispatcher preserves the six argument registers across a
   syscall (only rax/rcx/r11 are clobbered by the sysret ABI), so the
   exit-time callback can still decode the arguments from the live
   context. *)
let arg_regs = [| Isa.rdi; Isa.rsi; Isa.rdx; Isa.r10; Isa.r8; Isa.r9 |]

(** Install a kernel-side decoded-strace callback on [k.strace]
    (chainable: Pin and tests wrap it).  Returns the log, newest
    first; each line is ["call(args) = ret ERRNO"]. *)
let attach (k : Types.kernel) : string list ref =
  let log = ref [] in
  let prev = k.Types.strace in
  k.Types.strace <-
    Some
      (fun t nr ret ->
        (match prev with Some f -> f t nr ret | None -> ());
        let c = t.Types.ctx in
        let args = Array.map (fun r -> Sim_cpu.Cpu.peek_reg c r) arg_regs in
        let read_str addr = Sim_mem.Mem.read_cstring t.Types.mem addr in
        (* The policy engine tags a tid whose most recent result was
           its own -EPERM; the kernel clears the tag at the next
           dispatch, so at exit-callback time it refers to [ret]. *)
        let policy =
          match k.Types.policy with
          | Some p -> Sim_policy.Policy.denial_tagged p ~tid:t.Types.tid
          | None -> false
        in
        log := (format_call ~read_str nr args ^ format_ret ~policy ret) :: !log);
  log
