(** The simulated kernel: scheduling, syscall dispatch, Syscall User
    Dispatch, seccomp, ptrace stops, processes and threads.

    The machine has [ncpus] CPUs advancing in lock-step scheduling
    slices.  Within a slice each CPU runs its current task until the
    task blocks, exits, or the slice ends; cross-task wakeups
    (sockets, pipes, child exits) are observed at task-pick time.
    External actors (the benchmark load generator) are stepped once
    per slice.

    Syscall entry order matches Linux: Syscall User Dispatch first,
    then ptrace syscall-stops, then seccomp. *)

open Sim_isa
open Sim_mem
open Sim_cpu
open Types
module Ev = Sim_trace.Event
module Policy = Sim_policy.Policy

(** {1 Construction} *)

(* The [SIM_NO_BLOCKS] environment knob forces the pure interpreter
   process-wide — the test harness and chaos reproducers use it to
   rule the block engine in or out without touching call sites. *)
let blocks_default () =
  match Sys.getenv_opt "SIM_NO_BLOCKS" with
  | Some ("1" | "true" | "yes" | "on") -> false
  | _ -> true

let create ?(ncpus = 1) ?(cost = Sim_costs.Cost_model.default)
    ?(slice = 4000L) ?(icache = true) ?blocks () : kernel =
  let blocks =
    match blocks with Some b -> b | None -> blocks_default ()
  in
  let k =
    {
      cost;
      cpus = Array.init ncpus (fun _ -> { clk = 0L; last_tid = -1 });
      cur_cpu = 0;
      tasks = Hashtbl.create 16;
      next_tid = 1;
      vfs = Vfs.create ();
      net = Net.create ();
      hypercalls = Hashtbl.create 16;
      next_hyper = 1;
      rng = Random.State.make [| 0x1a2b; 0x90c1 |];
      programs = Hashtbl.create 4;
      actors = [];
      slice;
      slice_end = slice;
      strace = None;
      tracer = None;
      metrics = None;
      profiler = None;
      in_kernel = 0;
      halted = false;
      cur_task = None;
      icache_on = icache;
      blocks_on = blocks;
      auditor = None;
      chaos = None;
      obs = None;
      prov = None;
      policy = None;
    }
  in
  (* /proc exists on every kernel (guests may read it whether or not
     a metrics registry is attached). *)
  Procfs.mount k;
  k

(** Attach a metrics registry to [k] and register the kernel-derived
    probes: the process-wide decoded-icache counters (promoted into
    the registry without touching their hot-path [int ref]s) and the
    scheduler's runqueue depth.  Probes are sampled at scrape time
    only. *)
let attach_metrics (k : kernel) (m : Kmetrics.t) =
  k.metrics <- Some m;
  let open Sim_metrics in
  let r = m.Kmetrics.registry in
  Metrics.probe r ~help:"decoded-icache hits (process-wide)"
    "sim_icache_hits_total" (fun () -> !Icache.g_hits);
  Metrics.probe r ~help:"decoded-icache misses (process-wide)"
    "sim_icache_misses_total" (fun () -> !Icache.g_misses);
  Metrics.probe r ~help:"decoded-icache page invalidations (process-wide)"
    "sim_icache_invalidations_total" (fun () -> !Icache.g_invalidations);
  Metrics.probe r ~help:"decoded-icache uncached-path fallbacks (process-wide)"
    "sim_icache_fallbacks_total" (fun () -> !Icache.g_fallbacks);
  Metrics.probe r ~help:"threaded-code blocks compiled (process-wide)"
    "sim_blocks_compiled_total" (fun () -> !Icache.g_blocks_compiled);
  Metrics.probe r ~help:"threaded-code block entries (process-wide)"
    "sim_block_hits_total" (fun () -> !Icache.g_block_hits);
  Metrics.probe r
    ~help:"threaded-code blocks killed by page invalidation (process-wide)"
    "sim_block_kills_total" (fun () -> !Icache.g_block_kills);
  Metrics.probe r
    ~help:"instructions retired inside compiled blocks (process-wide)"
    "sim_block_insns_total" (fun () -> !Icache.g_block_insns);
  Metrics.probe r
    ~help:"block-engine fallbacks: offset below the heat threshold"
    "sim_block_fallback_cold_total" (fun () -> !Icache.g_block_fb_cold);
  Metrics.probe r
    ~help:"block-engine fallbacks: offset cannot head a block"
    "sim_block_fallback_uncompilable_total" (fun () ->
      !Icache.g_block_fb_uncompilable);
  Metrics.probe r
    ~help:"block-engine fallbacks: register-access hook installed"
    "sim_block_fallback_hooked_total" (fun () -> !Icache.g_block_fb_hooked);
  Metrics.probe r ~help:"block exits: ran to the last op"
    "sim_block_exit_end_total" (fun () -> !Icache.g_bexit_end);
  Metrics.probe r ~help:"block exits: slice budget exhausted"
    "sim_block_exit_budget_total" (fun () -> !Icache.g_bexit_budget);
  Metrics.probe r ~help:"block exits: store invalidated the executing block"
    "sim_block_exit_smc_total" (fun () -> !Icache.g_bexit_smc);
  Metrics.probe r ~help:"block exits: op faulted"
    "sim_block_exit_fault_total" (fun () -> !Icache.g_bexit_fault);
  Metrics.probe r ~help:"block exits: chaos preemption fired mid-block"
    "sim_block_exit_preempt_total" (fun () -> !Icache.g_bexit_preempt);
  Metrics.probe r ~help:"tasks in runnable state" "sim_sched_runnable"
    (fun () ->
      Hashtbl.fold
        (fun _ t acc -> if t.state = Runnable then acc + 1 else acc)
        k.tasks 0);
  Metrics.probe r ~help:"tasks alive (any state)" "sim_tasks" (fun () ->
      Hashtbl.length k.tasks);
  Metrics.probe r ~help:"earliest per-CPU simulated clock" "sim_cycles"
    (fun () -> Int64.to_int (global_time k));
  (* Observation-integrity probes: if any of these is nonzero the
     span/trace attribution is incomplete and the gated macrobench
     must fail.  Scrape-time thunks close over [k], so they read
     whatever tracer/span recorder is attached at scrape time. *)
  for cpu = 0 to Array.length k.cpus - 1 do
    Metrics.probe r
      ~help:"trace-ring events dropped on this CPU (ring overflow)"
      (Printf.sprintf "sim_trace_ring_dropped_cpu%d" cpu)
      (fun () ->
        match k.tracer with
        | Some tr -> Sim_trace.Tracer.dropped_on tr cpu
        | None -> 0)
  done;
  Metrics.probe r ~help:"trace-ring events dropped (all CPUs)"
    "sim_trace_ring_dropped_total" (fun () ->
      match k.tracer with Some tr -> Sim_trace.Tracer.dropped tr | None -> 0);
  Metrics.probe r
    ~help:"requests dropped at issue: span in-flight table full"
    "sim_obs_inflight_overflow_total" (fun () ->
      match k.obs with Some o -> Sim_obs.Obs.overflow o | None -> 0);
  Metrics.probe r
    ~help:"exemplars evicted from the slow-request reservoir (informational)"
    "sim_obs_reservoir_evictions_total" (fun () ->
      match k.obs with Some o -> Sim_obs.Obs.evictions o | None -> 0);
  Metrics.probe r ~help:"requests issued (span recorder)"
    "sim_obs_requests_issued_total" (fun () ->
      match k.obs with Some o -> Sim_obs.Obs.issued o | None -> 0);
  Metrics.probe r ~help:"requests completed (span recorder)"
    "sim_obs_requests_completed_total" (fun () ->
      match k.obs with Some o -> Sim_obs.Obs.completed_count o | None -> 0);
  (* Provenance-integrity probes: unwinder health and ledger bounds.
     A resolved count far below attempts, or a nonzero dropped count,
     means per-site attribution is incomplete — the bench sweep gates
     on the success rate. *)
  Metrics.probe r ~help:"guest backtrace attempts (provenance ledger)"
    "sim_site_unwind_attempts_total" (fun () ->
      match k.prov with
      | Some p -> Sim_obs.Provenance.unwind_attempts p
      | None -> 0);
  Metrics.probe r
    ~help:"guest backtraces that recovered at least one frame"
    "sim_site_unwind_resolved_total" (fun () ->
      match k.prov with
      | Some p -> Sim_obs.Provenance.unwind_resolved p
      | None -> 0);
  Metrics.probe r ~help:"distinct (site, nr) ledger entries"
    "sim_site_distinct" (fun () ->
      match k.prov with
      | Some p -> Sim_obs.Provenance.distinct_sites p
      | None -> 0);
  Metrics.probe r ~help:"distinct rewritten sites stamped on the ledger"
    "sim_site_rewrites" (fun () ->
      match k.prov with
      | Some p -> Sim_obs.Provenance.rewrite_count p
      | None -> 0);
  Metrics.probe r
    ~help:"dispatches dropped by the ledger's site-table cap"
    "sim_site_dropped_total" (fun () ->
      match k.prov with
      | Some p -> Sim_obs.Provenance.sites_dropped p
      | None -> 0);
  (* Syscall-flow-integrity probes. *)
  Metrics.probe r ~help:"policy-engine dispatch checks"
    "sim_policy_checks_total" (fun () ->
      match k.policy with Some p -> p.Policy.checks | None -> 0);
  Metrics.probe r ~help:"policy violations (all kinds)"
    "sim_policy_violations_total" (fun () ->
      match k.policy with
      | Some p -> Policy.violation_count p
      | None -> 0);
  List.iter
    (fun (kind, leaf) ->
      Metrics.probe r
        ~help:(Printf.sprintf "policy violations: %s check failed" leaf)
        (Printf.sprintf "sim_policy_violations_%s_total" leaf)
        (fun () ->
          match k.policy with
          | Some p -> Policy.kind_count p kind
          | None -> 0))
    [
      (Policy.Vnode, "node");
      (Policy.Vedge, "edge");
      (Policy.Vsite, "site");
      (Policy.Vcompartment, "compartment");
    ];
  Metrics.probe r ~help:"syscalls failed with -EPERM by the policy engine"
    "sim_policy_denied_total" (fun () ->
      match k.policy with Some p -> p.Policy.denied | None -> 0);
  Metrics.probe r ~help:"tasks killed by the policy engine"
    "sim_policy_killed_total" (fun () ->
      match k.policy with Some p -> p.Policy.killed | None -> 0)

let enable_metrics (k : kernel) : Kmetrics.t =
  let m = match k.metrics with Some m -> m | None -> Kmetrics.create () in
  attach_metrics k m;
  m

(** Attach a divergence auditor.  Observation-only: recording never
    charges cycles, so an audited run is cycle- and state-identical to
    an unaudited one (asserted by a qcheck property in test_audit). *)
let attach_audit (k : kernel) (a : Sim_audit.Audit.t) = k.auditor <- Some a

(** Attach a chaos engine.  Unlike the observers it perturbs the run
    on purpose; but its decision sites never charge cycles, so an
    attached engine whose every decision declines (zero rates, or an
    empty forced set) leaves the run bit-identical to a chaos-free
    one (asserted by a qcheck property in test_chaos). *)
let attach_chaos (k : kernel) (ch : Sim_chaos.Chaos.t) = k.chaos <- Some ch

(** Attach a request-flow span recorder.  Observation-only like the
    tracer: the hooks in {!Types.charge}, the scheduler and the
    socket read path never charge cycles or touch task state, so a
    spanned run is bit-identical to an unspanned one (the qcheck
    gate in test_obs).  Baselines the per-CPU clocks so machine
    totals measure from attach time. *)
let attach_obs (k : kernel) (o : Sim_obs.Obs.t) =
  k.obs <- Some o;
  Sim_obs.Obs.set_baseline o (Array.map (fun c -> c.clk) k.cpus)

(** Attach a provenance ledger.  Observation-only like the tracer:
    recording a dispatch walks guest frames with faulting-safe reads
    and never charges cycles or touches task state, so a provenanced
    run is bit-identical to a bare one (the qcheck gate in
    test_obs). *)
let attach_prov (k : kernel) (p : Sim_obs.Provenance.t) = k.prov <- Some p

(** Attach a syscall-flow-integrity policy engine.  In report (or
    learning) mode it is observation-only like the tracer — checking
    never charges cycles or touches task state, so a report-mode run
    is bit-identical to a bare one (the qcheck gate in test_policy).
    In deny/kill mode it is deliberately intrusive: out-of-policy
    dispatches are suppressed and every checked dispatch charges
    [cost.policy_check]. *)
let attach_policy (k : kernel) (p : Sim_policy.Policy.t) = k.policy <- Some p

(** Combined final-state hash over every live task, in tid order —
    the [F] line of a serialized audit log.  Uses the auditor's
    incremental per-page hash cache. *)
let audit_final_hash (k : kernel) (a : Sim_audit.Audit.t) =
  let module A = Sim_audit.Audit in
  Hashtbl.fold (fun tid _ acc -> tid :: acc) k.tasks []
  |> List.sort compare
  |> List.fold_left
       (fun h tid ->
         let t = Hashtbl.find k.tasks tid in
         A.mix h (A.full_state_hash a ~tid:t.tid t.ctx t.mem))
       A.seed

(** {1 Hypercalls} *)

(** Register an OCaml handler; returns the index to embed in a
    [Hypercall] instruction. *)
let register_hypercall (k : kernel) (f : kernel -> task -> unit) : int =
  let n = k.next_hyper in
  k.next_hyper <- n + 1;
  Hashtbl.replace k.hypercalls n f;
  n

(** {1 File descriptor tables} *)

let fdtab_create () = { next_fd = 3; fds = Hashtbl.create 8 }

let alloc_fd (t : task) kind ~flags =
  let fd = t.fdt.next_fd in
  t.fdt.next_fd <- fd + 1;
  Hashtbl.replace t.fdt.fds fd { kind; fflags = flags; refs = 1 };
  fd

let get_fd (t : task) fd = Hashtbl.find_opt t.fdt.fds fd

let release_entry (k : kernel) (e : fd_entry) =
  e.refs <- e.refs - 1;
  if e.refs <= 0 then
    match e.kind with
    | Kstream ep -> Net.close_endpoint ep
    | Klisten l -> Net.close_listener k.net l
    | Kreg _ | Kepoll _ | Kunbound _ -> ()

let close_fd (k : kernel) (t : task) fd =
  match get_fd t fd with
  | None -> Error Defs.ebadf
  | Some e ->
      Hashtbl.remove t.fdt.fds fd;
      release_entry k e;
      Ok ()

(** {1 Readiness} *)

let fd_readable (t : task) fd =
  match get_fd t fd with
  | None -> true (* wake so the retry can return EBADF *)
  | Some e -> (
      match e.kind with
      | Kstream ep -> Net.readable ep
      | Klisten l -> not (Queue.is_empty l.backlog)
      | Kreg _ -> true
      | Kepoll _ | Kunbound _ -> true)

let fd_writable (t : task) fd =
  match get_fd t fd with
  | None -> true
  | Some e -> (
      match e.kind with
      | Kstream ep -> Net.writable ep || ep.peer = None
      | Kreg _ -> true
      | Klisten _ | Kepoll _ | Kunbound _ -> true)

let epoll_ready_list (t : task) (ep : epoll) =
  Hashtbl.fold
    (fun fd (mask, data) acc ->
      let ev = ref 0 in
      if mask land Defs.epollin <> 0 && fd_readable t fd then
        ev := !ev lor Defs.epollin;
      if mask land Defs.epollout <> 0 && fd_writable t fd then
        ev := !ev lor Defs.epollout;
      (match get_fd t fd with
      | Some { kind = Kstream s; _ } when s.peer = None && s.peer_closed ->
          ev := !ev lor Defs.epollhup
      | _ -> ());
      if !ev <> 0 then (fd, !ev, data) :: acc else acc)
    ep.interest []

(** {1 Task lifecycle} *)

let fresh_tid (k : kernel) =
  let t = k.next_tid in
  k.next_tid <- t + 1;
  t

let make_task (k : kernel) ~mem ~comm ~affinity : task =
  let tid = fresh_tid k in
  let t =
    {
      tid;
      tgid = tid;
      parent_tid = 0;
      ctx = Cpu.create ();
      mem;
      icache = Icache.create ();
      fdt = fdtab_create ();
      sighand = Array.make (Defs.nsig + 1) sigaction_default;
      sigmask = 0L;
      pending = 0L;
      pending_info = [];
      state = Runnable;
      sud = { sud_on = false; sud_selector = 0; sud_lo = 0; sud_len = 0 };
      filters = [];
      monitor = None;
      exit_code = 0;
      children = [];
      affinity;
      on_cpu = -1;
      last_run = 0L;
      cwd = "/";
      comm;
      brk = 0x3000_0000;
      tid_address = 0L;
      robust_list = 0L;
      tcycles = 0L;
      trace_path = None;
      sig_depth = 0;
      sleep_until = None;
      retrying = false;
    }
  in
  Hashtbl.replace k.tasks tid t;
  t

(** Map an image's segments into [mem] and return the entry point. *)
let load_image (mem : Mem.t) (img : image) =
  List.iter
    (fun (addr, bytes, perm) ->
      let len = max 1 (String.length bytes) in
      Mem.map mem ~addr ~len ~perm;
      Mem.poke_bytes mem addr bytes)
    img.img_segments;
  Mem.map mem
    ~addr:(img.img_stack_top - img.img_stack_size)
    ~len:img.img_stack_size ~perm:Mem.rw

(** Create a process from [img]. *)
let spawn (k : kernel) ?(comm = "a.out") ?(affinity = -1) (img : image) : task
    =
  let mem = Mem.create () in
  load_image mem img;
  let t = make_task k ~mem ~comm ~affinity in
  t.ctx.rip <- img.img_entry;
  Cpu.poke_reg t.ctx Isa.rsp (Int64.of_int img.img_stack_top);
  t

let do_exit (k : kernel) (t : task) ~code ~group =
  if group then Ksignal.kill_task_group k t ~code
  else begin
    t.exit_code <- code;
    t.state <- Zombie;
    t.on_cpu <- -1
  end;
  (match find_task k t.parent_tid with
  | Some p -> Ksignal.post k p Defs.sigchld
  | None -> ())

(** {1 Reading and writing user memory from syscalls}

    Syscalls accessing bad user pointers return EFAULT. *)

exception Efault

let user_read (t : task) addr len =
  try Mem.read_bytes t.mem addr len with Mem.Fault _ -> raise Efault

let user_write (t : task) addr s =
  try Mem.write_bytes t.mem addr s with Mem.Fault _ -> raise Efault

let user_read_u64 (t : task) addr =
  try Mem.read_u64 t.mem addr with Mem.Fault _ -> raise Efault

let user_write_u64 (t : task) addr v =
  try Mem.write_u64 t.mem addr v with Mem.Fault _ -> raise Efault

let user_string (t : task) addr =
  try Mem.read_cstring t.mem addr with Mem.Fault _ -> raise Efault

(** {1 Syscall implementations} *)

type sysres = Ret of int64 | Block of block_reason

let ok v = Ret (Int64.of_int v)
let err e = Ret (Int64.of_int (-e))

let i64 = Int64.of_int
let to_i = Int64.to_int

let prot_to_perm prot =
  let p = ref 0 in
  if prot land Defs.prot_read <> 0 then p := !p lor Mem.p_r;
  if prot land Defs.prot_write <> 0 then p := !p lor Mem.p_w;
  if prot land Defs.prot_exec <> 0 then p := !p lor Mem.p_x;
  !p

let nonblocking (e : fd_entry) = e.fflags land Defs.o_nonblock <> 0

let write_stat (t : task) addr (inode : Vfs.inode) =
  user_write_u64 t addr (i64 inode.Vfs.mode);
  user_write_u64 t (addr + 8) (i64 (Vfs.size_of inode));
  user_write_u64 t (addr + 16) inode.Vfs.mtime;
  user_write_u64 t (addr + 24) (i64 inode.Vfs.ino)

(* Console output: writes to fd 1/2 without an entry land here. *)
let console = Buffer.create 256
let console_hook : (string -> unit) option ref = ref None

let console_write s =
  Buffer.add_string console s;
  match !console_hook with Some f -> f s | None -> ()

let do_fork (k : kernel) (t : task) ~vm ~files ~sighand ~stack ~tls ~thread =
  let mem = if vm then t.mem else Mem.clone t.mem in
  let child_tid = fresh_tid k in
  let child =
    {
      tid = child_tid;
      tgid = (if thread then t.tgid else child_tid);
      parent_tid = t.tid;
      ctx = Cpu.copy t.ctx;
      mem;
      (* Threads share the address space and therefore its decoded
         code; a forked copy diverges and must validate its own. *)
      icache = (if vm then t.icache else Icache.create ());
      fdt = t.fdt;
      sighand = (if sighand then t.sighand else Array.copy t.sighand);
      sigmask = t.sigmask;
      pending = 0L;
      pending_info = [];
      state = Runnable;
      (* SUD is deactivated on fork, clone and execve (the paper's
         Section IV-B-a), so the interposer must re-enable it. *)
      sud = { sud_on = false; sud_selector = 0; sud_lo = 0; sud_len = 0 };
      filters = t.filters (* seccomp filters are inherited *);
      monitor = t.monitor;
      exit_code = 0;
      children = [];
      affinity = t.affinity;
      on_cpu = -1;
      last_run = 0L;
      cwd = t.cwd;
      comm = t.comm;
      brk = t.brk;
      tid_address = 0L;
      robust_list = 0L;
      tcycles = 0L;
      trace_path = None;
      (* The child starts outside any signal frame: the parent's
         in-handler state does not transfer (its frames live on the
         parent's stack). *)
      sig_depth = 0;
      sleep_until = None;
      retrying = false;
    }
  in
  if files then child.fdt <- t.fdt
  else begin
    (* Copy the table; entries (open file descriptions) are shared. *)
    let fdt = { next_fd = t.fdt.next_fd; fds = Hashtbl.create 8 } in
    Hashtbl.iter
      (fun fd e ->
        e.refs <- e.refs + 1;
        Hashtbl.replace fdt.fds fd e)
      t.fdt.fds;
    child.fdt <- fdt
  end;
  if stack <> 0 then Cpu.poke_reg child.ctx Isa.rsp (i64 stack);
  if tls <> 0 then child.ctx.gs_base <- tls;
  Cpu.poke_reg child.ctx Isa.rax 0L;
  t.children <- child_tid :: t.children;
  Hashtbl.replace k.tasks child_tid child;
  if k.tracer <> None then trace_emit k (Ev.Task_spawn { child_tid });
  child

let find_zombie_child (k : kernel) (t : task) ~pid =
  let candidates =
    List.filter_map
      (fun tid ->
        match find_task k tid with
        | Some c when c.state = Zombie && (pid = -1 || pid = tid) -> Some c
        | _ -> None)
      t.children
  in
  match candidates with [] -> None | c :: _ -> Some c

let do_execve (k : kernel) (t : task) path =
  match Hashtbl.find_opt k.programs path with
  | None -> err Defs.enoent
  | Some img ->
      let mem = Mem.create () in
      load_image mem img;
      t.mem <- mem;
      (* Entirely new image: drop every decode along with the old
         address space.  Clear (rather than replace) the instance —
         the run loop holds a reference for the rest of the slice, and
         a fresh [Mem.t] restarts its generation counter, so stale
         entries could otherwise alias the new image's pages. *)
      Icache.clear t.icache;
      (* Same aliasing hazard for the auditor's per-page hash cache:
         the fresh address space restarts the generation counter. *)
      (match k.auditor with
      | Some a -> Sim_audit.Audit.forget_task a t.tid
      | None -> ());
      t.ctx.rip <- img.img_entry;
      for r = 0 to 15 do
        Cpu.poke_reg t.ctx r 0L
      done;
      Cpu.poke_reg t.ctx Isa.rsp (i64 img.img_stack_top);
      t.ctx.fs_base <- 0;
      t.ctx.gs_base <- 0;
      t.sighand <- Array.make (Defs.nsig + 1) sigaction_default;
      (* SUD does not survive execve; seccomp filters do. *)
      t.sud.sud_on <- false;
      t.comm <- path;
      (* execve "returns" at the new entry point: the syscall result
         write must not clobber the fresh context, so we signal that
         with a special marker the dispatcher understands. *)
      Ret Int64.min_int

(* Marker meaning "do not write rax / rcx / r11 back". *)
let no_result = Int64.min_int

let sockaddr_port (t : task) addr = to_i (user_read_u64 t addr)

let do_syscall (k : kernel) (t : task) (nr : int) : sysres =
  let c = t.ctx in
  let a1 = Cpu.peek_reg c Isa.rdi
  and a2 = Cpu.peek_reg c Isa.rsi
  and a3 = Cpu.peek_reg c Isa.rdx
  and a4 = Cpu.peek_reg c Isa.r10
  and a5 = Cpu.peek_reg c Isa.r8 in
  let cost = k.cost in
  let charge_copy n = charge k (Sim_costs.Cost_model.copy_cost cost n) in
  match nr with
  | n when n = Defs.sys_getpid -> ok t.tgid
  | n when n = Defs.sys_gettid -> ok t.tid
  | n when n = Defs.sys_getuid -> ok 1000
  | n when n = Defs.sys_uname || n = Defs.sys_ioctl -> ok 0
  | n when n = Defs.sys_sched_yield ->
      t.last_run <- now k;
      ok 0
  | n when n = Defs.sys_set_tid_address ->
      t.tid_address <- a1;
      ok t.tid
  | n when n = Defs.sys_set_robust_list ->
      t.robust_list <- a1;
      ok 0
  | n when n = Defs.sys_getrandom ->
      let len = to_i a2 in
      let b = Bytes.init len (fun _ -> Char.chr (Random.State.int k.rng 256)) in
      user_write t (to_i a1) (Bytes.to_string b);
      charge_copy len;
      ok len
  | n when n = Defs.sys_clock_gettime || n = Defs.sys_gettimeofday ->
      (* 2.1 GHz: ns = cycles * 10 / 21 *)
      let ns = Int64.div (Int64.mul (now k) 10L) 21L in
      let ptr = to_i (if n = Defs.sys_clock_gettime then a2 else a1) in
      user_write_u64 t ptr (Int64.div ns 1_000_000_000L);
      user_write_u64 t (ptr + 8) (Int64.rem ns 1_000_000_000L);
      ok 0
  | n when n = Defs.sys_nanosleep -> (
      (* Blocking syscalls are retried by re-executing the syscall
         instruction, so remember the absolute deadline. *)
      match t.sleep_until with
      | Some deadline when now k >= deadline ->
          t.sleep_until <- None;
          ok 0
      | Some deadline -> Block (Wsleep deadline)
      | None ->
          let ptr = to_i a1 in
          let sec = user_read_u64 t ptr and nsec = user_read_u64 t (ptr + 8) in
          let cycles =
            Int64.add
              (Int64.mul sec 2_100_000_000L)
              (Int64.div (Int64.mul nsec 21L) 10L)
          in
          let deadline = Int64.add (now k) cycles in
          t.sleep_until <- Some deadline;
          Block (Wsleep deadline))
  | n when n = Defs.sys_brk ->
      let want = to_i a1 in
      if want = 0 then ok t.brk
      else begin
        if want > t.brk then
          Mem.map t.mem ~addr:t.brk ~len:(want - t.brk) ~perm:Mem.rw;
        t.brk <- want;
        ok want
      end
  | n when n = Defs.sys_mmap ->
      let addr = to_i a1
      and len = to_i a2
      and prot = to_i a3
      and flags = to_i a4 in
      let fd = to_i a5 in
      if len <= 0 then err Defs.einval
      else begin
        let perm = prot_to_perm prot in
        let target =
          if addr <> 0 && flags land Defs.map_fixed <> 0 then addr
          else if addr <> 0 then addr
          else Mem.find_free t.mem ~hint:0x2000_0000 ~len
        in
        charge k (cost.page_op * Mem.pages_in_range ~addr:target ~len);
        Mem.map t.mem ~addr:target ~len ~perm;
        (if flags land Defs.map_anonymous = 0 && fd >= 0 then
           match get_fd t fd with
           | Some { kind = Kreg of_; _ } -> (
               match Vfs.pread of_ ~pos:(to_i (Cpu.peek_reg c Isa.r9)) len with
               | Ok data -> Mem.poke_bytes t.mem target data
               | Error _ -> ())
           | _ -> ());
        ok target
      end
  | n when n = Defs.sys_munmap ->
      Mem.unmap t.mem ~addr:(to_i a1) ~len:(to_i a2);
      charge k (cost.page_op * Mem.pages_in_range ~addr:(to_i a1) ~len:(to_i a2));
      ok 0
  | n when n = Defs.sys_mprotect ->
      let addr = to_i a1 and len = to_i a2 in
      if addr land (Mem.page_size - 1) <> 0 then err Defs.einval
      else begin
        charge k (cost.page_op * Mem.pages_in_range ~addr ~len);
        match Mem.protect t.mem ~addr ~len ~perm:(prot_to_perm (to_i a3)) with
        | Ok () -> ok 0
        | Error `Unmapped -> err Defs.enomem
      end
  | n when n = Defs.sys_pkey_mprotect ->
      let addr = to_i a1 and len = to_i a2 and pkey = to_i a4 in
      if addr land (Mem.page_size - 1) <> 0 || pkey < 0 || pkey > 15 then
        err Defs.einval
      else begin
        charge k (cost.page_op * Mem.pages_in_range ~addr ~len);
        match
          ( Mem.protect t.mem ~addr ~len ~perm:(prot_to_perm (to_i a3)),
            Mem.set_pkey t.mem ~addr ~len ~pkey )
        with
        | Ok (), Ok () -> ok 0
        | _ -> err Defs.enomem
      end
  | n when n = Defs.sys_open || n = Defs.sys_openat ->
      let path_ptr, flags, mode =
        if n = Defs.sys_open then (to_i a1, to_i a2, to_i a3)
        else (to_i a2, to_i a3, to_i a4)
      in
      let path = user_string t path_ptr in
      charge k cost.fs_op;
      (match Vfs.openf k.vfs ~cwd:t.cwd path ~flags ~mode with
      | Ok of_ -> ok (alloc_fd t (Kreg of_) ~flags)
      | Error e -> err e)
  | n when n = Defs.sys_close -> (
      match close_fd k t (to_i a1) with Ok () -> ok 0 | Error e -> err e)
  | n when n = Defs.sys_read -> (
      let fd = to_i a1 and buf = to_i a2 and len = to_i a3 in
      match get_fd t fd with
      | None -> if fd = 0 then ok 0 else err Defs.ebadf
      | Some e -> (
          match e.kind with
          | Kreg of_ -> (
              charge k cost.fs_op;
              match Vfs.read of_ len with
              | Ok s ->
                  user_write t buf s;
                  charge_copy (String.length s);
                  ok (String.length s)
              | Error er -> err er)
          | Kstream ep -> (
              charge k cost.sock_op;
              match Net.recv ep len with
              | `Data s ->
                  (* Request claim: this task just read fresh bytes off
                     the connection, so the request the load generator
                     stamped on it (if any) is now being served here.
                     [ev] is the app-stream audit index this very read
                     will be logged at. *)
                  (match k.obs with
                  | Some o ->
                      let ev =
                        match k.auditor with
                        | Some a -> Sim_audit.Audit.app_count a + 1
                        | None -> -1
                      in
                      Sim_obs.Obs.claim o ~cpu:k.cur_cpu ~conn:ep.id
                        ~tid:t.tid ~ts:(now k) ~ev
                  | None -> ());
                  user_write t buf s;
                  charge_copy (String.length s);
                  ok (String.length s)
              | `Eof -> ok 0
              | `Empty ->
                  if nonblocking e then err Defs.eagain else Block (Wread fd))
          | Klisten _ | Kepoll _ | Kunbound _ -> err Defs.einval))
  | n when n = Defs.sys_write -> (
      let fd = to_i a1 and buf = to_i a2 and len = to_i a3 in
      match get_fd t fd with
      | None ->
          if fd = 1 || fd = 2 then begin
            let s = user_read t buf len in
            console_write s;
            charge_copy len;
            ok len
          end
          else err Defs.ebadf
      | Some e -> (
          match e.kind with
          | Kreg of_ -> (
              charge k cost.fs_op;
              let s = user_read t buf len in
              charge_copy len;
              match Vfs.write of_ s with Ok n -> ok n | Error er -> err er)
          | Kstream ep -> (
              charge k cost.sock_op;
              let space = Net.send_space ep in
              if space = 0 then
                match ep.peer with
                | None ->
                    Ksignal.post k t Defs.sigpipe;
                    err Defs.epipe
                | Some _ ->
                    if nonblocking e then err Defs.eagain
                    else Block (Wwrite fd)
              else
                let chunk = min len space in
                let s = user_read t buf chunk in
                charge_copy chunk;
                match Net.send ep s 0 chunk with
                | Ok sent -> ok sent
                | Error `Pipe ->
                    Ksignal.post k t Defs.sigpipe;
                    err Defs.epipe)
          | Klisten _ | Kepoll _ | Kunbound _ -> err Defs.einval))
  | n when n = Defs.sys_lseek -> (
      match get_fd t (to_i a1) with
      | Some { kind = Kreg of_; _ } -> (
          match Vfs.lseek of_ ~off:(to_i a2) ~whence:(to_i a3) with
          | Ok pos -> ok pos
          | Error e -> err e)
      | Some _ -> err Defs.espipe
      | None -> err Defs.ebadf)
  | n when n = Defs.sys_stat ->
      charge k cost.fs_op;
      let path = user_string t (to_i a1) in
      (match Vfs.lookup k.vfs ~cwd:t.cwd path with
      | Ok inode ->
          write_stat t (to_i a2) inode;
          ok 0
      | Error e -> err e)
  | n when n = Defs.sys_fstat -> (
      match get_fd t (to_i a1) with
      | Some { kind = Kreg of_; _ } ->
          write_stat t (to_i a2) of_.Vfs.inode;
          ok 0
      | Some _ ->
          user_write t (to_i a2) (String.make Defs.stat_size '\000');
          ok 0
      | None -> err Defs.ebadf)
  | n when n = Defs.sys_mkdir ->
      charge k cost.fs_op;
      let path = user_string t (to_i a1) in
      (match Vfs.mkdir k.vfs ~cwd:t.cwd path ~mode:(to_i a2) with
      | Ok () -> ok 0
      | Error e -> err e)
  | n when n = Defs.sys_rmdir ->
      charge k cost.fs_op;
      let path = user_string t (to_i a1) in
      (match Vfs.rmdir k.vfs ~cwd:t.cwd path with
      | Ok () -> ok 0
      | Error e -> err e)
  | n when n = Defs.sys_unlink ->
      charge k cost.fs_op;
      let path = user_string t (to_i a1) in
      (match Vfs.unlink k.vfs ~cwd:t.cwd path with
      | Ok () -> ok 0
      | Error e -> err e)
  | n when n = Defs.sys_rename ->
      charge k cost.fs_op;
      let src = user_string t (to_i a1) and dst = user_string t (to_i a2) in
      (match Vfs.rename k.vfs ~cwd:t.cwd ~src ~dst with
      | Ok () -> ok 0
      | Error e -> err e)
  | n when n = Defs.sys_chmod ->
      charge k cost.fs_op;
      let path = user_string t (to_i a1) in
      (match Vfs.chmod k.vfs ~cwd:t.cwd path ~mode:(to_i a2) with
      | Ok () -> ok 0
      | Error e -> err e)
  | n when n = Defs.sys_chdir ->
      let path = user_string t (to_i a1) in
      (match Vfs.lookup k.vfs ~cwd:t.cwd path with
      | Ok i when Vfs.is_dir i ->
          t.cwd <- (if path.[0] = '/' then path else t.cwd ^ "/" ^ path);
          ok 0
      | Ok _ -> err Defs.enotdir
      | Error e -> err e)
  | n when n = Defs.sys_getcwd ->
      let buf = to_i a1 and size = to_i a2 in
      let s = t.cwd ^ "\000" in
      if String.length s > size then err Defs.einval
      else begin
        user_write t buf s;
        ok (String.length s)
      end
  | n when n = Defs.sys_getdents -> (
      (* Custom layout: 64-byte records, name[56] NUL-padded + ino u64. *)
      match get_fd t (to_i a1) with
      | Some { kind = Kreg of_; _ } -> (
          match of_.Vfs.inode.Vfs.node with
          | Vfs.Dir entries ->
              let names =
                Hashtbl.fold (fun k' _ acc -> k' :: acc) entries []
                |> List.sort compare
              in
              let buf = to_i a2 and cap = to_i a3 in
              let nfit = min (List.length names - of_.Vfs.offset) (cap / 64) in
              if nfit <= 0 then ok 0
              else begin
                let skipped = List.filteri (fun i _ -> i >= of_.Vfs.offset) names in
                List.iteri
                  (fun idx name ->
                    if idx < nfit then begin
                      let rec_ = Bytes.make 64 '\000' in
                      let len = min 55 (String.length name) in
                      Bytes.blit_string name 0 rec_ 0 len;
                      (match Hashtbl.find_opt entries name with
                      | Some i -> Bytes.set_int64_le rec_ 56 (i64 i.Vfs.ino)
                      | None -> ());
                      user_write t (buf + (64 * idx)) (Bytes.to_string rec_)
                    end)
                  skipped;
                of_.Vfs.offset <- of_.Vfs.offset + nfit;
                charge_copy (64 * nfit);
                ok (64 * nfit)
              end
          | Vfs.File _ | Vfs.Synth _ -> err Defs.enotdir)
      | Some _ -> err Defs.enotdir
      | None -> err Defs.ebadf)
  | n when n = Defs.sys_dup -> (
      match get_fd t (to_i a1) with
      | None -> err Defs.ebadf
      | Some e ->
          e.refs <- e.refs + 1;
          let fd = t.fdt.next_fd in
          t.fdt.next_fd <- fd + 1;
          Hashtbl.replace t.fdt.fds fd e;
          ok fd)
  | n when n = Defs.sys_fcntl -> (
      match get_fd t (to_i a1) with
      | None -> err Defs.ebadf
      | Some e ->
          let cmd = to_i a2 in
          if cmd = Defs.f_getfl then ok e.fflags
          else if cmd = Defs.f_setfl then begin
            e.fflags <- to_i a3;
            ok 0
          end
          else err Defs.einval)
  | n when n = Defs.sys_pipe ->
      let a, b = Net.pair k.net in
      let rfd = alloc_fd t (Kstream a) ~flags:0 in
      let wfd = alloc_fd t (Kstream b) ~flags:0 in
      user_write_u64 t (to_i a1) (i64 rfd);
      user_write_u64 t (to_i a1 + 8) (i64 wfd);
      ok 0
  | n when n = Defs.sys_socket -> ok (alloc_fd t (Kunbound { bound_port = None }) ~flags:0)
  | n when n = Defs.sys_bind -> (
      match get_fd t (to_i a1) with
      | Some ({ kind = Kunbound sp; _ } as _e) ->
          sp.bound_port <- Some (sockaddr_port t (to_i a2));
          ok 0
      | Some _ -> err Defs.einval
      | None -> err Defs.ebadf)
  | n when n = Defs.sys_listen -> (
      match get_fd t (to_i a1) with
      | Some ({ kind = Kunbound { bound_port = Some port }; _ } as e) -> (
          match Net.listen k.net ~port ~backlog:(max 1 (to_i a2)) with
          | Ok l ->
              e.kind <- Klisten l;
              ok 0
          | Error `In_use -> err Defs.eaddrinuse)
      | Some _ -> err Defs.einval
      | None -> err Defs.ebadf)
  | n when n = Defs.sys_connect -> (
      match get_fd t (to_i a1) with
      | Some ({ kind = Kunbound _; _ } as e) -> (
          charge k cost.accept_op;
          match Net.connect k.net ~port:(sockaddr_port t (to_i a2)) with
          | Ok ep ->
              e.kind <- Kstream ep;
              ok 0
          | Error `Refused -> err Defs.econnrefused)
      | Some _ -> err Defs.einval
      | None -> err Defs.ebadf)
  | n when n = Defs.sys_accept || n = Defs.sys_accept4 -> (
      let fd = to_i a1 in
      match get_fd t fd with
      | Some ({ kind = Klisten l; _ } as e) -> (
          charge k cost.accept_op;
          match Net.accept l with
          | Some ep ->
              let flags =
                if n = Defs.sys_accept4 then to_i a4 land Defs.o_nonblock
                else 0
              in
              ok (alloc_fd t (Kstream ep) ~flags)
          | None ->
              if nonblocking e then err Defs.eagain else Block (Waccept fd))
      | Some _ -> err Defs.einval
      | None -> err Defs.ebadf)
  | n when n = Defs.sys_shutdown -> (
      match get_fd t (to_i a1) with
      | Some { kind = Kstream ep; _ } ->
          Net.close_endpoint ep;
          ok 0
      | Some _ -> err Defs.enotsock
      | None -> err Defs.ebadf)
  | n when n = Defs.sys_sendfile -> (
      let out_fd = to_i a1
      and in_fd = to_i a2
      and off_ptr = to_i a3
      and count = to_i a4 in
      match (get_fd t out_fd, get_fd t in_fd) with
      | Some ({ kind = Kstream ep; _ } as oe), Some { kind = Kreg of_; _ } -> (
          charge k (cost.sock_op + cost.fs_op);
          let pos =
            if off_ptr <> 0 then to_i (user_read_u64 t off_ptr)
            else of_.Vfs.offset
          in
          let space = Net.send_space ep in
          if space = 0 then
            match ep.peer with
            | None ->
                Ksignal.post k t Defs.sigpipe;
                err Defs.epipe
            | Some _ ->
                if nonblocking oe then err Defs.eagain
                else Block (Wwrite out_fd)
          else
            let len = min count space in
            match Vfs.pread of_ ~pos len with
            | Error e -> err e
            | Ok data -> (
                (* sendfile's raison d'etre: one copy instead of two *)
                charge_copy (String.length data);
                match Net.send ep data 0 (String.length data) with
                | Ok sent ->
                    if off_ptr <> 0 then
                      user_write_u64 t off_ptr (i64 (pos + sent))
                    else of_.Vfs.offset <- pos + sent;
                    ok sent
                | Error `Pipe ->
                    Ksignal.post k t Defs.sigpipe;
                    err Defs.epipe))
      | _ -> err Defs.einval)
  | n when n = Defs.sys_epoll_create || n = Defs.sys_epoll_create1 ->
      ok (alloc_fd t (Kepoll { interest = Hashtbl.create 8 }) ~flags:0)
  | n when n = Defs.sys_epoll_ctl -> (
      match get_fd t (to_i a1) with
      | Some { kind = Kepoll ep; _ } ->
          let op = to_i a2 and fd = to_i a3 in
          charge k cost.epoll_op;
          if op = Defs.epoll_ctl_del then begin
            Hashtbl.remove ep.interest fd;
            ok 0
          end
          else begin
            let evp = to_i a4 in
            let events = to_i (user_read_u64 t evp) in
            let data = user_read_u64 t (evp + 8) in
            Hashtbl.replace ep.interest fd (events, data);
            ok 0
          end
      | Some _ -> err Defs.einval
      | None -> err Defs.ebadf)
  | n when n = Defs.sys_epoll_wait -> (
      let epfd = to_i a1
      and events_ptr = to_i a2
      and maxev = to_i a3
      and timeout = to_i a4 in
      match get_fd t epfd with
      | Some { kind = Kepoll ep; _ } -> (
          charge k cost.epoll_op;
          let ready = epoll_ready_list t ep in
          match ready with
          | [] -> (
              (* timeout = 0: poll.  timeout < 0: block forever.
                 timeout > 0 (milliseconds): block until the virtual
                 deadline, then return 0 — the deadline is stamped on
                 first issue so retries are idempotent. *)
              if timeout = 0 then ok 0
              else
                match t.sleep_until with
                | Some deadline when now k >= deadline ->
                    t.sleep_until <- None;
                    ok 0
                | Some _ -> Block (Wepoll epfd)
                | None ->
                    if timeout > 0 then
                      t.sleep_until <-
                        Some
                          (Int64.add (now k)
                             (Int64.mul (i64 timeout) 2_100_000L));
                    Block (Wepoll epfd))
          | _ ->
              t.sleep_until <- None;
              let ready = List.filteri (fun i _ -> i < maxev) ready in
              List.iteri
                (fun idx (_, ev, data) ->
                  let base = events_ptr + (Defs.epoll_event_size * idx) in
                  user_write_u64 t base (i64 ev);
                  user_write_u64 t (base + 8) data)
                ready;
              ok (List.length ready))
      | Some _ -> err Defs.einval
      | None -> err Defs.ebadf)
  | n when n = Defs.sys_rt_sigaction ->
      let sig_ = to_i a1 and act_ptr = to_i a2 and old_ptr = to_i a3 in
      if sig_ < 1 || sig_ > Defs.nsig || sig_ = Defs.sigkill
         || sig_ = Defs.sigstop
      then err Defs.einval
      else begin
        let old = t.sighand.(sig_) in
        if old_ptr <> 0 then begin
          user_write_u64 t old_ptr old.sa_handler;
          user_write_u64 t (old_ptr + 8) old.sa_mask;
          user_write_u64 t (old_ptr + 16) old.sa_flags;
          user_write_u64 t (old_ptr + 24) old.sa_restorer
        end;
        if act_ptr <> 0 then begin
          let sa_handler = user_read_u64 t act_ptr in
          let sa_mask = user_read_u64 t (act_ptr + 8) in
          let sa_flags = user_read_u64 t (act_ptr + 16) in
          let sa_restorer = user_read_u64 t (act_ptr + 24) in
          t.sighand.(sig_) <- { sa_handler; sa_mask; sa_flags; sa_restorer }
        end;
        ok 0
      end
  | n when n = Defs.sys_rt_sigprocmask ->
      let how = to_i a1 and set_ptr = to_i a2 and old_ptr = to_i a3 in
      if old_ptr <> 0 then user_write_u64 t old_ptr t.sigmask;
      if set_ptr <> 0 then begin
        let set = user_read_u64 t set_ptr in
        t.sigmask <-
          (match how with
          | 0 (* BLOCK *) -> Int64.logor t.sigmask set
          | 1 (* UNBLOCK *) -> Int64.logand t.sigmask (Int64.lognot set)
          | _ (* SETMASK *) -> set)
      end;
      ok 0
  | n when n = Defs.sys_rt_sigreturn ->
      Ksignal.sigreturn k t;
      Ret no_result
  | n when n = Defs.sys_kill ->
      let pid = to_i a1 and sig_ = to_i a2 in
      let found = ref false in
      Hashtbl.iter
        (fun _ u ->
          if u.tgid = pid && u.state <> Zombie then begin
            found := true;
            if sig_ <> 0 then
              if sig_ = Defs.sigkill then
                Ksignal.kill_task_group k u ~code:(128 + sig_)
              else Ksignal.post k u sig_
          end)
        k.tasks;
      if !found then ok 0 else err 3 (* ESRCH *)
  | n when n = Defs.sys_tgkill -> (
      match find_task k (to_i a2) with
      | Some u when u.state <> Zombie ->
          if to_i a3 <> 0 then Ksignal.post k u (to_i a3);
          ok 0
      | _ -> err 3)
  | n when n = Defs.sys_fork || n = Defs.sys_vfork ->
      let child =
        do_fork k t ~vm:false ~files:false ~sighand:false ~stack:0 ~tls:0
          ~thread:false
      in
      ok child.tid
  | n when n = Defs.sys_clone ->
      let flags = to_i a1 and stack = to_i a2 in
      let tls = to_i a5 in
      let vm = flags land Defs.clone_vm <> 0 in
      let child =
        do_fork k t ~vm ~files:(flags land Defs.clone_files <> 0)
          ~sighand:(flags land Defs.clone_sighand <> 0)
          ~stack
          ~tls:(if flags land Defs.clone_settls <> 0 then tls else 0)
          ~thread:(flags land Defs.clone_thread <> 0)
      in
      ok child.tid
  | n when n = Defs.sys_execve ->
      let path = user_string t (to_i a1) in
      do_execve k t path
  | n when n = Defs.sys_exit ->
      do_exit k t ~code:(to_i a1) ~group:false;
      Ret no_result
  | n when n = Defs.sys_exit_group ->
      do_exit k t ~code:(to_i a1) ~group:true;
      Ret no_result
  | n when n = Defs.sys_wait4 -> (
      let pid = to_i a1 and status_ptr = to_i a2 in
      match find_zombie_child k t ~pid with
      | Some child ->
          if status_ptr <> 0 then
            user_write_u64 t status_ptr (i64 (child.exit_code lsl 8));
          t.children <- List.filter (fun x -> x <> child.tid) t.children;
          Hashtbl.remove k.tasks child.tid;
          ok child.tid
      | None ->
          if t.children = [] then err Defs.echild else Block (Wchild pid))
  | n when n = Defs.sys_prctl ->
      let op = to_i a1 in
      if op = Defs.pr_set_syscall_user_dispatch then begin
        let mode = to_i a2 in
        if mode = Defs.pr_sys_dispatch_on then begin
          t.sud.sud_on <- true;
          t.sud.sud_lo <- to_i a3;
          t.sud.sud_len <- to_i a4;
          t.sud.sud_selector <- to_i a5;
          ok 0
        end
        else begin
          t.sud.sud_on <- false;
          ok 0
        end
      end
      else err Defs.einval
  | n when n = Defs.sys_arch_prctl ->
      let op = to_i a1 in
      if op = Defs.arch_set_gs then begin
        t.ctx.gs_base <- to_i a2;
        ok 0
      end
      else if op = Defs.arch_set_fs then begin
        t.ctx.fs_base <- to_i a2;
        ok 0
      end
      else if op = Defs.arch_get_gs then begin
        user_write_u64 t (to_i a2) (i64 t.ctx.gs_base);
        ok 0
      end
      else if op = Defs.arch_get_fs then begin
        user_write_u64 t (to_i a2) (i64 t.ctx.fs_base);
        ok 0
      end
      else err Defs.einval
  | n when n = Defs.sys_seccomp ->
      let op = to_i a1 in
      if op <> Defs.seccomp_set_mode_filter then err Defs.einval
      else begin
        (* sock_fprog: len u64 @0, insns ptr u64 @8; each insn is
           code u16, jt u8, jf u8, k u32. *)
        let fprog = to_i a3 in
        let len = to_i (user_read_u64 t fprog) in
        let insns_ptr = to_i (user_read_u64 t (fprog + 8)) in
        let raw = user_read t insns_ptr (8 * len) in
        let prog =
          Array.init len (fun idx ->
              let b = idx * 8 in
              {
                Bpf.code =
                  Char.code raw.[b] lor (Char.code raw.[b + 1] lsl 8);
                jt = Char.code raw.[b + 2];
                jf = Char.code raw.[b + 3];
                k =
                  Int32.logor
                    (Int32.of_int
                       (Char.code raw.[b + 4]
                       lor (Char.code raw.[b + 5] lsl 8)
                       lor (Char.code raw.[b + 6] lsl 16)))
                    (Int32.shift_left (Int32.of_int (Char.code raw.[b + 7])) 24);
              })
        in
        match Bpf.validate prog with
        | () ->
            t.filters <- prog :: t.filters;
            ok 0
        | exception Bpf.Invalid_program _ -> err Defs.einval
      end
  | n when n = Defs.sys_futex -> (
      let addr = to_i a1 and op = to_i a2 land 0x7F and v = to_i a3 in
      match op with
      | op when op = Defs.futex_wait -> (
          (* Like nanosleep, a timed wait is retried by re-execution
             and must remember its absolute deadline; the retry after
             the deadline passes reports ETIMEDOUT. *)
          match t.sleep_until with
          | Some deadline when now k >= deadline ->
              t.sleep_until <- None;
              err Defs.etimedout
          | Some _ ->
              let cur = to_i (user_read_u64 t addr) in
              if cur <> v then begin
                t.sleep_until <- None;
                err Defs.eagain
              end
              else Block (Wfutex addr)
          | None ->
              let cur = to_i (user_read_u64 t addr) in
              if cur <> v then err Defs.eagain
              else begin
                let tsp = to_i a4 in
                if tsp <> 0 then begin
                  let sec = user_read_u64 t tsp
                  and nsec = user_read_u64 t (tsp + 8) in
                  let cycles =
                    Int64.add
                      (Int64.mul sec 2_100_000_000L)
                      (Int64.div (Int64.mul nsec 21L) 10L)
                  in
                  t.sleep_until <- Some (Int64.add (now k) cycles)
                end;
                Block (Wfutex addr)
              end)
      | op when op = Defs.futex_wake ->
          let woken = ref 0 in
          Hashtbl.iter
            (fun _ u ->
              match u.state with
              | Blocked (Wfutex a) when a = addr && !woken < v ->
                  u.state <- Runnable;
                  u.sleep_until <- None;
                  u.retrying <- false;
                  (* the waiter returns 0 from futex *)
                  Cpu.poke_reg u.ctx Isa.rax 0L;
                  u.ctx.rip <- u.ctx.rip + 2;
                  incr woken
              | _ -> ())
            k.tasks;
          ok !woken
      | _ -> err Defs.enosys)
  | n when n = Defs.sys_ptrace -> err Defs.enosys
  | _ -> err Defs.enosys

(** {1 Syscall entry: SUD, ptrace, seccomp, dispatch} *)

let seccomp_verdict (k : kernel) (t : task) nr : int =
  (* All filters run; the most restrictive action wins. *)
  let call_addr = t.ctx.rip in
  let data =
    {
      Bpf.nr;
      arch = Bpf.audit_arch_x86_64;
      instruction_pointer = call_addr;
      args =
        (let c = t.ctx in
         [|
           Cpu.peek_reg c Isa.rdi; Cpu.peek_reg c Isa.rsi;
           Cpu.peek_reg c Isa.rdx; Cpu.peek_reg c Isa.r10;
           Cpu.peek_reg c Isa.r8; Cpu.peek_reg c Isa.r9;
         |]);
    }
  in
  let precedence action =
    (* Lower = more restrictive. *)
    if action = Defs.seccomp_ret_kill_process then 0
    else if action = Defs.seccomp_ret_kill_thread then 1
    else if action = Defs.seccomp_ret_trap then 2
    else if action = Defs.seccomp_ret_errno then 3
    else if action = Defs.seccomp_ret_trace then 4
    else if action = Defs.seccomp_ret_log then 5
    else 6
  in
  List.fold_left
    (fun best prog ->
      charge k k.cost.seccomp_fixed;
      let v, steps = Bpf.run prog data in
      charge k (k.cost.bpf_insn * steps);
      let v = Int64.to_int (Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL) in
      if precedence (v land Defs.seccomp_ret_action_full)
         < precedence (best land Defs.seccomp_ret_action_full)
      then v
      else best)
    Defs.seccomp_ret_allow t.filters

let make_ptrace_view (t : task) : ptrace_view =
  {
    pv_task = t;
    pv_get_reg = (fun r -> Cpu.peek_reg t.ctx r);
    pv_set_reg = (fun r v -> Cpu.poke_reg t.ctx r v);
    pv_read_mem = (fun addr len -> Mem.peek_bytes t.mem addr len);
  }

let ptrace_stop_cost (k : kernel) (m : monitor) =
  charge k (2 * k.cost.context_switch);
  charge k (m.tracer_syscalls_per_stop * k.cost.syscall_base)

(** Full syscall entry path for a trap raised by a [syscall]
    instruction ([t.ctx.rip] already points past it). *)
let arg_regs = [| Isa.rdi; Isa.rsi; Isa.rdx; Isa.r10; Isa.r8; Isa.r9 |]

(* Record one application-scope syscall on the auditor, take a
   state-hash checkpoint when one is due, and honor a replay-to-point
   stop request.  [args] were captured at dispatch; everything else is
   read from the task's context *after* the result write, so the
   callee-saved registers and xstate reflect what the application
   observes on return. *)
let audit_syscall (k : kernel) (t : task) ~nr ~args ~ret ~path =
  match k.auditor with
  | None -> ()
  | Some a ->
      let module A = Sim_audit.Audit in
      A.record_syscall a ~tid:t.tid ~scope:A.App ~nr ~args ~ret ~path t.ctx;
      if A.checkpoint_due a then A.take_checkpoint a ~tid:t.tid t.ctx t.mem;
      if A.should_halt a then k.halted <- true

(* Record one application dispatch on the provenance ledger: recover
   the call-site PC, walk the guest rbp frame chain, stamp the
   dispatch-path mix and kernel-cycle cost per (site, nr).  Called
   just before {!audit_syscall} appends, so [ev] is the app-stream
   index this dispatch will be recorded at.

   Site recovery mirrors the interposer entries, and every candidate
   is validated by decoding: a genuine site holds the two bytes of
   [syscall] (0f 05) or of a rewritten [call rax] (ff d0).

   - Direct / ptrace dispatches execute the application's own
     [syscall], so [rip - 2] is the site.
   - Fast-path (and lazypoline's SUD slow-path) dispatches run inside
     the interposer stub, whose stack top still holds the application
     return address the [call rax] (or the emulated call push) left —
     site is that address minus 2.
   - The classic signal-driven stubs (the SUD and seccomp-user
     baselines) re-execute the syscall from inside the SIGSYS
     handler, where neither holds: there [rsp] is the signal frame
     base and the faulting site travels in siginfo's [si_call_addr]
     (frame base + 8 + the field offset), exactly where the stub's
     own PREP hypercall reads it.

   Candidates are tried in that order, first valid wins; an
   unverifiable dispatch falls back to [rip - 2] so the ledger still
   counts it.  Observation-only: every read is fault-guarded and
   nothing is charged or mutated. *)
let recover_site (t : task) ~path : int =
  let c = t.ctx in
  let valid pc =
    pc > 0
    &&
    match Mem.peek_bytes t.mem pc 2 with
    | b -> b = "\x0f\x05" || b = "\xff\xd0"
    | exception Mem.Fault _ -> false
  in
  let peek_site addr =
    match Mem.peek_u64 t.mem addr with
    | v -> Some (Int64.to_int v - 2)
    | exception Mem.Fault _ -> None
  in
  let rsp = Int64.to_int (Cpu.peek_reg c Isa.rsp) in
  let candidates =
    match path with
    | Ev.Direct | Ev.Ptrace_path -> [ Some (c.rip - 2) ]
    | Ev.Fast_path -> [ peek_site rsp ]
    | Ev.Sud_sigsys | Ev.Seccomp_path ->
        [
          peek_site rsp;
          peek_site (rsp + 8 + Ksignal.si_call_addr_off);
        ]
  in
  match
    List.find_opt (function Some pc -> valid pc | None -> false) candidates
  with
  | Some (Some pc) -> pc
  | _ -> c.rip - 2

let prov_record (k : kernel) (t : task) ~nr ~path ~ts0 =
  match k.prov with
  | None -> ()
  | Some p ->
      let c = t.ctx in
      let site = recover_site t ~path in
      (* App-stream indices are 1-based (record_syscall increments
         then returns); this dispatch is audited right after us. *)
      let ev =
        match k.auditor with
        | Some a -> Sim_audit.Audit.app_count a + 1
        | None -> -1
      in
      let cycles = Int64.sub (now k) ts0 in
      Sim_obs.Provenance.record p ~mem:t.mem ~site ~nr ~path
        ~rbp:(Int64.to_int (Cpu.peek_reg c Isa.rbp))
        ~cycles ~now:(now k) ~ev;
      (* With the span recorder also attached, the request being
         served on this CPU learns its per-site kernel cycles — how
         exemplars name the hottest call site of their window. *)
      (match k.obs with
      | Some o -> Sim_obs.Obs.note_site o ~cpu:k.cur_cpu ~site ~cycles
      | None -> ())

(* Consult the syscall-flow-integrity engine for one application
   dispatch.  Site recovery reuses the provenance candidate logic —
   the result write has not happened yet, so rsp/rip are exactly as
   the interposer left them.  Returns [Some p] when the engine is
   enforcing (deny/kill) and the dispatch violated the policy; the
   caller suppresses the syscall and applies the verdict.  In report
   or learning mode the check is observation-only: it never charges
   cycles and never influences the run. *)
let policy_gate (k : kernel) (t : task) ~nr ~path : Policy.t option =
  match k.policy with
  | None -> None
  | Some p -> (
      Policy.clear_denial_tag p ~tid:t.tid;
      let enforcing =
        (not p.Policy.learning) && p.Policy.mode <> Policy.Report
      in
      if enforcing then charge k k.cost.policy_check;
      let site = recover_site t ~path in
      let pkey = Mem.pkey_at t.mem site in
      let index =
        match k.auditor with
        | Some a -> Sim_audit.Audit.app_count a + 1
        | None -> -1
      in
      match Policy.check p ~tid:t.tid ~nr ~site ~pkey ~index with
      | Some _ when enforcing -> Some p
      | _ -> None)

let syscall_entry (k : kernel) (t : task) =
  let c = t.ctx in
  let nr = Int64.to_int (Cpu.peek_reg c Isa.rax) in
  let ts0 = now k in
  (* Cycles charged from here until the next guest instruction are
     kernel time for the profiler; the flag is reset before every
     [Cpu.step], so no explicit leave is needed on the many exits. *)
  enter_kernel k;
  (* Stage the dispatched nr so the span recorder can attribute the
     kernel cycles of this dispatch per syscall; self-heals with
     [in_kernel], so no explicit clear on the many exits either. *)
  (match k.obs with
  | Some o -> Sim_obs.Obs.set_cur_nr o k.cur_cpu nr
  | None -> ());
  (* 1. Syscall User Dispatch *)
  let sud_intercepts =
    if not t.sud.sud_on then false
    else begin
      charge k k.cost.sud_check;
      let insn_addr = c.rip - 2 in
      if insn_addr >= t.sud.sud_lo && insn_addr < t.sud.sud_lo + t.sud.sud_len
      then false
      else
        match Mem.peek_bytes t.mem t.sud.sud_selector 1 with
        | s -> Char.code s.[0] = Defs.syscall_dispatch_filter_block
        | exception Mem.Fault _ ->
            (* An unreadable selector kills the task, as on Linux. *)
            Ksignal.kill_task_group k t ~code:(128 + Defs.sigsegv);
            false
    end
  in
  if t.state = Zombie then ()
  else if sud_intercepts then begin
    charge k k.cost.syscall_abort;
    (* Tag the in-flight syscall: the interposer's SIGSYS handler will
       re-issue it through its stub, and that dispatch should be
       attributed to the slow path, not to the stub's plain [syscall]
       instruction. *)
    if observing k then t.trace_path <- Some Ev.Sud_sigsys;
    Ksignal.force k t Defs.sigsys
      {
        si_signo = Defs.sigsys;
        si_code = Defs.sys_user_dispatch_code;
        si_call_addr = c.rip;
        si_syscall = nr;
      }
  end
  else begin
    (* 2. ptrace syscall-entry stop *)
    (match t.monitor with
    | Some m ->
        ptrace_stop_cost k m;
        m.on_entry (make_ptrace_view t)
    | None -> ());
    (* The tracer may have rewritten the syscall number. *)
    let nr = Int64.to_int (Cpu.peek_reg c Isa.rax) in
    (match k.obs with
    | Some o -> Sim_obs.Obs.set_cur_nr o k.cur_cpu nr
    | None -> ());
    (* Audit: the argument registers as dispatched; result and
       callee-saved state are captured on the way out. *)
    let aud_args =
      match k.auditor with
      | Some _ -> Array.map (fun r -> Cpu.peek_reg c r) arg_regs
      | None -> [||]
    in
    (* 3. seccomp *)
    let verdict =
      if t.filters = [] then Defs.seccomp_ret_allow else seccomp_verdict k t nr
    in
    let action = verdict land Defs.seccomp_ret_action_full in
    if action = Defs.seccomp_ret_kill_process
       || action = Defs.seccomp_ret_kill_thread
    then Ksignal.kill_task_group k t ~code:(128 + Defs.sigsys)
    else if action = Defs.seccomp_ret_trap then begin
      charge k k.cost.syscall_abort;
      Ksignal.force k t Defs.sigsys
        {
          si_signo = Defs.sigsys;
          si_code = Defs.sys_seccomp_code;
          si_call_addr = c.rip;
          si_syscall = nr;
        }
    end
    else if action = Defs.seccomp_ret_errno then begin
      charge k k.cost.syscall_abort;
      let e = verdict land Defs.seccomp_ret_data in
      Cpu.poke_reg c Isa.rax (i64 (-e));
      if k.tracer <> None then begin
        trace_emit_at k ~ts:ts0
          (Ev.Syscall_enter { nr; path = Ev.Seccomp_path });
        trace_emit k
          (Ev.Syscall_exit
             { nr; path = Ev.Seccomp_path; ret = i64 (-e); blocked = false })
      end;
      (match k.metrics with
      | Some m ->
          Kmetrics.count_syscall m ~nr ~path:Ev.Seccomp_path;
          Kmetrics.observe_latency m (Int64.to_int (Int64.sub (now k) ts0))
      | None -> ());
      (* The application observes this dispatch (a -errno result), so
         the policy state machine must see it too; seccomp already
         suppressed it, so an enforcing verdict has nothing to add. *)
      if not t.retrying then
        ignore (policy_gate k t ~nr ~path:Ev.Seccomp_path : Policy.t option);
      prov_record k t ~nr ~path:Ev.Seccomp_path ~ts0;
      audit_syscall k t ~nr ~args:aud_args ~ret:(Some (i64 (-e)))
        ~path:Ev.Seccomp_path;
      t.trace_path <- None
    end
    else begin
      (* 4. Dispatch. *)
      charge k k.cost.syscall_base;
      let tracing = k.tracer <> None in
      let observed = observing k in
      (* [rt_sigreturn] from the signal trampoline runs *between* the
         SUD intercept (which staged the tag) and the interposer
         stub's re-issued syscall (which the tag is for); it must
         neither consume nor clear the tag. *)
      let sigreturning = nr = Defs.sys_rt_sigreturn in
      let path =
        if not observed then Ev.Direct
        else
          match t.trace_path with
          | Some p when not sigreturning -> p
          | _ ->
              if t.monitor <> None then Ev.Ptrace_path
              else if t.filters <> [] then Ev.Seccomp_path
              else Ev.Direct
      in
      if tracing then trace_emit_at k ~ts:ts0 (Ev.Syscall_enter { nr; path });
      (match k.metrics with
      | Some m -> Kmetrics.count_syscall m ~nr ~path
      | None -> ());
      (* Chaos errno injection: an eligible first-issue syscall may
         transiently fail instead of dispatching.  Retries of a
         blocked syscall are exempt — their count is schedule- and
         mechanism-dependent, and injecting into them would misalign
         the injection keys across mechanisms. *)
      let injected_errno =
        match k.chaos with
        | Some ch when not t.retrying ->
            Sim_chaos.Chaos.errno_injection ch ~tid:t.tid ~nr
        | _ -> None
      in
      (* Syscall-flow-integrity gate: consulted once per application
         dispatch, at first issue like the chaos injections (retries
         of a blocked syscall re-enter here without passing through
         the interposer, and EINTR abandonment audits at the same
         index); [rt_sigreturn] is signal plumbing, not application
         flow.  Runs before dispatch so a deny/kill verdict can
         suppress the syscall. *)
      let policy_verdict =
        if t.retrying || sigreturning then None
        else policy_gate k t ~nr ~path
      in
      let res =
        match policy_verdict with
        | Some p ->
            if p.Policy.mode = Policy.Deny then
              Policy.note_denied p ~tid:t.tid;
            Ret (i64 (-Defs.eperm))
        | None -> (
            match injected_errno with
            | Some e -> Ret (i64 (-e))
            | None ->
                if nr < 0 || nr > Defs.max_syscall then
                  Ret (i64 (-Defs.enosys))
                else
                  try do_syscall k t nr
                  with Efault -> Ret (i64 (-Defs.efault)))
      in
      (match k.metrics with
      | Some m ->
          Kmetrics.observe_latency m (Int64.to_int (Int64.sub (now k) ts0))
      | None -> ());
      (match res with
      | Ret v when v = no_result -> ()
      | Ret v ->
          t.retrying <- false;
          Cpu.poke_reg c Isa.rax v;
          (* The kernel clobbers rcx and r11 (sysret ABI). *)
          Cpu.poke_reg c Isa.rcx (i64 c.rip);
          Cpu.poke_reg c Isa.r11 (Ksignal.flags_word c)
      | Block reason ->
          (* Rewind to the syscall instruction; it is retried on
             wakeup. *)
          c.rip <- c.rip - 2;
          t.state <- Blocked reason;
          t.retrying <- true;
          (* Chaos block-signal injection: decide, as the wait
             begins, whether a signal interrupts it — driving the
             SA_RESTART vs -EINTR paths under every mechanism at the
             same application event. *)
          (match k.chaos with
          | Some ch -> (
              match
                Sim_chaos.Chaos.block_signal_injection ch ~tid:t.tid
                  ~handler_ok:(fun s ->
                    let h = t.sighand.(s).sa_handler in
                    h <> Defs.sig_dfl && h <> Defs.sig_ign)
              with
              | Some s -> Ksignal.post k t s
              | None -> ())
          | None -> ()));
      (match (k.strace, res) with
      | Some f, Ret v -> f t nr v
      | Some f, Block _ -> f t nr (i64 (-512) (* ERESTARTSYS-ish *))
      | None, _ -> ());
      (* 5. ptrace syscall-exit stop *)
      (match t.monitor with
      | Some m when t.state <> Zombie ->
          ptrace_stop_cost k m;
          m.on_exit (make_ptrace_view t)
      | _ -> ());
      (* Audit after the exit stop so a ptrace monitor's result
         rewrite (if any) is what gets recorded — the application
         never sees anything earlier.  Blocked syscalls record only
         on their final (Ret) retry; [rt_sigreturn] is recorded by
         the signal layer as a frame-scoped event instead. *)
      (match res with
      | Ret v when not sigreturning ->
          let ret =
            if v = no_result then None else Some (Cpu.peek_reg c Isa.rax)
          in
          prov_record k t ~nr ~path ~ts0;
          audit_syscall k t ~nr ~args:aud_args ~ret ~path
      | _ -> ());
      (* Chaos async-signal injection: a completed application
         syscall may leave a signal pending, delivered before the
         next guest instruction — which under an interposer is
         typically inside its stub or trampoline, exactly the windows
         the paper's correctness claim covers. *)
      (match (k.chaos, res) with
      | Some ch, Ret v when v <> no_result && not sigreturning -> (
          match
            Sim_chaos.Chaos.post_syscall_injection ch ~tid:t.tid ~nr
              ~handler_ok:(fun s ->
                let h = t.sighand.(s).sa_handler in
                h <> Defs.sig_dfl && h <> Defs.sig_ign)
          with
          | Some s -> Ksignal.post k t s
          | None -> ())
      | _ -> ());
      if tracing then begin
        let ret, blocked =
          match res with
          | Ret v -> ((if v = no_result then 0L else v), false)
          | Block _ -> (0L, true)
        in
        trace_emit k (Ev.Syscall_exit { nr; path; ret; blocked })
      end;
      (* A kill verdict fires only after the denied dispatch has been
         fully recorded: the audit stream ends with the violating
         syscall's -EPERM followed by the task exit. *)
      (match policy_verdict with
      | Some p when p.Policy.mode = Policy.Kill && t.state <> Zombie ->
          Policy.note_killed p;
          Ksignal.kill_task_group k t ~code:(128 + Defs.sigsys)
      | _ -> ());
      (* A blocked syscall keeps its tag: the retry re-enters here
         without passing through the interposer again. *)
      match res with
      | Block _ -> ()
      | Ret _ -> if not sigreturning then t.trace_path <- None
    end
  end

(** Kernel services for interposer hypercall handlers: performs [nr]
    with explicit arguments on behalf of [t], charging the syscall
    round trip (plus the SUD-enabled entry tax when active) exactly
    as if the interposer had executed its own [syscall] instruction
    from an allowlisted context.  Must not be used for syscalls that
    can block. *)
let kernel_syscall (k : kernel) (t : task) nr (args : int64 array) : int64 =
  let ts0 = now k in
  enter_kernel k;
  (* Nested dispatch: attribute this service to its own nr, then put
     the outer dispatch's staging back. *)
  let saved_nr =
    match k.obs with
    | Some o ->
        let s = Sim_obs.Obs.cur_nr o k.cur_cpu in
        Sim_obs.Obs.set_cur_nr o k.cur_cpu nr;
        s
    | None -> -1
  in
  charge k k.cost.syscall_base;
  if t.sud.sud_on then charge k k.cost.sud_check;
  let c = t.ctx in
  let saved = Array.map (fun r -> Cpu.peek_reg c r) arg_regs in
  Array.iteri
    (fun i r ->
      Cpu.poke_reg c r (if i < Array.length args then args.(i) else 0L))
    arg_regs;
  let res =
    if nr < 0 || nr > Defs.max_syscall then Ret (i64 (-Defs.enosys))
    else try do_syscall k t nr with Efault -> Ret (i64 (-Defs.efault))
  in
  Array.iteri (fun i r -> Cpu.poke_reg c r saved.(i)) arg_regs;
  (match k.obs with
  | Some o -> Sim_obs.Obs.set_cur_nr o k.cur_cpu saved_nr
  | None -> ());
  leave_kernel k;
  match res with
  | Ret v when v = no_result ->
      invalid_arg "kernel_syscall: control-transfer syscall"
  | Ret v ->
      (* Interposer-internal syscalls are their own (direct) spans;
         they must not consume the dispatch-path tag staged for the
         application syscall they serve. *)
      if k.tracer <> None then begin
        trace_emit_at k ~ts:ts0 (Ev.Syscall_enter { nr; path = Ev.Direct });
        trace_emit k
          (Ev.Syscall_exit { nr; path = Ev.Direct; ret = v; blocked = false })
      end;
      (match k.metrics with
      | Some m ->
          Kmetrics.count_syscall m ~nr ~path:Ev.Direct;
          Kmetrics.observe_latency m (Int64.to_int (Int64.sub (now k) ts0))
      | None -> ());
      (* Mechanism-private by definition: this syscall exists only
         because of how the interposer is implemented (gs-area mmap,
         selector arch_prctl, rewrite mprotect pairs, ...). *)
      (match k.auditor with
      | Some a ->
          let args6 =
            Array.init 6 (fun i ->
                if i < Array.length args then args.(i) else 0L)
          in
          Sim_audit.Audit.record_syscall a ~tid:t.tid
            ~scope:Sim_audit.Audit.Mech ~nr ~args:args6 ~ret:(Some v)
            ~path:Ev.Direct c
      | None -> ());
      v
  | Block _ -> invalid_arg "kernel_syscall: syscall would block"

(** {1 Scheduler} *)

let runnable_on (k : kernel) cpu (t : task) =
  t.state = Runnable && t.on_cpu = -1 && (t.affinity = -1 || t.affinity = cpu)
  && not k.halted

(** Wake blocked tasks whose wait condition is satisfied. *)
let reap_wakeups (k : kernel) =
  Hashtbl.iter
    (fun _ t ->
      match t.state with
      | Blocked reason -> (
          let wake_eintr () =
            (* Abandon the syscall: skip the rewound instruction and
               report EINTR, then let signal delivery run.  The
               abandoned syscall will not retry, so its dispatch-path
               tag dies with it.  The -EINTR completion is part of the
               application's observable history — record it like any
               other result (the arg registers are untouched since
               dispatch; rax still holds the syscall number). *)
            let nr = to_i (Cpu.peek_reg t.ctx Isa.rax) in
            let path =
              match t.trace_path with Some p -> p | None -> Ev.Direct
            in
            t.trace_path <- None;
            t.sleep_until <- None;
            t.retrying <- false;
            t.ctx.rip <- t.ctx.rip + 2;
            Cpu.poke_reg t.ctx Isa.rax (i64 (-Defs.eintr));
            t.state <- Runnable;
            match k.auditor with
            | Some _ ->
                let args =
                  Array.map (fun r -> Cpu.peek_reg t.ctx r) arg_regs
                in
                audit_syscall k t ~nr ~args
                  ~ret:(Some (i64 (-Defs.eintr)))
                  ~path
            | None -> ()
          in
          match Ksignal.first_actionable t with
          | Some s ->
              (* SA_RESTART semantics: if the handler about to run was
                 installed with SA_RESTART and the syscall is
                 restartable, leave rip rewound at the syscall
                 instruction — delivery saves that rip in the frame,
                 so sigreturn transparently re-executes the wait.
                 Otherwise the syscall completes with -EINTR before
                 the handler runs. *)
              let restart =
                Int64.logand t.sighand.(s).sa_flags (i64 Defs.sa_restart)
                <> 0L
                && Defs.syscall_restartable
                     (to_i (Cpu.peek_reg t.ctx Isa.rax))
              in
              if restart then t.state <- Runnable else wake_eintr ()
          | None ->
              let ready =
                match reason with
                | Wread fd -> fd_readable t fd
                | Wwrite fd -> fd_writable t fd
                | Waccept fd -> fd_readable t fd
                | Wepoll epfd -> (
                    (* readiness or an expired positive timeout: the
                       retry distinguishes them (ready list vs return
                       0). *)
                    (match t.sleep_until with
                    | Some deadline -> global_time k >= deadline
                    | None -> false)
                    ||
                    match get_fd t epfd with
                    | Some { kind = Kepoll ep; _ } ->
                        epoll_ready_list t ep <> []
                    | _ -> true)
                | Wchild pid -> find_zombie_child k t ~pid <> None
                | Wsleep until -> global_time k >= until
                | Wfutex _ -> (
                    (* woken directly by FUTEX_WAKE, or by an expired
                       timeout (the retry reports ETIMEDOUT) *)
                    match t.sleep_until with
                    | Some deadline -> global_time k >= deadline
                    | None -> false)
              in
              if ready then t.state <- Runnable)
      | Runnable | Zombie -> ())
    k.tasks

let pick_task (k : kernel) cpu : task option =
  reap_wakeups k;
  let best = ref None in
  Hashtbl.iter
    (fun _ t ->
      if runnable_on k cpu t then
        match !best with
        | None -> best := Some t
        | Some b -> if t.last_run < b.last_run then best := Some t)
    k.tasks;
  !best

exception Too_many_steps

(** Route [t]'s per-address-space observers (mapping changes, decoded
    icache invalidations) into the machine-wide tracer and metrics
    registry.  Installed lazily whenever a task is scheduled while an
    observer is attached, so tasks created before the observer, forked
    children and execve'd images (which all carry hook-less fresh
    state) are caught on their next slice. *)
let install_observe_hooks (k : kernel) (t : task) =
  Mem.set_trace_hook t.mem
    (Some
       (function
         | Mem.Tmap { addr; len; x } ->
             trace_emit k (Ev.Mmap { addr; len; prot_exec = x });
             (match k.metrics with
             | Some m -> Kmetrics.add m.Kmetrics.mmap_bytes len
             | None -> ())
         | Mem.Tunmap { addr; len } ->
             trace_emit k (Ev.Munmap { addr; len });
             (match k.metrics with
             | Some m -> Kmetrics.add m.Kmetrics.munmap_bytes len
             | None -> ())
         | Mem.Tprotect { addr; len; x; x_gained } ->
             trace_emit k (Ev.Mprotect { addr; len; prot_exec = x });
             (match k.metrics with
             | Some m ->
                 Kmetrics.add m.Kmetrics.mprotect_bytes len;
                 if x_gained then incr m.Kmetrics.wx_flips
             | None -> ());
             (* Pages that were written and then flipped executable:
                the W^X publish step of JIT emission (minicc's jit
                does exactly this store-then-mprotect dance). *)
             if x_gained then trace_emit k (Ev.Jit_emit { addr; len })));
  t.icache.Icache.on_invalidate <-
    Some (fun page -> trace_emit k (Ev.Icache_invalidate { page }))

(** Run [t] on the current CPU until it blocks, exits, or the slice
    ends. *)
let run_task (k : kernel) (t : task) =
  let slot = k.cpus.(k.cur_cpu) in
  let prev_tid = slot.last_tid in
  let switched = prev_tid <> t.tid && prev_tid <> -1 in
  if switched then charge k k.cost.context_switch;
  slot.last_tid <- t.tid;
  t.on_cpu <- k.cur_cpu;
  t.last_run <- slot.clk;
  k.cur_task <- Some t;
  (match k.obs with
  | Some o -> Sim_obs.Obs.task_on o ~cpu:k.cur_cpu ~tid:t.tid ~ts:slot.clk
  | None -> ());
  if switched then begin
    trace_emit k (Ev.Context_switch { prev_tid; next_tid = t.tid });
    (match k.auditor with
    | Some a -> Sim_audit.Audit.record_sched a ~tid:t.tid ~prev:prev_tid
    | None -> ());
    match k.metrics with
    | Some m -> incr m.Kmetrics.ctx_switches
    | None -> ()
  end;
  if observing k then install_observe_hooks k t;
  t.ctx.now <- (fun () -> k.cpus.(k.cur_cpu).clk);
  let cost = k.cost in
  let icache = if k.icache_on then Some t.icache else None in
  let engine = k.blocks_on && k.icache_on in
  (* Chaos preemption: a fired decision ends this task's turn at the
     current instruction boundary, as if the quantum expired — the
     scheduler then re-picks (round-robin hands the CPU to the
     longest-waiting runnable task). *)
  let preempted = ref false in
  (* Block-runner callbacks, hoisted out of the hot loop.  Per-op
     charging is only needed when a profiler wants per-instruction
     tick attribution; otherwise the runner accumulates units and the
     exit phase bulk-charges (clock and task-cycle sums are
     identical, and nothing else can observe the clock mid-block:
     blocks contain no syscalls, traps or rdtsc). *)
  let per_op =
    match k.profiler with
    | Some _ -> Some (fun u -> charge k (cost.insn * u))
    | None -> None
  in
  let chaos_cb =
    match k.chaos with
    | Some ch ->
        Some
          (fun () ->
            Sim_chaos.Chaos.preempt_injection ch ~tid:t.tid
              ~rip:t.ctx.Cpu.rip ~sig_depth:t.sig_depth)
    | None -> None
  in
  (* Units of [last_cost] the block runner may start: op i runs iff
     the units accumulated before it satisfy
     [cost.insn * acc < slice_end - clk] — exactly the interpreter's
     per-instruction [clk < slice_end] pre-check. *)
  let budget_units () =
    let d = Int64.sub k.slice_end slot.clk in
    let ci = cost.insn in
    if ci <= 0 then max_int
    else if ci = 1 then Int64.to_int d
    else
      Int64.to_int
        (Int64.div (Int64.add d (Int64.of_int (ci - 1))) (Int64.of_int ci))
  in
  (try
     while
       t.state = Runnable && slot.clk < k.slice_end && not k.halted
       && not !preempted
     do
       (* Kernel work from here (signal delivery, the next dispatch)
          starts outside any syscall; the span recorder's staged nr
          self-heals with [in_kernel] below. *)
       (match k.obs with
       | Some o -> Sim_obs.Obs.set_cur_nr o k.cur_cpu (-1)
       | None -> ());
       if t.pending <> 0L && signal_pending_unmasked t then
         ignore (Ksignal.deliver_pending k t);
       if t.state = Runnable then begin
         (* Self-healing kernel-depth reset: syscall dispatch and
            signal delivery only ever increment, so any path that
            leaves the kernel (including the many early exits)
            lands here and clears the depth before guest code runs. *)
         k.in_kernel <- 0;
         (* Enter-block: with the engine on and no register-access
            hook installed (block closures bypass the hook machinery),
            ask the icache for a compiled block covering rip. *)
         let from_block = ref false in
         let oc =
           if engine && t.ctx.Cpu.hook = None then
             match Icache.lookup t.icache t.mem t.ctx.Cpu.rip with
             | Icache.Hblock (blk, i0) ->
                 from_block := true;
                 let oc, bulk, pre =
                   Cpu.run_block t.ctx t.mem blk i0
                     ~budget:(budget_units ()) ~per_op ~chaos:chaos_cb
                 in
                 (* Exit-block: one bulk charge for everything the
                    runner retired (zero when a profiler forced the
                    per-op path). *)
                 if bulk > 0 then charge k (cost.insn * bulk);
                 if pre then preempted := true;
                 oc
             | Icache.Hentry e -> Cpu.step_cached t.ctx t.mem e
             | Icache.Hmiss -> Cpu.step_miss t.ctx t.mem
           else begin
             if engine then Icache.note_hooked_fallback t.icache;
             Cpu.step ?icache t.ctx t.mem
           end
         in
         (match oc with
         | Cpu.Stepped ->
             if not !from_block then
               charge k (cost.insn * t.ctx.Cpu.last_cost)
         | Cpu.Trap_syscall ->
             charge k cost.insn;
             syscall_entry k t
         | Cpu.Trap_hypercall n -> (
             charge k cost.insn;
             match Hashtbl.find_opt k.hypercalls n with
             | Some f -> f k t
             | None ->
                 (* An unregistered hypercall is an illegal
                    instruction (UD2 semantics). *)
                 Ksignal.force k t Defs.sigill
                   { si_signo = Defs.sigill; si_code = 0;
                     si_call_addr = t.ctx.rip; si_syscall = 0 })
         | Cpu.Halted -> do_exit k t ~code:(to_i (Cpu.peek_reg t.ctx Isa.rdi)) ~group:true
         | Cpu.Trap_breakpoint ->
             Ksignal.force k t 5 (* SIGTRAP *)
               { si_signo = 5; si_code = 0; si_call_addr = t.ctx.rip;
                 si_syscall = 0 }
         | Cpu.Fault (addr, _) ->
             Ksignal.force k t Defs.sigsegv
               { si_signo = Defs.sigsegv; si_code = 0; si_call_addr = addr;
                 si_syscall = 0 }
         | Cpu.Fault_arith ->
             Ksignal.force k t Defs.sigfpe
               { si_signo = Defs.sigfpe; si_code = 0;
                 si_call_addr = t.ctx.rip; si_syscall = 0 }
         | Cpu.Bad_instr addr ->
             Ksignal.force k t Defs.sigill
               { si_signo = Defs.sigill; si_code = 0; si_call_addr = addr;
                 si_syscall = 0 });
         (* Per-retired-instruction chaos draw.  A block's ops each
            drew inside the runner with identical per-op inputs, so a
            completed block must not draw again; a block's terminal
            faulting op never draws in the runner and takes the
            standard post-outcome draw here, exactly like a faulting
            single step (the draw happens after signal forcing, with
            the handler's rip and signal depth). *)
         if (not !from_block) || oc <> Cpu.Stepped then begin
           match k.chaos with
           | Some ch ->
               if
                 t.state = Runnable
                 && Sim_chaos.Chaos.preempt_injection ch ~tid:t.tid
                      ~rip:t.ctx.Cpu.rip ~sig_depth:t.sig_depth
               then preempted := true
           | None -> ()
         end
       end
     done
   with Ksignal.Killed_by_signal _ -> ());
  (match k.obs with
  | Some o ->
      let blocked = match t.state with Blocked _ -> true | _ -> false in
      Sim_obs.Obs.task_off o ~cpu:k.cur_cpu ~tid:t.tid ~ts:slot.clk ~blocked
  | None -> ());
  k.cur_task <- None;
  t.on_cpu <- -1

(** Advance the machine by one scheduling slice.

    Halt-transparency: once [k.halted] latches (an audit [stop_after]
    barrier), the slice stops dead — no clock round-up to the slice
    boundary, no actor steps, no [slice_end] advance.  A halted
    machine whose barrier is then moved forward resumes exactly where
    it stopped, with the same clocks and slice phase an uninterrupted
    run would have had; the time-travel debugger's forward stepping
    depends on this. *)
let run_slice (k : kernel) =
  let ncpu = Array.length k.cpus in
  for cpu = 0 to ncpu - 1 do
    if not k.halted then begin
      k.cur_cpu <- cpu;
      let slot = k.cpus.(cpu) in
      if slot.clk < k.slice_end then begin
        let continue_ = ref true in
        while !continue_ && slot.clk < k.slice_end && not k.halted do
          match pick_task k cpu with
          | Some t -> run_task k t
          | None ->
              slot.clk <- k.slice_end;
              continue_ := false
        done;
        if slot.clk < k.slice_end && not k.halted then
          slot.clk <- k.slice_end
      end
    end
  done;
  if not k.halted then begin
    List.iter (fun step -> step ()) k.actors;
    k.slice_end <- Int64.add k.slice_end k.slice
  end

let all_exited (k : kernel) =
  Hashtbl.fold (fun _ t acc -> acc && t.state = Zombie) k.tasks true

(** Run until every task is a zombie or [max_slices] elapse.  Returns
    [true] if everything exited. *)
let run_until_exit ?(max_slices = 2_000_000) (k : kernel) =
  let rec go n =
    if all_exited k || k.halted then true
    else if n = 0 then false
    else begin
      run_slice k;
      go (n - 1)
    end
  in
  go max_slices

(** Run for [cycles] simulated cycles (per CPU). *)
let run_for (k : kernel) (cycles : int64) =
  let target = Int64.add (global_time k) cycles in
  while global_time k < target && (not (all_exited k)) && not k.halted do
    run_slice k
  done
