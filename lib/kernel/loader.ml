(** Program images: assembling runnable processes.

    Conventional layout (mirroring a small static ELF binary):
    code at [0x400000], data at [0x600000], 1 MiB stack topping out
    at [0x7ff0000], heap (brk) growing from [0x30000000], mmap space
    from [0x20000000]. *)

open Sim_mem
open Types

let code_base = 0x400000
let data_base = 0x600000
let default_stack_top = 0x7ff0000
let default_stack_size = 1 lsl 20

(* Images are materialised by [Kernel.load_image] via [Mem.map] +
   [Mem.poke_bytes]; both bump page generations, so loading (and
   execve re-loading) invalidates any decoded code cached for the
   address range. *)

(** Build an image from assembled text and data sections.

    [text] is assembled at {!code_base} (use [Asm.assemble
    ~base:code_base]); [data] at {!data_base}.  [entry] defaults to
    the start of text. *)
let image ?(entry : int option) ?(extra : (int * string * int) list = [])
    ~(text : Sim_asm.Asm.blob) ?(data : Sim_asm.Asm.blob option) () : image =
  let segments =
    (text.base, text.bytes, Mem.rx)
    :: (match data with Some d -> [ (d.base, d.bytes, Mem.rw) ] | None -> [])
    @ extra
  in
  {
    img_segments = segments;
    img_entry = (match entry with Some e -> e | None -> text.base);
    img_stack_top = default_stack_top;
    img_stack_size = default_stack_size;
    img_symbols =
      (text.symbols
      @ match data with Some d -> d.Sim_asm.Asm.symbols | None -> []);
  }

(** One-step convenience: assemble [items] at {!code_base} and build
    an image whose entry point is the blob start (or the [start]
    label when defined). *)
let image_of_items ?(env = []) (items : Sim_asm.Asm.item list) : image =
  let text = Sim_asm.Asm.assemble ~base:code_base ~env items in
  let entry =
    match List.assoc_opt "start" text.symbols with
    | Some a -> a
    | None -> text.base
  in
  image ~entry ~text ()
