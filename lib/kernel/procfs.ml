(** The /proc synthetic filesystem.

    Mounted on every kernel at creation, readable two ways:

    - by guest programs through ordinary [open]/[read]/[close]
      syscalls — these are real syscalls that charge real cycles and
      go through the installed interposer like any other, the one
      deliberate exception to the observation-only contract (see
      DESIGN.md §9);
    - by the host (tests, the CLI) through [Vfs.read_file], which
      touches no simulated state beyond the VFS inode counter.

    Nodes, all read-only and generated on open:

    - [/proc/<pid>/status]   — identity, state, signal masks, cycles
    - [/proc/<pid>/maps]     — the simulated MMU's mapping table
    - [/proc/<pid>/interposer] — SUD selector state and the
      machine-wide rewrite / fast/slow dispatch counters
    - [/proc/metrics]        — Prometheus exposition of the registry
    - [/proc/self/...]       — the currently-executing task *)

open Sim_mem
open Types

let state_name (t : task) =
  match t.state with
  | Runnable -> "R (running)"
  | Blocked _ -> "S (sleeping)"
  | Zombie -> "Z (zombie)"

let status (t : task) =
  Printf.sprintf
    "Name:\t%s\nState:\t%s\nTgid:\t%d\nPid:\t%d\nPPid:\t%d\nThreads:\t%d\n\
     SigPnd:\t%016Lx\nSigBlk:\t%016Lx\nCpusAllowed:\t%d\nCycles:\t%Ld\n"
    t.comm (state_name t) t.tgid t.tid t.parent_tid
    (1 + List.length t.children)
    t.pending t.sigmask t.affinity t.tcycles

(** One line per mapped region, straight from the MMU: the acceptance
    test parses this back and compares against [Mem.regions]. *)
let maps (t : task) =
  Mem.regions t.mem
  |> List.map (fun (addr, len, perm) ->
         Printf.sprintf "%08x-%08x %sp 00000000 00:00 0\n" addr (addr + len)
           (Mem.perm_to_string perm))
  |> String.concat ""

let selector_name (t : task) =
  if not t.sud.sud_on then "-"
  else
    match Mem.peek_bytes t.mem t.sud.sud_selector 1 with
    | s when Char.code s.[0] = Defs.syscall_dispatch_filter_block -> "BLOCK"
    | s when Char.code s.[0] = Defs.syscall_dispatch_filter_allow -> "ALLOW"
    | s -> Printf.sprintf "0x%02x" (Char.code s.[0])
    | exception Mem.Fault _ -> "(unmapped)"

(** SUD selector state plus the machine-wide interposition counters.
    The counters come from the metrics registry and are zero when no
    registry is attached; the selector state is per-task and always
    live.  With a provenance ledger attached, one [site] line per
    known call site follows: rewritten status (and by what), dispatch
    count and path mix — the paper's per-site specialization story,
    readable from inside the guest. *)
let interposer (k : kernel) (t : task) =
  let m = k.metrics in
  let c f = match m with Some m -> f m | None -> 0 in
  let head =
    Printf.sprintf
      "sud:\t%s\nselector:\t%s\nselector_addr:\t0x%x\nallowed_range:\t0x%x-0x%x\n\
       rewrites:\t%d\nselector_flips:\t%d\nfast_path:\t%d\nslow_path:\t%d\n\
       dispatches:\t%d\nmetrics:\t%s\n"
      (if t.sud.sud_on then "on" else "off")
      (selector_name t) t.sud.sud_selector t.sud.sud_lo
      (t.sud.sud_lo + t.sud.sud_len)
      (c (fun m -> !(m.Kmetrics.rewrites)))
      (c (fun m -> !(m.Kmetrics.selector_flips)))
      (c Kmetrics.fast_hits) (c Kmetrics.slow_hits)
      (c (fun m -> !(m.Kmetrics.syscalls_total)))
      (match m with Some _ -> "attached" | None -> "detached")
  in
  match k.prov with
  | None -> head
  | Some p ->
      let module P = Sim_obs.Provenance in
      let b = Buffer.create 256 in
      Buffer.add_string b head;
      List.iter
        (fun s ->
          let rw =
            match P.rewrite_of p s.P.s_pc with
            | Some r -> P.rewrite_kind_name r.P.rw_kind
            | None -> "-"
          in
          let mix =
            Array.to_list s.P.s_paths
            |> List.mapi (fun pi n ->
                   if n = 0 then ""
                   else Printf.sprintf "%s=%d" P.path_names.(pi) n)
            |> List.filter (fun x -> x <> "")
            |> String.concat ","
          in
          Buffer.add_string b
            (Printf.sprintf "site:\t0x%x\tnr=%d\trewritten=%s\tcount=%d\t%s\n"
               s.P.s_pc s.P.s_nr rw (P.site_count s) mix))
        (P.sites_sorted p);
      Buffer.contents b

let metrics_text (k : kernel) =
  match k.metrics with
  | Some m -> Kmetrics.prometheus m
  | None -> "# metrics registry not attached (Kernel.enable_metrics)\n"

(** Syscall-flow-integrity engine state: mode, graph dimensions,
    check/violation/verdict counters, the task's state-machine
    position, then one line per recorded violation. *)
let policy (k : kernel) (t : task) =
  match k.policy with
  | None -> "policy:\tdetached\n"
  | Some p ->
      let module P = Sim_policy.Policy in
      let g = p.P.graph in
      let b = Buffer.create 256 in
      Printf.bprintf b
        "policy:\t%s%s\ngraph:\t%s\nnodes:\t%d\nedges:\t%d\n\
         compartments:\t%d\nchecks:\t%d\nviolations:\t%d\ndenied:\t%d\n\
         killed:\t%d\nposition:\t%s\n"
        (P.mode_name p.P.mode)
        (if p.P.learning then " (learning)" else "")
        g.P.g_name (P.node_count g) (P.edge_count g) (P.compartment_count g)
        p.P.checks (P.violation_count p) p.P.denied p.P.killed
        (P.nr_name ~syscall_name:Defs.syscall_name (P.last_nr p ~tid:t.tid));
      List.iter
        (fun v ->
          Buffer.add_string b
            (P.describe_violation ~syscall_name:Defs.syscall_name v);
          Buffer.add_char b '\n')
        (P.violations p);
      Buffer.contents b

let pid_entries =
  [ ("status", false); ("maps", false); ("interposer", false);
    ("policy", false) ]

let lookup (k : kernel) (comps : string list) : Vfs.sentry option =
  let task_of = function
    | "self" -> k.cur_task
    | s -> (
        match int_of_string_opt s with
        | Some pid -> find_task k pid
        | None -> None)
  in
  match comps with
  | [] ->
      let pids =
        Hashtbl.fold (fun pid _ acc -> pid :: acc) k.tasks []
        |> List.sort compare
        |> List.map (fun pid -> (string_of_int pid, true))
      in
      Some (Vfs.Sdir ([ ("metrics", false); ("self", true) ] @ pids))
  | [ "metrics" ] -> Some (Vfs.Sfile (fun () -> metrics_text k))
  | [ p ] -> (
      match task_of p with
      | Some _ -> Some (Vfs.Sdir pid_entries)
      | None -> None)
  | [ p; leaf ] -> (
      match task_of p with
      | None -> None
      | Some t -> (
          match leaf with
          | "status" -> Some (Vfs.Sfile (fun () -> status t))
          | "maps" -> Some (Vfs.Sfile (fun () -> maps t))
          | "interposer" -> Some (Vfs.Sfile (fun () -> interposer k t))
          | "policy" -> Some (Vfs.Sfile (fun () -> policy k t))
          | _ -> None))
  | _ -> None

(** Mount /proc on [k]'s VFS.  Note: "self" resolves through
    [k.cur_task], so it only exists from guest context (host-side
    readers name tasks by pid). *)
let mount (k : kernel) = Vfs.mount k.vfs "proc" ~lookup:(lookup k)
