(** Shared record types of the simulated kernel.

    Kept in one module (operations live in {!Ksignal} and {!Kernel})
    so that the scheduler, signal machinery, syscall dispatch and
    hypercall handlers can all see the same task/kernel records
    without circular dependencies. *)

open Sim_cpu
open Sim_mem
open Sim_costs

(** {1 File descriptors} *)

type epoll = { interest : (int, int * int64) Hashtbl.t }
(** epoll instance: fd -> (event mask, user data). *)

type sock_pending = { mutable bound_port : int option }

type file_kind =
  | Kreg of Vfs.open_file
  | Klisten of Net.listener
  | Kstream of Net.endpoint
  | Kepoll of epoll
  | Kunbound of sock_pending  (** socket() before listen()/connect() *)

type fd_entry = {
  mutable kind : file_kind;
  mutable fflags : int;  (** O_NONBLOCK and friends *)
  mutable refs : int;  (** shared after fork()/dup() *)
}

type fdtab = { mutable next_fd : int; fds : (int, fd_entry) Hashtbl.t }

(** {1 Signals} *)

type sigaction = {
  sa_handler : int64;  (** SIG_DFL, SIG_IGN, or handler address *)
  sa_mask : int64;
  sa_flags : int64;
  sa_restorer : int64;  (** address the handler returns to *)
}

let sigaction_default =
  { sa_handler = 0L; sa_mask = 0L; sa_flags = 0L; sa_restorer = 0L }

type sig_info = {
  si_signo : int;
  si_code : int;
  si_call_addr : int;  (** address just past the trapping syscall *)
  si_syscall : int;
}

(** {1 Syscall User Dispatch (per-task)} *)

type sud = {
  mutable sud_on : bool;
  mutable sud_selector : int;  (** user VA of the selector byte *)
  mutable sud_lo : int;  (** allowlisted code range start *)
  mutable sud_len : int;
}

(** {1 ptrace}

    The tracer is modelled as kernel-side callbacks plus the cost of
    the context switches and tracer syscalls a real tracer would
    need for every syscall-stop (see DESIGN.md: we do not simulate
    the tracer as a separate machine-code process). *)

type monitor = {
  mutable on_entry : ptrace_view -> unit;
  mutable on_exit : ptrace_view -> unit;
  tracer_syscalls_per_stop : int;
      (** PTRACE_GETREGS / SETREGS / PTRACE_SYSCALL etc. *)
}

and ptrace_view = {
  pv_task : task;
  pv_get_reg : int -> int64;
  pv_set_reg : int -> int64 -> unit;
  pv_read_mem : int -> int -> string;
}

(** {1 Tasks} *)

and block_reason =
  | Wread of int  (** fd *)
  | Wwrite of int
  | Waccept of int
  | Wepoll of int
  | Wchild of int  (** tid, or -1 for any child *)
  | Wsleep of int64  (** absolute wake time in cycles *)
  | Wfutex of int  (** futex word address *)

and tstate = Runnable | Blocked of block_reason | Zombie

and task = {
  tid : int;
  mutable tgid : int;
  mutable parent_tid : int;
  ctx : Cpu.t;
  mutable mem : Mem.t;
  mutable icache : Icache.t;
      (** decoded-instruction cache for [mem]; shared between threads
          (which share [mem]), fresh after fork and execve (whose
          address spaces diverge from the parent's generations) *)
  mutable fdt : fdtab;
  mutable sighand : sigaction array;  (** aliased under CLONE_SIGHAND *)
  mutable sigmask : int64;
  mutable pending : int64;
  mutable pending_info : (int * sig_info) list;
  mutable state : tstate;
  sud : sud;
  mutable filters : Bpf.prog list;
  mutable monitor : monitor option;
  mutable exit_code : int;
  mutable children : int list;
  mutable affinity : int;  (** CPU index, or -1 for any *)
  mutable on_cpu : int;  (** CPU currently executing this task, or -1 *)
  mutable last_run : int64;  (** for round-robin fairness *)
  mutable cwd : string;
  mutable comm : string;
  mutable brk : int;
  mutable tid_address : int64;
  mutable robust_list : int64;
  mutable tcycles : int64;
      (** cycles charged while this task was current (its own
          execution plus kernel work done on its behalf) *)
  mutable trace_path : Sim_trace.Event.dispatch_path option;
      (** dispatch-path tag for the task's next syscall, staged by the
          interposer stubs (e.g. lazypoline's fast-path entry) so the
          tracer and the metrics registry can attribute the
          kernel-side span to the mechanism that carried it; consumed
          at syscall dispatch *)
  mutable sig_depth : int;
      (** live kernel signal frames (pushed by delivery, popped by
          sigreturn); maintained unconditionally — it is cheap and
          lets the sampling profiler classify handler execution
          without perturbing anything *)
  mutable sleep_until : int64 option;
      (** absolute deadline of the in-progress blocking syscall
          (nanosleep, futex FUTEX_WAIT with a timeout, epoll_wait with
          a positive timeout): blocking syscalls are retried by
          re-execution, so the wait must remember its deadline to be
          idempotent.  At most one blocking syscall is in flight per
          task, so one field serves all three. *)
  mutable retrying : bool;
      (** the task's rewound syscall instruction is a retry of a
          dispatch that already blocked — set on [Block], cleared on
          the final result (or on EINTR abandonment).  The chaos
          engine keys injections on first issues only: retry counts
          are schedule-dependent and would break cross-mechanism
          injection alignment. *)
}

(** {1 Program images (for the loader and execve)} *)

type image = {
  img_segments : (int * string * int) list;  (** VA, bytes, Mem perm *)
  img_entry : int;
  img_stack_top : int;  (** initial rsp (top of stack region) *)
  img_stack_size : int;
  img_symbols : (string * int) list;
      (** absolute (name, VA) pairs from the assembler, carried so the
          sampling profiler can symbolize guest rips *)
}

(** {1 The kernel} *)

type cpu_slot = { mutable clk : int64; mutable last_tid : int }

type kernel = {
  cost : Cost_model.t;
  cpus : cpu_slot array;
  mutable cur_cpu : int;
  tasks : (int, task) Hashtbl.t;
  mutable next_tid : int;
  vfs : Vfs.t;
  net : Net.t;
  hypercalls : (int, kernel -> task -> unit) Hashtbl.t;
  mutable next_hyper : int;
  rng : Random.State.t;
  programs : (string, image) Hashtbl.t;  (** execve registry *)
  mutable actors : (unit -> unit) list;
      (** external agents (e.g. the load generator) stepped once per
          scheduling slice *)
  mutable slice : int64;  (** scheduling quantum in cycles *)
  mutable slice_end : int64;
  mutable icache_on : bool;
      (** when false every task steps through the byte-at-a-time
          fetch/decode path — the A/B switch the equivalence tests and
          benchmarks use; simulated behaviour is identical either way *)
  mutable blocks_on : bool;
      (** when true (and [icache_on]) hot straight-line runs execute
          through the threaded-code block engine ({!Sim_cpu.Icache}
          compiled closures) instead of per-instruction dispatch —
          host-side speed only; simulated cycles, state and audit
          streams are bit-identical either way (the engine-identity
          gate).  Forced off by the [SIM_NO_BLOCKS] environment knob
          and the [--no-blocks] CLI flag for A/B bisection *)
  mutable strace : (task -> int -> int64 -> unit) option;
      (** kernel-side debug trace: task, syscall nr, result *)
  mutable tracer : Sim_trace.Tracer.t option;
      (** machine-wide event tracer; [None] (the default) is the
          zero-cost path — emit sites guard on it and allocate
          nothing.  Emitting never charges cycles: a traced run is
          cycle-for-cycle identical to an untraced one *)
  mutable metrics : Kmetrics.t option;
      (** machine-wide metrics registry; same contract as [tracer]:
          [None] is the zero-cost default and counting never charges
          cycles, so a metered run is cycle- and state-identical to
          an unmetered one *)
  mutable profiler : Sim_metrics.Profiler.t option;
      (** cycle-clock sampling profiler, ticked from {!charge};
          observation-only like [tracer] and [metrics] *)
  mutable in_kernel : int;
      (** depth of simulated-kernel activity (syscall dispatch, signal
          delivery) on the current CPU; the profiler classifies cycles
          charged at depth > 0 as kernel time.  Self-healing: reset to
          0 before every guest instruction step *)
  mutable halted : bool;
  mutable cur_task : task option;  (** task being executed right now *)
  mutable auditor : Sim_audit.Audit.t option;
      (** divergence auditor recording the observable event stream and
          state-hash checkpoints; observation-only like [tracer] *)
  mutable chaos : Sim_chaos.Chaos.t option;
      (** deterministic chaos engine; unlike the observers above it
          deliberately perturbs the run (injected errnos, signals and
          preemptions), but [None] — the default — is bit-identical
          to a kernel built before the engine existed, and injection
          never charges cycles of its own *)
  mutable obs : Sim_obs.Obs.t option;
      (** request-flow span recorder, fed from {!charge} and the
          scheduler edges; observation-only like [tracer] — a spanned
          run is cycle- and state-identical to an unspanned one *)
  mutable prov : Sim_obs.Provenance.t option;
      (** per-call-site interposition ledger with guest stack
          unwinding, fed at audited syscall dispatches and rewrite
          stamps; observation-only like [tracer] — a provenanced run
          is cycle- and state-identical to a bare one *)
  mutable policy : Sim_policy.Policy.t option;
      (** syscall-flow-integrity engine, consulted at every
          application syscall dispatch.  In report (or learning) mode
          it is observation-only like [tracer]; in deny/kill mode it
          suppresses out-of-policy syscalls and charges
          [cost.policy_check] per dispatch *)
}

(* Classify the cycles being charged into a causal phase for the span
   recorder.  Uses only state the kernel already maintains: kernel
   depth, the staged dispatch nr, the interposer dispatch-path tag
   and the guest rip against the registered interposer code ranges. *)
let obs_phase (k : kernel) o =
  match k.cur_task with
  | None -> Sim_obs.Obs.Psched
  | Some t ->
      if k.in_kernel > 0 then
        Sim_obs.Obs.Pkernel (Sim_obs.Obs.cur_nr o k.cur_cpu)
      else if t.trace_path <> None || Sim_obs.Obs.in_interp o t.ctx.Cpu.rip
      then Sim_obs.Obs.Pinterp
      else Sim_obs.Obs.Papp

let charge (k : kernel) n =
  let c = k.cpus.(k.cur_cpu) in
  let start = c.clk in
  c.clk <- Int64.add c.clk (Int64.of_int n);
  (match k.obs with
  | None -> ()
  | Some o ->
      Sim_obs.Obs.on_charge o ~cpu:k.cur_cpu ~start ~cycles:n
        ~phase:(obs_phase k o));
  match k.cur_task with
  | Some t -> (
      t.tcycles <- Int64.add t.tcycles (Int64.of_int n);
      match k.profiler with
      | None -> ()
      | Some p ->
          Sim_metrics.Profiler.tick p n ~comm:t.comm ~rip:t.ctx.Cpu.rip
            ~in_kernel:(k.in_kernel > 0) ~sig_depth:t.sig_depth)
  | None -> ()

(** Is any observer (tracer, metrics, auditor, span recorder,
    provenance ledger or policy engine) attached?  Dispatch-path
    staging sites guard on this: the tag exists purely for
    attribution (and for the policy engine's call-site recovery), so
    it is only maintained when someone is looking. *)
let observing (k : kernel) =
  k.tracer <> None || k.metrics <> None || k.auditor <> None || k.obs <> None
  || k.prov <> None || k.policy <> None

let enter_kernel (k : kernel) = k.in_kernel <- k.in_kernel + 1
let leave_kernel (k : kernel) = k.in_kernel <- max 0 (k.in_kernel - 1)

let now (k : kernel) = k.cpus.(k.cur_cpu).clk

(** Earliest per-CPU clock — the kernel's notion of global progress. *)
let global_time (k : kernel) =
  Array.fold_left (fun acc c -> min acc c.clk) Int64.max_int k.cpus

(** Record [kind] on the current CPU's ring at the current simulated
    time (no-op without a tracer).  Hot emit sites should guard with
    [k.tracer <> None] before building [kind] so the disabled path
    allocates nothing. *)
let trace_emit (k : kernel) kind =
  match k.tracer with
  | None -> ()
  | Some tr ->
      let tid = match k.cur_task with Some t -> t.tid | None -> -1 in
      Sim_trace.Tracer.emit tr ~cpu:k.cur_cpu ~tid ~ts:(now k) kind

(** Like {!trace_emit} with an explicit timestamp — for spans whose
    start time predates the emit (syscall enter/exit pairs). *)
let trace_emit_at (k : kernel) ~ts kind =
  match k.tracer with
  | None -> ()
  | Some tr ->
      let tid = match k.cur_task with Some t -> t.tid | None -> -1 in
      Sim_trace.Tracer.emit tr ~cpu:k.cur_cpu ~tid ~ts kind

let find_task (k : kernel) tid = Hashtbl.find_opt k.tasks tid

let sig_bit s = Int64.shift_left 1L (s - 1)

let signal_pending_unmasked (t : task) =
  Int64.logand t.pending (Int64.lognot t.sigmask) <> 0L
