(** The x64lite CPU interpreter.

    A [t] is one task's register context; [step] executes a single
    instruction against a {!Sim_mem.Mem.t} and reports what happened.
    The kernel owns the run loop, cycle accounting and trap handling.

    Register-access hooks feed the Pin-style dynamic analysis
    (Section IV-B of the paper): every architectural register read and
    write can be observed without perturbing execution. *)

open Sim_isa
open Sim_mem

(** {1 Extended state (SSE + x87)} *)

type xstate = {
  xmm_lo : int64 array;  (** low 64 bits of xmm0..xmm15 *)
  xmm_hi : int64 array;  (** high 64 bits *)
  st : int64 array;  (** x87 stack slots (bit patterns) *)
  mutable st_sp : int;  (** number of live x87 stack entries, 0..8 *)
}

let xstate_create () =
  { xmm_lo = Array.make 16 0L; xmm_hi = Array.make 16 0L;
    st = Array.make 8 0L; st_sp = 0 }

let xstate_copy x =
  { xmm_lo = Array.copy x.xmm_lo; xmm_hi = Array.copy x.xmm_hi;
    st = Array.copy x.st; st_sp = x.st_sp }

let xstate_restore ~into src =
  Array.blit src.xmm_lo 0 into.xmm_lo 0 16;
  Array.blit src.xmm_hi 0 into.xmm_hi 0 16;
  Array.blit src.st 0 into.st 0 8;
  into.st_sp <- src.st_sp

(** Serialised size of the extended state (xsave area): 16 xmm x 16
    bytes + 8 x87 slots x 8 bytes + 8 bytes of bookkeeping. *)
let xstate_bytes = (16 * 16) + (8 * 8) + 8

let xstate_write_mem (x : xstate) mem addr =
  for i = 0 to 15 do
    Mem.write_u64 mem (addr + (16 * i)) x.xmm_lo.(i);
    Mem.write_u64 mem (addr + (16 * i) + 8) x.xmm_hi.(i)
  done;
  for i = 0 to 7 do
    Mem.write_u64 mem (addr + 256 + (8 * i)) x.st.(i)
  done;
  Mem.write_u64 mem (addr + 320) (Int64.of_int x.st_sp)

let xstate_to_bytes (x : xstate) : string =
  let b = Bytes.create xstate_bytes in
  for i = 0 to 15 do
    Bytes.set_int64_le b (16 * i) x.xmm_lo.(i);
    Bytes.set_int64_le b ((16 * i) + 8) x.xmm_hi.(i)
  done;
  for i = 0 to 7 do
    Bytes.set_int64_le b (256 + (8 * i)) x.st.(i)
  done;
  Bytes.set_int64_le b 320 (Int64.of_int x.st_sp);
  Bytes.unsafe_to_string b

let xstate_of_bytes (x : xstate) (s : string) =
  let b = Bytes.unsafe_of_string s in
  for i = 0 to 15 do
    x.xmm_lo.(i) <- Bytes.get_int64_le b (16 * i);
    x.xmm_hi.(i) <- Bytes.get_int64_le b ((16 * i) + 8)
  done;
  for i = 0 to 7 do
    x.st.(i) <- Bytes.get_int64_le b (256 + (8 * i))
  done;
  x.st_sp <- Int64.to_int (Bytes.get_int64_le b 320) land 15

let xstate_read_mem (x : xstate) mem addr =
  for i = 0 to 15 do
    x.xmm_lo.(i) <- Mem.read_u64 mem (addr + (16 * i));
    x.xmm_hi.(i) <- Mem.read_u64 mem (addr + (16 * i) + 8)
  done;
  for i = 0 to 7 do
    x.st.(i) <- Mem.read_u64 mem (addr + 256 + (8 * i))
  done;
  x.st_sp <- Int64.to_int (Mem.read_u64 mem (addr + 320)) land 15

(** {1 Register context} *)

type hook_event =
  | Reg_read of int
  | Reg_write of int
  | Xmm_read of int
  | Xmm_write of int
  | X87_read
  | X87_write

type t = {
  regs : int64 array;  (** 16 GPRs *)
  mutable rip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  x : xstate;
  mutable fs_base : int;
  mutable gs_base : int;
  mutable hook : (hook_event -> unit) option;
  mutable now : unit -> int64;  (** cycle counter source for [rdtsc] *)
  mutable nop_run : int;
      (** consecutive [nop]s retired; models superscalar nop
          throughput (~4/cycle), which is what makes zpoline-style
          nop sleds cheap on real hardware *)
  mutable last_cost : int;  (** cycle cost of the last [step] *)
  mutable pkru : int;
      (** protection-key rights: bit k set = writes to pkey-k pages
          denied.  0 (default) disables all checking. *)
}

let create () =
  {
    regs = Array.make 16 0L;
    rip = 0;
    zf = false;
    sf = false;
    cf = false;
    x = xstate_create ();
    fs_base = 0;
    gs_base = 0;
    hook = None;
    now = (fun () -> 0L);
    nop_run = 0;
    last_cost = 1;
    pkru = 0;
  }

(** Copy of [t] sharing nothing (for fork/clone and signal frames). *)
let copy (c : t) =
  {
    regs = Array.copy c.regs;
    rip = c.rip;
    zf = c.zf;
    sf = c.sf;
    cf = c.cf;
    x = xstate_copy c.x;
    fs_base = c.fs_base;
    gs_base = c.gs_base;
    hook = c.hook;
    now = c.now;
    nop_run = 0;
    last_cost = 1;
    pkru = c.pkru;
  }

let fire c e = match c.hook with None -> () | Some f -> f e

let get_reg c r =
  fire c (Reg_read r);
  c.regs.(r)

let set_reg c r v =
  fire c (Reg_write r);
  c.regs.(r) <- v

(* Untracked accessors for kernel/interposer use: the kernel reading
   syscall arguments is not an application register use and must not
   register in the Pin analysis. *)
let peek_reg c r = c.regs.(r)
let poke_reg c r v = c.regs.(r) <- v

(** Syscall arguments per the SysV convention. *)
let syscall_args c =
  ( c.regs.(Isa.rdi), c.regs.(Isa.rsi), c.regs.(Isa.rdx), c.regs.(Isa.r10),
    c.regs.(Isa.r8), c.regs.(Isa.r9) )

(** {1 Stepping} *)

type outcome =
  | Stepped
  | Trap_syscall  (** [rip] already points past the syscall instruction *)
  | Trap_hypercall of int
  | Trap_breakpoint
  | Halted
  | Fault of int * Mem.access  (** [rip] still at the faulting instruction *)
  | Fault_arith  (** division by zero *)
  | Bad_instr of int  (** undecodable opcode at [rip] *)

let flags_of_result c (v : int64) =
  c.zf <- Int64.equal v 0L;
  c.sf <- Int64.compare v 0L < 0;
  c.cf <- false

let seg_base c = function
  | Isa.Seg_none -> 0
  | Isa.Seg_fs -> c.fs_base
  | Isa.Seg_gs -> c.gs_base

let ea c seg base disp =
  seg_base c seg + Int64.to_int (get_reg c base) + Int32.to_int disp

(* Protection-key write check (no-op while pkru = 0). *)
let wcheck c mem addr =
  if c.pkru <> 0 then begin
    let pk = Mem.pkey_at mem addr in
    if pk <> 0 && c.pkru land (1 lsl pk) <> 0 then
      raise (Mem.Fault (addr, Mem.Write))
  end

let push c mem v =
  let sp = Int64.to_int c.regs.(Isa.rsp) - 8 in
  wcheck c mem sp;
  Mem.write_u64 mem sp v;
  c.regs.(Isa.rsp) <- Int64.of_int sp

let pop c mem =
  let sp = Int64.to_int c.regs.(Isa.rsp) in
  let v = Mem.read_u64 mem sp in
  c.regs.(Isa.rsp) <- Int64.of_int (sp + 8);
  v

let cond_holds c = function
  | Isa.Eq -> c.zf
  | Isa.Ne -> not c.zf
  | Isa.Lt -> c.sf
  | Isa.Le -> c.sf || c.zf
  | Isa.Gt -> not (c.sf || c.zf)
  | Isa.Ge -> not c.sf
  | Isa.Ult -> c.cf
  | Isa.Uge -> not c.cf

let x87_push c v =
  if c.x.st_sp >= 8 then c.x.st_sp <- 7;
  (* stack overflow clobbers the top slot, as good as anything *)
  c.x.st.(c.x.st_sp) <- v;
  c.x.st_sp <- c.x.st_sp + 1;
  fire c X87_write

let x87_pop c =
  fire c X87_read;
  if c.x.st_sp = 0 then 0L
  else (
    c.x.st_sp <- c.x.st_sp - 1;
    c.x.st.(c.x.st_sp))

(** Total instructions retired across every CPU instance in the
    process — the benchmark harness divides this by wall-clock time to
    report host-side simulation throughput. *)
let retired = ref 0

(* Per-instruction cycle accounting, identical whether the decode came
   from the icache or the byte-at-a-time path. *)
let account (c : t) (instr : Isa.instr) =
  match instr with
  | Isa.Nop ->
      c.nop_run <- c.nop_run + 1;
      c.last_cost <- (if c.nop_run land 3 = 0 then 1 else 0)
  | Isa.Nopw n ->
      c.nop_run <- 0;
      c.last_cost <- n
  | Isa.Wrpkru _ ->
      (* real WRPKRU serialises; ~23 cycles on current parts *)
      c.nop_run <- 0;
      c.last_cost <- 23
  | _ ->
      c.nop_run <- 0;
      c.last_cost <- 1

(** Execute one already-decoded instruction whose encoding ends at
    [next].  The back end of the pipeline: cycle accounting and the
    register-access hooks fire here exactly as they always did, so the
    Pin analyses cannot tell a cached decode from a fresh one. *)
let exec (c : t) (mem : Mem.t) (instr : Isa.instr) (next : int) : outcome =
  account c instr;
  (
      try
        match instr with
        | Isa.Nop | Isa.Nopw _ ->
            c.rip <- next;
            Stepped
        | Isa.Ret ->
            c.rip <- Int64.to_int (pop c mem);
            Stepped
        | Isa.Hlt -> Halted
        | Isa.Int3 ->
            c.rip <- next;
            Trap_breakpoint
        | Isa.Syscall ->
            c.rip <- next;
            Trap_syscall
        | Isa.Hypercall n ->
            c.rip <- next;
            Trap_hypercall n
        | Isa.Rdtsc ->
            set_reg c Isa.rax (c.now ());
            c.rip <- next;
            Stepped
        | Isa.Wrpkru r ->
            c.pkru <- Int64.to_int (get_reg c r) land 0xFFFF;
            c.rip <- next;
            Stepped
        | Isa.Rdpkru r ->
            set_reg c r (Int64.of_int c.pkru);
            c.rip <- next;
            Stepped
        | Isa.Call_reg r ->
            let tgt = get_reg c r in
            push c mem (Int64.of_int next);
            c.rip <- Int64.to_int tgt;
            Stepped
        | Isa.Jmp_reg r ->
            c.rip <- Int64.to_int (get_reg c r);
            Stepped
        | Isa.Push r ->
            push c mem (get_reg c r);
            c.rip <- next;
            Stepped
        | Isa.Pop r ->
            set_reg c r (pop c mem);
            c.rip <- next;
            Stepped
        | Isa.Mov_rr (d, s) ->
            set_reg c d (get_reg c s);
            c.rip <- next;
            Stepped
        | Isa.Mov_ri (r, v) ->
            set_reg c r v;
            c.rip <- next;
            Stepped
        | Isa.Mov_ri32 (r, v) ->
            set_reg c r (Int64.of_int32 v);
            c.rip <- next;
            Stepped
        | Isa.Load (seg, d, b, disp) ->
            set_reg c d (Mem.read_u64 mem (ea c seg b disp));
            c.rip <- next;
            Stepped
        | Isa.Store (seg, b, disp, s) ->
            let a = ea c seg b disp in
            wcheck c mem a;
            Mem.write_u64 mem a (get_reg c s);
            c.rip <- next;
            Stepped
        | Isa.Load8 (seg, d, b, disp) ->
            set_reg c d (Int64.of_int (Mem.read_u8 mem (ea c seg b disp)));
            c.rip <- next;
            Stepped
        | Isa.Store8 (seg, b, disp, s) ->
            let a = ea c seg b disp in
            wcheck c mem a;
            Mem.write_u8 mem a (Int64.to_int (get_reg c s) land 0xFF);
            c.rip <- next;
            Stepped
        | Isa.Lea (d, b, disp) ->
            set_reg c d (Int64.of_int (ea c Isa.Seg_none b disp));
            c.rip <- next;
            Stepped
        | Isa.Alu_rr (op, d, s) ->
            let a = get_reg c d and b = get_reg c s in
            (match op with
            | Isa.Cmp ->
                c.zf <- Int64.equal a b;
                c.sf <- Int64.compare a b < 0;
                c.cf <- Int64.unsigned_compare a b < 0
            | Isa.Div | Isa.Rem ->
                if Int64.equal b 0L then raise Exit
                else
                  let v =
                    if op = Isa.Div then Int64.div a b else Int64.rem a b
                  in
                  set_reg c d v;
                  flags_of_result c v
            | _ ->
                let v =
                  match op with
                  | Isa.Add -> Int64.add a b
                  | Isa.Sub -> Int64.sub a b
                  | Isa.And -> Int64.logand a b
                  | Isa.Or -> Int64.logor a b
                  | Isa.Xor -> Int64.logxor a b
                  | Isa.Mul -> Int64.mul a b
                  | Isa.Cmp | Isa.Div | Isa.Rem -> assert false
                in
                set_reg c d v;
                flags_of_result c v);
            c.rip <- next;
            Stepped
        | Isa.Alu_ri (op, r, imm) ->
            let a = get_reg c r and b = Int64.of_int32 imm in
            (match op with
            | Isa.Cmp ->
                c.zf <- Int64.equal a b;
                c.sf <- Int64.compare a b < 0;
                c.cf <- Int64.unsigned_compare a b < 0
            | _ ->
                let v =
                  match op with
                  | Isa.Add -> Int64.add a b
                  | Isa.Sub -> Int64.sub a b
                  | Isa.And -> Int64.logand a b
                  | Isa.Or -> Int64.logor a b
                  | Isa.Xor -> Int64.logxor a b
                  | Isa.Cmp | Isa.Mul | Isa.Div | Isa.Rem -> assert false
                in
                set_reg c r v;
                flags_of_result c v);
            c.rip <- next;
            Stepped
        | Isa.Shift (op, r, n) ->
            let a = get_reg c r in
            let v =
              match op with
              | Isa.Shl -> Int64.shift_left a n
              | Isa.Shr -> Int64.shift_right_logical a n
              | Isa.Sar -> Int64.shift_right a n
            in
            set_reg c r v;
            flags_of_result c v;
            c.rip <- next;
            Stepped
        | Isa.Jmp rel ->
            c.rip <- next + Int32.to_int rel;
            Stepped
        | Isa.Jcc (cond, rel) ->
            c.rip <- (if cond_holds c cond then next + Int32.to_int rel else next);
            Stepped
        | Isa.Call rel ->
            push c mem (Int64.of_int next);
            c.rip <- next + Int32.to_int rel;
            Stepped
        | Isa.Setcc (cond, r) ->
            set_reg c r (if cond_holds c cond then 1L else 0L);
            c.rip <- next;
            Stepped
        | Isa.Movq_xr (x, r) ->
            let v = get_reg c r in
            fire c (Xmm_write x);
            c.x.xmm_lo.(x) <- v;
            c.x.xmm_hi.(x) <- 0L;
            c.rip <- next;
            Stepped
        | Isa.Movq_rx (r, x) ->
            fire c (Xmm_read x);
            set_reg c r c.x.xmm_lo.(x);
            c.rip <- next;
            Stepped
        | Isa.Movups_load (seg, x, b, disp) ->
            let a = ea c seg b disp in
            let lo = Mem.read_u64 mem a and hi = Mem.read_u64 mem (a + 8) in
            fire c (Xmm_write x);
            c.x.xmm_lo.(x) <- lo;
            c.x.xmm_hi.(x) <- hi;
            c.rip <- next;
            Stepped
        | Isa.Movups_store (seg, b, disp, x) ->
            let a = ea c seg b disp in
            wcheck c mem a;
            fire c (Xmm_read x);
            Mem.write_u64 mem a c.x.xmm_lo.(x);
            Mem.write_u64 mem (a + 8) c.x.xmm_hi.(x);
            c.rip <- next;
            Stepped
        | Isa.Punpcklqdq (d, s) ->
            fire c (Xmm_read s);
            fire c (Xmm_write d);
            c.x.xmm_hi.(d) <- c.x.xmm_lo.(s);
            c.rip <- next;
            Stepped
        | Isa.Pxor (d, s) ->
            fire c (Xmm_read s);
            fire c (Xmm_write d);
            if d = s then (
              c.x.xmm_lo.(d) <- 0L;
              c.x.xmm_hi.(d) <- 0L)
            else (
              c.x.xmm_lo.(d) <- Int64.logxor c.x.xmm_lo.(d) c.x.xmm_lo.(s);
              c.x.xmm_hi.(d) <- Int64.logxor c.x.xmm_hi.(d) c.x.xmm_hi.(s));
            c.rip <- next;
            Stepped
        | Isa.Fld1 ->
            x87_push c (Int64.bits_of_float 1.0);
            c.rip <- next;
            Stepped
        | Isa.Fldz ->
            x87_push c (Int64.bits_of_float 0.0);
            c.rip <- next;
            Stepped
        | Isa.Faddp ->
            let a = Int64.float_of_bits (x87_pop c) in
            if c.x.st_sp > 0 then (
              fire c X87_read;
              fire c X87_write;
              c.x.st.(c.x.st_sp - 1) <-
                Int64.bits_of_float
                  (a +. Int64.float_of_bits c.x.st.(c.x.st_sp - 1)));
            c.rip <- next;
            Stepped
        | Isa.Fstp (seg, b, disp) ->
            let v = x87_pop c in
            let a = ea c seg b disp in
            wcheck c mem a;
            Mem.write_u64 mem a v;
            c.rip <- next;
            Stepped
      with
      | Mem.Fault (a, acc) -> Fault (a, acc)
      | Exit -> Fault_arith)

(* The original front end: fetch bytes one at a time through the
   permission-checked accessor and decode them.  Also the fallback for
   everything the icache declines to cache (page-straddling
   encodings, undecodable bytes, non-executable pages) — it reproduces
   the architecturally correct fault in each case. *)
let step_uncached (c : t) (mem : Mem.t) : outcome =
  let fetch i = Mem.fetch_u8 mem (c.rip + i) in
  match Decode.decode fetch with
  | exception Mem.Fault (a, acc) -> Fault (a, acc)
  | exception Decode.Invalid _ -> Bad_instr c.rip
  | instr, len -> exec c mem instr (c.rip + len)

(** Execute one instruction.  Never raises: memory faults and decode
    errors are reported as outcomes.

    With [icache], the fetch/decode front end is replaced by a lookup
    in the page-versioned decoded-instruction cache; a hit skips the
    per-byte fetch entirely.  Safe by construction: every mutation of
    executable memory bumps the page generation the cache validates
    against (see {!Icache}), so self-modifying code — lazypoline's
    lazy [syscall → call rax] rewrite, JIT emission — is observed on
    the very next fetch of the patched address.  Execution semantics,
    cycle accounting and register-access hooks are identical on both
    paths. *)
let step ?icache (c : t) (mem : Mem.t) : outcome =
  incr retired;
  match icache with
  | None -> step_uncached c mem
  | Some ic -> (
      match Icache.find ic mem c.rip with
      | Some e -> exec c mem e.Icache.instr (c.rip + e.Icache.ilen)
      | None -> step_uncached c mem)
