(** The x64lite CPU interpreter and threaded-code block runner.

    A [t] is one task's register context; [step] executes a single
    instruction against a {!Sim_mem.Mem.t} and reports what happened.
    The kernel owns the run loop, cycle accounting and trap handling.
    The register context itself (and every helper the {!Icache} block
    compiler shares with the interpreter) lives in {!Ctx} and is
    re-exported here, so the rest of the tree keeps addressing it as
    [Cpu.t].

    Register-access hooks feed the Pin-style dynamic analysis
    (Section IV-B of the paper): every architectural register read and
    write can be observed without perturbing execution.  The block
    engine is bypassed whenever a hook is installed — its closures use
    direct register accesses — so the analyses always observe the
    interpreter's exact event stream. *)

open Sim_isa
open Sim_mem
include Ctx

(** {1 Stepping} *)

type outcome =
  | Stepped
  | Trap_syscall  (** [rip] already points past the syscall instruction *)
  | Trap_hypercall of int
  | Trap_breakpoint
  | Halted
  | Fault of int * Mem.access  (** [rip] still at the faulting instruction *)
  | Fault_arith  (** division by zero *)
  | Bad_instr of int  (** undecodable opcode at [rip] *)

(** Execute one already-decoded instruction whose encoding ends at
    [next].  The back end of the pipeline: cycle accounting and the
    register-access hooks fire here exactly as they always did, so the
    Pin analyses cannot tell a cached decode from a fresh one. *)
let exec (c : t) (mem : Mem.t) (instr : Isa.instr) (next : int) : outcome =
  account c instr;
  (
      try
        match instr with
        | Isa.Nop | Isa.Nopw _ ->
            c.rip <- next;
            Stepped
        | Isa.Ret ->
            c.rip <- Int64.to_int (pop c mem);
            Stepped
        | Isa.Hlt -> Halted
        | Isa.Int3 ->
            c.rip <- next;
            Trap_breakpoint
        | Isa.Syscall ->
            c.rip <- next;
            Trap_syscall
        | Isa.Hypercall n ->
            c.rip <- next;
            Trap_hypercall n
        | Isa.Rdtsc ->
            set_reg c Isa.rax (c.now ());
            c.rip <- next;
            Stepped
        | Isa.Wrpkru r ->
            c.pkru <- Int64.to_int (get_reg c r) land 0xFFFF;
            c.rip <- next;
            Stepped
        | Isa.Rdpkru r ->
            set_reg c r (Int64.of_int c.pkru);
            c.rip <- next;
            Stepped
        | Isa.Call_reg r ->
            let tgt = get_reg c r in
            push c mem (Int64.of_int next);
            c.rip <- Int64.to_int tgt;
            Stepped
        | Isa.Jmp_reg r ->
            c.rip <- Int64.to_int (get_reg c r);
            Stepped
        | Isa.Push r ->
            push c mem (get_reg c r);
            c.rip <- next;
            Stepped
        | Isa.Pop r ->
            set_reg c r (pop c mem);
            c.rip <- next;
            Stepped
        | Isa.Mov_rr (d, s) ->
            set_reg c d (get_reg c s);
            c.rip <- next;
            Stepped
        | Isa.Mov_ri (r, v) ->
            set_reg c r v;
            c.rip <- next;
            Stepped
        | Isa.Mov_ri32 (r, v) ->
            set_reg c r (Int64.of_int32 v);
            c.rip <- next;
            Stepped
        | Isa.Load (seg, d, b, disp) ->
            set_reg c d (Mem.read_u64 mem (ea c seg b disp));
            c.rip <- next;
            Stepped
        | Isa.Store (seg, b, disp, s) ->
            let a = ea c seg b disp in
            wcheck c mem a;
            Mem.write_u64 mem a (get_reg c s);
            c.rip <- next;
            Stepped
        | Isa.Load8 (seg, d, b, disp) ->
            set_reg c d (Int64.of_int (Mem.read_u8 mem (ea c seg b disp)));
            c.rip <- next;
            Stepped
        | Isa.Store8 (seg, b, disp, s) ->
            let a = ea c seg b disp in
            wcheck c mem a;
            Mem.write_u8 mem a (Int64.to_int (get_reg c s) land 0xFF);
            c.rip <- next;
            Stepped
        | Isa.Lea (d, b, disp) ->
            set_reg c d (Int64.of_int (ea c Isa.Seg_none b disp));
            c.rip <- next;
            Stepped
        | Isa.Alu_rr (op, d, s) ->
            let a = get_reg c d and b = get_reg c s in
            (match op with
            | Isa.Cmp ->
                c.zf <- Int64.equal a b;
                c.sf <- Int64.compare a b < 0;
                c.cf <- Int64.unsigned_compare a b < 0
            | Isa.Div | Isa.Rem ->
                if Int64.equal b 0L then raise Exit
                else
                  let v =
                    if op = Isa.Div then Int64.div a b else Int64.rem a b
                  in
                  set_reg c d v;
                  flags_of_result c v
            | _ ->
                let v =
                  match op with
                  | Isa.Add -> Int64.add a b
                  | Isa.Sub -> Int64.sub a b
                  | Isa.And -> Int64.logand a b
                  | Isa.Or -> Int64.logor a b
                  | Isa.Xor -> Int64.logxor a b
                  | Isa.Mul -> Int64.mul a b
                  | Isa.Cmp | Isa.Div | Isa.Rem -> assert false
                in
                set_reg c d v;
                flags_of_result c v);
            c.rip <- next;
            Stepped
        | Isa.Alu_ri (op, r, imm) ->
            let a = get_reg c r and b = Int64.of_int32 imm in
            (match op with
            | Isa.Cmp ->
                c.zf <- Int64.equal a b;
                c.sf <- Int64.compare a b < 0;
                c.cf <- Int64.unsigned_compare a b < 0
            | _ ->
                let v =
                  match op with
                  | Isa.Add -> Int64.add a b
                  | Isa.Sub -> Int64.sub a b
                  | Isa.And -> Int64.logand a b
                  | Isa.Or -> Int64.logor a b
                  | Isa.Xor -> Int64.logxor a b
                  | Isa.Cmp | Isa.Mul | Isa.Div | Isa.Rem -> assert false
                in
                set_reg c r v;
                flags_of_result c v);
            c.rip <- next;
            Stepped
        | Isa.Shift (op, r, n) ->
            let a = get_reg c r in
            let v =
              match op with
              | Isa.Shl -> Int64.shift_left a n
              | Isa.Shr -> Int64.shift_right_logical a n
              | Isa.Sar -> Int64.shift_right a n
            in
            set_reg c r v;
            flags_of_result c v;
            c.rip <- next;
            Stepped
        | Isa.Jmp rel ->
            c.rip <- next + Int32.to_int rel;
            Stepped
        | Isa.Jcc (cond, rel) ->
            c.rip <- (if cond_holds c cond then next + Int32.to_int rel else next);
            Stepped
        | Isa.Call rel ->
            push c mem (Int64.of_int next);
            c.rip <- next + Int32.to_int rel;
            Stepped
        | Isa.Setcc (cond, r) ->
            set_reg c r (if cond_holds c cond then 1L else 0L);
            c.rip <- next;
            Stepped
        | Isa.Movq_xr (x, r) ->
            let v = get_reg c r in
            fire c (Xmm_write x);
            c.x.xmm_lo.(x) <- v;
            c.x.xmm_hi.(x) <- 0L;
            c.rip <- next;
            Stepped
        | Isa.Movq_rx (r, x) ->
            fire c (Xmm_read x);
            set_reg c r c.x.xmm_lo.(x);
            c.rip <- next;
            Stepped
        | Isa.Movups_load (seg, x, b, disp) ->
            let a = ea c seg b disp in
            let lo = Mem.read_u64 mem a and hi = Mem.read_u64 mem (a + 8) in
            fire c (Xmm_write x);
            c.x.xmm_lo.(x) <- lo;
            c.x.xmm_hi.(x) <- hi;
            c.rip <- next;
            Stepped
        | Isa.Movups_store (seg, b, disp, x) ->
            let a = ea c seg b disp in
            wcheck c mem a;
            fire c (Xmm_read x);
            Mem.write_u64 mem a c.x.xmm_lo.(x);
            Mem.write_u64 mem (a + 8) c.x.xmm_hi.(x);
            c.rip <- next;
            Stepped
        | Isa.Punpcklqdq (d, s) ->
            fire c (Xmm_read s);
            fire c (Xmm_write d);
            c.x.xmm_hi.(d) <- c.x.xmm_lo.(s);
            c.rip <- next;
            Stepped
        | Isa.Pxor (d, s) ->
            fire c (Xmm_read s);
            fire c (Xmm_write d);
            if d = s then (
              c.x.xmm_lo.(d) <- 0L;
              c.x.xmm_hi.(d) <- 0L)
            else (
              c.x.xmm_lo.(d) <- Int64.logxor c.x.xmm_lo.(d) c.x.xmm_lo.(s);
              c.x.xmm_hi.(d) <- Int64.logxor c.x.xmm_hi.(d) c.x.xmm_hi.(s));
            c.rip <- next;
            Stepped
        | Isa.Fld1 ->
            x87_push c (Int64.bits_of_float 1.0);
            c.rip <- next;
            Stepped
        | Isa.Fldz ->
            x87_push c (Int64.bits_of_float 0.0);
            c.rip <- next;
            Stepped
        | Isa.Faddp ->
            let a = Int64.float_of_bits (x87_pop c) in
            if c.x.st_sp > 0 then (
              fire c X87_read;
              fire c X87_write;
              c.x.st.(c.x.st_sp - 1) <-
                Int64.bits_of_float
                  (a +. Int64.float_of_bits c.x.st.(c.x.st_sp - 1)));
            c.rip <- next;
            Stepped
        | Isa.Fstp (seg, b, disp) ->
            let v = x87_pop c in
            let a = ea c seg b disp in
            wcheck c mem a;
            Mem.write_u64 mem a v;
            c.rip <- next;
            Stepped
      with
      | Mem.Fault (a, acc) -> Fault (a, acc)
      | Exit -> Fault_arith)

(* The original front end: fetch bytes one at a time through the
   permission-checked accessor and decode them.  Also the fallback for
   everything the icache declines to cache (page-straddling
   encodings, undecodable bytes, non-executable pages) — it reproduces
   the architecturally correct fault in each case. *)
let step_uncached (c : t) (mem : Mem.t) : outcome =
  let fetch i = Mem.fetch_u8 mem (c.rip + i) in
  match Decode.decode fetch with
  | exception Mem.Fault (a, acc) -> Fault (a, acc)
  | exception Decode.Invalid _ -> Bad_instr c.rip
  | instr, len -> exec c mem instr (c.rip + len)

(** Execute one instruction.  Never raises: memory faults and decode
    errors are reported as outcomes.

    With [icache], the fetch/decode front end is replaced by a lookup
    in the page-versioned decoded-instruction cache; a hit skips the
    per-byte fetch entirely.  Safe by construction: every mutation of
    executable memory bumps the page generation the cache validates
    against (see {!Icache}), so self-modifying code — lazypoline's
    lazy [syscall → call rax] rewrite, JIT emission — is observed on
    the very next fetch of the patched address.  Execution semantics,
    cycle accounting and register-access hooks are identical on both
    paths. *)
let step ?icache (c : t) (mem : Mem.t) : outcome =
  incr retired;
  match icache with
  | None -> step_uncached c mem
  | Some ic -> (
      match Icache.find ic mem c.rip with
      | Some e -> exec c mem e.Icache.instr (c.rip + e.Icache.ilen)
      | None -> step_uncached c mem)

(** {1 The block runner (enter-block / run-block / exit-block)}

    The enter phase is the kernel's: it checks that the engine is
    enabled and hook-free and asks {!Icache.lookup} for a block.  The
    run phase is {!run_block} below.  The exit phase is again the
    kernel's: charge any bulk-accumulated cycles and handle the
    terminal outcome through the same per-outcome arms a single step
    uses. *)

(** Single-step a decode-cache entry the engine declined to run as a
    block (cold, uncompilable, or excluded head instruction). *)
let step_cached (c : t) (mem : Mem.t) (e : Icache.entry) : outcome =
  incr retired;
  exec c mem e.Icache.instr (c.rip + e.Icache.ilen)

(** Single-step through the uncached byte-at-a-time path (engine-mode
    lookup missed: page seam, non-executable page, undecodable). *)
let step_miss (c : t) (mem : Mem.t) : outcome =
  incr retired;
  step_uncached c mem

(** Run compiled block [blk] from op index [idx0].

    [budget] is the number of [last_cost] units this run may {e
    start}: op [i] executes iff the units accumulated by its
    predecessors are below it — exactly the interpreter's
    [clk < slice_end] pre-check with the clock advance factored
    through the kernel's per-instruction cost multiplier.

    [per_op] (when set) is called with each op's [last_cost] units
    immediately after the op retires, with [rip] already advanced —
    the same point the interpreter's charge fires, so an attached
    profiler sees identical tick attribution.  When [None], units
    accumulate and are returned for one bulk charge (clock and
    task-cycle sums are identical; only a profiler could tell, and it
    is absent on this path).

    [chaos] (when set) is the per-retired-instruction preemption
    draw, called after every op exactly as the kernel's loop does
    around single steps; a [true] return stops the block at that
    instruction boundary.

    The runner re-checks the code-mutation epoch after every op that
    can write memory: if the store moved the executing block's own
    page generation (mid-block SMC), the block stops at the next
    boundary — the same point the interpreter's next fetch would
    observe the new bytes.  Stores to other pages never invalidate
    this block's closures and execution continues, matching the
    interpreter's per-page revalidation.

    Returns the terminal outcome ([Stepped] for a completed or merely
    interrupted block; [Fault _]/[Fault_arith] from a raising op, with
    [rip] left at the faulting instruction), the uncharged bulk units,
    and whether chaos preempted. *)
let run_block (c : t) (mem : Mem.t) (blk : Icache.block) (idx0 : int)
    ~(budget : int) ~(per_op : (int -> unit) option)
    ~(chaos : (unit -> bool) option) : outcome * int * bool =
  let ops = blk.Icache.b_ops and writes = blk.Icache.b_writes in
  let n = Array.length ops in
  let pn = blk.Icache.b_pn and bgen = blk.Icache.b_gen in
  let i = ref idx0 and acc = ref 0 in
  let fused = ref (-1) in  (* insns completed on the fused path *)
  let outcome = ref Stepped in
  let preempted = ref false and smc = ref false and stop = ref false in
  (try
     match (per_op, chaos) with
     | None, None
       when idx0 = 0
            && (not blk.Icache.b_anywrites)
            && budget >= blk.Icache.b_maxunits ->
         (* Fastest path: whole-block entry with no observers, no
            memory-writing ops (so no SMC checks) and a slice budget
            that provably cannot run out mid-block — nothing can stop
            the run, so it executes the superinstruction form, where
            a whole nop sled is one closure.  Per-instruction states
            between fops are unobservable here, which is what makes
            the fusion invisible. *)
         let fops = blk.Icache.b_fops and flens = blk.Icache.b_flen in
         let m = Array.length fops in
         let j = ref 0 in
         fused := 0;
         while !j < m do
           acc := !acc + (Array.unsafe_get fops !j) c mem;
           fused := !fused + Array.unsafe_get flens !j;
           incr j
         done;
         i := n
     | None, None ->
         (* Fast path: no per-op observers; one bulk charge at exit. *)
         while (not !stop) && !i < n && !acc < budget do
           (Array.unsafe_get ops !i) c mem;
           acc := !acc + c.last_cost;
           if Array.unsafe_get writes !i then begin
             let e = Mem.code_mut_count mem in
             if e <> blk.Icache.b_epoch then begin
               blk.Icache.b_epoch <- e;
               if Mem.page_gen mem pn <> bgen then begin
                 smc := true;
                 stop := true
               end
             end
           end;
           incr i
         done
     | _ ->
         while (not !stop) && !i < n && !acc < budget do
           (Array.unsafe_get ops !i) c mem;
           let u = c.last_cost in
           acc := !acc + u;
           (match per_op with Some f -> f u | None -> ());
           if Array.unsafe_get writes !i then begin
             let e = Mem.code_mut_count mem in
             if e <> blk.Icache.b_epoch then begin
               blk.Icache.b_epoch <- e;
               if Mem.page_gen mem pn <> bgen then begin
                 smc := true;
                 stop := true
               end
             end
           end;
           (match chaos with
           | Some f ->
               if f () then begin
                 preempted := true;
                 stop := true
               end
           | None -> ());
           incr i
         done
   with
  | Mem.Fault (a, acc') -> outcome := Fault (a, acc')
  | Exit -> outcome := Fault_arith);
  (* [!i - idx0] ops completed (the fused path counts for itself); a
     faulting op still counts as retired, matching the interpreter
     (its [incr retired] precedes [exec]). *)
  let nrun = if !fused >= 0 then !fused else !i - idx0 in
  let nret =
    match !outcome with Fault _ | Fault_arith -> nrun + 1 | _ -> nrun
  in
  retired := !retired + nret;
  Icache.g_block_insns := !Icache.g_block_insns + nret;
  (match !outcome with
  | Fault _ | Fault_arith -> incr Icache.g_bexit_fault
  | _ ->
      if !preempted then incr Icache.g_bexit_preempt
      else if !smc then incr Icache.g_bexit_smc
      else if !i < n && !acc >= budget then incr Icache.g_bexit_budget
      else incr Icache.g_bexit_end);
  let bulk = match per_op with None -> !acc | Some _ -> 0 in
  (!outcome, bulk, !preempted)
